# Warning flags shared by the library, tests, bench, and examples.
# Strict C++17 conformance (-Wpedantic) is deliberate: the tree must build
# warning-free on both gcc and clang so CI can flip STEDB_WERROR=ON.

set(STEDB_WARNINGS "")
if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
  list(APPEND STEDB_WARNINGS -Wall -Wextra -Wpedantic)
  if(CMAKE_CXX_COMPILER_ID MATCHES "Clang")
    # Clang Thread Safety Analysis over the capability annotations in
    # src/common/thread_annotations.h. gcc has no equivalent analysis
    # (the macros expand to nothing there), so the clang CI lane is the
    # enforcing build.
    list(APPEND STEDB_WARNINGS -Wthread-safety)
  endif()
  if(STEDB_WERROR)
    list(APPEND STEDB_WARNINGS -Werror)
  endif()
elseif(MSVC)
  list(APPEND STEDB_WARNINGS /W4)
  if(STEDB_WERROR)
    list(APPEND STEDB_WARNINGS /WX)
  endif()
endif()

function(stedb_set_warnings target)
  target_compile_options(${target} PRIVATE ${STEDB_WARNINGS})
endfunction()
