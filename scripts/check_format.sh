#!/usr/bin/env sh
# Formatting gate over every tracked C++ file, driven by .clang-format.
#
# Usage:
#   scripts/check_format.sh --check    # exit 1 and show diffs on drift
#   scripts/check_format.sh --fix      # rewrite files in place
#
# clang-format is not part of the pinned local toolchain; when the
# binary is absent the script reports a skip and exits 0. CI installs
# clang-format and runs --check as a blocking step, so a failure there
# is fixed by re-running --fix with the same clang-format major version
# the job prints.
set -eu

MODE="${1:---check}"
case "$MODE" in
  --check|--fix) ;;
  *) echo "usage: $0 [--check|--fix]" >&2; exit 2 ;;
esac

FMT=$(command -v clang-format || true)
if [ -z "$FMT" ]; then
  echo "check_format: clang-format not found; skipping (CI enforces this check)"
  exit 0
fi

cd "$(dirname "$0")/.."
"$FMT" --version

FILES=$(git ls-files '*.cc' '*.h')
if [ "$MODE" = "--fix" ]; then
  # shellcheck disable=SC2086
  "$FMT" -i $FILES
  echo "check_format: formatted $(printf '%s\n' $FILES | wc -l) file(s)"
else
  # shellcheck disable=SC2086
  if ! "$FMT" --dry-run -Werror $FILES; then
    echo "check_format: drift detected; run scripts/check_format.sh --fix" >&2
    exit 1
  fi
  echo "check_format: clean"
fi
