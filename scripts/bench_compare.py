#!/usr/bin/env python3
"""Diff BENCH_*.json bench reports against committed baselines.

Usage:
    scripts/bench_compare.py [--baseline-dir bench/baselines]
                             [--tolerance 3.0] [--report PATH]
                             [--fail-on-timing]
                             CANDIDATE.json [CANDIDATE.json ...]

Each candidate report (BENCH_parallel.json / BENCH_store.json /
BENCH_serving.json / BENCH_ann.json, as emitted by micro_hotpaths /
table7_store_io / table8_serving + table9_serve / table10_ann) is matched
to the baseline file of the same name under --baseline-dir and compared
numeric leaf by numeric leaf. (`recall_at_10` is additionally gated at
0.95 inside table10_ann itself — a recall drop fails the bench binary
before the comparison ever runs.)

Comparison model: CI and developer machines differ wildly, so wall-clock
values are only gated by a generous multiplicative tolerance — a metric
REGRESSES when `candidate > baseline * tolerance` (for metrics where
bigger is worse) or `candidate < baseline / tolerance` (for the
`speedup` / `*_speedup` / `*_reduction` ratio metrics, where bigger is
better). Count metrics (`vectors`, `dim`, `*_fsyncs`) are shape checks
and compared exactly; a mismatch there means the workload changed, not
the machine, so it is STRUCTURAL and always fails the gate. Machine
descriptors (`hardware_concurrency`, thread counts, load-gen sizes) are
reported but never compared.

Ratio metrics are only portable between machines with the same core
count — a 4-core baseline's `parallel_speedup` is unreachable on a
1-core runner no matter how healthy the code is. When the baseline and
candidate reports record different `hardware_concurrency`, every
bigger-is-better comparison is SKIPPED instead of judged.

Exit code: structural problems (shape mismatches, metrics that vanished,
a candidate report that was never produced) always exit 1 — CI blocks on
those. Timing/ratio regressions are reported but exit 0 unless
--fail-on-timing is given, so noisy-machine wall-clock drift stays a
trend signal rather than a gate.
"""

import argparse
import json
import os
import sys

# Metric-name suffixes (or exact leaves) where larger is BETTER (ratios
# engineered so the bench passing means the number is high). Everything
# else numeric is a cost (seconds, ns, us) where larger is worse.
BIGGER_IS_BETTER_SUFFIXES = ("_speedup", "_reduction")
BIGGER_IS_BETTER_LEAVES = ("speedup", "qps", "recall_at_10")
# Exact-match shape fields: machine-independent workload descriptors. A
# mismatch is structural (the workload changed), not timing noise.
EXACT_FIELDS = ("vectors", "dim", "synced_fsyncs", "grouped_fsyncs")
# Machine/load descriptors: recorded so humans (and the core-count skip
# below) can interpret the numbers, but never themselves a regression.
MACHINE_FIELDS = ("hardware_concurrency", "threads", "load_threads",
                  "served_facts", "requests", "queries")


def flatten(node, prefix=""):
    """Yields (dotted_path, value) for every numeric leaf."""
    if isinstance(node, dict):
        for key, value in sorted(node.items()):
            yield from flatten(value, f"{prefix}.{key}" if prefix else key)
    elif isinstance(node, list):
        for item in node:
            # Rows are keyed by their "name" field when present, so list
            # order changes don't produce phantom diffs.
            tag = item.get("name") if isinstance(item, dict) else None
            label = f"{prefix}[{tag}]" if tag else f"{prefix}[]"
            yield from flatten(item, label)
    elif isinstance(node, bool):
        return  # bools are config, not metrics
    elif isinstance(node, (int, float)):
        yield prefix, float(node)


def classify(path):
    leaf = path.rsplit(".", 1)[-1]
    if leaf in MACHINE_FIELDS:
        return "machine"
    if leaf in EXACT_FIELDS:
        return "exact"
    if leaf in BIGGER_IS_BETTER_LEAVES or leaf.endswith(
            BIGGER_IS_BETTER_SUFFIXES):
        return "bigger_better"
    return "smaller_better"


def compare(baseline, candidate, tolerance):
    """Returns (rows, structural, timing, skipped) for two reports.

    `structural` counts shape changes and vanished metrics (blocking);
    `timing` counts tolerance-exceeded wall-clock/ratio drifts (advisory);
    `skipped` counts bigger-is-better comparisons not judged because the
    baseline and candidate machines have different core counts.
    """
    base = dict(flatten(baseline))
    cand = dict(flatten(candidate))
    same_cores = base.get("hardware_concurrency") == cand.get(
        "hardware_concurrency")
    rows = []
    structural = 0
    timing = 0
    skipped = 0
    for path in sorted(set(base) | set(cand)):
        if path not in base:
            rows.append((path, None, cand[path], "NEW"))
            continue
        kind = classify(path)
        if path not in cand:
            if kind == "machine":
                rows.append((path, base[path], None, "machine"))
            else:
                rows.append((path, base[path], None, "MISSING"))
                structural += 1
            continue
        b, c = base[path], cand[path]
        verdict = "ok"
        if kind == "machine":
            verdict = "machine"
        elif kind == "exact":
            if b != c:
                verdict = "SHAPE-CHANGED"
                structural += 1
        elif kind == "bigger_better":
            if not same_cores:
                verdict = "skipped (cores differ)"
                skipped += 1
            elif b > 0 and c < b / tolerance:
                verdict = "REGRESSED"
                timing += 1
        else:
            if b > 0 and c > b * tolerance:
                verdict = "REGRESSED"
                timing += 1
        rows.append((path, b, c, verdict))
    return rows, structural, timing, skipped


def render(name, rows):
    lines = [f"== {name} =="]
    width = max((len(r[0]) for r in rows), default=20)
    for path, b, c, verdict in rows:
        fb = "-" if b is None else f"{b:.6g}"
        fc = "-" if c is None else f"{c:.6g}"
        ratio = ""
        if b and c and b > 0:
            ratio = f" ({c / b:.2f}x)"
        marker = ("" if verdict in ("ok", "NEW", "machine",
                                    "skipped (cores differ)")
                  else "  <<< ")
        lines.append(
            f"  {path:<{width}}  base={fb:>12}  now={fc:>12}{ratio}"
            f"  {verdict}{marker}")
    return "\n".join(lines)


def main():
    parser = argparse.ArgumentParser(
        description="Compare BENCH_*.json against committed baselines")
    parser.add_argument("candidates", nargs="+",
                        help="candidate BENCH_*.json files")
    parser.add_argument("--baseline-dir", default="bench/baselines")
    parser.add_argument("--tolerance", type=float, default=3.0,
                        help="multiplicative slack for timing metrics "
                             "(default 3.0; CI machines are noisy)")
    parser.add_argument("--report", default=None,
                        help="also write the rendered comparison here")
    parser.add_argument("--fail-on-timing", action="store_true",
                        help="also exit nonzero on tolerance-exceeded "
                             "timing drift (default: structural only)")
    args = parser.parse_args()

    chunks = []
    total_structural = 0
    total_timing = 0
    total_skipped = 0
    for candidate_path in args.candidates:
        name = os.path.basename(candidate_path)
        baseline_path = os.path.join(args.baseline_dir, name)
        if not os.path.exists(candidate_path):
            chunks.append(f"== {name} ==\n  candidate missing "
                          f"({candidate_path}) — bench did not run?")
            total_structural += 1
            continue
        with open(candidate_path) as f:
            candidate = json.load(f)
        if not os.path.exists(baseline_path):
            chunks.append(f"== {name} ==\n  no baseline at {baseline_path} "
                          "— commit one to start tracking")
            continue
        with open(baseline_path) as f:
            baseline = json.load(f)
        rows, structural, timing, skipped = compare(baseline, candidate,
                                                    args.tolerance)
        total_structural += structural
        total_timing += timing
        total_skipped += skipped
        chunks.append(render(name, rows))

    report = "\n\n".join(chunks)
    timing_note = (", blocking via --fail-on-timing"
                   if args.fail_on_timing else "")
    report += (f"\n\ntolerance: {args.tolerance}x, "
               f"structural: {total_structural} (blocking), "
               f"timing: {total_timing} (advisory{timing_note})\n")
    if total_skipped:
        # One unmissable line: silence must never read as coverage.
        report += (f"skipped: {total_skipped} bigger-is-better ratio "
                   "comparison(s) not judged (baseline and candidate "
                   "core counts differ)\n")
    print(report)
    if args.report:
        with open(args.report, "w") as f:
            f.write(report)
    if total_structural:
        return 1
    if args.fail_on_timing and total_timing:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
