#!/usr/bin/env python3
"""Diff BENCH_*.json bench reports against committed baselines.

Usage:
    scripts/bench_compare.py [--baseline-dir bench/baselines]
                             [--tolerance 3.0] [--report PATH]
                             CANDIDATE.json [CANDIDATE.json ...]

Each candidate report (BENCH_parallel.json / BENCH_store.json /
BENCH_serving.json, as emitted by micro_hotpaths / table7_store_io /
table8_serving) is matched to the baseline file of the same name under
--baseline-dir and compared numeric leaf by numeric leaf.

Comparison model: CI and developer machines differ wildly, so absolute
wall-clock values are only gated by a generous multiplicative tolerance —
a metric REGRESSES when `candidate > baseline * tolerance` (for metrics
where bigger is worse) or `candidate < baseline / tolerance` (for the
`*_speedup` / `*_reduction` ratio metrics, where bigger is better). Count
metrics (`vectors`, `dim`, `*_fsyncs`) are shape checks and compared
exactly; a mismatch there means the workload changed, not the machine.

Exit code: 0 when nothing regressed beyond tolerance, 1 otherwise. The
CI step runs with continue-on-error (trend tracking, not a gate yet) and
uploads the rendered report as an artifact; tighten the tolerance and drop
continue-on-error once a few data points exist (ROADMAP item).
"""

import argparse
import json
import os
import sys

# Metric-name suffixes where larger is BETTER (ratios engineered so the
# bench passing means the number is high). Everything else numeric is a
# cost (seconds, ns, us) where larger is worse.
BIGGER_IS_BETTER_SUFFIXES = ("_speedup", "_reduction")
# Exact-match shape fields: machine-independent workload descriptors.
EXACT_FIELDS = ("vectors", "dim", "synced_fsyncs", "grouped_fsyncs")


def flatten(node, prefix=""):
    """Yields (dotted_path, value) for every numeric leaf."""
    if isinstance(node, dict):
        for key, value in sorted(node.items()):
            yield from flatten(value, f"{prefix}.{key}" if prefix else key)
    elif isinstance(node, list):
        for item in node:
            # Rows are keyed by their "name" field when present, so list
            # order changes don't produce phantom diffs.
            tag = item.get("name") if isinstance(item, dict) else None
            label = f"{prefix}[{tag}]" if tag else f"{prefix}[]"
            yield from flatten(item, label)
    elif isinstance(node, bool):
        return  # bools are config, not metrics
    elif isinstance(node, (int, float)):
        yield prefix, float(node)


def classify(path):
    leaf = path.rsplit(".", 1)[-1]
    if leaf in EXACT_FIELDS:
        return "exact"
    if leaf.endswith(BIGGER_IS_BETTER_SUFFIXES):
        return "bigger_better"
    return "smaller_better"


def compare(baseline, candidate, tolerance):
    """Returns (rows, regressions) comparing two flattened reports."""
    base = dict(flatten(baseline))
    cand = dict(flatten(candidate))
    rows = []
    regressions = 0
    for path in sorted(set(base) | set(cand)):
        if path not in base:
            rows.append((path, None, cand[path], "NEW"))
            continue
        if path not in cand:
            rows.append((path, base[path], None, "MISSING"))
            regressions += 1
            continue
        b, c = base[path], cand[path]
        kind = classify(path)
        verdict = "ok"
        if kind == "exact":
            if b != c:
                verdict = "SHAPE-CHANGED"
                regressions += 1
        elif kind == "bigger_better":
            if b > 0 and c < b / tolerance:
                verdict = "REGRESSED"
                regressions += 1
        else:
            if b > 0 and c > b * tolerance:
                verdict = "REGRESSED"
                regressions += 1
        rows.append((path, b, c, verdict))
    return rows, regressions


def render(name, rows):
    lines = [f"== {name} =="]
    width = max((len(r[0]) for r in rows), default=20)
    for path, b, c, verdict in rows:
        fb = "-" if b is None else f"{b:.6g}"
        fc = "-" if c is None else f"{c:.6g}"
        ratio = ""
        if b and c and b > 0:
            ratio = f" ({c / b:.2f}x)"
        marker = "" if verdict in ("ok", "NEW") else "  <<< "
        lines.append(
            f"  {path:<{width}}  base={fb:>12}  now={fc:>12}{ratio}"
            f"  {verdict}{marker}")
    return "\n".join(lines)


def main():
    parser = argparse.ArgumentParser(
        description="Compare BENCH_*.json against committed baselines")
    parser.add_argument("candidates", nargs="+",
                        help="candidate BENCH_*.json files")
    parser.add_argument("--baseline-dir", default="bench/baselines")
    parser.add_argument("--tolerance", type=float, default=3.0,
                        help="multiplicative slack for timing metrics "
                             "(default 3.0; CI machines are noisy)")
    parser.add_argument("--report", default=None,
                        help="also write the rendered comparison here")
    args = parser.parse_args()

    chunks = []
    total_regressions = 0
    for candidate_path in args.candidates:
        name = os.path.basename(candidate_path)
        baseline_path = os.path.join(args.baseline_dir, name)
        if not os.path.exists(candidate_path):
            chunks.append(f"== {name} ==\n  candidate missing "
                          f"({candidate_path}) — bench did not run?")
            total_regressions += 1
            continue
        with open(candidate_path) as f:
            candidate = json.load(f)
        if not os.path.exists(baseline_path):
            chunks.append(f"== {name} ==\n  no baseline at {baseline_path} "
                          "— commit one to start tracking")
            continue
        with open(baseline_path) as f:
            baseline = json.load(f)
        rows, regressions = compare(baseline, candidate, args.tolerance)
        total_regressions += regressions
        chunks.append(render(name, rows))

    report = "\n\n".join(chunks)
    report += (f"\n\ntolerance: {args.tolerance}x, "
               f"regressions: {total_regressions}\n")
    print(report)
    if args.report:
        with open(args.report, "w") as f:
            f.write(report)
    return 1 if total_regressions else 0


if __name__ == "__main__":
    sys.exit(main())
