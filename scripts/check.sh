#!/usr/bin/env sh
# Developer loop: configure + build + full tier-1 verify + bench smoke.
# Usage: scripts/check.sh [--static] [build-dir]   (default: build)
#
# --static additionally runs the static-analysis gates CI enforces:
# stedb_lint over the real tree, the clang-tidy wall (skipped when
# clang-tidy is absent locally), and the formatting check (likewise).
set -eu

STATIC=0
if [ "${1:-}" = "--static" ]; then
  STATIC=1
  shift
fi
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"
cmake --build "$BUILD_DIR" --target bench_smoke

if [ "$STATIC" = 1 ]; then
  "$BUILD_DIR"/tools/stedb_lint --root .
  scripts/run_tidy.sh "$BUILD_DIR"
  scripts/check_format.sh --check
fi
