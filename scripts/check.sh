#!/usr/bin/env sh
# Developer loop: configure + build + full tier-1 verify + bench smoke.
# Usage: scripts/check.sh [build-dir]   (default: build)
set -eu

BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"
cmake --build "$BUILD_DIR" --target bench_smoke
