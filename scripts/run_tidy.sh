#!/usr/bin/env sh
# clang-tidy over the library, tools, bench and example sources, driven
# by the curated wall in .clang-tidy (WarningsAsErrors promotes every
# finding, so a non-zero exit means the wall was breached).
#
# Usage:
#   scripts/run_tidy.sh [build-dir]              # full tree
#   scripts/run_tidy.sh --changed [BASE] [build-dir]
#
# --changed lints only .cc files touched since BASE (default origin/main,
# falling back to HEAD~1), plus the .cc twin of any touched header —
# the cheap pre-push loop. CI runs the full form.
#
# clang-tidy is not part of the pinned local toolchain; when the binary
# is absent the script reports a skip and exits 0 so `check.sh --static`
# stays usable everywhere. CI installs clang-tidy, so absence there
# cannot mask findings.
set -eu

MODE=full
BASE=""
BUILD_DIR=build
if [ "${1:-}" = "--changed" ]; then
  MODE=changed
  shift
  case "${1:-}" in
    ""|build*) ;;
    *) BASE="$1"; shift ;;
  esac
fi
[ -n "${1:-}" ] && BUILD_DIR="$1"

TIDY=$(command -v clang-tidy || true)
if [ -z "$TIDY" ]; then
  echo "run_tidy: clang-tidy not found; skipping (CI enforces this check)"
  exit 0
fi

cd "$(dirname "$0")/.."

# clang-tidy resolves flags through the compile database; configure one
# if this build dir has never been configured.
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  cmake -B "$BUILD_DIR" -S . >/dev/null
fi

if [ "$MODE" = "changed" ]; then
  if [ -z "$BASE" ]; then
    if git rev-parse --verify -q origin/main >/dev/null; then
      BASE=origin/main
    else
      BASE=HEAD~1
    fi
  fi
  CHANGED=$( { git diff --name-only "$BASE" 2>/dev/null;
               git diff --name-only; } | sort -u)
  FILES=""
  for f in $CHANGED; do
    case "$f" in
      src/*.cc|tools/*.cc|bench/*.cc|examples/*.cc)
        [ -f "$f" ] && FILES="$FILES $f" ;;
      src/*.h)
        # Lint the header through its same-stem TU when one exists.
        twin="${f%.h}.cc"
        [ -f "$twin" ] && FILES="$FILES $twin" ;;
    esac
  done
  FILES=$(printf '%s\n' $FILES | sort -u)
  if [ -z "$FILES" ]; then
    echo "run_tidy: no changed sources vs $BASE"
    exit 0
  fi
else
  FILES=$(git ls-files 'src/*.cc' 'tools/*.cc' 'bench/*.cc' 'examples/*.cc')
fi

echo "run_tidy: linting $(printf '%s\n' $FILES | wc -l) file(s)"
STATUS=0
for f in $FILES; do
  "$TIDY" -p "$BUILD_DIR" --quiet "$f" || STATUS=1
done
exit $STATUS
