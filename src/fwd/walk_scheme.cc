#include "src/fwd/walk_scheme.h"

#include <sstream>

namespace stedb::fwd {

db::RelationId WalkScheme::End(const db::Schema& schema) const {
  db::RelationId cur = start;
  for (const WalkStep& s : steps) {
    const db::ForeignKey& fk = schema.fk(s.fk);
    cur = s.forward ? fk.to_rel : fk.from_rel;
  }
  return cur;
}

std::string WalkScheme::ToString(const db::Schema& schema) const {
  if (steps.empty()) return schema.relation(start).name + "[]";
  std::ostringstream os;
  db::RelationId cur = start;
  for (size_t i = 0; i < steps.size(); ++i) {
    const db::ForeignKey& fk = schema.fk(steps[i].fk);
    const db::RelationSchema& from = schema.relation(fk.from_rel);
    const db::RelationSchema& to = schema.relation(fk.to_rel);
    // Render the side we are on first, as in the paper's notation
    // R[A]—S[B].
    std::string from_attrs, to_attrs;
    for (size_t j = 0; j < fk.from_attrs.size(); ++j) {
      if (j > 0) from_attrs += ",";
      from_attrs += from.attrs[fk.from_attrs[j]].name;
    }
    for (size_t j = 0; j < fk.to_attrs.size(); ++j) {
      if (j > 0) to_attrs += ",";
      to_attrs += to.attrs[fk.to_attrs[j]].name;
    }
    if (i > 0) os << ", ";
    if (steps[i].forward) {
      os << from.name << "[" << from_attrs << "]—" << to.name << "["
         << to_attrs << "]";
      cur = fk.to_rel;
    } else {
      os << to.name << "[" << to_attrs << "]—" << from.name << "["
         << from_attrs << "]";
      cur = fk.from_rel;
    }
  }
  (void)cur;
  return os.str();
}

std::vector<WalkScheme> EnumerateWalkSchemes(const db::Schema& schema,
                                             db::RelationId start,
                                             int max_len,
                                             size_t max_schemes) {
  std::vector<WalkScheme> out;
  WalkScheme base;
  base.start = start;
  out.push_back(base);  // the length-zero scheme

  // BFS by length: extend every scheme of length L by every applicable step.
  std::vector<WalkScheme> frontier = {base};
  for (int len = 1; len <= max_len; ++len) {
    std::vector<WalkScheme> next;
    for (const WalkScheme& s : frontier) {
      db::RelationId cur = s.End(schema);
      for (size_t f = 0; f < schema.num_foreign_keys(); ++f) {
        const db::ForeignKey& fk = schema.fk(static_cast<db::FkId>(f));
        if (fk.from_rel == cur) {
          WalkScheme ext = s;
          ext.steps.push_back({static_cast<db::FkId>(f), true});
          next.push_back(std::move(ext));
        }
        if (fk.to_rel == cur) {
          WalkScheme ext = s;
          ext.steps.push_back({static_cast<db::FkId>(f), false});
          next.push_back(std::move(ext));
        }
        if (max_schemes > 0 && out.size() + next.size() >= max_schemes) {
          break;
        }
      }
      if (max_schemes > 0 && out.size() + next.size() >= max_schemes) break;
    }
    for (WalkScheme& s : next) out.push_back(s);
    frontier = std::move(next);
    if (frontier.empty()) break;
    if (max_schemes > 0 && out.size() >= max_schemes) {
      out.resize(max_schemes);
      break;
    }
  }
  return out;
}

std::vector<SchemeTarget> BuildTargets(const db::Schema& schema,
                                       const std::vector<WalkScheme>& schemes,
                                       const AttrKeySet& excluded) {
  std::vector<SchemeTarget> targets;
  for (size_t si = 0; si < schemes.size(); ++si) {
    db::RelationId end = schemes[si].End(schema);
    const db::RelationSchema& rel = schema.relation(end);
    for (size_t a = 0; a < rel.arity(); ++a) {
      if (schema.AttrInAnyFk(end, static_cast<db::AttrId>(a))) continue;
      if (excluded.count({end, static_cast<db::AttrId>(a)}) > 0) continue;
      targets.push_back({static_cast<int>(si), static_cast<db::AttrId>(a)});
    }
  }
  return targets;
}

}  // namespace stedb::fwd
