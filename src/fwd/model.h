#ifndef STEDB_FWD_MODEL_H_
#define STEDB_FWD_MODEL_H_

#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/db/database.h"
#include "src/fwd/walk_scheme.h"
#include "src/la/matrix.h"

namespace stedb::fwd {

/// How the training target KD(d_{s,f}[A], d_{s,f'}[A]) of Eq. 4 is
/// estimated per sampled pair:
///  * kSingleSample — the paper's Eq. 5: one κ(g[A], g'[A]) draw. Cheapest
///    and unbiased, but its variance can swamp the informative part of KD
///    (ablated in bench/ablation_design_choices).
///  * kMultiSample  — mean of `kd_samples` independent κ draws.
///  * kExactCached  — exact KD from per-(fact, scheme, attr) destination
///    value distributions computed once by BFS and cached. The paper notes
///    computing KD "explicitly ... would be prohibitive in large
///    databases"; caching per-fact (not per-pair) distributions makes it
///    linear in |R|·|T| and is the default here.
enum class KdEstimator { kSingleSample, kMultiSample, kExactCached };

/// Hyperparameters of FoRWaRD (paper Section V-F / Table II). The paper's
/// full-scale values are in comments; defaults here are CPU-scaled but the
/// experiment harness can raise them (RunScale::kPaper).
struct ForwardConfig {
  size_t dim = 32;            ///< embedding dimension d (paper: 100)
  int max_walk_len = 3;       ///< lmax (paper: 1-3)
  size_t max_schemes = 64;    ///< cap on enumerated schemes (FK-dense schemas)
  int nsamples = 64;          ///< samples per (f, (s,A)) per epoch (paper: 5000)
  int epochs = 6;             ///< SGD epochs (paper: 5-10)
  double lr = 0.02;           ///< learning rate
  bool use_adam = true;       ///< Adam vs plain SGD
  double init_stddev = 0.1;   ///< Gaussian init scale for φ and ψ
  KdEstimator kd_estimator = KdEstimator::kExactCached;
  int kd_samples = 8;         ///< κ draws per pair for kMultiSample

  // Dynamic-extension parameters (paper Section V-E).
  int new_samples = 200;      ///< old facts sampled per (s,A) (paper: 2500)
  double ridge = 1e-8;        ///< Tikhonov term for the normal equations
  bool use_pinv = true;       ///< min-norm pseudoinverse solve (paper Eq. 10)
  /// All-at-once mode recomputes old facts' walk distributions before
  /// extending; one-by-one mode reuses cached ones (paper Section VI-E).
  bool recompute_old_paths = false;

  /// Worker threads for training (0 = default: STEDB_THREADS env var,
  /// else hardware concurrency). Results are bit-identical for a fixed
  /// seed at any thread count — see common/parallel.h.
  int threads = 0;

  uint64_t seed = 1;
};

/// A trained FoRWaRD embedding: per-fact vectors φ over one relation plus
/// the learned symmetric inner-product matrices ψ(s, A) per target.
class ForwardModel {
 public:
  ForwardModel() = default;
  ForwardModel(db::RelationId relation, size_t dim,
               std::vector<WalkScheme> schemes,
               std::vector<SchemeTarget> targets);

  db::RelationId relation() const { return relation_; }
  size_t dim() const { return dim_; }

  const std::vector<WalkScheme>& schemes() const { return schemes_; }
  const std::vector<SchemeTarget>& targets() const { return targets_; }
  /// The scheme of target `t`.
  const WalkScheme& scheme_of(size_t t) const {
    return schemes_[targets_[t].scheme_index];
  }

  bool HasEmbedding(db::FactId f) const { return phi_.count(f) > 0; }
  size_t num_embedded() const { return phi_.size(); }

  /// φ(f); NotFound when f was never embedded.
  Result<la::Vector> Embed(db::FactId f) const;

  const la::Vector& phi(db::FactId f) const { return phi_.at(f); }
  /// φ(f)'s storage, or nullptr when f was never embedded — the
  /// allocation-free lookup the batch read path uses.
  const la::Vector* FindPhi(db::FactId f) const {
    auto it = phi_.find(f);
    return it == phi_.end() ? nullptr : &it->second;
  }
  void set_phi(db::FactId f, la::Vector v) { phi_[f] = std::move(v); }
  la::Vector* mutable_phi(db::FactId f);
  const std::unordered_map<db::FactId, la::Vector>& all_phi() const {
    return phi_;
  }
  /// Every embedded fact, ascending by id — the deterministic enumeration
  /// the snapshot codec serializes and the extender samples from.
  std::vector<db::FactId> SortedFacts() const;

  const la::Matrix& psi(size_t target) const { return psi_[target]; }
  la::Matrix* mutable_psi(size_t target) { return &psi_[target]; }
  void InitPsi(double stddev, Rng& rng);

  /// φ(f)^T ψ(t) φ(g) — the model's similarity prediction (paper Eq. 3 LHS).
  double Score(db::FactId f, db::FactId g, size_t target) const;

 private:
  db::RelationId relation_ = -1;
  size_t dim_ = 0;
  std::vector<WalkScheme> schemes_;
  std::vector<SchemeTarget> targets_;
  std::unordered_map<db::FactId, la::Vector> phi_;
  std::vector<la::Matrix> psi_;
};

}  // namespace stedb::fwd

#endif  // STEDB_FWD_MODEL_H_
