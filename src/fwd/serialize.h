#ifndef STEDB_FWD_SERIALIZE_H_
#define STEDB_FWD_SERIALIZE_H_

#include <string>

#include "src/common/status.h"
#include "src/fwd/model.h"

namespace stedb::fwd {

/// Text serialization of a trained FoRWaRD model, so the static phase can
/// run once and the (frozen) embedding be shipped to downstream consumers.
/// Format (line-oriented, locale-independent):
///
///   FWDMODEL 1
///   relation <id>
///   dim <d>
///   schemes <n>
///   S <start> <len> [<fk> <f|b>]...
///   targets <n>
///   T <scheme_index> <attr>
///   psi <target_index>            (followed by d lines of d doubles)
///   phi <n>
///   P <fact_id> <d doubles>
///
/// Fact ids are only meaningful relative to the database the model was
/// trained on; callers re-attach by key if the database was rebuilt.
std::string ModelToText(const ForwardModel& model);

/// Parses ModelToText output.
Result<ForwardModel> ModelFromText(const std::string& text);

/// Writes/reads the model to a file path. SaveModel is atomic (temp file +
/// rename): a crash mid-save never clobbers an existing good model file.
/// For durable incremental state (dynamic extensions), prefer the binary
/// store::EmbeddingStore; this text path remains the import/export format.
Status SaveModel(const ForwardModel& model, const std::string& path);
Result<ForwardModel> LoadModel(const std::string& path);

}  // namespace stedb::fwd

#endif  // STEDB_FWD_SERIALIZE_H_
