#include "src/fwd/trainer.h"

#include <algorithm>

#include "src/fwd/walk_distribution.h"
#include "src/fwd/walk_sampler.h"
#include "src/la/optimizer.h"

namespace stedb::fwd {
namespace {

/// Lazily computed per-(fact, target) destination value distributions for
/// the kExactCached estimator. Missing distributions are cached too (as
/// empty), so non-existing d_{s,f}[A] is detected once.
class DistCache {
 public:
  DistCache(const db::Database* database, const ForwardModel* model)
      : dist_(database), model_(model) {}

  const ValueDistribution& Get(db::FactId f, size_t target, Rng& rng) {
    const uint64_t key =
        static_cast<uint64_t>(f) * model_->targets().size() + target;
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
    ValueDistribution d = dist_.Compute(
        model_->scheme_of(target), model_->targets()[target].attr, f, rng);
    return cache_.emplace(key, std::move(d)).first->second;
  }

 private:
  WalkDistribution dist_;
  const ForwardModel* model_;
  std::unordered_map<uint64_t, ValueDistribution> cache_;
};

}  // namespace

Result<ForwardModel> ForwardTrainer::Train(db::RelationId rel,
                                           const AttrKeySet& excluded) {
  const db::Schema& schema = db_->schema();
  if (rel < 0 || static_cast<size_t>(rel) >= schema.num_relations()) {
    return Status::OutOfRange("relation id out of range");
  }
  const std::vector<db::FactId>& facts = db_->FactsOf(rel);
  if (facts.size() < 2) {
    return Status::FailedPrecondition(
        "FoRWaRD needs at least two facts in the embedded relation");
  }

  std::vector<WalkScheme> schemes = EnumerateWalkSchemes(
      schema, rel, config_.max_walk_len, config_.max_schemes);
  std::vector<SchemeTarget> targets = BuildTargets(schema, schemes, excluded);
  if (targets.empty()) {
    return Status::FailedPrecondition(
        "T(R, lmax) is empty: no FK-free attributes reachable");
  }

  Rng rng(config_.seed);
  ForwardModel model(rel, config_.dim, std::move(schemes), std::move(targets));
  model.InitPsi(config_.init_stddev, rng);
  for (db::FactId f : facts) {
    model.set_phi(f, la::RandomVector(config_.dim, config_.init_stddev, rng));
  }

  // Optimizer blocks: [0, #facts) for φ rows, then one block per ψ.
  std::unordered_map<db::FactId, size_t> fact_block;
  fact_block.reserve(facts.size());
  for (size_t i = 0; i < facts.size(); ++i) fact_block.emplace(facts[i], i);
  const size_t psi_base = facts.size();

  std::unique_ptr<la::Optimizer> opt;
  if (config_.use_adam) {
    opt = std::make_unique<la::AdamOptimizer>(config_.lr);
  } else {
    opt = std::make_unique<la::SgdOptimizer>(config_.lr);
  }

  WalkSampler sampler(db_);
  DistCache dists(db_, &model);
  const size_t d = config_.dim;
  la::Vector grad_f(d), grad_f2(d);
  la::Matrix grad_psi(d, d);

  // Produces the regression target for a pair (f, f2, t), or < 0 when the
  // destination random variable does not exist for either side.
  auto sample_target = [&](db::FactId f, db::FactId f2, size_t t,
                           const WalkScheme& s, db::AttrId attr,
                           const Kernel& kernel) -> double {
    switch (config_.kd_estimator) {
      case KdEstimator::kExactCached: {
        const ValueDistribution& da = dists.Get(f, t, rng);
        if (!da.exists()) return -1.0;
        const ValueDistribution& dben = dists.Get(f2, t, rng);
        if (!dben.exists()) return -1.0;
        return WalkDistribution::ExpectedKernel(da, dben, kernel);
      }
      case KdEstimator::kMultiSample: {
        double acc = 0.0;
        int got = 0;
        for (int m = 0; m < config_.kd_samples; ++m) {
          std::optional<db::Value> gv =
              sampler.SampleDestinationValue(s, attr, f, rng);
          std::optional<db::Value> g2v =
              sampler.SampleDestinationValue(s, attr, f2, rng);
          if (!gv.has_value() || !g2v.has_value()) continue;
          acc += kernel.Evaluate(*gv, *g2v);
          ++got;
        }
        return got > 0 ? acc / got : -1.0;
      }
      case KdEstimator::kSingleSample: {
        std::optional<db::Value> gv =
            sampler.SampleDestinationValue(s, attr, f, rng);
        std::optional<db::Value> g2v =
            sampler.SampleDestinationValue(s, attr, f2, rng);
        if (!gv.has_value() || !g2v.has_value()) return -1.0;
        return kernel.Evaluate(*gv, *g2v);
      }
    }
    return -1.0;
  };

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    // Mild decay stabilizes the tail of training.
    opt->SetLearningRateScale(1.0 / (1.0 + 0.25 * epoch));
    std::vector<db::FactId> order(facts.begin(), facts.end());
    rng.Shuffle(order);
    for (db::FactId f : order) {
      for (size_t t = 0; t < model.targets().size(); ++t) {
        const WalkScheme& s = model.scheme_of(t);
        const db::AttrId attr = model.targets()[t].attr;
        const db::RelationId end_rel = s.End(schema);
        const Kernel& kernel = kernels_->Get(end_rel, attr);
        // In exact mode, skip the whole (f, t) block when d_{s,f}[A] does
        // not exist (checked once, cached).
        if (config_.kd_estimator == KdEstimator::kExactCached &&
            !dists.Get(f, t, rng).exists()) {
          continue;
        }
        for (int k = 0; k < config_.nsamples; ++k) {
          // f' uniform among the other facts.
          db::FactId f2 = facts[rng.NextIndex(facts.size())];
          if (f2 == f) continue;
          const double kappa = sample_target(f, f2, t, s, attr, kernel);
          if (kappa < 0.0) continue;

          // Inline SGD step on (f, f2, t, kappa).
          la::Vector& pf = *model.mutable_phi(f);
          la::Vector& pf2 = *model.mutable_phi(f2);
          la::Matrix& psi = *model.mutable_psi(t);
          la::Vector psi_pf2 = psi.MultiplyVec(pf2);
          la::Vector psi_pf = psi.MultiplyVec(pf);
          const double err = la::Dot(pf, psi_pf2) - kappa;
          for (size_t i = 0; i < d; ++i) {
            grad_f[i] = err * psi_pf2[i];
            grad_f2[i] = err * psi_pf[i];
          }
          for (size_t i = 0; i < d; ++i) {
            double* row = grad_psi.RowPtr(i);
            const double pfi = pf[i];
            const double pf2i = pf2[i];
            for (size_t j = 0; j < d; ++j) {
              row[j] = err * 0.5 * (pfi * pf2[j] + pf2i * pf[j]);
            }
          }
          opt->Step(fact_block[f], pf.data(), grad_f.data(), d);
          opt->Step(fact_block[f2], pf2.data(), grad_f2.data(), d);
          opt->Step(psi_base + t, psi.data().data(), grad_psi.data().data(),
                    d * d);
        }
      }
    }
  }
  return model;
}

double ForwardTrainer::EvaluateLoss(const ForwardModel& model,
                                    int samples_per_fact, Rng& rng) const {
  const db::Schema& schema = db_->schema();
  const std::vector<db::FactId>& facts = db_->FactsOf(model.relation());
  WalkSampler sampler(db_);
  double total = 0.0;
  size_t count = 0;
  for (db::FactId f : facts) {
    for (int k = 0; k < samples_per_fact; ++k) {
      const size_t t = rng.NextIndex(model.targets().size());
      const WalkScheme& s = model.scheme_of(t);
      const db::AttrId attr = model.targets()[t].attr;
      std::optional<db::Value> gv =
          sampler.SampleDestinationValue(s, attr, f, rng);
      if (!gv.has_value()) continue;
      db::FactId f2 = facts[rng.NextIndex(facts.size())];
      if (f2 == f || !model.HasEmbedding(f2)) continue;
      std::optional<db::Value> g2v =
          sampler.SampleDestinationValue(s, attr, f2, rng);
      if (!g2v.has_value()) continue;
      const Kernel& kernel = kernels_->Get(s.End(schema), attr);
      const double err =
          model.Score(f, f2, t) - kernel.Evaluate(*gv, *g2v);
      total += err * err;
      ++count;
    }
  }
  return count > 0 ? total / static_cast<double>(count) : 0.0;
}

}  // namespace stedb::fwd
