#include "src/fwd/trainer.h"

#include <algorithm>
#include <cstdint>
#include <numeric>

#include "src/common/parallel.h"
#include "src/fwd/dist_cache.h"
#include "src/fwd/walk_distribution.h"
#include "src/fwd/walk_sampler.h"
#include "src/la/kernels.h"
#include "src/la/optimizer.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"

namespace stedb::fwd {
namespace {

/// Registry series of the FoRWaRD trainer. The dist-cache counters mirror
/// TrainStats::dist_cache cumulatively: each Train call adds its cache's
/// final totals, so the registry reads as lifetime counts where stats()
/// stays the per-call snapshot.
struct TrainMetrics {
  obs::Registry& reg = obs::Registry::Global();
  obs::Histogram& epoch_seconds = reg.GetHistogram(
      "stedb_train_epoch_seconds",
      "Wall time of one FoRWaRD training epoch (materialize + apply)",
      obs::Buckets::Latency());
  obs::Counter& epochs = reg.GetCounter(
      "stedb_train_epochs_total", "FoRWaRD training epochs completed");
  obs::Counter& cache_hits = reg.GetCounter(
      "stedb_train_dist_cache_lookups_total",
      "DistCache lookups by outcome", {{"result", "hit"}});
  obs::Counter& cache_misses = reg.GetCounter(
      "stedb_train_dist_cache_lookups_total",
      "DistCache lookups by outcome", {{"result", "miss"}});
  obs::Counter& cache_duplicates = reg.GetCounter(
      "stedb_train_dist_cache_lookups_total",
      "DistCache lookups by outcome", {{"result", "duplicate_compute"}});
  obs::Counter& cache_locked = reg.GetCounter(
      "stedb_train_dist_cache_lookups_total",
      "DistCache lookups by outcome", {{"result", "locked"}});
};

TrainMetrics& Metrics() {
  static TrainMetrics m;
  return m;
}

[[maybe_unused]] const TrainMetrics& g_eager_metrics = Metrics();

/// One materialized training tuple of the epoch pipeline: dense indices
/// into the embedded relation's fact vector plus the regression target κ
/// (paper Eq. 5). κ depends only on the database — never on model
/// parameters — which is what lets whole batches be simulated up front by
/// parallel workers.
struct Sample {
  uint32_t f;   ///< center fact index (the position's fact)
  uint32_t f2;  ///< contrast fact index
  uint32_t t;   ///< target index
  double kappa;
};

/// Positions materialized per wave. Fixed (never derived from the thread
/// count): the decomposition, and with it every per-fact RNG stream, must
/// be identical at any pool size.
constexpr size_t kMaterializeChunk = 64;

}  // namespace

Result<ForwardModel> ForwardTrainer::Train(db::RelationId rel,
                                           const AttrKeySet& excluded) {
  const db::Schema& schema = db_->schema();
  if (rel < 0 || static_cast<size_t>(rel) >= schema.num_relations()) {
    return Status::OutOfRange("relation id out of range");
  }
  const std::vector<db::FactId>& facts = db_->FactsOf(rel);
  if (facts.size() < 2) {
    return Status::FailedPrecondition(
        "FoRWaRD needs at least two facts in the embedded relation");
  }

  std::vector<WalkScheme> schemes = EnumerateWalkSchemes(
      schema, rel, config_.max_walk_len, config_.max_schemes);
  std::vector<SchemeTarget> targets = BuildTargets(schema, schemes, excluded);
  if (targets.empty()) {
    return Status::FailedPrecondition(
        "T(R, lmax) is empty: no FK-free attributes reachable");
  }

  Rng rng(config_.seed);
  ForwardModel model(rel, config_.dim, std::move(schemes), std::move(targets));
  model.InitPsi(config_.init_stddev, rng);
  for (db::FactId f : facts) {
    model.set_phi(f, la::RandomVector(config_.dim, config_.init_stddev, rng));
  }

  const size_t F = facts.size();
  const size_t T = model.targets().size();
  const size_t d = config_.dim;
  // Optimizer blocks: [0, F) for φ rows (by dense fact index), then one
  // block per ψ. Reserve makes concurrent sharded Step calls race-free.
  const size_t psi_base = F;

  std::unique_ptr<la::Optimizer> opt;
  if (config_.use_adam) {
    opt = std::make_unique<la::AdamOptimizer>(config_.lr);
  } else {
    opt = std::make_unique<la::SgdOptimizer>(config_.lr);
  }
  opt->Reserve(F + T);

  // Roots for the parallel phases, forked serially so their stream spaces
  // are disjoint. Counter-based Fork(stream_id) off these roots gives every
  // task its own reproducible stream regardless of execution order.
  Rng sample_root = rng.Fork();
  Rng dist_root = rng.Fork();

  WalkSampler sampler(db_);
  DistCache dists(db_, &model, dist_root);
  // PooledRunner: the default thread count reuses the per-process shared
  // pool, so back-to-back Train calls stop paying a pool spin-up each.
  PooledRunner runner(config_.threads);

  // Dense φ-row index: facts of a relation map to contiguous blocks, so one
  // pointer array replaces the seed's per-sample unordered_map lookups (a
  // single-thread win on its own). Pointers stay valid: phi_ is node-based
  // and fully populated above.
  std::vector<la::Vector*> phi(F);
  for (size_t i = 0; i < F; ++i) phi[i] = model.mutable_phi(facts[i]);

  // Produces the regression target for a pair (f, f2, t), or < 0 when the
  // destination random variable does not exist for either side. Pure walk
  // simulation over the (immutable) database: thread-safe, deterministic
  // given the task's stream.
  auto sample_target = [&](db::FactId f, db::FactId f2, size_t t,
                           const WalkScheme& s, db::AttrId attr,
                           const Kernel& kernel, Rng& task_rng) -> double {
    switch (config_.kd_estimator) {
      case KdEstimator::kExactCached: {
        const ValueDistribution& da = dists.Get(f, t);
        if (!da.exists()) return -1.0;
        const ValueDistribution& dben = dists.Get(f2, t);
        if (!dben.exists()) return -1.0;
        return WalkDistribution::ExpectedKernel(da, dben, kernel);
      }
      case KdEstimator::kMultiSample: {
        double acc = 0.0;
        int got = 0;
        for (int m = 0; m < config_.kd_samples; ++m) {
          std::optional<db::Value> gv =
              sampler.SampleDestinationValue(s, attr, f, task_rng);
          std::optional<db::Value> g2v =
              sampler.SampleDestinationValue(s, attr, f2, task_rng);
          if (!gv.has_value() || !g2v.has_value()) continue;
          acc += kernel.Evaluate(*gv, *g2v);
          ++got;
        }
        return got > 0 ? acc / got : -1.0;
      }
      case KdEstimator::kSingleSample: {
        std::optional<db::Value> gv =
            sampler.SampleDestinationValue(s, attr, f, task_rng);
        std::optional<db::Value> g2v =
            sampler.SampleDestinationValue(s, attr, f2, task_rng);
        if (!gv.has_value() || !g2v.has_value()) return -1.0;
        return kernel.Evaluate(*gv, *g2v);
      }
    }
    return -1.0;
  };

  // Materializes the samples of one position of the shuffled epoch order
  // into `out`. Pure walk simulation on the task's own stream: runs on any
  // worker, concurrently with gradient application (κ never reads model
  // parameters).
  auto materialize = [&](int epoch, size_t fi, std::vector<Sample>& out) {
    const db::FactId f = facts[fi];
    Rng task_rng =
        sample_root.Fork(static_cast<uint64_t>(epoch) * F + fi);
    out.clear();
    for (size_t t = 0; t < T; ++t) {
      const WalkScheme& s = model.scheme_of(t);
      const db::AttrId attr = model.targets()[t].attr;
      const Kernel& kernel = kernels_->Get(s.End(schema), attr);
      // In exact mode, skip the whole (f, t) block when d_{s,f}[A] does
      // not exist (checked once, cached).
      if (config_.kd_estimator == KdEstimator::kExactCached &&
          !dists.Get(f, t).exists()) {
        continue;
      }
      for (int k = 0; k < config_.nsamples; ++k) {
        // f' uniform among the other facts.
        const size_t f2i = task_rng.NextIndex(F);
        if (f2i == fi) continue;
        const double kappa =
            sample_target(f, facts[f2i], t, s, attr, kernel, task_rng);
        if (kappa < 0.0) continue;
        out.push_back({static_cast<uint32_t>(fi), static_cast<uint32_t>(f2i),
                       static_cast<uint32_t>(t), kappa});
      }
    }
  };

  // Applies one position's samples with the classic online SGD inner loop:
  // fresh gradients per sample, three optimizer steps per sample. Exactly
  // one worker runs this at a time, so every parameter block sees its
  // updates in sample order — the training dynamics of the serial
  // reference, bit-identical at any thread count.
  // All inner-loop arithmetic goes through the dispatched kernel layer
  // (la/kernels.h) on preallocated buffers: MatVec for the two ψφ
  // products, Scale for the φ gradients, ScaleAdd per ψ-gradient row —
  // no per-sample allocation, and bit-identical on either SIMD path.
  la::Vector grad_f(d), grad_f2(d), psi_pf(d), psi_pf2(d);
  la::Matrix grad_psi(d, d);
  auto apply_chunk = [&](const std::vector<std::vector<Sample>>& batches,
                         size_t count) {
    for (size_t ci = 0; ci < count; ++ci) {
      for (const Sample& smp : batches[ci]) {
        la::Vector& pf = *phi[smp.f];
        la::Vector& pf2 = *phi[smp.f2];
        la::Matrix& psi = *model.mutable_psi(smp.t);
        la::MatVec(psi.data().data(), d, d, pf2.data(), psi_pf2.data());
        la::MatVec(psi.data().data(), d, d, pf.data(), psi_pf.data());
        const double err = la::Dot(pf.data(), psi_pf2.data(), d) - smp.kappa;
        la::Scale(grad_f.data(), err, psi_pf2.data(), d);
        la::Scale(grad_f2.data(), err, psi_pf.data(), d);
        // ∂L/∂ψ_ij = err/2 (φ(f)_i φ(f')_j + φ(f')_i φ(f)_j), one
        // ScaleAdd per row.
        const double half_err = 0.5 * err;
        for (size_t i = 0; i < d; ++i) {
          la::ScaleAdd(grad_psi.RowPtr(i), half_err * pf[i], pf2.data(),
                       half_err * pf2[i], pf.data(), d);
        }
        opt->Step(smp.f, pf.data(), grad_f.data(), d);
        opt->Step(smp.f2, pf2.data(), grad_f2.data(), d);
        opt->Step(psi_base + smp.t, psi.data().data(),
                  grad_psi.data().data(), d * d);
      }
    }
  };

  // Double-buffered chunk pipeline: while the (sequentially consistent)
  // apply of chunk c runs as one task, the walk simulation of chunk c + 1
  // fans out over the remaining workers. The two sides are independent —
  // materialization reads only the database, application only the model.
  std::vector<std::vector<Sample>> cur(std::min(kMaterializeChunk, F));
  std::vector<std::vector<Sample>> next(std::min(kMaterializeChunk, F));
  std::vector<size_t> order(F);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    obs::ScopedTimer epoch_timer(Metrics().epoch_seconds);
    // Mild decay stabilizes the tail of training.
    opt->SetLearningRateScale(1.0 / (1.0 + 0.25 * epoch));
    std::iota(order.begin(), order.end(), size_t{0});
    rng.Shuffle(order);

    const size_t first = std::min(kMaterializeChunk, F);
    runner.ParallelFor(first, [&](size_t ci) {
      materialize(epoch, order[ci], cur[ci]);
    });
    for (size_t chunk = 0; chunk < F; chunk += kMaterializeChunk) {
      const size_t chunk_size = std::min(kMaterializeChunk, F - chunk);
      const size_t next_begin = chunk + chunk_size;
      const size_t next_size =
          next_begin < F ? std::min(kMaterializeChunk, F - next_begin) : 0;
      runner.ParallelFor(1 + next_size, [&](size_t task) {
        if (task == 0) {
          apply_chunk(cur, chunk_size);
        } else {
          const size_t ci = task - 1;
          materialize(epoch, order[next_begin + ci], next[ci]);
        }
      });
      std::swap(cur, next);
    }
    Metrics().epochs.Inc();
  }
  stats_.dist_cache = dists.GetStats();
  TrainMetrics& m = Metrics();
  m.cache_hits.Inc(stats_.dist_cache.hits);
  m.cache_misses.Inc(stats_.dist_cache.misses);
  m.cache_duplicates.Inc(stats_.dist_cache.duplicate_computes);
  m.cache_locked.Inc(stats_.dist_cache.locked_lookups);
  return model;
}

void TouchTrainMetrics() { Metrics(); }

double ForwardTrainer::EvaluateLoss(const ForwardModel& model,
                                    int samples_per_fact, Rng& rng) const {
  const db::Schema& schema = db_->schema();
  const std::vector<db::FactId>& facts = db_->FactsOf(model.relation());
  WalkSampler sampler(db_);
  double total = 0.0;
  size_t count = 0;
  for (db::FactId f : facts) {
    for (int k = 0; k < samples_per_fact; ++k) {
      const size_t t = rng.NextIndex(model.targets().size());
      const WalkScheme& s = model.scheme_of(t);
      const db::AttrId attr = model.targets()[t].attr;
      std::optional<db::Value> gv =
          sampler.SampleDestinationValue(s, attr, f, rng);
      if (!gv.has_value()) continue;
      db::FactId f2 = facts[rng.NextIndex(facts.size())];
      if (f2 == f || !model.HasEmbedding(f2)) continue;
      std::optional<db::Value> g2v =
          sampler.SampleDestinationValue(s, attr, f2, rng);
      if (!g2v.has_value()) continue;
      const Kernel& kernel = kernels_->Get(s.End(schema), attr);
      const double err =
          model.Score(f, f2, t) - kernel.Evaluate(*gv, *g2v);
      total += err * err;
      ++count;
    }
  }
  return count > 0 ? total / static_cast<double>(count) : 0.0;
}

}  // namespace stedb::fwd
