#include "src/fwd/walk_sampler.h"

namespace stedb::fwd {

db::FactId WalkSampler::SampleDestination(const WalkScheme& s,
                                          db::FactId start, Rng& rng) const {
  db::FactId cur = start;
  for (const WalkStep& step : s.steps) {
    if (step.forward) {
      cur = db_->Referenced(cur, step.fk);
      if (cur == db::kNoFact) return db::kNoFact;
    } else {
      const std::vector<db::FactId>& back = db_->Referencing(cur, step.fk);
      if (back.empty()) return db::kNoFact;
      cur = back[rng.NextIndex(back.size())];
    }
  }
  return cur;
}

std::vector<db::FactId> WalkSampler::SampleWalk(const WalkScheme& s,
                                                db::FactId start,
                                                Rng& rng) const {
  std::vector<db::FactId> walk = {start};
  db::FactId cur = start;
  for (const WalkStep& step : s.steps) {
    if (step.forward) {
      cur = db_->Referenced(cur, step.fk);
    } else {
      const std::vector<db::FactId>& back = db_->Referencing(cur, step.fk);
      cur = back.empty() ? db::kNoFact
                         : back[rng.NextIndex(back.size())];
    }
    if (cur == db::kNoFact) return {};
    walk.push_back(cur);
  }
  return walk;
}

std::optional<db::Value> WalkSampler::SampleDestinationValue(
    const WalkScheme& s, db::AttrId attr, db::FactId start, Rng& rng,
    int max_tries) const {
  for (int t = 0; t < max_tries; ++t) {
    db::FactId dest = SampleDestination(s, start, rng);
    if (dest == db::kNoFact) continue;
    const db::Value& v = db_->value(dest, attr);
    if (!v.is_null()) return v;
  }
  return std::nullopt;
}

bool WalkSampler::ExistsFrom(const WalkScheme& s, size_t step,
                             db::AttrId attr, db::FactId cur) const {
  if (step == s.steps.size()) return !db_->value(cur, attr).is_null();
  const WalkStep& st = s.steps[step];
  if (st.forward) {
    db::FactId next = db_->Referenced(cur, st.fk);
    return next != db::kNoFact && ExistsFrom(s, step + 1, attr, next);
  }
  for (db::FactId next : db_->Referencing(cur, st.fk)) {
    if (ExistsFrom(s, step + 1, attr, next)) return true;
  }
  return false;
}

bool WalkSampler::DestinationExists(const WalkScheme& s, db::AttrId attr,
                                    db::FactId start) const {
  return ExistsFrom(s, 0, attr, start);
}

}  // namespace stedb::fwd
