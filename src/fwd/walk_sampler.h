#ifndef STEDB_FWD_WALK_SAMPLER_H_
#define STEDB_FWD_WALK_SAMPLER_H_

#include <optional>
#include <vector>

#include "src/common/rng.h"
#include "src/db/database.h"
#include "src/fwd/walk_scheme.h"

namespace stedb::fwd {

/// Samples random walks over database facts following a walk scheme
/// (paper Section V-A): forward FK steps are deterministic, backward steps
/// choose uniformly among the referencing facts. A walk *fails* when a
/// forward step hits a null FK image or a backward step has no referencing
/// facts; failed walks are resampled by the callers (the distribution is
/// conditioned on completion, see walk_distribution.h).
class WalkSampler {
 public:
  explicit WalkSampler(const db::Database* database) : db_(database) {}

  /// Destination fact of one walk from `start` with scheme `s`, or kNoFact
  /// when the walk dead-ends.
  db::FactId SampleDestination(const WalkScheme& s, db::FactId start,
                               Rng& rng) const;

  /// The full walk (start fact included), or empty on a dead end.
  std::vector<db::FactId> SampleWalk(const WalkScheme& s, db::FactId start,
                                     Rng& rng) const;

  /// Destination value d_{s,f}[A] conditioned on ≠ ⊥ (paper's posterior
  /// convention): retries up to `max_tries` walks, skipping dead ends and
  /// null destination values. nullopt when no sample was obtained.
  std::optional<db::Value> SampleDestinationValue(const WalkScheme& s,
                                                  db::AttrId attr,
                                                  db::FactId start, Rng& rng,
                                                  int max_tries = 8) const;

  /// True when at least one complete walk from `start` reaches a non-null
  /// value of `attr` (i.e. d_{s,f}[A] exists). Exact via DFS over the walk
  /// tree with memo-free early exit; cost is bounded by the walk fan-out.
  bool DestinationExists(const WalkScheme& s, db::AttrId attr,
                         db::FactId start) const;

 private:
  bool ExistsFrom(const WalkScheme& s, size_t step, db::AttrId attr,
                  db::FactId cur) const;

  const db::Database* db_;
};

}  // namespace stedb::fwd

#endif  // STEDB_FWD_WALK_SAMPLER_H_
