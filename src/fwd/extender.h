#ifndef STEDB_FWD_EXTENDER_H_
#define STEDB_FWD_EXTENDER_H_

#include <unordered_map>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/db/database.h"
#include "src/fwd/kernel.h"
#include "src/fwd/model.h"
#include "src/fwd/walk_distribution.h"

namespace stedb::fwd {

/// Dynamic-phase FoRWaRD: extends a trained model to a newly inserted fact
/// without touching any existing embedding (paper Section V-E).
///
/// For sampled triples (f_i, s_i, A_i) with known φ(f_i) it builds the
/// overdetermined linear system (Eqs. 7-9)
///     C_i = ψ(s_i, A_i) · φ(f_i),
///     b_i = KD(d_{s_i, f_i}[A_i], d_{s_i, f_new}[A_i]),
///     C · φ(f_new) = b,
/// and solves for φ(f_new) in the least-squares sense, by the Moore-Penrose
/// pseudoinverse (Eq. 10) or ridge-regularized normal equations. Stability
/// of old embeddings is guaranteed by construction: only φ(f_new) is
/// written.
///
/// Old facts' destination distributions are cached across calls; this is
/// the paper's one-by-one mode, which does not recompute paths starting at
/// old tuples. Call InvalidateCache() before an all-at-once batch to
/// recompute them against the grown database.
class ForwardExtender {
 public:
  ForwardExtender(const db::Database* database, const KernelRegistry* kernels,
                  ForwardConfig config)
      : db_(database),
        kernels_(kernels),
        config_(config),
        dist_(database) {}

  /// Computes φ(f_new) and stores it into `model`. `f_new` must be a live
  /// fact of the model's relation without an embedding yet.
  Result<la::Vector> Extend(ForwardModel& model, db::FactId f_new, Rng& rng);

  /// Drops cached old-fact walk distributions (all-at-once mode).
  void InvalidateCache() { cache_.clear(); }

  size_t cache_size() const { return cache_.size(); }

 private:
  /// Cached-or-computed distribution of d_{s_t, f}[A_t] for an old fact.
  const ValueDistribution& OldDistribution(const ForwardModel& model,
                                           size_t target, db::FactId f,
                                           Rng& rng);

  const db::Database* db_;
  const KernelRegistry* kernels_;
  ForwardConfig config_;
  WalkDistribution dist_;
  /// (fact, target) -> distribution; key = fact * #targets + target.
  std::unordered_map<uint64_t, ValueDistribution> cache_;
};

}  // namespace stedb::fwd

#endif  // STEDB_FWD_EXTENDER_H_
