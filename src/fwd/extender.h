#ifndef STEDB_FWD_EXTENDER_H_
#define STEDB_FWD_EXTENDER_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/db/database.h"
#include "src/fwd/kernel.h"
#include "src/fwd/model.h"
#include "src/fwd/walk_distribution.h"

namespace stedb::fwd {

/// Dynamic-phase FoRWaRD: extends a trained model to newly inserted facts
/// without touching any existing embedding (paper Section V-E).
///
/// For sampled triples (f_i, s_i, A_i) with known φ(f_i) it builds the
/// overdetermined linear system (Eqs. 7-9)
///     C_i = ψ(s_i, A_i) · φ(f_i),
///     b_i = KD(d_{s_i, f_i}[A_i], d_{s_i, f_new}[A_i]),
///     C · φ(f_new) = b,
/// and solves for φ(f_new) in the least-squares sense, by the Moore-Penrose
/// pseudoinverse (Eq. 10) or ridge-regularized normal equations. Stability
/// of old embeddings is guaranteed by construction: only φ(f_new) is
/// written.
///
/// This is the paper's hot dynamic path, and the per-fact solves are
/// independent — ExtendBatch fans one arrival batch's solves out over a
/// ParallelRunner. Determinism at any thread count comes from two rules:
///  * every fact solves on its own counter-based RNG stream (keyed by the
///    fact id off one serial draw per batch), so neither scheduling order
///    nor batch composition perturbs a fact's samples;
///  * cached old-fact distributions are computed on streams keyed by
///    (fact, target) alone, so *which* thread (or which batch) first needs
///    a distribution cannot change its value — the cache is a pure
///    function of its key, and the solves of one batch run against the
///    model as of batch entry.
///
/// Old facts' destination distributions are cached across calls; this is
/// the paper's one-by-one mode, which does not recompute paths starting at
/// old tuples. Call InvalidateCache() before an all-at-once batch to
/// recompute them against the grown database.
class ForwardExtender {
 public:
  ForwardExtender(const db::Database* database, const KernelRegistry* kernels,
                  ForwardConfig config)
      : db_(database),
        kernels_(kernels),
        config_(config),
        dist_(database),
        cache_seed_(Rng::MixSeed(config.seed, 0x0DD1D157ull)),
        cache_mu_(std::make_unique<Mutex>()) {}

  /// Computes φ(f_new) and stores it into `model`. `f_new` must be a live
  /// fact of the model's relation without an embedding yet.
  Result<la::Vector> Extend(ForwardModel& model, db::FactId f_new, Rng& rng);

  /// Batch extension: solves φ for every fact in `facts` (each must be a
  /// live, not-yet-embedded fact of the model's relation; duplicates are
  /// solved once) against the model state at entry, fanned out over
  /// `threads` workers (0 = the shared process pool via STEDB_THREADS /
  /// hardware concurrency). Solutions are installed into `model` — and
  /// appended to `*extended` when non-null — in ascending fact-id order;
  /// on a solver error, facts preceding the failing one (in that order)
  /// are still installed and the first error is returned. Bit-identical
  /// results at any thread count. `rng` advances exactly once per call.
  Status ExtendBatch(ForwardModel& model, const std::vector<db::FactId>& facts,
                     int threads, Rng& rng,
                     std::vector<db::FactId>* extended);

  /// Drops cached old-fact walk distributions (all-at-once mode).
  void InvalidateCache() {
    MutexLock lock(*cache_mu_);
    cache_.clear();
  }

  size_t cache_size() const {
    MutexLock lock(*cache_mu_);
    return cache_.size();
  }

 private:
  /// The least-squares solve for one new fact against `model`'s current
  /// embeddings (`old_facts`, ascending). Does not write the model; safe
  /// to call concurrently (the distribution cache is internally locked).
  Result<la::Vector> SolveOne(const ForwardModel& model,
                              const std::vector<db::FactId>& old_facts,
                              db::FactId f_new, Rng& rng);

  /// Cached-or-computed distribution of d_{s_t, f}[A_t] for an old fact.
  /// Deterministic per (fact, target): a cache miss computes on an RNG
  /// stream derived from the key, never from the calling solve's stream.
  const ValueDistribution& OldDistribution(const ForwardModel& model,
                                           size_t target, db::FactId f);

  const db::Database* db_;
  const KernelRegistry* kernels_;
  ForwardConfig config_;
  WalkDistribution dist_;
  /// Root of the per-key cache streams (fixed at construction).
  uint64_t cache_seed_;
  /// Guards cache_ during parallel solves (unique_ptr keeps the extender
  /// movable).
  std::unique_ptr<Mutex> cache_mu_;
  /// (fact, target) -> distribution; key = fact * #targets + target.
  std::unordered_map<uint64_t, ValueDistribution> cache_
      STEDB_GUARDED_BY(*cache_mu_);
};

}  // namespace stedb::fwd

#endif  // STEDB_FWD_EXTENDER_H_
