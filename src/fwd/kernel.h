#ifndef STEDB_FWD_KERNEL_H_
#define STEDB_FWD_KERNEL_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/db/database.h"

namespace stedb::fwd {

/// A similarity kernel on an attribute domain (paper Section V-B):
/// a symmetric non-negative function κ(a, b) = <α(a), α(b)> for an implicit
/// Hilbert-space embedding α. FoRWaRD only ever evaluates κ.
class Kernel {
 public:
  virtual ~Kernel() = default;
  /// κ(a, b); both values are guaranteed non-null by callers.
  virtual double Evaluate(const db::Value& a, const db::Value& b) const = 0;
  virtual std::string Name() const = 0;
};

/// Equality kernel: κ(a, a) = 1, κ(a, b) = 0 for a ≠ b. The paper's default
/// for categorical/text/identifier domains.
class EqualityKernel : public Kernel {
 public:
  double Evaluate(const db::Value& a, const db::Value& b) const override {
    return a == b ? 1.0 : 0.0;
  }
  std::string Name() const override { return "equality"; }
};

/// Gaussian kernel on numeric domains: κ(a,b) = exp(-(a-b)^2 / (2υ)).
/// The paper's default for numbers.
class GaussianKernel : public Kernel {
 public:
  /// `variance` is the υ in the formula; must be positive.
  explicit GaussianKernel(double variance) : variance_(variance) {}

  double Evaluate(const db::Value& a, const db::Value& b) const override;
  std::string Name() const override;

  double variance() const { return variance_; }

 private:
  double variance_;
};

/// Per-attribute kernel assignment for one database schema. Defaults follow
/// the paper: Gaussian for numeric attributes (with υ set to the empirical
/// variance of the active domain so similarity is scale-free), equality for
/// everything else. Individual attributes can be overridden, which is the
/// hyperparameter surface described in paper Section V-F.
class KernelRegistry {
 public:
  /// Builds the default registry for `database` (see above).
  static KernelRegistry Defaults(const db::Database& database);

  /// Registry where every attribute uses the equality kernel (ablation).
  static KernelRegistry AllEquality(const db::Schema& schema);

  /// Overrides the kernel of one attribute.
  void Set(db::RelationId rel, db::AttrId attr, std::shared_ptr<Kernel> k);

  /// The kernel for (rel, attr). Never null after construction via
  /// Defaults/AllEquality.
  const Kernel& Get(db::RelationId rel, db::AttrId attr) const;

 private:
  explicit KernelRegistry(const db::Schema& schema);
  std::vector<std::vector<std::shared_ptr<Kernel>>> kernels_;
};

}  // namespace stedb::fwd

#endif  // STEDB_FWD_KERNEL_H_
