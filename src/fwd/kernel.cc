#include "src/fwd/kernel.h"

#include <cmath>

#include "src/common/string_util.h"

namespace stedb::fwd {

double GaussianKernel::Evaluate(const db::Value& a, const db::Value& b) const {
  const double d = a.AsNumber() - b.AsNumber();
  return std::exp(-(d * d) / (2.0 * variance_));
}

std::string GaussianKernel::Name() const {
  return "gaussian(v=" + FormatDouble(variance_, 4) + ")";
}

KernelRegistry::KernelRegistry(const db::Schema& schema) {
  kernels_.resize(schema.num_relations());
  for (size_t r = 0; r < schema.num_relations(); ++r) {
    kernels_[r].resize(schema.relation(static_cast<int>(r)).arity());
  }
}

KernelRegistry KernelRegistry::Defaults(const db::Database& database) {
  const db::Schema& schema = database.schema();
  KernelRegistry reg(schema);
  auto equality = std::make_shared<EqualityKernel>();
  for (size_t r = 0; r < schema.num_relations(); ++r) {
    const db::RelationSchema& rel = schema.relation(static_cast<int>(r));
    for (size_t a = 0; a < rel.arity(); ++a) {
      const bool numeric = rel.attrs[a].type == db::AttrType::kInt ||
                           rel.attrs[a].type == db::AttrType::kReal;
      // Key/FK attributes are identifiers: always equality, regardless of
      // their storage type.
      const bool identifier =
          rel.IsKeyAttr(static_cast<int>(a)) ||
          schema.AttrInAnyFk(static_cast<int>(r), static_cast<int>(a));
      if (!numeric || identifier) {
        reg.kernels_[r][a] = equality;
        continue;
      }
      // Empirical variance of the active domain sets the Gaussian width so
      // that "similar" is relative to the attribute's own scale.
      std::vector<db::Value> dom = database.ActiveDomain(
          static_cast<db::RelationId>(r), static_cast<db::AttrId>(a));
      double mean = 0.0;
      for (const db::Value& v : dom) mean += v.AsNumber();
      if (!dom.empty()) mean /= static_cast<double>(dom.size());
      double var = 0.0;
      for (const db::Value& v : dom) {
        const double d = v.AsNumber() - mean;
        var += d * d;
      }
      if (dom.size() > 1) var /= static_cast<double>(dom.size() - 1);
      if (var <= 1e-12) var = 1.0;
      reg.kernels_[r][a] = std::make_shared<GaussianKernel>(var);
    }
  }
  return reg;
}

KernelRegistry KernelRegistry::AllEquality(const db::Schema& schema) {
  KernelRegistry reg(schema);
  auto equality = std::make_shared<EqualityKernel>();
  for (auto& rel : reg.kernels_) {
    for (auto& k : rel) k = equality;
  }
  return reg;
}

void KernelRegistry::Set(db::RelationId rel, db::AttrId attr,
                         std::shared_ptr<Kernel> k) {
  kernels_[rel][attr] = std::move(k);
}

const Kernel& KernelRegistry::Get(db::RelationId rel, db::AttrId attr) const {
  return *kernels_[rel][attr];
}

}  // namespace stedb::fwd
