#ifndef STEDB_FWD_FORWARD_H_
#define STEDB_FWD_FORWARD_H_

#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/db/database.h"
#include "src/fwd/extender.h"
#include "src/fwd/kernel.h"
#include "src/fwd/model.h"
#include "src/fwd/trainer.h"
#include "src/store/sink.h"

namespace stedb::fwd {

/// High-level facade over the FoRWaRD pipeline: static training + dynamic
/// extension with cached walk distributions.
///
///   auto fwd = ForwardEmbedder::TrainStatic(&db, rel, excluded, config);
///   ... insert new facts into db ...
///   fwd->ExtendToFacts(new_fact_ids);     // embeds new facts of `rel`
///   la::Vector v = fwd->Embed(f).value();
///
/// The database must outlive the embedder. Facts of relations other than
/// the embedded one need no embedding (paper: only the prediction relation
/// is embedded); they influence new embeddings through the walks alone.
class ForwardEmbedder {
 public:
  /// Runs the static phase. When `kernels` is null the paper's defaults are
  /// used (Gaussian for numeric attributes, equality otherwise).
  static Result<ForwardEmbedder> TrainStatic(
      const db::Database* database, db::RelationId rel,
      const AttrKeySet& excluded, ForwardConfig config,
      std::shared_ptr<const KernelRegistry> kernels = nullptr);

  /// Extends the embedding to every fact of the embedded relation in
  /// `new_facts` (facts of other relations are ignored). In all-at-once
  /// mode (config.recompute_old_paths) the old-distribution cache is
  /// dropped first.
  Status ExtendToFacts(const std::vector<db::FactId>& new_facts);

  /// φ(f); NotFound for facts never embedded.
  Result<la::Vector> Embed(db::FactId f) const { return model_.Embed(f); }

  /// Durability hook: called once per newly extended fact with the final
  /// φ(f_new) (e.g. store::EmbeddingStore::MakeSink()). A failing sink
  /// aborts ExtendToFacts. Pass an empty function to detach.
  void set_extension_sink(store::EmbeddingSink sink) {
    sink_ = std::move(sink);
  }

  const ForwardModel& model() const { return model_; }
  const KernelRegistry& kernels() const { return *kernels_; }
  db::RelationId relation() const { return model_.relation(); }
  size_t dim() const { return model_.dim(); }

 private:
  ForwardEmbedder(const db::Database* database,
                  std::shared_ptr<const KernelRegistry> kernels,
                  ForwardConfig config, ForwardModel model);

  const db::Database* db_;
  std::shared_ptr<const KernelRegistry> kernels_;
  ForwardConfig config_;
  ForwardModel model_;
  ForwardExtender extender_;
  Rng rng_;
  store::EmbeddingSink sink_;
};

}  // namespace stedb::fwd

#endif  // STEDB_FWD_FORWARD_H_
