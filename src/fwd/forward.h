#ifndef STEDB_FWD_FORWARD_H_
#define STEDB_FWD_FORWARD_H_

#include <memory>
#include <vector>

#include "src/common/span.h"
#include "src/common/status.h"
#include "src/db/database.h"
#include "src/fwd/extender.h"
#include "src/fwd/kernel.h"
#include "src/fwd/model.h"
#include "src/fwd/trainer.h"
#include "src/store/sink.h"

namespace stedb::fwd {

/// High-level facade over the FoRWaRD pipeline: static training + dynamic
/// extension with cached walk distributions.
///
///   auto fwd = ForwardEmbedder::TrainStatic(&db, rel, excluded, config);
///   ... insert new facts into db ...
///   fwd->ExtendToFacts(new_fact_ids);     // embeds new facts of `rel`
///   la::Vector v = fwd->Embed(f).value();
///
/// The database must outlive the embedder. Facts of relations other than
/// the embedded one need no embedding (paper: only the prediction relation
/// is embedded); they influence new embeddings through the walks alone.
class ForwardEmbedder {
 public:
  /// Runs the static phase. When `kernels` is null the paper's defaults are
  /// used (Gaussian for numeric attributes, equality otherwise).
  static Result<ForwardEmbedder> TrainStatic(
      const db::Database* database, db::RelationId rel,
      const AttrKeySet& excluded, ForwardConfig config,
      std::shared_ptr<const KernelRegistry> kernels = nullptr);

  /// Extends the embedding to every fact of the embedded relation in
  /// `new_facts` (facts of other relations are ignored). In all-at-once
  /// mode (config.recompute_old_paths) the old-distribution cache is
  /// dropped first. The batch's per-fact solves run in parallel
  /// (`config.threads` wide) against the model as of batch entry, with
  /// bit-identical results at any thread count; solutions land in
  /// fact-id order.
  Status ExtendToFacts(const std::vector<db::FactId>& new_facts);

  /// φ(f); NotFound for facts never embedded.
  Result<la::Vector> Embed(db::FactId f) const { return model_.Embed(f); }

  /// Batch read: fills `out` (facts.size() x dim()) with one φ row per
  /// requested fact. Large batches fan out over a ParallelRunner
  /// (`config.threads` wide); bytes are identical at any thread count.
  /// NotFound when any fact was never embedded, InvalidArgument on a
  /// shape mismatch; `out` is unspecified after an error.
  Status EmbedBatch(Span<const db::FactId> facts, la::MatrixView out) const;

  /// Durability hook: called once per newly extended fact with the final
  /// φ(f_new) (e.g. store::EmbeddingStore::MakeSink()), in fact-id order
  /// within each ExtendToFacts batch. A failing sink fails ExtendToFacts,
  /// but the unjournaled facts are retried on the next call — the journal
  /// eventually covers every vector the model serves. Pass an empty
  /// function to detach (attaching a sink resets the retry queue: a new
  /// journal starts from a full snapshot of the current model).
  void set_extension_sink(store::EmbeddingSink sink) {
    sink_ = std::move(sink);
    pending_journal_.clear();
  }

  const ForwardModel& model() const { return model_; }
  const KernelRegistry& kernels() const { return *kernels_; }
  db::RelationId relation() const { return model_.relation(); }
  size_t dim() const { return model_.dim(); }

 private:
  ForwardEmbedder(const db::Database* database,
                  std::shared_ptr<const KernelRegistry> kernels,
                  ForwardConfig config, ForwardModel model);

  const db::Database* db_;
  std::shared_ptr<const KernelRegistry> kernels_;
  ForwardConfig config_;
  ForwardModel model_;
  ForwardExtender extender_;
  Rng rng_;
  store::EmbeddingSink sink_;
  /// Facts embedded while a sink was attached but not yet successfully
  /// journaled (a failing sink or a mid-batch extension error leaves
  /// entries here); flushed, sorted, by the next ExtendToFacts.
  std::vector<db::FactId> pending_journal_;
};

}  // namespace stedb::fwd

#endif  // STEDB_FWD_FORWARD_H_
