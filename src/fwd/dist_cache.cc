#include "src/fwd/dist_cache.h"

#include <utility>

namespace stedb::fwd {

namespace {
constexpr size_t kInitialCapacity = 32;  // per shard; power of two
}  // namespace

DistCache::DistCache(const db::Database* database, const ForwardModel* model,
                     Rng root)
    : dist_(database), model_(model), root_(root) {
  for (Shard& shard : shards_) {
    auto t = std::make_unique<Table>(kInitialCapacity);
    shard.table.store(t.get(), std::memory_order_relaxed);
    shard.retired.push_back(std::move(t));
  }
}

DistCache::~DistCache() = default;

uint64_t DistCache::Mix(uint64_t key) {
  uint64_t z = key + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// stedb:wait-free-begin — the reader fast path: atomic loads only, no
// lock, no CAS (stedb_lint enforces this region stays that way).
const ValueDistribution* DistCache::Probe(const Table* t, uint64_t key) {
  const uint64_t h = Mix(key);
  for (size_t i = h & t->mask;; i = (i + 1) & t->mask) {
    const Slot& slot = t->slots[i];
    const uint64_t k = slot.key.load(std::memory_order_acquire);
    if (k == key) {
      // The insert published value (release) before key (release), so the
      // acquire above makes the value visible; the defensive null check
      // only matters for hypothetical reorderings on exotic memory models
      // and costs nothing.
      return slot.value.load(std::memory_order_acquire);
    }
    if (k == kEmptyKey) return nullptr;  // probe chain ends: miss
  }
}
// stedb:wait-free-end

const ValueDistribution& DistCache::InsertLocked(Shard& shard, uint64_t key,
                                                 ValueDistribution d) {
  Table* t = shard.table.load(std::memory_order_relaxed);
  // Grow at 7/8 load so probe chains stay short. The old table is retired,
  // not freed: concurrent readers may still be probing it.
  if ((shard.size + 1) * 8 > (t->mask + 1) * 7) {
    auto grown = std::make_unique<Table>((t->mask + 1) * 2);
    for (const Slot& slot : t->slots) {
      const uint64_t k = slot.key.load(std::memory_order_relaxed);
      if (k == kEmptyKey) continue;
      const ValueDistribution* v = slot.value.load(std::memory_order_relaxed);
      const uint64_t h = Mix(k);
      for (size_t i = h & grown->mask;; i = (i + 1) & grown->mask) {
        Slot& dst = grown->slots[i];
        if (dst.key.load(std::memory_order_relaxed) != kEmptyKey) continue;
        dst.value.store(v, std::memory_order_relaxed);
        dst.key.store(k, std::memory_order_relaxed);
        break;
      }
    }
    t = grown.get();
    // Release-publish the rehashed table: a reader that acquires the new
    // pointer sees every copied slot.
    shard.table.store(t, std::memory_order_release);
    shard.retired.push_back(std::move(grown));
  }

  auto value = std::make_unique<ValueDistribution>(std::move(d));
  const ValueDistribution* v = value.get();
  shard.values.push_back(std::move(value));
  const uint64_t h = Mix(key);
  for (size_t i = h & t->mask;; i = (i + 1) & t->mask) {
    Slot& slot = t->slots[i];
    if (slot.key.load(std::memory_order_relaxed) != kEmptyKey) continue;
    // Publication order is the reader's correctness hinge: value first,
    // key second, both release.
    slot.value.store(v, std::memory_order_release);
    slot.key.store(key, std::memory_order_release);
    break;
  }
  ++shard.size;
  return *v;
}

const ValueDistribution& DistCache::Get(db::FactId f, size_t target) {
  const uint64_t key =
      static_cast<uint64_t>(f) * model_->targets().size() + target;
  Shard& shard = shards_[Mix(key) >> 58];  // top 6 bits

  // Wait-free fast path: one acquire load of the table pointer, one probe.
  {
    const Table* t = shard.table.load(std::memory_order_acquire);
    if (const ValueDistribution* v = Probe(t, key)) {
      shard.hits.fetch_add(1, std::memory_order_relaxed);
      return *v;
    }
  }

  // Miss: compute OUTSIDE the lock. A racing duplicate computation yields
  // bit-identical bytes (key-derived stream) and the first insert wins, so
  // the cache content is schedule-independent.
  shard.misses.fetch_add(1, std::memory_order_relaxed);
  Rng rng = root_.Fork(key);
  ValueDistribution d = dist_.Compute(
      model_->scheme_of(target), model_->targets()[target].attr, f, rng);

  shard.locked_lookups.fetch_add(1, std::memory_order_relaxed);
  MutexLock lock(shard.mu);
  // Re-probe the newest table: a racing worker may have inserted first.
  const Table* t = shard.table.load(std::memory_order_relaxed);
  if (const ValueDistribution* v = Probe(t, key)) {
    shard.duplicate_computes.fetch_add(1, std::memory_order_relaxed);
    return *v;
  }
  return InsertLocked(shard, key, std::move(d));
}

// stedb:wait-free-begin — stats snapshot: relaxed loads, never a lock.
DistCacheStats DistCache::GetStats() const {
  DistCacheStats s;
  for (const Shard& shard : shards_) {
    s.hits += shard.hits.load(std::memory_order_relaxed);
    s.misses += shard.misses.load(std::memory_order_relaxed);
    s.duplicate_computes +=
        shard.duplicate_computes.load(std::memory_order_relaxed);
    s.locked_lookups += shard.locked_lookups.load(std::memory_order_relaxed);
  }
  return s;
}
// stedb:wait-free-end

}  // namespace stedb::fwd
