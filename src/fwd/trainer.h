#ifndef STEDB_FWD_TRAINER_H_
#define STEDB_FWD_TRAINER_H_

#include <memory>

#include "src/common/status.h"
#include "src/db/database.h"
#include "src/fwd/dist_cache.h"
#include "src/fwd/kernel.h"
#include "src/fwd/model.h"

namespace stedb::fwd {

/// Forces registration of the trainer's obs metric families (epoch wall
/// time, DistCache hit/miss). Serving-only processes call this so their
/// /metrics exposition carries the training schema at zero.
void TouchTrainMetrics();

/// Counters from the most recent Train call, for observability and tests.
struct TrainStats {
  /// Distribution-cache behavior under the kExactCached estimator (all
  /// zeros for the sampling estimators, which bypass the cache). A high
  /// hit/miss ratio with few locked lookups means the wait-free read path
  /// carried the materialization phase.
  DistCacheStats dist_cache;
};

/// Static-phase FoRWaRD training (paper Section V-D).
///
/// Stochastic objective: for sampled tuples (f, f', s, A, g, g') where g, g'
/// are destinations of independent random walks with scheme s from f and f',
/// minimize   L = 1/2 | φ(f)^T ψ(s,A) φ(f') − κ(g[A], g'[A]) |^2   (Eq. 5),
/// using κ(g[A], g'[A]) as the one-sample estimate of the expected kernel
/// distance KD (Eq. 2). Samples are regenerated every epoch (streaming),
/// which matches the objective in expectation without materializing the
/// paper's full sample set.
///
/// Execution model: each epoch is a materialize-then-apply pipeline on a
/// ParallelRunner with `config.threads` workers. The walk-dependent part —
/// the (f, f', t, κ) sample batches, where κ never depends on model
/// parameters — is simulated by parallel workers using counter-based
/// per-fact RNG streams and a sharded deterministic distribution cache
/// with wait-free reads (fwd/dist_cache.h), double-buffered one chunk
/// ahead of gradient application; the
/// application itself replays the classic online SGD inner loop as a
/// single pipelined task, so every parameter block sees fresh gradients in
/// sample order. Training is bit-identical for a fixed seed at any thread
/// count.
class ForwardTrainer {
 public:
  ForwardTrainer(const db::Database* database, const KernelRegistry* kernels,
                 ForwardConfig config)
      : db_(database), kernels_(kernels), config_(config) {}

  /// Trains an embedding of relation `rel`. `excluded` attributes (e.g. the
  /// downstream label) are removed from T(R, lmax) so the embedding never
  /// sees them. Returns the trained model.
  Result<ForwardModel> Train(db::RelationId rel, const AttrKeySet& excluded);

  /// Mean squared residual |score − κ|² over a fresh sample batch; exposed
  /// for convergence tests.
  double EvaluateLoss(const ForwardModel& model, int samples_per_fact,
                      Rng& rng) const;

  /// Counters from the most recent Train call (empty before the first).
  const TrainStats& stats() const { return stats_; }

 private:
  const db::Database* db_;
  const KernelRegistry* kernels_;
  ForwardConfig config_;
  TrainStats stats_;
};

}  // namespace stedb::fwd

#endif  // STEDB_FWD_TRAINER_H_
