#include "src/fwd/forward.h"

namespace stedb::fwd {

ForwardEmbedder::ForwardEmbedder(
    const db::Database* database,
    std::shared_ptr<const KernelRegistry> kernels, ForwardConfig config,
    ForwardModel model)
    : db_(database),
      kernels_(std::move(kernels)),
      config_(config),
      model_(std::move(model)),
      extender_(database, kernels_.get(), config),
      rng_(config.seed ^ 0x9e3779b97f4a7c15ull) {}

Result<ForwardEmbedder> ForwardEmbedder::TrainStatic(
    const db::Database* database, db::RelationId rel,
    const AttrKeySet& excluded, ForwardConfig config,
    std::shared_ptr<const KernelRegistry> kernels) {
  if (kernels == nullptr) {
    kernels = std::make_shared<const KernelRegistry>(
        KernelRegistry::Defaults(*database));
  }
  ForwardTrainer trainer(database, kernels.get(), config);
  STEDB_ASSIGN_OR_RETURN(ForwardModel model, trainer.Train(rel, excluded));
  return ForwardEmbedder(database, std::move(kernels), config,
                         std::move(model));
}

Status ForwardEmbedder::ExtendToFacts(
    const std::vector<db::FactId>& new_facts) {
  if (config_.recompute_old_paths) extender_.InvalidateCache();
  for (db::FactId f : new_facts) {
    if (!db_->IsLive(f)) continue;
    if (db_->fact(f).rel != model_.relation()) continue;
    if (model_.HasEmbedding(f)) continue;
    auto res = extender_.Extend(model_, f, rng_);
    if (!res.ok()) return res.status();
    if (sink_) STEDB_RETURN_IF_ERROR(sink_(f, model_.phi(f)));
  }
  return Status::OK();
}

}  // namespace stedb::fwd
