#include "src/fwd/forward.h"

#include <algorithm>

#include "src/la/row_batch.h"

namespace stedb::fwd {

ForwardEmbedder::ForwardEmbedder(
    const db::Database* database,
    std::shared_ptr<const KernelRegistry> kernels, ForwardConfig config,
    ForwardModel model)
    : db_(database),
      kernels_(std::move(kernels)),
      config_(config),
      model_(std::move(model)),
      extender_(database, kernels_.get(), config),
      rng_(config.seed ^ 0x9e3779b97f4a7c15ull) {}

Result<ForwardEmbedder> ForwardEmbedder::TrainStatic(
    const db::Database* database, db::RelationId rel,
    const AttrKeySet& excluded, ForwardConfig config,
    std::shared_ptr<const KernelRegistry> kernels) {
  if (kernels == nullptr) {
    kernels = std::make_shared<const KernelRegistry>(
        KernelRegistry::Defaults(*database));
  }
  ForwardTrainer trainer(database, kernels.get(), config);
  STEDB_ASSIGN_OR_RETURN(ForwardModel model, trainer.Train(rel, excluded));
  return ForwardEmbedder(database, std::move(kernels), config,
                         std::move(model));
}

Status ForwardEmbedder::ExtendToFacts(
    const std::vector<db::FactId>& new_facts) {
  if (config_.recompute_old_paths) extender_.InvalidateCache();
  std::vector<db::FactId> eligible;
  eligible.reserve(new_facts.size());
  for (db::FactId f : new_facts) {
    if (!db_->IsLive(f)) continue;
    if (db_->fact(f).rel != model_.relation()) continue;
    if (model_.HasEmbedding(f)) continue;
    eligible.push_back(f);
  }
  // The per-fact least-squares solves of one arrival batch are
  // independent; ExtendBatch fans them out over `config_.threads` workers
  // and installs the solutions in fact-id order, bit-identical at any
  // thread count. Facts solved before a mid-batch solver error stay
  // installed (and journaled below), exactly like the serial loop did.
  std::vector<db::FactId> extended;
  const Status extend_status = extender_.ExtendBatch(
      model_, eligible, config_.threads, rng_, &extended);
  if (sink_) {
    for (db::FactId f : extended) pending_journal_.push_back(f);
  }
  // Journal appends in fact-id order, not arrival order: the batch's
  // iteration order is a caller artifact and the solves run in parallel,
  // so sorting keeps the journal bytes deterministic for a given fact
  // set. The flush runs even when the extension failed partway, and
  // rejected appends stay queued for the next call (see
  // store::FlushPendingJournal).
  Status sink_status = store::FlushPendingJournal(
      pending_journal_, sink_,
      [this](db::FactId f) -> const la::Vector& { return model_.phi(f); });
  if (!extend_status.ok()) return extend_status;
  return sink_status;
}

Status ForwardEmbedder::EmbedBatch(Span<const db::FactId> facts,
                                   la::MatrixView out) const {
  if (out.rows() != facts.size() || out.cols() != model_.dim()) {
    return Status::InvalidArgument(
        "EmbedBatch: output shape must be facts x dim");
  }
  const size_t bad = la::GatherRows(
      facts.size(), model_.dim(), config_.threads, out, [&](size_t i) {
        const la::Vector* v = model_.FindPhi(facts[i]);
        return v == nullptr ? nullptr : v->data();
      });
  if (bad != facts.size()) {
    return Status::NotFound("fact " + std::to_string(facts[bad]) +
                            " has no embedding");
  }
  return Status::OK();
}

}  // namespace stedb::fwd
