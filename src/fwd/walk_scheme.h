#ifndef STEDB_FWD_WALK_SCHEME_H_
#define STEDB_FWD_WALK_SCHEME_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "src/db/schema.h"

namespace stedb::fwd {

/// One step of a walk scheme: follow foreign key `fk` either forward (from
/// the referencing relation R to the referenced relation S — deterministic,
/// since each fact references exactly one fact) or backward (from S to a
/// uniformly random referencing R-fact).
struct WalkStep {
  db::FkId fk = -1;
  bool forward = true;

  bool operator==(const WalkStep& o) const {
    return fk == o.fk && forward == o.forward;
  }
};

/// A walk scheme (paper Section V-A): a start relation and a sequence of FK
/// steps. Length-zero schemes are allowed and stand for "stay at the start
/// fact".
struct WalkScheme {
  db::RelationId start = -1;
  std::vector<WalkStep> steps;

  size_t length() const { return steps.size(); }

  /// The relation the scheme ends in.
  db::RelationId End(const db::Schema& schema) const;

  /// Human-readable rendering, e.g.
  /// "ACTORS[aid]—COLLAB[actor1], COLLAB[movie]—MOVIES[mid]".
  std::string ToString(const db::Schema& schema) const;

  bool operator==(const WalkScheme& o) const {
    return start == o.start && steps == o.steps;
  }
};

/// Enumerates every walk scheme of length 0..max_len starting from `start`
/// (paper Fig. 4 enumerates these for the movie schema). The number of
/// schemes grows with the FK fan-out; callers bound it via `max_schemes`
/// (0 = unbounded).
std::vector<WalkScheme> EnumerateWalkSchemes(const db::Schema& schema,
                                             db::RelationId start,
                                             int max_len,
                                             size_t max_schemes = 0);

/// One (scheme, attribute) pair from T(R, lmax): `scheme_index` indexes the
/// scheme list, `attr` is an attribute of the scheme's end relation.
struct SchemeTarget {
  int scheme_index = -1;
  db::AttrId attr = -1;
};

/// Builds T(R, lmax) (paper Section V-C): all (s, A) where A is an attribute
/// of End(s) that is involved in no FK and not excluded. `excluded` holds
/// (rel, attr) pairs such as the downstream prediction attribute.
struct AttrKey {
  db::RelationId rel;
  db::AttrId attr;
  bool operator==(const AttrKey& o) const {
    return rel == o.rel && attr == o.attr;
  }
};
struct AttrKeyHash {
  size_t operator()(const AttrKey& k) const {
    return std::hash<int64_t>()((static_cast<int64_t>(k.rel) << 32) ^
                                static_cast<uint32_t>(k.attr));
  }
};
using AttrKeySet = std::unordered_set<AttrKey, AttrKeyHash>;

std::vector<SchemeTarget> BuildTargets(const db::Schema& schema,
                                       const std::vector<WalkScheme>& schemes,
                                       const AttrKeySet& excluded);

}  // namespace stedb::fwd

#endif  // STEDB_FWD_WALK_SCHEME_H_
