#include "src/fwd/extender.h"

#include <algorithm>
#include <optional>

#include "src/common/parallel.h"
#include "src/la/solve.h"
#include "src/la/svd.h"

namespace stedb::fwd {

const ValueDistribution& ForwardExtender::OldDistribution(
    const ForwardModel& model, size_t target, db::FactId f) {
  const uint64_t key =
      static_cast<uint64_t>(f) * model.targets().size() + target;
  {
    MutexLock lock(*cache_mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
  }
  // Compute outside the lock on the key's own stream: two threads racing
  // on the same key produce identical bytes, and emplace keeps whichever
  // landed first — the cache is a pure function of its key either way.
  const WalkScheme& s = model.scheme_of(target);
  const db::AttrId attr = model.targets()[target].attr;
  Rng key_rng(Rng::MixSeed(cache_seed_, key));
  ValueDistribution d = dist_.Compute(s, attr, f, key_rng);
  MutexLock lock(*cache_mu_);
  // References into the node-based map stay valid across later inserts.
  return cache_.emplace(key, std::move(d)).first->second;
}

Result<la::Vector> ForwardExtender::SolveOne(
    const ForwardModel& model, const std::vector<db::FactId>& old_facts,
    db::FactId f_new, Rng& rng) {
  const db::Schema& schema = db_->schema();
  const size_t d = model.dim();

  // Accumulate the normal equations N = C^T C, rhs = C^T b streaming, so C
  // (which can have tens of thousands of rows at paper-scale sampling
  // counts) is never materialized.
  la::Matrix normal(d, d, 0.0);
  la::Vector rhs(d, 0.0);
  size_t rows = 0;

  for (size_t t = 0; t < model.targets().size(); ++t) {
    const WalkScheme& s = model.scheme_of(t);
    const db::AttrId attr = model.targets()[t].attr;
    ValueDistribution new_dist = dist_.Compute(s, attr, f_new, rng);
    if (!new_dist.exists()) continue;  // d_{s,f_new}[A] does not exist
    const Kernel& kernel = kernels_->Get(s.End(schema), attr);
    const la::Matrix& psi = model.psi(t);

    // Sample distinct old facts for this target.
    const size_t want =
        std::min<size_t>(config_.new_samples, old_facts.size());
    // Partial Fisher-Yates over a scratch copy of indices.
    std::vector<size_t> idx(old_facts.size());
    for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    for (size_t i = 0; i < want; ++i) {
      size_t j = i + rng.NextIndex(idx.size() - i);
      std::swap(idx[i], idx[j]);
    }
    for (size_t i = 0; i < want; ++i) {
      const db::FactId f_old = old_facts[idx[i]];
      const ValueDistribution& old_dist = OldDistribution(model, t, f_old);
      if (!old_dist.exists()) continue;
      const double b = WalkDistribution::ExpectedKernel(old_dist, new_dist,
                                                        kernel);
      // Row c = psi * phi(f_old)   (Eq. 7).
      la::Vector c = psi.MultiplyVec(model.phi(f_old));
      // N += c c^T ; rhs += b * c.
      for (size_t r = 0; r < d; ++r) {
        const double cr = c[r];
        if (cr == 0.0) continue;
        double* nrow = normal.RowPtr(r);
        for (size_t k = 0; k < d; ++k) nrow[k] += cr * c[k];
        rhs[r] += b * cr;
      }
      ++rows;
    }
  }

  if (rows == 0) {
    // Completely disconnected new fact: no constraint reaches it. Embed at
    // the origin — a neutral point that keeps downstream features finite.
    return la::Vector(d, 0.0);
  }

  if (config_.use_pinv) {
    // Min-norm least squares via the pseudoinverse of the (d x d) normal
    // matrix: x = N^+ rhs, equivalent to C^+ b on the row space (Eq. 10).
    STEDB_ASSIGN_OR_RETURN(la::Matrix pinv, la::PseudoInverse(normal));
    return pinv.MultiplyVec(rhs);
  }
  for (size_t i = 0; i < d; ++i) normal(i, i) += config_.ridge;
  return la::CholeskySolve(normal, rhs);
}

Result<la::Vector> ForwardExtender::Extend(ForwardModel& model,
                                           db::FactId f_new, Rng& rng) {
  if (!db_->IsLive(f_new)) {
    return Status::NotFound("new fact is not live");
  }
  if (db_->fact(f_new).rel != model.relation()) {
    return Status::InvalidArgument(
        "fact belongs to a different relation than the model");
  }
  if (model.HasEmbedding(f_new)) {
    return Status::AlreadyExists("fact already has an embedding");
  }
  const std::vector<db::FactId> old_facts = model.SortedFacts();
  if (old_facts.empty()) {
    return Status::FailedPrecondition("model has no embedded facts");
  }
  STEDB_ASSIGN_OR_RETURN(la::Vector solution,
                         SolveOne(model, old_facts, f_new, rng));
  model.set_phi(f_new, solution);
  return solution;
}

Status ForwardExtender::ExtendBatch(ForwardModel& model,
                                    const std::vector<db::FactId>& facts,
                                    int threads, Rng& rng,
                                    std::vector<db::FactId>* extended) {
  // One serial draw per call — unconditionally, so the caller's rng
  // state depends only on how many batches ran, never on what they
  // contained (the documented "advances exactly once per call").
  const Rng batch_root = rng.Fork();

  // Ascending + deduplicated: the solve order the results are installed
  // in, independent of the caller's arrival order.
  std::vector<db::FactId> todo = facts;
  std::sort(todo.begin(), todo.end());
  todo.erase(std::unique(todo.begin(), todo.end()), todo.end());
  if (todo.empty()) return Status::OK();

  for (db::FactId f : todo) {
    if (!db_->IsLive(f)) return Status::NotFound("new fact is not live");
    if (db_->fact(f).rel != model.relation()) {
      return Status::InvalidArgument(
          "fact belongs to a different relation than the model");
    }
    if (model.HasEmbedding(f)) {
      return Status::AlreadyExists("fact already has an embedding");
    }
  }

  const std::vector<db::FactId> old_facts = model.SortedFacts();
  if (old_facts.empty()) {
    return Status::FailedPrecondition("model has no embedded facts");
  }

  // Each fact forks its own counter-based stream off the batch root,
  // keyed by its id — scheduling order cannot touch it. All solves read
  // the model as of batch entry: within one arrival batch no new fact
  // samples another, which also makes the result independent of arrival
  // order (matching the fact-id-ordered journal).
  std::vector<std::optional<Result<la::Vector>>> solutions(todo.size());
  RunParallelFor(threads, todo.size(), [&](size_t i) {
    Rng fact_rng = batch_root.Fork(static_cast<uint64_t>(todo[i]));
    solutions[i].emplace(SolveOne(model, old_facts, todo[i], fact_rng));
  });

  for (size_t i = 0; i < todo.size(); ++i) {
    if (!solutions[i]->ok()) return solutions[i]->status();
    model.set_phi(todo[i], std::move(solutions[i]->value()));
    if (extended != nullptr) extended->push_back(todo[i]);
  }
  return Status::OK();
}

}  // namespace stedb::fwd
