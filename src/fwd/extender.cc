#include "src/fwd/extender.h"

#include "src/la/solve.h"
#include "src/la/svd.h"

namespace stedb::fwd {

const ValueDistribution& ForwardExtender::OldDistribution(
    const ForwardModel& model, size_t target, db::FactId f, Rng& rng) {
  const uint64_t key =
      static_cast<uint64_t>(f) * model.targets().size() + target;
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  const WalkScheme& s = model.scheme_of(target);
  const db::AttrId attr = model.targets()[target].attr;
  ValueDistribution d = dist_.Compute(s, attr, f, rng);
  return cache_.emplace(key, std::move(d)).first->second;
}

Result<la::Vector> ForwardExtender::Extend(ForwardModel& model,
                                           db::FactId f_new, Rng& rng) {
  if (!db_->IsLive(f_new)) {
    return Status::NotFound("new fact is not live");
  }
  if (db_->fact(f_new).rel != model.relation()) {
    return Status::InvalidArgument(
        "fact belongs to a different relation than the model");
  }
  if (model.HasEmbedding(f_new)) {
    return Status::AlreadyExists("fact already has an embedding");
  }
  const db::Schema& schema = db_->schema();
  const size_t d = model.dim();

  // Candidate old facts (embedding known). Sampled per target below.
  std::vector<db::FactId> old_facts;
  old_facts.reserve(model.num_embedded());
  for (const auto& [f, v] : model.all_phi()) old_facts.push_back(f);
  if (old_facts.empty()) {
    return Status::FailedPrecondition("model has no embedded facts");
  }

  // Accumulate the normal equations N = C^T C, rhs = C^T b streaming, so C
  // (which can have tens of thousands of rows at paper-scale sampling
  // counts) is never materialized.
  la::Matrix normal(d, d, 0.0);
  la::Vector rhs(d, 0.0);
  size_t rows = 0;

  for (size_t t = 0; t < model.targets().size(); ++t) {
    const WalkScheme& s = model.scheme_of(t);
    const db::AttrId attr = model.targets()[t].attr;
    ValueDistribution new_dist = dist_.Compute(s, attr, f_new, rng);
    if (!new_dist.exists()) continue;  // d_{s,f_new}[A] does not exist
    const Kernel& kernel = kernels_->Get(s.End(schema), attr);
    const la::Matrix& psi = model.psi(t);

    // Sample distinct old facts for this target.
    const size_t want =
        std::min<size_t>(config_.new_samples, old_facts.size());
    // Partial Fisher-Yates over a scratch copy of indices.
    std::vector<size_t> idx(old_facts.size());
    for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    for (size_t i = 0; i < want; ++i) {
      size_t j = i + rng.NextIndex(idx.size() - i);
      std::swap(idx[i], idx[j]);
    }
    for (size_t i = 0; i < want; ++i) {
      const db::FactId f_old = old_facts[idx[i]];
      const ValueDistribution& old_dist = OldDistribution(model, t, f_old, rng);
      if (!old_dist.exists()) continue;
      const double b = WalkDistribution::ExpectedKernel(old_dist, new_dist,
                                                        kernel);
      // Row c = psi * phi(f_old)   (Eq. 7).
      la::Vector c = psi.MultiplyVec(model.phi(f_old));
      // N += c c^T ; rhs += b * c.
      for (size_t r = 0; r < d; ++r) {
        const double cr = c[r];
        if (cr == 0.0) continue;
        double* nrow = normal.RowPtr(r);
        for (size_t k = 0; k < d; ++k) nrow[k] += cr * c[k];
        rhs[r] += b * cr;
      }
      ++rows;
    }
  }

  if (rows == 0) {
    // Completely disconnected new fact: no constraint reaches it. Embed at
    // the origin — a neutral point that keeps downstream features finite.
    la::Vector zero(d, 0.0);
    model.set_phi(f_new, zero);
    return zero;
  }

  la::Vector solution(d, 0.0);
  if (config_.use_pinv) {
    // Min-norm least squares via the pseudoinverse of the (d x d) normal
    // matrix: x = N^+ rhs, equivalent to C^+ b on the row space (Eq. 10).
    STEDB_ASSIGN_OR_RETURN(la::Matrix pinv, la::PseudoInverse(normal));
    solution = pinv.MultiplyVec(rhs);
  } else {
    for (size_t i = 0; i < d; ++i) normal(i, i) += config_.ridge;
    STEDB_ASSIGN_OR_RETURN(solution, la::CholeskySolve(normal, rhs));
  }
  model.set_phi(f_new, solution);
  return solution;
}

}  // namespace stedb::fwd
