#include "src/fwd/codec.h"

#include <algorithm>
#include <vector>

namespace stedb::fwd {
namespace {

/// Hard ceilings shared with the PR 3 parser: a corrupted count field must
/// not turn into a multi-gigabyte allocation before any structural check
/// fires.
constexpr uint64_t kMaxSchemes = 1 << 20;
constexpr uint64_t kMaxSteps = 1 << 10;

std::string EncodeMetaPayload(const ForwardModel& model) {
  std::string meta;
  store::AppendI64(meta, model.relation());
  store::AppendU64(meta, model.dim());
  store::AppendU64(meta, model.schemes().size());
  for (const WalkScheme& s : model.schemes()) {
    store::AppendI64(meta, s.start);
    store::AppendU64(meta, s.steps.size());
    for (const WalkStep& st : s.steps) {
      store::AppendI64(meta, st.fk);
      store::AppendU64(meta, st.forward ? 1 : 0);
    }
  }
  store::AppendU64(meta, model.targets().size());
  for (const SchemeTarget& t : model.targets()) {
    store::AppendI64(meta, t.scheme_index);
    store::AppendI64(meta, t.attr);
  }
  return meta;
}

/// The standard 'PHI ' payload straight off a ForwardModel — same bytes
/// as store::EncodePhiPayload over a wrapped model, without paying a
/// full-model copy per snapshot write (Create and every Compact hit
/// this).
std::string EncodePhiFromForward(const ForwardModel& model) {
  std::string phi;
  store::AppendU64(phi, model.num_embedded());
  for (db::FactId f : model.SortedFacts()) {
    store::AppendI64(phi, f);
    for (double x : model.phi(f)) store::AppendDouble(phi, x);
  }
  return phi;
}

std::string EncodePsiPayload(const ForwardModel& model) {
  std::string psi;
  store::AppendU64(psi, model.targets().size());
  for (size_t t = 0; t < model.targets().size(); ++t) {
    const la::Matrix& m = model.psi(t);
    for (size_t i = 0; i < m.rows(); ++i) {
      for (size_t j = 0; j < m.cols(); ++j) store::AppendDouble(psi, m(i, j));
    }
  }
  return psi;
}

/// Parses META into an empty ForwardModel shell (schemes + targets, no
/// vectors yet), validating against the container header's dim/relation.
Result<ForwardModel> DecodeMeta(const store::SnapshotSection& section,
                                const store::SnapshotHeader& header) {
  store::ByteReader meta = section.reader();
  int64_t relation = -1;
  uint64_t dim = 0, n_schemes = 0;
  if (!meta.ReadI64(&relation) || !meta.ReadU64(&dim) ||
      !meta.ReadU64(&n_schemes)) {
    return Status::InvalidArgument("snapshot: truncated META");
  }
  if (dim == 0 || dim > store::kMaxEmbeddingDim) {
    return Status::InvalidArgument("snapshot: implausible dimension");
  }
  if (dim != header.dim || relation != header.relation) {
    return Status::InvalidArgument(
        "snapshot: META disagrees with container header");
  }
  if (n_schemes > kMaxSchemes || n_schemes * 16 > meta.remaining()) {
    return Status::InvalidArgument("snapshot: implausible scheme count");
  }
  std::vector<WalkScheme> schemes(static_cast<size_t>(n_schemes));
  for (WalkScheme& s : schemes) {
    int64_t start = 0;
    uint64_t nsteps = 0;
    if (!meta.ReadI64(&start) || !meta.ReadU64(&nsteps)) {
      return Status::InvalidArgument("snapshot: truncated scheme");
    }
    if (nsteps > kMaxSteps || nsteps * 16 > meta.remaining()) {
      return Status::InvalidArgument("snapshot: implausible step count");
    }
    s.start = static_cast<db::RelationId>(start);
    s.steps.resize(static_cast<size_t>(nsteps));
    for (WalkStep& st : s.steps) {
      int64_t fk = 0;
      uint64_t forward = 0;
      if (!meta.ReadI64(&fk) || !meta.ReadU64(&forward) || forward > 1) {
        return Status::InvalidArgument("snapshot: bad scheme step");
      }
      st.fk = static_cast<db::FkId>(fk);
      st.forward = forward == 1;
    }
  }
  uint64_t n_targets = 0;
  if (!meta.ReadU64(&n_targets) || n_targets > kMaxSchemes ||
      n_targets * 16 > meta.remaining()) {
    return Status::InvalidArgument("snapshot: implausible target count");
  }
  std::vector<SchemeTarget> targets(static_cast<size_t>(n_targets));
  for (SchemeTarget& t : targets) {
    int64_t scheme_index = 0, attr = 0;
    if (!meta.ReadI64(&scheme_index) || !meta.ReadI64(&attr)) {
      return Status::InvalidArgument("snapshot: truncated target");
    }
    if (scheme_index < 0 ||
        static_cast<uint64_t>(scheme_index) >= n_schemes) {
      return Status::OutOfRange("snapshot: target references unknown scheme");
    }
    t.scheme_index = static_cast<int>(scheme_index);
    t.attr = static_cast<db::AttrId>(attr);
  }
  if (meta.remaining() != 0) {
    return Status::InvalidArgument("snapshot: trailing bytes in META");
  }
  return ForwardModel(static_cast<db::RelationId>(relation),
                      static_cast<size_t>(dim), std::move(schemes),
                      std::move(targets));
}

Status DecodePsi(const store::SnapshotSection& section, ForwardModel* model) {
  store::ByteReader psi = section.reader();
  const uint64_t n_targets = model->targets().size();
  const uint64_t dim = model->dim();
  uint64_t psi_targets = 0;
  if (!psi.ReadU64(&psi_targets) || psi_targets != n_targets ||
      psi.remaining() != n_targets * dim * dim * 8) {
    return Status::InvalidArgument("snapshot: PSI payload size mismatch");
  }
  for (uint64_t t = 0; t < n_targets; ++t) {
    la::Matrix m(static_cast<size_t>(dim), static_cast<size_t>(dim));
    for (double& x : m.data()) psi.ReadDouble(&x);  // size checked above
    *model->mutable_psi(static_cast<size_t>(t)) = std::move(m);
  }
  return Status::OK();
}

}  // namespace

void ForwardStoredModel::ForEachPhi(
    const std::function<void(db::FactId, const la::Vector&)>& fn) const {
  for (db::FactId f : model_.SortedFacts()) fn(f, model_.phi(f));
}

const ForwardModel* AsForwardModel(const store::StoredModel& model) {
  const auto* fwd = dynamic_cast<const ForwardStoredModel*>(&model);
  return fwd == nullptr ? nullptr : &fwd->model();
}

std::string EncodeForwardSnapshot(const ForwardModel& model) {
  store::SnapshotBuilder builder(kForwardMethodTag, /*codec_version=*/1,
                                 model.dim(), model.relation());
  builder.AddSection(store::kMetaSectionTag, EncodeMetaPayload(model));
  builder.AddSection(store::kPsiSectionTag, EncodePsiPayload(model));
  builder.AddSection(store::kPhiSectionTag, EncodePhiFromForward(model));
  return std::move(builder).Finish();
}

Result<ForwardModel> DecodeForwardSnapshot(const std::string& bytes) {
  STEDB_ASSIGN_OR_RETURN(
      store::ParsedSnapshot snap,
      store::ParseSnapshotContainer(bytes.data(), bytes.size()));
  if (snap.header.method_tag != kForwardMethodTag) {
    return Status::InvalidArgument(
        "snapshot: method tag '" +
        store::FourCcToString(snap.header.method_tag) +
        "' is not a FoRWaRD snapshot");
  }
  ForwardModelCodec codec;
  STEDB_ASSIGN_OR_RETURN(std::unique_ptr<store::StoredModel> model,
                         codec.Decode(snap));
  return std::move(
      static_cast<ForwardStoredModel*>(model.get())->mutable_model());
}

Result<std::string> ForwardModelCodec::Encode(
    const store::StoredModel& model) const {
  const ForwardModel* fwd = AsForwardModel(model);
  if (fwd == nullptr) {
    return Status::InvalidArgument(
        "forward codec: stored model is not a ForwardStoredModel");
  }
  return EncodeForwardSnapshot(*fwd);
}

Result<std::unique_ptr<store::StoredModel>> ForwardModelCodec::Decode(
    const store::ParsedSnapshot& snapshot) const {
  if (snapshot.header.codec_version != codec_version()) {
    return Status::InvalidArgument(
        "snapshot: unsupported FoRWaRD codec version " +
        std::to_string(snapshot.header.codec_version));
  }
  const store::SnapshotSection* meta =
      snapshot.Find(store::kMetaSectionTag);
  const store::SnapshotSection* psi = snapshot.Find(store::kPsiSectionTag);
  const store::SnapshotSection* phi = snapshot.Find(store::kPhiSectionTag);
  if (meta == nullptr || psi == nullptr || phi == nullptr) {
    return Status::InvalidArgument(
        "snapshot: FoRWaRD codec needs META, PSI and PHI sections");
  }
  STEDB_ASSIGN_OR_RETURN(ForwardModel model,
                         DecodeMeta(*meta, snapshot.header));
  STEDB_RETURN_IF_ERROR(DecodePsi(*psi, &model));
  auto stored = std::make_unique<ForwardStoredModel>(std::move(model));
  STEDB_RETURN_IF_ERROR(
      store::DecodePhiPayload(*phi, stored->dim(), stored.get()));
  return std::unique_ptr<store::StoredModel>(std::move(stored));
}

Result<store::EmbeddingStore> CreateForwardStore(const std::string& dir,
                                                 const ForwardModel& model,
                                                 store::StoreOptions options) {
  return store::EmbeddingStore::Create(
      dir, "forward", std::make_unique<ForwardStoredModel>(model), options);
}

}  // namespace stedb::fwd
