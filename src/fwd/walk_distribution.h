#ifndef STEDB_FWD_WALK_DISTRIBUTION_H_
#define STEDB_FWD_WALK_DISTRIBUTION_H_

#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/db/database.h"
#include "src/fwd/kernel.h"
#include "src/fwd/walk_scheme.h"

namespace stedb::fwd {

/// The distribution of d_{s,f}[A]: normalized probabilities over the
/// non-null destination values, conditioned on the walk completing and the
/// value being non-null (the paper's posterior convention, Section V-A).
/// Empty == d_{s,f}[A] does not exist.
struct ValueDistribution {
  std::vector<std::pair<db::Value, double>> probs;

  bool exists() const { return !probs.empty(); }
  size_t support_size() const { return probs.size(); }
  /// Sum of probabilities (1.0 up to rounding when non-empty).
  double TotalMass() const;
};

/// Computes destination-value distributions, exactly or by Monte Carlo.
///
/// The exact computation is the "simple breadth first search along the
/// sequence of foreign keys" the paper describes: probability mass is pushed
/// through the walk DAG level by level. Mass that dead-ends (null FK image /
/// no referencing fact) is discarded and the result renormalized, which is
/// precisely conditioning on walk completion.
class WalkDistribution {
 public:
  /// `max_fact_support`: when the intermediate fact-level support grows past
  /// this bound the exact BFS aborts and Compute falls back to sampling with
  /// `fallback_samples` draws.
  explicit WalkDistribution(const db::Database* database,
                            size_t max_fact_support = 8192,
                            int fallback_samples = 256)
      : db_(database),
        max_fact_support_(max_fact_support),
        fallback_samples_(fallback_samples) {}

  /// Exact distribution of d_{s,f}[A]; empty when it does not exist or the
  /// support bound was exceeded (check via `exists()` + ExceededBound()).
  ValueDistribution Exact(const WalkScheme& s, db::AttrId attr,
                          db::FactId start) const;

  /// Monte Carlo estimate from `n` completed walks.
  ValueDistribution Sampled(const WalkScheme& s, db::AttrId attr,
                            db::FactId start, int n, Rng& rng) const;

  /// Exact when the support bound allows, otherwise sampled.
  ValueDistribution Compute(const WalkScheme& s, db::AttrId attr,
                            db::FactId start, Rng& rng) const;

  /// Expected Kernel Distance (paper Eq. 2):
  /// KD = E[κ(X, Y)], X ~ da, Y ~ db, independent.
  static double ExpectedKernel(const ValueDistribution& da,
                               const ValueDistribution& db,
                               const Kernel& kernel);

 private:
  const db::Database* db_;
  size_t max_fact_support_;
  int fallback_samples_;
};

}  // namespace stedb::fwd

#endif  // STEDB_FWD_WALK_DISTRIBUTION_H_
