#include "src/fwd/serialize.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/store/format.h"

namespace stedb::fwd {
namespace {

void AppendDouble(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

/// Ceiling on the parsed embedding dimension, shared with the binary
/// store's parsers so every persistence format accepts the same models.
constexpr size_t kMaxDim = store::kMaxEmbeddingDim;

}  // namespace

std::string ModelToText(const ForwardModel& model) {
  std::string out = "FWDMODEL 1\n";
  out += "relation " + std::to_string(model.relation()) + "\n";
  out += "dim " + std::to_string(model.dim()) + "\n";

  out += "schemes " + std::to_string(model.schemes().size()) + "\n";
  for (const WalkScheme& s : model.schemes()) {
    out += "S " + std::to_string(s.start) + " " +
           std::to_string(s.steps.size());
    for (const WalkStep& st : s.steps) {
      out += " " + std::to_string(st.fk) + " " + (st.forward ? "f" : "b");
    }
    out += "\n";
  }

  out += "targets " + std::to_string(model.targets().size()) + "\n";
  for (const SchemeTarget& t : model.targets()) {
    out += "T " + std::to_string(t.scheme_index) + " " +
           std::to_string(t.attr) + "\n";
  }

  for (size_t t = 0; t < model.targets().size(); ++t) {
    out += "psi " + std::to_string(t) + "\n";
    const la::Matrix& psi = model.psi(t);
    for (size_t i = 0; i < psi.rows(); ++i) {
      for (size_t j = 0; j < psi.cols(); ++j) {
        if (j > 0) out += " ";
        AppendDouble(out, psi(i, j));
      }
      out += "\n";
    }
  }

  out += "phi " + std::to_string(model.all_phi().size()) + "\n";
  for (const auto& [fact, vec] : model.all_phi()) {
    out += "P " + std::to_string(fact);
    for (double x : vec) {
      out += " ";
      AppendDouble(out, x);
    }
    out += "\n";
  }
  return out;
}

Result<ForwardModel> ModelFromText(const std::string& text) {
  std::istringstream in(text);
  std::string word;
  int version = 0;
  if (!(in >> word >> version) || word != "FWDMODEL" || version != 1) {
    return Status::InvalidArgument("not a FWDMODEL v1 blob");
  }
  int relation = -1;
  size_t dim = 0;
  if (!(in >> word >> relation) || word != "relation") {
    return Status::InvalidArgument("missing relation header");
  }
  if (!(in >> word >> dim) || word != "dim") {
    return Status::InvalidArgument("missing dim header");
  }
  if (dim == 0 || dim > kMaxDim) {
    return Status::InvalidArgument("implausible dimension");
  }

  size_t n_schemes = 0;
  if (!(in >> word >> n_schemes) || word != "schemes") {
    return Status::InvalidArgument("missing schemes header");
  }
  // Every scheme costs at least two characters of input ("S ..."), so a
  // count beyond the blob size is a corrupted header, not data.
  if (n_schemes > text.size()) {
    return Status::InvalidArgument("implausible scheme count");
  }
  std::vector<WalkScheme> schemes(n_schemes);
  for (size_t s = 0; s < n_schemes; ++s) {
    size_t len = 0;
    if (!(in >> word >> schemes[s].start >> len) || word != "S") {
      return Status::InvalidArgument("bad scheme line");
    }
    if (len > text.size()) {
      return Status::InvalidArgument("implausible scheme length");
    }
    schemes[s].steps.resize(len);
    for (size_t k = 0; k < len; ++k) {
      std::string dir;
      if (!(in >> schemes[s].steps[k].fk >> dir) ||
          (dir != "f" && dir != "b")) {
        return Status::InvalidArgument("bad scheme step");
      }
      schemes[s].steps[k].forward = dir == "f";
    }
  }

  size_t n_targets = 0;
  if (!(in >> word >> n_targets) || word != "targets") {
    return Status::InvalidArgument("missing targets header");
  }
  if (n_targets > text.size()) {
    return Status::InvalidArgument("implausible target count");
  }
  // Each ψ is dim² doubles of at least two characters each; reject before
  // allocating when the blob cannot possibly hold them.
  if (n_targets > 0 && dim * dim > text.size()) {
    return Status::InvalidArgument("dim too large for blob");
  }
  std::vector<SchemeTarget> targets(n_targets);
  for (size_t t = 0; t < n_targets; ++t) {
    if (!(in >> word >> targets[t].scheme_index >> targets[t].attr) ||
        word != "T") {
      return Status::InvalidArgument("bad target line");
    }
    if (targets[t].scheme_index < 0 ||
        static_cast<size_t>(targets[t].scheme_index) >= n_schemes) {
      return Status::OutOfRange("target references unknown scheme");
    }
  }

  ForwardModel model(relation, dim, std::move(schemes), std::move(targets));
  for (size_t t = 0; t < n_targets; ++t) {
    size_t idx = 0;
    if (!(in >> word >> idx) || word != "psi" || idx != t) {
      return Status::InvalidArgument("bad psi header");
    }
    la::Matrix psi(dim, dim);
    for (size_t i = 0; i < dim; ++i) {
      for (size_t j = 0; j < dim; ++j) {
        if (!(in >> psi(i, j))) {
          return Status::InvalidArgument("truncated psi matrix");
        }
      }
    }
    *model.mutable_psi(t) = std::move(psi);
  }

  size_t n_phi = 0;
  if (!(in >> word >> n_phi) || word != "phi") {
    return Status::InvalidArgument("missing phi header");
  }
  if (n_phi > text.size()) {
    return Status::InvalidArgument("implausible phi count");
  }
  for (size_t i = 0; i < n_phi; ++i) {
    int64_t fact = -1;
    if (!(in >> word >> fact) || word != "P") {
      return Status::InvalidArgument("bad phi line");
    }
    la::Vector vec(dim);
    for (size_t j = 0; j < dim; ++j) {
      if (!(in >> vec[j])) {
        return Status::InvalidArgument("truncated phi vector");
      }
    }
    if (model.HasEmbedding(static_cast<db::FactId>(fact))) {
      return Status::InvalidArgument("duplicate fact in phi block");
    }
    model.set_phi(static_cast<db::FactId>(fact), std::move(vec));
  }
  if (in >> word) {
    return Status::InvalidArgument("trailing garbage after phi block");
  }
  return model;
}

Status SaveModel(const ForwardModel& model, const std::string& path) {
  // Atomic: a crash mid-save leaves any existing model file untouched
  // rather than clobbering it with a truncated one.
  return store::AtomicWriteFile(path, ModelToText(model));
}

Result<ForwardModel> LoadModel(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::IOError("cannot read " + path);
  std::stringstream buf;
  buf << f.rdbuf();
  return ModelFromText(buf.str());
}

}  // namespace stedb::fwd
