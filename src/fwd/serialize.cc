#include "src/fwd/serialize.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace stedb::fwd {
namespace {

void AppendDouble(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

std::string ModelToText(const ForwardModel& model) {
  std::string out = "FWDMODEL 1\n";
  out += "relation " + std::to_string(model.relation()) + "\n";
  out += "dim " + std::to_string(model.dim()) + "\n";

  out += "schemes " + std::to_string(model.schemes().size()) + "\n";
  for (const WalkScheme& s : model.schemes()) {
    out += "S " + std::to_string(s.start) + " " +
           std::to_string(s.steps.size());
    for (const WalkStep& st : s.steps) {
      out += " " + std::to_string(st.fk) + " " + (st.forward ? "f" : "b");
    }
    out += "\n";
  }

  out += "targets " + std::to_string(model.targets().size()) + "\n";
  for (const SchemeTarget& t : model.targets()) {
    out += "T " + std::to_string(t.scheme_index) + " " +
           std::to_string(t.attr) + "\n";
  }

  for (size_t t = 0; t < model.targets().size(); ++t) {
    out += "psi " + std::to_string(t) + "\n";
    const la::Matrix& psi = model.psi(t);
    for (size_t i = 0; i < psi.rows(); ++i) {
      for (size_t j = 0; j < psi.cols(); ++j) {
        if (j > 0) out += " ";
        AppendDouble(out, psi(i, j));
      }
      out += "\n";
    }
  }

  out += "phi " + std::to_string(model.all_phi().size()) + "\n";
  for (const auto& [fact, vec] : model.all_phi()) {
    out += "P " + std::to_string(fact);
    for (double x : vec) {
      out += " ";
      AppendDouble(out, x);
    }
    out += "\n";
  }
  return out;
}

Result<ForwardModel> ModelFromText(const std::string& text) {
  std::istringstream in(text);
  std::string word;
  int version = 0;
  if (!(in >> word >> version) || word != "FWDMODEL" || version != 1) {
    return Status::InvalidArgument("not a FWDMODEL v1 blob");
  }
  int relation = -1;
  size_t dim = 0;
  if (!(in >> word >> relation) || word != "relation") {
    return Status::InvalidArgument("missing relation header");
  }
  if (!(in >> word >> dim) || word != "dim") {
    return Status::InvalidArgument("missing dim header");
  }

  size_t n_schemes = 0;
  if (!(in >> word >> n_schemes) || word != "schemes") {
    return Status::InvalidArgument("missing schemes header");
  }
  std::vector<WalkScheme> schemes(n_schemes);
  for (size_t s = 0; s < n_schemes; ++s) {
    size_t len = 0;
    if (!(in >> word >> schemes[s].start >> len) || word != "S") {
      return Status::InvalidArgument("bad scheme line");
    }
    schemes[s].steps.resize(len);
    for (size_t k = 0; k < len; ++k) {
      std::string dir;
      if (!(in >> schemes[s].steps[k].fk >> dir) ||
          (dir != "f" && dir != "b")) {
        return Status::InvalidArgument("bad scheme step");
      }
      schemes[s].steps[k].forward = dir == "f";
    }
  }

  size_t n_targets = 0;
  if (!(in >> word >> n_targets) || word != "targets") {
    return Status::InvalidArgument("missing targets header");
  }
  std::vector<SchemeTarget> targets(n_targets);
  for (size_t t = 0; t < n_targets; ++t) {
    if (!(in >> word >> targets[t].scheme_index >> targets[t].attr) ||
        word != "T") {
      return Status::InvalidArgument("bad target line");
    }
    if (targets[t].scheme_index < 0 ||
        static_cast<size_t>(targets[t].scheme_index) >= n_schemes) {
      return Status::OutOfRange("target references unknown scheme");
    }
  }

  ForwardModel model(relation, dim, std::move(schemes), std::move(targets));
  for (size_t t = 0; t < n_targets; ++t) {
    size_t idx = 0;
    if (!(in >> word >> idx) || word != "psi" || idx != t) {
      return Status::InvalidArgument("bad psi header");
    }
    la::Matrix psi(dim, dim);
    for (size_t i = 0; i < dim; ++i) {
      for (size_t j = 0; j < dim; ++j) {
        if (!(in >> psi(i, j))) {
          return Status::InvalidArgument("truncated psi matrix");
        }
      }
    }
    *model.mutable_psi(t) = std::move(psi);
  }

  size_t n_phi = 0;
  if (!(in >> word >> n_phi) || word != "phi") {
    return Status::InvalidArgument("missing phi header");
  }
  for (size_t i = 0; i < n_phi; ++i) {
    int64_t fact = -1;
    if (!(in >> word >> fact) || word != "P") {
      return Status::InvalidArgument("bad phi line");
    }
    la::Vector vec(dim);
    for (size_t j = 0; j < dim; ++j) {
      if (!(in >> vec[j])) {
        return Status::InvalidArgument("truncated phi vector");
      }
    }
    model.set_phi(static_cast<db::FactId>(fact), std::move(vec));
  }
  return model;
}

Status SaveModel(const ForwardModel& model, const std::string& path) {
  std::ofstream f(path);
  if (!f) return Status::IOError("cannot write " + path);
  f << ModelToText(model);
  return f.good() ? Status::OK() : Status::IOError("write failed: " + path);
}

Result<ForwardModel> LoadModel(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::IOError("cannot read " + path);
  std::stringstream buf;
  buf << f.rdbuf();
  return ModelFromText(buf.str());
}

}  // namespace stedb::fwd
