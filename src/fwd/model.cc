#include "src/fwd/model.h"

#include <algorithm>

namespace stedb::fwd {

ForwardModel::ForwardModel(db::RelationId relation, size_t dim,
                           std::vector<WalkScheme> schemes,
                           std::vector<SchemeTarget> targets)
    : relation_(relation),
      dim_(dim),
      schemes_(std::move(schemes)),
      targets_(std::move(targets)),
      psi_(targets_.size()) {}

Result<la::Vector> ForwardModel::Embed(db::FactId f) const {
  auto it = phi_.find(f);
  if (it == phi_.end()) {
    return Status::NotFound("fact has no FoRWaRD embedding");
  }
  return it->second;
}

std::vector<db::FactId> ForwardModel::SortedFacts() const {
  std::vector<db::FactId> facts;
  facts.reserve(phi_.size());
  for (const auto& [f, v] : phi_) facts.push_back(f);
  std::sort(facts.begin(), facts.end());
  return facts;
}

la::Vector* ForwardModel::mutable_phi(db::FactId f) {
  auto it = phi_.find(f);
  return it == phi_.end() ? nullptr : &it->second;
}

void ForwardModel::InitPsi(double stddev, Rng& rng) {
  for (la::Matrix& m : psi_) {
    m = la::Matrix::RandomSymmetric(dim_, stddev, rng);
    // Bias toward identity so initial scores correlate positively with
    // vector similarity; purely an optimization warm start.
    for (size_t i = 0; i < dim_; ++i) m(i, i) += 1.0;
  }
}

double ForwardModel::Score(db::FactId f, db::FactId g, size_t target) const {
  return la::BilinearForm(phi_.at(f), psi_[target], phi_.at(g));
}

}  // namespace stedb::fwd
