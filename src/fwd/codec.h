#ifndef STEDB_FWD_CODEC_H_
#define STEDB_FWD_CODEC_H_

#include <memory>
#include <string>
#include <utility>

#include "src/fwd/model.h"
#include "src/store/embedding_store.h"
#include "src/store/model_codec.h"
#include "src/store/stored_model.h"

namespace stedb::fwd {

/// Snapshot method tag of the FoRWaRD codec ("FWD " in the header).
inline constexpr uint32_t kForwardMethodTag =
    store::FourCc('F', 'W', 'D', ' ');

/// A full ForwardModel behind the store's method-agnostic StoredModel
/// interface. Owns the model; WAL replay lands in it via set_phi, and the
/// typed model stays reachable for FoRWaRD-specific consumers (ψ-aware
/// verification, the φᵀψφ scorer) through model() / AsForwardModel().
class ForwardStoredModel : public store::StoredModel {
 public:
  explicit ForwardStoredModel(ForwardModel model) : model_(std::move(model)) {}

  size_t dim() const override { return model_.dim(); }
  db::RelationId relation() const override { return model_.relation(); }
  size_t num_embedded() const override { return model_.num_embedded(); }
  bool HasEmbedding(db::FactId f) const override {
    return model_.HasEmbedding(f);
  }
  const la::Vector& phi(db::FactId f) const override { return model_.phi(f); }
  void set_phi(db::FactId f, la::Vector v) override {
    model_.set_phi(f, std::move(v));
  }
  void ForEachPhi(const std::function<void(db::FactId, const la::Vector&)>&
                      fn) const override;

  const ForwardModel& model() const { return model_; }
  ForwardModel& mutable_model() { return model_; }

 private:
  ForwardModel model_;
};

/// The ForwardModel behind a StoredModel, or nullptr when the stored model
/// is not FoRWaRD's (e.g. a Node2Vec store opened generically).
const ForwardModel* AsForwardModel(const store::StoredModel& model);

/// The FoRWaRD model codec: sections META (relation, dim, walk schemes,
/// targets), PSI (the learned ψ matrices, standard layout) and PHI (the
/// standard embeddings payload). Extracted from the PR 3 fwd-only
/// snapshot; byte layout of the section payloads is unchanged, only the
/// container header moved to the method-agnostic v2 format.
class ForwardModelCodec : public store::ModelCodec {
 public:
  std::string method() const override { return "forward"; }
  uint32_t method_tag() const override { return kForwardMethodTag; }
  uint32_t codec_version() const override { return 1; }
  Result<std::string> Encode(const store::StoredModel& model) const override;
  Result<std::unique_ptr<store::StoredModel>> Decode(
      const store::ParsedSnapshot& snapshot) const override;
};

/// Typed encode/decode used by the codec and the store::snapshot.h
/// compatibility wrappers.
std::string EncodeForwardSnapshot(const ForwardModel& model);
Result<ForwardModel> DecodeForwardSnapshot(const std::string& bytes);

/// Convenience: persists a freshly trained FoRWaRD model as a new store
/// directory (snapshot + empty journal) via the FoRWaRD codec.
Result<store::EmbeddingStore> CreateForwardStore(
    const std::string& dir, const ForwardModel& model,
    store::StoreOptions options = store::StoreOptions());

}  // namespace stedb::fwd

#endif  // STEDB_FWD_CODEC_H_
