#ifndef STEDB_FWD_DIST_CACHE_H_
#define STEDB_FWD_DIST_CACHE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/common/thread_annotations.h"
#include "src/db/database.h"
#include "src/fwd/model.h"
#include "src/fwd/walk_distribution.h"

namespace stedb::fwd {

/// Counters aggregated over all shards of a DistCache. A snapshot, not a
/// live view; taken with relaxed loads, so totals can lag in-flight
/// lookups by a few counts when sampled mid-training.
struct DistCacheStats {
  uint64_t hits = 0;     ///< resolved by the wait-free probe alone
  uint64_t misses = 0;   ///< wait-free probe failed; caller computed the entry
  uint64_t duplicate_computes = 0;  ///< computed value lost the insert race
  uint64_t locked_lookups = 0;      ///< lookups that took a shard lock
};

/// Lazily computed per-(fact, target) destination value distributions for
/// the kExactCached estimator — the hottest shared structure of the
/// FoRWaRD materialization phase, redesigned for contention-free reads.
///
/// Layout: 64 shards selected by a splitmix64 mix of the key. Each shard
/// owns an open-addressing table (linear probing, grown at 7/8 load)
/// published through a single atomic pointer; slots hold an atomic key and
/// an atomic pointer to an immutable heap-allocated ValueDistribution.
///
/// Concurrency contract:
///  * Readers are wait-free and lock-free: one acquire load of the table
///    pointer, a linear probe, no CAS, no lock. Steady state — after the
///    first epoch has populated the cache — every Get is a pure read.
///  * Writers (cache misses) compute the distribution OUTSIDE any lock,
///    then insert under the shard mutex; a racing duplicate computation
///    produces bit-identical bytes (the stream is derived from the key,
///    `root.Fork(key)`) and the first insert wins, so the cache stays
///    deterministic under any schedule.
///  * Inserts publish value-then-key with release stores, so a reader
///    that observes a key (acquire) always observes its value.
///  * Grown-out tables are retired, not freed, until the cache is
///    destroyed: a reader still probing an old table sees a correct
///    (possibly incomplete) view and at worst reports a miss, which the
///    locked path then resolves against the newest table.
///
/// Missing distributions are cached too (as empty), so a non-existing
/// d_{s,f}[A] is detected once. Returned references stay valid for the
/// cache's lifetime (values are individually heap-allocated, never moved,
/// never erased).
class DistCache {
 public:
  DistCache(const db::Database* database, const ForwardModel* model, Rng root);
  ~DistCache();

  DistCache(const DistCache&) = delete;
  DistCache& operator=(const DistCache&) = delete;

  /// The value distribution d_{s,f}[A] for target index `target`, computing
  /// and caching it on first request. Thread-safe; deterministic.
  const ValueDistribution& Get(db::FactId f, size_t target);

  /// Relaxed-load snapshot of the per-shard counters, summed.
  DistCacheStats GetStats() const;

 private:
  static constexpr size_t kShards = 64;
  static constexpr uint64_t kEmptyKey = ~uint64_t{0};

  struct Slot {
    std::atomic<uint64_t> key{kEmptyKey};
    std::atomic<const ValueDistribution*> value{nullptr};
  };

  /// One immutable-capacity probe table. `mask` = capacity − 1 (power of
  /// two). Slots mutate (inserts), the table itself never reallocates —
  /// growth swaps in a new Table and retires this one.
  struct Table {
    explicit Table(size_t capacity) : mask(capacity - 1), slots(capacity) {}
    const size_t mask;
    std::vector<Slot> slots;
  };

  /// Padded to a cache line so per-shard counters and locks of neighboring
  /// shards do not false-share.
  struct alignas(64) Shard {
    std::atomic<Table*> table{nullptr};
    // Counters are per-shard precisely so the hot hit path increments a
    // line this shard's readers already own.
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> duplicate_computes{0};
    std::atomic<uint64_t> locked_lookups{0};

    Mutex mu;  ///< serializes inserts and growth (writers only)
    size_t size STEDB_GUARDED_BY(mu) = 0;
    /// Incl. the live table.
    std::vector<std::unique_ptr<Table>> retired STEDB_GUARDED_BY(mu);
    std::vector<std::unique_ptr<ValueDistribution>> values
        STEDB_GUARDED_BY(mu);
  };

  /// splitmix64 finalizer: shard index from the high bits, probe start
  /// from the low — decorrelated from the sequential fact ids.
  static uint64_t Mix(uint64_t key);
  /// Probes `t` for `key`; null on miss. Wait-free.
  static const ValueDistribution* Probe(const Table* t, uint64_t key);
  /// Inserts under the shard lock (caller holds it). Grows at 7/8 load.
  const ValueDistribution& InsertLocked(Shard& shard, uint64_t key,
                                        ValueDistribution d)
      STEDB_REQUIRES(shard.mu);

  WalkDistribution dist_;
  const ForwardModel* model_;
  Rng root_;
  std::array<Shard, kShards> shards_;
};

}  // namespace stedb::fwd

#endif  // STEDB_FWD_DIST_CACHE_H_
