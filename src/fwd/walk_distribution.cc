#include "src/fwd/walk_distribution.h"

#include <unordered_map>

#include "src/fwd/walk_sampler.h"

namespace stedb::fwd {
namespace {

ValueDistribution NormalizeValueMass(
    std::unordered_map<db::Value, double, db::ValueHash>&& mass) {
  double total = 0.0;
  for (const auto& [v, m] : mass) total += m;
  ValueDistribution out;
  if (total <= 0.0) return out;
  out.probs.reserve(mass.size());
  for (auto& [v, m] : mass) out.probs.emplace_back(v, m / total);
  return out;
}

}  // namespace

double ValueDistribution::TotalMass() const {
  double total = 0.0;
  for (const auto& [v, p] : probs) total += p;
  return total;
}

ValueDistribution WalkDistribution::Exact(const WalkScheme& s,
                                          db::AttrId attr,
                                          db::FactId start) const {
  std::unordered_map<db::FactId, double> mass;
  mass.emplace(start, 1.0);
  for (const WalkStep& step : s.steps) {
    std::unordered_map<db::FactId, double> next;
    next.reserve(mass.size());
    for (const auto& [f, m] : mass) {
      if (step.forward) {
        db::FactId g = db_->Referenced(f, step.fk);
        if (g == db::kNoFact) continue;  // dead end: mass dropped
        next[g] += m;
      } else {
        const std::vector<db::FactId>& back = db_->Referencing(f, step.fk);
        if (back.empty()) continue;
        const double share = m / static_cast<double>(back.size());
        for (db::FactId g : back) next[g] += share;
      }
      if (next.size() > max_fact_support_) return ValueDistribution{};
    }
    mass = std::move(next);
    if (mass.empty()) return ValueDistribution{};
  }
  std::unordered_map<db::Value, double, db::ValueHash> value_mass;
  for (const auto& [f, m] : mass) {
    const db::Value& v = db_->value(f, attr);
    if (v.is_null()) continue;  // posterior on ≠ ⊥
    value_mass[v] += m;
  }
  return NormalizeValueMass(std::move(value_mass));
}

ValueDistribution WalkDistribution::Sampled(const WalkScheme& s,
                                            db::AttrId attr,
                                            db::FactId start, int n,
                                            Rng& rng) const {
  WalkSampler sampler(db_);
  std::unordered_map<db::Value, double, db::ValueHash> value_mass;
  for (int i = 0; i < n; ++i) {
    db::FactId dest = sampler.SampleDestination(s, start, rng);
    if (dest == db::kNoFact) continue;
    const db::Value& v = db_->value(dest, attr);
    if (v.is_null()) continue;
    value_mass[v] += 1.0;
  }
  return NormalizeValueMass(std::move(value_mass));
}

ValueDistribution WalkDistribution::Compute(const WalkScheme& s,
                                            db::AttrId attr,
                                            db::FactId start,
                                            Rng& rng) const {
  ValueDistribution exact = Exact(s, attr, start);
  if (exact.exists()) return exact;
  return Sampled(s, attr, start, fallback_samples_, rng);
}

double WalkDistribution::ExpectedKernel(const ValueDistribution& da,
                                        const ValueDistribution& db,
                                        const Kernel& kernel) {
  double acc = 0.0;
  for (const auto& [va, pa] : da.probs) {
    for (const auto& [vb, pb] : db.probs) {
      acc += pa * pb * kernel.Evaluate(va, vb);
    }
  }
  return acc;
}

}  // namespace stedb::fwd
