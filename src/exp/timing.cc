#include "src/exp/timing.h"

#include "src/common/timer.h"
#include "src/exp/static_experiment.h"

namespace stedb::exp {

Result<StaticTiming> MeasureStaticTime(const data::GeneratedDataset& ds,
                                       const MethodConfig& mcfg,
                                       uint64_t seed) {
  StaticTiming timing;
  timing.dataset = ds.name;
  const fwd::AttrKeySet excluded = LabelExclusion(ds);

  {
    STEDB_ASSIGN_OR_RETURN(std::unique_ptr<EmbeddingMethod> m,
                           MakeMethod("node2vec", mcfg, seed));
    Timer t;
    STEDB_RETURN_IF_ERROR(
        m->TrainStatic(&ds.database, ds.pred_rel, excluded));
    timing.node2vec_seconds = t.ElapsedSeconds();
  }
  {
    STEDB_ASSIGN_OR_RETURN(std::unique_ptr<EmbeddingMethod> m,
                           MakeMethod("forward", mcfg, seed));
    Timer t;
    STEDB_RETURN_IF_ERROR(
        m->TrainStatic(&ds.database, ds.pred_rel, excluded));
    timing.forward_seconds = t.ElapsedSeconds();
  }
  return timing;
}

}  // namespace stedb::exp
