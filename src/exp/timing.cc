#include "src/exp/timing.h"

#include "src/common/timer.h"
#include "src/exp/static_experiment.h"

namespace stedb::exp {

Result<StaticTiming> MeasureStaticTime(const data::GeneratedDataset& ds,
                                       const MethodConfig& mcfg,
                                       uint64_t seed) {
  StaticTiming timing;
  timing.dataset = ds.name;
  const fwd::AttrKeySet excluded = LabelExclusion(ds);

  {
    std::unique_ptr<EmbeddingMethod> m =
        MakeMethod(MethodKind::kNode2Vec, mcfg, seed);
    Timer t;
    STEDB_RETURN_IF_ERROR(
        m->TrainStatic(&ds.database, ds.pred_rel, excluded));
    timing.node2vec_seconds = t.ElapsedSeconds();
  }
  {
    std::unique_ptr<EmbeddingMethod> m =
        MakeMethod(MethodKind::kForward, mcfg, seed);
    Timer t;
    STEDB_RETURN_IF_ERROR(
        m->TrainStatic(&ds.database, ds.pred_rel, excluded));
    timing.forward_seconds = t.ElapsedSeconds();
  }
  return timing;
}

}  // namespace stedb::exp
