#include "src/exp/dynamic_experiment.h"

#include <algorithm>
#include <optional>

#include "src/common/parallel.h"
#include "src/common/timer.h"
#include "src/exp/partition.h"
#include "src/exp/static_experiment.h"
#include "src/ml/metrics.h"
#include "src/n2v/dynamic_node2vec.h"

namespace stedb::exp {
namespace {

/// Everything one run contributes to the aggregate result.
struct RunOutcome {
  double accuracy = 0.0;
  double baseline = 0.0;
  double extend_seconds = 0.0;
  size_t new_pred = 0;
  size_t new_facts = 0;
  double drift = 0.0;
  double journal_drift = 0.0;
  bool journaled = false;
};

/// One partition-train-replay-evaluate cycle. Self-contained: owns a
/// private copy of the database, so runs can execute concurrently.
Result<RunOutcome> RunOnce(const data::GeneratedDataset& ds,
                           const std::string& method,
                           const MethodConfig& mcfg,
                           const DynamicConfig& dcfg, int run) {
  RunOutcome out;
  const uint64_t run_seed = dcfg.seed + 1009 * static_cast<uint64_t>(run);
  Rng rng(run_seed);

  // (1) Copy + partition.
  db::Database database = ds.database;
  STEDB_ASSIGN_OR_RETURN(
      DynamicPartition part,
      PartitionDynamic(database, ds.pred_rel, ds.pred_attr, dcfg.new_ratio,
                       rng));
  if (part.batches.empty()) {
    return Status::FailedPrecondition("partition removed no tuples");
  }

  // (2) Static training on F_old.
  // All-at-once mode recomputes old walk distributions (FoRWaRD only).
  MethodConfig run_cfg = mcfg;
  run_cfg.forward.recompute_old_paths = !dcfg.one_by_one;
  STEDB_ASSIGN_OR_RETURN(std::unique_ptr<EmbeddingMethod> embedder,
                         MakeMethod(method, run_cfg, run_seed));
  STEDB_RETURN_IF_ERROR(
      embedder->TrainStatic(&database, ds.pred_rel, LabelExclusion(ds)));

  ml::LabelEncoder encoder;
  // Register every label up front so train/test ids agree even when a
  // class is absent from F_old.
  for (const std::string& name : ds.class_names) encoder.Encode(name);
  STEDB_ASSIGN_OR_RETURN(
      ml::FeatureDataset train,
      EmbeddingFeatures(database, ds.pred_attr, *embedder,
                        part.old_pred_facts, encoder));
  train.num_classes = encoder.num_classes();

  std::unique_ptr<ml::Classifier> clf =
      ml::MakeClassifier(dcfg.classifier, run_seed + 17);
  STEDB_RETURN_IF_ERROR(clf->Fit(train));

  // Optional journaling: snapshot the trained model, then capture every
  // extension below in the WAL. Methods without a store format decline
  // with FailedPrecondition, which simply leaves journaling off.
  if (!dcfg.journal_dir.empty()) {
    Status attached = embedder->AttachJournal(dcfg.journal_dir + "/run" +
                                              std::to_string(run));
    if (attached.ok()) {
      out.journaled = true;
    } else if (attached.code() != StatusCode::kFailedPrecondition) {
      return attached;
    }
  }

  // Snapshot old embeddings for the stability check (one batch read).
  n2v::EmbeddingSnapshot snapshot;
  if (dcfg.check_stability) {
    la::Matrix old_vecs(part.old_pred_facts.size(), embedder->dim());
    STEDB_RETURN_IF_ERROR(
        embedder->EmbedBatch(part.old_pred_facts, old_vecs));
    for (size_t i = 0; i < part.old_pred_facts.size(); ++i) {
      snapshot.Record(part.old_pred_facts[i], old_vecs.Row(i));
    }
  }

  // (3) Replay arrivals (inverse deletion order) and extend.
  std::vector<db::FactId> new_pred_facts;
  Timer extend_timer;
  if (dcfg.one_by_one) {
    for (size_t b = part.batches.size(); b > 0; --b) {
      STEDB_ASSIGN_OR_RETURN(
          std::vector<db::FactId> new_ids,
          ReplayBatch(database, part.batches[b - 1]));
      extend_timer.Reset();
      STEDB_RETURN_IF_ERROR(embedder->ExtendToFacts(new_ids));
      out.extend_seconds += extend_timer.ElapsedSeconds();
      for (db::FactId f : new_ids) {
        out.new_facts += 1;
        if (database.fact(f).rel == ds.pred_rel) {
          new_pred_facts.push_back(f);
        }
      }
    }
  } else {
    std::vector<db::FactId> all_new;
    for (size_t b = part.batches.size(); b > 0; --b) {
      STEDB_ASSIGN_OR_RETURN(
          std::vector<db::FactId> new_ids,
          ReplayBatch(database, part.batches[b - 1]));
      for (db::FactId f : new_ids) all_new.push_back(f);
    }
    extend_timer.Reset();
    STEDB_RETURN_IF_ERROR(embedder->ExtendToFacts(all_new));
    out.extend_seconds = extend_timer.ElapsedSeconds();
    for (db::FactId f : all_new) {
      out.new_facts += 1;
      if (database.fact(f).rel == ds.pred_rel) new_pred_facts.push_back(f);
    }
  }
  out.new_pred = new_pred_facts.size();

  // (3b) Journaling: the crash-recovery view must equal the live model.
  if (out.journaled) {
    STEDB_ASSIGN_OR_RETURN(out.journal_drift, embedder->VerifyJournal());
  }

  // (4) Stability: every old vector must be bit-identical.
  if (dcfg.check_stability) {
    out.drift = snapshot.MaxDrift([&](db::FactId f) {
      auto r = embedder->Embed(f);
      return r.ok() ? r.value() : la::Vector(snapshot.Get(f).size(), 1e18);
    });
  }

  // (5) Evaluate on the new prediction tuples only (one batch read).
  std::vector<int> truth, predicted;
  la::Matrix new_vecs(new_pred_facts.size(), embedder->dim());
  STEDB_RETURN_IF_ERROR(embedder->EmbedBatch(new_pred_facts, new_vecs));
  for (size_t i = 0; i < new_pred_facts.size(); ++i) {
    truth.push_back(encoder.Lookup(
        database.value(new_pred_facts[i], ds.pred_attr).ToString()));
    predicted.push_back(clf->Predict(new_vecs.Row(i)));
  }
  out.accuracy = ml::Accuracy(truth, predicted);

  // Majority baseline: predict F_old's most common class for everything.
  std::vector<size_t> counts = train.ClassCounts();
  const int majority = static_cast<int>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());
  size_t hits = 0;
  for (int t : truth) {
    if (t == majority) ++hits;
  }
  out.baseline = truth.empty() ? 0.0
                               : static_cast<double>(hits) /
                                     static_cast<double>(truth.size());
  return out;
}

}  // namespace

Result<DynamicResult> RunDynamicExperiment(const data::GeneratedDataset& ds,
                                           const std::string& method,
                                           const MethodConfig& mcfg,
                                           const DynamicConfig& dcfg) {
  // Resolve the name once so an unknown method fails fast (and with the
  // registry's NotFound message) instead of inside the run fan-out.
  STEDB_ASSIGN_OR_RETURN(std::unique_ptr<EmbeddingMethod> probe,
                         MakeMethod(method, mcfg, dcfg.seed));
  DynamicResult result;
  result.dataset = ds.name;
  result.method = probe->Name();
  result.new_ratio = dcfg.new_ratio;
  result.one_by_one = dcfg.one_by_one;

  // Runs are independent (private database copies, disjoint seeds): fan
  // them out over the runner and aggregate in run order. The pool is
  // split between the run fan-out and nested training (surplus workers go
  // to each run's trainer) — training results are thread-count-invariant,
  // so this only avoids oversubscription.
  ParallelRunner runner(dcfg.threads);
  MethodConfig run_mcfg = mcfg;
  if (runner.threads() > 1) {
    const int inner = std::max(1, runner.threads() / std::max(dcfg.runs, 1));
    run_mcfg.forward.threads = inner;
    run_mcfg.node2vec.walk.threads = inner;
    run_mcfg.node2vec.sg.threads = inner;
  }
  std::vector<std::optional<Result<RunOutcome>>> outcomes(
      static_cast<size_t>(std::max(dcfg.runs, 0)));
  runner.ParallelFor(outcomes.size(), [&](size_t run) {
    outcomes[run].emplace(
        RunOnce(ds, method, run_mcfg, dcfg, static_cast<int>(run)));
  });

  std::vector<double> accuracies;
  std::vector<double> baselines;
  double total_extend_seconds = 0.0;
  size_t total_new_pred = 0;
  size_t total_new_facts = 0;
  double worst_drift = 0.0;
  for (const auto& outcome : outcomes) {
    if (!outcome->ok()) return outcome->status();
    const RunOutcome& out = outcome->value();
    accuracies.push_back(out.accuracy);
    baselines.push_back(out.baseline);
    total_extend_seconds += out.extend_seconds;
    total_new_pred += out.new_pred;
    total_new_facts += out.new_facts;
    worst_drift = std::max(worst_drift, out.drift);
    result.journaled = result.journaled || out.journaled;
    result.journal_drift = std::max(result.journal_drift, out.journal_drift);
  }

  result.mean_accuracy = ml::Mean(accuracies);
  result.std_accuracy = ml::StdDev(accuracies);
  result.majority_baseline = ml::Mean(baselines);
  result.seconds_per_new_tuple =
      total_new_pred > 0
          ? total_extend_seconds / static_cast<double>(total_new_pred)
          : 0.0;
  result.stability_drift = worst_drift;
  result.avg_new_facts =
      dcfg.runs > 0 ? total_new_facts / static_cast<size_t>(dcfg.runs) : 0;
  return result;
}

}  // namespace stedb::exp
