#ifndef STEDB_EXP_EMBEDDING_METHOD_H_
#define STEDB_EXP_EMBEDDING_METHOD_H_

#include <memory>
#include <string>

#include "src/api/embedder.h"
#include "src/api/registry.h"
#include "src/common/status.h"

namespace stedb::exp {

/// The interface every experiment drives: one instance = one trained
/// embedding over one database. This is api::Embedder — the experiment
/// harness predates the api layer, and the alias keeps its code reading
/// unchanged while all construction goes through the method registry.
using EmbeddingMethod = api::Embedder;

/// Experiment scale presets. kSmoke is for tests/CI, kPaper approaches the
/// paper's hyperparameters (Table II) — expensive on a single CPU core.
enum class RunScale { kSmoke, kDefault, kPaper };

/// Reads STEDB_SCALE=smoke|default|paper (unset/empty: default). Any other
/// value is a fatal error — a typo'd scale must not silently run the
/// default-scale experiment.
RunScale ScaleFromEnv();

/// Per-method hyperparameters (the api::MethodOptions handed to the
/// registry factories) plus the dataset scale factor the experiment
/// generators use.
struct MethodConfig : api::MethodOptions {
  /// Dataset size multiplier passed to the generators.
  double data_scale = 1.0;

  /// Preset for a scale (embedding dims, epochs, sample counts, data size).
  static MethodConfig ForScale(RunScale scale);
};

/// Builds a method instance by registry name — "forward", "node2vec"
/// (case-insensitive), or anything registered via api::RegisterMethod.
/// `seed` controls all of the instance's randomness. NotFound for unknown
/// names.
Result<std::unique_ptr<EmbeddingMethod>> MakeMethod(const std::string& name,
                                                    const MethodConfig& config,
                                                    uint64_t seed);

}  // namespace stedb::exp

#endif  // STEDB_EXP_EMBEDDING_METHOD_H_
