#ifndef STEDB_EXP_EMBEDDING_METHOD_H_
#define STEDB_EXP_EMBEDDING_METHOD_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/db/database.h"
#include "src/fwd/forward.h"
#include "src/n2v/node2vec.h"

namespace stedb::exp {

/// The two embedding algorithms compared throughout the paper.
enum class MethodKind { kForward, kNode2Vec };

const char* MethodKindName(MethodKind kind);

/// Experiment scale presets. kSmoke is for tests/CI, kPaper approaches the
/// paper's hyperparameters (Table II) — expensive on a single CPU core.
enum class RunScale { kSmoke, kDefault, kPaper };

/// Reads STEDB_SCALE=smoke|default|paper (default: default).
RunScale ScaleFromEnv();

/// Per-method hyperparameters plus the dataset scale factor bundled so the
/// harness can construct either method uniformly.
struct MethodConfig {
  fwd::ForwardConfig forward;
  n2v::Node2VecConfig node2vec;
  /// Dataset size multiplier passed to the generators.
  double data_scale = 1.0;

  /// Preset for a scale (embedding dims, epochs, sample counts, data size).
  static MethodConfig ForScale(RunScale scale);
};

/// Uniform facade over ForwardEmbedder and Node2VecEmbedding used by every
/// experiment. One instance = one trained embedding over one database.
class EmbeddingMethod {
 public:
  virtual ~EmbeddingMethod() = default;

  /// Static phase over the database's current contents. `rel` is the
  /// prediction relation, `excluded` the label attribute(s) the embedding
  /// must not see.
  virtual Status TrainStatic(const db::Database* database, db::RelationId rel,
                             const fwd::AttrKeySet& excluded) = 0;

  /// Dynamic phase: the facts (all relations) just inserted into the
  /// database. Must leave every previously returned embedding unchanged.
  virtual Status ExtendToFacts(const std::vector<db::FactId>& new_facts) = 0;

  /// Embedding of a prediction-relation fact.
  virtual Result<la::Vector> Embed(db::FactId f) const = 0;

  /// Starts journaling this method's model into a store::EmbeddingStore at
  /// `dir`: snapshot of the trained model now, one WAL record per future
  /// extension. Must be called after TrainStatic. The default is
  /// FailedPrecondition — only FoRWaRD has a durable store format so far.
  virtual Status AttachJournal(const std::string& dir) {
    (void)dir;
    return Status::FailedPrecondition(Name() + " does not support journaling");
  }

  /// Re-opens the attached journal cold (snapshot + WAL replay, as a crash
  /// recovery would) and returns the max absolute deviation between the
  /// recovered and the in-memory embeddings — 0.0 when durability is
  /// bit-exact.
  virtual Result<double> VerifyJournal() const {
    return Status::FailedPrecondition(Name() + " does not support journaling");
  }

  virtual std::string Name() const = 0;
};

/// Builds a method instance; `seed` controls all its randomness.
std::unique_ptr<EmbeddingMethod> MakeMethod(MethodKind kind,
                                            const MethodConfig& config,
                                            uint64_t seed);

}  // namespace stedb::exp

#endif  // STEDB_EXP_EMBEDDING_METHOD_H_
