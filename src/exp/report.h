#ifndef STEDB_EXP_REPORT_H_
#define STEDB_EXP_REPORT_H_

#include <string>
#include <utility>
#include <vector>

namespace stedb::exp {

/// Fixed-width text table builder used by the bench binaries to print
/// paper-style tables.
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Renders with a header rule, columns padded to content width.
  std::string Render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "84.20% ±4.94" formatting used throughout the paper's tables.
std::string AccuracyCell(double mean, double stddev);

/// Seconds with 3 decimals.
std::string SecondsCell(double seconds);

/// Renders an ASCII line chart of one or more series over shared x values
/// (used to "plot" Figure 5 in terminal output). Values are percentages in
/// [0, 100].
std::string AsciiChart(const std::vector<double>& xs,
                       const std::vector<std::pair<std::string,
                                                   std::vector<double>>>& series,
                       int height = 12);

}  // namespace stedb::exp

#endif  // STEDB_EXP_REPORT_H_
