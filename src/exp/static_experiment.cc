#include "src/exp/static_experiment.h"

#include <unordered_map>

#include "src/common/timer.h"
#include "src/ml/metrics.h"

namespace stedb::exp {

fwd::AttrKeySet LabelExclusion(const data::GeneratedDataset& ds) {
  fwd::AttrKeySet excluded;
  excluded.insert({ds.pred_rel, ds.pred_attr});
  return excluded;
}

Result<ml::FeatureDataset> EmbeddingFeatures(
    const db::Database& database, db::AttrId pred_attr,
    const EmbeddingMethod& method, const std::vector<db::FactId>& facts,
    ml::LabelEncoder& encoder) {
  ml::FeatureDataset out;
  for (db::FactId f : facts) {
    STEDB_ASSIGN_OR_RETURN(la::Vector v, method.Embed(f));
    out.Add(std::move(v),
            encoder.Encode(database.value(f, pred_attr).ToString()));
  }
  out.num_classes = encoder.num_classes();
  return out;
}

Result<ml::FeatureDataset> EmbeddingFeatures(
    const data::GeneratedDataset& ds, const EmbeddingMethod& method,
    const std::vector<db::FactId>& facts, ml::LabelEncoder& encoder) {
  return EmbeddingFeatures(ds.database, ds.pred_attr, method, facts, encoder);
}

Result<StaticResult> RunStaticExperiment(const data::GeneratedDataset& ds,
                                         MethodKind method,
                                         const MethodConfig& mcfg,
                                         const StaticConfig& scfg) {
  const std::vector<db::FactId>& samples = ds.Samples();
  ml::LabelEncoder encoder;
  std::vector<int> labels;
  labels.reserve(samples.size());
  for (db::FactId f : samples) labels.push_back(encoder.Encode(ds.LabelOf(f)));

  const fwd::AttrKeySet excluded = LabelExclusion(ds);
  double train_seconds = 0.0;

  // Either one embedding per fold (paper protocol) or a single shared one.
  std::unique_ptr<EmbeddingMethod> shared;
  if (!scfg.embedding_per_fold) {
    shared = MakeMethod(method, mcfg, scfg.seed);
    Timer t;
    STEDB_RETURN_IF_ERROR(
        shared->TrainStatic(&ds.database, ds.pred_rel, excluded));
    train_seconds += t.ElapsedSeconds();
  }

  auto build = [&](int fold) -> Result<ml::FeatureDataset> {
    const EmbeddingMethod* m = shared.get();
    std::unique_ptr<EmbeddingMethod> per_fold;
    if (scfg.embedding_per_fold) {
      per_fold = MakeMethod(method, mcfg,
                            scfg.seed + 7919 * static_cast<uint64_t>(fold));
      Timer t;
      STEDB_RETURN_IF_ERROR(
          per_fold->TrainStatic(&ds.database, ds.pred_rel, excluded));
      train_seconds += t.ElapsedSeconds();
      m = per_fold.get();
    }
    ml::LabelEncoder fold_encoder = encoder;  // same label ids every fold
    return EmbeddingFeatures(ds, *m, samples, fold_encoder);
  };

  STEDB_ASSIGN_OR_RETURN(
      ml::CvResult cv,
      ml::CrossValidateWithBuilder(labels, scfg.folds, scfg.seed,
                                   scfg.classifier, build));

  ml::FeatureDataset tmp;
  tmp.y = labels;
  tmp.num_classes = encoder.num_classes();

  StaticResult result;
  result.dataset = ds.name;
  result.method = MethodKindName(method);
  result.mean_accuracy = cv.mean;
  result.std_accuracy = cv.stddev;
  result.majority_baseline = tmp.MajorityFraction();
  result.embed_train_seconds = train_seconds;
  return result;
}

Result<StaticResult> RunFlatBaseline(const data::GeneratedDataset& ds,
                                     const StaticConfig& scfg) {
  const db::Schema& schema = ds.database.schema();
  const db::RelationSchema& rel = schema.relation(ds.pred_rel);
  const std::vector<db::FactId>& samples = ds.Samples();

  // Feature plan: skip keys, FK attributes and the label itself; one-hot
  // categoricals (capped vocabulary), raw numerics (the classifier's
  // scaler standardizes them).
  constexpr size_t kMaxVocab = 32;
  struct Column {
    db::AttrId attr;
    bool numeric;
    std::unordered_map<std::string, size_t> vocab;  // for categoricals
  };
  std::vector<Column> columns;
  for (size_t a = 0; a < rel.arity(); ++a) {
    const db::AttrId attr = static_cast<db::AttrId>(a);
    if (attr == ds.pred_attr) continue;
    if (rel.IsKeyAttr(attr)) continue;
    if (schema.AttrInAnyFk(ds.pred_rel, attr)) continue;
    Column col;
    col.attr = attr;
    col.numeric = rel.attrs[a].type != db::AttrType::kText;
    if (!col.numeric) {
      for (db::FactId f : samples) {
        const db::Value& v = ds.database.value(f, attr);
        if (v.is_null() || col.vocab.size() >= kMaxVocab) continue;
        col.vocab.emplace(v.as_text(), col.vocab.size());
      }
    }
    columns.push_back(std::move(col));
  }

  size_t dim = 0;
  for (const Column& c : columns) dim += c.numeric ? 1 : c.vocab.size();
  if (dim == 0) dim = 1;  // degenerate schema: constant feature

  ml::LabelEncoder encoder;
  ml::FeatureDataset dataset;
  for (db::FactId f : samples) {
    la::Vector x(dim, 0.0);
    size_t off = 0;
    for (const Column& c : columns) {
      const db::Value& v = ds.database.value(f, c.attr);
      if (c.numeric) {
        x[off++] = v.is_null() ? 0.0 : v.AsNumber();
      } else {
        if (!v.is_null()) {
          auto it = c.vocab.find(v.as_text());
          if (it != c.vocab.end()) x[off + it->second] = 1.0;
        }
        off += c.vocab.size();
      }
    }
    dataset.Add(std::move(x), encoder.Encode(ds.LabelOf(f)));
  }
  dataset.num_classes = encoder.num_classes();

  STEDB_ASSIGN_OR_RETURN(
      ml::CvResult cv,
      ml::CrossValidate(dataset, scfg.classifier, scfg.folds, scfg.seed));

  StaticResult result;
  result.dataset = ds.name;
  result.method = "FlatBaseline";
  result.mean_accuracy = cv.mean;
  result.std_accuracy = cv.stddev;
  result.majority_baseline = dataset.MajorityFraction();
  return result;
}

}  // namespace stedb::exp
