#include "src/exp/static_experiment.h"

#include <algorithm>
#include <optional>
#include <unordered_map>

#include "src/common/parallel.h"
#include "src/common/timer.h"
#include "src/ml/metrics.h"

namespace stedb::exp {

fwd::AttrKeySet LabelExclusion(const data::GeneratedDataset& ds) {
  fwd::AttrKeySet excluded;
  excluded.insert({ds.pred_rel, ds.pred_attr});
  return excluded;
}

Result<ml::FeatureDataset> EmbeddingFeatures(
    const db::Database& database, db::AttrId pred_attr,
    const EmbeddingMethod& method, const std::vector<db::FactId>& facts,
    ml::LabelEncoder& encoder) {
  // One batch read instead of a per-fact copy+return loop: the methods
  // gather all rows at once (parallelized for large fact sets).
  la::Matrix features(facts.size(), method.dim());
  STEDB_RETURN_IF_ERROR(method.EmbedBatch(facts, features));
  ml::FeatureDataset out;
  out.x.reserve(facts.size());
  out.y.reserve(facts.size());
  for (size_t i = 0; i < facts.size(); ++i) {
    out.Add(features.Row(i),
            encoder.Encode(database.value(facts[i], pred_attr).ToString()));
  }
  out.num_classes = encoder.num_classes();
  return out;
}

Result<ml::FeatureDataset> EmbeddingFeatures(
    const data::GeneratedDataset& ds, const EmbeddingMethod& method,
    const std::vector<db::FactId>& facts, ml::LabelEncoder& encoder) {
  return EmbeddingFeatures(ds.database, ds.pred_attr, method, facts, encoder);
}

Result<StaticResult> RunStaticExperiment(const data::GeneratedDataset& ds,
                                         const std::string& method,
                                         const MethodConfig& mcfg,
                                         const StaticConfig& scfg) {
  const std::vector<db::FactId>& samples = ds.Samples();
  // CrossValidateWithBuilder re-checks both, but the per-fold fan-out
  // sizes buffers from scfg.folds and trains every fold embedding first —
  // reject bad configs before any training runs.
  if (scfg.folds < 2) {
    return Status::InvalidArgument("folds must be at least 2");
  }
  if (samples.size() < static_cast<size_t>(scfg.folds)) {
    return Status::InvalidArgument("fewer examples than folds");
  }
  ml::LabelEncoder encoder;
  std::vector<int> labels;
  labels.reserve(samples.size());
  for (db::FactId f : samples) labels.push_back(encoder.Encode(ds.LabelOf(f)));

  const fwd::AttrKeySet excluded = LabelExclusion(ds);
  double train_seconds = 0.0;

  // Resolve the method once up front: an unknown registry name fails here
  // with NotFound instead of inside the fold fan-out, and the instance
  // doubles as the shared embedding when embedding_per_fold is off.
  STEDB_ASSIGN_OR_RETURN(std::unique_ptr<EmbeddingMethod> resolved,
                         MakeMethod(method, mcfg, scfg.seed));
  const std::string method_name = resolved->Name();

  // Either one embedding per fold (paper protocol) or a single shared one.
  // The per-fold embeddings — the dominant cost — are built up front, fanned
  // out over the runner; the folds are independent (disjoint seeds, shared
  // read-only database), and the result slots keep them in fold order.
  std::unique_ptr<EmbeddingMethod> shared;
  std::vector<std::optional<Result<ml::FeatureDataset>>> fold_data;
  if (scfg.embedding_per_fold) {
    ParallelRunner runner(scfg.threads);
    MethodConfig fold_cfg = mcfg;
    if (runner.threads() > 1) {
      // Split the pool between the fold fan-out and nested training: with
      // more workers than folds the surplus goes to each fold's trainer,
      // with more folds than workers nested training runs serially.
      // Training results are thread-count-invariant, so this changes
      // nothing but scheduling.
      const int inner = std::max(1, runner.threads() / scfg.folds);
      fold_cfg.forward.threads = inner;
      fold_cfg.node2vec.walk.threads = inner;
      fold_cfg.node2vec.sg.threads = inner;
    }
    fold_data.resize(static_cast<size_t>(scfg.folds));
    std::vector<double> fold_seconds(static_cast<size_t>(scfg.folds), 0.0);
    runner.ParallelFor(static_cast<size_t>(scfg.folds), [&](size_t fold) {
      auto made = MakeMethod(method, fold_cfg, scfg.seed + 7919 * fold);
      if (!made.ok()) {
        fold_data[fold].emplace(made.status());
        return;
      }
      std::unique_ptr<EmbeddingMethod> m = std::move(made).value();
      Timer t;
      Status st = m->TrainStatic(&ds.database, ds.pred_rel, excluded);
      fold_seconds[fold] = t.ElapsedSeconds();
      if (!st.ok()) {
        fold_data[fold].emplace(std::move(st));
        return;
      }
      ml::LabelEncoder fold_encoder = encoder;  // same label ids every fold
      fold_data[fold].emplace(
          EmbeddingFeatures(ds, *m, samples, fold_encoder));
    });
    for (double s : fold_seconds) train_seconds += s;
  } else {
    shared = std::move(resolved);
    Timer t;
    STEDB_RETURN_IF_ERROR(
        shared->TrainStatic(&ds.database, ds.pred_rel, excluded));
    train_seconds += t.ElapsedSeconds();
  }

  auto build = [&](int fold) -> Result<ml::FeatureDataset> {
    if (scfg.embedding_per_fold) {
      return std::move(*fold_data[static_cast<size_t>(fold)]);
    }
    ml::LabelEncoder fold_encoder = encoder;  // same label ids every fold
    return EmbeddingFeatures(ds, *shared, samples, fold_encoder);
  };

  STEDB_ASSIGN_OR_RETURN(
      ml::CvResult cv,
      ml::CrossValidateWithBuilder(labels, scfg.folds, scfg.seed,
                                   scfg.classifier, build));

  ml::FeatureDataset tmp;
  tmp.y = labels;
  tmp.num_classes = encoder.num_classes();

  StaticResult result;
  result.dataset = ds.name;
  result.method = method_name;
  result.mean_accuracy = cv.mean;
  result.std_accuracy = cv.stddev;
  result.majority_baseline = tmp.MajorityFraction();
  result.embed_train_seconds = train_seconds;
  return result;
}

Result<StaticResult> RunFlatBaseline(const data::GeneratedDataset& ds,
                                     const StaticConfig& scfg) {
  const db::Schema& schema = ds.database.schema();
  const db::RelationSchema& rel = schema.relation(ds.pred_rel);
  const std::vector<db::FactId>& samples = ds.Samples();

  // Feature plan: skip keys, FK attributes and the label itself; one-hot
  // categoricals (capped vocabulary), raw numerics (the classifier's
  // scaler standardizes them).
  constexpr size_t kMaxVocab = 32;
  struct Column {
    db::AttrId attr;
    bool numeric;
    std::unordered_map<std::string, size_t> vocab;  // for categoricals
  };
  std::vector<Column> columns;
  for (size_t a = 0; a < rel.arity(); ++a) {
    const db::AttrId attr = static_cast<db::AttrId>(a);
    if (attr == ds.pred_attr) continue;
    if (rel.IsKeyAttr(attr)) continue;
    if (schema.AttrInAnyFk(ds.pred_rel, attr)) continue;
    Column col;
    col.attr = attr;
    col.numeric = rel.attrs[a].type != db::AttrType::kText;
    if (!col.numeric) {
      for (db::FactId f : samples) {
        const db::Value& v = ds.database.value(f, attr);
        if (v.is_null() || col.vocab.size() >= kMaxVocab) continue;
        col.vocab.emplace(v.as_text(), col.vocab.size());
      }
    }
    columns.push_back(std::move(col));
  }

  size_t dim = 0;
  for (const Column& c : columns) dim += c.numeric ? 1 : c.vocab.size();
  if (dim == 0) dim = 1;  // degenerate schema: constant feature

  ml::LabelEncoder encoder;
  ml::FeatureDataset dataset;
  for (db::FactId f : samples) {
    la::Vector x(dim, 0.0);
    size_t off = 0;
    for (const Column& c : columns) {
      const db::Value& v = ds.database.value(f, c.attr);
      if (c.numeric) {
        x[off++] = v.is_null() ? 0.0 : v.AsNumber();
      } else {
        if (!v.is_null()) {
          auto it = c.vocab.find(v.as_text());
          if (it != c.vocab.end()) x[off + it->second] = 1.0;
        }
        off += c.vocab.size();
      }
    }
    dataset.Add(std::move(x), encoder.Encode(ds.LabelOf(f)));
  }
  dataset.num_classes = encoder.num_classes();

  STEDB_ASSIGN_OR_RETURN(
      ml::CvResult cv,
      ml::CrossValidate(dataset, scfg.classifier, scfg.folds, scfg.seed));

  StaticResult result;
  result.dataset = ds.name;
  result.method = "FlatBaseline";
  result.mean_accuracy = cv.mean;
  result.std_accuracy = cv.stddev;
  result.majority_baseline = dataset.MajorityFraction();
  return result;
}

}  // namespace stedb::exp
