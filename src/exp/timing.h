#ifndef STEDB_EXP_TIMING_H_
#define STEDB_EXP_TIMING_H_

#include <string>

#include "src/common/status.h"
#include "src/data/generator.h"
#include "src/exp/embedding_method.h"

namespace stedb::exp {

/// One row of the paper's Table V: wall-clock seconds to compute a static
/// embedding of the dataset with each method.
struct StaticTiming {
  std::string dataset;
  double node2vec_seconds = 0.0;
  double forward_seconds = 0.0;
};

/// Trains each method once on the full dataset and reports the times.
Result<StaticTiming> MeasureStaticTime(const data::GeneratedDataset& ds,
                                       const MethodConfig& mcfg,
                                       uint64_t seed);

}  // namespace stedb::exp

#endif  // STEDB_EXP_TIMING_H_
