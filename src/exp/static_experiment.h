#ifndef STEDB_EXP_STATIC_EXPERIMENT_H_
#define STEDB_EXP_STATIC_EXPERIMENT_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/data/generator.h"
#include "src/exp/embedding_method.h"
#include "src/ml/cross_validation.h"

namespace stedb::exp {

/// Configuration of the static-classification experiment (paper
/// Section VI-D / Table III).
struct StaticConfig {
  int folds = 10;                 ///< k-fold stratified CV (paper: 10)
  /// Train a fresh embedding per fold (the paper's protocol). Off = one
  /// embedding shared by all folds (faster; the classifier split still
  /// changes).
  bool embedding_per_fold = true;
  ml::ClassifierKind classifier = ml::ClassifierKind::kLogistic;
  /// Worker threads for the per-fold fan-out (0 = default: STEDB_THREADS
  /// env var, else hardware concurrency). When folds run concurrently,
  /// each fold's embedding trains single-threaded — results are
  /// bit-identical either way, this only avoids oversubscription.
  int threads = 0;
  uint64_t seed = 123;
};

/// Result of one (dataset, method) static run.
struct StaticResult {
  std::string dataset;
  std::string method;
  double mean_accuracy = 0.0;
  double std_accuracy = 0.0;
  double majority_baseline = 0.0;
  double embed_train_seconds = 0.0;  ///< total embedding training time
};

/// Runs the static experiment for one embedding method (a registry name —
/// "forward", "node2vec", or anything api::RegisterMethod added) on one
/// dataset.
Result<StaticResult> RunStaticExperiment(const data::GeneratedDataset& ds,
                                         const std::string& method,
                                         const MethodConfig& mcfg,
                                         const StaticConfig& scfg);

/// The "S.o.A." stand-in: a classifier over the prediction relation's own
/// non-key/non-FK attributes (one-hot categoricals + standardized numerics),
/// ignoring all FK context. See DESIGN.md §4.
Result<StaticResult> RunFlatBaseline(const data::GeneratedDataset& ds,
                                     const StaticConfig& scfg);

/// Builds the labelled embedding dataset for prediction facts that live in
/// `database` (which may be an experiment's mutated copy): features from
/// `method` (already trained), labels from `pred_attr`.
Result<ml::FeatureDataset> EmbeddingFeatures(
    const db::Database& database, db::AttrId pred_attr,
    const EmbeddingMethod& method, const std::vector<db::FactId>& facts,
    ml::LabelEncoder& encoder);

/// Convenience overload over the dataset's own database.
Result<ml::FeatureDataset> EmbeddingFeatures(
    const data::GeneratedDataset& ds, const EmbeddingMethod& method,
    const std::vector<db::FactId>& facts, ml::LabelEncoder& encoder);

/// The excluded-attribute set for a dataset (its label column).
fwd::AttrKeySet LabelExclusion(const data::GeneratedDataset& ds);

}  // namespace stedb::exp

#endif  // STEDB_EXP_STATIC_EXPERIMENT_H_
