#ifndef STEDB_EXP_DYNAMIC_EXPERIMENT_H_
#define STEDB_EXP_DYNAMIC_EXPERIMENT_H_

#include <string>

#include "src/common/status.h"
#include "src/data/generator.h"
#include "src/exp/embedding_method.h"
#include "src/ml/cross_validation.h"

namespace stedb::exp {

/// Configuration of the dynamic experiment (paper Section VI-E):
/// 1. partition the database into F_old / F_new (stratified + cascade),
/// 2. train the embedding and the downstream classifier on F_old,
/// 3. replay the F_new arrivals and extend the embedding (one-by-one or
///    all-at-once),
/// 4. evaluate the classifier on the *new* prediction tuples only.
struct DynamicConfig {
  double new_ratio = 0.1;     ///< fraction of prediction tuples in F_new
  bool one_by_one = true;     ///< paper's two extension regimes
  int runs = 10;              ///< repetitions with different partitions
  ml::ClassifierKind classifier = ml::ClassifierKind::kLogistic;
  /// Verify after every run that no old embedding moved (stability check).
  bool check_stability = true;
  /// Worker threads for the run fan-out (0 = default: STEDB_THREADS env
  /// var, else hardware concurrency). Runs are independent — each owns a
  /// private database copy — and concurrent execution leaves every
  /// reported number except wall-clock timings bit-identical.
  int threads = 0;
  /// When non-empty, every run journals its model into
  /// `<journal_dir>/run<r>` (binary snapshot after static training + one
  /// WAL record per extension — see src/store/) and, after the replay,
  /// verifies that a cold store::EmbeddingStore::Open() recovers the
  /// in-memory embeddings bit-exactly. Both built-in methods journal via
  /// their registered store::ModelCodec; third-party methods without a
  /// codec ignore the knob.
  std::string journal_dir;
  uint64_t seed = 321;
};

struct DynamicResult {
  std::string dataset;
  std::string method;
  double new_ratio = 0.0;
  bool one_by_one = true;
  double mean_accuracy = 0.0;       ///< on new tuples only (paper Fig. 5)
  double std_accuracy = 0.0;
  double majority_baseline = 0.0;   ///< most-common-class accuracy
  /// Average wall-clock seconds to embed one newly arrived prediction tuple
  /// (training + inference; paper Table VI).
  double seconds_per_new_tuple = 0.0;
  /// Max drift of old embeddings across all runs (must be exactly 0).
  double stability_drift = 0.0;
  size_t avg_new_facts = 0;         ///< facts per run incl. cascade companions
  /// Journaling mode only: max deviation across runs between each run's
  /// in-memory model and its crash-recovered store (must be exactly 0).
  double journal_drift = 0.0;
  bool journaled = false;           ///< journaling ran for at least one run
};

/// Runs the dynamic experiment for one method (a registry name, see
/// api::RegisterMethod) on one dataset.
Result<DynamicResult> RunDynamicExperiment(const data::GeneratedDataset& ds,
                                           const std::string& method,
                                           const MethodConfig& mcfg,
                                           const DynamicConfig& dcfg);

}  // namespace stedb::exp

#endif  // STEDB_EXP_DYNAMIC_EXPERIMENT_H_
