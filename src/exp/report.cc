#include "src/exp/report.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/common/string_util.h"

namespace stedb::exp {

TableWriter::TableWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TableWriter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TableWriter::Render() const {
  std::vector<size_t> width(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : "";
      line += cell;
      line.append(width[c] - cell.size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };
  std::string out = render_row(headers_);
  size_t total = 0;
  for (size_t w : width) total += w + 2;
  out.append(total > 2 ? total - 2 : 0, '-');
  out += "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string AccuracyCell(double mean, double stddev) {
  return FormatDouble(mean * 100.0, 2) + "% ±" +
         FormatDouble(stddev * 100.0, 2);
}

std::string SecondsCell(double seconds) {
  return FormatDouble(seconds, 3) + "s";
}

std::string AsciiChart(
    const std::vector<double>& xs,
    const std::vector<std::pair<std::string, std::vector<double>>>& series,
    int height) {
  if (xs.empty() || series.empty()) return "";
  const int width = static_cast<int>(xs.size());
  // Grid rows from 100% (top) to 0% (bottom).
  std::vector<std::string> grid(height, std::string(width * 6, ' '));
  const char* marks = "*o+x#@";
  for (size_t s = 0; s < series.size(); ++s) {
    const std::vector<double>& ys = series[s].second;
    for (int i = 0; i < width && i < static_cast<int>(ys.size()); ++i) {
      const double frac = std::clamp(ys[i] / 100.0, 0.0, 1.0);
      int row = static_cast<int>((1.0 - frac) * (height - 1) + 0.5);
      grid[row][i * 6 + 2] = marks[s % 6];
    }
  }
  std::ostringstream os;
  for (int r = 0; r < height; ++r) {
    const double pct = 100.0 * (1.0 - static_cast<double>(r) / (height - 1));
    os << (r % 2 == 0 ? FormatDouble(pct, 0) : std::string(3, ' '));
    os << std::string(r % 2 == 0 ? 4 - FormatDouble(pct, 0).size() : 1, ' ');
    os << "|" << grid[r] << "\n";
  }
  os << "    +" << std::string(width * 6, '-') << "\n     ";
  for (int i = 0; i < width; ++i) {
    std::string label = FormatDouble(xs[i], 0);
    os << label << std::string(6 - label.size(), ' ');
  }
  os << "(% new data)\n";
  for (size_t s = 0; s < series.size(); ++s) {
    os << "    " << marks[s % 6] << " = " << series[s].first << "\n";
  }
  return os.str();
}

}  // namespace stedb::exp
