#ifndef STEDB_EXP_PARTITION_H_
#define STEDB_EXP_PARTITION_H_

#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/db/cascade.h"
#include "src/db/database.h"

namespace stedb::exp {

/// The dynamic-experiment partition of a database into F_old and F_new
/// (paper Section VI-E): a stratified fraction of the prediction tuples is
/// removed with ON DELETE CASCADE, each removal recorded as a batch so the
/// arrivals can be replayed later in inverse deletion order.
struct DynamicPartition {
  /// Deletion batches, in deletion order. Replaying them reversed (last
  /// deleted arrives first) simulates the paper's arrival stream; each
  /// batch carries one prediction tuple plus its cascade companions.
  std::vector<db::CascadeResult> batches;
  /// Prediction-relation facts remaining in the database (F_old ∩ pred rel).
  std::vector<db::FactId> old_pred_facts;
  /// Total facts removed across all batches.
  size_t total_removed = 0;
};

/// Removes `new_ratio` of the prediction tuples (stratified by the label in
/// `pred_attr`) from `database` via cascading deletes. The database is
/// mutated in place; the returned partition contains everything needed to
/// re-insert the removed data.
Result<DynamicPartition> PartitionDynamic(db::Database& database,
                                          db::RelationId pred_rel,
                                          db::AttrId pred_attr,
                                          double new_ratio, Rng& rng);

/// Replays one batch into the database; returns the new fact ids in
/// insertion order (callers identify prediction tuples by relation).
/// Wrapper over db::ReinsertBatch.
Result<std::vector<db::FactId>> ReplayBatch(db::Database& database,
                                            const db::CascadeResult& batch);

}  // namespace stedb::exp

#endif  // STEDB_EXP_PARTITION_H_
