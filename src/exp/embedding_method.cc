#include "src/exp/embedding_method.h"

#include <cstdlib>
#include <memory>
#include <optional>

#include "src/store/embedding_store.h"
#include "src/store/snapshot.h"

namespace stedb::exp {

const char* MethodKindName(MethodKind kind) {
  switch (kind) {
    case MethodKind::kForward:
      return "FoRWaRD";
    case MethodKind::kNode2Vec:
      return "Node2Vec";
  }
  return "?";
}

RunScale ScaleFromEnv() {
  const char* env = std::getenv("STEDB_SCALE");
  if (env == nullptr) return RunScale::kDefault;
  const std::string s(env);
  if (s == "smoke") return RunScale::kSmoke;
  if (s == "paper") return RunScale::kPaper;
  return RunScale::kDefault;
}

MethodConfig MethodConfig::ForScale(RunScale scale) {
  MethodConfig cfg;
  switch (scale) {
    case RunScale::kSmoke:
      cfg.data_scale = 0.06;
      cfg.forward.dim = 12;
      cfg.forward.max_walk_len = 2;
      cfg.forward.nsamples = 16;
      cfg.forward.epochs = 8;
      cfg.forward.lr = 0.01;
      cfg.forward.new_samples = 40;
      cfg.node2vec.sg.dim = 12;
      cfg.node2vec.sg.epochs = 3;
      cfg.node2vec.sg.negatives = 6;
      cfg.node2vec.walk.walks_per_node = 8;
      cfg.node2vec.walk.walk_length = 10;
      cfg.node2vec.dynamic_epochs = 3;
      break;
    case RunScale::kDefault:
      cfg.data_scale = 0.2;
      cfg.forward.dim = 32;
      cfg.forward.max_walk_len = 2;
      cfg.forward.nsamples = 32;
      cfg.forward.epochs = 14;
      cfg.forward.lr = 0.01;
      cfg.forward.new_samples = 120;
      cfg.node2vec.sg.dim = 32;
      cfg.node2vec.sg.epochs = 4;
      cfg.node2vec.sg.negatives = 8;
      cfg.node2vec.walk.walks_per_node = 12;
      cfg.node2vec.walk.walk_length = 12;
      cfg.node2vec.dynamic_epochs = 5;
      break;
    case RunScale::kPaper:
      // Paper Table II values (dimension 100, 40x30 walks, 20 negatives,
      // nsamples 5000). Dataset at full Table I scale.
      cfg.data_scale = 1.0;
      cfg.forward.dim = 100;
      cfg.forward.max_walk_len = 3;
      cfg.forward.nsamples = 128;  // exact-KD targets need far fewer than 5000
      cfg.forward.epochs = 10;
      cfg.forward.lr = 0.01;
      cfg.forward.new_samples = 2500;
      cfg.node2vec.sg.dim = 100;
      cfg.node2vec.sg.epochs = 10;
      cfg.node2vec.sg.negatives = 20;
      cfg.node2vec.walk.walks_per_node = 40;
      cfg.node2vec.walk.walk_length = 30;
      cfg.node2vec.dynamic_epochs = 5;
      break;
  }
  return cfg;
}

namespace {

/// ForwardEmbedder adapter.
class ForwardMethod : public EmbeddingMethod {
 public:
  ForwardMethod(const MethodConfig& config, uint64_t seed)
      : config_(config.forward) {
    config_.seed = seed;
  }

  Status TrainStatic(const db::Database* database, db::RelationId rel,
                     const fwd::AttrKeySet& excluded) override {
    auto res =
        fwd::ForwardEmbedder::TrainStatic(database, rel, excluded, config_);
    if (!res.ok()) return res.status();
    embedder_.emplace(std::move(res).value());
    return Status::OK();
  }

  Status ExtendToFacts(const std::vector<db::FactId>& new_facts) override {
    if (!embedder_.has_value()) {
      return Status::FailedPrecondition("TrainStatic was not called");
    }
    return embedder_->ExtendToFacts(new_facts);
  }

  Result<la::Vector> Embed(db::FactId f) const override {
    if (!embedder_.has_value()) {
      return Status::FailedPrecondition("TrainStatic was not called");
    }
    return embedder_->Embed(f);
  }

  Status AttachJournal(const std::string& dir) override {
    if (!embedder_.has_value()) {
      return Status::FailedPrecondition("TrainStatic was not called");
    }
    auto created = store::EmbeddingStore::Create(dir, embedder_->model());
    if (!created.ok()) return created.status();
    // unique_ptr pins the store's address — the sink captures it.
    store_ = std::make_unique<store::EmbeddingStore>(
        std::move(created).value());
    embedder_->set_extension_sink(store_->MakeSink());
    return Status::OK();
  }

  Result<double> VerifyJournal() const override {
    if (store_ == nullptr) {
      return Status::FailedPrecondition("AttachJournal was not called");
    }
    STEDB_RETURN_IF_ERROR(store_->Sync());
    // Cold recovery path: re-open the directory exactly as a restarted
    // process would and diff against the live model.
    auto reopened = store::EmbeddingStore::Open(store_->dir());
    if (!reopened.ok()) return reopened.status();
    return store::ModelMaxAbsDiff(reopened.value().model(),
                                  embedder_->model());
  }

  std::string Name() const override { return "FoRWaRD"; }

 private:
  fwd::ForwardConfig config_;
  std::optional<fwd::ForwardEmbedder> embedder_;
  std::unique_ptr<store::EmbeddingStore> store_;
};

/// Node2VecEmbedding adapter. The label column is excluded from the graph
/// (GraphOptions) rather than from T(R, lmax).
class Node2VecMethod : public EmbeddingMethod {
 public:
  Node2VecMethod(const MethodConfig& config, uint64_t seed)
      : config_(config.node2vec) {
    config_.seed = seed;
  }

  Status TrainStatic(const db::Database* database, db::RelationId rel,
                     const fwd::AttrKeySet& excluded) override {
    (void)rel;  // Node2Vec embeds every fact; the relation is not special.
    for (const fwd::AttrKey& k : excluded) {
      config_.graph.excluded_columns.insert({k.rel, k.attr});
    }
    auto res = n2v::Node2VecEmbedding::TrainStatic(database, config_);
    if (!res.ok()) return res.status();
    embedding_.emplace(std::move(res).value());
    return Status::OK();
  }

  Status ExtendToFacts(const std::vector<db::FactId>& new_facts) override {
    if (!embedding_.has_value()) {
      return Status::FailedPrecondition("TrainStatic was not called");
    }
    return embedding_->ExtendToFacts(new_facts);
  }

  Result<la::Vector> Embed(db::FactId f) const override {
    if (!embedding_.has_value()) {
      return Status::FailedPrecondition("TrainStatic was not called");
    }
    return embedding_->Embed(f);
  }

  std::string Name() const override { return "Node2Vec"; }

 private:
  n2v::Node2VecConfig config_;
  std::optional<n2v::Node2VecEmbedding> embedding_;
};

}  // namespace

std::unique_ptr<EmbeddingMethod> MakeMethod(MethodKind kind,
                                            const MethodConfig& config,
                                            uint64_t seed) {
  switch (kind) {
    case MethodKind::kForward:
      return std::make_unique<ForwardMethod>(config, seed);
    case MethodKind::kNode2Vec:
      return std::make_unique<Node2VecMethod>(config, seed);
  }
  return nullptr;
}

}  // namespace stedb::exp
