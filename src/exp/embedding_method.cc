#include "src/exp/embedding_method.h"

#include <cstdlib>

#include "src/common/logging.h"

namespace stedb::exp {

RunScale ScaleFromEnv() {
  const char* env = std::getenv("STEDB_SCALE");
  if (env == nullptr || *env == '\0') return RunScale::kDefault;
  const std::string s(env);
  if (s == "smoke") return RunScale::kSmoke;
  if (s == "default") return RunScale::kDefault;
  if (s == "paper") return RunScale::kPaper;
  // A typo must not silently run the wrong scale: every bench/CI consumer
  // assumes the scale it asked for.
  STEDB_LOG(kError) << "fatal: unknown STEDB_SCALE '" << s
                    << "' (expected smoke|default|paper)";
  std::exit(1);
}

MethodConfig MethodConfig::ForScale(RunScale scale) {
  MethodConfig cfg;
  switch (scale) {
    case RunScale::kSmoke:
      cfg.data_scale = 0.06;
      cfg.forward.dim = 12;
      cfg.forward.max_walk_len = 2;
      cfg.forward.nsamples = 16;
      cfg.forward.epochs = 8;
      cfg.forward.lr = 0.01;
      cfg.forward.new_samples = 40;
      cfg.node2vec.sg.dim = 12;
      cfg.node2vec.sg.epochs = 3;
      cfg.node2vec.sg.negatives = 6;
      cfg.node2vec.walk.walks_per_node = 8;
      cfg.node2vec.walk.walk_length = 10;
      cfg.node2vec.dynamic_epochs = 3;
      break;
    case RunScale::kDefault:
      cfg.data_scale = 0.2;
      cfg.forward.dim = 32;
      cfg.forward.max_walk_len = 2;
      cfg.forward.nsamples = 32;
      cfg.forward.epochs = 14;
      cfg.forward.lr = 0.01;
      cfg.forward.new_samples = 120;
      cfg.node2vec.sg.dim = 32;
      cfg.node2vec.sg.epochs = 4;
      cfg.node2vec.sg.negatives = 8;
      cfg.node2vec.walk.walks_per_node = 12;
      cfg.node2vec.walk.walk_length = 12;
      cfg.node2vec.dynamic_epochs = 5;
      break;
    case RunScale::kPaper:
      // Paper Table II values (dimension 100, 40x30 walks, 20 negatives,
      // nsamples 5000). Dataset at full Table I scale.
      cfg.data_scale = 1.0;
      cfg.forward.dim = 100;
      cfg.forward.max_walk_len = 3;
      cfg.forward.nsamples = 128;  // exact-KD targets need far fewer than 5000
      cfg.forward.epochs = 10;
      cfg.forward.lr = 0.01;
      cfg.forward.new_samples = 2500;
      cfg.node2vec.sg.dim = 100;
      cfg.node2vec.sg.epochs = 10;
      cfg.node2vec.sg.negatives = 20;
      cfg.node2vec.walk.walks_per_node = 40;
      cfg.node2vec.walk.walk_length = 30;
      cfg.node2vec.dynamic_epochs = 5;
      break;
  }
  return cfg;
}

Result<std::unique_ptr<EmbeddingMethod>> MakeMethod(const std::string& name,
                                                    const MethodConfig& config,
                                                    uint64_t seed) {
  return api::CreateMethod(name, config, seed);
}

}  // namespace stedb::exp
