#include "src/exp/partition.h"

#include <unordered_map>

namespace stedb::exp {

Result<DynamicPartition> PartitionDynamic(db::Database& database,
                                          db::RelationId pred_rel,
                                          db::AttrId pred_attr,
                                          double new_ratio, Rng& rng) {
  if (new_ratio < 0.0 || new_ratio >= 1.0) {
    return Status::InvalidArgument("new_ratio must be in [0, 1)");
  }
  // Stratified choice of prediction tuples to remove: group by label,
  // shuffle, take the first ratio-fraction of each class.
  std::unordered_map<std::string, std::vector<db::FactId>> by_label;
  for (db::FactId f : database.FactsOf(pred_rel)) {
    by_label[database.value(f, pred_attr).ToString()].push_back(f);
  }
  std::vector<db::FactId> to_remove;
  for (auto& [label, facts] : by_label) {
    rng.Shuffle(facts);
    const size_t n = static_cast<size_t>(
        static_cast<double>(facts.size()) * new_ratio + 0.5);
    for (size_t i = 0; i < n && i < facts.size(); ++i) {
      to_remove.push_back(facts[i]);
    }
  }
  // Random global deletion order (paper: iteratively remove in a random
  // order).
  rng.Shuffle(to_remove);

  DynamicPartition part;
  for (db::FactId f : to_remove) {
    if (!database.IsLive(f)) continue;  // removed by an earlier cascade
    STEDB_ASSIGN_OR_RETURN(db::CascadeResult batch,
                           db::CascadeDelete(database, f));
    part.total_removed += batch.facts.size();
    part.batches.push_back(std::move(batch));
  }
  part.old_pred_facts = database.FactsOf(pred_rel);
  return part;
}

Result<std::vector<db::FactId>> ReplayBatch(db::Database& database,
                                            const db::CascadeResult& batch) {
  return db::ReinsertBatch(database, batch);
}

}  // namespace stedb::exp
