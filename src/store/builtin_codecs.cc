// The built-in model codecs of the two paper methods, enumerated for the
// codec registry. This is the only store-layer file that knows the
// concrete codecs; everything else resolves them through CodecByMethod /
// CodecByTag — the persistence mirror of api/builtin_methods.cc.
#include <memory>
#include <vector>

#include "src/fwd/codec.h"
#include "src/n2v/codec.h"
#include "src/store/model_codec.h"

namespace stedb::store {
namespace internal {

// Enumerated (not self-registering) so the registry TU can install the
// built-ins under its own lock without a cross-TU "caller holds the
// lock" contract the thread-safety analysis cannot see.
std::vector<std::shared_ptr<const ModelCodec>> BuiltinCodecs() {
  std::vector<std::shared_ptr<const ModelCodec>> codecs;
  codecs.push_back(std::make_shared<const fwd::ForwardModelCodec>());
  codecs.push_back(std::make_shared<const n2v::Node2VecModelCodec>());
  return codecs;
}

}  // namespace internal
}  // namespace stedb::store
