// The built-in model codecs of the two paper methods, registered with the
// codec registry. This is the only store-layer file that knows the
// concrete codecs; everything else resolves them through CodecByMethod /
// CodecByTag — the persistence mirror of api/builtin_methods.cc.
#include <memory>

#include "src/fwd/codec.h"
#include "src/n2v/codec.h"
#include "src/store/model_codec.h"

namespace stedb::store {
namespace internal {

Status RegisterModelCodecLocked(std::shared_ptr<const ModelCodec> codec);

void RegisterBuiltinCodecs() {
  // Failure is impossible here (fresh registry, distinct names and tags);
  // the statuses are consumed to keep the call sites warning-clean.
  (void)RegisterModelCodecLocked(
      std::make_shared<const fwd::ForwardModelCodec>());
  (void)RegisterModelCodecLocked(
      std::make_shared<const n2v::Node2VecModelCodec>());
}

}  // namespace internal
}  // namespace stedb::store
