#ifndef STEDB_STORE_MMAP_SNAPSHOT_H_
#define STEDB_STORE_MMAP_SNAPSHOT_H_

#include <string>

#include "src/common/span.h"
#include "src/common/status.h"
#include "src/db/database.h"

namespace stedb::store {

/// Read-only, zero-copy view of a snapshot file (model_codec.h container
/// layout): the file is mmap'd and φ vectors are served as pointers
/// straight into the mapping — no per-fact allocation, no double parsing,
/// and the page cache is shared across every process that opens the same
/// snapshot.
///
/// The reader is method-agnostic: it parses the v2 container (verifying
/// magic, version, structure and *every* section's CRC, whatever its tag)
/// and serves the standard sections — the mandatory 'PHI ' embeddings
/// payload, plus 'PSI ' (FoRWaRD's ψ matrices) zero-copy when present. A
/// Node2Vec store directory opens here exactly like a FoRWaRD one; the
/// method tag is exposed for callers that care.
///
/// This works because the writer pads sections so every payload double
/// sits on an 8-byte file offset, and the format stores raw little-endian
/// IEEE-754 doubles — on the little-endian targets this library supports,
/// the on-disk bytes *are* the in-memory representation. Open() checks
/// that the PHI records are sorted by fact id — lookups binary-search the
/// mapping directly, so an open snapshot costs zero heap beyond this
/// object.
///
/// The mapping stays valid for the lifetime of this object even if the
/// file is atomically replaced (rename keeps the old inode alive), which
/// is exactly what a serving replica wants across a writer's Compact().
class MmapSnapshot {
 public:
  /// Maps and validates `path`. InvalidArgument on any structural or
  /// checksum problem, IOError when the file cannot be opened/mapped.
  static Result<MmapSnapshot> Open(const std::string& path);

  MmapSnapshot(MmapSnapshot&& other) noexcept;
  MmapSnapshot& operator=(MmapSnapshot&& other) noexcept;
  MmapSnapshot(const MmapSnapshot&) = delete;
  MmapSnapshot& operator=(const MmapSnapshot&) = delete;
  ~MmapSnapshot();

  /// φ(f) as a view into the mapping, or an empty span when `f` has no
  /// embedding. O(log n) — binary search over the fixed-stride records.
  Span<const double> phi(db::FactId f) const;

  db::RelationId relation() const { return relation_; }
  size_t dim() const { return dim_; }
  size_t num_embedded() const { return num_facts_; }
  /// The i-th embedded fact, ascending in fact id (i < num_embedded()).
  db::FactId fact_at(size_t i) const;
  /// Total mapped bytes (the snapshot file size).
  size_t mapped_bytes() const { return map_size_; }
  /// The writing codec's method tag ('FWD ', 'N2V ', ...).
  uint32_t method_tag() const { return method_tag_; }
  /// The writing codec's payload version.
  uint32_t codec_version() const { return codec_version_; }

  /// ψ matrices from the standard 'PSI ' section, zero-copy: matrix `t`
  /// as a dim()*dim() row-major view into the mapping, or an empty span
  /// when `t` is out of range. num_psi() is 0 for methods that persist no
  /// ψ (Node2Vec). This unblocks a serving-side φᵀψφ scorer: score
  /// lookups need ψ without paying the copying parse.
  size_t num_psi() const { return num_psi_; }
  Span<const double> psi(size_t t) const;

  /// The optional 'ANN ' index section (src/ann/hnsw.h payload),
  /// zero-copy. has_ann() is false for snapshots written without
  /// StoreOptions::build_ann_index; the payload bytes were CRC-verified
  /// by Open() like every other section and sit 8-aligned in the
  /// mapping, ready for ann::HnswView::Open.
  bool has_ann() const { return ann_data_ != nullptr; }
  const char* ann_data() const { return ann_data_; }
  size_t ann_size() const { return ann_size_; }

  /// Raw PHI record layout for index-order vector access: record i is
  /// (i64 fact, dim doubles) at phi_records() + i * phi_stride(). This
  /// is what lets the ANN search read node vectors straight off the
  /// mapping (node i = PHI record i).
  const char* phi_records() const { return phi_records_; }
  size_t phi_stride() const { return 8 + dim_ * 8; }
  /// φ of the i-th record (i < num_embedded()), zero-copy.
  Span<const double> phi_at(size_t i) const;

 private:
  MmapSnapshot() = default;

  void* map_ = nullptr;
  size_t map_size_ = 0;
  const char* phi_records_ = nullptr;  ///< first PHI record, inside map_
  const char* psi_matrices_ = nullptr;  ///< first ψ double, inside map_
  const char* ann_data_ = nullptr;     ///< 'ANN ' payload, inside map_
  size_t ann_size_ = 0;
  size_t num_facts_ = 0;
  size_t num_psi_ = 0;
  size_t dim_ = 0;
  db::RelationId relation_ = -1;
  uint32_t method_tag_ = 0;
  uint32_t codec_version_ = 0;
};

}  // namespace stedb::store

#endif  // STEDB_STORE_MMAP_SNAPSHOT_H_
