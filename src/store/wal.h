#ifndef STEDB_STORE_WAL_H_
#define STEDB_STORE_WAL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/db/database.h"
#include "src/la/matrix.h"

namespace stedb::store {

/// Append-only journal of dynamic extension records.
///
/// File layout (little-endian):
///
///   [0..8)    magic "STEDBWAL"
///   [8..12)   u32 format version (currently 1)
///   [12..16)  u32 embedding dimension (every record must match)
///   records, each:
///     u32 payload_size   always 8 + dim*8
///     u32 crc32          of the payload bytes
///     payload            i64 fact_id, dim doubles
///
/// The 16-byte header and 8-byte record headers keep every φ payload on an
/// 8-byte file offset. A record is durable iff its full payload and a
/// matching CRC are on disk; replay stops at the first record that is
/// short, oversized or checksum-corrupt and reports the clean prefix
/// length so the caller can truncate the torn tail instead of failing.
/// Size of the file header (magic + version + dim) preceding the records.
constexpr size_t kWalHeaderBytes = 16;

struct WalRecord {
  db::FactId fact = -1;
  la::Vector phi;
};

struct WalReplay {
  std::vector<WalRecord> records;  ///< the durable prefix, in append order
  size_t valid_bytes = 0;          ///< header + clean records
  bool torn_tail = false;          ///< trailing garbage was skipped
};

/// Parses a WAL byte buffer. Only unrecoverable states (bad magic/version,
/// header dim mismatch with `expect_dim` when >= 0) are errors; a torn
/// tail is a *successful* replay with `torn_tail` set.
Result<WalReplay> ReplayWalBytes(const std::string& bytes, int expect_dim);

/// One parsed chunk of a headerless WAL byte range — a tail that begins at
/// a record boundary, as produced by reading the journal from a previously
/// consumed offset. For a tailing reader (api::ServingSession::Poll) a
/// torn tail is not an error: the writer may be mid-append, and the bytes
/// after `consumed` can become a complete record by the next read.
struct WalTail {
  std::vector<WalRecord> records;  ///< the clean records, in append order
  size_t consumed = 0;             ///< bytes the clean records occupy
  bool torn = false;               ///< trailing bytes were not a clean record
};

/// Parses records (no file header) of dimension `dim` from a byte range.
WalTail ParseWalTail(const char* data, size_t size, size_t dim);

/// Reads and replays a WAL file.
Result<WalReplay> ReplayWal(const std::string& path, int expect_dim);

/// Appending writer. One writer owns the file at a time. Append hands each
/// record to the OS immediately (fflush — durable against a killed
/// process); Sync() additionally forces the disk cache (fsync — durable
/// against a killed machine).
class WalWriter {
 public:
  /// Opens `path` for appending, writing the 16-byte header when the file
  /// is new or empty. An existing header must match `dim`.
  static Result<WalWriter> Open(const std::string& path, size_t dim);

  /// On-disk bytes of one record of dimension `dim` (u32 size + u32 crc +
  /// i64 fact_id + dim doubles). The single source of truth for byte
  /// accounting — group-commit windows, benches, tests.
  static constexpr size_t RecordBytes(size_t dim) { return 16 + dim * 8; }

  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;
  ~WalWriter();

  /// Appends one record; `phi.size()` must equal the writer's dimension.
  Status Append(db::FactId fact, const la::Vector& phi);

  /// fflush + fsync; after an OK return every appended record is durable.
  Status Sync();

  /// Flushes, syncs and closes the file. Further Appends fail.
  Status Close();

  size_t dim() const { return dim_; }

  /// fsyncs issued by this writer so far (survives Close) — the group-
  /// commit accounting the store and bench read.
  uint64_t sync_count() const { return sync_count_; }

 private:
  WalWriter(std::FILE* file, size_t dim) : file_(file), dim_(dim) {}

  std::FILE* file_ = nullptr;
  size_t dim_ = 0;
  uint64_t sync_count_ = 0;
};

/// Truncates `path` to `valid_bytes`, discarding a torn tail found by
/// replay.
Status TruncateWal(const std::string& path, size_t valid_bytes);

/// Writes a fresh, empty WAL (header only) at `path`, atomically replacing
/// any previous journal. Used by compaction after the snapshot rename.
Status ResetWal(const std::string& path, size_t dim);

}  // namespace stedb::store

#endif  // STEDB_STORE_WAL_H_
