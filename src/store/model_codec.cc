#include "src/store/model_codec.h"

#include <cctype>
#include <map>
#include <utility>

#include "src/common/string_util.h"
#include "src/common/thread_annotations.h"

// stedb:deterministic-output — RegisteredModelCodecs() and the
// "registered:" diagnostics are user-visible sorted lists; the registry
// stays std::map and iteration below must stay over ordered containers.

namespace stedb::store {
namespace internal {

// Defined in builtin_codecs.cc. Enumerated from the registry under its
// lock so the built-in codecs are present before any user-visible lookup;
// the explicit call (rather than static initializers in the codec TUs)
// keeps registration immune to static-library dead-stripping — the same
// pattern as the api method registry.
std::vector<std::shared_ptr<const ModelCodec>> BuiltinCodecs();

}  // namespace internal

namespace {

constexpr char kMagic[8] = {'S', 'T', 'E', 'D', 'B', 'S', 'N', 'P'};

/// Generous structural ceiling: a corrupted section count must not turn
/// into an unbounded parse loop before any size check fires.
constexpr uint32_t kMaxSections = 1 << 10;

Mutex& RegistryMutex() {
  static Mutex mu;
  return mu;
}

struct CodecRegistry {
  std::map<std::string, std::shared_ptr<const ModelCodec>> by_method;
  std::map<uint32_t, std::shared_ptr<const ModelCodec>> by_tag;
};

CodecRegistry& Registry() STEDB_REQUIRES(RegistryMutex()) {
  static CodecRegistry registry;
  return registry;
}

Status RegisterLocked(std::shared_ptr<const ModelCodec> codec)
    STEDB_REQUIRES(RegistryMutex());

void EnsureBuiltinsLocked() STEDB_REQUIRES(RegistryMutex()) {
  static bool done = false;
  if (!done) {
    done = true;
    // Failure is impossible here (fresh registry, distinct names and
    // tags); the statuses are consumed to keep the call warning-clean.
    for (auto& codec : internal::BuiltinCodecs()) {
      (void)RegisterLocked(std::move(codec));
    }
  }
}

Status RegisterLocked(std::shared_ptr<const ModelCodec> codec) {
  if (codec == nullptr) {
    return Status::InvalidArgument("model codec must not be null");
  }
  const std::string key = ToLower(codec->method());
  if (key.empty()) {
    return Status::InvalidArgument("model codec method name must not be empty");
  }
  CodecRegistry& registry = Registry();
  if (registry.by_method.count(key) > 0) {
    return Status::AlreadyExists("model codec for method '" + key +
                                 "' is already registered");
  }
  if (registry.by_tag.count(codec->method_tag()) > 0) {
    return Status::AlreadyExists("model codec tag '" +
                                 FourCcToString(codec->method_tag()) +
                                 "' is already registered");
  }
  registry.by_tag.emplace(codec->method_tag(), codec);
  registry.by_method.emplace(key, std::move(codec));
  return Status::OK();
}

std::string KnownMethodsLocked() STEDB_REQUIRES(RegistryMutex()) {
  std::string known;
  for (const auto& [key, unused] : Registry().by_method) {
    if (!known.empty()) known += ", ";
    known += key;
  }
  return known;
}

}  // namespace

std::string FourCcToString(uint32_t tag) {
  std::string s;
  for (int i = 0; i < 4; ++i) {
    const char c = static_cast<char>((tag >> (8 * i)) & 0xff);
    s += std::isprint(static_cast<unsigned char>(c)) ? c : '?';
  }
  return s;
}

const SnapshotSection* ParsedSnapshot::Find(uint32_t tag) const {
  for (const SnapshotSection& s : sections) {
    if (s.tag == tag) return &s;
  }
  return nullptr;
}

Result<ParsedSnapshot> ParseSnapshotContainer(const char* data, size_t size) {
  ByteReader in(data, size);
  if (in.remaining() < sizeof(kMagic) ||
      std::memcmp(in.cursor(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("snapshot: bad magic");
  }
  in.Skip(sizeof(kMagic));
  uint32_t version = 0;
  if (!in.ReadU32(&version)) {
    return Status::InvalidArgument("snapshot: truncated header");
  }
  if (version != kSnapshotContainerVersion) {
    // A precise, actionable error — version skew must never surface as a
    // checksum failure.
    if (version < kSnapshotContainerVersion) {
      return Status::InvalidArgument(
          "snapshot: format version " + std::to_string(version) +
          " was written by an older binary and predates the codec "
          "registry; re-create the store (this binary reads version " +
          std::to_string(kSnapshotContainerVersion) + ")");
    }
    return Status::InvalidArgument(
        "snapshot: format version " + std::to_string(version) +
        " was written by a newer binary (this binary reads version " +
        std::to_string(kSnapshotContainerVersion) + "); upgrade to open it");
  }

  ParsedSnapshot snap;
  int64_t relation = -1;
  if (!in.ReadU32(&snap.header.method_tag) ||
      !in.ReadU32(&snap.header.codec_version) ||
      !in.ReadU32(&snap.header.section_count) ||
      !in.ReadU64(&snap.header.dim) || !in.ReadI64(&relation)) {
    return Status::InvalidArgument("snapshot: truncated header");
  }
  snap.header.relation = relation;
  if (snap.header.dim == 0 || snap.header.dim > kMaxEmbeddingDim) {
    return Status::InvalidArgument("snapshot: implausible dimension");
  }
  if (snap.header.section_count > kMaxSections) {
    return Status::InvalidArgument("snapshot: implausible section count");
  }

  snap.sections.reserve(snap.header.section_count);
  for (uint32_t s = 0; s < snap.header.section_count; ++s) {
    uint32_t tag = 0, crc = 0;
    uint64_t payload_size = 0;
    if (!in.ReadU32(&tag) || !in.ReadU32(&crc) || !in.ReadU64(&payload_size)) {
      return Status::InvalidArgument("snapshot: truncated section header");
    }
    if (payload_size > in.remaining()) {
      return Status::InvalidArgument("snapshot: section overruns file");
    }
    const char* payload = in.cursor();
    if (Crc32(payload, payload_size) != crc) {
      return Status::InvalidArgument("snapshot: section '" +
                                     FourCcToString(tag) +
                                     "' checksum mismatch");
    }
    in.Skip(static_cast<size_t>(payload_size));
    if (!in.SkipTo8()) {
      return Status::InvalidArgument("snapshot: missing section padding");
    }
    snap.sections.push_back(
        SnapshotSection{tag, payload, static_cast<size_t>(payload_size)});
  }
  if (in.remaining() != 0) {
    return Status::InvalidArgument("snapshot: trailing bytes after sections");
  }
  if (snap.Find(kPhiSectionTag) == nullptr) {
    return Status::InvalidArgument(
        "snapshot: missing mandatory PHI section");
  }
  return snap;
}

SnapshotBuilder::SnapshotBuilder(uint32_t method_tag, uint32_t codec_version,
                                 size_t dim, db::RelationId relation) {
  out_.append(kMagic, sizeof(kMagic));
  AppendU32(out_, kSnapshotContainerVersion);
  AppendU32(out_, method_tag);
  AppendU32(out_, codec_version);
  AppendU32(out_, 0);  // section count, patched by Finish()
  AppendU64(out_, dim);
  AppendI64(out_, static_cast<int64_t>(relation));
}

void SnapshotBuilder::AddSection(uint32_t tag, const std::string& payload) {
  AppendU32(out_, tag);
  AppendU32(out_, Crc32(payload.data(), payload.size()));
  AppendU64(out_, payload.size());
  out_ += payload;
  PadTo8(out_);
  ++section_count_;
}

std::string SnapshotBuilder::Finish() && {
  // Patch the section count in place (offset 20, little-endian u32).
  for (int i = 0; i < 4; ++i) {
    out_[20 + i] = static_cast<char>((section_count_ >> (8 * i)) & 0xff);
  }
  return std::move(out_);
}

Status AppendSnapshotSection(std::string* container, uint32_t tag,
                             const std::string& payload) {
  if (container->size() < kSnapshotHeaderSize ||
      std::memcmp(container->data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(
        "snapshot: cannot append a section to a non-container buffer");
  }
  // The builder keeps every section 8-aligned; a well-formed container
  // therefore ends on an 8-byte boundary and the new section header
  // lands aligned too.
  if (container->size() % 8 != 0) {
    return Status::InvalidArgument(
        "snapshot: container is not section-aligned");
  }
  AppendU32(*container, tag);
  AppendU32(*container, Crc32(payload.data(), payload.size()));
  AppendU64(*container, payload.size());
  *container += payload;
  PadTo8(*container);
  // Bump the section count in place (offset 20, little-endian u32).
  uint32_t count = 0;
  std::memcpy(&count, container->data() + 20, sizeof(count));
  ++count;
  for (int i = 0; i < 4; ++i) {
    (*container)[20 + i] = static_cast<char>((count >> (8 * i)) & 0xff);
  }
  return Status::OK();
}

std::string EncodePhiPayload(const StoredModel& model) {
  std::string phi;
  AppendU64(phi, model.num_embedded());
  model.ForEachPhi([&phi](db::FactId f, const la::Vector& v) {
    AppendI64(phi, f);
    for (double x : v) AppendDouble(phi, x);
  });
  return phi;
}

Status DecodePhiPayload(const SnapshotSection& section, size_t dim,
                        StoredModel* into) {
  ByteReader in = section.reader();
  uint64_t n = 0;
  const uint64_t record_size = 8 + static_cast<uint64_t>(dim) * 8;
  // Division-form size check: a crafted count cannot overflow the
  // multiplication into a passing comparison.
  if (!in.ReadU64(&n) || in.remaining() % record_size != 0 ||
      in.remaining() / record_size != n) {
    return Status::InvalidArgument("snapshot: PHI payload size mismatch");
  }
  db::FactId prev = db::kNoFact;
  bool have_prev = false;
  for (uint64_t i = 0; i < n; ++i) {
    int64_t fact = -1;
    in.ReadI64(&fact);  // cannot fail: size checked above
    if (have_prev && static_cast<db::FactId>(fact) <= prev) {
      return Status::InvalidArgument(
          "snapshot: PHI records not strictly ascending by fact id");
    }
    prev = static_cast<db::FactId>(fact);
    have_prev = true;
    la::Vector vec(dim);
    for (double& x : vec) in.ReadDouble(&x);
    into->set_phi(static_cast<db::FactId>(fact), std::move(vec));
  }
  return Status::OK();
}

Status RegisterModelCodec(std::shared_ptr<const ModelCodec> codec) {
  MutexLock lock(RegistryMutex());
  EnsureBuiltinsLocked();
  return RegisterLocked(std::move(codec));
}

Result<std::shared_ptr<const ModelCodec>> CodecByMethod(
    const std::string& method) {
  MutexLock lock(RegistryMutex());
  EnsureBuiltinsLocked();
  auto it = Registry().by_method.find(ToLower(method));
  if (it == Registry().by_method.end()) {
    return Status::NotFound("no model codec for method '" + method +
                            "' (registered: " + KnownMethodsLocked() + ")");
  }
  return it->second;
}

Result<std::shared_ptr<const ModelCodec>> CodecByTag(uint32_t method_tag) {
  MutexLock lock(RegistryMutex());
  EnsureBuiltinsLocked();
  auto it = Registry().by_tag.find(method_tag);
  if (it == Registry().by_tag.end()) {
    return Status::NotFound("no model codec for snapshot method tag '" +
                            FourCcToString(method_tag) +
                            "' (registered: " + KnownMethodsLocked() + ")");
  }
  return it->second;
}

std::vector<std::string> RegisteredModelCodecs() {
  MutexLock lock(RegistryMutex());
  EnsureBuiltinsLocked();
  std::vector<std::string> names;
  names.reserve(Registry().by_method.size());
  for (const auto& [key, unused] : Registry().by_method) {
    names.push_back(key);
  }
  return names;  // std::map iterates sorted
}

}  // namespace stedb::store
