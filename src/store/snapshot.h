#ifndef STEDB_STORE_SNAPSHOT_H_
#define STEDB_STORE_SNAPSHOT_H_

#include <string>

#include "src/common/status.h"
#include "src/fwd/model.h"

namespace stedb::store {

/// Versioned binary snapshot of a trained fwd::ForwardModel.
///
/// Layout (all integers little-endian, doubles raw IEEE-754):
///
///   [0..8)    magic "STEDBSNP"
///   [8..12)   u32 format version (currently 1)
///   [12..16)  u32 section count (currently 3)
///   sections, in fixed order META, PSI, PHI, each:
///     u32 tag          fourcc section name
///     u32 crc32        of the payload bytes
///     u64 payload_size
///     payload          (payload_size bytes)
///     zero padding to the next 8-byte file offset
///
///   META: i64 relation, u64 dim,
///         u64 #schemes, per scheme (i64 start, u64 #steps,
///                                   per step (i64 fk, u64 forward)),
///         u64 #targets, per target (i64 scheme_index, i64 attr)
///   PSI:  u64 #targets, then per target dim*dim doubles (row-major)
///   PHI:  u64 #facts, then per fact (i64 fact_id, dim doubles),
///         sorted by fact id so identical models produce identical bytes
///
/// Section headers are 16 bytes and payloads padded to 8, so every double
/// sits on an 8-byte file offset: a reader may mmap the file and point at
/// the ψ/φ payloads in place. Every parser here is defensive — truncated,
/// bit-flipped, or adversarial input yields a Status error, never a crash
/// or a partially filled model (fuzzed in tests/store_fuzz_test.cc).

/// Serializes to the snapshot byte format. Deterministic: equal models
/// produce byte-identical buffers.
std::string SnapshotToBytes(const fwd::ForwardModel& model);

/// Parses SnapshotToBytes output, verifying magic, version, structure and
/// per-section CRCs.
Result<fwd::ForwardModel> SnapshotFromBytes(const std::string& bytes);

/// Writes the snapshot to `path` atomically (temp file + fsync + rename).
Status WriteSnapshot(const fwd::ForwardModel& model, const std::string& path);

/// Reads and parses a snapshot file.
Result<fwd::ForwardModel> ReadSnapshot(const std::string& path);

/// Largest absolute entry-wise deviation between two models' ψ matrices
/// and φ vectors; +inf on any structural mismatch (relation, dim, schemes,
/// targets, or embedded-fact sets differ). 0.0 means bit-exact agreement —
/// the recovery acceptance criterion.
double ModelMaxAbsDiff(const fwd::ForwardModel& a, const fwd::ForwardModel& b);

}  // namespace stedb::store

#endif  // STEDB_STORE_SNAPSHOT_H_
