#ifndef STEDB_STORE_SNAPSHOT_H_
#define STEDB_STORE_SNAPSHOT_H_

#include <string>

#include "src/common/status.h"
#include "src/fwd/model.h"
#include "src/store/stored_model.h"

namespace stedb::store {

/// FoRWaRD-typed snapshot helpers.
///
/// These are thin wrappers over the method-agnostic codec layer (see
/// model_codec.h for the container format and fwd/codec.h for the FoRWaRD
/// codec): they exist because a large surface — tests, benches, the
/// trainer-side tooling — deals in `fwd::ForwardModel` values and should
/// not have to wrap/unwrap StoredModel handles to hit the disk format.
/// The bytes they produce are ordinary v2 containers with the 'FWD '
/// method tag; any generic reader (EmbeddingStore::Open, MmapSnapshot,
/// api::ServingSession) opens them like every other method's snapshot.

/// Serializes to the snapshot byte format. Deterministic: equal models
/// produce byte-identical buffers.
std::string SnapshotToBytes(const fwd::ForwardModel& model);

/// Parses SnapshotToBytes output, verifying magic, container version,
/// method tag, structure and per-section CRCs.
Result<fwd::ForwardModel> SnapshotFromBytes(const std::string& bytes);

/// Writes the snapshot to `path` atomically (temp file + fsync + rename).
Status WriteSnapshot(const fwd::ForwardModel& model, const std::string& path);

/// Reads and parses a snapshot file.
Result<fwd::ForwardModel> ReadSnapshot(const std::string& path);

/// Largest absolute entry-wise deviation between two models' ψ matrices
/// and φ vectors; +inf on any structural mismatch (relation, dim, schemes,
/// targets, or embedded-fact sets differ). 0.0 means bit-exact agreement —
/// the recovery acceptance criterion.
double ModelMaxAbsDiff(const fwd::ForwardModel& a, const fwd::ForwardModel& b);

/// Same, with one or both sides behind the store's generic model handle
/// (as EmbeddingStore::model() returns it). When every generic side is a
/// FoRWaRD stored model the full ψ-aware diff runs; models of any other
/// method are +inf by definition (structural mismatch — use
/// StoredModelMaxAbsDiff for the method-agnostic φ-only comparison).
double ModelMaxAbsDiff(const StoredModel& a, const fwd::ForwardModel& b);
double ModelMaxAbsDiff(const StoredModel& a, const StoredModel& b);

}  // namespace stedb::store

#endif  // STEDB_STORE_SNAPSHOT_H_
