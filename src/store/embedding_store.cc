#include "src/store/embedding_store.h"

#include <filesystem>
#include <utility>
#include <vector>

#include "src/ann/hnsw.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/store/format.h"

namespace stedb::store {

namespace {

/// Registry series of the store layer, registered once per process.
/// Shared across store instances: a process that owns several stores
/// (tests, the dynamic experiment) aggregates — per-store breakdowns
/// would key series on directory paths, an unbounded label set.
struct StoreMetrics {
  obs::Registry& reg = obs::Registry::Global();
  obs::Counter& appends = reg.GetCounter(
      "stedb_store_appends_total", "Extension records journaled");
  obs::Counter& wal_bytes = reg.GetCounter(
      "stedb_store_wal_bytes_total", "Journal bytes appended");
  obs::Counter& fsyncs = reg.GetCounter(
      "stedb_store_fsyncs_total", "Disk-cache flushes issued by the store");
  obs::Counter& compactions = reg.GetCounter(
      "stedb_store_compactions_total", "Journal-into-snapshot compactions");
  obs::Histogram& append_seconds = reg.GetHistogram(
      "stedb_store_append_seconds",
      "Append latency incl. group-commit fsyncs and auto-compaction",
      obs::Buckets::Latency());
  obs::Histogram& fsync_seconds = reg.GetHistogram(
      "stedb_store_fsync_seconds", "Journal fsync latency",
      obs::Buckets::Latency());
  obs::Histogram& sync_if_due_seconds = reg.GetHistogram(
      "stedb_store_sync_if_due_seconds",
      "Latency of SyncIfDue calls that flushed an expired group-commit "
      "window (the idle-writer tail-durability path)",
      obs::Buckets::Latency());
  obs::Histogram& compact_seconds = reg.GetHistogram(
      "stedb_store_compact_seconds", "Compact latency",
      obs::Buckets::Latency());
  obs::Histogram& ann_build_seconds = reg.GetHistogram(
      "stedb_store_ann_build_seconds",
      "HNSW index construction latency inside snapshot writes "
      "(StoreOptions::build_ann_index)",
      obs::Buckets::Latency());
  obs::Histogram& group_commit_batch = reg.GetHistogram(
      "stedb_store_group_commit_batch_records",
      "Records made durable per fsync", obs::Buckets::PowersOfTwo());
  obs::Gauge& journal_offset = reg.GetGauge(
      "stedb_store_journal_offset_bytes",
      "Journal byte offset (header + records) of the most recently "
      "written store");
};

StoreMetrics& Metrics() {
  static StoreMetrics m;
  return m;
}

// Eager registration: a process that only reads (stedb_serve) still
// exports the store families, at zero, so scrapes see a stable schema.
[[maybe_unused]] const StoreMetrics& g_eager_metrics = Metrics();

/// Encodes `model` through its codec and, when the options ask for it,
/// appends the 'ANN ' index section built over the model's φ vectors.
/// Shared by Create() and WriteSnapshotFile() so every snapshot write —
/// initial persist and each Compact — carries the same sections.
Result<std::string> EncodeSnapshotBytes(const ModelCodec& codec,
                                        const StoredModel& model,
                                        const StoreOptions& options) {
  STEDB_ASSIGN_OR_RETURN(std::string bytes, codec.Encode(model));
  if (!options.build_ann_index || model.num_embedded() == 0) return bytes;
  obs::ScopedTimer timer(Metrics().ann_build_seconds);
  // Gather the φ rows in PHI order (ForEachPhi ascends fact ids) so ANN
  // node i is exactly PHI record i — the identity MmapSnapshot's
  // zero-copy serving path relies on.
  const size_t dim = model.dim();
  std::vector<db::FactId> facts;
  std::vector<double> rows;
  facts.reserve(model.num_embedded());
  rows.reserve(model.num_embedded() * dim);
  model.ForEachPhi([&facts, &rows](db::FactId f, const la::Vector& v) {
    facts.push_back(f);
    rows.insert(rows.end(), v.begin(), v.end());
  });
  STEDB_ASSIGN_OR_RETURN(
      std::string payload,
      ann::BuildHnsw(options.ann, facts,
                     ann::VectorSource::Dense(rows.data(), dim), dim));
  STEDB_RETURN_IF_ERROR(
      AppendSnapshotSection(&bytes, kAnnSectionTag, payload));
  return bytes;
}

}  // namespace

void TouchStoreMetrics() { Metrics(); }

std::string EmbeddingStore::SnapshotPath(const std::string& dir) {
  return dir + "/model.snap";
}

std::string EmbeddingStore::WalPath(const std::string& dir) {
  return dir + "/extend.wal";
}

EmbeddingStore::EmbeddingStore(std::string dir, StoreOptions options,
                               std::shared_ptr<const ModelCodec> codec,
                               std::unique_ptr<StoredModel> model,
                               WalWriter wal, size_t wal_records, bool torn)
    : dir_(std::move(dir)),
      options_(options),
      codec_(std::move(codec)),
      model_(std::move(model)),
      wal_(std::move(wal)),
      wal_records_(wal_records),
      recovered_torn_tail_(torn) {}

Status EmbeddingStore::WriteSnapshotFile() const {
  STEDB_ASSIGN_OR_RETURN(std::string bytes,
                         EncodeSnapshotBytes(*codec_, *model_, options_));
  return AtomicWriteFile(SnapshotPath(dir_), bytes);
}

Result<EmbeddingStore> EmbeddingStore::Create(
    const std::string& dir, const std::string& method,
    std::unique_ptr<StoredModel> model, StoreOptions options) {
  if (model == nullptr) {
    return Status::InvalidArgument("store: model must not be null");
  }
  if (model->dim() == 0) {
    return Status::InvalidArgument("store: model has dimension 0");
  }
  STEDB_ASSIGN_OR_RETURN(std::shared_ptr<const ModelCodec> codec,
                         CodecByMethod(method));
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("store: cannot create directory " + dir);
  }
  {
    STEDB_ASSIGN_OR_RETURN(std::string bytes,
                           EncodeSnapshotBytes(*codec, *model, options));
    STEDB_RETURN_IF_ERROR(AtomicWriteFile(SnapshotPath(dir), bytes));
  }
  STEDB_RETURN_IF_ERROR(ResetWal(WalPath(dir), model->dim()));
  STEDB_ASSIGN_OR_RETURN(WalWriter wal,
                         WalWriter::Open(WalPath(dir), model->dim()));
  EmbeddingStore store(dir, options, std::move(codec), std::move(model),
                       std::move(wal), /*wal_records=*/0, /*torn=*/false);
  store.journal_bytes_ = kWalHeaderBytes;
  return store;
}

Result<EmbeddingStore> EmbeddingStore::Open(const std::string& dir,
                                            StoreOptions options) {
  std::string bytes;
  STEDB_RETURN_IF_ERROR(ReadFileToString(SnapshotPath(dir), &bytes));
  STEDB_ASSIGN_OR_RETURN(ParsedSnapshot snap,
                         ParseSnapshotContainer(bytes.data(), bytes.size()));
  STEDB_ASSIGN_OR_RETURN(std::shared_ptr<const ModelCodec> codec,
                         CodecByTag(snap.header.method_tag));
  STEDB_ASSIGN_OR_RETURN(std::unique_ptr<StoredModel> model,
                         codec->Decode(snap));
  STEDB_ASSIGN_OR_RETURN(
      WalReplay replay,
      ReplayWal(WalPath(dir), static_cast<int>(model->dim())));
  if (replay.torn_tail) {
    STEDB_RETURN_IF_ERROR(TruncateWal(WalPath(dir), replay.valid_bytes));
  }
  // Replay in append order; re-appends of a fact already snapshotted (a
  // crash between Compact's snapshot rename and journal reset) simply
  // rewrite the identical vector, so recovery is idempotent.
  for (WalRecord& rec : replay.records) {
    model->set_phi(rec.fact, std::move(rec.phi));
  }
  STEDB_ASSIGN_OR_RETURN(WalWriter wal,
                         WalWriter::Open(WalPath(dir), model->dim()));
  EmbeddingStore store(dir, options, std::move(codec), std::move(model),
                       std::move(wal), replay.records.size(),
                       replay.torn_tail);
  store.journal_bytes_ = replay.valid_bytes;
  return store;
}

bool EmbeddingStore::GroupWindowExpired() const {
  if (options_.group_commit_usec == 0) return false;
  const auto waited = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - oldest_unsynced_);
  return static_cast<uint64_t>(waited.count()) >= options_.group_commit_usec;
}

Status EmbeddingStore::MaybeGroupSync(size_t record_bytes) {
  // The group-commit window only relaxes sync_every_append; without that
  // knob appends stay buffered (fsync on Sync/Close alone) and the window
  // knobs are inert, exactly as StoreOptions documents.
  if (!options_.sync_every_append) return Status::OK();
  const bool group_mode =
      options_.group_commit_bytes > 0 || options_.group_commit_usec > 0;
  if (!group_mode) return Sync();  // classic per-record fsync

  if (unsynced_bytes_ == 0) {
    oldest_unsynced_ = std::chrono::steady_clock::now();
  }
  unsynced_bytes_ += record_bytes;
  const bool due = (options_.group_commit_bytes > 0 &&
                    unsynced_bytes_ >= options_.group_commit_bytes) ||
                   GroupWindowExpired();
  return due ? Sync() : Status::OK();
}

Status EmbeddingStore::SyncIfDue() {
  if (unsynced_bytes_ == 0 || !options_.sync_every_append) {
    return Status::OK();
  }
  if (!GroupWindowExpired()) return Status::OK();
  // Only flushes are observed: the histogram measures how expensive the
  // idle-writer durability path is when it actually hits the disk, not
  // how often a ticker polled a quiet window.
  obs::ScopedTimer timer(Metrics().sync_if_due_seconds);
  return Sync();
}

Status EmbeddingStore::Append(db::FactId fact, const la::Vector& phi) {
  if (phi.size() != model_->dim()) {
    return Status::InvalidArgument("store: vector dimension mismatch");
  }
  obs::ScopedTimer timer(Metrics().append_seconds);
  STEDB_RETURN_IF_ERROR(wal_.Append(fact, phi));
  const size_t record_bytes = WalWriter::RecordBytes(phi.size());
  ++unsynced_records_;
  journal_bytes_ += record_bytes;
  StoreMetrics& m = Metrics();
  m.appends.Inc();
  m.wal_bytes.Inc(record_bytes);
  m.journal_offset.Set(static_cast<double>(journal_bytes_));
  STEDB_RETURN_IF_ERROR(MaybeGroupSync(record_bytes));
  model_->set_phi(fact, phi);
  ++wal_records_;
  if (options_.compact_every > 0 && wal_records_ >= options_.compact_every) {
    return Compact();
  }
  return Status::OK();
}

Status EmbeddingStore::Sync() {
  if (unsynced_records_ > 0) {
    Metrics().group_commit_batch.Observe(
        static_cast<double>(unsynced_records_));
  }
  {
    obs::ScopedTimer timer(Metrics().fsync_seconds);
    STEDB_RETURN_IF_ERROR(wal_.Sync());
  }
  Metrics().fsyncs.Inc();
  unsynced_bytes_ = 0;
  unsynced_records_ = 0;
  return Status::OK();
}

Status EmbeddingStore::Compact() {
  obs::Span span("store.compact", Metrics().compact_seconds,
                 /*slow_log_sec=*/1.0);
  STEDB_RETURN_IF_ERROR(Sync());
  // Order matters for crash safety: (1) the new snapshot lands atomically
  // (old snapshot + full journal remain valid until the rename), (2) the
  // journal is reset. A crash between (1) and (2) leaves journal records
  // that are already in the snapshot — harmless, see Open().
  STEDB_RETURN_IF_ERROR(WriteSnapshotFile());
  STEDB_RETURN_IF_ERROR(wal_.Close());
  Metrics().fsyncs.Inc();  // Close() forces the old journal's tail
  folded_fsyncs_ += wal_.sync_count();
  STEDB_RETURN_IF_ERROR(ResetWal(WalPath(dir_), model_->dim()));
  STEDB_ASSIGN_OR_RETURN(WalWriter wal,
                         WalWriter::Open(WalPath(dir_), model_->dim()));
  wal_ = std::move(wal);
  wal_records_ = 0;
  unsynced_bytes_ = 0;
  unsynced_records_ = 0;
  journal_bytes_ = kWalHeaderBytes;
  StoreMetrics& m = Metrics();
  m.compactions.Inc();
  m.journal_offset.Set(static_cast<double>(journal_bytes_));
  return Status::OK();
}

Status EmbeddingStore::Close() {
  const Status st = wal_.Close();  // flushes and fsyncs the tail
  if (st.ok()) {
    if (unsynced_records_ > 0) {
      Metrics().group_commit_batch.Observe(
          static_cast<double>(unsynced_records_));
    }
    Metrics().fsyncs.Inc();
    unsynced_bytes_ = 0;
    unsynced_records_ = 0;
  }
  return st;
}

EmbeddingSink EmbeddingStore::MakeSink() {
  return [this](db::FactId fact, const la::Vector& phi) {
    return Append(fact, phi);
  };
}

}  // namespace stedb::store
