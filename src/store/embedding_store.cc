#include "src/store/embedding_store.h"

#include <filesystem>
#include <utility>

#include "src/store/format.h"

namespace stedb::store {

std::string EmbeddingStore::SnapshotPath(const std::string& dir) {
  return dir + "/model.snap";
}

std::string EmbeddingStore::WalPath(const std::string& dir) {
  return dir + "/extend.wal";
}

EmbeddingStore::EmbeddingStore(std::string dir, StoreOptions options,
                               std::shared_ptr<const ModelCodec> codec,
                               std::unique_ptr<StoredModel> model,
                               WalWriter wal, size_t wal_records, bool torn)
    : dir_(std::move(dir)),
      options_(options),
      codec_(std::move(codec)),
      model_(std::move(model)),
      wal_(std::move(wal)),
      wal_records_(wal_records),
      recovered_torn_tail_(torn) {}

Status EmbeddingStore::WriteSnapshotFile() const {
  STEDB_ASSIGN_OR_RETURN(std::string bytes, codec_->Encode(*model_));
  return AtomicWriteFile(SnapshotPath(dir_), bytes);
}

Result<EmbeddingStore> EmbeddingStore::Create(
    const std::string& dir, const std::string& method,
    std::unique_ptr<StoredModel> model, StoreOptions options) {
  if (model == nullptr) {
    return Status::InvalidArgument("store: model must not be null");
  }
  if (model->dim() == 0) {
    return Status::InvalidArgument("store: model has dimension 0");
  }
  STEDB_ASSIGN_OR_RETURN(std::shared_ptr<const ModelCodec> codec,
                         CodecByMethod(method));
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("store: cannot create directory " + dir);
  }
  {
    STEDB_ASSIGN_OR_RETURN(std::string bytes, codec->Encode(*model));
    STEDB_RETURN_IF_ERROR(AtomicWriteFile(SnapshotPath(dir), bytes));
  }
  STEDB_RETURN_IF_ERROR(ResetWal(WalPath(dir), model->dim()));
  STEDB_ASSIGN_OR_RETURN(WalWriter wal,
                         WalWriter::Open(WalPath(dir), model->dim()));
  return EmbeddingStore(dir, options, std::move(codec), std::move(model),
                        std::move(wal), /*wal_records=*/0, /*torn=*/false);
}

Result<EmbeddingStore> EmbeddingStore::Open(const std::string& dir,
                                            StoreOptions options) {
  std::string bytes;
  STEDB_RETURN_IF_ERROR(ReadFileToString(SnapshotPath(dir), &bytes));
  STEDB_ASSIGN_OR_RETURN(ParsedSnapshot snap,
                         ParseSnapshotContainer(bytes.data(), bytes.size()));
  STEDB_ASSIGN_OR_RETURN(std::shared_ptr<const ModelCodec> codec,
                         CodecByTag(snap.header.method_tag));
  STEDB_ASSIGN_OR_RETURN(std::unique_ptr<StoredModel> model,
                         codec->Decode(snap));
  STEDB_ASSIGN_OR_RETURN(
      WalReplay replay,
      ReplayWal(WalPath(dir), static_cast<int>(model->dim())));
  if (replay.torn_tail) {
    STEDB_RETURN_IF_ERROR(TruncateWal(WalPath(dir), replay.valid_bytes));
  }
  // Replay in append order; re-appends of a fact already snapshotted (a
  // crash between Compact's snapshot rename and journal reset) simply
  // rewrite the identical vector, so recovery is idempotent.
  for (WalRecord& rec : replay.records) {
    model->set_phi(rec.fact, std::move(rec.phi));
  }
  STEDB_ASSIGN_OR_RETURN(WalWriter wal,
                         WalWriter::Open(WalPath(dir), model->dim()));
  return EmbeddingStore(dir, options, std::move(codec), std::move(model),
                        std::move(wal), replay.records.size(),
                        replay.torn_tail);
}

bool EmbeddingStore::GroupWindowExpired() const {
  if (options_.group_commit_usec == 0) return false;
  const auto waited = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - oldest_unsynced_);
  return static_cast<uint64_t>(waited.count()) >= options_.group_commit_usec;
}

Status EmbeddingStore::MaybeGroupSync(size_t record_bytes) {
  // The group-commit window only relaxes sync_every_append; without that
  // knob appends stay buffered (fsync on Sync/Close alone) and the window
  // knobs are inert, exactly as StoreOptions documents.
  if (!options_.sync_every_append) return Status::OK();
  const bool group_mode =
      options_.group_commit_bytes > 0 || options_.group_commit_usec > 0;
  if (!group_mode) return Sync();  // classic per-record fsync

  if (unsynced_bytes_ == 0) {
    oldest_unsynced_ = std::chrono::steady_clock::now();
  }
  unsynced_bytes_ += record_bytes;
  const bool due = (options_.group_commit_bytes > 0 &&
                    unsynced_bytes_ >= options_.group_commit_bytes) ||
                   GroupWindowExpired();
  return due ? Sync() : Status::OK();
}

Status EmbeddingStore::SyncIfDue() {
  if (unsynced_bytes_ == 0 || !options_.sync_every_append) {
    return Status::OK();
  }
  return GroupWindowExpired() ? Sync() : Status::OK();
}

Status EmbeddingStore::Append(db::FactId fact, const la::Vector& phi) {
  if (phi.size() != model_->dim()) {
    return Status::InvalidArgument("store: vector dimension mismatch");
  }
  STEDB_RETURN_IF_ERROR(wal_.Append(fact, phi));
  STEDB_RETURN_IF_ERROR(MaybeGroupSync(WalWriter::RecordBytes(phi.size())));
  model_->set_phi(fact, phi);
  ++wal_records_;
  if (options_.compact_every > 0 && wal_records_ >= options_.compact_every) {
    return Compact();
  }
  return Status::OK();
}

Status EmbeddingStore::Sync() {
  STEDB_RETURN_IF_ERROR(wal_.Sync());
  unsynced_bytes_ = 0;
  return Status::OK();
}

Status EmbeddingStore::Compact() {
  STEDB_RETURN_IF_ERROR(Sync());
  // Order matters for crash safety: (1) the new snapshot lands atomically
  // (old snapshot + full journal remain valid until the rename), (2) the
  // journal is reset. A crash between (1) and (2) leaves journal records
  // that are already in the snapshot — harmless, see Open().
  STEDB_RETURN_IF_ERROR(WriteSnapshotFile());
  STEDB_RETURN_IF_ERROR(wal_.Close());
  folded_fsyncs_ += wal_.sync_count();
  STEDB_RETURN_IF_ERROR(ResetWal(WalPath(dir_), model_->dim()));
  STEDB_ASSIGN_OR_RETURN(WalWriter wal,
                         WalWriter::Open(WalPath(dir_), model_->dim()));
  wal_ = std::move(wal);
  wal_records_ = 0;
  unsynced_bytes_ = 0;
  return Status::OK();
}

Status EmbeddingStore::Close() {
  const Status st = wal_.Close();
  if (st.ok()) unsynced_bytes_ = 0;
  return st;
}

EmbeddingSink EmbeddingStore::MakeSink() {
  return [this](db::FactId fact, const la::Vector& phi) {
    return Append(fact, phi);
  };
}

}  // namespace stedb::store
