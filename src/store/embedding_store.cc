#include "src/store/embedding_store.h"

#include <filesystem>

#include "src/store/snapshot.h"

namespace stedb::store {

std::string EmbeddingStore::SnapshotPath(const std::string& dir) {
  return dir + "/model.snap";
}

std::string EmbeddingStore::WalPath(const std::string& dir) {
  return dir + "/extend.wal";
}

EmbeddingStore::EmbeddingStore(std::string dir, StoreOptions options,
                               fwd::ForwardModel model, WalWriter wal,
                               size_t wal_records, bool torn)
    : dir_(std::move(dir)),
      options_(options),
      model_(std::move(model)),
      wal_(std::move(wal)),
      wal_records_(wal_records),
      recovered_torn_tail_(torn) {}

Result<EmbeddingStore> EmbeddingStore::Create(const std::string& dir,
                                              const fwd::ForwardModel& model,
                                              StoreOptions options) {
  if (model.dim() == 0) {
    return Status::InvalidArgument("store: model has dimension 0");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("store: cannot create directory " + dir);
  }
  STEDB_RETURN_IF_ERROR(WriteSnapshot(model, SnapshotPath(dir)));
  STEDB_RETURN_IF_ERROR(ResetWal(WalPath(dir), model.dim()));
  STEDB_ASSIGN_OR_RETURN(WalWriter wal,
                         WalWriter::Open(WalPath(dir), model.dim()));
  return EmbeddingStore(dir, options, model, std::move(wal),
                        /*wal_records=*/0, /*torn=*/false);
}

Result<EmbeddingStore> EmbeddingStore::Open(const std::string& dir,
                                            StoreOptions options) {
  STEDB_ASSIGN_OR_RETURN(fwd::ForwardModel model,
                         ReadSnapshot(SnapshotPath(dir)));
  STEDB_ASSIGN_OR_RETURN(
      WalReplay replay,
      ReplayWal(WalPath(dir), static_cast<int>(model.dim())));
  if (replay.torn_tail) {
    STEDB_RETURN_IF_ERROR(TruncateWal(WalPath(dir), replay.valid_bytes));
  }
  // Replay in append order; re-appends of a fact already snapshotted (a
  // crash between Compact's snapshot rename and journal reset) simply
  // rewrite the identical vector, so recovery is idempotent.
  for (WalRecord& rec : replay.records) {
    model.set_phi(rec.fact, std::move(rec.phi));
  }
  STEDB_ASSIGN_OR_RETURN(WalWriter wal,
                         WalWriter::Open(WalPath(dir), model.dim()));
  return EmbeddingStore(dir, options, std::move(model), std::move(wal),
                        replay.records.size(), replay.torn_tail);
}

Status EmbeddingStore::Append(db::FactId fact, const la::Vector& phi) {
  if (phi.size() != model_.dim()) {
    return Status::InvalidArgument("store: vector dimension mismatch");
  }
  STEDB_RETURN_IF_ERROR(wal_.Append(fact, phi));
  if (options_.sync_every_append) STEDB_RETURN_IF_ERROR(wal_.Sync());
  model_.set_phi(fact, phi);
  ++wal_records_;
  if (options_.compact_every > 0 && wal_records_ >= options_.compact_every) {
    return Compact();
  }
  return Status::OK();
}

Status EmbeddingStore::Sync() { return wal_.Sync(); }

Status EmbeddingStore::Compact() {
  STEDB_RETURN_IF_ERROR(wal_.Sync());
  // Order matters for crash safety: (1) the new snapshot lands atomically
  // (old snapshot + full journal remain valid until the rename), (2) the
  // journal is reset. A crash between (1) and (2) leaves journal records
  // that are already in the snapshot — harmless, see Open().
  STEDB_RETURN_IF_ERROR(WriteSnapshot(model_, SnapshotPath(dir_)));
  STEDB_RETURN_IF_ERROR(wal_.Close());
  STEDB_RETURN_IF_ERROR(ResetWal(WalPath(dir_), model_.dim()));
  STEDB_ASSIGN_OR_RETURN(WalWriter wal,
                         WalWriter::Open(WalPath(dir_), model_.dim()));
  wal_ = std::move(wal);
  wal_records_ = 0;
  return Status::OK();
}

Status EmbeddingStore::Close() { return wal_.Close(); }

EmbeddingSink EmbeddingStore::MakeSink() {
  return [this](db::FactId fact, const la::Vector& phi) {
    return Append(fact, phi);
  };
}

}  // namespace stedb::store
