#include "src/store/wal.h"

#include <unistd.h>

#include <fstream>

#include "src/store/format.h"

namespace stedb::store {
namespace {

constexpr char kMagic[8] = {'S', 'T', 'E', 'D', 'B', 'W', 'A', 'L'};
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderSize = 16;
constexpr uint64_t kMaxDim = kMaxEmbeddingDim;

std::string WalHeader(size_t dim) {
  std::string h(kMagic, sizeof(kMagic));
  AppendU32(h, kVersion);
  AppendU32(h, static_cast<uint32_t>(dim));
  return h;
}

}  // namespace

Result<WalReplay> ReplayWalBytes(const std::string& bytes, int expect_dim) {
  ByteReader in(bytes);
  if (in.remaining() < kHeaderSize ||
      std::memcmp(in.cursor(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("wal: bad magic");
  }
  in.Skip(sizeof(kMagic));
  uint32_t version = 0, dim = 0;
  in.ReadU32(&version);
  in.ReadU32(&dim);
  if (version != kVersion) {
    return Status::InvalidArgument("wal: unsupported format version " +
                                   std::to_string(version));
  }
  if (dim == 0 || dim > kMaxDim) {
    return Status::InvalidArgument("wal: implausible dimension");
  }
  if (expect_dim >= 0 && dim != static_cast<uint32_t>(expect_dim)) {
    return Status::InvalidArgument("wal: dimension mismatch with snapshot");
  }

  WalTail tail = ParseWalTail(in.cursor(), in.remaining(), dim);
  WalReplay replay;
  replay.records = std::move(tail.records);
  replay.valid_bytes = in.offset() + tail.consumed;
  replay.torn_tail = tail.torn;
  return replay;
}

WalTail ParseWalTail(const char* data, size_t size, size_t dim) {
  WalTail tail;
  ByteReader in(data, size);
  const uint32_t record_size = static_cast<uint32_t>(8 + dim * 8);
  while (in.remaining() > 0) {
    uint32_t rec_size = 0, crc = 0;
    if (!in.ReadU32(&rec_size) || !in.ReadU32(&crc) ||
        rec_size != record_size || in.remaining() < rec_size) {
      tail.torn = true;  // short or nonsense header: torn tail
      break;
    }
    const char* payload = in.cursor();
    if (Crc32(payload, rec_size) != crc) {
      tail.torn = true;  // partially written payload
      break;
    }
    ByteReader rec(payload, rec_size);
    int64_t fact = -1;
    rec.ReadI64(&fact);
    WalRecord record;
    record.fact = static_cast<db::FactId>(fact);
    record.phi.resize(dim);
    for (double& x : record.phi) rec.ReadDouble(&x);
    tail.records.push_back(std::move(record));
    in.Skip(rec_size);
    tail.consumed = in.offset();
  }
  return tail;
}

Result<WalReplay> ReplayWal(const std::string& path, int expect_dim) {
  std::string bytes;
  STEDB_RETURN_IF_ERROR(ReadFileToString(path, &bytes));
  return ReplayWalBytes(bytes, expect_dim);
}

Result<WalWriter> WalWriter::Open(const std::string& path, size_t dim) {
  if (dim == 0 || dim > kMaxDim) {
    return Status::InvalidArgument("wal: implausible dimension");
  }
  // Append mode: an existing journal is preserved, a missing one created.
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) return Status::IOError("cannot open wal " + path);
  // In append mode the initial position is implementation-defined; seek to
  // the end explicitly before asking whether the file is empty.
  long pos = std::fseek(f, 0, SEEK_END) == 0 ? std::ftell(f) : -1;
  if (pos < 0) {
    std::fclose(f);
    return Status::IOError("cannot position wal " + path);
  }
  if (pos == 0) {
    const std::string header = WalHeader(dim);
    if (std::fwrite(header.data(), 1, header.size(), f) != header.size() ||
        std::fflush(f) != 0) {
      std::fclose(f);
      return Status::IOError("cannot write wal header " + path);
    }
  } else {
    // Appending to an existing journal: its header dimension must match,
    // or the new records would read back as a torn tail and be silently
    // truncated away by the next recovery.
    std::string header(kHeaderSize, '\0');
    std::ifstream check(path, std::ios::binary);
    if (!check.read(&header[0], static_cast<std::streamsize>(kHeaderSize))) {
      std::fclose(f);
      return Status::InvalidArgument("wal: truncated header in " + path);
    }
    ByteReader in(header);
    uint32_t version = 0, header_dim = 0;
    if (std::memcmp(in.cursor(), kMagic, sizeof(kMagic)) != 0) {
      std::fclose(f);
      return Status::InvalidArgument("wal: bad magic in " + path);
    }
    in.Skip(sizeof(kMagic));
    in.ReadU32(&version);
    in.ReadU32(&header_dim);
    if (version != kVersion || header_dim != dim) {
      std::fclose(f);
      return Status::InvalidArgument(
          "wal: existing journal has version/dimension mismatch");
    }
  }
  return WalWriter(f, dim);
}

WalWriter::WalWriter(WalWriter&& other) noexcept
    : file_(other.file_), dim_(other.dim_), sync_count_(other.sync_count_) {
  other.file_ = nullptr;
  other.sync_count_ = 0;
}

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = other.file_;
    dim_ = other.dim_;
    sync_count_ = other.sync_count_;
    other.file_ = nullptr;
    other.sync_count_ = 0;
  }
  return *this;
}

WalWriter::~WalWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status WalWriter::Append(db::FactId fact, const la::Vector& phi) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("wal writer is closed");
  }
  if (phi.size() != dim_) {
    return Status::InvalidArgument("wal: vector dimension mismatch");
  }
  std::string payload;
  payload.reserve(8 + dim_ * 8);
  AppendI64(payload, fact);
  for (double x : phi) AppendDouble(payload, x);
  std::string record;
  record.reserve(8 + payload.size());
  AppendU32(record, static_cast<uint32_t>(payload.size()));
  AppendU32(record, Crc32(payload.data(), payload.size()));
  record += payload;
  if (std::fwrite(record.data(), 1, record.size(), file_) != record.size()) {
    return Status::IOError("wal append failed");
  }
  // Hand the record to the OS right away: a killed *process* loses nothing
  // already appended (kill-safe). Surviving a killed *machine* needs the
  // fsync in Sync().
  if (std::fflush(file_) != 0) {
    return Status::IOError("wal append flush failed");
  }
  return Status::OK();
}

Status WalWriter::Sync() {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("wal writer is closed");
  }
  if (std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0) {
    return Status::IOError("wal sync failed");
  }
  ++sync_count_;
  return Status::OK();
}

Status WalWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  Status st = Sync();
  if (std::fclose(file_) != 0 && st.ok()) {
    st = Status::IOError("wal close failed");
  }
  file_ = nullptr;
  return st;
}

Status TruncateWal(const std::string& path, size_t valid_bytes) {
  if (::truncate(path.c_str(), static_cast<off_t>(valid_bytes)) != 0) {
    return Status::IOError("cannot truncate wal " + path);
  }
  return Status::OK();
}

Status ResetWal(const std::string& path, size_t dim) {
  if (dim == 0 || dim > kMaxDim) {
    return Status::InvalidArgument("wal: implausible dimension");
  }
  return AtomicWriteFile(path, WalHeader(dim));
}

}  // namespace stedb::store
