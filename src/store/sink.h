#ifndef STEDB_STORE_SINK_H_
#define STEDB_STORE_SINK_H_

#include <algorithm>
#include <functional>
#include <vector>

#include "src/common/status.h"
#include "src/db/database.h"
#include "src/la/matrix.h"

namespace stedb::store {

/// Durability hook the dynamic extenders plug a writer into.
///
/// `fwd::ForwardEmbedder::ExtendToFacts` and
/// `n2v::Node2VecEmbedding::ExtendToFacts` invoke the sink once per newly
/// embedded fact, after the vector is final and the in-memory model
/// updated — the natural WAL append point. Old embeddings are frozen by
/// the stability contract, so new-fact appends are the *only* mutations a
/// journal ever has to capture. A sink returning an error aborts the
/// extension loop and surfaces the error to the caller.
using EmbeddingSink =
    std::function<Status(db::FactId fact, const la::Vector& phi)>;

/// Flushes an embedder's queued journal appends into `sink` in fact-id
/// order (sorted, duplicates dropped) — shared by both embedders so their
/// durability semantics cannot drift. `vector_of(f)` returns the final
/// vector to journal for f. Entries the sink rejects stay queued (the
/// first error is returned and the remaining facts, including the failed
/// one, are retried on the next flush): every vector the model serves
/// must eventually reach the journal, or a cold recovery would silently
/// diverge from the live model. No-op without a sink or queued entries.
template <typename VectorOf>
Status FlushPendingJournal(std::vector<db::FactId>& pending,
                           const EmbeddingSink& sink,
                           const VectorOf& vector_of) {
  if (!sink || pending.empty()) return Status::OK();
  std::sort(pending.begin(), pending.end());
  pending.erase(std::unique(pending.begin(), pending.end()), pending.end());
  size_t flushed = 0;
  Status status = Status::OK();
  for (db::FactId f : pending) {
    status = sink(f, vector_of(f));
    if (!status.ok()) break;
    ++flushed;
  }
  pending.erase(pending.begin(),
                pending.begin() + static_cast<std::ptrdiff_t>(flushed));
  return status;
}

}  // namespace stedb::store

#endif  // STEDB_STORE_SINK_H_
