#ifndef STEDB_STORE_SINK_H_
#define STEDB_STORE_SINK_H_

#include <functional>

#include "src/common/status.h"
#include "src/db/database.h"
#include "src/la/matrix.h"

namespace stedb::store {

/// Durability hook the dynamic extenders plug a writer into.
///
/// `fwd::ForwardEmbedder::ExtendToFacts` and
/// `n2v::Node2VecEmbedding::ExtendToFacts` invoke the sink once per newly
/// embedded fact, after the vector is final and the in-memory model
/// updated — the natural WAL append point. Old embeddings are frozen by
/// the stability contract, so new-fact appends are the *only* mutations a
/// journal ever has to capture. A sink returning an error aborts the
/// extension loop and surfaces the error to the caller.
using EmbeddingSink =
    std::function<Status(db::FactId fact, const la::Vector& phi)>;

}  // namespace stedb::store

#endif  // STEDB_STORE_SINK_H_
