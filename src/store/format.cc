#include "src/store/format.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace stedb::store {
namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

/// Best-effort fsync of the directory containing `path`, so a rename done
/// inside it survives power loss. Failures are ignored: not every
/// filesystem supports directory fsync, and the data-file fsync already
/// happened.
void SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    (void)::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  static const std::array<uint32_t, 256> table = MakeCrcTable();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

Status AtomicWriteFile(const std::string& path, const std::string& contents) {
  const std::string tmp = path + ".tmp";
  {
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) {
      return Status::IOError("cannot create temp file " + tmp);
    }
    const size_t written =
        contents.empty()
            ? 0
            : std::fwrite(contents.data(), 1, contents.size(), f);
    const bool flushed = std::fflush(f) == 0;
    const bool synced = ::fsync(::fileno(f)) == 0;
    const bool closed = std::fclose(f) == 0;
    if (written != contents.size() || !flushed || !synced || !closed) {
      std::remove(tmp.c_str());
      return Status::IOError("short write to " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " over " + path);
  }
  SyncParentDir(path);
  return Status::OK();
}

Status ReadFileToString(const std::string& path, std::string* out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::IOError("cannot read " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  if (f.bad()) return Status::IOError("read failed: " + path);
  *out = std::move(buf).str();
  return Status::OK();
}

Status ReadFileFrom(const std::string& path, size_t offset,
                    std::string* out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::IOError("cannot read " + path);
  f.seekg(static_cast<std::streamoff>(offset), std::ios::beg);
  if (!f) {  // seeking past EOF: nothing to read yet
    out->clear();
    return Status::OK();
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  if (f.bad()) return Status::IOError("read failed: " + path);
  *out = std::move(buf).str();
  return Status::OK();
}

}  // namespace stedb::store
