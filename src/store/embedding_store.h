#ifndef STEDB_STORE_EMBEDDING_STORE_H_
#define STEDB_STORE_EMBEDDING_STORE_H_

#include <chrono>
#include <memory>
#include <string>

#include "src/ann/hnsw.h"
#include "src/common/status.h"
#include "src/store/model_codec.h"
#include "src/store/sink.h"
#include "src/store/stored_model.h"
#include "src/store/wal.h"

namespace stedb::store {

/// Forces registration of the store layer's obs metric families (appends,
/// fsync/compact latency, group-commit batches). They register on first
/// use anyway; read-only processes (stedb_serve) call this so scrapes
/// export the writer-side families at zero — a stable schema for
/// dashboards — even though the process never appends.
void TouchStoreMetrics();

struct StoreOptions {
  /// fsync the journal after every Append. Appends are always durable
  /// against a killed process (each record is flushed to the OS); this
  /// knob makes every record durable against power loss too, at ~a disk
  /// flush per extension. Off, power-loss durability is bounded by the
  /// last explicit Sync()/Close() (a torn tail is recovered-around
  /// either way).
  bool sync_every_append = false;
  /// Auto-Compact() once the journal holds this many records (0 = only
  /// compact on explicit request).
  size_t compact_every = 0;

  /// Group commit: when either knob is > 0 and sync_every_append is on,
  /// the per-record fsync is batched — an Append only forces the disk
  /// cache once the unsynced bytes reach `group_commit_bytes`, or once
  /// the *oldest* unsynced record has waited `group_commit_usec`
  /// microseconds (checked on each Append and by SyncIfDue(), which a
  /// periodic flusher calls to cover idle writers; Sync()/Close()/
  /// Compact() always flush the remainder). Kill-safety is unchanged —
  /// every record
  /// still reaches the OS before Append returns — and power-loss
  /// durability is bounded by the window instead of per-record, at a
  /// fraction of the fsyncs (bench/table7_store_io measures both).
  size_t group_commit_bytes = 0;
  uint64_t group_commit_usec = 0;

  /// Build a persisted ANN index ('ANN ' section, src/ann/hnsw.h) into
  /// every snapshot this store writes — at Create() and at each
  /// Compact(). The section rides the container's CRC + alignment
  /// guarantees, so MmapSnapshot / api::ServingSession serve the graph
  /// zero-copy; readers that predate the section ignore it. Off by
  /// default: building is O(n · ef_construction) at compaction time.
  bool build_ann_index = false;
  /// Graph knobs used when build_ann_index is set. `ann.threads`
  /// parallelizes the build without changing the produced bytes.
  ann::HnswConfig ann;
};

/// Durable home of one embedding method's model: a binary snapshot
/// (`<dir>/model.snap`, see model_codec.h for the container format) plus
/// an append-only journal of dynamic extensions (`<dir>/extend.wal`, see
/// wal.h).
///
/// The store is method-agnostic. Snapshot bytes are produced and parsed by
/// the method's registered store::ModelCodec — the snapshot header carries
/// the codec's method tag, so `Open(dir)` resolves the right codec from
/// the file alone and a FoRWaRD and a Node2Vec store directory behave
/// identically from here up (EmbeddingStore, MmapSnapshot,
/// api::ServingSession). The journal layer was method-agnostic from the
/// start: one record per extended fact's final vector.
///
/// Lifecycle
///   * `Create(dir, method, model)` — persist a freshly trained model:
///     snapshot written atomically via the method's codec, journal reset
///     to empty.
///   * `Append(fact, phi)`  — journal one extension. The paper's stability
///     guarantee (old embeddings never move) is what makes a φ-only,
///     append-only journal a *complete* record of all post-training
///     mutations, for every method that honors it.
///   * `Open(dir)`          — crash recovery: load the snapshot (codec
///     resolved from its header), replay the journal over it, and
///     truncate a torn tail record (a crash mid-append) instead of
///     failing. Everything appended *before* the last `Sync()` is
///     recovered bit-exactly.
///   * `Compact()`          — fold the journal into a fresh snapshot
///     (atomic temp-file + rename, then journal reset). Crash-safe at
///     every point: the old snapshot stays until the rename, and a
///     leftover journal replayed over the *new* snapshot only rewrites
///     identical vectors.
///
/// `MakeSink()` adapts the store to the `EmbeddingSink` writer interface
/// that `fwd::ForwardEmbedder` / `n2v::Node2VecEmbedding` call once per
/// newly embedded fact, so extensions hit the journal the moment they are
/// computed.
class EmbeddingStore {
 public:
  /// Persists `model` as the initial snapshot of a new (or re-initialized)
  /// store directory using the codec registered for `method` (an api
  /// method-registry name, matched case-insensitively), discarding any
  /// previous journal.
  static Result<EmbeddingStore> Create(const std::string& dir,
                                       const std::string& method,
                                       std::unique_ptr<StoredModel> model,
                                       StoreOptions options = StoreOptions());

  /// Recovers the durable model: snapshot + journal replay, truncating a
  /// torn tail. The codec is resolved from the snapshot header's method
  /// tag. Fails only on missing/corrupt snapshot, an unknown method tag,
  /// or an unreadable journal header.
  static Result<EmbeddingStore> Open(const std::string& dir,
                                     StoreOptions options = StoreOptions());

  /// Journals φ(fact) and applies it to the in-memory model.
  Status Append(db::FactId fact, const la::Vector& phi);

  /// Forces journaled records to disk (including a pending group-commit
  /// window).
  Status Sync();

  /// Fsyncs iff the group-commit time window has expired for a pending
  /// record: the oldest unsynced record has waited `group_commit_usec` or
  /// longer. No-op when nothing is pending, when the time window is off,
  /// or when the deadline has not passed yet.
  ///
  /// The window is otherwise only evaluated inside Append, so an *idle*
  /// writer's tail records would sit unsynced past the promised deadline
  /// until the next Append. A periodic ticker — e.g. the serve layer's
  /// Poll ticker (serve::ServeOptions::tick_hook) or any timer thread —
  /// calls this to bound tail durability for idle writers. Callers own
  /// the synchronization: like every other member, this must not race an
  /// Append from another thread.
  Status SyncIfDue();

  /// Folds the journal into a fresh snapshot and empties it.
  Status Compact();

  /// Flushes and closes the journal writer; the store becomes read-only.
  Status Close();

  /// A writer bound to this store's Append; pass to the extenders. The
  /// store must outlive every copy of the sink.
  EmbeddingSink MakeSink();

  const StoredModel& model() const { return *model_; }
  /// The codec that owns this store's snapshot format.
  const ModelCodec& codec() const { return *codec_; }
  /// The api method-registry name of the stored model ("forward", ...).
  std::string method() const { return codec_->method(); }
  const std::string& dir() const { return dir_; }
  /// Journal records not yet folded into the snapshot.
  size_t wal_records() const { return wal_records_; }
  /// Whether the last Open() had to drop a torn tail record.
  bool recovered_torn_tail() const { return recovered_torn_tail_; }
  /// Disk-cache flushes issued over this store's lifetime (across
  /// compactions) — the group-commit bench counter.
  uint64_t fsync_count() const { return folded_fsyncs_ + wal_.sync_count(); }

  static std::string SnapshotPath(const std::string& dir);
  static std::string WalPath(const std::string& dir);

 private:
  EmbeddingStore(std::string dir, StoreOptions options,
                 std::shared_ptr<const ModelCodec> codec,
                 std::unique_ptr<StoredModel> model, WalWriter wal,
                 size_t wal_records, bool torn);

  /// Writes the current model as the snapshot file (atomic).
  Status WriteSnapshotFile() const;
  /// Applies the group-commit policy after one append of `record_bytes`.
  Status MaybeGroupSync(size_t record_bytes);
  /// Whether the oldest unsynced record has waited group_commit_usec.
  bool GroupWindowExpired() const;

  std::string dir_;
  StoreOptions options_;
  std::shared_ptr<const ModelCodec> codec_;
  std::unique_ptr<StoredModel> model_;
  WalWriter wal_;
  size_t wal_records_ = 0;
  bool recovered_torn_tail_ = false;
  uint64_t folded_fsyncs_ = 0;  ///< sync_count of journals closed by Compact
  size_t unsynced_bytes_ = 0;   ///< appended since the last fsync
  size_t unsynced_records_ = 0;  ///< records since the last fsync (metrics)
  size_t journal_bytes_ = 0;     ///< current journal file size (metrics)
  std::chrono::steady_clock::time_point oldest_unsynced_{};
};

}  // namespace stedb::store

#endif  // STEDB_STORE_EMBEDDING_STORE_H_
