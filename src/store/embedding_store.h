#ifndef STEDB_STORE_EMBEDDING_STORE_H_
#define STEDB_STORE_EMBEDDING_STORE_H_

#include <string>

#include "src/common/status.h"
#include "src/fwd/model.h"
#include "src/store/sink.h"
#include "src/store/wal.h"

namespace stedb::store {

struct StoreOptions {
  /// fsync the journal after every Append. Appends are always durable
  /// against a killed process (each record is flushed to the OS); this
  /// knob makes every record durable against power loss too, at ~a disk
  /// flush per extension. Off, power-loss durability is bounded by the
  /// last explicit Sync()/Close() (a torn tail is recovered-around
  /// either way).
  bool sync_every_append = false;
  /// Auto-Compact() once the journal holds this many records (0 = only
  /// compact on explicit request).
  size_t compact_every = 0;
};

/// Durable home of one FoRWaRD embedding: a binary snapshot
/// (`<dir>/model.snap`, see snapshot.h) plus an append-only journal of
/// dynamic extensions (`<dir>/extend.wal`, see wal.h).
///
/// Lifecycle
///   * `Create(dir, model)` — persist a freshly trained model: snapshot
///     written atomically, journal reset to empty.
///   * `Append(fact, phi)`  — journal one extension. The paper's stability
///     guarantee (old embeddings never move) is what makes a φ-only,
///     append-only journal a *complete* record of all post-training
///     mutations.
///   * `Open(dir)`          — crash recovery: load the snapshot, replay
///     the journal over it, and truncate a torn tail record (a crash
///     mid-append) instead of failing. Everything that was appended
///     *before* the last `Sync()` is recovered bit-exactly.
///   * `Compact()`          — fold the journal into a fresh snapshot
///     (atomic temp-file + rename, then journal reset). Crash-safe at
///     every point: the old snapshot stays until the rename, and a
///     leftover journal replayed over the *new* snapshot only rewrites
///     identical vectors.
///
/// `MakeSink()` adapts the store to the `EmbeddingSink` writer interface
/// that `fwd::ForwardEmbedder` / `n2v::Node2VecEmbedding` call once per
/// newly embedded fact, so extensions hit the journal the moment they are
/// computed.
class EmbeddingStore {
 public:
  /// Persists `model` as the initial snapshot of a new (or re-initialized)
  /// store directory, discarding any previous journal.
  static Result<EmbeddingStore> Create(const std::string& dir,
                                       const fwd::ForwardModel& model,
                                       StoreOptions options = StoreOptions());

  /// Recovers the durable model: snapshot + journal replay, truncating a
  /// torn tail. Fails only on missing/corrupt snapshot or an unreadable
  /// journal header.
  static Result<EmbeddingStore> Open(const std::string& dir,
                                     StoreOptions options = StoreOptions());

  /// Journals φ(fact) and applies it to the in-memory model.
  Status Append(db::FactId fact, const la::Vector& phi);

  /// Forces journaled records to disk.
  Status Sync();

  /// Folds the journal into a fresh snapshot and empties it.
  Status Compact();

  /// Flushes and closes the journal writer; the store becomes read-only.
  Status Close();

  /// A writer bound to this store's Append; pass to the extenders. The
  /// store must outlive every copy of the sink.
  EmbeddingSink MakeSink();

  const fwd::ForwardModel& model() const { return model_; }
  const std::string& dir() const { return dir_; }
  /// Journal records not yet folded into the snapshot.
  size_t wal_records() const { return wal_records_; }
  /// Whether the last Open() had to drop a torn tail record.
  bool recovered_torn_tail() const { return recovered_torn_tail_; }

  static std::string SnapshotPath(const std::string& dir);
  static std::string WalPath(const std::string& dir);

 private:
  EmbeddingStore(std::string dir, StoreOptions options, fwd::ForwardModel model,
                 WalWriter wal, size_t wal_records, bool torn);

  std::string dir_;
  StoreOptions options_;
  fwd::ForwardModel model_;
  WalWriter wal_;
  size_t wal_records_ = 0;
  bool recovered_torn_tail_ = false;
};

}  // namespace stedb::store

#endif  // STEDB_STORE_EMBEDDING_STORE_H_
