#include "src/store/stored_model.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

namespace stedb::store {
namespace {

/// Bit-representation-aware deviation (see header): identical bits are 0,
/// a NaN-valued difference is +inf rather than vanishing inside std::max.
double AbsDiffOrInf(double x, double y) {
  if (std::memcmp(&x, &y, sizeof(double)) == 0) return 0.0;
  const double d = std::abs(x - y);
  return std::isnan(d) ? std::numeric_limits<double>::infinity() : d;
}

}  // namespace

double StoredModelMaxAbsDiff(const StoredModel& a, const StoredModel& b) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  if (a.dim() != b.dim() || a.relation() != b.relation() ||
      a.num_embedded() != b.num_embedded()) {
    return kInf;
  }
  double worst = 0.0;
  a.ForEachPhi([&](db::FactId f, const la::Vector& va) {
    if (!b.HasEmbedding(f)) {
      worst = kInf;
      return;
    }
    const la::Vector& vb = b.phi(f);
    if (va.size() != vb.size()) {
      worst = kInf;
      return;
    }
    for (size_t i = 0; i < va.size(); ++i) {
      worst = std::max(worst, AbsDiffOrInf(va[i], vb[i]));
    }
  });
  return worst;
}

}  // namespace stedb::store
