#ifndef STEDB_STORE_STORED_MODEL_H_
#define STEDB_STORE_STORED_MODEL_H_

#include <functional>
#include <map>

#include "src/common/status.h"
#include "src/db/database.h"
#include "src/la/matrix.h"

namespace stedb::store {

/// What the durability layer tracks for *any* embedding method: the
/// per-fact embedding map plus enough shape metadata (dimension, embedded
/// relation) to validate journal records against it. Concrete methods wrap
/// their full model behind this interface (e.g. fwd::ForwardStoredModel
/// keeps the walk schemes and ψ matrices too); the store itself only ever
/// needs the operations below — replaying a WAL record is `set_phi`,
/// compacting is handing the model back to its codec.
///
/// Contract: ForEachPhi visits facts in strictly ascending fact-id order,
/// so codecs that serialize through it produce deterministic bytes.
class StoredModel {
 public:
  virtual ~StoredModel() = default;

  virtual size_t dim() const = 0;
  /// The embedded relation, or -1 for methods that embed every relation
  /// (Node2Vec).
  virtual db::RelationId relation() const = 0;

  virtual size_t num_embedded() const = 0;
  virtual bool HasEmbedding(db::FactId f) const = 0;
  /// φ(f); undefined when !HasEmbedding(f).
  virtual const la::Vector& phi(db::FactId f) const = 0;
  /// Inserts or overwrites φ(f) — the WAL replay hook. Overwrites happen
  /// only in the compaction crash window, where the bytes are identical.
  virtual void set_phi(db::FactId f, la::Vector v) = 0;
  /// Visits every (fact, φ) in ascending fact-id order.
  virtual void ForEachPhi(
      const std::function<void(db::FactId, const la::Vector&)>& fn) const = 0;
};

/// The minimal StoredModel: a sorted fact → vector map and nothing else.
/// This is the whole durable state of any method whose auxiliary model
/// (graphs, vocabularies, context matrices) is derivable from the database
/// — Node2Vec's codec uses it directly, and tests use it as a scratch
/// model.
class VectorSetModel : public StoredModel {
 public:
  VectorSetModel(size_t dim, db::RelationId relation)
      : dim_(dim), relation_(relation) {}

  size_t dim() const override { return dim_; }
  db::RelationId relation() const override { return relation_; }
  size_t num_embedded() const override { return phi_.size(); }
  bool HasEmbedding(db::FactId f) const override { return phi_.count(f) > 0; }
  const la::Vector& phi(db::FactId f) const override { return phi_.at(f); }
  void set_phi(db::FactId f, la::Vector v) override {
    phi_[f] = std::move(v);
  }
  void ForEachPhi(const std::function<void(db::FactId, const la::Vector&)>&
                      fn) const override {
    for (const auto& [f, v] : phi_) fn(f, v);  // std::map: ascending
  }

 private:
  size_t dim_;
  db::RelationId relation_;
  std::map<db::FactId, la::Vector> phi_;
};

/// Largest absolute entry-wise deviation between two models' embedding
/// maps; +inf on any structural mismatch (dim, relation, or embedded-fact
/// sets differ). 0.0 means bit-exact agreement — the generic recovery
/// acceptance criterion. NaNs compare by representation: a bit-identical
/// NaN contributes 0, a NaN-valued difference reports +inf.
double StoredModelMaxAbsDiff(const StoredModel& a, const StoredModel& b);

}  // namespace stedb::store

#endif  // STEDB_STORE_STORED_MODEL_H_
