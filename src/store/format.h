#ifndef STEDB_STORE_FORMAT_H_
#define STEDB_STORE_FORMAT_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "src/common/status.h"

namespace stedb::store {

/// On-disk encoding primitives shared by the snapshot and WAL formats.
///
/// Both files are sequences of fixed-width little-endian integers and raw
/// IEEE-754 doubles, with every variable-length payload guarded by a CRC32.
/// Sections and records are padded so that 8-byte values land on 8-byte
/// file offsets — a reader may mmap a snapshot and interpret the φ/ψ
/// payloads in place without copying.

/// CRC-32 (IEEE 802.3, reflected, init/xorout 0xFFFFFFFF) of `n` bytes,
/// optionally chained from a previous value.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

/// Hard ceiling on a persisted embedding dimension, shared by every model
/// parser (binary snapshot, WAL, text serializer). Keeps a corrupted
/// header field from turning a `dim*dim` allocation into a multi-gigabyte
/// bomb before any truncation/CRC check can fire; paper-scale is d = 100.
constexpr size_t kMaxEmbeddingDim = 4096;

// ---- Encoding (append to a std::string buffer) -------------------------

inline void AppendU32(std::string& out, uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.append(b, 4);
}

inline void AppendU64(std::string& out, uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.append(b, 8);
}

inline void AppendI64(std::string& out, int64_t v) {
  AppendU64(out, static_cast<uint64_t>(v));
}

inline void AppendDouble(std::string& out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(out, bits);
}

/// Pads `out` with zero bytes up to the next multiple of 8.
inline void PadTo8(std::string& out) {
  while (out.size() % 8 != 0) out.push_back('\0');
}

// ---- Decoding ----------------------------------------------------------

/// Bounds-checked cursor over an in-memory byte buffer. Every Read*
/// returns false (without advancing) when fewer bytes remain than
/// requested, so parsers degrade to clean errors on truncated input.
class ByteReader {
 public:
  ByteReader(const char* data, size_t size)
      : data_(data), size_(size), pos_(0) {}
  explicit ByteReader(const std::string& buf)
      : ByteReader(buf.data(), buf.size()) {}

  size_t offset() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }
  const char* cursor() const { return data_ + pos_; }

  bool ReadU32(uint32_t* v) {
    if (remaining() < 4) return false;
    uint32_t r = 0;
    for (int i = 0; i < 4; ++i) {
      r |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    *v = r;
    pos_ += 4;
    return true;
  }

  bool ReadU64(uint64_t* v) {
    if (remaining() < 8) return false;
    uint64_t r = 0;
    for (int i = 0; i < 8; ++i) {
      r |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    *v = r;
    pos_ += 8;
    return true;
  }

  bool ReadI64(int64_t* v) {
    uint64_t u = 0;
    if (!ReadU64(&u)) return false;
    *v = static_cast<int64_t>(u);
    return true;
  }

  bool ReadDouble(double* v) {
    uint64_t bits = 0;
    if (!ReadU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

  bool Skip(size_t n) {
    if (remaining() < n) return false;
    pos_ += n;
    return true;
  }

  bool SkipTo8() { return pos_ % 8 == 0 ? true : Skip(8 - pos_ % 8); }

 private:
  const char* data_;
  size_t size_;
  size_t pos_;
};

// ---- File I/O ----------------------------------------------------------

/// Writes `contents` to `path` atomically: the bytes go to a sibling
/// temporary file which is fsync'd and then renamed over `path`, so a
/// crash at any point leaves either the old file or the new one — never a
/// truncated hybrid. The containing directory is fsync'd best-effort so
/// the rename itself is durable.
Status AtomicWriteFile(const std::string& path, const std::string& contents);

/// Reads the whole file into `out`; IOError when unreadable.
Status ReadFileToString(const std::string& path, std::string* out);

/// Reads the bytes from `offset` to end-of-file into `out` (empty when the
/// file is no longer than `offset`). The WAL-tailing read: a serving
/// replica re-reads only the journal bytes it has not consumed yet.
Status ReadFileFrom(const std::string& path, size_t offset, std::string* out);

}  // namespace stedb::store

#endif  // STEDB_STORE_FORMAT_H_
