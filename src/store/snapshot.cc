#include "src/store/snapshot.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/store/format.h"

namespace stedb::store {
namespace {

constexpr char kMagic[8] = {'S', 'T', 'E', 'D', 'B', 'S', 'N', 'P'};
constexpr uint32_t kVersion = 1;
constexpr uint32_t kSectionCount = 3;

constexpr uint32_t FourCc(char a, char b, char c, char d) {
  return static_cast<uint32_t>(static_cast<unsigned char>(a)) |
         static_cast<uint32_t>(static_cast<unsigned char>(b)) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(c)) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(d)) << 24;
}
constexpr uint32_t kMetaTag = FourCc('M', 'E', 'T', 'A');
constexpr uint32_t kPsiTag = FourCc('P', 'S', 'I', ' ');
constexpr uint32_t kPhiTag = FourCc('P', 'H', 'I', ' ');

/// Hard ceilings that keep a corrupted length field from turning into a
/// multi-gigabyte allocation before the CRC even gets checked.
constexpr uint64_t kMaxDim = kMaxEmbeddingDim;
constexpr uint64_t kMaxSchemes = 1 << 20;
constexpr uint64_t kMaxSteps = 1 << 10;

void AppendSection(std::string& out, uint32_t tag,
                   const std::string& payload) {
  AppendU32(out, tag);
  AppendU32(out, Crc32(payload.data(), payload.size()));
  AppendU64(out, payload.size());
  out += payload;
  PadTo8(out);
}

/// Verifies the header of the next section and returns a reader scoped to
/// its (CRC-checked) payload, advancing `in` past the section.
Result<ByteReader> OpenSection(ByteReader& in, uint32_t want_tag) {
  uint32_t tag = 0, crc = 0;
  uint64_t size = 0;
  if (!in.ReadU32(&tag) || !in.ReadU32(&crc) || !in.ReadU64(&size)) {
    return Status::InvalidArgument("snapshot: truncated section header");
  }
  if (tag != want_tag) {
    return Status::InvalidArgument("snapshot: unexpected section tag");
  }
  if (size > in.remaining()) {
    return Status::InvalidArgument("snapshot: section overruns file");
  }
  const char* payload = in.cursor();
  if (Crc32(payload, size) != crc) {
    return Status::InvalidArgument("snapshot: section checksum mismatch");
  }
  in.Skip(static_cast<size_t>(size));
  if (!in.SkipTo8()) {
    return Status::InvalidArgument("snapshot: missing section padding");
  }
  return ByteReader(payload, static_cast<size_t>(size));
}

}  // namespace

std::string SnapshotToBytes(const fwd::ForwardModel& model) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  AppendU32(out, kVersion);
  AppendU32(out, kSectionCount);

  std::string meta;
  AppendI64(meta, model.relation());
  AppendU64(meta, model.dim());
  AppendU64(meta, model.schemes().size());
  for (const fwd::WalkScheme& s : model.schemes()) {
    AppendI64(meta, s.start);
    AppendU64(meta, s.steps.size());
    for (const fwd::WalkStep& st : s.steps) {
      AppendI64(meta, st.fk);
      AppendU64(meta, st.forward ? 1 : 0);
    }
  }
  AppendU64(meta, model.targets().size());
  for (const fwd::SchemeTarget& t : model.targets()) {
    AppendI64(meta, t.scheme_index);
    AppendI64(meta, t.attr);
  }
  AppendSection(out, kMetaTag, meta);

  std::string psi;
  AppendU64(psi, model.targets().size());
  for (size_t t = 0; t < model.targets().size(); ++t) {
    const la::Matrix& m = model.psi(t);
    for (size_t i = 0; i < m.rows(); ++i) {
      for (size_t j = 0; j < m.cols(); ++j) AppendDouble(psi, m(i, j));
    }
  }
  AppendSection(out, kPsiTag, psi);

  std::string phi;
  std::vector<db::FactId> facts;
  facts.reserve(model.num_embedded());
  for (const auto& [f, v] : model.all_phi()) facts.push_back(f);
  std::sort(facts.begin(), facts.end());
  AppendU64(phi, facts.size());
  for (db::FactId f : facts) {
    AppendI64(phi, f);
    for (double x : model.phi(f)) AppendDouble(phi, x);
  }
  AppendSection(out, kPhiTag, phi);
  return out;
}

Result<fwd::ForwardModel> SnapshotFromBytes(const std::string& bytes) {
  ByteReader in(bytes);
  if (in.remaining() < sizeof(kMagic) ||
      std::memcmp(in.cursor(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("snapshot: bad magic");
  }
  in.Skip(sizeof(kMagic));
  uint32_t version = 0, sections = 0;
  if (!in.ReadU32(&version) || !in.ReadU32(&sections)) {
    return Status::InvalidArgument("snapshot: truncated header");
  }
  if (version != kVersion) {
    return Status::InvalidArgument("snapshot: unsupported format version " +
                                   std::to_string(version));
  }
  if (sections != kSectionCount) {
    return Status::InvalidArgument("snapshot: unexpected section count");
  }

  // META.
  STEDB_ASSIGN_OR_RETURN(ByteReader meta, OpenSection(in, kMetaTag));
  int64_t relation = -1;
  uint64_t dim = 0, n_schemes = 0;
  if (!meta.ReadI64(&relation) || !meta.ReadU64(&dim) ||
      !meta.ReadU64(&n_schemes)) {
    return Status::InvalidArgument("snapshot: truncated META");
  }
  if (dim == 0 || dim > kMaxDim) {
    return Status::InvalidArgument("snapshot: implausible dimension");
  }
  if (n_schemes > kMaxSchemes || n_schemes * 16 > meta.remaining()) {
    return Status::InvalidArgument("snapshot: implausible scheme count");
  }
  std::vector<fwd::WalkScheme> schemes(static_cast<size_t>(n_schemes));
  for (fwd::WalkScheme& s : schemes) {
    int64_t start = 0;
    uint64_t nsteps = 0;
    if (!meta.ReadI64(&start) || !meta.ReadU64(&nsteps)) {
      return Status::InvalidArgument("snapshot: truncated scheme");
    }
    if (nsteps > kMaxSteps || nsteps * 16 > meta.remaining()) {
      return Status::InvalidArgument("snapshot: implausible step count");
    }
    s.start = static_cast<db::RelationId>(start);
    s.steps.resize(static_cast<size_t>(nsteps));
    for (fwd::WalkStep& st : s.steps) {
      int64_t fk = 0;
      uint64_t forward = 0;
      if (!meta.ReadI64(&fk) || !meta.ReadU64(&forward) || forward > 1) {
        return Status::InvalidArgument("snapshot: bad scheme step");
      }
      st.fk = static_cast<db::FkId>(fk);
      st.forward = forward == 1;
    }
  }
  uint64_t n_targets = 0;
  if (!meta.ReadU64(&n_targets) || n_targets > kMaxSchemes ||
      n_targets * 16 > meta.remaining()) {
    return Status::InvalidArgument("snapshot: implausible target count");
  }
  std::vector<fwd::SchemeTarget> targets(static_cast<size_t>(n_targets));
  for (fwd::SchemeTarget& t : targets) {
    int64_t scheme_index = 0, attr = 0;
    if (!meta.ReadI64(&scheme_index) || !meta.ReadI64(&attr)) {
      return Status::InvalidArgument("snapshot: truncated target");
    }
    if (scheme_index < 0 ||
        static_cast<uint64_t>(scheme_index) >= n_schemes) {
      return Status::OutOfRange("snapshot: target references unknown scheme");
    }
    t.scheme_index = static_cast<int>(scheme_index);
    t.attr = static_cast<db::AttrId>(attr);
  }
  if (meta.remaining() != 0) {
    return Status::InvalidArgument("snapshot: trailing bytes in META");
  }

  fwd::ForwardModel model(static_cast<db::RelationId>(relation),
                          static_cast<size_t>(dim), std::move(schemes),
                          std::move(targets));

  // PSI.
  STEDB_ASSIGN_OR_RETURN(ByteReader psi, OpenSection(in, kPsiTag));
  uint64_t psi_targets = 0;
  if (!psi.ReadU64(&psi_targets) || psi_targets != n_targets) {
    return Status::InvalidArgument("snapshot: PSI/META target mismatch");
  }
  if (psi.remaining() != n_targets * dim * dim * 8) {
    return Status::InvalidArgument("snapshot: PSI payload size mismatch");
  }
  for (uint64_t t = 0; t < n_targets; ++t) {
    la::Matrix m(static_cast<size_t>(dim), static_cast<size_t>(dim));
    for (double& x : m.data()) {
      if (!psi.ReadDouble(&x)) {
        return Status::InvalidArgument("snapshot: truncated PSI");
      }
    }
    *model.mutable_psi(static_cast<size_t>(t)) = std::move(m);
  }

  // PHI.
  STEDB_ASSIGN_OR_RETURN(ByteReader phi, OpenSection(in, kPhiTag));
  uint64_t n_phi = 0;
  if (!phi.ReadU64(&n_phi) || phi.remaining() != n_phi * (8 + dim * 8)) {
    return Status::InvalidArgument("snapshot: PHI payload size mismatch");
  }
  for (uint64_t i = 0; i < n_phi; ++i) {
    int64_t fact = -1;
    if (!phi.ReadI64(&fact)) {
      return Status::InvalidArgument("snapshot: truncated PHI record");
    }
    la::Vector vec(static_cast<size_t>(dim));
    for (double& x : vec) {
      if (!phi.ReadDouble(&x)) {
        return Status::InvalidArgument("snapshot: truncated PHI vector");
      }
    }
    if (model.HasEmbedding(static_cast<db::FactId>(fact))) {
      return Status::InvalidArgument("snapshot: duplicate fact in PHI");
    }
    model.set_phi(static_cast<db::FactId>(fact), std::move(vec));
  }
  if (in.remaining() != 0) {
    return Status::InvalidArgument("snapshot: trailing bytes after PHI");
  }
  return model;
}

Status WriteSnapshot(const fwd::ForwardModel& model,
                     const std::string& path) {
  return AtomicWriteFile(path, SnapshotToBytes(model));
}

Result<fwd::ForwardModel> ReadSnapshot(const std::string& path) {
  std::string bytes;
  STEDB_RETURN_IF_ERROR(ReadFileToString(path, &bytes));
  return SnapshotFromBytes(bytes);
}

namespace {

/// Per-component deviation that cannot be fooled by NaN: bit-identical
/// values (any two doubles with the same representation, NaNs included)
/// contribute 0, and any NaN-valued difference reports +inf instead of
/// vanishing inside std::max (where NaN comparisons are always false).
double AbsDiffOrInf(double x, double y) {
  if (std::memcmp(&x, &y, sizeof(double)) == 0) return 0.0;
  const double d = std::abs(x - y);
  return std::isnan(d) ? std::numeric_limits<double>::infinity() : d;
}

}  // namespace

double ModelMaxAbsDiff(const fwd::ForwardModel& a,
                       const fwd::ForwardModel& b) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  if (a.relation() != b.relation() || a.dim() != b.dim() ||
      !(a.schemes() == b.schemes()) ||
      a.targets().size() != b.targets().size() ||
      a.num_embedded() != b.num_embedded()) {
    return kInf;
  }
  for (size_t t = 0; t < a.targets().size(); ++t) {
    if (a.targets()[t].scheme_index != b.targets()[t].scheme_index ||
        a.targets()[t].attr != b.targets()[t].attr) {
      return kInf;
    }
  }
  double worst = 0.0;
  for (size_t t = 0; t < a.targets().size(); ++t) {
    const la::Matrix& ma = a.psi(t);
    const la::Matrix& mb = b.psi(t);
    if (ma.rows() != mb.rows() || ma.cols() != mb.cols()) return kInf;
    for (size_t i = 0; i < ma.size(); ++i) {
      worst = std::max(worst, AbsDiffOrInf(ma.data()[i], mb.data()[i]));
    }
  }
  for (const auto& [f, va] : a.all_phi()) {
    if (!b.HasEmbedding(f)) return kInf;
    const la::Vector& vb = b.phi(f);
    if (va.size() != vb.size()) return kInf;
    for (size_t i = 0; i < va.size(); ++i) {
      worst = std::max(worst, AbsDiffOrInf(va[i], vb[i]));
    }
  }
  return worst;
}

}  // namespace stedb::store
