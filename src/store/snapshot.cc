#include "src/store/snapshot.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "src/fwd/codec.h"
#include "src/store/format.h"

namespace stedb::store {

std::string SnapshotToBytes(const fwd::ForwardModel& model) {
  return fwd::EncodeForwardSnapshot(model);
}

Result<fwd::ForwardModel> SnapshotFromBytes(const std::string& bytes) {
  return fwd::DecodeForwardSnapshot(bytes);
}

Status WriteSnapshot(const fwd::ForwardModel& model,
                     const std::string& path) {
  return AtomicWriteFile(path, SnapshotToBytes(model));
}

Result<fwd::ForwardModel> ReadSnapshot(const std::string& path) {
  std::string bytes;
  STEDB_RETURN_IF_ERROR(ReadFileToString(path, &bytes));
  return SnapshotFromBytes(bytes);
}

namespace {

/// Per-component deviation that cannot be fooled by NaN: bit-identical
/// values (any two doubles with the same representation, NaNs included)
/// contribute 0, and any NaN-valued difference reports +inf instead of
/// vanishing inside std::max (where NaN comparisons are always false).
double AbsDiffOrInf(double x, double y) {
  if (std::memcmp(&x, &y, sizeof(double)) == 0) return 0.0;
  const double d = std::abs(x - y);
  return std::isnan(d) ? std::numeric_limits<double>::infinity() : d;
}

}  // namespace

double ModelMaxAbsDiff(const fwd::ForwardModel& a,
                       const fwd::ForwardModel& b) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  if (a.relation() != b.relation() || a.dim() != b.dim() ||
      !(a.schemes() == b.schemes()) ||
      a.targets().size() != b.targets().size() ||
      a.num_embedded() != b.num_embedded()) {
    return kInf;
  }
  for (size_t t = 0; t < a.targets().size(); ++t) {
    if (a.targets()[t].scheme_index != b.targets()[t].scheme_index ||
        a.targets()[t].attr != b.targets()[t].attr) {
      return kInf;
    }
  }
  double worst = 0.0;
  for (size_t t = 0; t < a.targets().size(); ++t) {
    const la::Matrix& ma = a.psi(t);
    const la::Matrix& mb = b.psi(t);
    if (ma.rows() != mb.rows() || ma.cols() != mb.cols()) return kInf;
    for (size_t i = 0; i < ma.size(); ++i) {
      worst = std::max(worst, AbsDiffOrInf(ma.data()[i], mb.data()[i]));
    }
  }
  for (const auto& [f, va] : a.all_phi()) {
    if (!b.HasEmbedding(f)) return kInf;
    const la::Vector& vb = b.phi(f);
    if (va.size() != vb.size()) return kInf;
    for (size_t i = 0; i < va.size(); ++i) {
      worst = std::max(worst, AbsDiffOrInf(va[i], vb[i]));
    }
  }
  return worst;
}

double ModelMaxAbsDiff(const StoredModel& a, const fwd::ForwardModel& b) {
  const fwd::ForwardModel* fa = fwd::AsForwardModel(a);
  if (fa == nullptr) return std::numeric_limits<double>::infinity();
  return ModelMaxAbsDiff(*fa, b);
}

double ModelMaxAbsDiff(const StoredModel& a, const StoredModel& b) {
  const fwd::ForwardModel* fb = fwd::AsForwardModel(b);
  if (fb == nullptr) return std::numeric_limits<double>::infinity();
  return ModelMaxAbsDiff(a, *fb);
}

}  // namespace stedb::store
