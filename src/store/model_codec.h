#ifndef STEDB_STORE_MODEL_CODEC_H_
#define STEDB_STORE_MODEL_CODEC_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/store/format.h"
#include "src/store/stored_model.h"

namespace stedb::store {

/// Method-agnostic snapshot container (format version 2).
///
/// Layout (all integers little-endian, doubles raw IEEE-754):
///
///   [0..8)    magic "STEDBSNP"
///   [8..12)   u32 container version (currently 2)
///   [12..16)  u32 method tag       fourcc of the codec that wrote the file
///   [16..20)  u32 codec version    method-specific payload version
///   [20..24)  u32 section count
///   [24..32)  u64 embedding dimension
///   [32..40)  i64 embedded relation (-1 when not applicable)
///   sections, each:
///     u32 tag          fourcc section name
///     u32 crc32        of the payload bytes
///     u64 payload_size
///     payload          (payload_size bytes)
///     zero padding to the next 8-byte file offset
///
/// The 40-byte header and 16-byte section headers keep every payload on an
/// 8-byte file offset, so a reader may mmap the file and point at double
/// payloads in place. Which sections appear (beyond the mandatory 'PHI ')
/// and what their payloads mean is the writing codec's business; the
/// container layer verifies structure and CRCs for *all* of them, so a
/// reader that only understands the standard sections still proves the
/// whole file intact.
///
/// Standard sections every codec participates in:
///  * 'PHI ' (mandatory) — the serving payload: u64 #facts, then per fact
///    (i64 fact_id, dim doubles), strictly ascending by fact id. This is
///    what MmapSnapshot / api::ServingSession read, which is why *any*
///    method's store directory can be served without knowing its codec.
///  * 'PSI ' (optional)  — u64 #matrices, then per matrix dim*dim doubles
///    (row-major). FoRWaRD's learned inner-product matrices; exposed
///    zero-copy by MmapSnapshot for a future serving-side φᵀψφ scorer.
///
/// Format version 1 (PR 3's FoRWaRD-only layout) is not readable by this
/// parser: it predates the method tag, and silently assuming FoRWaRD would
/// defeat the tag's purpose. Opening a v1 file yields a clear Status error
/// telling the operator to re-create the store, not a CRC failure.

constexpr uint32_t kSnapshotContainerVersion = 2;
constexpr size_t kSnapshotHeaderSize = 40;

constexpr uint32_t FourCc(char a, char b, char c, char d) {
  return static_cast<uint32_t>(static_cast<unsigned char>(a)) |
         static_cast<uint32_t>(static_cast<unsigned char>(b)) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(c)) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(d)) << 24;
}

constexpr uint32_t kPhiSectionTag = FourCc('P', 'H', 'I', ' ');
constexpr uint32_t kPsiSectionTag = FourCc('P', 'S', 'I', ' ');
constexpr uint32_t kMetaSectionTag = FourCc('M', 'E', 'T', 'A');
/// Optional persisted ANN index (src/ann/hnsw.h payload), written by the
/// store layer behind StoreOptions::build_ann_index — codecs neither
/// write nor read it, which is what keeps it method-agnostic.
constexpr uint32_t kAnnSectionTag = FourCc('A', 'N', 'N', ' ');

/// Renders a fourcc tag as printable text ("FWD ") for error messages.
std::string FourCcToString(uint32_t tag);

struct SnapshotHeader {
  uint32_t method_tag = 0;
  uint32_t codec_version = 0;
  uint32_t section_count = 0;
  uint64_t dim = 0;
  int64_t relation = -1;
};

/// One CRC-verified section of a parsed container; `data` points into the
/// caller's buffer (or mapping) and stays valid as long as it does.
struct SnapshotSection {
  uint32_t tag = 0;
  const char* data = nullptr;
  size_t size = 0;

  ByteReader reader() const { return ByteReader(data, size); }
};

struct ParsedSnapshot {
  SnapshotHeader header;
  std::vector<SnapshotSection> sections;

  /// First section with `tag`, or nullptr.
  const SnapshotSection* Find(uint32_t tag) const;
};

/// Verifies magic, container version, header sanity and every section's
/// CRC. Returns views into `data` — zero-copy, usable over an mmap.
/// Old (v1) and future (>2) format versions fail with a Status that names
/// the version mismatch, never a checksum error.
Result<ParsedSnapshot> ParseSnapshotContainer(const char* data, size_t size);

/// Serializes a v2 container: header up front, AddSection per section,
/// Finish() patches the section count and returns the bytes.
class SnapshotBuilder {
 public:
  SnapshotBuilder(uint32_t method_tag, uint32_t codec_version, size_t dim,
                  db::RelationId relation);

  void AddSection(uint32_t tag, const std::string& payload);
  std::string Finish() &&;

 private:
  std::string out_;
  uint32_t section_count_ = 0;
};

/// Appends one section to an already-Finish()ed container in place (same
/// bytes AddSection would have produced) and patches the header's section
/// count. This is how the store layer adds the 'ANN ' index section on
/// top of whatever the method's codec encoded, without codecs having to
/// know about it. InvalidArgument when `container` is not a v2 container.
Status AppendSnapshotSection(std::string* container, uint32_t tag,
                             const std::string& payload);

/// Encodes the standard 'PHI ' payload from a model (ascending fact id).
std::string EncodePhiPayload(const StoredModel& model);

/// Decodes a standard 'PHI ' payload into `into` via set_phi. Validates
/// the record count against the payload size and the strict fact-id
/// ordering.
Status DecodePhiPayload(const SnapshotSection& section, size_t dim,
                        StoredModel* into);

// ---- Codec interface and registry --------------------------------------

/// Converts between a method's in-memory model (behind StoredModel) and
/// its snapshot bytes. One codec per registered embedding method; the
/// codec's `method()` matches the api method-registry name and its
/// `method_tag()` is persisted in every snapshot header, so
/// EmbeddingStore::Open can resolve the right codec from the file alone.
class ModelCodec {
 public:
  virtual ~ModelCodec() = default;

  /// The api-registry method name this codec persists (case-folded).
  virtual std::string method() const = 0;
  /// The fourcc written to (and matched against) the snapshot header.
  virtual uint32_t method_tag() const = 0;
  /// Version of the codec's method-specific payload.
  virtual uint32_t codec_version() const = 0;

  /// Full snapshot bytes for `model`. Deterministic: equal models produce
  /// byte-identical buffers. InvalidArgument when `model` is not the
  /// concrete StoredModel type this codec owns.
  virtual Result<std::string> Encode(const StoredModel& model) const = 0;

  /// Rebuilds the model from a parsed container whose method tag matched
  /// this codec.
  virtual Result<std::unique_ptr<StoredModel>> Decode(
      const ParsedSnapshot& snapshot) const = 0;
};

/// Registers a codec under its method() name and method_tag(). The
/// built-ins — FoRWaRD ('FWD ') and Node2Vec ('N2V ') — self-register
/// before any lookup. AlreadyExists when the name or tag is taken.
/// Thread-safe.
Status RegisterModelCodec(std::shared_ptr<const ModelCodec> codec);

/// Codec for an api method name (case-insensitive); NotFound (listing what
/// is registered) for unknown names. Thread-safe.
Result<std::shared_ptr<const ModelCodec>> CodecByMethod(
    const std::string& method);

/// Codec for a snapshot header's method tag; NotFound for unknown tags.
Result<std::shared_ptr<const ModelCodec>> CodecByTag(uint32_t method_tag);

/// The registered codec method names (case-folded), sorted.
std::vector<std::string> RegisteredModelCodecs();

}  // namespace stedb::store

#endif  // STEDB_STORE_MODEL_CODEC_H_
