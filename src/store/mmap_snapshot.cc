#include "src/store/mmap_snapshot.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "src/store/format.h"

namespace stedb::store {
namespace {

// The snapshot.h v1 layout constants (kept in lockstep with snapshot.cc;
// the serving-equivalence tests diff this reader against the copying
// parser byte-for-byte, so drift cannot land silently).
constexpr char kMagic[8] = {'S', 'T', 'E', 'D', 'B', 'S', 'N', 'P'};
constexpr uint32_t kVersion = 1;
constexpr uint32_t kSectionCount = 3;

constexpr uint32_t FourCc(char a, char b, char c, char d) {
  return static_cast<uint32_t>(static_cast<unsigned char>(a)) |
         static_cast<uint32_t>(static_cast<unsigned char>(b)) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(c)) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(d)) << 24;
}
constexpr uint32_t kMetaTag = FourCc('M', 'E', 'T', 'A');
constexpr uint32_t kPsiTag = FourCc('P', 'S', 'I', ' ');
constexpr uint32_t kPhiTag = FourCc('P', 'H', 'I', ' ');

/// Section walk mirroring snapshot.cc's OpenSection: verifies the header
/// and CRC of the next section and returns a reader over its payload.
Result<ByteReader> OpenSection(ByteReader& in, uint32_t want_tag) {
  uint32_t tag = 0, crc = 0;
  uint64_t size = 0;
  if (!in.ReadU32(&tag) || !in.ReadU32(&crc) || !in.ReadU64(&size)) {
    return Status::InvalidArgument("mmap snapshot: truncated section header");
  }
  if (tag != want_tag) {
    return Status::InvalidArgument("mmap snapshot: unexpected section tag");
  }
  if (size > in.remaining()) {
    return Status::InvalidArgument("mmap snapshot: section overruns file");
  }
  const char* payload = in.cursor();
  if (Crc32(payload, size) != crc) {
    return Status::InvalidArgument("mmap snapshot: section checksum mismatch");
  }
  in.Skip(static_cast<size_t>(size));
  if (!in.SkipTo8()) {
    return Status::InvalidArgument("mmap snapshot: missing section padding");
  }
  return ByteReader(payload, static_cast<size_t>(size));
}

db::FactId RecordFact(const char* record) {
  int64_t fact = 0;
  // Little-endian i64 at the record start; memcpy keeps the read legal at
  // any alignment.
  std::memcpy(&fact, record, sizeof(fact));
  return static_cast<db::FactId>(fact);
}

}  // namespace

Result<MmapSnapshot> MmapSnapshot::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError("cannot open snapshot " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::IOError("cannot stat snapshot " + path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return Status::InvalidArgument("mmap snapshot: empty file " + path);
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the inode alive
  if (map == MAP_FAILED) {
    return Status::IOError("cannot mmap snapshot " + path);
  }

  MmapSnapshot snap;
  snap.map_ = map;
  snap.map_size_ = size;
  const char* base = static_cast<const char*>(map);

  // Everything below returns through `snap` going out of scope (which
  // munmaps) on error, because `snap` owns the mapping already.
  ByteReader in(base, size);
  if (in.remaining() < sizeof(kMagic) ||
      std::memcmp(in.cursor(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("mmap snapshot: bad magic");
  }
  in.Skip(sizeof(kMagic));
  uint32_t version = 0, sections = 0;
  if (!in.ReadU32(&version) || !in.ReadU32(&sections)) {
    return Status::InvalidArgument("mmap snapshot: truncated header");
  }
  if (version != kVersion) {
    return Status::InvalidArgument(
        "mmap snapshot: unsupported format version " +
        std::to_string(version));
  }
  if (sections != kSectionCount) {
    return Status::InvalidArgument("mmap snapshot: unexpected section count");
  }

  // META: only relation and dimension matter to the read path; the walk
  // schemes and targets stay on disk (CRC-checked above all the same).
  STEDB_ASSIGN_OR_RETURN(ByteReader meta, OpenSection(in, kMetaTag));
  int64_t relation = -1;
  uint64_t dim = 0;
  if (!meta.ReadI64(&relation) || !meta.ReadU64(&dim)) {
    return Status::InvalidArgument("mmap snapshot: truncated META");
  }
  if (dim == 0 || dim > kMaxEmbeddingDim) {
    return Status::InvalidArgument("mmap snapshot: implausible dimension");
  }

  // PSI: structural size check only — serving never reads ψ.
  STEDB_ASSIGN_OR_RETURN(ByteReader psi, OpenSection(in, kPsiTag));
  uint64_t psi_targets = 0;
  // Division-form size checks: a crafted count field cannot overflow the
  // multiplication into a passing comparison.
  if (!psi.ReadU64(&psi_targets) ||
      psi.remaining() % (dim * dim * 8) != 0 ||
      psi.remaining() / (dim * dim * 8) != psi_targets) {
    return Status::InvalidArgument("mmap snapshot: PSI payload size mismatch");
  }

  // PHI: the serving payload. Fixed-stride records sorted by fact id.
  STEDB_ASSIGN_OR_RETURN(ByteReader phi, OpenSection(in, kPhiTag));
  uint64_t n_phi = 0;
  if (!phi.ReadU64(&n_phi) || phi.remaining() % (8 + dim * 8) != 0 ||
      phi.remaining() / (8 + dim * 8) != n_phi) {
    return Status::InvalidArgument("mmap snapshot: PHI payload size mismatch");
  }
  if (in.remaining() != 0) {
    return Status::InvalidArgument("mmap snapshot: trailing bytes after PHI");
  }
  const char* records = phi.cursor();
  // The writer pads every section to 8 bytes, so this cannot fire on a
  // file that passed the checks above; it guards the reinterpret_cast in
  // phi() against a future layout change.
  if ((records - base) % 8 != 0) {
    return Status::Internal("mmap snapshot: PHI payload is misaligned");
  }
  const size_t stride = 8 + static_cast<size_t>(dim) * 8;
  for (uint64_t i = 1; i < n_phi; ++i) {
    if (RecordFact(records + (i - 1) * stride) >=
        RecordFact(records + i * stride)) {
      return Status::InvalidArgument(
          "mmap snapshot: PHI records not sorted by fact id");
    }
  }

  snap.phi_records_ = records;
  snap.num_facts_ = static_cast<size_t>(n_phi);
  snap.dim_ = static_cast<size_t>(dim);
  snap.relation_ = static_cast<db::RelationId>(relation);
  return snap;
}

MmapSnapshot::MmapSnapshot(MmapSnapshot&& other) noexcept
    : map_(other.map_),
      map_size_(other.map_size_),
      phi_records_(other.phi_records_),
      num_facts_(other.num_facts_),
      dim_(other.dim_),
      relation_(other.relation_) {
  other.map_ = nullptr;
  other.map_size_ = 0;
  other.phi_records_ = nullptr;
  other.num_facts_ = 0;
}

MmapSnapshot& MmapSnapshot::operator=(MmapSnapshot&& other) noexcept {
  if (this != &other) {
    if (map_ != nullptr) ::munmap(map_, map_size_);
    map_ = other.map_;
    map_size_ = other.map_size_;
    phi_records_ = other.phi_records_;
    num_facts_ = other.num_facts_;
    dim_ = other.dim_;
    relation_ = other.relation_;
    other.map_ = nullptr;
    other.map_size_ = 0;
    other.phi_records_ = nullptr;
    other.num_facts_ = 0;
  }
  return *this;
}

MmapSnapshot::~MmapSnapshot() {
  if (map_ != nullptr) ::munmap(map_, map_size_);
}

db::FactId MmapSnapshot::fact_at(size_t i) const {
  return RecordFact(phi_records_ + i * (8 + dim_ * 8));
}

Span<const double> MmapSnapshot::phi(db::FactId f) const {
  size_t lo = 0, hi = num_facts_;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (fact_at(mid) < f) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == num_facts_ || fact_at(lo) != f) return Span<const double>();
  const char* record = phi_records_ + lo * (8 + dim_ * 8);
  return Span<const double>(reinterpret_cast<const double*>(record + 8),
                            dim_);
}

}  // namespace stedb::store
