#include "src/store/mmap_snapshot.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "src/store/format.h"
#include "src/store/model_codec.h"

namespace stedb::store {
namespace {

db::FactId RecordFact(const char* record) {
  int64_t fact = 0;
  // Little-endian i64 at the record start; memcpy keeps the read legal at
  // any alignment.
  std::memcpy(&fact, record, sizeof(fact));
  return static_cast<db::FactId>(fact);
}

}  // namespace

Result<MmapSnapshot> MmapSnapshot::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError("cannot open snapshot " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::IOError("cannot stat snapshot " + path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return Status::InvalidArgument("mmap snapshot: empty file " + path);
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the inode alive
  if (map == MAP_FAILED) {
    return Status::IOError("cannot mmap snapshot " + path);
  }

  MmapSnapshot snap;
  snap.map_ = map;
  snap.map_size_ = size;
  const char* base = static_cast<const char*>(map);

  // Everything below returns through `snap` going out of scope (which
  // munmaps) on error, because `snap` owns the mapping already. The
  // container walk CRC-checks every section — including method-specific
  // ones this reader never interprets — so an OK open proves the whole
  // file intact (one sequential pass; faults the pages the way a full
  // read would, still far cheaper than the copying parse).
  STEDB_ASSIGN_OR_RETURN(ParsedSnapshot parsed,
                         ParseSnapshotContainer(base, size));
  snap.dim_ = static_cast<size_t>(parsed.header.dim);
  snap.relation_ = static_cast<db::RelationId>(parsed.header.relation);
  snap.method_tag_ = parsed.header.method_tag;
  snap.codec_version_ = parsed.header.codec_version;

  // PHI: the serving payload (mandatory — ParseSnapshotContainer checked).
  // Fixed-stride records sorted strictly ascending by fact id.
  const SnapshotSection* phi = parsed.Find(kPhiSectionTag);
  ByteReader phi_in = phi->reader();
  uint64_t n_phi = 0;
  const uint64_t stride64 = 8 + parsed.header.dim * 8;
  // Division-form size checks: a crafted count field cannot overflow the
  // multiplication into a passing comparison.
  if (!phi_in.ReadU64(&n_phi) || phi_in.remaining() % stride64 != 0 ||
      phi_in.remaining() / stride64 != n_phi) {
    return Status::InvalidArgument("mmap snapshot: PHI payload size mismatch");
  }
  const char* records = phi_in.cursor();
  // The writer keeps payloads 8-aligned, so this cannot fire on a file
  // that passed the checks above; it guards the reinterpret_cast in phi()
  // against a future layout change.
  if ((records - base) % 8 != 0) {
    return Status::Internal("mmap snapshot: PHI payload is misaligned");
  }
  const size_t stride = static_cast<size_t>(stride64);
  for (uint64_t i = 1; i < n_phi; ++i) {
    if (RecordFact(records + (i - 1) * stride) >=
        RecordFact(records + i * stride)) {
      return Status::InvalidArgument(
          "mmap snapshot: PHI records not sorted by fact id");
    }
  }
  snap.phi_records_ = records;
  snap.num_facts_ = static_cast<size_t>(n_phi);

  // PSI: optional standard section (FoRWaRD writes it, Node2Vec does not).
  if (const SnapshotSection* psi = parsed.Find(kPsiSectionTag)) {
    ByteReader psi_in = psi->reader();
    uint64_t n_psi = 0;
    const uint64_t matrix64 = parsed.header.dim * parsed.header.dim * 8;
    if (!psi_in.ReadU64(&n_psi) || psi_in.remaining() % matrix64 != 0 ||
        psi_in.remaining() / matrix64 != n_psi) {
      return Status::InvalidArgument(
          "mmap snapshot: PSI payload size mismatch");
    }
    if ((psi_in.cursor() - base) % 8 != 0) {
      return Status::Internal("mmap snapshot: PSI payload is misaligned");
    }
    snap.psi_matrices_ = psi_in.cursor();
    snap.num_psi_ = static_cast<size_t>(n_psi);
  }

  // ANN: optional persisted index (StoreOptions::build_ann_index). Only
  // located here — ann::HnswView::Open validates the payload structure
  // when a serving session actually wants to search it.
  if (const SnapshotSection* ann = parsed.Find(kAnnSectionTag)) {
    if ((ann->data - base) % 8 != 0) {
      return Status::Internal("mmap snapshot: ANN payload is misaligned");
    }
    snap.ann_data_ = ann->data;
    snap.ann_size_ = ann->size;
  }
  return snap;
}

MmapSnapshot::MmapSnapshot(MmapSnapshot&& other) noexcept
    : map_(other.map_),
      map_size_(other.map_size_),
      phi_records_(other.phi_records_),
      psi_matrices_(other.psi_matrices_),
      ann_data_(other.ann_data_),
      ann_size_(other.ann_size_),
      num_facts_(other.num_facts_),
      num_psi_(other.num_psi_),
      dim_(other.dim_),
      relation_(other.relation_),
      method_tag_(other.method_tag_),
      codec_version_(other.codec_version_) {
  other.map_ = nullptr;
  other.map_size_ = 0;
  other.phi_records_ = nullptr;
  other.psi_matrices_ = nullptr;
  other.ann_data_ = nullptr;
  other.ann_size_ = 0;
  other.num_facts_ = 0;
  other.num_psi_ = 0;
}

MmapSnapshot& MmapSnapshot::operator=(MmapSnapshot&& other) noexcept {
  if (this != &other) {
    if (map_ != nullptr) ::munmap(map_, map_size_);
    map_ = other.map_;
    map_size_ = other.map_size_;
    phi_records_ = other.phi_records_;
    psi_matrices_ = other.psi_matrices_;
    ann_data_ = other.ann_data_;
    ann_size_ = other.ann_size_;
    num_facts_ = other.num_facts_;
    num_psi_ = other.num_psi_;
    dim_ = other.dim_;
    relation_ = other.relation_;
    method_tag_ = other.method_tag_;
    codec_version_ = other.codec_version_;
    other.map_ = nullptr;
    other.map_size_ = 0;
    other.phi_records_ = nullptr;
    other.psi_matrices_ = nullptr;
    other.ann_data_ = nullptr;
    other.ann_size_ = 0;
    other.num_facts_ = 0;
    other.num_psi_ = 0;
  }
  return *this;
}

MmapSnapshot::~MmapSnapshot() {
  if (map_ != nullptr) ::munmap(map_, map_size_);
}

db::FactId MmapSnapshot::fact_at(size_t i) const {
  return RecordFact(phi_records_ + i * (8 + dim_ * 8));
}

Span<const double> MmapSnapshot::phi(db::FactId f) const {
  size_t lo = 0, hi = num_facts_;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (fact_at(mid) < f) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == num_facts_ || fact_at(lo) != f) return Span<const double>();
  const char* record = phi_records_ + lo * (8 + dim_ * 8);
  return Span<const double>(reinterpret_cast<const double*>(record + 8),
                            dim_);
}

Span<const double> MmapSnapshot::phi_at(size_t i) const {
  const char* record = phi_records_ + i * phi_stride();
  return Span<const double>(reinterpret_cast<const double*>(record + 8),
                            dim_);
}

Span<const double> MmapSnapshot::psi(size_t t) const {
  if (t >= num_psi_) return Span<const double>();
  const size_t matrix_doubles = dim_ * dim_;
  return Span<const double>(
      reinterpret_cast<const double*>(psi_matrices_) + t * matrix_doubles,
      matrix_doubles);
}

}  // namespace stedb::store
