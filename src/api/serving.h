#ifndef STEDB_API_SERVING_H_
#define STEDB_API_SERVING_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/ann/hnsw.h"
#include "src/common/scoped_fd.h"
#include "src/common/span.h"
#include "src/common/status.h"
#include "src/db/database.h"
#include "src/la/matrix.h"
#include "src/store/mmap_snapshot.h"
#include "src/store/wal.h"

namespace stedb::api {

/// Knobs for ServingSession::SimilarTopK. Namespace-scope (not nested)
/// so it can be a defaulted argument of the member functions.
struct SimilarOptions {
  /// Beam width of the HNSW base-layer search (clamped up so at least
  /// k + WAL-override survivors come back). 0 = kDefaultEfSearch.
  size_t ef_search = 0;
  /// false forces the exact brute-force scan even when an index is
  /// present — the parity / recall oracle (`/similar?approx=0`).
  bool approx = true;
};

/// Read-only serving endpoint over a store::EmbeddingStore directory: the
/// snapshot is mmap'd (zero-copy, page cache shared across processes) and
/// the extension WAL is tailed incrementally, so one trainer process and
/// any number of reader processes can share a store directory with no
/// coordination beyond the filesystem.
///
/// The session is method-agnostic: it reads the snapshot's standard PHI
/// section and the method-agnostic WAL, so a directory written by *any*
/// registered codec — FoRWaRD's, Node2Vec's, a third party's — serves
/// identically (the session never even resolves the codec; the container
/// header carries dim/relation and the CRC-checked section table).
///
///   auto session = api::ServingSession::Open(dir);       // cold reader
///   Span<const double> v = session->Embed(f).value();    // zero-copy
///   ...
///   session->Poll();   // picks up extensions journaled since Open/Poll
///
/// Embed returns views: into the mapped snapshot for snapshot-resident
/// facts, into the session's tail buffer for WAL-resident ones. A view
/// stays valid until the next Poll() (which may grow the tail buffer or,
/// after a writer compaction, replace the mapping) or until the session
/// is destroyed — callers that need longer-lived vectors copy (EmbedBatch
/// does).
///
/// Poll() semantics:
///  * New complete WAL records are applied; an incomplete trailing record
///    (the writer mid-append) is simply retried on the next Poll — for a
///    tailing reader a torn tail is pending data, not corruption.
///  * A writer Compact() atomically replaces the snapshot and resets the
///    journal. Poll detects the new snapshot inode and reopens both files
///    (invalidating previously returned views); the served vectors are
///    unchanged, because compaction only folds journal records into the
///    snapshot. `reopened()` reports that this happened.
///
/// Stability is what makes this sound: old embeddings never change, so a
/// snapshot plus an append-only journal of new facts is the *complete*
/// state, and every vector served here is bit-identical to the trainer's
/// in-memory model (asserted in tests/serving_test.cc).
class ServingSession {
 public:
  /// Opens `<dir>/model.snap` + `<dir>/extend.wal` and replays the
  /// journal's clean prefix.
  static Result<ServingSession> Open(const std::string& dir);

  ServingSession(ServingSession&&) = default;
  ServingSession& operator=(ServingSession&&) = default;
  ServingSession(const ServingSession&) = delete;
  ServingSession& operator=(const ServingSession&) = delete;

  /// Zero-copy φ(f); NotFound when the fact is in neither the snapshot
  /// nor the tailed journal.
  Result<Span<const double>> Embed(db::FactId f) const;

  /// Copying batch read: fills `out` (facts.size() x dim()) with one row
  /// per requested fact. NotFound when any fact is unknown,
  /// InvalidArgument on a shape mismatch.
  Status EmbedBatch(Span<const db::FactId> facts, la::MatrixView out) const;

  /// φ(f)ᵀ ψ(t) φ(g) — the model's similarity prediction (paper Eq. 3
  /// LHS), computed straight off the mapping via the zero-copy ψ
  /// accessors. Bit-equal to the trainer-side fwd::ForwardModel::Score
  /// for the same store (same la::BilinearForm core, same bytes —
  /// asserted in tests/serving_test.cc). NotFound for an unknown fact,
  /// FailedPrecondition when the snapshot carries no ψ sections (e.g.
  /// Node2Vec), InvalidArgument for a ψ index out of range.
  Result<double> Score(db::FactId f, db::FactId g, size_t target) const;

  /// One top-k result row.
  struct Scored {
    db::FactId fact = -1;
    double score = 0.0;
  };

  /// The k served facts g maximizing Score(query, g, target), descending
  /// by score with ascending fact id as the deterministic tie-break. The
  /// query fact itself is included when served (callers filter). Same
  /// error cases as Score.
  Result<std::vector<Scored>> TopK(db::FactId query, size_t k,
                                   size_t target) const;

  /// ψ matrices available for scoring (0 for methods that persist none).
  size_t num_psi() const { return snapshot_.num_psi(); }

  /// Base-layer beam width used when SimilarOptions::ef_search is 0.
  static constexpr size_t kDefaultEfSearch = 64;

  /// Whether the mmap'd snapshot carries a searchable 'ANN ' index.
  bool has_ann_index() const { return ann_view_.valid(); }
  /// The index's metric (cosine when no index is present — the exact
  /// fallback's default).
  ann::Metric similarity_metric() const {
    return ann_view_.valid() ? ann_view_.metric() : ann::Metric::kCosine;
  }

  /// The k facts most similar to `query` in embedding space (the paper's
  /// record-similarity task), best first with ascending fact id on ties.
  /// When the snapshot carries an 'ANN ' section the mmap'd HNSW graph is
  /// searched zero-copy and WAL-resident facts tailed since the snapshot
  /// are merged from an exact side scan — freshness is never sacrificed
  /// for speed. Without an index (or with approx=false) the whole served
  /// set is scanned exactly; scores are bit-identical either way, both
  /// routed through ann::PairScore / la::kernels.
  ///
  /// The fact overload queries by a served fact's own vector and excludes
  /// that fact from the results (NotFound when it is not served); the
  /// span overload searches an arbitrary vector (InvalidArgument on a
  /// dimension mismatch), excluding `exclude` when given.
  Result<std::vector<Scored>> SimilarTopK(
      db::FactId query, size_t k,
      const SimilarOptions& options = SimilarOptions()) const;
  Result<std::vector<Scored>> SimilarTopK(
      Span<const double> query, size_t k,
      const SimilarOptions& options = SimilarOptions(),
      db::FactId exclude = db::kNoFact) const;

  /// Every served fact id, ascending (snapshot residents + journal tail,
  /// deduplicated). Allocates; meant for enumeration endpoints and the
  /// top-k scan, not the per-lookup hot path.
  std::vector<db::FactId> ServedFacts() const;

  /// Tails the journal: applies every extension record that became durable
  /// since Open()/the last Poll(), reopening the files after a writer
  /// compaction. Returns the number of new records applied.
  Result<size_t> Poll();

  size_t dim() const { return snapshot_.dim(); }
  db::RelationId relation() const { return snapshot_.relation(); }
  /// Distinct facts served (snapshot residents + tailed journal records;
  /// a fact in both — the compaction crash window — counts once).
  size_t num_embedded() const;
  /// Journal records currently served from the tail buffer.
  size_t wal_records() const { return overlay_.size(); }
  /// Whether the last Poll() had to reopen after a compaction.
  bool reopened() const { return reopened_; }
  const std::string& dir() const { return dir_; }

 private:
  ServingSession(std::string dir, store::MmapSnapshot snapshot);

  /// Applies records parsed from the journal tail to the overlay; returns
  /// the bytes consumed by clean records.
  size_t ApplyTail(const std::string& bytes);
  /// preads the unconsumed journal bytes [wal_offset_, EOF) off wal_fd_.
  Status ReadWalTail(std::string* out) const;
  /// Whether `<dir>/extend.wal` is still the inode wal_fd_ pins. False
  /// after a writer reset the journal (compaction) — the tail source is
  /// stale and the session must reopen. Guards the crash-window race
  /// where Open() observed the new snapshot but the not-yet-reset old
  /// journal: snapshot identity alone would never notice.
  Result<bool> JournalCurrent() const;
  /// Installs one journal record into the overlay (insert or overwrite).
  void ApplyRecord(const store::WalRecord& rec);
  /// Snapshot-file identity (inode, size) used to detect compaction.
  static Status SnapshotIdentity(const std::string& dir, uint64_t* inode,
                                 uint64_t* size);

  std::string dir_;
  store::MmapSnapshot snapshot_;
  uint64_t snapshot_inode_ = 0;
  uint64_t snapshot_size_ = 0;
  /// Persistent journal fd: Poll() preads the tail from wal_offset_
  /// instead of reopening the file per call. Bound to the journal inode
  /// as of Open(); the compaction path (which atomically replaces the
  /// journal) is the only place it is reopened.
  ScopedFd wal_fd_;
  size_t wal_offset_ = 0;  ///< journal bytes consumed (header + records)
  /// Journal-resident vectors: fact -> row index into overlay_data_.
  std::unordered_map<db::FactId, size_t> overlay_;
  std::vector<double> overlay_data_;
  /// View over the snapshot's 'ANN ' section (invalid when absent). The
  /// pointers alias the mapping, so the default move ops stay correct:
  /// the mmap address is stable across MmapSnapshot moves.
  ann::HnswView ann_view_;
  /// Overlay entries that shadow a snapshot-resident fact (the journal
  /// overwrote an indexed vector). The ANN search widens its result set
  /// by this count so dropping the stale graph hits cannot starve k.
  size_t overlay_overrides_ = 0;
  bool reopened_ = false;
};

}  // namespace stedb::api

#endif  // STEDB_API_SERVING_H_
