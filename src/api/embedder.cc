#include "src/api/embedder.h"

#include "src/la/kernels.h"

namespace stedb::api {

Status Embedder::EmbedBatch(Span<const db::FactId> facts,
                            la::MatrixView out) const {
  if (out.rows() != facts.size() || out.cols() != dim()) {
    return Status::InvalidArgument(
        "EmbedBatch: output shape must be facts x dim");
  }
  for (size_t i = 0; i < facts.size(); ++i) {
    STEDB_ASSIGN_OR_RETURN(la::Vector v, Embed(facts[i]));
    la::CopyRow(out.RowPtr(i), v.data(), v.size());
  }
  return Status::OK();
}

}  // namespace stedb::api
