#ifndef STEDB_API_REGISTRY_H_
#define STEDB_API_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/api/embedder.h"
#include "src/common/status.h"

namespace stedb::api {

/// Builds an untrained Embedder from options; `seed` controls all of the
/// instance's randomness.
using MethodFactory = std::function<std::unique_ptr<Embedder>(
    const MethodOptions& options, uint64_t seed)>;

/// Registers an embedding method under `name` (matched case-insensitively
/// by CreateMethod). The built-ins — "forward" (FoRWaRD) and "node2vec" —
/// self-register before any lookup, so user registrations only ever extend
/// the set. AlreadyExists when the (case-folded) name is taken.
/// Thread-safe.
Status RegisterMethod(const std::string& name, MethodFactory factory);

/// Instantiates a registered method. NotFound (listing what is registered)
/// for unknown names. Thread-safe.
Result<std::unique_ptr<Embedder>> CreateMethod(const std::string& name,
                                               const MethodOptions& options,
                                               uint64_t seed);

/// The registered method names (case-folded), sorted.
std::vector<std::string> RegisteredMethods();

}  // namespace stedb::api

#endif  // STEDB_API_REGISTRY_H_
