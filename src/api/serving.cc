#include "src/api/serving.h"

#include <sys/stat.h>

#include <cstring>
#include <utility>

#include "src/la/row_batch.h"
#include "src/store/embedding_store.h"
#include "src/store/format.h"
#include "src/store/wal.h"

namespace stedb::api {

ServingSession::ServingSession(std::string dir, store::MmapSnapshot snapshot)
    : dir_(std::move(dir)), snapshot_(std::move(snapshot)) {}

Status ServingSession::SnapshotIdentity(const std::string& dir,
                                        uint64_t* inode, uint64_t* size) {
  struct stat st;
  if (::stat(store::EmbeddingStore::SnapshotPath(dir).c_str(), &st) != 0) {
    return Status::IOError("serving: cannot stat snapshot in " + dir);
  }
  *inode = static_cast<uint64_t>(st.st_ino);
  *size = static_cast<uint64_t>(st.st_size);
  return Status::OK();
}

Result<ServingSession> ServingSession::Open(const std::string& dir) {
  // Identity before mmap: if a compaction renames the snapshot between
  // the stat and the map we record the *old* identity while mapping the
  // new file, and the next Poll() harmlessly reopens once more.
  uint64_t inode = 0, size = 0;
  STEDB_RETURN_IF_ERROR(SnapshotIdentity(dir, &inode, &size));
  STEDB_ASSIGN_OR_RETURN(
      store::MmapSnapshot snapshot,
      store::MmapSnapshot::Open(store::EmbeddingStore::SnapshotPath(dir)));
  ServingSession session(dir, std::move(snapshot));
  session.snapshot_inode_ = inode;
  session.snapshot_size_ = size;

  // Replay the journal's clean prefix. A torn tail is pending data (the
  // writer may be mid-append), not corruption — Poll() retries it.
  std::string bytes;
  STEDB_RETURN_IF_ERROR(store::ReadFileToString(
      store::EmbeddingStore::WalPath(dir), &bytes));
  auto replay =
      store::ReplayWalBytes(bytes, static_cast<int>(session.dim()));
  if (!replay.ok()) return replay.status();
  session.wal_offset_ = replay.value().valid_bytes;
  for (store::WalRecord& rec : replay.value().records) {
    session.ApplyRecord(rec);
  }
  return session;
}

void ServingSession::ApplyRecord(const store::WalRecord& rec) {
  auto it = overlay_.find(rec.fact);
  size_t row;
  if (it == overlay_.end()) {
    row = overlay_.size();
    overlay_.emplace(rec.fact, row);
    overlay_data_.resize((row + 1) * dim());
  } else {
    row = it->second;
  }
  std::memcpy(overlay_data_.data() + row * dim(), rec.phi.data(),
              dim() * sizeof(double));
}

size_t ServingSession::ApplyTail(const std::string& bytes) {
  store::WalTail tail = store::ParseWalTail(bytes.data(), bytes.size(), dim());
  for (const store::WalRecord& rec : tail.records) ApplyRecord(rec);
  return tail.consumed;
}

Result<size_t> ServingSession::Poll() {
  reopened_ = false;
  uint64_t inode = 0, size = 0;
  STEDB_RETURN_IF_ERROR(SnapshotIdentity(dir_, &inode, &size));
  if (inode == snapshot_inode_ && size == snapshot_size_) {
    std::string bytes;
    STEDB_RETURN_IF_ERROR(store::ReadFileFrom(
        store::EmbeddingStore::WalPath(dir_), wal_offset_, &bytes));
    // Re-check the snapshot identity AFTER the read: a Compact() racing
    // in between replaces the journal, and our record-aligned offset
    // would land on a valid record boundary of the *new* journal — the
    // tail would CRC-validate while silently skipping its first records.
    // If the identity moved, discard the read and reopen instead.
    STEDB_RETURN_IF_ERROR(SnapshotIdentity(dir_, &inode, &size));
    if (inode == snapshot_inode_ && size == snapshot_size_) {
      const size_t before = overlay_.size();
      wal_offset_ += ApplyTail(bytes);
      return overlay_.size() - before;
    }
  }
  // The writer compacted: the snapshot file was atomically replaced and
  // the journal reset. Reopen both; every vector served before is still
  // served (compaction only folds journal records into the snapshot), so
  // the delta below counts genuinely new facts.
  const size_t before = num_embedded();
  STEDB_ASSIGN_OR_RETURN(ServingSession fresh, Open(dir_));
  *this = std::move(fresh);
  reopened_ = true;
  const size_t after = num_embedded();
  return after > before ? after - before : 0;
}

size_t ServingSession::num_embedded() const {
  size_t n = snapshot_.num_embedded();
  for (const auto& [f, row] : overlay_) {
    (void)row;
    if (snapshot_.phi(f).empty()) ++n;
  }
  return n;
}

Result<Span<const double>> ServingSession::Embed(db::FactId f) const {
  // The overlay wins: after a compaction crash-window replay the same
  // fact can sit in both places with identical bytes, and for a genuinely
  // journal-resident fact only the overlay has it at all.
  auto it = overlay_.find(f);
  if (it != overlay_.end()) {
    return Span<const double>(overlay_data_.data() + it->second * dim(),
                              dim());
  }
  Span<const double> v = snapshot_.phi(f);
  if (v.empty()) {
    return Status::NotFound("fact " + std::to_string(f) +
                            " is not in the served store");
  }
  return v;
}

Status ServingSession::EmbedBatch(Span<const db::FactId> facts,
                                  la::MatrixView out) const {
  if (out.rows() != facts.size() || out.cols() != dim()) {
    return Status::InvalidArgument(
        "EmbedBatch: output shape must be facts x dim");
  }
  // Same gather helper as the in-memory embedders: large batches fan out
  // over a ParallelRunner (threads steered by STEDB_THREADS, like every
  // 0-default in this codebase).
  const size_t bad = la::GatherRows(
      facts.size(), dim(), /*threads=*/0, out,
      [&](size_t i) -> const double* {
        auto it = overlay_.find(facts[i]);
        if (it != overlay_.end()) {
          return overlay_data_.data() + it->second * dim();
        }
        Span<const double> v = snapshot_.phi(facts[i]);
        return v.empty() ? nullptr : v.data();
      });
  if (bad != facts.size()) {
    return Status::NotFound("fact " + std::to_string(facts[bad]) +
                            " is not in the served store");
  }
  return Status::OK();
}

}  // namespace stedb::api
