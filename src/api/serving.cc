#include "src/api/serving.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "src/la/row_batch.h"
#include "src/ml/topk.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/store/embedding_store.h"
#include "src/store/format.h"
#include "src/store/wal.h"

namespace stedb::api {

namespace {

/// Registry series of the WAL-tailing reader. Shared across sessions in
/// one process — the replication-lag story of "this reader process", not
/// of one session object.
struct ServingMetrics {
  obs::Registry& reg = obs::Registry::Global();
  obs::Histogram& poll_seconds = reg.GetHistogram(
      "stedb_serving_poll_seconds",
      "ServingSession::Poll latency (WAL tail read + apply, or the "
      "compaction reopen path)",
      obs::Buckets::Latency());
  obs::Counter& polls = reg.GetCounter(
      "stedb_serving_polls_total", "ServingSession::Poll calls");
  obs::Counter& wal_records_applied = reg.GetCounter(
      "stedb_serving_wal_records_applied_total",
      "Journal records applied by Poll since process start");
  obs::Gauge& lag_records = reg.GetGauge(
      "stedb_serving_wal_lag_records",
      "Records the reader was behind at the start of the last Poll "
      "(records applied by that Poll)");
  obs::Gauge& lag_bytes = reg.GetGauge(
      "stedb_serving_wal_lag_bytes",
      "Journal bytes the reader was behind at the start of the last Poll");
  obs::Counter& reopens = reg.GetCounter(
      "stedb_serving_reopens_total",
      "Compaction-triggered snapshot+journal reopens");
  obs::Histogram& ann_visited_nodes = reg.GetHistogram(
      "stedb_ann_visited_nodes",
      "Nodes whose distance was evaluated per HNSW search "
      "(SimilarTopK approximate path)",
      obs::Buckets::PowersOfTwo());
};

ServingMetrics& Metrics() {
  static ServingMetrics m;
  return m;
}

[[maybe_unused]] const ServingMetrics& g_eager_metrics = Metrics();

}  // namespace

ServingSession::ServingSession(std::string dir, store::MmapSnapshot snapshot)
    : dir_(std::move(dir)), snapshot_(std::move(snapshot)) {}

Status ServingSession::SnapshotIdentity(const std::string& dir,
                                        uint64_t* inode, uint64_t* size) {
  struct stat st;
  if (::stat(store::EmbeddingStore::SnapshotPath(dir).c_str(), &st) != 0) {
    return Status::IOError("serving: cannot stat snapshot in " + dir);
  }
  *inode = static_cast<uint64_t>(st.st_ino);
  *size = static_cast<uint64_t>(st.st_size);
  return Status::OK();
}

Result<ServingSession> ServingSession::Open(const std::string& dir) {
  // Identity before mmap: if a compaction renames the snapshot between
  // the stat and the map we record the *old* identity while mapping the
  // new file, and the next Poll() harmlessly reopens once more.
  uint64_t inode = 0, size = 0;
  STEDB_RETURN_IF_ERROR(SnapshotIdentity(dir, &inode, &size));
  STEDB_ASSIGN_OR_RETURN(
      store::MmapSnapshot snapshot,
      store::MmapSnapshot::Open(store::EmbeddingStore::SnapshotPath(dir)));
  ServingSession session(dir, std::move(snapshot));
  session.snapshot_inode_ = inode;
  session.snapshot_size_ = size;

  // Open the persisted ANN index when the snapshot carries one. The view
  // points straight into the mapping (zero-copy); a structurally invalid
  // section fails the whole Open — a store advertising an index it
  // cannot serve is corrupt, not merely slow.
  if (session.snapshot_.has_ann()) {
    STEDB_ASSIGN_OR_RETURN(
        session.ann_view_,
        ann::HnswView::Open(session.snapshot_.ann_data(),
                            session.snapshot_.ann_size(),
                            session.snapshot_.num_embedded(),
                            session.snapshot_.dim()));
  }

  // Pin the journal BEFORE reading it: wal_offset_ and wal_fd_ must
  // describe the same inode. Reading by path first would let a racing
  // compaction slip a fresh journal under the fd while the offset still
  // measured the old one — both identity checks in Poll() would then
  // pass while ReadWalTail compared the stale offset against the new
  // journal's smaller size and served nothing new, forever. The
  // persistent descriptor also spares Poll() an open/read/close per
  // call and guarantees a tail read never splices foreign bytes.
  const std::string wal_path = store::EmbeddingStore::WalPath(dir);
  int fd = ::open(wal_path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("serving: cannot open journal " + wal_path);
  }
  session.wal_fd_.Reset(fd);

  // Replay the journal's clean prefix (wal_offset_ is still 0, so the
  // tail read returns the whole file through the pinned fd). A torn
  // tail is pending data (the writer may be mid-append), not
  // corruption — Poll() retries it.
  std::string bytes;
  STEDB_RETURN_IF_ERROR(session.ReadWalTail(&bytes));
  auto replay =
      store::ReplayWalBytes(bytes, static_cast<int>(session.dim()));
  if (!replay.ok()) return replay.status();
  session.wal_offset_ = replay.value().valid_bytes;
  for (store::WalRecord& rec : replay.value().records) {
    session.ApplyRecord(rec);
  }
  return session;
}

Status ServingSession::ReadWalTail(std::string* out) const {
  out->clear();
  struct stat st;
  if (::fstat(wal_fd_.get(), &st) != 0) {
    return Status::IOError("serving: cannot stat journal fd for " + dir_);
  }
  const auto size = static_cast<size_t>(st.st_size);
  if (size <= wal_offset_) return Status::OK();  // nothing new
  out->resize(size - wal_offset_);
  size_t done = 0;
  while (done < out->size()) {
    const ssize_t n =
        ::pread(wal_fd_.get(), out->data() + done, out->size() - done,
                static_cast<off_t>(wal_offset_ + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("serving: journal pread failed for " + dir_);
    }
    if (n == 0) break;  // raced a truncation; parse what we got
    done += static_cast<size_t>(n);
  }
  out->resize(done);
  return Status::OK();
}

Result<bool> ServingSession::JournalCurrent() const {
  struct stat fd_st, path_st;
  if (::fstat(wal_fd_.get(), &fd_st) != 0) {
    return Status::IOError("serving: cannot stat journal fd for " + dir_);
  }
  if (::stat(store::EmbeddingStore::WalPath(dir_).c_str(), &path_st) != 0) {
    return Status::IOError("serving: cannot stat journal in " + dir_);
  }
  return fd_st.st_ino == path_st.st_ino && fd_st.st_dev == path_st.st_dev;
}

void ServingSession::ApplyRecord(const store::WalRecord& rec) {
  auto it = overlay_.find(rec.fact);
  size_t row;
  if (it == overlay_.end()) {
    row = overlay_.size();
    overlay_.emplace(rec.fact, row);
    overlay_data_.resize((row + 1) * dim());
    // A journal record for a snapshot-resident fact shadows its indexed
    // vector: the ANN graph's hit for that node is stale and SimilarTopK
    // must widen its candidate set to drop it without starving k.
    if (!snapshot_.phi(rec.fact).empty()) ++overlay_overrides_;
  } else {
    row = it->second;
  }
  std::memcpy(overlay_data_.data() + row * dim(), rec.phi.data(),
              dim() * sizeof(double));
}

size_t ServingSession::ApplyTail(const std::string& bytes) {
  store::WalTail tail = store::ParseWalTail(bytes.data(), bytes.size(), dim());
  for (const store::WalRecord& rec : tail.records) ApplyRecord(rec);
  return tail.consumed;
}

Result<size_t> ServingSession::Poll() {
  ServingMetrics& metrics = Metrics();
  metrics.polls.Inc();
  obs::ScopedTimer timer(metrics.poll_seconds);
  reopened_ = false;
  uint64_t inode = 0, size = 0;
  STEDB_RETURN_IF_ERROR(SnapshotIdentity(dir_, &inode, &size));
  if (inode == snapshot_inode_ && size == snapshot_size_) {
    // The journal file must also still be the inode this session tails.
    // It can be stale while the snapshot looks current: an Open() that
    // raced a Compact() between the snapshot rename and the journal
    // reset pinned the *old* journal — without this check the session
    // would poll a dead inode forever and never see new appends.
    STEDB_ASSIGN_OR_RETURN(bool journal_current, JournalCurrent());
    if (journal_current) {
      std::string bytes;
      STEDB_RETURN_IF_ERROR(ReadWalTail(&bytes));
      // Re-check both identities AFTER the read: a Compact() racing in
      // between replaced the journal, so the bytes just read came from
      // the *pre-compaction* journal (the fd pins its inode) — every
      // one of them is already folded into the new snapshot. Discard
      // the read and reopen instead of double-applying a stale tail.
      STEDB_RETURN_IF_ERROR(SnapshotIdentity(dir_, &inode, &size));
      STEDB_ASSIGN_OR_RETURN(journal_current, JournalCurrent());
      if (inode == snapshot_inode_ && size == snapshot_size_ &&
          journal_current) {
        const size_t before = overlay_.size();
        wal_offset_ += ApplyTail(bytes);
        const size_t applied = overlay_.size() - before;
        // The lag gauges answer "how far behind was this reader when it
        // polled": the tail bytes that had accumulated since the last
        // Poll, and the records they decoded into.
        metrics.lag_bytes.Set(static_cast<double>(bytes.size()));
        metrics.lag_records.Set(static_cast<double>(applied));
        metrics.wal_records_applied.Inc(applied);
        return applied;
      }
    }
  }
  // The writer compacted: the snapshot file was atomically replaced and
  // the journal reset. Reopen both; every vector served before is still
  // served (compaction only folds journal records into the snapshot), so
  // the delta below counts genuinely new facts.
  const size_t before = num_embedded();
  STEDB_ASSIGN_OR_RETURN(ServingSession fresh, Open(dir_));
  *this = std::move(fresh);
  reopened_ = true;
  metrics.reopens.Inc();
  const size_t after = num_embedded();
  const size_t applied = after > before ? after - before : 0;
  metrics.lag_records.Set(static_cast<double>(applied));
  metrics.wal_records_applied.Inc(applied);
  return applied;
}

size_t ServingSession::num_embedded() const {
  size_t n = snapshot_.num_embedded();
  for (const auto& [f, row] : overlay_) {
    (void)row;
    if (snapshot_.phi(f).empty()) ++n;
  }
  return n;
}

Result<Span<const double>> ServingSession::Embed(db::FactId f) const {
  // The overlay wins: after a compaction crash-window replay the same
  // fact can sit in both places with identical bytes, and for a genuinely
  // journal-resident fact only the overlay has it at all.
  auto it = overlay_.find(f);
  if (it != overlay_.end()) {
    return Span<const double>(overlay_data_.data() + it->second * dim(),
                              dim());
  }
  Span<const double> v = snapshot_.phi(f);
  if (v.empty()) {
    return Status::NotFound("fact " + std::to_string(f) +
                            " is not in the served store");
  }
  return v;
}

Result<double> ServingSession::Score(db::FactId f, db::FactId g,
                                     size_t target) const {
  if (snapshot_.num_psi() == 0) {
    return Status::FailedPrecondition(
        "serving: snapshot carries no psi sections; scoring needs a "
        "method that persists them (FoRWaRD)");
  }
  Span<const double> psi = snapshot_.psi(target);
  if (psi.empty()) {
    return Status::InvalidArgument(
        "serving: psi target " + std::to_string(target) + " out of range (" +
        std::to_string(snapshot_.num_psi()) + " available)");
  }
  STEDB_ASSIGN_OR_RETURN(Span<const double> phi_f, Embed(f));
  STEDB_ASSIGN_OR_RETURN(Span<const double> phi_g, Embed(g));
  return la::BilinearForm(phi_f, psi, phi_g);
}

Result<std::vector<ServingSession::Scored>> ServingSession::TopK(
    db::FactId query, size_t k, size_t target) const {
  if (snapshot_.num_psi() == 0) {
    return Status::FailedPrecondition(
        "serving: snapshot carries no psi sections; scoring needs a "
        "method that persists them (FoRWaRD)");
  }
  Span<const double> psi = snapshot_.psi(target);
  if (psi.empty()) {
    return Status::InvalidArgument(
        "serving: psi target " + std::to_string(target) + " out of range (" +
        std::to_string(snapshot_.num_psi()) + " available)");
  }
  STEDB_ASSIGN_OR_RETURN(Span<const double> phi_q, Embed(query));

  // Exhaustive φᵀψφ scan over every served fact — the bilinear scorer
  // cannot use the vector-space ANN index (SimilarTopK can). Bounded
  // k-element selection instead of materializing + sorting all n scores;
  // descending score with ascending fact id on ties, so the result is
  // deterministic for equal stores.
  ml::TopKHeap<Scored> heap(k);
  for (db::FactId g : ServedFacts()) {
    // Embed cannot fail here: ServedFacts enumerates only served ids.
    heap.Push({g, la::BilinearForm(phi_q, psi, Embed(g).value())});
  }
  return std::move(heap).Take();
}

Result<std::vector<ServingSession::Scored>> ServingSession::SimilarTopK(
    db::FactId query, size_t k, const SimilarOptions& options) const {
  STEDB_ASSIGN_OR_RETURN(Span<const double> v, Embed(query));
  return SimilarTopK(v, k, options, query);
}

Result<std::vector<ServingSession::Scored>> ServingSession::SimilarTopK(
    Span<const double> query, size_t k, const SimilarOptions& options,
    db::FactId exclude) const {
  if (query.size() != dim()) {
    return Status::InvalidArgument(
        "SimilarTopK: query dimension " + std::to_string(query.size()) +
        " != served dimension " + std::to_string(dim()));
  }
  const ann::Metric metric = similarity_metric();
  ml::TopKHeap<Scored> heap(k);
  if (options.approx && ann_view_.valid() && k > 0) {
    // Sublinear path: beam-search the mmap'd graph. Ask for enough hits
    // that dropping the excluded fact and any overlay-shadowed nodes
    // (whose indexed vectors are stale) still leaves k survivors.
    const size_t want = k + 1 + overlay_overrides_;
    const size_t base_ef =
        options.ef_search != 0 ? options.ef_search : kDefaultEfSearch;
    const ann::VectorSource vectors{snapshot_.phi_records() + 8,
                                    snapshot_.phi_stride()};
    ann::SearchStats stats;
    const std::vector<ann::ScoredNode> hits = ann_view_.Search(
        query.data(), want, std::max(base_ef, want), vectors, &stats);
    Metrics().ann_visited_nodes.Observe(static_cast<double>(stats.visited));
    for (const ann::ScoredNode& hit : hits) {
      const db::FactId f = snapshot_.fact_at(hit.node);
      if (f == exclude || overlay_.count(f) != 0) continue;
      heap.Push({f, hit.score});
    }
  } else {
    // Exact scan of the snapshot residents — no index, approx=false, or
    // k==0. Scores go through the same ann::Score → la::kernels path the
    // graph search uses, so exact and approximate results are
    // bit-comparable.
    for (size_t i = 0; i < snapshot_.num_embedded(); ++i) {
      const db::FactId f = snapshot_.fact_at(i);
      if (f == exclude || overlay_.count(f) != 0) continue;
      heap.Push({f, ann::Score(metric, query, snapshot_.phi_at(i))});
    }
  }
  // WAL-resident facts (and journal overwrites of indexed facts) are
  // merged from an exact side scan on both paths: the persisted graph
  // predates them, but freshness is never sacrificed for speed.
  for (const auto& [f, row] : overlay_) {
    if (f == exclude) continue;
    const Span<const double> v(overlay_data_.data() + row * dim(), dim());
    heap.Push({f, ann::Score(metric, query, v)});
  }
  return std::move(heap).Take();
}

std::vector<db::FactId> ServingSession::ServedFacts() const {
  std::vector<db::FactId> facts;
  facts.reserve(snapshot_.num_embedded() + overlay_.size());
  for (size_t i = 0; i < snapshot_.num_embedded(); ++i) {
    facts.push_back(snapshot_.fact_at(i));
  }
  for (const auto& [f, row] : overlay_) {
    (void)row;
    if (snapshot_.phi(f).empty()) facts.push_back(f);
  }
  std::sort(facts.begin(), facts.end());
  return facts;
}

Status ServingSession::EmbedBatch(Span<const db::FactId> facts,
                                  la::MatrixView out) const {
  if (out.rows() != facts.size() || out.cols() != dim()) {
    return Status::InvalidArgument(
        "EmbedBatch: output shape must be facts x dim");
  }
  // Same gather helper as the in-memory embedders: large batches fan out
  // over a ParallelRunner (threads steered by STEDB_THREADS, like every
  // 0-default in this codebase).
  const size_t bad = la::GatherRows(
      facts.size(), dim(), /*threads=*/0, out,
      [&](size_t i) -> const double* {
        auto it = overlay_.find(facts[i]);
        if (it != overlay_.end()) {
          return overlay_data_.data() + it->second * dim();
        }
        Span<const double> v = snapshot_.phi(facts[i]);
        return v.empty() ? nullptr : v.data();
      });
  if (bad != facts.size()) {
    return Status::NotFound("fact " + std::to_string(facts[bad]) +
                            " is not in the served store");
  }
  return Status::OK();
}

}  // namespace stedb::api
