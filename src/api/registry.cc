#include "src/api/registry.h"

#include <map>
#include <mutex>

#include "src/common/string_util.h"

namespace stedb::api {
namespace internal {

// Defined in builtin_methods.cc. Called from the registry under its lock
// so the built-ins are present before any user-visible operation; the
// explicit call (rather than a static initializer in the adapter TU) keeps
// registration immune to static-library dead-stripping.
void RegisterBuiltinMethods();

}  // namespace internal

namespace {

std::mutex& RegistryMutex() {
  static std::mutex mu;
  return mu;
}

std::map<std::string, MethodFactory>& Registry() {
  static std::map<std::string, MethodFactory> registry;
  return registry;
}

/// Must be called with RegistryMutex held.
void EnsureBuiltinsLocked() {
  static bool done = false;
  if (!done) {
    done = true;  // set first: RegisterBuiltinMethods re-enters Register
    internal::RegisterBuiltinMethods();
  }
}

/// Registration body shared by the public entry point and the built-in
/// bootstrap (which already holds the lock).
Status RegisterLocked(const std::string& name, MethodFactory factory) {
  if (name.empty()) {
    return Status::InvalidArgument("method name must not be empty");
  }
  if (factory == nullptr) {
    return Status::InvalidArgument("method factory must not be null");
  }
  const std::string key = ToLower(name);
  auto [it, inserted] = Registry().emplace(key, std::move(factory));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("embedding method '" + key +
                                 "' is already registered");
  }
  return Status::OK();
}

}  // namespace

namespace internal {

// Built-in registration path: the caller (RegisterBuiltinMethods) runs
// under the registry lock already.
Status RegisterMethodLocked(const std::string& name, MethodFactory factory) {
  return RegisterLocked(name, std::move(factory));
}

}  // namespace internal

Status RegisterMethod(const std::string& name, MethodFactory factory) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  EnsureBuiltinsLocked();
  return RegisterLocked(name, std::move(factory));
}

Result<std::unique_ptr<Embedder>> CreateMethod(const std::string& name,
                                               const MethodOptions& options,
                                               uint64_t seed) {
  MethodFactory factory;
  {
    std::lock_guard<std::mutex> lock(RegistryMutex());
    EnsureBuiltinsLocked();
    auto it = Registry().find(ToLower(name));
    if (it == Registry().end()) {
      std::string known;
      for (const auto& [key, unused] : Registry()) {
        if (!known.empty()) known += ", ";
        known += key;
      }
      return Status::NotFound("unknown embedding method '" + name +
                              "' (registered: " + known + ")");
    }
    factory = it->second;
  }
  // Run the factory outside the lock: factories may be user code.
  std::unique_ptr<Embedder> method = factory(options, seed);
  if (method == nullptr) {
    return Status::Internal("factory for method '" + name +
                            "' returned null");
  }
  return method;
}

std::vector<std::string> RegisteredMethods() {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  EnsureBuiltinsLocked();
  std::vector<std::string> names;
  names.reserve(Registry().size());
  for (const auto& [key, unused] : Registry()) names.push_back(key);
  return names;  // std::map iterates sorted
}

}  // namespace stedb::api
