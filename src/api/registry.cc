#include "src/api/registry.h"

#include <map>
#include <utility>

#include "src/common/string_util.h"
#include "src/common/thread_annotations.h"

// stedb:deterministic-output — RegisteredMethods() and the "registered:"
// diagnostics are user-visible sorted lists; the registry stays a
// std::map and iteration below must stay over ordered containers only.

namespace stedb::api {
namespace internal {

// Defined in builtin_methods.cc. Enumerated from the registry under its
// lock so the built-ins are present before any user-visible operation;
// the explicit call (rather than a static initializer in the adapter TU)
// keeps registration immune to static-library dead-stripping.
std::vector<std::pair<std::string, MethodFactory>> BuiltinMethods();

}  // namespace internal

namespace {

Mutex& RegistryMutex() {
  static Mutex mu;
  return mu;
}

std::map<std::string, MethodFactory>& Registry()
    STEDB_REQUIRES(RegistryMutex()) {
  static std::map<std::string, MethodFactory> registry;
  return registry;
}

/// Registration body shared by the public entry point and the built-in
/// bootstrap. Forward declaration: EnsureBuiltinsLocked uses it.
Status RegisterLocked(const std::string& name, MethodFactory factory)
    STEDB_REQUIRES(RegistryMutex());

void EnsureBuiltinsLocked() STEDB_REQUIRES(RegistryMutex()) {
  static bool done = false;
  if (!done) {
    done = true;
    // Failure is impossible here (fresh registry, non-null factories);
    // the statuses are consumed to keep the call warning-clean.
    for (auto& [name, factory] : internal::BuiltinMethods()) {
      (void)RegisterLocked(name, std::move(factory));
    }
  }
}

Status RegisterLocked(const std::string& name, MethodFactory factory) {
  if (name.empty()) {
    return Status::InvalidArgument("method name must not be empty");
  }
  if (factory == nullptr) {
    return Status::InvalidArgument("method factory must not be null");
  }
  const std::string key = ToLower(name);
  auto [it, inserted] = Registry().emplace(key, std::move(factory));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("embedding method '" + key +
                                 "' is already registered");
  }
  return Status::OK();
}

}  // namespace

Status RegisterMethod(const std::string& name, MethodFactory factory) {
  MutexLock lock(RegistryMutex());
  EnsureBuiltinsLocked();
  return RegisterLocked(name, std::move(factory));
}

Result<std::unique_ptr<Embedder>> CreateMethod(const std::string& name,
                                               const MethodOptions& options,
                                               uint64_t seed) {
  MethodFactory factory;
  {
    MutexLock lock(RegistryMutex());
    EnsureBuiltinsLocked();
    auto it = Registry().find(ToLower(name));
    if (it == Registry().end()) {
      std::string known;
      for (const auto& [key, unused] : Registry()) {
        if (!known.empty()) known += ", ";
        known += key;
      }
      return Status::NotFound("unknown embedding method '" + name +
                              "' (registered: " + known + ")");
    }
    factory = it->second;
  }
  // Run the factory outside the lock: factories may be user code.
  std::unique_ptr<Embedder> method = factory(options, seed);
  if (method == nullptr) {
    return Status::Internal("factory for method '" + name +
                            "' returned null");
  }
  return method;
}

std::vector<std::string> RegisteredMethods() {
  MutexLock lock(RegistryMutex());
  EnsureBuiltinsLocked();
  std::vector<std::string> names;
  names.reserve(Registry().size());
  for (const auto& [key, unused] : Registry()) names.push_back(key);
  return names;  // std::map iterates sorted
}

}  // namespace stedb::api
