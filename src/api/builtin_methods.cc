// The two built-in embedding methods of the paper, adapted to the
// api::Embedder interface and registered with the method registry. This is
// the only file that knows both concrete embedders; everything above it
// (experiments, benches, examples, serving) goes through the registry.
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "src/api/embedder.h"
#include "src/api/registry.h"
#include "src/fwd/codec.h"
#include "src/n2v/codec.h"
#include "src/store/embedding_store.h"
#include "src/store/snapshot.h"
#include "src/store/stored_model.h"

namespace stedb::api {
namespace {

/// ForwardEmbedder adapter.
class ForwardMethod : public Embedder {
 public:
  ForwardMethod(const MethodOptions& options, uint64_t seed)
      : config_(options.forward) {
    config_.seed = seed;
  }

  Status TrainStatic(const db::Database* database, db::RelationId rel,
                     const AttrKeySet& excluded) override {
    auto res =
        fwd::ForwardEmbedder::TrainStatic(database, rel, excluded, config_);
    if (!res.ok()) return res.status();
    embedder_.emplace(std::move(res).value());
    return Status::OK();
  }

  Status ExtendToFacts(const std::vector<db::FactId>& new_facts) override {
    if (!embedder_.has_value()) {
      return Status::FailedPrecondition("TrainStatic was not called");
    }
    return embedder_->ExtendToFacts(new_facts);
  }

  Result<la::Vector> Embed(db::FactId f) const override {
    if (!embedder_.has_value()) {
      return Status::FailedPrecondition("TrainStatic was not called");
    }
    return embedder_->Embed(f);
  }

  Status EmbedBatch(Span<const db::FactId> facts,
                    la::MatrixView out) const override {
    if (!embedder_.has_value()) {
      return Status::FailedPrecondition("TrainStatic was not called");
    }
    return embedder_->EmbedBatch(facts, out);
  }

  Status AttachJournal(const std::string& dir) override {
    if (!embedder_.has_value()) {
      return Status::FailedPrecondition("TrainStatic was not called");
    }
    auto created = fwd::CreateForwardStore(dir, embedder_->model());
    if (!created.ok()) return created.status();
    // unique_ptr pins the store's address — the sink captures it.
    store_ =
        std::make_unique<store::EmbeddingStore>(std::move(created).value());
    embedder_->set_extension_sink(store_->MakeSink());
    return Status::OK();
  }

  Result<double> VerifyJournal() const override {
    if (store_ == nullptr) {
      return Status::FailedPrecondition("AttachJournal was not called");
    }
    STEDB_RETURN_IF_ERROR(store_->Sync());
    // Cold recovery path: re-open the directory exactly as a restarted
    // process would and diff against the live model.
    auto reopened = store::EmbeddingStore::Open(store_->dir());
    if (!reopened.ok()) return reopened.status();
    return store::ModelMaxAbsDiff(reopened.value().model(),
                                  embedder_->model());
  }

  std::string Name() const override { return "FoRWaRD"; }

  size_t dim() const override {
    return embedder_.has_value() ? embedder_->dim() : 0;
  }

 private:
  fwd::ForwardConfig config_;
  std::optional<fwd::ForwardEmbedder> embedder_;
  std::unique_ptr<store::EmbeddingStore> store_;
};

/// Node2VecEmbedding adapter. The label column is excluded from the graph
/// (GraphOptions) rather than from T(R, lmax).
class Node2VecMethod : public Embedder {
 public:
  Node2VecMethod(const MethodOptions& options, uint64_t seed)
      : config_(options.node2vec) {
    config_.seed = seed;
  }

  Status TrainStatic(const db::Database* database, db::RelationId rel,
                     const AttrKeySet& excluded) override {
    (void)rel;  // Node2Vec embeds every fact; the relation is not special.
    for (const fwd::AttrKey& k : excluded) {
      config_.graph.excluded_columns.insert({k.rel, k.attr});
    }
    auto res = n2v::Node2VecEmbedding::TrainStatic(database, config_);
    if (!res.ok()) return res.status();
    embedding_.emplace(std::move(res).value());
    return Status::OK();
  }

  Status ExtendToFacts(const std::vector<db::FactId>& new_facts) override {
    if (!embedding_.has_value()) {
      return Status::FailedPrecondition("TrainStatic was not called");
    }
    return embedding_->ExtendToFacts(new_facts);
  }

  Result<la::Vector> Embed(db::FactId f) const override {
    if (!embedding_.has_value()) {
      return Status::FailedPrecondition("TrainStatic was not called");
    }
    return embedding_->Embed(f);
  }

  Status EmbedBatch(Span<const db::FactId> facts,
                    la::MatrixView out) const override {
    if (!embedding_.has_value()) {
      return Status::FailedPrecondition("TrainStatic was not called");
    }
    return embedding_->EmbedBatch(facts, out);
  }

  Status AttachJournal(const std::string& dir) override {
    if (!embedding_.has_value()) {
      return Status::FailedPrecondition("TrainStatic was not called");
    }
    // Snapshot the served state (every embedded fact's current vector)
    // through the Node2Vec codec; every later extension lands in the WAL
    // via the sink, with its final — frozen-from-then-on — vector.
    auto created = store::EmbeddingStore::Create(
        dir, "node2vec", n2v::SnapshotVectors(*embedding_));
    if (!created.ok()) return created.status();
    // unique_ptr pins the store's address — the sink captures it.
    store_ =
        std::make_unique<store::EmbeddingStore>(std::move(created).value());
    embedding_->set_extension_sink(store_->MakeSink());
    return Status::OK();
  }

  Result<double> VerifyJournal() const override {
    if (store_ == nullptr) {
      return Status::FailedPrecondition("AttachJournal was not called");
    }
    STEDB_RETURN_IF_ERROR(store_->Sync());
    // Cold recovery path: re-open the directory exactly as a restarted
    // process would and diff against the live per-fact vectors.
    auto reopened = store::EmbeddingStore::Open(store_->dir());
    if (!reopened.ok()) return reopened.status();
    return store::StoredModelMaxAbsDiff(reopened.value().model(),
                                        *n2v::SnapshotVectors(*embedding_));
  }

  std::string Name() const override { return "Node2Vec"; }

  size_t dim() const override {
    return embedding_.has_value() ? embedding_->dim() : 0;
  }

 private:
  n2v::Node2VecConfig config_;
  std::optional<n2v::Node2VecEmbedding> embedding_;
  std::unique_ptr<store::EmbeddingStore> store_;
};

}  // namespace

namespace internal {

// Enumerated (not self-registering) so the registry TU can install the
// built-ins under its own lock without a cross-TU "caller holds the
// lock" contract the thread-safety analysis cannot see.
std::vector<std::pair<std::string, MethodFactory>> BuiltinMethods() {
  std::vector<std::pair<std::string, MethodFactory>> methods;
  methods.emplace_back(
      "forward",
      [](const MethodOptions& options, uint64_t seed)
          -> std::unique_ptr<Embedder> {
        return std::make_unique<ForwardMethod>(options, seed);
      });
  methods.emplace_back(
      "node2vec",
      [](const MethodOptions& options, uint64_t seed)
          -> std::unique_ptr<Embedder> {
        return std::make_unique<Node2VecMethod>(options, seed);
      });
  return methods;
}

}  // namespace internal
}  // namespace stedb::api
