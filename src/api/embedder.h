#ifndef STEDB_API_EMBEDDER_H_
#define STEDB_API_EMBEDDER_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/span.h"
#include "src/common/status.h"
#include "src/db/database.h"
#include "src/fwd/forward.h"
#include "src/la/matrix.h"
#include "src/n2v/node2vec.h"

namespace stedb::api {

/// Attribute keys the embedding must not see (the prediction label);
/// shared with the FoRWaRD layer, where the type originates.
using AttrKeySet = fwd::AttrKeySet;

/// Hyperparameters handed to a method factory. The two built-in methods
/// read their own sub-config and ignore the other; externally registered
/// methods can carry free-form parameters in `extra` without the core
/// API growing a field per plugin.
struct MethodOptions {
  fwd::ForwardConfig forward;
  n2v::Node2VecConfig node2vec;
  /// Untyped parameter bag for registered third-party methods.
  std::map<std::string, std::string> extra;
};

/// The engine's uniform embedding-method interface: one instance = one
/// (trainable, dynamically extensible, durably journal-able) embedding of
/// one database. Built-in implementations (FoRWaRD, Node2Vec) register
/// themselves with the method registry (see registry.h); external code can
/// implement and register additional methods without touching this header.
///
/// Lifecycle: TrainStatic once, then any interleaving of ExtendToFacts /
/// Embed / EmbedBatch. The stability contract of the paper holds for every
/// implementation: a vector returned once is never changed by a later
/// extension.
class Embedder {
 public:
  virtual ~Embedder() = default;

  /// Static phase over the database's current contents. `rel` is the
  /// prediction relation, `excluded` the label attribute(s) the embedding
  /// must not see. The database must outlive this object.
  virtual Status TrainStatic(const db::Database* database, db::RelationId rel,
                             const AttrKeySet& excluded) = 0;

  /// Dynamic phase: the facts (all relations) just inserted into the
  /// database. Must leave every previously returned embedding unchanged.
  virtual Status ExtendToFacts(const std::vector<db::FactId>& new_facts) = 0;

  /// Embedding of a single fact; NotFound for facts never embedded.
  virtual Result<la::Vector> Embed(db::FactId f) const = 0;

  /// Batch read: fills `out` with one embedding per requested fact, row i
  /// holding φ(facts[i]). `out` must be facts.size() x dim(). Fails with
  /// InvalidArgument on a shape mismatch and NotFound when any fact was
  /// never embedded; `out` contents are unspecified after an error. The
  /// built-in methods parallelize large batches over a ParallelRunner —
  /// this is the hot path feature extraction and serving go through.
  /// The default implementation loops the scalar Embed, so registered
  /// methods get the batch surface for free.
  virtual Status EmbedBatch(Span<const db::FactId> facts,
                            la::MatrixView out) const;

  /// Starts journaling this method's model into a store::EmbeddingStore at
  /// `dir`: snapshot of the trained model now, one WAL record per future
  /// extension. Must be called after TrainStatic. Both built-ins support
  /// this via their registered store::ModelCodec; the default is
  /// FailedPrecondition for third-party methods that registered no codec.
  virtual Status AttachJournal(const std::string& dir) {
    (void)dir;
    return Status::FailedPrecondition(Name() + " does not support journaling");
  }

  /// Re-opens the attached journal cold (snapshot + WAL replay, as a crash
  /// recovery would) and returns the max absolute deviation between the
  /// recovered and the in-memory embeddings — 0.0 when durability is
  /// bit-exact.
  virtual Result<double> VerifyJournal() const {
    return Status::FailedPrecondition(Name() + " does not support journaling");
  }

  /// Display name ("FoRWaRD", "Node2Vec", ...), used in experiment reports.
  virtual std::string Name() const = 0;

  /// Embedding dimension; 0 before TrainStatic.
  virtual size_t dim() const = 0;
};

}  // namespace stedb::api

#endif  // STEDB_API_EMBEDDER_H_
