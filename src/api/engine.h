#ifndef STEDB_API_ENGINE_H_
#define STEDB_API_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/api/embedder.h"
#include "src/api/registry.h"
#include "src/common/status.h"

namespace stedb::api {

/// The embedding engine's front door: resolves an embedding method by name
/// through the registry, trains it, and exposes the full read/extend/
/// journal surface behind one value type.
///
///   auto engine = api::Engine::Train(&db, "forward", rel, excluded,
///                                    options, /*seed=*/1);
///   la::Vector v = engine->Embed(f).value();
///   la::Matrix m = engine->EmbedBatch(fact_ids).value();   // batch path
///   engine->AttachJournal("/var/lib/stedb/genes");         // durability
///   ... insert facts ...
///   engine->ExtendToFacts(new_ids);                        // stable extend
///
/// For process-separated serving (N readers over one store directory) see
/// api::ServingSession, which reads the journal this engine writes.
class Engine {
 public:
  /// Creates the named method via the registry and runs its static phase.
  /// `method` is matched case-insensitively ("forward", "node2vec", or any
  /// registered name). The database must outlive the engine.
  static Result<Engine> Train(const db::Database* database,
                              const std::string& method, db::RelationId rel,
                              const AttrKeySet& excluded,
                              const MethodOptions& options, uint64_t seed);

  /// Extends the embedding to newly inserted facts; previously returned
  /// vectors never change.
  Status ExtendToFacts(const std::vector<db::FactId>& new_facts) {
    return embedder_->ExtendToFacts(new_facts);
  }

  /// Embedding of one fact (copying); NotFound when never embedded.
  Result<la::Vector> Embed(db::FactId f) const { return embedder_->Embed(f); }

  /// Batch read into caller storage: `out` must be facts.size() x dim().
  Status EmbedBatch(Span<const db::FactId> facts, la::MatrixView out) const {
    return embedder_->EmbedBatch(facts, out);
  }

  /// Allocating convenience overload: one row per fact.
  Result<la::Matrix> EmbedBatch(Span<const db::FactId> facts) const;

  /// Journals the model into a store::EmbeddingStore at `dir` (snapshot
  /// now, WAL record per future extension). FailedPrecondition for methods
  /// without a durable format.
  Status AttachJournal(const std::string& dir) {
    return embedder_->AttachJournal(dir);
  }

  /// Max deviation between the journal's cold-recovery view and the live
  /// model (0.0 = bit-exact).
  Result<double> VerifyJournal() const { return embedder_->VerifyJournal(); }

  /// The method's display name ("FoRWaRD", "Node2Vec", ...).
  std::string method() const { return embedder_->Name(); }

  size_t dim() const { return embedder_->dim(); }

  /// Escape hatch to the underlying method instance.
  Embedder* embedder() { return embedder_.get(); }
  const Embedder* embedder() const { return embedder_.get(); }

 private:
  explicit Engine(std::unique_ptr<Embedder> embedder)
      : embedder_(std::move(embedder)) {}

  std::unique_ptr<Embedder> embedder_;
};

}  // namespace stedb::api

#endif  // STEDB_API_ENGINE_H_
