#include "src/api/engine.h"

namespace stedb::api {

Result<Engine> Engine::Train(const db::Database* database,
                             const std::string& method, db::RelationId rel,
                             const AttrKeySet& excluded,
                             const MethodOptions& options, uint64_t seed) {
  if (database == nullptr) {
    return Status::InvalidArgument("Engine::Train: database must not be null");
  }
  STEDB_ASSIGN_OR_RETURN(std::unique_ptr<Embedder> embedder,
                         CreateMethod(method, options, seed));
  STEDB_RETURN_IF_ERROR(embedder->TrainStatic(database, rel, excluded));
  return Engine(std::move(embedder));
}

Result<la::Matrix> Engine::EmbedBatch(Span<const db::FactId> facts) const {
  la::Matrix out(facts.size(), dim());
  STEDB_RETURN_IF_ERROR(embedder_->EmbedBatch(facts, out));
  return out;
}

}  // namespace stedb::api
