#ifndef STEDB_DB_VALUE_H_
#define STEDB_DB_VALUE_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

namespace stedb::db {

/// Attribute data types supported by the schema layer.
enum class AttrType { kInt = 0, kReal = 1, kText = 2 };

const char* AttrTypeName(AttrType type);

/// A single attribute value: the distinguished null, a 64-bit integer, a
/// double, or a string. Values are totally ordered (null < int < real < text,
/// then by content) so they can key ordered containers, and hashable so they
/// can key the database indexes.
class Value {
 public:
  /// Constructs the null value (the paper's distinguished ⊥).
  Value() : v_(std::monostate{}) {}
  explicit Value(int64_t i) : v_(i) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}
  explicit Value(const char* s) : v_(std::string(s)) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t i) { return Value(i); }
  static Value Real(double d) { return Value(d); }
  static Value Text(std::string s) { return Value(std::move(s)); }

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_real() const { return std::holds_alternative<double>(v_); }
  bool is_text() const { return std::holds_alternative<std::string>(v_); }

  /// Typed accessors; callers must check the kind first.
  int64_t as_int() const { return std::get<int64_t>(v_); }
  double as_real() const { return std::get<double>(v_); }
  const std::string& as_text() const { return std::get<std::string>(v_); }

  /// Numeric view: ints and reals as double (used by the Gaussian kernel).
  /// Returns 0.0 for null/text.
  double AsNumber() const;

  /// True when this value's dynamic kind matches the attribute type
  /// (null matches every type).
  bool MatchesType(AttrType type) const;

  /// Render for CSV/debugging; null renders as the empty string.
  std::string ToString() const;

  /// Parses `text` into a value of attribute type `type`; empty text parses
  /// to null. Returns null on unparsable numerics (mirrors lenient CSV
  /// ingestion; strict parsing lives in csv.h).
  static Value Parse(const std::string& text, AttrType type);

  bool operator==(const Value& other) const { return v_ == other.v_; }
  bool operator!=(const Value& other) const { return v_ != other.v_; }
  bool operator<(const Value& other) const { return v_ < other.v_; }

  size_t Hash() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> v_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

/// A tuple of values (e.g., a composite key or FK image) with hashing.
using ValueTuple = std::vector<Value>;

struct ValueTupleHash {
  size_t operator()(const ValueTuple& t) const;
};

/// True when any component of the tuple is null (such FK images are ignored
/// per the paper's convention).
bool HasNull(const ValueTuple& t);

std::string ToString(const ValueTuple& t);

}  // namespace stedb::db

#endif  // STEDB_DB_VALUE_H_
