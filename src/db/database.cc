#include "src/db/database.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace stedb::db {

const std::vector<FactId> Database::kEmptyFactList;

Database::Database(std::shared_ptr<const Schema> schema)
    : schema_(std::move(schema)) {
  const size_t nrel = schema_->num_relations();
  rel_facts_.resize(nrel);
  key_index_.resize(nrel);
  out_fks_.resize(nrel);
  in_fks_.resize(nrel);
  for (size_t r = 0; r < nrel; ++r) {
    out_fks_[r] = schema_->OutgoingFks(static_cast<RelationId>(r));
    in_fks_[r] = schema_->IncomingFks(static_cast<RelationId>(r));
  }
}

ValueTuple Database::Project(FactId id,
                             const std::vector<AttrId>& attrs) const {
  ValueTuple out;
  out.reserve(attrs.size());
  for (AttrId a : attrs) out.push_back(facts_[id].values[a]);
  return out;
}

Status Database::ValidateFact(const Fact& fact) const {
  if (fact.rel < 0 ||
      static_cast<size_t>(fact.rel) >= schema_->num_relations()) {
    return Status::OutOfRange("relation id out of range");
  }
  const RelationSchema& rel = schema_->relation(fact.rel);
  if (fact.values.size() != rel.arity()) {
    return Status::InvalidArgument(
        "arity mismatch for " + rel.name + ": got " +
        std::to_string(fact.values.size()) + ", want " +
        std::to_string(rel.arity()));
  }
  for (size_t i = 0; i < fact.values.size(); ++i) {
    if (!fact.values[i].MatchesType(rel.attrs[i].type)) {
      return Status::InvalidArgument("type mismatch on " + rel.name + "." +
                                     rel.attrs[i].name);
    }
  }
  for (AttrId k : rel.key) {
    if (fact.values[k].is_null()) {
      return Status::ConstraintViolation("null key attribute " + rel.name +
                                         "." + rel.attrs[k].name);
    }
  }
  return Status::OK();
}

Result<FactId> Database::Insert(Fact fact) {
  STEDB_RETURN_IF_ERROR(ValidateFact(fact));
  const RelationSchema& rel = schema_->relation(fact.rel);

  ValueTuple key;
  key.reserve(rel.key.size());
  for (AttrId k : rel.key) key.push_back(fact.values[k]);
  auto& kindex = key_index_[fact.rel];
  if (kindex.count(key) > 0) {
    return Status::ConstraintViolation("duplicate key " + ToString(key) +
                                       " in relation " + rel.name);
  }

  // Resolve every outgoing FK before mutating anything, so a constraint
  // failure leaves the database untouched.
  const std::vector<FkId>& outs = out_fks_[fact.rel];
  std::vector<FactId> fwd(outs.size(), kNoFact);
  for (size_t j = 0; j < outs.size(); ++j) {
    const ForeignKey& fk = schema_->fk(outs[j]);
    ValueTuple image;
    image.reserve(fk.from_attrs.size());
    for (AttrId a : fk.from_attrs) image.push_back(fact.values[a]);
    if (HasNull(image)) continue;  // FK ignored on null image (paper §II).
    FactId target = FindByKey(fk.to_rel, image);
    if (target == kNoFact) {
      return Status::ConstraintViolation(
          "dangling FK " + rel.name + " -> " +
          schema_->relation(fk.to_rel).name + " on " + ToString(image));
    }
    fwd[j] = target;
  }

  const FactId id = static_cast<FactId>(facts_.size());
  facts_.push_back(std::move(fact));
  alive_.push_back(1);
  ++live_count_;
  pos_in_rel_.push_back(static_cast<int32_t>(rel_facts_[facts_[id].rel].size()));
  rel_facts_[facts_[id].rel].push_back(id);
  kindex.emplace(std::move(key), id);

  fwd_refs_.push_back(std::move(fwd));
  inbound_refs_.emplace_back(in_fks_[facts_[id].rel].size());

  // Register this fact in the inbound lists of everything it references.
  const std::vector<FkId>& outs2 = out_fks_[facts_[id].rel];
  for (size_t j = 0; j < outs2.size(); ++j) {
    FactId target = fwd_refs_[id][j];
    if (target == kNoFact) continue;
    int pos = InFkPos(facts_[target].rel, outs2[j]);
    inbound_refs_[target][pos].push_back(id);
  }
  return id;
}

Result<FactId> Database::Insert(const std::string& rel_name,
                                ValueTuple values) {
  RelationId rel = schema_->RelationIndex(rel_name);
  if (rel < 0) return Status::NotFound("relation '" + rel_name + "'");
  Fact f;
  f.rel = rel;
  f.values = std::move(values);
  return Insert(std::move(f));
}

Result<std::vector<FactId>> Database::InsertBatch(std::vector<Fact> facts) {
  // Work on a copy so a failed batch leaves this database untouched.
  Database scratch = *this;
  std::vector<FactId> ids(facts.size(), kNoFact);
  std::vector<size_t> pending(facts.size());
  for (size_t i = 0; i < pending.size(); ++i) pending[i] = i;

  while (!pending.empty()) {
    std::vector<size_t> retry;
    size_t inserted = 0;
    for (size_t i : pending) {
      auto r = scratch.Insert(facts[i]);
      if (r.ok()) {
        ids[i] = r.value();
        ++inserted;
      } else if (r.status().code() == StatusCode::kConstraintViolation &&
                 r.status().message().rfind("dangling", 0) == 0) {
        retry.push_back(i);
      } else {
        return r.status();
      }
    }
    if (inserted == 0) {
      return Status::ConstraintViolation(
          "batch has unresolvable foreign-key dependencies");
    }
    pending = std::move(retry);
  }
  *this = std::move(scratch);
  return ids;
}

Status Database::Delete(FactId id) {
  if (!IsLive(id)) return Status::NotFound("fact id not live");
  if (InboundCount(id) > 0) {
    return Status::FailedPrecondition(
        "fact is still referenced; delete referencing facts first (or use "
        "CascadeDelete)");
  }
  const Fact& fact = facts_[id];

  // Unregister from inbound lists of referenced facts.
  const std::vector<FkId>& outs = out_fks_[fact.rel];
  for (size_t j = 0; j < outs.size(); ++j) {
    FactId target = fwd_refs_[id][j];
    if (target == kNoFact) continue;
    int pos = InFkPos(facts_[target].rel, outs[j]);
    std::vector<FactId>& lst = inbound_refs_[target][pos];
    auto it = std::find(lst.begin(), lst.end(), id);
    if (it != lst.end()) {
      *it = lst.back();
      lst.pop_back();
    }
  }

  // Key index.
  const RelationSchema& rel = schema_->relation(fact.rel);
  ValueTuple key;
  for (AttrId k : rel.key) key.push_back(fact.values[k]);
  key_index_[fact.rel].erase(key);

  // Relation list swap-removal.
  std::vector<FactId>& lst = rel_facts_[fact.rel];
  int32_t pos = pos_in_rel_[id];
  FactId moved = lst.back();
  lst[pos] = moved;
  pos_in_rel_[moved] = pos;
  lst.pop_back();

  alive_[id] = 0;
  --live_count_;
  fwd_refs_[id].clear();
  inbound_refs_[id].clear();
  return Status::OK();
}

FactId Database::FindByKey(RelationId rel, const ValueTuple& key) const {
  const auto& index = key_index_[rel];
  auto it = index.find(key);
  return it == index.end() ? kNoFact : it->second;
}

FactId Database::Referenced(FactId id, FkId fk) const {
  int pos = OutFkPos(facts_[id].rel, fk);
  if (pos < 0) return kNoFact;
  return fwd_refs_[id][pos];
}

const std::vector<FactId>& Database::Referencing(FactId id, FkId fk) const {
  int pos = InFkPos(facts_[id].rel, fk);
  if (pos < 0) return kEmptyFactList;
  return inbound_refs_[id][pos];
}

size_t Database::InboundCount(FactId id) const {
  size_t total = 0;
  for (const std::vector<FactId>& lst : inbound_refs_[id]) {
    total += lst.size();
  }
  return total;
}

int Database::OutFkPos(RelationId rel, FkId fk) const {
  const std::vector<FkId>& outs = out_fks_[rel];
  for (size_t j = 0; j < outs.size(); ++j) {
    if (outs[j] == fk) return static_cast<int>(j);
  }
  return -1;
}

int Database::InFkPos(RelationId rel, FkId fk) const {
  const std::vector<FkId>& ins = in_fks_[rel];
  for (size_t j = 0; j < ins.size(); ++j) {
    if (ins[j] == fk) return static_cast<int>(j);
  }
  return -1;
}

std::vector<Value> Database::ActiveDomain(RelationId rel, AttrId attr) const {
  std::unordered_set<Value, ValueHash> seen;
  std::vector<Value> out;
  for (FactId id : rel_facts_[rel]) {
    const Value& v = facts_[id].values[attr];
    if (v.is_null()) continue;
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

Status Database::ValidateAll() const {
  for (size_t r = 0; r < schema_->num_relations(); ++r) {
    std::unordered_set<ValueTuple, ValueTupleHash> keys;
    for (FactId id : rel_facts_[r]) {
      STEDB_RETURN_IF_ERROR(ValidateFact(facts_[id]));
      ValueTuple key = Project(id, schema_->relation(r).key);
      if (!keys.insert(key).second) {
        return Status::ConstraintViolation("duplicate key in " +
                                           schema_->relation(r).name);
      }
    }
  }
  for (size_t f = 0; f < schema_->num_foreign_keys(); ++f) {
    const ForeignKey& fk = schema_->fk(static_cast<FkId>(f));
    for (FactId id : rel_facts_[fk.from_rel]) {
      ValueTuple image = Project(id, fk.from_attrs);
      if (HasNull(image)) continue;
      if (FindByKey(fk.to_rel, image) == kNoFact) {
        return Status::ConstraintViolation(
            "dangling FK from " + schema_->relation(fk.from_rel).name);
      }
    }
  }
  return Status::OK();
}

std::string Database::StatsString() const {
  std::ostringstream os;
  for (size_t r = 0; r < schema_->num_relations(); ++r) {
    os << schema_->relation(r).name << ": " << rel_facts_[r].size()
       << " tuples\n";
  }
  os << "total: " << live_count_ << " tuples\n";
  return os.str();
}

}  // namespace stedb::db
