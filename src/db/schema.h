#ifndef STEDB_DB_SCHEMA_H_
#define STEDB_DB_SCHEMA_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/db/value.h"

namespace stedb::db {

/// Index of a relation within a Schema.
using RelationId = int;
/// Index of an attribute within its relation.
using AttrId = int;
/// Index of a foreign key within a Schema.
using FkId = int;

/// A named, typed attribute of a relation schema.
struct Attribute {
  std::string name;
  AttrType type = AttrType::kText;
};

/// A relation schema R(A1, ..., Ak) with a unique key key(R) ⊆ {A1..Ak}.
struct RelationSchema {
  std::string name;
  std::vector<Attribute> attrs;
  /// Attribute positions forming the key; must be non-empty and unique.
  std::vector<AttrId> key;

  /// Position of the attribute with the given name, or -1.
  AttrId AttrIndex(const std::string& attr_name) const;
  size_t arity() const { return attrs.size(); }
  bool IsKeyAttr(AttrId a) const;
};

/// A foreign-key constraint R[B1..Bl] ⊆ S[C1..Cl] where {C1..Cl} = key(S).
struct ForeignKey {
  RelationId from_rel = -1;            ///< R, the referencing relation.
  std::vector<AttrId> from_attrs;      ///< B1..Bl, attributes of R.
  RelationId to_rel = -1;              ///< S, the referenced relation.
  std::vector<AttrId> to_attrs;        ///< C1..Cl = key(S).
};

/// A database schema: a collection of relation schemas plus FK constraints.
/// Built via AddRelation / AddForeignKey which validate structural rules
/// (unique names, key well-formedness, FK targets the full key of S,
/// matching attribute types).
class Schema {
 public:
  /// Adds a relation; returns its RelationId.
  Result<RelationId> AddRelation(RelationSchema rel);

  /// Convenience: adds relation `name` with attributes given as
  /// (name, type) pairs and key attribute names.
  Result<RelationId> AddRelation(const std::string& name,
                                 std::vector<Attribute> attrs,
                                 const std::vector<std::string>& key_names);

  /// Adds the FK from_rel[from_attrs] ⊆ to_rel[key(to_rel)] by names.
  Result<FkId> AddForeignKey(const std::string& from_rel,
                             const std::vector<std::string>& from_attrs,
                             const std::string& to_rel);

  size_t num_relations() const { return relations_.size(); }
  size_t num_foreign_keys() const { return fks_.size(); }

  const RelationSchema& relation(RelationId r) const { return relations_[r]; }
  const ForeignKey& fk(FkId f) const { return fks_[f]; }
  const std::vector<ForeignKey>& fks() const { return fks_; }

  /// RelationId for `name`, or -1.
  RelationId RelationIndex(const std::string& name) const;

  /// FKs whose referencing side (R) is `rel`.
  std::vector<FkId> OutgoingFks(RelationId rel) const;
  /// FKs whose referenced side (S) is `rel`.
  std::vector<FkId> IncomingFks(RelationId rel) const;

  /// True when attribute (rel, attr) appears on either side of any FK.
  /// FoRWaRD's T(R, lmax) excludes such attributes: as pure references they
  /// carry no attribute-level semantics (paper Section V-C).
  bool AttrInAnyFk(RelationId rel, AttrId attr) const;

  /// Total attribute count across all relations (paper Table I).
  size_t TotalAttributes() const;

  /// Human-readable dump (relation schemas, keys, FKs).
  std::string ToString() const;

 private:
  std::vector<RelationSchema> relations_;
  std::vector<ForeignKey> fks_;
};

}  // namespace stedb::db

#endif  // STEDB_DB_SCHEMA_H_
