#include "src/db/cascade.h"

#include <unordered_map>
#include <unordered_set>

namespace stedb::db {
namespace {

/// Collects the closure of facts to delete (see header for semantics).
std::unordered_set<FactId> DeleteClosure(const Database& db, FactId root) {
  const Schema& schema = db.schema();
  std::unordered_set<FactId> set = {root};

  bool changed = true;
  while (changed) {
    changed = false;

    // Rule 1 (monotone BFS): facts referencing a member join the set.
    std::vector<FactId> frontier(set.begin(), set.end());
    while (!frontier.empty()) {
      FactId f = frontier.back();
      frontier.pop_back();
      RelationId rel = db.fact(f).rel;
      for (FkId fk : schema.IncomingFks(rel)) {
        for (FactId r : db.Referencing(f, fk)) {
          if (set.insert(r).second) {
            frontier.push_back(r);
            changed = true;
          }
        }
      }
    }

    // Rule 2: orphaned referenced facts join the set. Needs a fixpoint
    // because orphanhood depends on the current set.
    std::vector<FactId> members(set.begin(), set.end());
    for (FactId f : members) {
      RelationId rel = db.fact(f).rel;
      for (FkId fk : schema.OutgoingFks(rel)) {
        FactId g = db.Referenced(f, fk);
        if (g == kNoFact || set.count(g) > 0) continue;
        // g is orphaned iff every fact referencing it is being deleted.
        bool orphaned = true;
        size_t inbound = 0;
        RelationId grel = db.fact(g).rel;
        for (FkId in_fk : schema.IncomingFks(grel)) {
          for (FactId r : db.Referencing(g, in_fk)) {
            ++inbound;
            if (set.count(r) == 0) {
              orphaned = false;
              break;
            }
          }
          if (!orphaned) break;
        }
        if (orphaned && inbound > 0) {
          set.insert(g);
          changed = true;
        }
      }
    }
  }
  return set;
}

/// Kahn topological order over the in-set reference graph: a fact may be
/// deleted once no in-set fact still references it.
std::vector<FactId> DeletionOrder(const Database& db,
                                  const std::unordered_set<FactId>& set) {
  const Schema& schema = db.schema();
  // For each member, count in-set facts it is referenced by.
  std::unordered_map<FactId, size_t> blockers;
  for (FactId f : set) {
    size_t count = 0;
    RelationId rel = db.fact(f).rel;
    for (FkId fk : schema.IncomingFks(rel)) {
      for (FactId r : db.Referencing(f, fk)) {
        if (set.count(r) > 0) ++count;
      }
    }
    blockers[f] = count;
  }
  std::vector<FactId> ready;
  for (const auto& [f, count] : blockers) {
    if (count == 0) ready.push_back(f);
  }
  std::vector<FactId> order;
  order.reserve(set.size());
  while (!ready.empty()) {
    FactId f = ready.back();
    ready.pop_back();
    order.push_back(f);
    // Deleting f unblocks everything it references.
    RelationId rel = db.fact(f).rel;
    for (FkId fk : schema.OutgoingFks(rel)) {
      FactId g = db.Referenced(f, fk);
      if (g == kNoFact || set.count(g) == 0) continue;
      auto it = blockers.find(g);
      if (it != blockers.end() && --(it->second) == 0) ready.push_back(g);
    }
  }
  return order;
}

}  // namespace

Result<std::vector<FactId>> CascadePreview(const Database& db, FactId root) {
  if (!db.IsLive(root)) return Status::NotFound("cascade root is not live");
  std::unordered_set<FactId> set = DeleteClosure(db, root);
  std::vector<FactId> order = DeletionOrder(db, set);
  if (order.size() != set.size()) {
    // A reference cycle inside the closure; deleting it atomically is
    // possible physically but the reverse order would not be re-insertable,
    // so we refuse (schemas in this repo are acyclic at the instance level).
    return Status::FailedPrecondition(
        "cascade closure contains a reference cycle");
  }
  return order;
}

Result<CascadeResult> CascadeDelete(Database& db, FactId root) {
  STEDB_ASSIGN_OR_RETURN(std::vector<FactId> order, CascadePreview(db, root));
  CascadeResult result;
  result.deleted_ids = order;
  result.facts.reserve(order.size());
  for (FactId f : order) result.facts.push_back(db.fact(f));
  for (FactId f : order) {
    STEDB_RETURN_IF_ERROR(db.Delete(f));
  }
  return result;
}

Result<std::vector<FactId>> ReinsertBatch(Database& db,
                                          const CascadeResult& batch) {
  std::vector<FactId> new_ids;
  new_ids.reserve(batch.facts.size());
  for (size_t i = batch.facts.size(); i > 0; --i) {
    STEDB_ASSIGN_OR_RETURN(FactId id, db.Insert(batch.facts[i - 1]));
    new_ids.push_back(id);
  }
  return new_ids;
}

}  // namespace stedb::db
