#include "src/db/value.h"

#include <cstdlib>
#include <sstream>

namespace stedb::db {

const char* AttrTypeName(AttrType type) {
  switch (type) {
    case AttrType::kInt:
      return "int";
    case AttrType::kReal:
      return "real";
    case AttrType::kText:
      return "text";
  }
  return "?";
}

double Value::AsNumber() const {
  if (is_int()) return static_cast<double>(as_int());
  if (is_real()) return as_real();
  return 0.0;
}

bool Value::MatchesType(AttrType type) const {
  if (is_null()) return true;
  switch (type) {
    case AttrType::kInt:
      return is_int();
    case AttrType::kReal:
      // Integers are acceptable where reals are expected.
      return is_real() || is_int();
    case AttrType::kText:
      return is_text();
  }
  return false;
}

std::string Value::ToString() const {
  if (is_null()) return "";
  if (is_int()) return std::to_string(as_int());
  if (is_real()) {
    std::ostringstream os;
    os << as_real();
    return os.str();
  }
  return as_text();
}

Value Value::Parse(const std::string& text, AttrType type) {
  if (text.empty()) return Value::Null();
  switch (type) {
    case AttrType::kInt: {
      char* end = nullptr;
      long long v = std::strtoll(text.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') return Value::Null();
      return Value::Int(v);
    }
    case AttrType::kReal: {
      char* end = nullptr;
      double v = std::strtod(text.c_str(), &end);
      if (end == nullptr || *end != '\0') return Value::Null();
      return Value::Real(v);
    }
    case AttrType::kText:
      return Value::Text(text);
  }
  return Value::Null();
}

size_t Value::Hash() const {
  // Kind-tagged hashing so Int(1) and Real(1.0) hash differently, matching
  // operator== which distinguishes them.
  size_t kind = v_.index();
  size_t h = 0;
  if (is_int()) {
    h = std::hash<int64_t>()(as_int());
  } else if (is_real()) {
    h = std::hash<double>()(as_real());
  } else if (is_text()) {
    h = std::hash<std::string>()(as_text());
  }
  return h * 4 + kind;
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  if (v.is_null()) return os << "⊥";
  return os << v.ToString();
}

size_t ValueTupleHash::operator()(const ValueTuple& t) const {
  size_t h = 0x9e3779b97f4a7c15ull;
  for (const Value& v : t) {
    h ^= v.Hash() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

bool HasNull(const ValueTuple& t) {
  for (const Value& v : t) {
    if (v.is_null()) return true;
  }
  return false;
}

std::string ToString(const ValueTuple& t) {
  std::string out = "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) out += ", ";
    out += t[i].is_null() ? "⊥" : t[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace stedb::db
