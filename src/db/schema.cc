#include "src/db/schema.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace stedb::db {

AttrId RelationSchema::AttrIndex(const std::string& attr_name) const {
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (attrs[i].name == attr_name) return static_cast<AttrId>(i);
  }
  return -1;
}

bool RelationSchema::IsKeyAttr(AttrId a) const {
  return std::find(key.begin(), key.end(), a) != key.end();
}

Result<RelationId> Schema::AddRelation(RelationSchema rel) {
  if (rel.name.empty()) {
    return Status::InvalidArgument("relation name must not be empty");
  }
  if (RelationIndex(rel.name) >= 0) {
    return Status::AlreadyExists("relation '" + rel.name + "' already exists");
  }
  if (rel.attrs.empty()) {
    return Status::InvalidArgument("relation '" + rel.name +
                                   "' must have at least one attribute");
  }
  std::unordered_set<std::string> seen;
  for (const Attribute& a : rel.attrs) {
    if (a.name.empty()) {
      return Status::InvalidArgument("attribute names must not be empty");
    }
    if (!seen.insert(a.name).second) {
      return Status::InvalidArgument("duplicate attribute '" + a.name +
                                     "' in relation '" + rel.name + "'");
    }
  }
  if (rel.key.empty()) {
    return Status::InvalidArgument("relation '" + rel.name +
                                   "' must declare a key");
  }
  std::unordered_set<AttrId> key_seen;
  for (AttrId k : rel.key) {
    if (k < 0 || static_cast<size_t>(k) >= rel.attrs.size()) {
      return Status::OutOfRange("key attribute index out of range in '" +
                                rel.name + "'");
    }
    if (!key_seen.insert(k).second) {
      return Status::InvalidArgument("duplicate key attribute in '" +
                                     rel.name + "'");
    }
  }
  relations_.push_back(std::move(rel));
  return static_cast<RelationId>(relations_.size() - 1);
}

Result<RelationId> Schema::AddRelation(
    const std::string& name, std::vector<Attribute> attrs,
    const std::vector<std::string>& key_names) {
  RelationSchema rel;
  rel.name = name;
  rel.attrs = std::move(attrs);
  for (const std::string& k : key_names) {
    AttrId idx = rel.AttrIndex(k);
    if (idx < 0) {
      return Status::NotFound("key attribute '" + k + "' not in relation '" +
                              name + "'");
    }
    rel.key.push_back(idx);
  }
  return AddRelation(std::move(rel));
}

Result<FkId> Schema::AddForeignKey(const std::string& from_rel,
                                   const std::vector<std::string>& from_attrs,
                                   const std::string& to_rel) {
  RelationId from = RelationIndex(from_rel);
  if (from < 0) {
    return Status::NotFound("relation '" + from_rel + "' not found");
  }
  RelationId to = RelationIndex(to_rel);
  if (to < 0) {
    return Status::NotFound("relation '" + to_rel + "' not found");
  }
  ForeignKey fk;
  fk.from_rel = from;
  fk.to_rel = to;
  for (const std::string& a : from_attrs) {
    AttrId idx = relations_[from].AttrIndex(a);
    if (idx < 0) {
      return Status::NotFound("attribute '" + a + "' not in relation '" +
                              from_rel + "'");
    }
    fk.from_attrs.push_back(idx);
  }
  fk.to_attrs = relations_[to].key;
  if (fk.from_attrs.size() != fk.to_attrs.size()) {
    return Status::InvalidArgument(
        "FK " + from_rel + " -> " + to_rel + ": referencing attribute count " +
        std::to_string(fk.from_attrs.size()) + " != key size " +
        std::to_string(fk.to_attrs.size()));
  }
  for (size_t i = 0; i < fk.from_attrs.size(); ++i) {
    AttrType ft = relations_[from].attrs[fk.from_attrs[i]].type;
    AttrType tt = relations_[to].attrs[fk.to_attrs[i]].type;
    if (ft != tt) {
      return Status::InvalidArgument(
          "FK " + from_rel + " -> " + to_rel + ": type mismatch on position " +
          std::to_string(i));
    }
  }
  fks_.push_back(std::move(fk));
  return static_cast<FkId>(fks_.size() - 1);
}

RelationId Schema::RelationIndex(const std::string& name) const {
  for (size_t i = 0; i < relations_.size(); ++i) {
    if (relations_[i].name == name) return static_cast<RelationId>(i);
  }
  return -1;
}

std::vector<FkId> Schema::OutgoingFks(RelationId rel) const {
  std::vector<FkId> out;
  for (size_t i = 0; i < fks_.size(); ++i) {
    if (fks_[i].from_rel == rel) out.push_back(static_cast<FkId>(i));
  }
  return out;
}

std::vector<FkId> Schema::IncomingFks(RelationId rel) const {
  std::vector<FkId> out;
  for (size_t i = 0; i < fks_.size(); ++i) {
    if (fks_[i].to_rel == rel) out.push_back(static_cast<FkId>(i));
  }
  return out;
}

bool Schema::AttrInAnyFk(RelationId rel, AttrId attr) const {
  for (const ForeignKey& fk : fks_) {
    if (fk.from_rel == rel) {
      if (std::find(fk.from_attrs.begin(), fk.from_attrs.end(), attr) !=
          fk.from_attrs.end()) {
        return true;
      }
    }
    if (fk.to_rel == rel) {
      if (std::find(fk.to_attrs.begin(), fk.to_attrs.end(), attr) !=
          fk.to_attrs.end()) {
        return true;
      }
    }
  }
  return false;
}

size_t Schema::TotalAttributes() const {
  size_t total = 0;
  for (const RelationSchema& r : relations_) total += r.attrs.size();
  return total;
}

std::string Schema::ToString() const {
  std::ostringstream os;
  for (size_t r = 0; r < relations_.size(); ++r) {
    const RelationSchema& rel = relations_[r];
    os << rel.name << "(";
    for (size_t i = 0; i < rel.attrs.size(); ++i) {
      if (i > 0) os << ", ";
      os << rel.attrs[i].name << ":" << AttrTypeName(rel.attrs[i].type);
      if (rel.IsKeyAttr(static_cast<AttrId>(i))) os << "*";
    }
    os << ")\n";
  }
  for (const ForeignKey& fk : fks_) {
    os << relations_[fk.from_rel].name << "[";
    for (size_t i = 0; i < fk.from_attrs.size(); ++i) {
      if (i > 0) os << ",";
      os << relations_[fk.from_rel].attrs[fk.from_attrs[i]].name;
    }
    os << "] ⊆ " << relations_[fk.to_rel].name << "[";
    for (size_t i = 0; i < fk.to_attrs.size(); ++i) {
      if (i > 0) os << ",";
      os << relations_[fk.to_rel].attrs[fk.to_attrs[i]].name;
    }
    os << "]\n";
  }
  return os.str();
}

}  // namespace stedb::db
