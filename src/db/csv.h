#ifndef STEDB_DB_CSV_H_
#define STEDB_DB_CSV_H_

#include <memory>
#include <string>

#include "src/common/status.h"
#include "src/db/database.h"

namespace stedb::db {

/// Plain-text persistence for schemas and databases.
///
/// A database directory contains `schema.txt` plus one `<relation>.csv` per
/// relation (header row = attribute names; empty field = null; fields with
/// commas/quotes are quoted per RFC 4180).
///
/// Schema text format, one declaration per line:
///   R <relation>
///   A <attr> <int|real|text> [key]     (attributes of the last R line)
///   F <from_rel> <attr1[,attr2...]> <to_rel>
/// Blank lines and lines starting with '#' are ignored.

/// Serializes a schema to the text format above.
std::string SchemaToText(const Schema& schema);

/// Parses the text format back into a Schema.
Result<std::shared_ptr<const Schema>> SchemaFromText(const std::string& text);

/// Escapes one CSV field.
std::string CsvEscape(const std::string& field);

/// Splits one CSV line honoring quotes. Returns InvalidArgument on
/// malformed quoting.
Result<std::vector<std::string>> CsvSplitLine(const std::string& line);

/// Writes schema.txt and one CSV per relation under `dir` (created if
/// missing).
Status SaveDatabase(const Database& db, const std::string& dir);

/// Loads a database saved by SaveDatabase. Rows are inserted in FK
/// dependency order (rows whose referenced facts are not yet present are
/// retried; a non-resolvable remainder is a ConstraintViolation).
Result<Database> LoadDatabase(const std::string& dir);

}  // namespace stedb::db

#endif  // STEDB_DB_CSV_H_
