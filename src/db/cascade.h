#ifndef STEDB_DB_CASCADE_H_
#define STEDB_DB_CASCADE_H_

#include <vector>

#include "src/common/status.h"
#include "src/db/database.h"

namespace stedb::db {

/// The result of one cascading deletion: the facts removed, in the order
/// they were removed. The order is a topological order of the FK subgraph
/// (every fact is deleted only after all facts referencing it), so
/// re-inserting in *reverse* order is always constraint-valid.
struct CascadeResult {
  /// Original FactIds, in deletion order. Dead after the cascade.
  std::vector<FactId> deleted_ids;
  /// Copies of the deleted facts, parallel to deleted_ids, so the batch can
  /// be replayed later (the dynamic experiment re-inserts them as "new"
  /// arrivals).
  std::vector<Fact> facts;
};

/// Deletes `root` with "ON DELETE CASCADE" semantics as described in the
/// paper's dynamic-experiment setup (Section VI-E, Example 6.1):
///
///  1. every fact (transitively) referencing `root` is deleted, and
///  2. every fact referenced by a deleted fact that is left with no other
///     referencing fact (an orphan) is deleted too, recursively.
///
/// A fact that was never referenced, or is still referenced by surviving
/// facts, is kept (e.g. DiCaprio in Example 6.1 survives deleting c1
/// because c4 still references him).
Result<CascadeResult> CascadeDelete(Database& db, FactId root);

/// Computes the set that CascadeDelete would remove, without mutating the
/// database (in deletion order).
Result<std::vector<FactId>> CascadePreview(const Database& db, FactId root);

/// Re-inserts a cascade batch in reverse deletion order. Returns the new
/// FactIds in insertion order; the last one is the new id of the original
/// cascade root.
Result<std::vector<FactId>> ReinsertBatch(Database& db,
                                          const CascadeResult& batch);

}  // namespace stedb::db

#endif  // STEDB_DB_CASCADE_H_
