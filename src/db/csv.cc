#include "src/db/csv.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/common/string_util.h"

namespace stedb::db {
namespace {

Result<AttrType> ParseAttrType(const std::string& s) {
  if (s == "int") return AttrType::kInt;
  if (s == "real") return AttrType::kReal;
  if (s == "text") return AttrType::kText;
  return Status::InvalidArgument("unknown attribute type '" + s + "'");
}

}  // namespace

std::string SchemaToText(const Schema& schema) {
  std::ostringstream os;
  for (size_t r = 0; r < schema.num_relations(); ++r) {
    const RelationSchema& rel = schema.relation(static_cast<RelationId>(r));
    os << "R " << rel.name << "\n";
    for (size_t a = 0; a < rel.attrs.size(); ++a) {
      os << "A " << rel.attrs[a].name << " "
         << AttrTypeName(rel.attrs[a].type);
      if (rel.IsKeyAttr(static_cast<AttrId>(a))) os << " key";
      os << "\n";
    }
  }
  for (const ForeignKey& fk : schema.fks()) {
    const RelationSchema& from = schema.relation(fk.from_rel);
    std::vector<std::string> names;
    for (AttrId a : fk.from_attrs) names.push_back(from.attrs[a].name);
    os << "F " << from.name << " " << Join(names, ",") << " "
       << schema.relation(fk.to_rel).name << "\n";
  }
  return os.str();
}

Result<std::shared_ptr<const Schema>> SchemaFromText(const std::string& text) {
  auto schema = std::make_shared<Schema>();
  // First pass collects relations + attributes; FKs are applied after all
  // relations exist (they may reference forward).
  struct PendingFk {
    std::string from, to;
    std::vector<std::string> attrs;
  };
  std::vector<PendingFk> pending_fks;

  std::string cur_rel;
  std::vector<Attribute> cur_attrs;
  std::vector<std::string> cur_key;
  auto flush = [&]() -> Status {
    if (cur_rel.empty()) return Status::OK();
    auto r = schema->AddRelation(cur_rel, cur_attrs, cur_key);
    if (!r.ok()) return r.status();
    cur_rel.clear();
    cur_attrs.clear();
    cur_key.clear();
    return Status::OK();
  };

  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string_view t = Trim(line);
    if (t.empty() || t[0] == '#') continue;
    std::vector<std::string> tok = Split(std::string(t), ' ');
    // Collapse repeated spaces.
    std::vector<std::string> tokens;
    for (std::string& s : tok) {
      if (!s.empty()) tokens.push_back(std::move(s));
    }
    if (tokens[0] == "R") {
      if (tokens.size() != 2) {
        return Status::InvalidArgument("bad R line " + std::to_string(lineno));
      }
      STEDB_RETURN_IF_ERROR(flush());
      cur_rel = tokens[1];
    } else if (tokens[0] == "A") {
      if (cur_rel.empty() || tokens.size() < 3 || tokens.size() > 4) {
        return Status::InvalidArgument("bad A line " + std::to_string(lineno));
      }
      STEDB_ASSIGN_OR_RETURN(AttrType type, ParseAttrType(tokens[2]));
      cur_attrs.push_back({tokens[1], type});
      if (tokens.size() == 4) {
        if (tokens[3] != "key") {
          return Status::InvalidArgument("bad A suffix on line " +
                                         std::to_string(lineno));
        }
        cur_key.push_back(tokens[1]);
      }
    } else if (tokens[0] == "F") {
      if (tokens.size() != 4) {
        return Status::InvalidArgument("bad F line " + std::to_string(lineno));
      }
      PendingFk fk;
      fk.from = tokens[1];
      fk.attrs = Split(tokens[2], ',');
      fk.to = tokens[3];
      pending_fks.push_back(std::move(fk));
    } else {
      return Status::InvalidArgument("unknown declaration on line " +
                                     std::to_string(lineno));
    }
  }
  STEDB_RETURN_IF_ERROR(flush());
  for (const PendingFk& fk : pending_fks) {
    auto r = schema->AddForeignKey(fk.from, fk.attrs, fk.to);
    if (!r.ok()) return r.status();
  }
  return std::shared_ptr<const Schema>(std::move(schema));
}

std::string CsvEscape(const std::string& field) {
  bool needs_quotes = false;
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

Result<std::vector<std::string>> CsvSplitLine(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      if (!cur.empty()) {
        return Status::InvalidArgument("quote inside unquoted CSV field");
      }
      in_quotes = true;
    } else if (c == ',') {
      out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (in_quotes) return Status::InvalidArgument("unterminated CSV quote");
  out.push_back(std::move(cur));
  return out;
}

Status SaveDatabase(const Database& db, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::IOError("cannot create directory " + dir);

  {
    std::ofstream f(dir + "/schema.txt");
    if (!f) return Status::IOError("cannot write schema.txt");
    f << SchemaToText(db.schema());
  }
  const Schema& schema = db.schema();
  for (size_t r = 0; r < schema.num_relations(); ++r) {
    const RelationSchema& rel = schema.relation(static_cast<RelationId>(r));
    std::ofstream f(dir + "/" + rel.name + ".csv");
    if (!f) return Status::IOError("cannot write " + rel.name + ".csv");
    for (size_t a = 0; a < rel.attrs.size(); ++a) {
      if (a > 0) f << ",";
      f << CsvEscape(rel.attrs[a].name);
    }
    f << "\n";
    for (FactId id : db.FactsOf(static_cast<RelationId>(r))) {
      const Fact& fact = db.fact(id);
      for (size_t a = 0; a < fact.values.size(); ++a) {
        if (a > 0) f << ",";
        f << CsvEscape(fact.values[a].ToString());
      }
      f << "\n";
    }
  }
  return Status::OK();
}

Result<Database> LoadDatabase(const std::string& dir) {
  std::ifstream sf(dir + "/schema.txt");
  if (!sf) return Status::IOError("cannot read " + dir + "/schema.txt");
  std::stringstream buf;
  buf << sf.rdbuf();
  STEDB_ASSIGN_OR_RETURN(std::shared_ptr<const Schema> schema,
                         SchemaFromText(buf.str()));
  Database db(schema);

  // Parse all rows first.
  std::vector<Fact> pending;
  for (size_t r = 0; r < schema->num_relations(); ++r) {
    const RelationSchema& rel = schema->relation(static_cast<RelationId>(r));
    std::ifstream f(dir + "/" + rel.name + ".csv");
    if (!f) return Status::IOError("cannot read " + rel.name + ".csv");
    std::string line;
    bool header = true;
    while (std::getline(f, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (header) {
        header = false;
        continue;
      }
      if (line.empty()) continue;
      STEDB_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                             CsvSplitLine(line));
      if (fields.size() != rel.arity()) {
        return Status::InvalidArgument("row arity mismatch in " + rel.name);
      }
      Fact fact;
      fact.rel = static_cast<RelationId>(r);
      for (size_t a = 0; a < fields.size(); ++a) {
        fact.values.push_back(Value::Parse(fields[a], rel.attrs[a].type));
      }
      pending.push_back(std::move(fact));
    }
  }

  // InsertBatch resolves FK dependency order (rows whose referenced facts
  // are not yet present are retried automatically).
  auto ids = db.InsertBatch(std::move(pending));
  if (!ids.ok()) return ids.status();
  return db;
}

}  // namespace stedb::db
