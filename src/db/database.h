#ifndef STEDB_DB_DATABASE_H_
#define STEDB_DB_DATABASE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/db/schema.h"
#include "src/db/value.h"

namespace stedb::db {

/// Global identifier of a fact within a Database. Ids are never reused, so
/// they remain valid handles across deletions (dead ids simply stop being
/// live). This is what makes "delete then re-insert the same facts" in the
/// dynamic experiment easy to express.
using FactId = int32_t;
inline constexpr FactId kNoFact = -1;

/// A fact R(a1, ..., ak): a relation id plus one value per attribute.
struct Fact {
  RelationId rel = -1;
  ValueTuple values;
};

/// An in-memory relational database instance over a fixed Schema.
///
/// Maintains, incrementally under insertion and deletion:
///  * per-relation live fact lists (with O(1) removal),
///  * a key index per relation (key tuple -> fact),
///  * foreign-key adjacency in both directions:
///      forward:  referencing fact -> the unique referenced fact per FK,
///      backward: referenced fact  -> all referencing facts per FK.
///
/// The FK adjacency is exactly the structure both embedding algorithms walk
/// over, so keeping it materialized makes walk steps O(1).
///
/// All constraints of the paper's Section II are enforced on insert:
/// key attributes non-null, key uniqueness, and for every FK whose image has
/// no nulls, existence of the referenced fact (null images are exempt).
class Database {
 public:
  explicit Database(std::shared_ptr<const Schema> schema);

  Database(const Database&) = default;
  Database& operator=(const Database&) = default;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  const Schema& schema() const { return *schema_; }
  const std::shared_ptr<const Schema>& schema_ptr() const { return schema_; }

  // ---- Mutation ---------------------------------------------------------

  /// Validates and inserts a fact; returns its FactId.
  Result<FactId> Insert(Fact fact);

  /// Convenience: insert into relation `rel_name` with positional values.
  Result<FactId> Insert(const std::string& rel_name, ValueTuple values);

  /// Inserts a batch of facts whose FK dependencies may point at each other
  /// in any order: rows whose referenced facts are not yet present are
  /// retried until a fixpoint. Returns the new ids parallel to `facts`.
  /// On any non-dependency error, or an unresolvable (dangling/cyclic)
  /// remainder, nothing is inserted and the error is returned.
  Result<std::vector<FactId>> InsertBatch(std::vector<Fact> facts);

  /// Deletes a fact that no live fact references. Deleting a referenced
  /// fact is a FailedPrecondition: ordered/cascading deletion lives in
  /// cascade.h.
  Status Delete(FactId id);

  // ---- Lookup -----------------------------------------------------------

  bool IsLive(FactId id) const {
    return id >= 0 && static_cast<size_t>(id) < facts_.size() && alive_[id];
  }
  /// Total number of live facts.
  size_t NumFacts() const { return live_count_; }
  /// Live facts in one relation.
  size_t NumFacts(RelationId rel) const { return rel_facts_[rel].size(); }
  /// Number of fact ids ever allocated (live + dead).
  size_t NumAllocatedIds() const { return facts_.size(); }

  const Fact& fact(FactId id) const { return facts_[id]; }
  /// The value of attribute `attr` of fact `id`.
  const Value& value(FactId id, AttrId attr) const {
    return facts_[id].values[attr];
  }
  /// f[B1..Bl] as a tuple.
  ValueTuple Project(FactId id, const std::vector<AttrId>& attrs) const;

  /// Live facts of a relation, in insertion order modulo swap-removals.
  const std::vector<FactId>& FactsOf(RelationId rel) const {
    return rel_facts_[rel];
  }

  /// Finds the fact of `rel` with the given key tuple, or kNoFact.
  FactId FindByKey(RelationId rel, const ValueTuple& key) const;

  // ---- FK adjacency (walk steps) ----------------------------------------

  /// The unique fact referenced by `id` via `fk`, or kNoFact when the FK
  /// image contains a null. `id` must belong to fk.from_rel.
  FactId Referenced(FactId id, FkId fk) const;

  /// All live facts referencing `id` via `fk`. `id` must belong to
  /// fk.to_rel.
  const std::vector<FactId>& Referencing(FactId id, FkId fk) const;

  /// Count of inbound references to `id` across all FKs.
  size_t InboundCount(FactId id) const;

  // ---- Introspection ----------------------------------------------------

  /// Distinct non-null values of (rel, attr) over live facts.
  std::vector<Value> ActiveDomain(RelationId rel, AttrId attr) const;

  /// Re-checks every constraint from scratch; used by tests and after bulk
  /// loads. OK when the instance satisfies the schema.
  Status ValidateAll() const;

  /// One line per relation: name + live tuple count.
  std::string StatsString() const;

 private:
  Status ValidateFact(const Fact& fact) const;
  /// Position of `fk` within OutgoingFks(rel); cached per schema.
  int OutFkPos(RelationId rel, FkId fk) const;
  int InFkPos(RelationId rel, FkId fk) const;

  std::shared_ptr<const Schema> schema_;
  std::vector<Fact> facts_;
  std::vector<char> alive_;
  size_t live_count_ = 0;

  /// Live fact ids per relation with positions for O(1) swap-removal.
  std::vector<std::vector<FactId>> rel_facts_;
  std::vector<int32_t> pos_in_rel_;

  /// Key tuple -> fact, one map per relation.
  std::vector<std::unordered_map<ValueTuple, FactId, ValueTupleHash>>
      key_index_;

  /// Cached schema FK lists per relation.
  std::vector<std::vector<FkId>> out_fks_;
  std::vector<std::vector<FkId>> in_fks_;

  /// fwd_refs_[f][j] = fact referenced via out_fks_[rel(f)][j] (or kNoFact).
  std::vector<std::vector<FactId>> fwd_refs_;
  /// inbound_refs_[f][j] = facts referencing f via in_fks_[rel(f)][j].
  std::vector<std::vector<std::vector<FactId>>> inbound_refs_;

  static const std::vector<FactId> kEmptyFactList;
};

}  // namespace stedb::db

#endif  // STEDB_DB_DATABASE_H_
