#ifndef STEDB_COMMON_RNG_H_
#define STEDB_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace stedb {

/// Deterministic random number generator used throughout the library.
///
/// Every randomized component (embedding initialization, walk sampling,
/// dataset generation, fold shuffling) takes an explicit `Rng&` or a seed so
/// that experiments are exactly reproducible. Wraps std::mt19937_64.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eedb) : seed_(seed), gen_(seed) {}

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextUint(uint64_t n) {
    return std::uniform_int_distribution<uint64_t>(0, n - 1)(gen_);
  }

  /// Uniform index in [0, n) as size_t. Requires n > 0.
  size_t NextIndex(size_t n) { return static_cast<size_t>(NextUint(n)); }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(gen_);
  }

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(gen_);
  }

  /// Standard normal draw.
  double NextGaussian() {
    return std::normal_distribution<double>(0.0, 1.0)(gen_);
  }

  /// Gaussian with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(gen_);
  }

  /// Bernoulli draw with success probability p.
  bool NextBool(double p) { return NextDouble() < p; }

  /// Draws an index from an (unnormalized) non-negative weight vector.
  /// Returns weights.size() when all weights are zero.
  size_t NextWeighted(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = NextIndex(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator by drawing from this stream;
  /// order-dependent (each call advances the parent) but deterministic when
  /// called from serial control flow.
  Rng Fork() { return Rng(gen_()); }

  /// Counter-based child stream: the generator for logical stream
  /// `stream_id` of this generator's *construction seed*. Unlike Fork(),
  /// the result does not depend on how many values were drawn since
  /// construction, so concurrent workers can derive their streams in any
  /// order (or in parallel) and still see bit-identical sequences — the
  /// foundation of the deterministic parallel runtime (see
  /// common/parallel.h). Distinct stream ids yield independent streams;
  /// the same id always yields the same stream.
  Rng Fork(uint64_t stream_id) const {
    return Rng(MixSeed(seed_, stream_id));
  }

  /// The construction seed (root of all Fork(stream_id) streams).
  uint64_t seed() const { return seed_; }

  /// SplitMix64-style avalanche of (seed, stream) into a child seed.
  static uint64_t MixSeed(uint64_t seed, uint64_t stream);

  std::mt19937_64& engine() { return gen_; }

 private:
  uint64_t seed_;
  std::mt19937_64 gen_;
};

}  // namespace stedb

#endif  // STEDB_COMMON_RNG_H_
