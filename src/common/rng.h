#ifndef STEDB_COMMON_RNG_H_
#define STEDB_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace stedb {

/// Deterministic random number generator used throughout the library.
///
/// Every randomized component (embedding initialization, walk sampling,
/// dataset generation, fold shuffling) takes an explicit `Rng&` or a seed so
/// that experiments are exactly reproducible. Wraps std::mt19937_64.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eedb) : gen_(seed) {}

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextUint(uint64_t n) {
    return std::uniform_int_distribution<uint64_t>(0, n - 1)(gen_);
  }

  /// Uniform index in [0, n) as size_t. Requires n > 0.
  size_t NextIndex(size_t n) { return static_cast<size_t>(NextUint(n)); }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(gen_);
  }

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(gen_);
  }

  /// Standard normal draw.
  double NextGaussian() {
    return std::normal_distribution<double>(0.0, 1.0)(gen_);
  }

  /// Gaussian with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(gen_);
  }

  /// Bernoulli draw with success probability p.
  bool NextBool(double p) { return NextDouble() < p; }

  /// Draws an index from an (unnormalized) non-negative weight vector.
  /// Returns weights.size() when all weights are zero.
  size_t NextWeighted(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = NextIndex(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator; useful for giving each fold or
  /// worker its own stream while keeping the parent deterministic.
  Rng Fork() { return Rng(gen_()); }

  std::mt19937_64& engine() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace stedb

#endif  // STEDB_COMMON_RNG_H_
