#ifndef STEDB_COMMON_STATUS_H_
#define STEDB_COMMON_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace stedb {

/// Error categories used across the library. Mirrors the RocksDB/Arrow
/// convention of carrying a coarse code plus a human-readable message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kConstraintViolation,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIOError,
};

/// Returns a stable lowercase name for a status code ("ok", "not_found", ...).
const char* StatusCodeName(StatusCode code);

/// A cheap, copyable success-or-error value. All fallible operations in the
/// library return `Status` (or `Result<T>`); exceptions are never thrown on
/// library paths.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// A value-or-status holder, analogous to arrow::Result. The value is only
/// accessible when `ok()`; callers must check first.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success) or a Status (failure) keeps
  /// call sites terse: `return value;` / `return Status::NotFound(...)`.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  /// Returns the value or `fallback` when this result holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status out of the enclosing function.
#define STEDB_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::stedb::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                       \
  } while (0)

/// Evaluates `rexpr` (a Result<T>), propagates an error Status, otherwise
/// binds the contained value to `lhs`.
#define STEDB_ASSIGN_OR_RETURN(lhs, rexpr)           \
  STEDB_ASSIGN_OR_RETURN_IMPL(                       \
      STEDB_CONCAT_(_stedb_result_, __LINE__), lhs, rexpr)

#define STEDB_CONCAT_INNER_(a, b) a##b
#define STEDB_CONCAT_(a, b) STEDB_CONCAT_INNER_(a, b)
#define STEDB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value();

}  // namespace stedb

#endif  // STEDB_COMMON_STATUS_H_
