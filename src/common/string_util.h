#ifndef STEDB_COMMON_STRING_UTIL_H_
#define STEDB_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace stedb {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins `parts` with `delim`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// True when `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Formats a double with a fixed number of decimals (printf "%.*f").
std::string FormatDouble(double value, int decimals);

}  // namespace stedb

#endif  // STEDB_COMMON_STRING_UTIL_H_
