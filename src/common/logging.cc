#include "src/common/logging.h"

#include <cinttypes>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

#if defined(__linux__)
#include <sys/syscall.h>
#include <unistd.h>
#else
#include <functional>
#include <thread>
#endif

namespace stedb {
namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

uint64_t CurrentThreadId() {
#if defined(__linux__)
  static thread_local uint64_t tid =
      static_cast<uint64_t>(::syscall(SYS_gettid));
  return tid;
#else
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
#endif
}

/// The level storage, env-seeded exactly once (magic static) so the
/// override applies to whichever of SetLogLevel/GetLogLevel/LogMessage
/// runs first — including log lines emitted from static initializers.
LogLevel& MutableLogLevel() {
  static LogLevel level =
      ParseLogLevelOrDie(std::getenv("STEDB_LOG_LEVEL"), LogLevel::kInfo);
  return level;
}

}  // namespace

LogLevel ParseLogLevelOrDie(const char* value, LogLevel fallback) {
  if (value == nullptr || *value == '\0') return fallback;
  if (std::strcmp(value, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(value, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(value, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(value, "error") == 0) return LogLevel::kError;
  // Not STEDB_LOG — the level machinery itself is what is broken here.
  std::fprintf(stderr,
               "fatal: unknown STEDB_LOG_LEVEL '%s' "
               "(expected debug|info|warn|error)\n",
               value);
  std::abort();
}

void SetLogLevel(LogLevel level) { MutableLogLevel() = level; }
LogLevel GetLogLevel() { return MutableLogLevel(); }

std::string FormatLogLine(LogLevel level, const std::string& message) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm utc{};
  gmtime_r(&secs, &utc);
  char line[64];
  std::snprintf(line, sizeof(line),
                "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ [%s] [tid %" PRIu64 "] ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec, static_cast<int>(ms),
                LevelName(level), CurrentThreadId());
  return std::string(line) + message;
}

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(GetLogLevel())) return;
  const std::string line = FormatLogLine(level, message);
  // One fputs per line: interleaved writers tear between lines, not
  // mid-line (stderr is unbuffered but a single write stays contiguous).
  std::string out = line;
  out.push_back('\n');
  std::fputs(out.c_str(), stderr);
}

}  // namespace stedb
