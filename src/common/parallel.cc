#include "src/common/parallel.h"

#include <algorithm>
#include <cstdlib>

#include "src/obs/metrics.h"

namespace stedb {

namespace {

/// Registry series of the parallel runtime: how often the process fans
/// out and how wide. One fan-out = one ParallelFor call (any runner);
/// tasks = its index count.
struct ParallelMetrics {
  obs::Registry& reg = obs::Registry::Global();
  obs::Counter& fanouts = reg.GetCounter(
      "stedb_parallel_fanouts_total", "ParallelFor calls");
  obs::Counter& tasks = reg.GetCounter(
      "stedb_parallel_tasks_total", "Indices dispatched by ParallelFor");
  obs::Histogram& fanout_size = reg.GetHistogram(
      "stedb_parallel_fanout_size", "Index count per ParallelFor call",
      obs::Buckets::PowersOfTwo());
};

ParallelMetrics& Metrics() {
  static ParallelMetrics m;
  return m;
}

[[maybe_unused]] const ParallelMetrics& g_eager_metrics = Metrics();

}  // namespace

int ResolveThreadCount(int requested) {
  // An explicit positive request always wins: callers that pin a count do
  // so deliberately (nested fan-outs pin their children to 1 to avoid
  // oversubscription; the equivalence tests pin 1 vs 4). STEDB_THREADS
  // fills in the default case only — which is what every config ships
  // with — so the env knob still steers bench binaries, examples and CI
  // without defeating intentional pins.
  if (requested > 0) return requested;
  const char* env = std::getenv("STEDB_THREADS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      return static_cast<int>(std::min(v, 256L));
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ParallelRunner::ParallelRunner(int threads)
    : threads_(ResolveThreadCount(threads)) {
  workers_.reserve(static_cast<size_t>(threads_ > 0 ? threads_ - 1 : 0));
  // The caller participates in every job, so N threads of parallelism need
  // only N - 1 pool workers.
  for (int i = 1; i < threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ParallelRunner::~ParallelRunner() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ParallelRunner::ParallelFor(size_t n,
                                 const std::function<void(size_t)>& body) {
  if (n == 0) return;
  {
    ParallelMetrics& m = Metrics();
    m.fanouts.Inc();
    m.tasks.Inc(n);
    m.fanout_size.Observe(static_cast<double>(n));
  }
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  {
    MutexLock lock(mu_);
    job_ = &body;
    job_size_ = n;
    next_index_ = 0;
    inflight_ = 0;
    // Chunked claiming keeps the claim lock off the per-index hot path while
    // still load-balancing uneven bodies (walk lengths, batch sizes vary).
    job_chunk_ = std::max<size_t>(
        1, n / (static_cast<size_t>(threads_) * 8));
    first_error_ = nullptr;
    ++generation_;
  }
  work_cv_.notify_all();
  RunJob();
  std::exception_ptr error;
  {
    UniqueMutexLock lock(mu_);
    while (!(next_index_ >= job_size_ && inflight_ == 0)) {
      done_cv_.wait(lock.native());
    }
    job_ = nullptr;
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

void ParallelRunner::RunJob() {
  for (;;) {
    const std::function<void(size_t)>* body;
    size_t begin, end;
    {
      MutexLock lock(mu_);
      if (job_ == nullptr || next_index_ >= job_size_) return;
      body = job_;
      begin = next_index_;
      end = std::min(job_size_, begin + job_chunk_);
      next_index_ = end;
      inflight_ += end - begin;
    }
    try {
      for (size_t i = begin; i < end; ++i) (*body)(i);
    } catch (...) {
      MutexLock lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
      next_index_ = job_size_;  // abandon unclaimed indices
    }
    bool done;
    {
      MutexLock lock(mu_);
      inflight_ -= end - begin;
      done = next_index_ >= job_size_ && inflight_ == 0;
    }
    if (done) done_cv_.notify_all();
  }
}

void ParallelRunner::WorkerLoop() {
  uint64_t seen = 0;
  for (;;) {
    {
      UniqueMutexLock lock(mu_);
      while (!shutdown_ && generation_ == seen) work_cv_.wait(lock.native());
      if (shutdown_) return;
      seen = generation_;
    }
    RunJob();
  }
}

ParallelRunner& SharedRunner() {
  // Sized at first use; the workers live for the process lifetime and are
  // joined during static destruction.
  static ParallelRunner runner(0);
  return runner;
}

namespace {
// True on the thread driving a shared-pool fan-out. A nested call from
// that thread must not touch shared_mu at all: try_lock by the owning
// thread is undefined behavior for std::mutex, and the flag routes it
// to a dedicated runner before the lock is reached. (Nested calls from
// pool *worker* threads hit try_lock as non-owners — defined, returns
// false — and take the same dedicated-runner path.)
thread_local bool in_shared_fanout = false;
}  // namespace

bool TrySharedParallelFor(size_t n, const std::function<void(size_t)>& body) {
  if (in_shared_fanout) return false;
  // ParallelFor is not safe for concurrent callers on one runner, so
  // the shared pool is guarded by a try-lock: the common case (one
  // fan-out at a time) reuses the warm pool, while a caller that finds
  // it busy falls through to a dedicated runner instead of blocking
  // behind the active job.
  static Mutex shared_mu;
  if (!shared_mu.try_lock()) return false;
  MutexLock lock(shared_mu, std::adopt_lock);
  in_shared_fanout = true;
  struct Reset {
    bool* flag;
    ~Reset() { *flag = false; }
  } reset{&in_shared_fanout};  // exception-safe: ParallelFor rethrows
  SharedRunner().ParallelFor(n, body);
  return true;
}

void RunParallelFor(int threads, size_t n,
                    const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (n == 1 || ResolveThreadCount(threads) <= 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  if (threads == 0 && TrySharedParallelFor(n, body)) return;
  ParallelRunner runner(threads);
  runner.ParallelFor(n, body);
}

PooledRunner::PooledRunner(int threads)
    : threads_(ResolveThreadCount(threads)) {
  // Pins get their dedicated pool up front; the default route stays on
  // the shared pool until (if ever) it is found busy.
  if (threads > 0) owned_ = std::make_unique<ParallelRunner>(threads);
}

void PooledRunner::ParallelFor(size_t n,
                               const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (owned_ != nullptr) {
    owned_->ParallelFor(n, body);
    return;
  }
  if (threads_ <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  if (TrySharedParallelFor(n, body)) return;
  // Shared pool busy (another trainer, or a nested fan-out): switch this
  // handle to its own pool once and keep it — a training loop calls
  // ParallelFor per chunk, and a pool construction per chunk is exactly
  // the overhead this class exists to avoid.
  owned_ = std::make_unique<ParallelRunner>(threads_);
  owned_->ParallelFor(n, body);
}

}  // namespace stedb
