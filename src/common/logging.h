#ifndef STEDB_COMMON_LOGGING_H_
#define STEDB_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace stedb {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Writes one formatted line to stderr ("[level] message").
void LogMessage(LogLevel level, const std::string& message);

namespace internal_logging {

/// Stream-style helper: `Logger(kInfo).stream() << ...` emits on destruction.
class Logger {
 public:
  explicit Logger(LogLevel level) : level_(level) {}
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;
  ~Logger() { LogMessage(level_, stream_.str()); }

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace stedb

#define STEDB_LOG(level)                                          \
  ::stedb::internal_logging::Logger(::stedb::LogLevel::level).stream()

#endif  // STEDB_COMMON_LOGGING_H_
