#ifndef STEDB_COMMON_LOGGING_H_
#define STEDB_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace stedb {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
/// The global minimum level. On the first call of either accessor the
/// STEDB_LOG_LEVEL environment variable (debug|info|warn|error) seeds the
/// level; an unknown value aborts, like STEDB_SIMD/STEDB_SCALE — a typo
/// must not silently run at the wrong verbosity.
LogLevel GetLogLevel();

/// Writes one formatted line to stderr
/// ("2026-08-07T12:34:56.789Z [LEVEL] [tid N] message").
void LogMessage(LogLevel level, const std::string& message);

/// The line LogMessage emits, without the trailing newline: ISO-8601 UTC
/// millisecond timestamp, level tag, OS thread id, message. Exposed so
/// tests can assert the shape without capturing stderr.
std::string FormatLogLine(LogLevel level, const std::string& message);

/// Parses a STEDB_LOG_LEVEL value; aborts (with an error line) on an
/// unknown one. `value` may be null/empty — the fallback is returned.
/// Exposed for the death test.
LogLevel ParseLogLevelOrDie(const char* value, LogLevel fallback);

namespace internal_logging {

/// Stream-style helper: `Logger(kInfo).stream() << ...` emits on destruction.
class Logger {
 public:
  explicit Logger(LogLevel level) : level_(level) {}
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;
  ~Logger() { LogMessage(level_, stream_.str()); }

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace stedb

#define STEDB_LOG(level)                                          \
  ::stedb::internal_logging::Logger(::stedb::LogLevel::level).stream()

#endif  // STEDB_COMMON_LOGGING_H_
