#ifndef STEDB_COMMON_SCOPED_FD_H_
#define STEDB_COMMON_SCOPED_FD_H_

#include <unistd.h>

#include <utility>

namespace stedb {

/// Move-only owner of a POSIX file descriptor: closes on destruction,
/// transfers on move. Keeps raw-fd plumbing (the serving session's
/// persistent WAL handle, the serve layer's sockets) exception- and
/// move-safe without pulling in iostreams.
class ScopedFd {
 public:
  ScopedFd() = default;
  explicit ScopedFd(int fd) : fd_(fd) {}
  ~ScopedFd() { Reset(); }

  ScopedFd(ScopedFd&& other) noexcept : fd_(other.Release()) {}
  ScopedFd& operator=(ScopedFd&& other) noexcept {
    if (this != &other) Reset(other.Release());
    return *this;
  }
  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Closes the held fd (if any) and takes ownership of `fd`.
  void Reset(int fd = -1) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = fd;
  }

  /// Releases ownership without closing.
  int Release() { return std::exchange(fd_, -1); }

 private:
  int fd_ = -1;
};

}  // namespace stedb

#endif  // STEDB_COMMON_SCOPED_FD_H_
