#ifndef STEDB_COMMON_THREAD_ANNOTATIONS_H_
#define STEDB_COMMON_THREAD_ANNOTATIONS_H_

#include <mutex>
#include <shared_mutex>

/// Clang Thread Safety Analysis for the repo's lock disciplines.
///
/// Every mutex-holding class in src/ declares its lock as one of the
/// capability-annotated wrappers below (stedb::Mutex / stedb::SharedMutex)
/// and marks the state it protects with STEDB_GUARDED_BY, so the
/// conventions BUILDING.md states in prose — which thread may touch what,
/// under which lock, in which mode — are checked at compile time by the
/// clang lane (`-Wthread-safety -Werror`; see cmake/StedbWarnings.cmake).
/// Under gcc (which has no such analysis) every macro expands to nothing
/// and the wrappers are zero-cost shims over the std primitives.
///
/// This header is the ONLY place thread-safety attributes are spelled out
/// and the only file allowed to suppress the analysis; `stedb_lint`'s
/// mutex-annotation rule rejects raw std::mutex / std::shared_mutex
/// declarations anywhere else in src/.
///
/// Cheat sheet (see BUILDING.md "Static analysis" for the full story):
///  * STEDB_GUARDED_BY(mu)   on a member: reads need mu held (shared is
///    enough), writes need it held exclusively.
///  * STEDB_REQUIRES(mu)     on a function: callers must already hold mu
///    exclusively (REQUIRES_SHARED: at least shared).
///  * STEDB_ACQUIRE/RELEASE  on a function: it takes/drops the lock.
///  * STEDB_EXCLUDES(mu)     on a function: callers must NOT hold mu
///    (guards against self-deadlock on non-reentrant locks).

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define STEDB_THREAD_ANNOTATION__(x) __attribute__((x))
#endif
#endif
#ifndef STEDB_THREAD_ANNOTATION__
#define STEDB_THREAD_ANNOTATION__(x)  // not clang: no-op
#endif

#define STEDB_CAPABILITY(x) STEDB_THREAD_ANNOTATION__(capability(x))
#define STEDB_SCOPED_CAPABILITY STEDB_THREAD_ANNOTATION__(scoped_lockable)
#define STEDB_GUARDED_BY(x) STEDB_THREAD_ANNOTATION__(guarded_by(x))
#define STEDB_PT_GUARDED_BY(x) STEDB_THREAD_ANNOTATION__(pt_guarded_by(x))
#define STEDB_ACQUIRED_BEFORE(...) \
  STEDB_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define STEDB_ACQUIRED_AFTER(...) \
  STEDB_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))
#define STEDB_REQUIRES(...) \
  STEDB_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define STEDB_REQUIRES_SHARED(...) \
  STEDB_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))
#define STEDB_ACQUIRE(...) \
  STEDB_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define STEDB_ACQUIRE_SHARED(...) \
  STEDB_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#define STEDB_RELEASE(...) \
  STEDB_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define STEDB_RELEASE_SHARED(...) \
  STEDB_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
#define STEDB_TRY_ACQUIRE(...) \
  STEDB_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define STEDB_TRY_ACQUIRE_SHARED(...) \
  STEDB_THREAD_ANNOTATION__(try_acquire_shared_capability(__VA_ARGS__))
#define STEDB_EXCLUDES(...) \
  STEDB_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
#define STEDB_ASSERT_CAPABILITY(x) \
  STEDB_THREAD_ANNOTATION__(assert_capability(x))
#define STEDB_RETURN_CAPABILITY(x) STEDB_THREAD_ANNOTATION__(lock_returned(x))
#define STEDB_NO_THREAD_SAFETY_ANALYSIS \
  STEDB_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace stedb {

/// std::mutex as a named capability. Same size and cost (the analysis is
/// purely compile-time); `native()` exposes the wrapped mutex for
/// std::condition_variable waits, which require a std::unique_lock —
/// only ever call it through UniqueMutexLock::native(), while the
/// capability is held.
class STEDB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() STEDB_ACQUIRE() { mu_.lock(); }
  void unlock() STEDB_RELEASE() { mu_.unlock(); }
  bool try_lock() STEDB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// std::shared_mutex as a named capability: exclusive for writers,
/// shared for readers (the serve layer's readers-vs-Poll discipline).
class STEDB_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() STEDB_ACQUIRE() { mu_.lock(); }
  void unlock() STEDB_RELEASE() { mu_.unlock(); }
  void lock_shared() STEDB_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() STEDB_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock over Mutex — the annotated std::lock_guard.
/// The std::adopt_lock overload takes ownership of an already-held lock
/// (the try_lock() + adopt idiom in TrySharedParallelFor).
class STEDB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) STEDB_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  MutexLock(Mutex& mu, std::adopt_lock_t) STEDB_REQUIRES(mu) : mu_(mu) {}
  ~MutexLock() STEDB_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII exclusive lock that can be dropped and retaken mid-scope (the
/// coalescer/ticker pattern: hold across waits, release around the slow
/// work) and that interoperates with condition variables via native().
/// cv.wait(lk.native()) atomically releases and reacquires the mutex;
/// the analysis (correctly) treats the capability as held on both sides
/// of the wait, since waits only ever happen while it is held.
class STEDB_SCOPED_CAPABILITY UniqueMutexLock {
 public:
  explicit UniqueMutexLock(Mutex& mu) STEDB_ACQUIRE(mu)
      : lock_(mu.native()) {}
  ~UniqueMutexLock() STEDB_RELEASE() {}  // unique_lock unlocks iff held

  UniqueMutexLock(const UniqueMutexLock&) = delete;
  UniqueMutexLock& operator=(const UniqueMutexLock&) = delete;

  void Lock() STEDB_ACQUIRE() { lock_.lock(); }
  void Unlock() STEDB_RELEASE() { lock_.unlock(); }

  /// For std::condition_variable::wait/wait_for only.
  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

/// RAII shared (reader) lock over SharedMutex.
class STEDB_SCOPED_CAPABILITY SharedMutexLock {
 public:
  explicit SharedMutexLock(SharedMutex& mu) STEDB_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.lock_shared();
  }
  ~SharedMutexLock() STEDB_RELEASE() { mu_.unlock_shared(); }

  SharedMutexLock(const SharedMutexLock&) = delete;
  SharedMutexLock& operator=(const SharedMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII exclusive (writer) lock over SharedMutex.
class STEDB_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) STEDB_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterMutexLock() STEDB_RELEASE() { mu_.unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace stedb

#endif  // STEDB_COMMON_THREAD_ANNOTATIONS_H_
