#ifndef STEDB_COMMON_SPAN_H_
#define STEDB_COMMON_SPAN_H_

#include <cstddef>
#include <type_traits>
#include <vector>

namespace stedb {

/// Minimal non-owning view over a contiguous range — the C++17 stand-in
/// for std::span used by the batch-read API (`api::Embedder::EmbedBatch`)
/// and the zero-copy serving path (`Span<const double>` straight into an
/// mmap'd snapshot). The viewed memory must outlive the span.
template <typename T>
class Span {
 public:
  constexpr Span() noexcept : data_(nullptr), size_(0) {}
  constexpr Span(T* data, size_t size) noexcept : data_(data), size_(size) {}

  /// Views a vector of the (possibly const-qualified) element type.
  template <typename U,
            typename = std::enable_if_t<std::is_convertible_v<U*, T*>>>
  Span(std::vector<U>& v) noexcept  // NOLINT(runtime/explicit)
      : data_(v.data()), size_(v.size()) {}
  template <typename U,
            typename = std::enable_if_t<std::is_convertible_v<const U*, T*>>>
  Span(const std::vector<U>& v) noexcept  // NOLINT(runtime/explicit)
      : data_(v.data()), size_(v.size()) {}

  constexpr T* data() const noexcept { return data_; }
  constexpr size_t size() const noexcept { return size_; }
  constexpr bool empty() const noexcept { return size_ == 0; }

  constexpr T& operator[](size_t i) const { return data_[i]; }
  constexpr T& front() const { return data_[0]; }
  constexpr T& back() const { return data_[size_ - 1]; }

  constexpr T* begin() const noexcept { return data_; }
  constexpr T* end() const noexcept { return data_ + size_; }

  /// The subrange [offset, offset + count); the caller guarantees bounds.
  constexpr Span subspan(size_t offset, size_t count) const {
    return Span(data_ + offset, count);
  }

 private:
  T* data_;
  size_t size_;
};

}  // namespace stedb

#endif  // STEDB_COMMON_SPAN_H_
