#ifndef STEDB_COMMON_TIMER_H_
#define STEDB_COMMON_TIMER_H_

#include <chrono>

namespace stedb {

/// Monotonic wall-clock stopwatch used by the timing experiments
/// (paper Tables V and VI).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace stedb

#endif  // STEDB_COMMON_TIMER_H_
