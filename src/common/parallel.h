#ifndef STEDB_COMMON_PARALLEL_H_
#define STEDB_COMMON_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/thread_annotations.h"

namespace stedb {

/// Resolves a requested thread count to the number of workers to actually
/// use:
///  * `requested`, when positive (explicit pins always win — nested
///    fan-outs pin their children to 1, tests pin 1 vs 4);
///  * otherwise (requested == 0, every config's default) the STEDB_THREADS
///    environment variable when set to a positive integer — the knob bench
///    binaries, examples and CI use, with no per-binary plumbing;
///  * otherwise std::thread::hardware_concurrency().
/// The result is always >= 1.
int ResolveThreadCount(int requested);

/// A reusable blocking thread-pool runtime for deterministic parallelism.
///
/// Design contract: ParallelRunner parallelizes *scheduling only*. Results
/// are bit-identical for any thread count as long as callers follow two
/// rules that every compute layer in this codebase obeys:
///  1. each index of a ParallelFor touches only state it owns (disjoint
///     output slots / parameter blocks), and
///  2. per-index randomness comes from a counter-based stream
///     (`Rng::Fork(stream_id)` keyed by the index), never from a shared
///     sequential generator.
/// Floating-point reductions must additionally combine partial results in
/// index order — ShardedReduce below does exactly that, with a *caller-
/// fixed* shard count so the summation tree does not change with the pool
/// size.
///
/// threads() == 1 runs everything inline on the caller with zero pool
/// overhead, which doubles as the reference serial path: the parallel and
/// serial executions are the same algorithm by construction.
class ParallelRunner {
 public:
  /// `threads` is resolved via ResolveThreadCount (0 = hardware
  /// concurrency, STEDB_THREADS overrides). Workers are started once and
  /// reused across all ParallelFor calls.
  explicit ParallelRunner(int threads = 0);
  ~ParallelRunner();

  ParallelRunner(const ParallelRunner&) = delete;
  ParallelRunner& operator=(const ParallelRunner&) = delete;

  int threads() const { return threads_; }

  /// Runs body(i) for every i in [0, n), distributed over the pool (the
  /// calling thread participates). Blocks until every index completed.
  /// If any body throws, the first captured exception is rethrown after
  /// all workers drained; the remaining indices may or may not run.
  /// Not reentrant: do not call ParallelFor from inside a body running on
  /// the same runner.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  /// Sharded map-reduce over [0, n): the range is split into `num_shards`
  /// contiguous shards, `map(begin, end)` runs per shard on the pool, and
  /// the partial results are combined *in shard order* on the caller.
  /// `num_shards` is chosen by the caller and must not depend on the
  /// thread count when bit-reproducibility across pool sizes is required
  /// (it fixes the floating-point combination order).
  template <typename T, typename MapFn, typename CombineFn>
  T ShardedReduce(size_t n, size_t num_shards, T init, const MapFn& map,
                  const CombineFn& combine) {
    if (n == 0) return init;
    if (num_shards == 0) num_shards = 1;
    if (num_shards > n) num_shards = n;
    std::vector<T> parts(num_shards);
    const size_t base = n / num_shards;
    const size_t rem = n % num_shards;
    ParallelFor(num_shards, [&](size_t s) {
      const size_t begin = s * base + (s < rem ? s : rem);
      const size_t end = begin + base + (s < rem ? 1 : 0);
      parts[s] = map(begin, end);
    });
    T acc = std::move(init);
    for (size_t s = 0; s < num_shards; ++s) {
      acc = combine(std::move(acc), std::move(parts[s]));
    }
    return acc;
  }

 private:
  void WorkerLoop();
  /// Pulls chunks of the current job until the index space is exhausted.
  void RunJob();

  int threads_;
  std::vector<std::thread> workers_;

  Mutex mu_;
  std::condition_variable work_cv_;  ///< workers wait for a new job
  std::condition_variable done_cv_;  ///< caller waits for completion
  const std::function<void(size_t)>* job_ STEDB_GUARDED_BY(mu_) = nullptr;
  size_t job_size_ STEDB_GUARDED_BY(mu_) = 0;
  size_t job_chunk_ STEDB_GUARDED_BY(mu_) = 1;
  size_t next_index_ STEDB_GUARDED_BY(mu_) = 0;  ///< next unclaimed index
  size_t inflight_ STEDB_GUARDED_BY(mu_) = 0;  ///< claimed-but-unfinished
  /// Bumped per job so workers wake exactly once.
  uint64_t generation_ STEDB_GUARDED_BY(mu_) = 0;
  bool shutdown_ STEDB_GUARDED_BY(mu_) = false;
  std::exception_ptr first_error_ STEDB_GUARDED_BY(mu_);
};

/// The per-process shared pool for transient fan-outs (batch reads, row
/// gathers, per-batch extension solves): sized once at first use via
/// ResolveThreadCount(0) (STEDB_THREADS, else hardware concurrency) and
/// reused for the process lifetime, so hot paths stop paying a pool
/// spin-up per large call. Concurrent fan-outs are serialized by
/// RunParallelFor below — use that entry point rather than calling
/// ParallelFor on this runner directly.
ParallelRunner& SharedRunner();

/// Runs body(i) for every i in [0, n), on:
///  * the calling thread, when `threads` resolves to 1 (or n <= 1);
///  * the shared per-process pool, when `threads` == 0 (the default in
///    every config) and the pool is idle — concurrent `threads == 0`
///    fan-outs that find it busy get a dedicated runner instead of
///    queueing, so callers never block behind each other's jobs;
///  * a dedicated ParallelRunner(threads), when the caller pinned an
///    explicit count (pins always win and never contend on the shared
///    pool).
/// Results are bit-identical at any thread count under the ParallelRunner
/// contract, and the entry point is safe to call concurrently and from
/// inside another fan-out's body.
void RunParallelFor(int threads, size_t n,
                    const std::function<void(size_t)>& body);

/// Attempts to run the fan-out on the shared per-process pool. Returns
/// false — without running anything — when the pool is busy with another
/// caller's job or when this thread is already inside a shared-pool
/// fan-out (nested calls must not re-enter the runner). Building block
/// for RunParallelFor and PooledRunner.
bool TrySharedParallelFor(size_t n, const std::function<void(size_t)>& body);

/// The runner handle for long-lived training loops (one handle per Train
/// call, many ParallelFor calls per handle):
///  * an explicit pin (`threads` > 0) gets a dedicated pool for the
///    handle's lifetime, exactly like constructing a ParallelRunner —
///    pins never contend on the shared pool;
///  * the default (`threads` == 0) reuses the per-process SharedRunner()
///    pool call by call, so back-to-back Train calls stop paying a pool
///    spin-up each, and only falls back to one lazily created dedicated
///    pool (kept for the rest of the handle's lifetime) when the shared
///    pool is busy — e.g. two default-threaded trainers running
///    concurrently.
/// The parallelism degree is ResolveThreadCount(threads) on every route,
/// so results stay bit-identical whichever pool executes the job.
class PooledRunner {
 public:
  explicit PooledRunner(int threads);

  /// The parallelism degree every ParallelFor call of this handle uses.
  int threads() const { return threads_; }

  /// Same contract as ParallelRunner::ParallelFor (blocking, exceptions
  /// rethrown, not reentrant on the same handle).
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

 private:
  int threads_;
  std::unique_ptr<ParallelRunner> owned_;  ///< pinned, or busy-fallback
};

}  // namespace stedb

#endif  // STEDB_COMMON_PARALLEL_H_
