#include "src/common/rng.h"

namespace stedb {

uint64_t Rng::MixSeed(uint64_t seed, uint64_t stream) {
  // SplitMix64 finalizer applied to the stream-offset seed. Two rounds give
  // full avalanche, so nearby (seed, stream) pairs land far apart and
  // stream 0 differs from the parent stream.
  uint64_t z = seed + (stream + 1) * 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z = z ^ (z >> 31);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return weights.size();
  double r = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  // Floating-point slack: fall back to the last positive weight.
  for (size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return weights.size();
}

}  // namespace stedb
