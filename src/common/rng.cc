#include "src/common/rng.h"

namespace stedb {

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return weights.size();
  double r = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  // Floating-point slack: fall back to the last positive weight.
  for (size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return weights.size();
}

}  // namespace stedb
