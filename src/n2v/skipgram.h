#ifndef STEDB_N2V_SKIPGRAM_H_
#define STEDB_N2V_SKIPGRAM_H_

#include <vector>

#include "src/common/rng.h"
#include "src/graph/bipartite_graph.h"
#include "src/la/matrix.h"
#include "src/n2v/vocab.h"

namespace stedb::n2v {

/// Skip-gram-with-negative-sampling hyperparameters (paper Table II).
struct SkipGramConfig {
  size_t dim = 100;       ///< embedding dimension
  int window = 5;         ///< context window (symmetric)
  int negatives = 20;     ///< negative samples per positive pair
  double lr = 0.025;      ///< initial learning rate (linear decay to lr/100)
  int epochs = 10;        ///< passes over the walk corpus
  /// Worker threads for training (0 = default: STEDB_THREADS env var,
  /// else hardware concurrency). Bit-identical models at any thread count.
  int threads = 0;
};

/// Skip-gram with negative sampling (word2vec / Node2Vec objective),
/// implemented directly with per-pair SGD — no autograd dependency.
///
/// Stability support: any node may be *frozen*. Frozen nodes still
/// participate in the objective (they appear as centers, contexts and
/// negatives) but their input AND output vectors receive no gradient, which
/// is exactly the paper's dynamic adaptation: "we freeze the old nodes and
/// only update the embedding on the new nodes" (Section IV-A).
class SkipGramModel {
 public:
  SkipGramModel(size_t num_nodes, SkipGramConfig config, Rng& rng);

  /// Adds `extra` freshly (randomly) initialized nodes; existing vectors
  /// are untouched. Returns the id of the first new node.
  size_t Grow(size_t extra, Rng& rng);

  size_t num_nodes() const { return in_.rows(); }
  size_t dim() const { return config_.dim; }

  void SetFrozen(graph::NodeId n, bool frozen) { frozen_[n] = frozen; }
  bool IsFrozen(graph::NodeId n) const { return frozen_[n] != 0; }
  /// Freezes every currently existing node (used before dynamic training).
  void FreezeAll();

  /// Runs `epochs` passes of SGNS over the walks. `vocab` provides the
  /// noise distribution. Returns average loss of the final epoch.
  ///
  /// Execution model: walks are processed in small fixed-size mini-batches
  /// on a `config.threads`-wide ParallelRunner. Workers first compute every
  /// pair's residuals and center gradients against batch-start vectors
  /// (each walk on its own counter-based RNG stream for windows and
  /// negatives), then the updates are applied sharded by node id — no two
  /// workers write the same embedding row, and each row's updates run in
  /// pair order. Results are bit-identical for a fixed seed at any thread
  /// count.
  double Train(const std::vector<std::vector<graph::NodeId>>& walks,
               const NodeVocab& vocab, int epochs, Rng& rng);

  /// The (input) embedding of a node.
  la::Vector Embedding(graph::NodeId n) const { return in_.Row(n); }
  const la::Matrix& embedding_matrix() const { return in_; }

  const SkipGramConfig& config() const { return config_; }

 private:
  SkipGramConfig config_;
  la::Matrix in_;   ///< input (center) vectors — the published embedding
  la::Matrix out_;  ///< output (context) vectors
  std::vector<char> frozen_;
};

}  // namespace stedb::n2v

#endif  // STEDB_N2V_SKIPGRAM_H_
