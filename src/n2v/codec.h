#ifndef STEDB_N2V_CODEC_H_
#define STEDB_N2V_CODEC_H_

#include <memory>
#include <string>

#include "src/n2v/node2vec.h"
#include "src/store/model_codec.h"
#include "src/store/stored_model.h"

namespace stedb::n2v {

/// Snapshot method tag of the SkipGram/Node2Vec codec ("N2V " in the
/// header).
inline constexpr uint32_t kNode2VecMethodTag =
    store::FourCc('N', '2', 'V', ' ');

/// The SkipGram/Node2Vec model codec. The durable state of a Node2Vec
/// embedding is exactly its per-fact input vectors: the bipartite graph,
/// the vocabulary and the context matrix are all derivable from the
/// database (and are needed only to *train*, never to serve or recover),
/// and the stability contract freezes every vector the moment a later
/// extension starts. So the snapshot is the standard PHI section alone —
/// a store::VectorSetModel with relation -1 (Node2Vec embeds every
/// relation) — and the method-agnostic WAL captures all post-snapshot
/// extensions unchanged.
class Node2VecModelCodec : public store::ModelCodec {
 public:
  std::string method() const override { return "node2vec"; }
  uint32_t method_tag() const override { return kNode2VecMethodTag; }
  uint32_t codec_version() const override { return 1; }
  Result<std::string> Encode(const store::StoredModel& model) const override;
  Result<std::unique_ptr<store::StoredModel>> Decode(
      const store::ParsedSnapshot& snapshot) const override;
};

/// Snapshot of a live embedding's served state: every embedded fact's
/// current (about-to-be-frozen) vector as a VectorSetModel — what
/// AttachJournal persists and VerifyJournal diffs against.
std::unique_ptr<store::VectorSetModel> SnapshotVectors(
    const Node2VecEmbedding& embedding);

}  // namespace stedb::n2v

#endif  // STEDB_N2V_CODEC_H_
