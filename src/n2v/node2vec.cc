#include "src/n2v/node2vec.h"

namespace stedb::n2v {

Node2VecEmbedding::Node2VecEmbedding(const db::Database* database,
                                     Node2VecConfig config)
    : db_(database),
      config_(config),
      rng_(config.seed),
      graph_(database, config.graph),
      vocab_(0),
      model_(0, config.sg, rng_) {}

Result<Node2VecEmbedding> Node2VecEmbedding::TrainStatic(
    const db::Database* database, Node2VecConfig config) {
  Node2VecEmbedding emb(database, config);
  STEDB_RETURN_IF_ERROR(emb.graph_.BuildAll());

  emb.model_.Grow(emb.graph_.num_nodes(), emb.rng_);
  graph::Node2VecWalker walker(&emb.graph_, config.walk);
  std::vector<std::vector<graph::NodeId>> walks = walker.AllWalks(emb.rng_);

  emb.vocab_.Resize(emb.graph_.num_nodes());
  emb.vocab_.CountWalks(walks);
  emb.vocab_.BuildNoiseTable();
  emb.model_.Train(walks, emb.vocab_, config.sg.epochs, emb.rng_);
  return emb;
}

Status Node2VecEmbedding::ExtendToFacts(
    const std::vector<db::FactId>& new_facts) {
  if (new_facts.empty()) return Status::OK();
  // Everything that exists now becomes immutable.
  model_.FreezeAll();

  std::vector<graph::NodeId> new_nodes;
  for (db::FactId f : new_facts) {
    auto res = graph_.AddFact(f);
    if (!res.ok()) return res.status();
    for (graph::NodeId n : res.value()) new_nodes.push_back(n);
  }
  const size_t added = graph_.num_nodes() - model_.num_nodes();
  if (added > 0) model_.Grow(added, rng_);  // new rows start unfrozen

  graph::Node2VecWalker walker(&graph_, config_.walk);
  std::vector<std::vector<graph::NodeId>> walks =
      walker.WalksFrom(new_nodes, rng_);

  vocab_.Resize(graph_.num_nodes());
  vocab_.CountWalks(walks);
  vocab_.BuildNoiseTable();
  model_.Train(walks, vocab_, config_.dynamic_epochs, rng_);
  if (sink_) {
    // The vectors just trained are frozen by the next extension, so this
    // is the journaling point for the new facts' embeddings.
    for (db::FactId f : new_facts) {
      graph::NodeId n = graph_.NodeOfFact(f);
      if (n == graph::kNoNode) continue;
      STEDB_RETURN_IF_ERROR(sink_(f, model_.Embedding(n)));
    }
  }
  return Status::OK();
}

Result<la::Vector> Node2VecEmbedding::Embed(db::FactId f) const {
  graph::NodeId n = graph_.NodeOfFact(f);
  if (n == graph::kNoNode) {
    return Status::NotFound("fact has no node in the embedding graph");
  }
  return model_.Embedding(n);
}

}  // namespace stedb::n2v
