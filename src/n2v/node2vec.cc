#include "src/n2v/node2vec.h"

#include <algorithm>

#include "src/la/row_batch.h"

namespace stedb::n2v {

Node2VecEmbedding::Node2VecEmbedding(const db::Database* database,
                                     Node2VecConfig config)
    : db_(database),
      config_(config),
      rng_(config.seed),
      graph_(database, config.graph),
      vocab_(0),
      model_(0, config.sg, rng_) {}

Result<Node2VecEmbedding> Node2VecEmbedding::TrainStatic(
    const db::Database* database, Node2VecConfig config) {
  Node2VecEmbedding emb(database, config);
  STEDB_RETURN_IF_ERROR(emb.graph_.BuildAll());

  emb.model_.Grow(emb.graph_.num_nodes(), emb.rng_);
  graph::Node2VecWalker walker(&emb.graph_, config.walk);
  std::vector<std::vector<graph::NodeId>> walks = walker.AllWalks(emb.rng_);

  emb.vocab_.Resize(emb.graph_.num_nodes());
  emb.vocab_.CountWalks(walks);
  emb.vocab_.BuildNoiseTable();
  emb.model_.Train(walks, emb.vocab_, config.sg.epochs, emb.rng_);
  return emb;
}

Status Node2VecEmbedding::ExtendToFacts(
    const std::vector<db::FactId>& new_facts) {
  if (new_facts.empty()) {
    // Nothing to train, but appends a failing sink left queued still
    // flush — an empty call is the natural retry after a sink outage.
    return store::FlushPendingJournal(
        pending_journal_, sink_, [this](db::FactId f) {
          return model_.Embedding(graph_.NodeOfFact(f));
        });
  }
  // Everything that exists now becomes immutable.
  model_.FreezeAll();

  std::vector<graph::NodeId> new_nodes;
  for (db::FactId f : new_facts) {
    auto res = graph_.AddFact(f);
    if (!res.ok()) return res.status();
    for (graph::NodeId n : res.value()) new_nodes.push_back(n);
  }
  const size_t added = graph_.num_nodes() - model_.num_nodes();
  if (added > 0) model_.Grow(added, rng_);  // new rows start unfrozen

  graph::Node2VecWalker walker(&graph_, config_.walk);
  std::vector<std::vector<graph::NodeId>> walks =
      walker.WalksFrom(new_nodes, rng_);

  vocab_.Resize(graph_.num_nodes());
  vocab_.CountWalks(walks);
  vocab_.BuildNoiseTable();
  model_.Train(walks, vocab_, config_.dynamic_epochs, rng_);
  if (sink_) {
    // The vectors just trained are frozen by the next extension, so this
    // is the journaling point for the new facts' embeddings. Appends go
    // out in fact-id order with rejected entries retried on the next
    // call (see store::FlushPendingJournal).
    for (db::FactId f : new_facts) {
      if (graph_.NodeOfFact(f) != graph::kNoNode) {
        pending_journal_.push_back(f);
      }
    }
    STEDB_RETURN_IF_ERROR(store::FlushPendingJournal(
        pending_journal_, sink_, [this](db::FactId f) {
          return model_.Embedding(graph_.NodeOfFact(f));
        }));
  }
  return Status::OK();
}

Status Node2VecEmbedding::EmbedBatch(Span<const db::FactId> facts,
                                     la::MatrixView out) const {
  if (out.rows() != facts.size() || out.cols() != model_.dim()) {
    return Status::InvalidArgument(
        "EmbedBatch: output shape must be facts x dim");
  }
  const la::Matrix& rows = model_.embedding_matrix();
  const size_t bad = la::GatherRows(
      facts.size(), model_.dim(), config_.sg.threads, out, [&](size_t i) {
        graph::NodeId n = graph_.NodeOfFact(facts[i]);
        return n == graph::kNoNode ? nullptr : rows.RowPtr(n);
      });
  if (bad != facts.size()) {
    return Status::NotFound("fact " + std::to_string(facts[bad]) +
                            " has no node in the embedding graph");
  }
  return Status::OK();
}

std::vector<db::FactId> Node2VecEmbedding::EmbeddedFacts() const {
  std::vector<db::FactId> facts;
  facts.reserve(graph_.fact_nodes().size());
  for (const auto& [f, n] : graph_.fact_nodes()) {
    (void)n;
    facts.push_back(f);
  }
  std::sort(facts.begin(), facts.end());
  return facts;
}

Result<la::Vector> Node2VecEmbedding::Embed(db::FactId f) const {
  graph::NodeId n = graph_.NodeOfFact(f);
  if (n == graph::kNoNode) {
    return Status::NotFound("fact has no node in the embedding graph");
  }
  return model_.Embedding(n);
}

}  // namespace stedb::n2v
