#include "src/n2v/skipgram.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>

#include "src/common/parallel.h"
#include "src/la/kernels.h"

namespace stedb::n2v {
namespace {

/// Numerically clamped logistic function.
inline double Sigmoid(double x) {
  if (x > 30.0) return 1.0;
  if (x < -30.0) return 0.0;
  return 1.0 / (1.0 + std::exp(-x));
}

/// Walks per mini-batch of the simulate-then-apply pipeline. Fixed (never
/// derived from the thread count): the batch boundaries define which
/// parameters a walk's simulation starts from, so they must be identical
/// at any pool size.
constexpr size_t kWalkBatch = 8;

/// Per-walk result of the simulation phase: for every embedding row the
/// walk touched, the start value it read and the value its private online
/// SGD run left behind (the row's *delta* is cur − start). Content is a
/// pure function of the walk, the batch-start matrices and the walk's RNG
/// stream, so it is identical no matter which worker produced it.
struct WalkRec {
  /// One overlay per matrix side (input/center rows, output rows).
  struct Overlay {
    std::vector<graph::NodeId> nodes;  ///< touched rows, first-touch order
    std::vector<double> start;         ///< batch-start copies, slot-major
    std::vector<double> cur;           ///< privately updated copies

    void Clear() {
      nodes.clear();
      start.clear();
      cur.clear();
    }
  };

  Overlay in;
  Overlay out;
  double loss = 0.0;
  size_t pairs = 0;

  void Clear() {
    in.Clear();
    out.Clear();
    loss = 0.0;
    pairs = 0;
  }
};

}  // namespace

SkipGramModel::SkipGramModel(size_t num_nodes, SkipGramConfig config,
                             Rng& rng)
    : config_(config),
      in_(la::Matrix::RandomGaussian(num_nodes, config.dim,
                                     0.5 / static_cast<double>(config.dim),
                                     rng)),
      out_(num_nodes, config.dim, 0.0),
      frozen_(num_nodes, 0) {}

size_t SkipGramModel::Grow(size_t extra, Rng& rng) {
  const size_t old = in_.rows();
  // In-place row growth: one buffer resize each, no per-row round trips.
  in_.ResizeRows(old + extra);
  out_.ResizeRows(old + extra, 0.0);
  for (size_t r = old; r < old + extra; ++r) {
    double* row = in_.RowPtr(r);
    for (size_t c = 0; c < config_.dim; ++c) {
      row[c] = rng.NextGaussian(0.0, 0.5 / static_cast<double>(config_.dim));
    }
  }
  frozen_.resize(old + extra, 0);
  return old;
}

void SkipGramModel::FreezeAll() {
  std::fill(frozen_.begin(), frozen_.end(), 1);
}

double SkipGramModel::Train(
    const std::vector<std::vector<graph::NodeId>>& walks,
    const NodeVocab& vocab, int epochs, Rng& rng) {
  // Pair schedule: for each epoch, iterate walks in random order and emit
  // (center, context) pairs within the window, exactly as word2vec does on
  // sentences. The learning rate decays linearly over the global position
  // schedule.
  const size_t d = config_.dim;
  std::vector<size_t> order(walks.size());

  size_t total_positions = 0;
  for (const auto& w : walks) {
    if (w.size() > 1) total_positions += w.size();
  }
  const size_t schedule_total =
      std::max<size_t>(total_positions * static_cast<size_t>(epochs), 1);

  // PooledRunner: the default thread count reuses the per-process shared
  // pool across Train calls instead of spinning one up per call.
  PooledRunner runner(config_.threads);
  std::vector<WalkRec> recs(kWalkBatch);
  std::vector<size_t> pos_base(walks.size(), 0);
  // Per-walk-slot node → overlay-slot indices, reused across batches and
  // reset via the touched lists (never a full O(num_nodes) clear).
  std::vector<std::vector<int32_t>> in_slot(
      kWalkBatch, std::vector<int32_t>(num_nodes(), -1));
  std::vector<std::vector<int32_t>> out_slot(
      kWalkBatch, std::vector<int32_t>(num_nodes(), -1));

  double last_epoch_loss = 0.0;
  for (int e = 0; e < epochs; ++e) {
    std::iota(order.begin(), order.end(), size_t{0});
    rng.Shuffle(order);
    // One serial fork per epoch; each walk then gets the counter-based
    // stream keyed by its position in the shuffled order.
    const Rng epoch_root = rng.Fork();

    // Global position index of each walk's first node, for the lr decay.
    size_t acc = static_cast<size_t>(e) * total_positions;
    for (size_t p = 0; p < order.size(); ++p) {
      pos_base[p] = acc;
      if (walks[order[p]].size() > 1) acc += walks[order[p]].size();
    }

    double epoch_loss = 0.0;
    size_t epoch_pairs = 0;
    for (size_t batch = 0; batch < order.size(); batch += kWalkBatch) {
      const size_t batch_size = std::min(kWalkBatch, order.size() - batch);

      // ---- Phase A: one task per walk. Each task replays the exact
      // sequential word2vec update rule, but against a private
      // copy-on-first-touch overlay of the rows it visits (seeded from the
      // batch-start matrices, which no one writes during this phase). The
      // online dynamics within a walk — including the sigmoid saturation
      // that keeps repeated pairs from overshooting — are preserved. ----
      runner.ParallelFor(batch_size, [&, d](size_t k) {
        const size_t p = batch + k;
        const std::vector<graph::NodeId>& walk = walks[order[p]];
        WalkRec& rec = recs[k];
        rec.Clear();
        if (walk.size() < 2) return;
        Rng wr = epoch_root.Fork(p);
        std::vector<int32_t>& islot = in_slot[k];
        std::vector<int32_t>& oslot = out_slot[k];

        auto touch = [d](WalkRec::Overlay& ov, std::vector<int32_t>& slots,
                         const la::Matrix& m, graph::NodeId n) -> size_t {
          const size_t ni = static_cast<size_t>(n);
          if (slots[ni] < 0) {
            slots[ni] = static_cast<int32_t>(ov.nodes.size());
            ov.nodes.push_back(n);
            const double* src = m.RowPtr(ni);
            ov.start.insert(ov.start.end(), src, src + d);
            ov.cur.insert(ov.cur.end(), src, src + d);
          }
          return static_cast<size_t>(slots[ni]);
        };

        std::vector<double> grad(d);
        for (size_t pos = 0; pos < walk.size(); ++pos) {
          // Linear learning-rate decay over the whole schedule.
          const double progress =
              static_cast<double>(pos_base[p] + pos) /
              static_cast<double>(schedule_total);
          const double lr =
              std::max(config_.lr * (1.0 - progress), config_.lr * 0.01);
          const int window =
              1 + static_cast<int>(wr.NextUint(config_.window));
          const int lo = std::max<int>(0, static_cast<int>(pos) - window);
          const int hi = std::min<int>(static_cast<int>(walk.size()) - 1,
                                       static_cast<int>(pos) + window);
          for (int c = lo; c <= hi; ++c) {
            if (c == static_cast<int>(pos)) continue;
            const graph::NodeId center = walk[pos];
            const graph::NodeId context = walk[static_cast<size_t>(c)];
            const size_t cslot = touch(rec.in, islot, in_, center);
            double* vc = rec.in.cur.data() + cslot * d;
            std::fill(grad.begin(), grad.end(), 0.0);

            auto update_output = [&](graph::NodeId target, double label) {
              const size_t tslot = touch(rec.out, oslot, out_, target);
              double* vo = rec.out.cur.data() + tslot * d;
              const double pred = Sigmoid(la::Dot(vc, vo, d));
              const double err = pred - label;  // d(loss)/d(dot)
              rec.loss += label > 0.5 ? -std::log(std::max(pred, 1e-12))
                                      : -std::log(std::max(1.0 - pred, 1e-12));
              la::Axpy(err, vo, grad.data(), d);
              if (!frozen_[static_cast<size_t>(target)]) {
                la::Axpy(-(lr * err), vc, vo, d);
              }
            };

            update_output(context, 1.0);
            for (int neg = 0; neg < config_.negatives; ++neg) {
              const graph::NodeId noise = vocab.SampleNoise(wr);
              if (noise == context || noise == center) continue;
              update_output(noise, 0.0);
            }
            if (!frozen_[static_cast<size_t>(center)]) {
              la::Axpy(-lr, grad.data(), vc, d);
            }
            ++rec.pairs;
          }
        }
        // Reset the slot maps for the next batch (touched entries only).
        for (graph::NodeId n : rec.in.nodes) islot[static_cast<size_t>(n)] = -1;
        for (graph::NodeId n : rec.out.nodes) oslot[static_cast<size_t>(n)] = -1;
      });

      // ---- Phase B: apply row deltas (cur − start), sharded by node id.
      // A shard owns both the input and output row of its nodes, applies
      // them in walk order, and no other shard touches them: deterministic
      // at any shard count, so the count may follow the pool size. When
      // several walks of the batch touched the same row, their deltas are
      // *averaged* (classic data-parallel model averaging) — summing them
      // would scale the effective step by the batch's duplication factor
      // and overshoot on hub nodes. Frozen rows have zero delta by
      // construction and are skipped outright. ----
      const size_t nshards = static_cast<size_t>(runner.threads());
      runner.ParallelFor(nshards, [&, d](size_t shard) {
        // Touch counts for the rows this shard owns, per matrix side.
        std::unordered_map<size_t, double> in_scale, out_scale;
        for (size_t k = 0; k < batch_size; ++k) {
          for (graph::NodeId n : recs[k].in.nodes) {
            const size_t ni = static_cast<size_t>(n);
            if (ni % nshards == shard && !frozen_[ni]) in_scale[ni] += 1.0;
          }
          for (graph::NodeId n : recs[k].out.nodes) {
            const size_t ni = static_cast<size_t>(n);
            if (ni % nshards == shard && !frozen_[ni]) out_scale[ni] += 1.0;
          }
        }
        for (size_t k = 0; k < batch_size; ++k) {
          const WalkRec& rec = recs[k];
          for (size_t s = 0; s < rec.in.nodes.size(); ++s) {
            const size_t ni = static_cast<size_t>(rec.in.nodes[s]);
            if (ni % nshards != shard || frozen_[ni]) continue;
            const double scale = 1.0 / in_scale[ni];
            double* row = in_.RowPtr(ni);
            const double* start = rec.in.start.data() + s * d;
            const double* cur = rec.in.cur.data() + s * d;
            for (size_t i = 0; i < d; ++i) {
              row[i] += scale * (cur[i] - start[i]);
            }
          }
          for (size_t s = 0; s < rec.out.nodes.size(); ++s) {
            const size_t ni = static_cast<size_t>(rec.out.nodes[s]);
            if (ni % nshards != shard || frozen_[ni]) continue;
            const double scale = 1.0 / out_scale[ni];
            double* row = out_.RowPtr(ni);
            const double* start = rec.out.start.data() + s * d;
            const double* cur = rec.out.cur.data() + s * d;
            for (size_t i = 0; i < d; ++i) {
              row[i] += scale * (cur[i] - start[i]);
            }
          }
        }
      });

      // Loss combines in walk order.
      for (size_t k = 0; k < batch_size; ++k) {
        epoch_loss += recs[k].loss;
        epoch_pairs += recs[k].pairs;
      }
    }
    last_epoch_loss =
        epoch_pairs > 0 ? epoch_loss / static_cast<double>(epoch_pairs) : 0.0;
  }
  return last_epoch_loss;
}

}  // namespace stedb::n2v
