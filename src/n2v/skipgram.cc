#include "src/n2v/skipgram.h"

#include <algorithm>
#include <cmath>

namespace stedb::n2v {
namespace {

/// Numerically clamped logistic function.
inline double Sigmoid(double x) {
  if (x > 30.0) return 1.0;
  if (x < -30.0) return 0.0;
  return 1.0 / (1.0 + std::exp(-x));
}

}  // namespace

SkipGramModel::SkipGramModel(size_t num_nodes, SkipGramConfig config,
                             Rng& rng)
    : config_(config),
      in_(la::Matrix::RandomGaussian(num_nodes, config.dim,
                                     0.5 / static_cast<double>(config.dim),
                                     rng)),
      out_(num_nodes, config.dim, 0.0),
      frozen_(num_nodes, 0) {}

size_t SkipGramModel::Grow(size_t extra, Rng& rng) {
  const size_t old = in_.rows();
  la::Matrix nin(old + extra, config_.dim);
  la::Matrix nout(old + extra, config_.dim, 0.0);
  for (size_t r = 0; r < old; ++r) {
    nin.SetRow(r, in_.Row(r));
    nout.SetRow(r, out_.Row(r));
  }
  for (size_t r = old; r < old + extra; ++r) {
    for (size_t c = 0; c < config_.dim; ++c) {
      nin(r, c) = rng.NextGaussian(0.0, 0.5 / static_cast<double>(config_.dim));
    }
  }
  in_ = std::move(nin);
  out_ = std::move(nout);
  frozen_.resize(old + extra, 0);
  return old;
}

void SkipGramModel::FreezeAll() {
  std::fill(frozen_.begin(), frozen_.end(), 1);
}

double SkipGramModel::TrainPair(graph::NodeId center, graph::NodeId context,
                                const NodeVocab& vocab, double lr, Rng& rng) {
  const size_t d = config_.dim;
  double* vc = in_.RowPtr(center);
  std::vector<double> grad_center(d, 0.0);
  double loss = 0.0;

  auto update_output = [&](graph::NodeId target, double label) {
    double* vo = out_.RowPtr(target);
    double dot = 0.0;
    for (size_t i = 0; i < d; ++i) dot += vc[i] * vo[i];
    const double pred = Sigmoid(dot);
    const double err = pred - label;  // d(loss)/d(dot)
    loss += label > 0.5 ? -std::log(std::max(pred, 1e-12))
                        : -std::log(std::max(1.0 - pred, 1e-12));
    for (size_t i = 0; i < d; ++i) grad_center[i] += err * vo[i];
    if (!frozen_[target]) {
      for (size_t i = 0; i < d; ++i) vo[i] -= lr * err * vc[i];
    }
  };

  update_output(context, 1.0);
  for (int k = 0; k < config_.negatives; ++k) {
    graph::NodeId neg = vocab.SampleNoise(rng);
    if (neg == context || neg == center) continue;
    update_output(neg, 0.0);
  }
  if (!frozen_[center]) {
    for (size_t i = 0; i < d; ++i) vc[i] -= lr * grad_center[i];
  }
  return loss;
}

double SkipGramModel::Train(
    const std::vector<std::vector<graph::NodeId>>& walks,
    const NodeVocab& vocab, int epochs, Rng& rng) {
  // Pair schedule: for each epoch, iterate walks in random order and emit
  // (center, context) pairs within the window, exactly as word2vec does on
  // sentences.
  std::vector<size_t> order(walks.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  size_t total_pairs = 0;
  for (const auto& w : walks) {
    if (w.size() > 1) total_pairs += w.size();
  }
  total_pairs = std::max<size_t>(total_pairs * epochs, 1);

  double last_epoch_loss = 0.0;
  size_t processed = 0;
  for (int e = 0; e < epochs; ++e) {
    rng.Shuffle(order);
    double epoch_loss = 0.0;
    size_t epoch_pairs = 0;
    for (size_t oi : order) {
      const std::vector<graph::NodeId>& walk = walks[oi];
      if (walk.size() < 2) continue;
      for (size_t pos = 0; pos < walk.size(); ++pos) {
        // Linear learning-rate decay over the whole schedule.
        const double progress =
            static_cast<double>(processed) / static_cast<double>(total_pairs);
        const double lr =
            std::max(config_.lr * (1.0 - progress), config_.lr * 0.01);
        ++processed;
        const int window = 1 + static_cast<int>(rng.NextUint(config_.window));
        const int lo = std::max<int>(0, static_cast<int>(pos) - window);
        const int hi = std::min<int>(static_cast<int>(walk.size()) - 1,
                                     static_cast<int>(pos) + window);
        for (int c = lo; c <= hi; ++c) {
          if (c == static_cast<int>(pos)) continue;
          epoch_loss += TrainPair(walk[pos], walk[c], vocab, lr, rng);
          ++epoch_pairs;
        }
      }
    }
    last_epoch_loss = epoch_pairs > 0 ? epoch_loss / epoch_pairs : 0.0;
  }
  return last_epoch_loss;
}

}  // namespace stedb::n2v
