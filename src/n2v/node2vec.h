#ifndef STEDB_N2V_NODE2VEC_H_
#define STEDB_N2V_NODE2VEC_H_

#include <vector>

#include "src/common/span.h"
#include "src/common/status.h"
#include "src/db/database.h"
#include "src/graph/bipartite_graph.h"
#include "src/graph/walker.h"
#include "src/la/matrix.h"
#include "src/n2v/skipgram.h"
#include "src/n2v/vocab.h"
#include "src/store/sink.h"

namespace stedb::n2v {

/// Full configuration of the Node2Vec database embedder (paper Section IV +
/// Table II defaults).
struct Node2VecConfig {
  graph::GraphOptions graph;
  graph::WalkConfig walk;
  SkipGramConfig sg;
  /// Epochs for each dynamic continuation (paper: 5).
  int dynamic_epochs = 5;
  uint64_t seed = 1;
};

/// A trained Node2Vec embedding of a database, extensible to new facts with
/// old vectors frozen (the paper's dynamic adaptation).
///
/// Usage:
///   auto emb = Node2VecEmbedding::TrainStatic(&db, config);   // static phase
///   ... insert facts into db ...
///   emb->ExtendToFacts(new_fact_ids);                          // dynamic phase
///
/// The database must outlive this object, and facts passed to ExtendToFacts
/// must already be inserted.
class Node2VecEmbedding {
 public:
  /// Runs the static phase: builds the bipartite graph over all live facts,
  /// samples the walk corpus, trains SGNS.
  static Result<Node2VecEmbedding> TrainStatic(const db::Database* database,
                                               Node2VecConfig config);

  /// Extends the embedding to newly inserted facts: grows the graph and the
  /// model, samples walks starting at the new nodes, and continues SGD with
  /// every pre-existing vector frozen. Old embeddings are provably
  /// unchanged (tested).
  Status ExtendToFacts(const std::vector<db::FactId>& new_facts);

  /// Embedding of a fact; NotFound when the fact was never embedded.
  Result<la::Vector> Embed(db::FactId f) const;

  /// Batch read: fills `out` (facts.size() x dim()) with one embedding row
  /// per requested fact; large batches fan out over a ParallelRunner
  /// (`config.sg.threads` wide) with byte-identical results at any thread
  /// count. NotFound when any fact has no node, InvalidArgument on a shape
  /// mismatch; `out` is unspecified after an error.
  Status EmbedBatch(Span<const db::FactId> facts, la::MatrixView out) const;

  /// Durability hook: called once per fact newly embedded by
  /// ExtendToFacts, with its final (frozen-from-now-on) vector, in
  /// fact-id order within each batch. A failing sink fails ExtendToFacts,
  /// but the unjournaled facts are retried on the next call. Pass an
  /// empty function to detach (attaching resets the retry queue).
  void set_extension_sink(store::EmbeddingSink sink) {
    sink_ = std::move(sink);
    pending_journal_.clear();
  }

  const graph::BipartiteGraph& graph() const { return graph_; }
  const SkipGramModel& model() const { return model_; }
  size_t dim() const { return model_.dim(); }

  /// Every embedded fact (all relations), ascending by fact id — the
  /// deterministic enumeration the snapshot codec serializes.
  std::vector<db::FactId> EmbeddedFacts() const;

 private:
  Node2VecEmbedding(const db::Database* database, Node2VecConfig config);

  const db::Database* db_;
  Node2VecConfig config_;
  Rng rng_;  // declared before model_: the model's init draws from it
  graph::BipartiteGraph graph_;
  NodeVocab vocab_;
  SkipGramModel model_;
  store::EmbeddingSink sink_;
  /// Facts embedded while a sink was attached but not yet successfully
  /// journaled; flushed, sorted, by the next ExtendToFacts.
  std::vector<db::FactId> pending_journal_;
};

}  // namespace stedb::n2v

#endif  // STEDB_N2V_NODE2VEC_H_
