#ifndef STEDB_N2V_VOCAB_H_
#define STEDB_N2V_VOCAB_H_

#include <vector>

#include "src/graph/alias_sampler.h"
#include "src/graph/bipartite_graph.h"

namespace stedb::n2v {

/// Node-frequency bookkeeping for skip-gram training: counts node
/// occurrences in a walk corpus and exposes the word2vec-style noise
/// distribution (frequency^0.75) as an alias table for O(1) negative
/// sampling.
class NodeVocab {
 public:
  explicit NodeVocab(size_t num_nodes) : counts_(num_nodes, 0) {}

  /// Accumulates occurrence counts from a walk corpus. May be called
  /// repeatedly (e.g. when new dynamic walks arrive).
  void CountWalks(const std::vector<std::vector<graph::NodeId>>& walks);

  /// Grows the vocabulary to cover nodes added to the graph.
  void Resize(size_t num_nodes);

  /// (Re)builds the noise alias table from current counts. Nodes with zero
  /// count receive a small floor weight so every node is sampleable.
  void BuildNoiseTable(double power = 0.75);

  /// Draws one negative node. BuildNoiseTable must have been called.
  graph::NodeId SampleNoise(Rng& rng) const {
    return static_cast<graph::NodeId>(noise_.Sample(rng));
  }

  size_t size() const { return counts_.size(); }
  uint64_t count(graph::NodeId n) const { return counts_[n]; }
  uint64_t total_count() const { return total_; }

 private:
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
  graph::AliasSampler noise_;
};

}  // namespace stedb::n2v

#endif  // STEDB_N2V_VOCAB_H_
