#ifndef STEDB_N2V_DYNAMIC_NODE2VEC_H_
#define STEDB_N2V_DYNAMIC_NODE2VEC_H_

#include <unordered_map>
#include <vector>

#include "src/db/database.h"
#include "src/la/matrix.h"

namespace stedb::n2v {

/// A frozen copy of fact embeddings taken at a point in time, used to
/// *verify* the stability contract: after any dynamic extension, every
/// previously embedded fact must map to a bit-identical vector.
///
/// Both embedding methods (Node2Vec and FoRWaRD) are checked against this in
/// tests and, optionally, in the experiment harness (paranoid mode).
class EmbeddingSnapshot {
 public:
  /// Records `vectors[f]` for every (fact, vector) pair provided.
  void Record(db::FactId fact, la::Vector vector);

  size_t size() const { return vectors_.size(); }
  bool Contains(db::FactId fact) const { return vectors_.count(fact) > 0; }
  const la::Vector& Get(db::FactId fact) const { return vectors_.at(fact); }

  /// Largest absolute per-coordinate deviation between the snapshot and the
  /// current vectors supplied by `lookup` for the snapshotted facts.
  /// A stable extension must return exactly 0.0.
  template <typename Lookup>
  double MaxDrift(Lookup&& lookup) const {
    double worst = 0.0;
    for (const auto& [fact, old_vec] : vectors_) {
      la::Vector now = lookup(fact);
      for (size_t i = 0; i < old_vec.size(); ++i) {
        double d = now[i] - old_vec[i];
        if (d < 0) d = -d;
        if (d > worst) worst = d;
      }
    }
    return worst;
  }

  const std::unordered_map<db::FactId, la::Vector>& vectors() const {
    return vectors_;
  }

 private:
  std::unordered_map<db::FactId, la::Vector> vectors_;
};

}  // namespace stedb::n2v

#endif  // STEDB_N2V_DYNAMIC_NODE2VEC_H_
