#include "src/n2v/dynamic_node2vec.h"

namespace stedb::n2v {

void EmbeddingSnapshot::Record(db::FactId fact, la::Vector vector) {
  vectors_[fact] = std::move(vector);
}

}  // namespace stedb::n2v
