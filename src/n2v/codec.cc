#include "src/n2v/codec.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace stedb::n2v {

Result<std::string> Node2VecModelCodec::Encode(
    const store::StoredModel& model) const {
  // Any StoredModel serializes: the codec persists exactly the standard
  // embeddings payload, so it does not care which concrete type carries it.
  if (model.dim() == 0) {
    return Status::InvalidArgument("node2vec codec: model has dimension 0");
  }
  store::SnapshotBuilder builder(kNode2VecMethodTag, codec_version(),
                                 model.dim(), model.relation());
  builder.AddSection(store::kPhiSectionTag, store::EncodePhiPayload(model));
  return std::move(builder).Finish();
}

Result<std::unique_ptr<store::StoredModel>> Node2VecModelCodec::Decode(
    const store::ParsedSnapshot& snapshot) const {
  if (snapshot.header.codec_version != codec_version()) {
    return Status::InvalidArgument(
        "snapshot: unsupported Node2Vec codec version " +
        std::to_string(snapshot.header.codec_version));
  }
  const store::SnapshotSection* phi = snapshot.Find(store::kPhiSectionTag);
  if (phi == nullptr) {
    return Status::InvalidArgument("snapshot: missing PHI section");
  }
  auto model = std::make_unique<store::VectorSetModel>(
      static_cast<size_t>(snapshot.header.dim),
      static_cast<db::RelationId>(snapshot.header.relation));
  STEDB_RETURN_IF_ERROR(
      store::DecodePhiPayload(*phi, model->dim(), model.get()));
  return std::unique_ptr<store::StoredModel>(std::move(model));
}

std::unique_ptr<store::VectorSetModel> SnapshotVectors(
    const Node2VecEmbedding& embedding) {
  auto model = std::make_unique<store::VectorSetModel>(embedding.dim(),
                                                       /*relation=*/-1);
  std::vector<db::FactId> facts = embedding.EmbeddedFacts();
  for (db::FactId f : facts) {
    model->set_phi(
        f, embedding.model().Embedding(embedding.graph().NodeOfFact(f)));
  }
  return model;
}

}  // namespace stedb::n2v
