#include "src/n2v/vocab.h"

#include <cmath>

namespace stedb::n2v {

void NodeVocab::CountWalks(
    const std::vector<std::vector<graph::NodeId>>& walks) {
  for (const auto& walk : walks) {
    for (graph::NodeId n : walk) {
      if (static_cast<size_t>(n) >= counts_.size()) {
        counts_.resize(n + 1, 0);
      }
      ++counts_[n];
      ++total_;
    }
  }
}

void NodeVocab::Resize(size_t num_nodes) {
  if (num_nodes > counts_.size()) counts_.resize(num_nodes, 0);
}

void NodeVocab::BuildNoiseTable(double power) {
  std::vector<double> weights(counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) {
    // Floor of 1 keeps unseen (fresh dynamic) nodes reachable as negatives.
    const double c = static_cast<double>(counts_[i] > 0 ? counts_[i] : 1);
    weights[i] = std::pow(c, power);
  }
  noise_.Build(weights);
}

}  // namespace stedb::n2v
