#ifndef STEDB_DATA_REGISTRY_H_
#define STEDB_DATA_REGISTRY_H_

#include <string>
#include <vector>

#include "src/data/generator.h"

namespace stedb::data {

/// Synthetic counterparts of the paper's five benchmark databases
/// (Table I). Each generator reproduces the original's *schema shape*
/// (relation count, FK topology, attribute mix) and approximate scale, and
/// plants a latent-class signal that is carried only through FK structure
/// and attribute value distributions — see DESIGN.md §4 for the
/// substitution rationale.

/// Hepatitis (ECML/PKDD 2002): 7 relations; predict DISPAT.type (B vs C).
Result<GeneratedDataset> MakeHepatitis(const GenConfig& cfg);

/// Mondial: 40 relations; predict TARGET.target (binary religion class).
Result<GeneratedDataset> MakeMondial(const GenConfig& cfg);

/// Genes (KDD Cup 2001): 3 relations; predict CLASSIFICATION.localization
/// (15 classes).
Result<GeneratedDataset> MakeGenes(const GenConfig& cfg);

/// Mutagenesis: 3 relations; predict MOLECULE.mutagenic (binary).
Result<GeneratedDataset> MakeMutagenesis(const GenConfig& cfg);

/// World: 3 relations; predict COUNTRY.continent (7 classes).
Result<GeneratedDataset> MakeWorld(const GenConfig& cfg);

/// Names accepted by MakeDataset, in the paper's Table I order.
std::vector<std::string> DatasetNames();

/// Dispatches by dataset name ("hepatitis", "mondial", "genes",
/// "mutagenesis", "world").
Result<GeneratedDataset> MakeDataset(const std::string& name,
                                     const GenConfig& cfg);

}  // namespace stedb::data

#endif  // STEDB_DATA_REGISTRY_H_
