#include <memory>

#include "src/data/registry.h"

namespace stedb::data {
namespace {

using db::AttrType;
using db::Value;

constexpr int kNumLocalizations = 15;

/// Schema mirror of the KDD Cup 2001 Genes database: a classification
/// relation (gene id + predicted localization), gene-gene interactions, and
/// per-gene composition records — 3 relations / ~15 attributes (Table I).
Result<std::shared_ptr<const db::Schema>> BuildSchema() {
  auto schema = std::make_shared<db::Schema>();
  STEDB_RETURN_IF_ERROR(schema
                            ->AddRelation("CLASSIFICATION",
                                          {{"g_id", AttrType::kText},
                                           {"localization", AttrType::kText}},
                                          {"g_id"})
                            .status());
  STEDB_RETURN_IF_ERROR(schema
                            ->AddRelation("INTERACTION",
                                          {{"i_id", AttrType::kText},
                                           {"gene1", AttrType::kText},
                                           {"gene2", AttrType::kText},
                                           {"itype", AttrType::kText},
                                           {"expr_corr", AttrType::kReal}},
                                          {"i_id"})
                            .status());
  STEDB_RETURN_IF_ERROR(schema
                            ->AddRelation("COMPOSITION",
                                          {{"c_id", AttrType::kText},
                                           {"g_id", AttrType::kText},
                                           {"essential", AttrType::kText},
                                           {"chromosome", AttrType::kInt},
                                           {"complex", AttrType::kText},
                                           {"phenotype", AttrType::kText},
                                           {"motif", AttrType::kText}},
                                          {"c_id"})
                            .status());
  STEDB_RETURN_IF_ERROR(
      schema->AddForeignKey("INTERACTION", {"gene1"}, "CLASSIFICATION")
          .status());
  STEDB_RETURN_IF_ERROR(
      schema->AddForeignKey("INTERACTION", {"gene2"}, "CLASSIFICATION")
          .status());
  STEDB_RETURN_IF_ERROR(
      schema->AddForeignKey("COMPOSITION", {"g_id"}, "CLASSIFICATION")
          .status());
  return std::shared_ptr<const db::Schema>(schema);
}

std::vector<std::string> MakeVocab(const std::string& prefix, size_t n) {
  std::vector<std::string> vocab;
  vocab.reserve(n);
  for (size_t i = 0; i < n; ++i) vocab.push_back(MakeId(prefix, i));
  return vocab;
}

}  // namespace

Result<GeneratedDataset> MakeGenes(const GenConfig& cfg) {
  STEDB_ASSIGN_OR_RETURN(std::shared_ptr<const db::Schema> schema,
                         BuildSchema());
  db::Database database(schema);
  Rng rng(cfg.seed ^ 0x47454e45ull);  // "GENE"

  const size_t n_genes = ScaledCount(860, cfg.scale, kNumLocalizations * 3);
  const size_t comp_per_gene = 4;
  const size_t n_interactions = ScaledCount(900, cfg.scale, 20);

  std::vector<std::string> localizations;
  for (int c = 0; c < kNumLocalizations; ++c) {
    localizations.push_back(MakeId("loc", c));
  }
  const std::vector<std::string> complex_vocab = MakeVocab("cpx", 40);
  const std::vector<std::string> phenotype_vocab = MakeVocab("ph", 35);
  const std::vector<std::string> motif_vocab = MakeVocab("mo", 45);
  const std::vector<std::string> itype_vocab = {"physical", "genetic",
                                                "regulatory"};

  // Zipf-ish class prior: a few localizations dominate, like the real data.
  std::vector<double> prior(kNumLocalizations);
  for (int c = 0; c < kNumLocalizations; ++c) prior[c] = 1.0 / (1.0 + c * 0.4);

  std::vector<int> gene_cls(n_genes);
  std::vector<std::vector<size_t>> genes_by_cls(kNumLocalizations);
  for (size_t g = 0; g < n_genes; ++g) {
    const int cls = static_cast<int>(rng.NextWeighted(prior));
    gene_cls[g] = cls;
    genes_by_cls[cls].push_back(g);
    STEDB_RETURN_IF_ERROR(
        database
            .Insert("CLASSIFICATION", {Value::Text(MakeId("g", g)),
                                       Value::Text(localizations[cls])})
            .status());
  }

  // Composition rows: the main per-gene signal carriers.
  size_t c_row = 0;
  for (size_t g = 0; g < n_genes; ++g) {
    const int cls = gene_cls[g];
    for (size_t k = 0; k < comp_per_gene; ++k) {
      STEDB_RETURN_IF_ERROR(
          database
              .Insert(
                  "COMPOSITION",
                  {Value::Text(MakeId("c", c_row++)),
                   Value::Text(MakeId("g", g)),
                   MaybeNull(Value::Text(rng.NextBool(0.3) ? "essential"
                                                           : "non-essential"),
                             cfg, rng),
                   MaybeNull(Value::Int(1 + static_cast<int64_t>(
                                                rng.NextUint(16))),
                             cfg, rng),
                   MaybeNull(
                       Value::Text(ClassConditionalCategory(
                           complex_vocab, cls, kNumLocalizations, cfg.signal,
                           rng)),
                       cfg, rng),
                   MaybeNull(
                       Value::Text(ClassConditionalCategory(
                           phenotype_vocab, cls, kNumLocalizations,
                           cfg.signal, rng)),
                       cfg, rng),
                   MaybeNull(
                       Value::Text(ClassConditionalCategory(
                           motif_vocab, cls, kNumLocalizations, cfg.signal,
                           rng)),
                       cfg, rng)})
              .status());
    }
  }

  // Interactions: homophilous — co-localized genes interact preferentially,
  // so a gene's neighbors reveal its class through *their* compositions.
  for (size_t i = 0; i < n_interactions; ++i) {
    const size_t g1 = rng.NextIndex(n_genes);
    size_t g2 = g1;
    if (rng.NextBool(cfg.signal * 0.8) &&
        genes_by_cls[gene_cls[g1]].size() > 1) {
      const std::vector<size_t>& peers = genes_by_cls[gene_cls[g1]];
      for (int tries = 0; tries < 8 && g2 == g1; ++tries) {
        g2 = peers[rng.NextIndex(peers.size())];
      }
    } else {
      for (int tries = 0; tries < 8 && g2 == g1; ++tries) {
        g2 = rng.NextIndex(n_genes);
      }
    }
    if (g2 == g1) continue;
    const double corr = gene_cls[g1] == gene_cls[g2]
                            ? rng.NextGaussian(0.6, 0.2)
                            : rng.NextGaussian(0.1, 0.25);
    STEDB_RETURN_IF_ERROR(
        database
            .Insert("INTERACTION",
                    {Value::Text(MakeId("i", i)), Value::Text(MakeId("g", g1)),
                     Value::Text(MakeId("g", g2)),
                     MaybeNull(Value::Text(itype_vocab[rng.NextIndex(
                                   itype_vocab.size())]),
                               cfg, rng),
                     MaybeNull(Value::Real(corr), cfg, rng)})
            .status());
  }

  return MakeGeneratedDataset("genes", std::move(database),
                              schema->RelationIndex("CLASSIFICATION"),
                              /*pred_attr=*/1, localizations);
}

}  // namespace stedb::data
