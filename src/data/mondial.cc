#include <memory>

#include "src/data/registry.h"

namespace stedb::data {
namespace {

using db::AttrType;
using db::Value;

constexpr size_t kNumSatellites = 30;

/// Schema mirror of the Mondial geography database: a binary TARGET
/// relation over countries (the paper predicts the religion class from it),
/// core geographic/political relations, and a spread of thematic satellite
/// relations keyed to countries. 40 relations / ~165 attributes, matching
/// the shape in the paper's Table I.
Result<std::shared_ptr<const db::Schema>> BuildSchema() {
  auto schema = std::make_shared<db::Schema>();
  STEDB_RETURN_IF_ERROR(schema
                            ->AddRelation("COUNTRY",
                                          {{"code", AttrType::kText},
                                           {"name", AttrType::kText},
                                           {"area", AttrType::kReal},
                                           {"population", AttrType::kInt}},
                                          {"code"})
                            .status());
  STEDB_RETURN_IF_ERROR(schema
                            ->AddRelation("TARGET",
                                          {{"country", AttrType::kText},
                                           {"target", AttrType::kText}},
                                          {"country"})
                            .status());
  STEDB_RETURN_IF_ERROR(schema
                            ->AddRelation("PROVINCE",
                                          {{"p_id", AttrType::kText},
                                           {"country", AttrType::kText},
                                           {"name", AttrType::kText},
                                           {"area", AttrType::kReal},
                                           {"population", AttrType::kInt}},
                                          {"p_id"})
                            .status());
  STEDB_RETURN_IF_ERROR(schema
                            ->AddRelation("CITY",
                                          {{"c_id", AttrType::kText},
                                           {"province", AttrType::kText},
                                           {"name", AttrType::kText},
                                           {"population", AttrType::kInt},
                                           {"elevation", AttrType::kReal}},
                                          {"c_id"})
                            .status());
  STEDB_RETURN_IF_ERROR(schema
                            ->AddRelation("ECONOMY",
                                          {{"e_id", AttrType::kText},
                                           {"country", AttrType::kText},
                                           {"gdp", AttrType::kReal},
                                           {"agriculture", AttrType::kReal},
                                           {"industry", AttrType::kReal},
                                           {"inflation", AttrType::kReal}},
                                          {"e_id"})
                            .status());
  STEDB_RETURN_IF_ERROR(schema
                            ->AddRelation("GOVERNMENT",
                                          {{"g_id", AttrType::kText},
                                           {"country", AttrType::kText},
                                           {"form", AttrType::kText},
                                           {"head", AttrType::kText}},
                                          {"g_id"})
                            .status());
  STEDB_RETURN_IF_ERROR(schema
                            ->AddRelation("LANGUAGE",
                                          {{"l_id", AttrType::kText},
                                           {"country", AttrType::kText},
                                           {"name", AttrType::kText},
                                           {"percentage", AttrType::kReal}},
                                          {"l_id"})
                            .status());
  STEDB_RETURN_IF_ERROR(schema
                            ->AddRelation("ETHNICGROUP",
                                          {{"eg_id", AttrType::kText},
                                           {"country", AttrType::kText},
                                           {"group_name", AttrType::kText},
                                           {"percentage", AttrType::kReal}},
                                          {"eg_id"})
                            .status());
  STEDB_RETURN_IF_ERROR(schema
                            ->AddRelation("BORDER",
                                          {{"b_id", AttrType::kText},
                                           {"country1", AttrType::kText},
                                           {"country2", AttrType::kText},
                                           {"length", AttrType::kReal}},
                                          {"b_id"})
                            .status());
  STEDB_RETURN_IF_ERROR(schema
                            ->AddRelation("MEMBERSHIP",
                                          {{"m_id", AttrType::kText},
                                           {"country", AttrType::kText},
                                           {"organization", AttrType::kText},
                                           {"mtype", AttrType::kText}},
                                          {"m_id"})
                            .status());
  // 30 thematic satellite relations SAT00..SAT29, each country-keyed with a
  // categorical and a numeric attribute (~120 further attributes).
  for (size_t s = 0; s < kNumSatellites; ++s) {
    const std::string name = MakeId("SAT", s);
    STEDB_RETURN_IF_ERROR(schema
                              ->AddRelation(name,
                                            {{"s_id", AttrType::kText},
                                             {"country", AttrType::kText},
                                             {"category", AttrType::kText},
                                             {"val", AttrType::kReal}},
                                            {"s_id"})
                              .status());
    STEDB_RETURN_IF_ERROR(
        schema->AddForeignKey(name, {"country"}, "COUNTRY").status());
  }
  STEDB_RETURN_IF_ERROR(
      schema->AddForeignKey("TARGET", {"country"}, "COUNTRY").status());
  STEDB_RETURN_IF_ERROR(
      schema->AddForeignKey("PROVINCE", {"country"}, "COUNTRY").status());
  STEDB_RETURN_IF_ERROR(
      schema->AddForeignKey("CITY", {"province"}, "PROVINCE").status());
  STEDB_RETURN_IF_ERROR(
      schema->AddForeignKey("ECONOMY", {"country"}, "COUNTRY").status());
  STEDB_RETURN_IF_ERROR(
      schema->AddForeignKey("GOVERNMENT", {"country"}, "COUNTRY").status());
  STEDB_RETURN_IF_ERROR(
      schema->AddForeignKey("LANGUAGE", {"country"}, "COUNTRY").status());
  STEDB_RETURN_IF_ERROR(
      schema->AddForeignKey("ETHNICGROUP", {"country"}, "COUNTRY").status());
  STEDB_RETURN_IF_ERROR(
      schema->AddForeignKey("BORDER", {"country1"}, "COUNTRY").status());
  STEDB_RETURN_IF_ERROR(
      schema->AddForeignKey("BORDER", {"country2"}, "COUNTRY").status());
  STEDB_RETURN_IF_ERROR(
      schema->AddForeignKey("MEMBERSHIP", {"country"}, "COUNTRY").status());
  return std::shared_ptr<const db::Schema>(schema);
}

std::vector<std::string> MakeVocab(const std::string& prefix, size_t n) {
  std::vector<std::string> vocab;
  vocab.reserve(n);
  for (size_t i = 0; i < n; ++i) vocab.push_back(MakeId(prefix, i));
  return vocab;
}

}  // namespace

Result<GeneratedDataset> MakeMondial(const GenConfig& cfg) {
  STEDB_ASSIGN_OR_RETURN(std::shared_ptr<const db::Schema> schema,
                         BuildSchema());
  db::Database database(schema);
  Rng rng(cfg.seed ^ 0x4d4f4e44ull);  // "MOND"

  const size_t n_countries = ScaledCount(206, cfg.scale, 20);
  const size_t provinces_per_country = 5;
  const size_t cities_per_province = 3;
  const size_t rows_per_satellite_country = 2;

  const std::vector<std::string> lang_vocab = MakeVocab("lng", 60);
  const std::vector<std::string> ethnic_vocab = MakeVocab("eth", 50);
  const std::vector<std::string> org_vocab = MakeVocab("org", 30);
  const std::vector<std::string> form_vocab = {"republic", "monarchy",
                                               "theocracy", "federation"};

  // Per-satellite categorical vocabularies.
  std::vector<std::vector<std::string>> sat_vocab;
  for (size_t s = 0; s < kNumSatellites; ++s) {
    sat_vocab.push_back(MakeVocab("s" + std::to_string(s) + "v", 12));
  }

  std::vector<int> country_cls(n_countries);
  std::vector<std::string> codes(n_countries);
  size_t prov_row = 0, city_row = 0, row = 0;

  for (size_t c = 0; c < n_countries; ++c) {
    // Binary target, ~62% majority (paper: 114 christian / 71 non).
    const int cls = rng.NextBool(0.62) ? 0 : 1;
    country_cls[c] = cls;
    codes[c] = MakeId("c", c);
    STEDB_RETURN_IF_ERROR(
        database
            .Insert("COUNTRY",
                    {Value::Text(codes[c]), Value::Text(MakeId("name", c)),
                     MaybeNull(Value::Real(std::abs(
                                   rng.NextGaussian(300.0, 280.0))),
                               cfg, rng),
                     MaybeNull(Value::Int(static_cast<int64_t>(std::abs(
                                   rng.NextGaussian(3e7, 5e7)))),
                               cfg, rng)})
            .status());
    STEDB_RETURN_IF_ERROR(
        database
            .Insert("TARGET",
                    {Value::Text(codes[c]),
                     Value::Text(cls == 0 ? "christian" : "non-christian")})
            .status());

    // Provinces and cities: structure-only context (no label signal).
    for (size_t p = 0; p < provinces_per_country; ++p) {
      const std::string p_id = MakeId("pr", prov_row++);
      STEDB_RETURN_IF_ERROR(
          database
              .Insert("PROVINCE",
                      {Value::Text(p_id), Value::Text(codes[c]),
                       Value::Text(MakeId("pname", prov_row)),
                       MaybeNull(Value::Real(std::abs(
                                     rng.NextGaussian(60.0, 50.0))),
                                 cfg, rng),
                       MaybeNull(Value::Int(static_cast<int64_t>(std::abs(
                                     rng.NextGaussian(5e6, 8e6)))),
                                 cfg, rng)})
              .status());
      for (size_t k = 0; k < cities_per_province; ++k) {
        STEDB_RETURN_IF_ERROR(
            database
                .Insert("CITY",
                        {Value::Text(MakeId("ci", city_row)),
                         Value::Text(p_id),
                         Value::Text(MakeId("cname", city_row)),
                         MaybeNull(Value::Int(static_cast<int64_t>(std::abs(
                                       rng.NextGaussian(5e5, 9e5)))),
                                   cfg, rng),
                         MaybeNull(Value::Real(rng.NextGaussian(300.0, 250.0)),
                                   cfg, rng)})
                .status());
        ++city_row;
      }
    }

    // Thematic relations: each carries a *weak* class-conditional signal;
    // only their aggregate identifies the class — Mondial is the hardest
    // dataset in the paper, so the per-relation signal is deliberately low.
    const double weak = cfg.signal * 0.55;
    STEDB_RETURN_IF_ERROR(
        database
            .Insert("ECONOMY",
                    {Value::Text(MakeId("ec", c)), Value::Text(codes[c]),
                     MaybeNull(Value::Real(std::abs(ClassConditionalGaussian(
                                   800.0, -350.0, 500.0, cls, cfg.signal,
                                   rng))),
                               cfg, rng),
                     MaybeNull(Value::Real(rng.NextDouble(0.0, 60.0)), cfg,
                               rng),
                     MaybeNull(Value::Real(rng.NextDouble(5.0, 60.0)), cfg,
                               rng),
                     MaybeNull(Value::Real(std::abs(
                                   rng.NextGaussian(6.0, 8.0))),
                               cfg, rng)})
            .status());
    STEDB_RETURN_IF_ERROR(
        database
            .Insert("GOVERNMENT",
                    {Value::Text(MakeId("gv", c)), Value::Text(codes[c]),
                     MaybeNull(Value::Text(ClassConditionalCategory(
                                   form_vocab, cls, 2, weak, rng)),
                               cfg, rng),
                     MaybeNull(Value::Text(MakeId("head", rng.NextUint(40))),
                               cfg, rng)})
            .status());
    for (size_t k = 0; k < 3; ++k) {
      STEDB_RETURN_IF_ERROR(
          database
              .Insert("LANGUAGE",
                      {Value::Text(MakeId("lg", row)), Value::Text(codes[c]),
                       MaybeNull(Value::Text(ClassConditionalCategory(
                                     lang_vocab, cls, 2, cfg.signal * 0.8,
                                     rng)),
                                 cfg, rng),
                       MaybeNull(Value::Real(rng.NextDouble(0.0, 100.0)), cfg,
                                 rng)})
              .status());
      ++row;
      STEDB_RETURN_IF_ERROR(
          database
              .Insert("ETHNICGROUP",
                      {Value::Text(MakeId("eg", row)), Value::Text(codes[c]),
                       MaybeNull(Value::Text(ClassConditionalCategory(
                                     ethnic_vocab, cls, 2, weak, rng)),
                                 cfg, rng),
                       MaybeNull(Value::Real(rng.NextDouble(0.0, 100.0)), cfg,
                                 rng)})
              .status());
      ++row;
      STEDB_RETURN_IF_ERROR(
          database
              .Insert("MEMBERSHIP",
                      {Value::Text(MakeId("mb", row)), Value::Text(codes[c]),
                       MaybeNull(Value::Text(ClassConditionalCategory(
                                     org_vocab, cls, 2, weak, rng)),
                                 cfg, rng),
                       MaybeNull(Value::Text(rng.NextBool(0.7) ? "member"
                                                               : "observer"),
                                 cfg, rng)})
              .status());
      ++row;
    }
    // Borders: homophilous — countries preferentially border same-class
    // countries (religion clusters geographically).
    if (c > 0) {
      for (size_t k = 0; k < 2; ++k) {
        size_t other = rng.NextIndex(c);
        if (rng.NextBool(cfg.signal * 0.6)) {
          for (int tries = 0;
               tries < 6 && country_cls[other] != cls; ++tries) {
            other = rng.NextIndex(c);
          }
        }
        STEDB_RETURN_IF_ERROR(
            database
                .Insert("BORDER",
                        {Value::Text(MakeId("bd", row)),
                         Value::Text(codes[c]), Value::Text(codes[other]),
                         MaybeNull(Value::Real(std::abs(
                                       rng.NextGaussian(400.0, 350.0))),
                                   cfg, rng)})
                .status());
        ++row;
      }
    }
    // Satellite rows.
    for (size_t s = 0; s < kNumSatellites; ++s) {
      for (size_t k = 0; k < rows_per_satellite_country; ++k) {
        STEDB_RETURN_IF_ERROR(
            database
                .Insert(MakeId("SAT", s),
                        {Value::Text(MakeId("s" + std::to_string(s), row)),
                         Value::Text(codes[c]),
                         MaybeNull(Value::Text(ClassConditionalCategory(
                                       sat_vocab[s], cls, 2, weak * 0.7,
                                       rng)),
                                   cfg, rng),
                         MaybeNull(Value::Real(ClassConditionalGaussian(
                                       0.0, 0.6, 1.0, cls, cfg.signal * 0.3,
                                       rng)),
                                   cfg, rng)})
                .status());
        ++row;
      }
    }
  }

  return MakeGeneratedDataset("mondial", std::move(database),
                              schema->RelationIndex("TARGET"),
                              /*pred_attr=*/1, {"christian", "non-christian"});
}

}  // namespace stedb::data
