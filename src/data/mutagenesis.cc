#include <memory>

#include "src/data/registry.h"

namespace stedb::data {
namespace {

using db::AttrType;
using db::Value;

/// Schema mirror of the Mutagenesis database (Debnath et al.): molecules
/// with the predicted mutagenicity plus global chemical descriptors, atoms
/// belonging to molecules, and bonds between atoms — 3 relations /
/// 14 attributes (Table I).
Result<std::shared_ptr<const db::Schema>> BuildSchema() {
  auto schema = std::make_shared<db::Schema>();
  STEDB_RETURN_IF_ERROR(schema
                            ->AddRelation("MOLECULE",
                                          {{"mol_id", AttrType::kText},
                                           {"mutagenic", AttrType::kText},
                                           {"logp", AttrType::kReal},
                                           {"lumo", AttrType::kReal},
                                           {"ind1", AttrType::kInt}},
                                          {"mol_id"})
                            .status());
  STEDB_RETURN_IF_ERROR(schema
                            ->AddRelation("ATOM",
                                          {{"atom_id", AttrType::kText},
                                           {"mol_id", AttrType::kText},
                                           {"element", AttrType::kText},
                                           {"atype", AttrType::kInt},
                                           {"charge", AttrType::kReal}},
                                          {"atom_id"})
                            .status());
  STEDB_RETURN_IF_ERROR(schema
                            ->AddRelation("BOND",
                                          {{"bond_id", AttrType::kText},
                                           {"atom1", AttrType::kText},
                                           {"atom2", AttrType::kText},
                                           {"btype", AttrType::kInt}},
                                          {"bond_id"})
                            .status());
  STEDB_RETURN_IF_ERROR(
      schema->AddForeignKey("ATOM", {"mol_id"}, "MOLECULE").status());
  STEDB_RETURN_IF_ERROR(
      schema->AddForeignKey("BOND", {"atom1"}, "ATOM").status());
  STEDB_RETURN_IF_ERROR(
      schema->AddForeignKey("BOND", {"atom2"}, "ATOM").status());
  return std::shared_ptr<const db::Schema>(schema);
}

}  // namespace

Result<GeneratedDataset> MakeMutagenesis(const GenConfig& cfg) {
  STEDB_ASSIGN_OR_RETURN(std::shared_ptr<const db::Schema> schema,
                         BuildSchema());
  db::Database database(schema);
  Rng rng(cfg.seed ^ 0x4d555441ull);  // "MUTA"

  const size_t n_molecules = ScaledCount(188, cfg.scale, 16);
  const size_t atoms_per_mol = 24;

  // Element pools: mutagenic molecules are nitro-compound flavored (more
  // n/o), non-mutagenic lean carbon/hydrogen.
  const std::vector<std::string> elements = {"c", "h", "o",  "n",
                                             "f", "cl", "br", "i"};

  size_t atom_row = 0;
  size_t bond_row = 0;
  for (size_t m = 0; m < n_molecules; ++m) {
    // ~65% positive, matching the paper's 122/63 split.
    const int cls = rng.NextBool(0.65) ? 1 : 0;
    const std::string mol_id = MakeId("m", m);
    const double logp =
        ClassConditionalGaussian(2.0, 1.6, 0.9, cls, cfg.signal, rng);
    const double lumo =
        ClassConditionalGaussian(-1.2, -1.1, 0.5, cls, cfg.signal, rng);
    STEDB_RETURN_IF_ERROR(
        database
            .Insert("MOLECULE",
                    {Value::Text(mol_id),
                     Value::Text(cls == 1 ? "yes" : "no"),
                     MaybeNull(Value::Real(logp), cfg, rng),
                     MaybeNull(Value::Real(lumo), cfg, rng),
                     MaybeNull(Value::Int(rng.NextBool(0.5) ? 1 : 0), cfg,
                               rng)})
            .status());

    // Atoms: element and partial-charge distributions shift with the class.
    std::vector<std::string> atom_ids;
    for (size_t a = 0; a < atoms_per_mol; ++a) {
      const std::string atom_id = MakeId("a", atom_row++);
      atom_ids.push_back(atom_id);
      std::string element;
      if (cls == 1 && rng.NextBool(cfg.signal * 0.5)) {
        element = rng.NextBool(0.55) ? "n" : "o";  // nitro groups
      } else {
        element = elements[rng.NextIndex(rng.NextBool(0.8) ? 2 : elements.size())];
      }
      const double charge =
          ClassConditionalGaussian(-0.05, 0.25, 0.12, cls, cfg.signal, rng);
      STEDB_RETURN_IF_ERROR(
          database
              .Insert("ATOM",
                      {Value::Text(atom_id), Value::Text(mol_id),
                       MaybeNull(Value::Text(element), cfg, rng),
                       MaybeNull(Value::Int(static_cast<int64_t>(
                                     10 + rng.NextUint(90))),
                                 cfg, rng),
                       MaybeNull(Value::Real(charge), cfg, rng)})
              .status());
    }

    // Bonds: a spanning chain keeps each molecule connected, plus extra
    // random bonds; aromatic bond types (7) are over-represented in
    // mutagenic molecules.
    auto bond_type = [&]() -> int64_t {
      if (cls == 1 && rng.NextBool(cfg.signal * 0.4)) return 7;  // aromatic
      return 1 + static_cast<int64_t>(rng.NextUint(3));
    };
    for (size_t a = 1; a < atom_ids.size(); ++a) {
      STEDB_RETURN_IF_ERROR(
          database
              .Insert("BOND", {Value::Text(MakeId("bd", bond_row++)),
                               Value::Text(atom_ids[a - 1]),
                               Value::Text(atom_ids[a]),
                               Value::Int(bond_type())})
              .status());
    }
    const size_t extra_bonds = 4;
    for (size_t e = 0; e < extra_bonds; ++e) {
      const size_t i = rng.NextIndex(atom_ids.size());
      const size_t j = rng.NextIndex(atom_ids.size());
      if (i == j) continue;
      STEDB_RETURN_IF_ERROR(
          database
              .Insert("BOND", {Value::Text(MakeId("bd", bond_row++)),
                               Value::Text(atom_ids[i]),
                               Value::Text(atom_ids[j]),
                               Value::Int(bond_type())})
              .status());
    }
  }

  return MakeGeneratedDataset("mutagenesis", std::move(database),
                              schema->RelationIndex("MOLECULE"),
                              /*pred_attr=*/1, {"no", "yes"});
}

}  // namespace stedb::data
