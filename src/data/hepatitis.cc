#include <memory>

#include "src/data/registry.h"

namespace stedb::data {
namespace {

using db::AttrType;
using db::Value;

/// Schema mirror of the ECML/PKDD Hepatitis database (Neville et al.
/// version): a patient dispatch relation carrying the predicted type, three
/// examination relations, and three link relations joining patients to
/// examinations — 7 relations as in the paper's Table I.
Result<std::shared_ptr<const db::Schema>> BuildSchema() {
  auto schema = std::make_shared<db::Schema>();
  STEDB_RETURN_IF_ERROR(schema
                            ->AddRelation("DISPAT",
                                          {{"m_id", AttrType::kText},
                                           {"sex", AttrType::kText},
                                           {"age", AttrType::kInt},
                                           {"type", AttrType::kText}},
                                          {"m_id"})
                            .status());
  STEDB_RETURN_IF_ERROR(schema
                            ->AddRelation("INDIS",
                                          {{"in_id", AttrType::kText},
                                           {"got", AttrType::kReal},
                                           {"gpt", AttrType::kReal},
                                           {"alb", AttrType::kReal},
                                           {"tbil", AttrType::kReal}},
                                          {"in_id"})
                            .status());
  STEDB_RETURN_IF_ERROR(schema
                            ->AddRelation("BIO",
                                          {{"b_id", AttrType::kText},
                                           {"fibros", AttrType::kText},
                                           {"activity", AttrType::kText}},
                                          {"b_id"})
                            .status());
  STEDB_RETURN_IF_ERROR(schema
                            ->AddRelation("INF",
                                          {{"a_id", AttrType::kText},
                                           {"dur", AttrType::kText}},
                                          {"a_id"})
                            .status());
  STEDB_RETURN_IF_ERROR(schema
                            ->AddRelation("REL11",
                                          {{"r_id", AttrType::kText},
                                           {"m_id", AttrType::kText},
                                           {"in_id", AttrType::kText}},
                                          {"r_id"})
                            .status());
  STEDB_RETURN_IF_ERROR(schema
                            ->AddRelation("REL12",
                                          {{"r_id", AttrType::kText},
                                           {"m_id", AttrType::kText},
                                           {"b_id", AttrType::kText}},
                                          {"r_id"})
                            .status());
  STEDB_RETURN_IF_ERROR(schema
                            ->AddRelation("REL13",
                                          {{"r_id", AttrType::kText},
                                           {"m_id", AttrType::kText},
                                           {"a_id", AttrType::kText}},
                                          {"r_id"})
                            .status());
  STEDB_RETURN_IF_ERROR(
      schema->AddForeignKey("REL11", {"m_id"}, "DISPAT").status());
  STEDB_RETURN_IF_ERROR(
      schema->AddForeignKey("REL11", {"in_id"}, "INDIS").status());
  STEDB_RETURN_IF_ERROR(
      schema->AddForeignKey("REL12", {"m_id"}, "DISPAT").status());
  STEDB_RETURN_IF_ERROR(
      schema->AddForeignKey("REL12", {"b_id"}, "BIO").status());
  STEDB_RETURN_IF_ERROR(
      schema->AddForeignKey("REL13", {"m_id"}, "DISPAT").status());
  STEDB_RETURN_IF_ERROR(
      schema->AddForeignKey("REL13", {"a_id"}, "INF").status());
  return std::shared_ptr<const db::Schema>(schema);
}

}  // namespace

Result<GeneratedDataset> MakeHepatitis(const GenConfig& cfg) {
  STEDB_ASSIGN_OR_RETURN(std::shared_ptr<const db::Schema> schema,
                         BuildSchema());
  db::Database database(schema);
  Rng rng(cfg.seed ^ 0x48455041ull);  // "HEPA"

  const size_t n_patients = ScaledCount(500, cfg.scale, 20);
  const size_t exams_per_patient = 6;

  const std::vector<std::string> fibros_vocab = {"f0", "f1", "f2", "f3",
                                                 "f4"};
  const std::vector<std::string> activity_vocab = {"a0", "a1", "a2", "a3"};
  const std::vector<std::string> dur_vocab = {"short", "medium", "long",
                                              "chronic"};

  size_t rel_row = 0;
  for (size_t p = 0; p < n_patients; ++p) {
    // Class 0 = Hepatitis B (~40%), class 1 = Hepatitis C (~60%),
    // mirroring the paper's 206/484 imbalance.
    const int cls = rng.NextBool(0.4) ? 0 : 1;
    const std::string m_id = MakeId("p", p);

    // Patient row: sex/age are weak signals only.
    STEDB_RETURN_IF_ERROR(
        database
            .Insert("DISPAT",
                    {Value::Text(m_id),
                     MaybeNull(Value::Text(rng.NextBool(0.55) ? "m" : "f"),
                               cfg, rng),
                     MaybeNull(Value::Int(30 + static_cast<int64_t>(
                                                   rng.NextUint(45)) +
                                          (cls == 1 ? 5 : 0)),
                               cfg, rng),
                     Value::Text(cls == 0 ? "HepatitisB" : "HepatitisC")})
            .status());

    // Laboratory panel: liver enzymes shift with the class (type C runs
    // higher GOT/GPT and lower albumin in this synthetic model).
    for (size_t e = 0; e < exams_per_patient; ++e) {
      const std::string in_id = MakeId("in", p * exams_per_patient + e);
      const double got =
          ClassConditionalGaussian(40.0, 35.0, 18.0, cls, cfg.signal, rng);
      const double gpt =
          ClassConditionalGaussian(45.0, 40.0, 20.0, cls, cfg.signal, rng);
      const double alb =
          ClassConditionalGaussian(4.4, -0.9, 0.4, cls, cfg.signal, rng);
      const double tbil =
          ClassConditionalGaussian(0.8, 0.5, 0.35, cls, cfg.signal, rng);
      STEDB_RETURN_IF_ERROR(database
                                .Insert("INDIS",
                                        {Value::Text(in_id),
                                         MaybeNull(Value::Real(got), cfg, rng),
                                         MaybeNull(Value::Real(gpt), cfg, rng),
                                         MaybeNull(Value::Real(alb), cfg, rng),
                                         MaybeNull(Value::Real(tbil), cfg,
                                                   rng)})
                                .status());
      STEDB_RETURN_IF_ERROR(
          database
              .Insert("REL11", {Value::Text(MakeId("r", rel_row++)),
                                Value::Text(m_id), Value::Text(in_id)})
              .status());
    }

    // Biopsy: fibrosis/activity grades drawn class-conditionally.
    const std::string b_id = MakeId("b", p);
    STEDB_RETURN_IF_ERROR(
        database
            .Insert("BIO",
                    {Value::Text(b_id),
                     MaybeNull(Value::Text(ClassConditionalCategory(
                                   fibros_vocab, cls, 2, cfg.signal, rng)),
                               cfg, rng),
                     MaybeNull(Value::Text(ClassConditionalCategory(
                                   activity_vocab, cls, 2, cfg.signal, rng)),
                               cfg, rng)})
            .status());
    STEDB_RETURN_IF_ERROR(
        database
            .Insert("REL12", {Value::Text(MakeId("r", rel_row++)),
                              Value::Text(m_id), Value::Text(b_id)})
            .status());

    // Interferon therapy duration.
    const std::string a_id = MakeId("a", p);
    STEDB_RETURN_IF_ERROR(
        database
            .Insert("INF",
                    {Value::Text(a_id),
                     MaybeNull(Value::Text(ClassConditionalCategory(
                                   dur_vocab, cls, 2, cfg.signal, rng)),
                               cfg, rng)})
            .status());
    STEDB_RETURN_IF_ERROR(
        database
            .Insert("REL13", {Value::Text(MakeId("r", rel_row++)),
                              Value::Text(m_id), Value::Text(a_id)})
            .status());
  }

  return MakeGeneratedDataset("hepatitis", std::move(database),
                              schema->RelationIndex("DISPAT"),
                              /*pred_attr=*/3, {"HepatitisB", "HepatitisC"});
}

}  // namespace stedb::data
