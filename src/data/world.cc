#include <memory>

#include "src/data/registry.h"

namespace stedb::data {
namespace {

using db::AttrType;
using db::Value;

constexpr int kNumContinents = 7;

const char* kContinents[kNumContinents] = {
    "Asia",   "Europe",       "NorthAmerica", "SouthAmerica",
    "Africa", "Oceania",      "Antarctica"};

/// Schema mirror of the World database: countries (with the predicted
/// continent), their cities, and spoken languages — 3 relations /
/// ~24 attributes (Table I).
Result<std::shared_ptr<const db::Schema>> BuildSchema() {
  auto schema = std::make_shared<db::Schema>();
  STEDB_RETURN_IF_ERROR(schema
                            ->AddRelation("COUNTRY",
                                          {{"code", AttrType::kText},
                                           {"name", AttrType::kText},
                                           {"continent", AttrType::kText},
                                           {"region", AttrType::kText},
                                           {"surface", AttrType::kReal},
                                           {"population", AttrType::kInt},
                                           {"gnp", AttrType::kReal},
                                           {"life_exp", AttrType::kReal},
                                           {"gov_form", AttrType::kText},
                                           {"indep_year", AttrType::kInt}},
                                          {"code"})
                            .status());
  STEDB_RETURN_IF_ERROR(schema
                            ->AddRelation("CITY",
                                          {{"city_id", AttrType::kText},
                                           {"country", AttrType::kText},
                                           {"name", AttrType::kText},
                                           {"district", AttrType::kText},
                                           {"population", AttrType::kInt},
                                           {"is_coastal", AttrType::kText}},
                                          {"city_id"})
                            .status());
  STEDB_RETURN_IF_ERROR(schema
                            ->AddRelation("COUNTRYLANGUAGE",
                                          {{"cl_id", AttrType::kText},
                                           {"country", AttrType::kText},
                                           {"language", AttrType::kText},
                                           {"is_official", AttrType::kText},
                                           {"percentage", AttrType::kReal}},
                                          {"cl_id"})
                            .status());
  STEDB_RETURN_IF_ERROR(
      schema->AddForeignKey("CITY", {"country"}, "COUNTRY").status());
  STEDB_RETURN_IF_ERROR(
      schema->AddForeignKey("COUNTRYLANGUAGE", {"country"}, "COUNTRY")
          .status());
  return std::shared_ptr<const db::Schema>(schema);
}

std::vector<std::string> MakeVocab(const std::string& prefix, size_t n) {
  std::vector<std::string> vocab;
  vocab.reserve(n);
  for (size_t i = 0; i < n; ++i) vocab.push_back(MakeId(prefix, i));
  return vocab;
}

}  // namespace

Result<GeneratedDataset> MakeWorld(const GenConfig& cfg) {
  STEDB_ASSIGN_OR_RETURN(std::shared_ptr<const db::Schema> schema,
                         BuildSchema());
  db::Database database(schema);
  Rng rng(cfg.seed ^ 0x574f524cull);  // "WORL"

  const size_t n_countries = ScaledCount(239, cfg.scale, kNumContinents * 3);
  const size_t cities_per_country = 14;
  const size_t langs_per_country = 4;

  // Continent-specific pools: languages and regions are the strong signal
  // (as in the real World database), government forms are weaker.
  const std::vector<std::string> language_vocab = MakeVocab("lang", 70);
  const std::vector<std::string> region_vocab = MakeVocab("reg", 25);
  const std::vector<std::string> district_vocab = MakeVocab("dist", 40);
  const std::vector<std::string> gov_vocab = {"republic", "monarchy",
                                              "federation", "territory"};

  // Continent prior mirrors reality: Antarctica tiny, Asia/Africa large.
  const std::vector<double> prior = {0.23, 0.20, 0.16, 0.06,
                                     0.24, 0.10, 0.01};

  size_t city_row = 0;
  size_t lang_row = 0;
  for (size_t c = 0; c < n_countries; ++c) {
    const int cls = static_cast<int>(rng.NextWeighted(prior));
    const std::string code = MakeId("cc", c);
    const double gnp = ClassConditionalGaussian(200.0, 300.0, 450.0, cls,
                                                cfg.signal, rng);
    const double life = ClassConditionalGaussian(62.0, 3.0, 5.0, cls,
                                                 cfg.signal, rng);
    STEDB_RETURN_IF_ERROR(
        database
            .Insert(
                "COUNTRY",
                {Value::Text(code), Value::Text(MakeId("country", c)),
                 Value::Text(kContinents[cls]),
                 MaybeNull(Value::Text(ClassConditionalCategory(
                               region_vocab, cls, kNumContinents, cfg.signal,
                               rng)),
                           cfg, rng),
                 MaybeNull(Value::Real(std::abs(rng.NextGaussian(500.0,
                                                                 400.0))),
                           cfg, rng),
                 MaybeNull(Value::Int(static_cast<int64_t>(
                               std::abs(rng.NextGaussian(2e7, 3e7)))),
                           cfg, rng),
                 MaybeNull(Value::Real(std::abs(gnp)), cfg, rng),
                 MaybeNull(Value::Real(life), cfg, rng),
                 MaybeNull(Value::Text(ClassConditionalCategory(
                               gov_vocab, cls, kNumContinents,
                               cfg.signal * 0.5, rng)),
                           cfg, rng),
                 MaybeNull(Value::Int(1800 + static_cast<int64_t>(
                                                 rng.NextUint(200))),
                           cfg, rng)})
            .status());

    for (size_t k = 0; k < cities_per_country; ++k) {
      STEDB_RETURN_IF_ERROR(
          database
              .Insert(
                  "CITY",
                  {Value::Text(MakeId("ct", city_row)), Value::Text(code),
                   Value::Text(MakeId("city", city_row)),
                   MaybeNull(Value::Text(ClassConditionalCategory(
                                 district_vocab, cls, kNumContinents,
                                 cfg.signal * 0.7, rng)),
                             cfg, rng),
                   MaybeNull(Value::Int(static_cast<int64_t>(
                                 std::abs(rng.NextGaussian(4e5, 8e5)))),
                             cfg, rng),
                   MaybeNull(Value::Text(rng.NextBool(0.4) ? "coastal"
                                                           : "inland"),
                             cfg, rng)})
              .status());
      ++city_row;
    }

    for (size_t k = 0; k < langs_per_country; ++k) {
      STEDB_RETURN_IF_ERROR(
          database
              .Insert("COUNTRYLANGUAGE",
                      {Value::Text(MakeId("cl", lang_row)), Value::Text(code),
                       MaybeNull(Value::Text(ClassConditionalCategory(
                                     language_vocab, cls, kNumContinents,
                                     cfg.signal, rng)),
                                 cfg, rng),
                       MaybeNull(Value::Text(k == 0 ? "official" : "minor"),
                                 cfg, rng),
                       MaybeNull(Value::Real(rng.NextDouble(0.0, 100.0)),
                                 cfg, rng)})
              .status());
      ++lang_row;
    }
  }

  return MakeGeneratedDataset(
      "world", std::move(database), schema->RelationIndex("COUNTRY"),
      /*pred_attr=*/2,
      std::vector<std::string>(kContinents, kContinents + kNumContinents));
}

}  // namespace stedb::data
