#include "src/data/generator.h"

#include <cmath>
#include <cstdio>

namespace stedb::data {

std::string ClassConditionalCategory(const std::vector<std::string>& vocab,
                                     int cls, int num_classes, double signal,
                                     Rng& rng) {
  if (vocab.empty()) return "";
  if (rng.NextBool(signal)) {
    // Each class prefers a contiguous slice of the vocabulary; slices of
    // adjacent classes overlap by design so the task is not trivial.
    const size_t n = vocab.size();
    const double width =
        std::max(1.0, static_cast<double>(n) / num_classes * 1.5);
    const double start =
        static_cast<double>(cls) * static_cast<double>(n) / num_classes;
    size_t pick = static_cast<size_t>(start + rng.NextDouble() * width);
    return vocab[pick % n];
  }
  return vocab[rng.NextIndex(vocab.size())];
}

double ClassConditionalGaussian(double base, double separation, double spread,
                                int cls, double signal, Rng& rng) {
  const double mean = base + static_cast<double>(cls) * separation * signal;
  return rng.NextGaussian(mean, spread);
}

std::string MakeId(const std::string& prefix, size_t n) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%05zu", n);
  return prefix + buf;
}

size_t ScaledCount(size_t base, double scale, size_t minimum) {
  const double scaled = static_cast<double>(base) * scale;
  const size_t n = static_cast<size_t>(scaled + 0.5);
  return n < minimum ? minimum : n;
}

db::Value MaybeNull(db::Value v, const GenConfig& cfg, Rng& rng) {
  if (rng.NextBool(cfg.null_rate)) return db::Value::Null();
  return v;
}

}  // namespace stedb::data
