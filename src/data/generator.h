#ifndef STEDB_DATA_GENERATOR_H_
#define STEDB_DATA_GENERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/db/database.h"

namespace stedb::data {

/// A generated benchmark database plus the downstream task definition:
/// which relation/attribute is predicted (the label is stored in the
/// database but must be excluded from embedding training).
struct GeneratedDataset {
  std::string name;
  db::Database database;
  db::RelationId pred_rel = -1;
  db::AttrId pred_attr = -1;
  std::vector<std::string> class_names;

  /// The prediction-relation facts (the downstream examples).
  const std::vector<db::FactId>& Samples() const {
    return database.FactsOf(pred_rel);
  }
  /// The label string of one sample.
  const std::string& LabelOf(db::FactId f) const {
    return database.value(f, pred_attr).as_text();
  }
};

/// Generation knobs shared by all five dataset generators.
struct GenConfig {
  uint64_t seed = 42;
  /// Multiplies every tuple count; 1.0 reproduces (approximately) the sizes
  /// in the paper's Table I, smaller values give fast CI-scale datasets.
  double scale = 1.0;
  /// Probability that a nullable attribute is ⊥ (exercises the paper's
  /// null-handling conventions end to end).
  double null_rate = 0.02;
  /// Label-signal strength in [0,1]: 0 = attributes carry no class
  /// information (accuracy should collapse to the majority baseline),
  /// 1 = maximal separation. Used by ablation benches.
  double signal = 0.85;
};

/// Builds a GeneratedDataset with named parameters. The single place that
/// depends on the struct's member order — generators must use this instead
/// of positional aggregate initialization.
inline GeneratedDataset MakeGeneratedDataset(
    std::string name, db::Database database, db::RelationId pred_rel,
    db::AttrId pred_attr, std::vector<std::string> class_names) {
  return GeneratedDataset{std::move(name), std::move(database), pred_rel,
                          pred_attr, std::move(class_names)};
}

// ---- Latent-class sampling helpers used by all generators --------------

/// Draws a categorical value from a class-conditional vocabulary: with
/// probability `signal` from the class's own preferred subset, otherwise
/// uniformly from the full vocabulary. This plants label signal that is only
/// recoverable through the attribute distributions, like the real datasets.
std::string ClassConditionalCategory(const std::vector<std::string>& vocab,
                                     int cls, int num_classes, double signal,
                                     Rng& rng);

/// Gaussian value whose mean shifts with the class:
/// mean = base + cls * separation * signal, stddev = spread.
double ClassConditionalGaussian(double base, double separation, double spread,
                                int cls, double signal, Rng& rng);

/// Zero-padded identifier like "p0042".
std::string MakeId(const std::string& prefix, size_t n);

/// Scaled count: max(minimum, round(base * scale)).
size_t ScaledCount(size_t base, double scale, size_t minimum = 2);

/// Applies the configured null rate: returns the value or ⊥.
db::Value MaybeNull(db::Value v, const GenConfig& cfg, Rng& rng);

}  // namespace stedb::data

#endif  // STEDB_DATA_GENERATOR_H_
