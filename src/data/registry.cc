#include "src/data/registry.h"

namespace stedb::data {

std::vector<std::string> DatasetNames() {
  return {"hepatitis", "genes", "mutagenesis", "world", "mondial"};
}

Result<GeneratedDataset> MakeDataset(const std::string& name,
                                     const GenConfig& cfg) {
  if (name == "hepatitis") return MakeHepatitis(cfg);
  if (name == "mondial") return MakeMondial(cfg);
  if (name == "genes") return MakeGenes(cfg);
  if (name == "mutagenesis") return MakeMutagenesis(cfg);
  if (name == "world") return MakeWorld(cfg);
  return Status::NotFound("unknown dataset '" + name + "'");
}

}  // namespace stedb::data
