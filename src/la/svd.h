#ifndef STEDB_LA_SVD_H_
#define STEDB_LA_SVD_H_

#include "src/common/status.h"
#include "src/la/matrix.h"

namespace stedb::la {

/// Thin singular value decomposition A = U diag(sigma) V^T with
/// U: m x r, sigma: r, V: n x r where r = min(m, n).
struct Svd {
  Matrix u;
  Vector sigma;
  Matrix v;
};

/// Computes the thin SVD by one-sided Jacobi rotations (Hestenes method).
/// Robust for the modest sizes used here (d <= a few hundred columns).
Result<Svd> JacobiSvd(const Matrix& a, int max_sweeps = 60,
                      double tol = 1e-12);

/// Moore-Penrose pseudoinverse A^+ via the SVD, with singular values below
/// `rcond * sigma_max` treated as zero. This is the solver the paper's
/// Equation (10) prescribes for the dynamic FoRWaRD extension.
Result<Matrix> PseudoInverse(const Matrix& a, double rcond = 1e-10);

/// Minimum-norm least-squares solution x = A^+ b without materializing A^+.
Result<Vector> PinvSolve(const Matrix& a, const Vector& b,
                         double rcond = 1e-10);

}  // namespace stedb::la

#endif  // STEDB_LA_SVD_H_
