#ifndef STEDB_LA_SOLVE_H_
#define STEDB_LA_SOLVE_H_

#include "src/common/status.h"
#include "src/la/matrix.h"

namespace stedb::la {

/// Cholesky factorization A = L L^T of a symmetric positive-definite matrix.
/// Returns the lower-triangular factor L, or InvalidArgument when A is not
/// square / FailedPrecondition when A is not (numerically) SPD.
Result<Matrix> CholeskyFactor(const Matrix& a);

/// Solves A x = b with SPD A via Cholesky.
Result<Vector> CholeskySolve(const Matrix& a, const Vector& b);

/// Least-squares solution of min ||C x - b||_2 via the ridge-regularized
/// normal equations (C^T C + ridge I) x = C^T b. With ridge > 0 the system
/// is always SPD, which makes this the fast/robust path used by the dynamic
/// FoRWaRD extender.
Result<Vector> RidgeLeastSquares(const Matrix& c, const Vector& b,
                                 double ridge);

/// Solves a general square system A x = b by partially pivoted Gaussian
/// elimination. FailedPrecondition when A is (numerically) singular.
Result<Vector> GaussianSolve(const Matrix& a, const Vector& b);

}  // namespace stedb::la

#endif  // STEDB_LA_SOLVE_H_
