#include "src/la/matrix.h"

#include <cmath>
#include <cstdlib>

#include "src/la/kernels.h"

namespace stedb::la {

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n, 0.0);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::RandomGaussian(size_t rows, size_t cols, double stddev,
                              Rng& rng) {
  Matrix m(rows, cols);
  for (double& x : m.data_) x = rng.NextGaussian(0.0, stddev);
  return m;
}

Matrix Matrix::RandomSymmetric(size_t n, double stddev, Rng& rng) {
  Matrix m = RandomGaussian(n, n, stddev, rng);
  m.SymmetrizeInPlace();
  return m;
}

Vector Matrix::Row(size_t r) const {
  return Vector(RowPtr(r), RowPtr(r) + cols_);
}

void Matrix::SetRow(size_t r, const Vector& v) {
  CopyRow(RowPtr(r), v.data(), cols_);
}

void Matrix::ResizeRows(size_t new_rows, double fill) {
  data_.resize(new_rows * cols_, fill);
  rows_ = new_rows;
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    const double* src = RowPtr(r);
    for (size_t c = 0; c < cols_; ++c) t(c, r) = src[c];
  }
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  Matrix out(rows_, other.cols_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double* a = RowPtr(i);
    double* o = out.RowPtr(i);
    for (size_t k = 0; k < cols_; ++k) {
      const double aik = a[k];
      if (aik == 0.0) continue;
      Axpy(aik, other.RowPtr(k), o, other.cols_);
    }
  }
  return out;
}

Vector Matrix::MultiplyVec(const Vector& v) const {
  Vector out(rows_);
  MatVec(data_.data(), rows_, cols_, v.data(), out.data());
  return out;
}

Vector Matrix::TransposeMultiplyVec(const Vector& v) const {
  Vector out(cols_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double vi = v[i];
    if (vi == 0.0) continue;
    Axpy(vi, RowPtr(i), out.data(), cols_);
  }
  return out;
}

void Matrix::AddInPlace(const Matrix& other, double scale) {
  Axpy(scale, other.data_.data(), data_.data(), data_.size());
}

void Matrix::ScaleInPlace(double s) {
  Scale(data_.data(), s, data_.data(), data_.size());
}

void Matrix::SymmetrizeInPlace() {
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = i + 1; j < cols_; ++j) {
      double avg = 0.5 * ((*this)(i, j) + (*this)(j, i));
      (*this)(i, j) = avg;
      (*this)(j, i) = avg;
    }
  }
}

double Matrix::FrobeniusNorm() const {
  return std::sqrt(Norm2Sq(data_.data(), data_.size()));
}

double Matrix::MaxAbsDiff(const Matrix& a, const Matrix& b) {
  double worst = 0.0;
  for (size_t i = 0; i < a.data_.size(); ++i) {
    worst = std::max(worst, std::fabs(a.data_[i] - b.data_[i]));
  }
  return worst;
}

double Dot(const Vector& a, const Vector& b) {
  return Dot(a.data(), b.data(), a.size());
}

double Norm2(const Vector& a) {
  return std::sqrt(Norm2Sq(a.data(), a.size()));
}

void Axpy(double s, const Vector& b, Vector& a) {
  Axpy(s, b.data(), a.data(), a.size());
}

Vector Scaled(const Vector& a, double s) {
  Vector out(a.size());
  Scale(out.data(), s, a.data(), a.size());
  return out;
}

double Distance(const Vector& a, const Vector& b) {
  return std::sqrt(DistSq(a.data(), b.data(), a.size()));
}

double CosineSimilarity(const Vector& a, const Vector& b) {
  double na = Norm2(a);
  double nb = Norm2(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return Dot(a, b) / (na * nb);
}

Vector RandomVector(size_t n, double stddev, Rng& rng) {
  Vector v(n);
  for (double& x : v) x = rng.NextGaussian(0.0, stddev);
  return v;
}

double BilinearForm(Span<const double> x, Span<const double> m,
                    Span<const double> y) {
  return BilinearForm(x.data(), m.data(), y.data(), x.size(), y.size());
}

double BilinearForm(const Vector& x, const Matrix& m, const Vector& y) {
  return BilinearForm(Span<const double>(x),
                      Span<const double>(m.data().data(), m.data().size()),
                      Span<const double>(y));
}

}  // namespace stedb::la
