#include "src/la/matrix.h"

#include <cmath>
#include <cstdlib>

namespace stedb::la {

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n, 0.0);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::RandomGaussian(size_t rows, size_t cols, double stddev,
                              Rng& rng) {
  Matrix m(rows, cols);
  for (double& x : m.data_) x = rng.NextGaussian(0.0, stddev);
  return m;
}

Matrix Matrix::RandomSymmetric(size_t n, double stddev, Rng& rng) {
  Matrix m = RandomGaussian(n, n, stddev, rng);
  m.SymmetrizeInPlace();
  return m;
}

Vector Matrix::Row(size_t r) const {
  return Vector(RowPtr(r), RowPtr(r) + cols_);
}

void Matrix::SetRow(size_t r, const Vector& v) {
  double* dst = RowPtr(r);
  for (size_t c = 0; c < cols_; ++c) dst[c] = v[c];
}

void Matrix::ResizeRows(size_t new_rows, double fill) {
  data_.resize(new_rows * cols_, fill);
  rows_ = new_rows;
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    const double* src = RowPtr(r);
    for (size_t c = 0; c < cols_; ++c) t(c, r) = src[c];
  }
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  Matrix out(rows_, other.cols_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double* a = RowPtr(i);
    double* o = out.RowPtr(i);
    for (size_t k = 0; k < cols_; ++k) {
      const double aik = a[k];
      if (aik == 0.0) continue;
      const double* b = other.RowPtr(k);
      for (size_t j = 0; j < other.cols_; ++j) o[j] += aik * b[j];
    }
  }
  return out;
}

Vector Matrix::MultiplyVec(const Vector& v) const {
  Vector out(rows_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double* a = RowPtr(i);
    double acc = 0.0;
    for (size_t j = 0; j < cols_; ++j) acc += a[j] * v[j];
    out[i] = acc;
  }
  return out;
}

Vector Matrix::TransposeMultiplyVec(const Vector& v) const {
  Vector out(cols_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double* a = RowPtr(i);
    const double vi = v[i];
    if (vi == 0.0) continue;
    for (size_t j = 0; j < cols_; ++j) out[j] += a[j] * vi;
  }
  return out;
}

void Matrix::AddInPlace(const Matrix& other, double scale) {
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += scale * other.data_[i];
}

void Matrix::ScaleInPlace(double s) {
  for (double& x : data_) x *= s;
}

void Matrix::SymmetrizeInPlace() {
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = i + 1; j < cols_; ++j) {
      double avg = 0.5 * ((*this)(i, j) + (*this)(j, i));
      (*this)(i, j) = avg;
      (*this)(j, i) = avg;
    }
  }
}

double Matrix::FrobeniusNorm() const {
  double acc = 0.0;
  for (double x : data_) acc += x * x;
  return std::sqrt(acc);
}

double Matrix::MaxAbsDiff(const Matrix& a, const Matrix& b) {
  double worst = 0.0;
  for (size_t i = 0; i < a.data_.size(); ++i) {
    worst = std::max(worst, std::fabs(a.data_[i] - b.data_[i]));
  }
  return worst;
}

double Dot(const Vector& a, const Vector& b) {
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double Norm2(const Vector& a) { return std::sqrt(Dot(a, a)); }

void Axpy(double s, const Vector& b, Vector& a) {
  for (size_t i = 0; i < a.size(); ++i) a[i] += s * b[i];
}

Vector Scaled(const Vector& a, double s) {
  Vector out(a);
  for (double& x : out) x *= s;
  return out;
}

double Distance(const Vector& a, const Vector& b) {
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

double CosineSimilarity(const Vector& a, const Vector& b) {
  double na = Norm2(a);
  double nb = Norm2(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return Dot(a, b) / (na * nb);
}

Vector RandomVector(size_t n, double stddev, Rng& rng) {
  Vector v(n);
  for (double& x : v) x = rng.NextGaussian(0.0, stddev);
  return v;
}

double BilinearForm(Span<const double> x, Span<const double> m,
                    Span<const double> y) {
  const size_t rows = x.size();
  const size_t cols = y.size();
  double acc = 0.0;
  for (size_t i = 0; i < rows; ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    const double* row = m.data() + i * cols;
    double inner = 0.0;
    for (size_t j = 0; j < cols; ++j) inner += row[j] * y[j];
    acc += xi * inner;
  }
  return acc;
}

double BilinearForm(const Vector& x, const Matrix& m, const Vector& y) {
  return BilinearForm(Span<const double>(x),
                      Span<const double>(m.data().data(), m.data().size()),
                      Span<const double>(y));
}

}  // namespace stedb::la
