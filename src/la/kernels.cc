#include "src/la/kernels.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "src/common/logging.h"
#include "src/la/kernels_impl.h"

namespace stedb::la {
namespace {

/// Portable 4-lane policy: a plain struct of doubles with every primitive
/// spelled as the single IEEE-754 operation the AVX2 policy performs per
/// lane. std::fma is correctly rounded (one rounding), exactly like
/// vfmadd231pd, so the two policies agree bit-for-bit. The 4x4
/// accumulator structure is also what lets the autovectorizer profitably
/// vectorize this path within the baseline ISA without being *allowed* to
/// change results (no -ffast-math anywhere in this repo).
struct ScalarPolicy {
  struct Vec {
    double lane[internal::kLaneWidth];
  };

  static Vec Zero() { return Vec{{0.0, 0.0, 0.0, 0.0}}; }
  static Vec Broadcast(double x) { return Vec{{x, x, x, x}}; }
  static Vec Load(const double* p) { return Vec{{p[0], p[1], p[2], p[3]}}; }
  static Vec LoadPartial(const double* p, size_t r) {
    Vec v = Zero();
    for (size_t l = 0; l < r; ++l) v.lane[l] = p[l];
    return v;
  }
  static void Store(double* p, Vec v) {
    for (size_t l = 0; l < internal::kLaneWidth; ++l) p[l] = v.lane[l];
  }
  static void StorePartial(double* p, Vec v, size_t r) {
    for (size_t l = 0; l < r; ++l) p[l] = v.lane[l];
  }
  static Vec Add(Vec a, Vec b) {
    Vec v;
    for (size_t l = 0; l < internal::kLaneWidth; ++l) {
      v.lane[l] = a.lane[l] + b.lane[l];
    }
    return v;
  }
  static Vec Sub(Vec a, Vec b) {
    Vec v;
    for (size_t l = 0; l < internal::kLaneWidth; ++l) {
      v.lane[l] = a.lane[l] - b.lane[l];
    }
    return v;
  }
  static Vec Mul(Vec a, Vec b) {
    Vec v;
    for (size_t l = 0; l < internal::kLaneWidth; ++l) {
      v.lane[l] = a.lane[l] * b.lane[l];
    }
    return v;
  }
  static Vec Fma(Vec a, Vec b, Vec acc) {
    Vec v;
    for (size_t l = 0; l < internal::kLaneWidth; ++l) {
      v.lane[l] = std::fma(a.lane[l], b.lane[l], acc.lane[l]);
    }
    return v;
  }
  static double ScalarFma(double a, double b, double acc) {
    return std::fma(a, b, acc);
  }
  /// (v0 + v2) + (v1 + v3) — mirrors the AVX2 low/high-128 add followed
  /// by the horizontal pair add.
  static double ReduceTree(Vec v) {
    return (v.lane[0] + v.lane[2]) + (v.lane[1] + v.lane[3]);
  }
};

double ScalarDot(const double* a, const double* b, size_t n) {
  return internal::DotImpl<ScalarPolicy>(a, b, n);
}
double ScalarNorm2Sq(const double* a, size_t n) {
  return internal::Norm2SqImpl<ScalarPolicy>(a, n);
}
double ScalarDist2(const double* a, const double* b, size_t n) {
  return internal::DistSqImpl<ScalarPolicy>(a, b, n);
}
void ScalarAxpy(double s, const double* b, double* a, size_t n) {
  internal::AxpyImpl<ScalarPolicy>(s, b, a, n);
}
void ScalarScale(double* out, double s, const double* a, size_t n) {
  internal::ScaleImpl<ScalarPolicy>(out, s, a, n);
}
void ScalarScaleAdd(double* out, double s1, const double* a, double s2,
                    const double* b, size_t n) {
  internal::ScaleAddImpl<ScalarPolicy>(out, s1, a, s2, b, n);
}
void ScalarCopyRow(double* dst, const double* src, size_t n) {
  // memcpy is the fastest portable row copy and trivially bit-exact.
  // The n == 0 guard matters: empty vectors hand out null data()
  // pointers, and memcpy's arguments are declared nonnull even for a
  // zero count (UBSan enforces this).
  if (n == 0) return;
  std::memcpy(dst, src, n * sizeof(double));
}
void ScalarMatVec(const double* m, size_t rows, size_t cols, const double* x,
                  double* out) {
  internal::MatVecImpl<ScalarPolicy>(m, rows, cols, x, out);
}
double ScalarBilinear(const double* x, const double* m, const double* y,
                      size_t rows, size_t cols) {
  return internal::BilinearImpl<ScalarPolicy>(x, m, y, rows, cols);
}

constexpr KernelOps kScalarOps = {
    SimdPath::kScalar,
    "scalar",
    &ScalarDot,
    &ScalarNorm2Sq,
    &ScalarDist2,
    &ScalarAxpy,
    &ScalarScale,
    &ScalarScaleAdd,
    &ScalarCopyRow,
    &ScalarMatVec,
    &ScalarBilinear,
};

/// The resolved active table. Published once by ResolveActive(); tests
/// may swap it between runs via ForceSimdPathForTest.
std::atomic<const KernelOps*> g_active{nullptr};

const KernelOps* ResolveActive() {
  SimdPath forced;
  if (internal::ParseSimdOverride(std::getenv("STEDB_SIMD"), &forced)) {
    if (forced == SimdPath::kAvx2) {
      if (internal::Avx2Ops() == nullptr) {
        STEDB_LOG(kError) << "STEDB_SIMD=avx2 but this binary was built "
                             "without the AVX2 kernel translation unit";
        std::abort();
      }
      if (!internal::CpuSupportsAvx2Fma()) {
        STEDB_LOG(kError) << "STEDB_SIMD=avx2 but this CPU does not support "
                             "AVX2+FMA; use STEDB_SIMD=auto or scalar";
        std::abort();
      }
      return internal::Avx2Ops();
    }
    return &kScalarOps;
  }
  if (internal::Avx2Ops() != nullptr && internal::CpuSupportsAvx2Fma()) {
    return internal::Avx2Ops();
  }
  return &kScalarOps;
}

}  // namespace

const KernelOps& Kernels() {
  const KernelOps* ops = g_active.load(std::memory_order_acquire);
  if (ops == nullptr) {
    // Several threads may race the first resolution; they all compute the
    // same answer (pure function of env + cpuid), so any winner is fine.
    ops = ResolveActive();
    g_active.store(ops, std::memory_order_release);
  }
  return *ops;
}

SimdPath ActiveSimdPath() { return Kernels().path; }

const char* SimdPathName(SimdPath path) {
  return path == SimdPath::kAvx2 ? "avx2" : "scalar";
}

const char* ActiveSimdPathName() { return Kernels().name; }

namespace internal {

const KernelOps& ScalarOps() { return kScalarOps; }

bool CpuSupportsAvx2Fma() {
#if defined(__x86_64__) || defined(__i386__)
  // __builtin_cpu_supports consults cpuid once per process (libgcc /
  // compiler-rt init) and the AVX bits include the OS XSAVE check.
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

const KernelOps& OpsFor(SimdPath path) {
  if (path == SimdPath::kAvx2) {
    const KernelOps* avx2 = Avx2Ops();
    if (avx2 == nullptr) {
      STEDB_LOG(kError) << "AVX2 kernels requested but not built into this "
                           "binary";
      std::abort();
    }
    return *avx2;
  }
  return kScalarOps;
}

bool ParseSimdOverride(const char* value, SimdPath* path) {
  if (value == nullptr || *value == '\0' || std::strcmp(value, "auto") == 0) {
    return false;
  }
  if (std::strcmp(value, "scalar") == 0) {
    *path = SimdPath::kScalar;
    return true;
  }
  if (std::strcmp(value, "avx2") == 0) {
    *path = SimdPath::kAvx2;
    return true;
  }
  STEDB_LOG(kError) << "unknown STEDB_SIMD value '" << value
                    << "' (expected auto|scalar|avx2)";
  std::abort();
}

void ForceSimdPathForTest(SimdPath path) {
  if (path == SimdPath::kAvx2 && !CpuSupportsAvx2Fma()) {
    STEDB_LOG(kError) << "ForceSimdPathForTest(kAvx2) on a CPU without "
                         "AVX2+FMA";
    std::abort();
  }
  g_active.store(&OpsFor(path), std::memory_order_release);
}

}  // namespace internal
}  // namespace stedb::la
