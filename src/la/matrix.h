#ifndef STEDB_LA_MATRIX_H_
#define STEDB_LA_MATRIX_H_

#include <cstddef>
#include <vector>

#include "src/common/rng.h"
#include "src/common/span.h"

namespace stedb::la {

/// Dense column vector, a thin alias over std::vector<double> with the
/// arithmetic helpers the embedding code needs.
using Vector = std::vector<double>;

/// Dense row-major matrix. Small and deliberately simple: the embedding
/// dimension d is O(100) and the linear systems in the dynamic extension are
/// k x d with k a few thousand at most, so a cache-friendly row-major dense
/// layout with straightforward loops is the right tool.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix Identity(size_t n);
  /// Entries sampled i.i.d. N(0, stddev^2).
  static Matrix RandomGaussian(size_t rows, size_t cols, double stddev,
                               Rng& rng);
  /// Random symmetric matrix: (G + G^T) / 2 with G Gaussian.
  static Matrix RandomSymmetric(size_t n, double stddev, Rng& rng);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  double* RowPtr(size_t r) { return data_.data() + r * cols_; }
  const double* RowPtr(size_t r) const { return data_.data() + r * cols_; }

  /// Copies row r into a Vector.
  Vector Row(size_t r) const;
  /// Overwrites row r (v.size() must equal cols()).
  void SetRow(size_t r, const Vector& v);

  /// Grows (or shrinks) to `new_rows` rows in place. Because the layout is
  /// row-major with an unchanged column count, this is a single buffer
  /// resize: existing rows keep their values without any per-row copy, and
  /// added rows are filled with `fill`.
  void ResizeRows(size_t new_rows, double fill = 0.0);

  Matrix Transposed() const;

  /// this * other; dimensions must agree.
  Matrix Multiply(const Matrix& other) const;
  /// this * v (v.size() == cols()).
  Vector MultiplyVec(const Vector& v) const;
  /// this^T * v (v.size() == rows()).
  Vector TransposeMultiplyVec(const Vector& v) const;

  void AddInPlace(const Matrix& other, double scale = 1.0);
  void ScaleInPlace(double s);
  /// Symmetrizes in place: A <- (A + A^T) / 2. Requires square.
  void SymmetrizeInPlace();

  /// Frobenius norm.
  double FrobeniusNorm() const;
  /// Largest |a_ij - b_ij|.
  static double MaxAbsDiff(const Matrix& a, const Matrix& b);

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

/// Non-owning mutable view of a row-major matrix — the output parameter of
/// the batch read path (`api::Embedder::EmbedBatch` fills one row per
/// requested fact). Implicitly constructible from Matrix so callers can
/// pass a Matrix wherever a view is expected. The viewed storage must
/// outlive the view.
class MatrixView {
 public:
  MatrixView() : data_(nullptr), rows_(0), cols_(0) {}
  MatrixView(double* data, size_t rows, size_t cols)
      : data_(data), rows_(rows), cols_(cols) {}
  MatrixView(Matrix& m)  // NOLINT(runtime/explicit)
      : data_(m.data().data()), rows_(m.rows()), cols_(m.cols()) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double* RowPtr(size_t r) const { return data_ + r * cols_; }
  double& operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Copies row r into a Vector.
  Vector Row(size_t r) const { return Vector(RowPtr(r), RowPtr(r) + cols_); }

 private:
  double* data_;
  size_t rows_;
  size_t cols_;
};

// ---- Vector helpers ---------------------------------------------------
// All reductions and element-wise updates below (and the Matrix products
// above) execute through the runtime-dispatched SIMD kernel layer in
// src/la/kernels.h; results are bit-identical whichever path (scalar or
// AVX2) the dispatcher picked.

double Dot(const Vector& a, const Vector& b);
double Norm2(const Vector& a);
/// a + s * b, element-wise, in place on a.
void Axpy(double s, const Vector& b, Vector& a);
Vector Scaled(const Vector& a, double s);
/// Euclidean distance.
double Distance(const Vector& a, const Vector& b);
/// Cosine similarity; returns 0 when either vector is all-zero.
double CosineSimilarity(const Vector& a, const Vector& b);
/// Gaussian-random vector.
Vector RandomVector(size_t n, double stddev, Rng& rng);

/// x^T M y for square M (x.size() == M.rows(), y.size() == M.cols()).
double BilinearForm(const Vector& x, const Matrix& m, const Vector& y);

/// x^T M y over raw views: `m` is a dim*dim row-major span (e.g. a ψ
/// matrix straight off an mmap'd snapshot). Identical operation order to
/// the Matrix overload — both call this core — so a serving-side score is
/// bit-equal to the trainer-side one for the same bytes.
double BilinearForm(Span<const double> x, Span<const double> m,
                    Span<const double> y);

}  // namespace stedb::la

#endif  // STEDB_LA_MATRIX_H_
