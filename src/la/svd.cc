#include "src/la/svd.h"

#include <algorithm>
#include <cmath>

namespace stedb::la {

Result<Svd> JacobiSvd(const Matrix& a, int max_sweeps, double tol) {
  if (a.rows() == 0 || a.cols() == 0) {
    return Status::InvalidArgument("SVD of an empty matrix");
  }
  // Work on the "tall" orientation: m >= n. If the input is wide, decompose
  // the transpose and swap U/V at the end.
  const bool transposed = a.rows() < a.cols();
  Matrix w = transposed ? a.Transposed() : a;
  const size_t m = w.rows();
  const size_t n = w.cols();

  // One-sided Jacobi: orthogonalize the columns of W by plane rotations,
  // accumulating them into V.
  Matrix v = Matrix::Identity(n);
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (size_t p = 0; p + 1 < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        double alpha = 0.0, beta = 0.0, gamma = 0.0;
        for (size_t i = 0; i < m; ++i) {
          const double wp = w(i, p);
          const double wq = w(i, q);
          alpha += wp * wp;
          beta += wq * wq;
          gamma += wp * wq;
        }
        if (alpha == 0.0 || beta == 0.0) continue;
        off = std::max(off, std::fabs(gamma) / std::sqrt(alpha * beta));
        if (std::fabs(gamma) <= tol * std::sqrt(alpha * beta)) continue;
        // Jacobi rotation that zeroes the (p, q) entry of W^T W.
        const double zeta = (beta - alpha) / (2.0 * gamma);
        const double t = (zeta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (size_t i = 0; i < m; ++i) {
          const double wp = w(i, p);
          const double wq = w(i, q);
          w(i, p) = c * wp - s * wq;
          w(i, q) = s * wp + c * wq;
        }
        for (size_t i = 0; i < n; ++i) {
          const double vp = v(i, p);
          const double vq = v(i, q);
          v(i, p) = c * vp - s * vq;
          v(i, q) = s * vp + c * vq;
        }
      }
    }
    if (off <= tol) break;
  }

  // Column norms are the singular values; normalize columns of W into U.
  Vector sigma(n, 0.0);
  Matrix u(m, n, 0.0);
  for (size_t j = 0; j < n; ++j) {
    double norm = 0.0;
    for (size_t i = 0; i < m; ++i) norm += w(i, j) * w(i, j);
    norm = std::sqrt(norm);
    sigma[j] = norm;
    if (norm > 0.0) {
      for (size_t i = 0; i < m; ++i) u(i, j) = w(i, j) / norm;
    }
  }

  // Sort singular values descending (stable permutation of columns).
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t x, size_t y) { return sigma[x] > sigma[y]; });
  Matrix us(m, n), vs(n, n);
  Vector ss(n);
  for (size_t j = 0; j < n; ++j) {
    ss[j] = sigma[order[j]];
    for (size_t i = 0; i < m; ++i) us(i, j) = u(i, order[j]);
    for (size_t i = 0; i < n; ++i) vs(i, j) = v(i, order[j]);
  }

  Svd out;
  if (transposed) {
    out.u = std::move(vs);
    out.v = std::move(us);
  } else {
    out.u = std::move(us);
    out.v = std::move(vs);
  }
  out.sigma = std::move(ss);
  return out;
}

Result<Matrix> PseudoInverse(const Matrix& a, double rcond) {
  STEDB_ASSIGN_OR_RETURN(Svd svd, JacobiSvd(a));
  const double cutoff =
      svd.sigma.empty() ? 0.0 : rcond * svd.sigma.front();
  // A^+ = V diag(1/sigma) U^T over the numerically nonzero spectrum.
  const size_t r = svd.sigma.size();
  Matrix pinv(a.cols(), a.rows(), 0.0);
  for (size_t k = 0; k < r; ++k) {
    if (svd.sigma[k] <= cutoff || svd.sigma[k] == 0.0) continue;
    const double inv = 1.0 / svd.sigma[k];
    for (size_t i = 0; i < a.cols(); ++i) {
      const double vik = svd.v(i, k) * inv;
      if (vik == 0.0) continue;
      double* row = pinv.RowPtr(i);
      for (size_t j = 0; j < a.rows(); ++j) row[j] += vik * svd.u(j, k);
    }
  }
  return pinv;
}

Result<Vector> PinvSolve(const Matrix& a, const Vector& b, double rcond) {
  if (a.rows() != b.size()) {
    return Status::InvalidArgument("dimension mismatch in PinvSolve");
  }
  STEDB_ASSIGN_OR_RETURN(Svd svd, JacobiSvd(a));
  const double cutoff =
      svd.sigma.empty() ? 0.0 : rcond * svd.sigma.front();
  Vector x(a.cols(), 0.0);
  for (size_t k = 0; k < svd.sigma.size(); ++k) {
    if (svd.sigma[k] <= cutoff || svd.sigma[k] == 0.0) continue;
    // coeff = (u_k . b) / sigma_k ; x += coeff * v_k
    double coeff = 0.0;
    for (size_t i = 0; i < a.rows(); ++i) coeff += svd.u(i, k) * b[i];
    coeff /= svd.sigma[k];
    for (size_t i = 0; i < a.cols(); ++i) x[i] += coeff * svd.v(i, k);
  }
  return x;
}

}  // namespace stedb::la
