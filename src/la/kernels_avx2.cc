// AVX2+FMA instantiation of the shared kernel templates. This file — and
// only this file — is compiled with -mavx2 -mfma (per-file options in
// src/CMakeLists.txt; there is no global -march), so nothing here may be
// referenced from another TU except through the Avx2Ops() table, and the
// table is only executed after the runtime cpuid check in kernels.cc.
// When the toolchain cannot target AVX2 (non-x86, or the flags are
// unavailable), the #else branch below compiles this TU down to a
// nullptr table and dispatch never offers the path.

#include "src/la/kernels.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <cstring>

#include "src/la/kernels_impl.h"

namespace stedb::la {
namespace {

/// 4-lane policy over __m256d. Unaligned loads/stores throughout: the
/// repo's buffers are std::vector<double> allocations with no 32-byte
/// guarantee, and on every AVX2-era core vmovupd on aligned data costs
/// the same as vmovapd. Partial groups use maskload/maskstore, whose
/// untouched lanes read as zero / leave memory unwritten — exactly the
/// zero-padding the shared reduction contract specifies.
struct Avx2Policy {
  using Vec = __m256d;

  static Vec Zero() { return _mm256_setzero_pd(); }
  static Vec Broadcast(double x) { return _mm256_set1_pd(x); }
  static Vec Load(const double* p) { return _mm256_loadu_pd(p); }
  static Vec LoadPartial(const double* p, size_t r) {
    return _mm256_maskload_pd(p, TailMask(r));
  }
  static void Store(double* p, Vec v) { _mm256_storeu_pd(p, v); }
  static void StorePartial(double* p, Vec v, size_t r) {
    _mm256_maskstore_pd(p, TailMask(r), v);
  }
  static Vec Add(Vec a, Vec b) { return _mm256_add_pd(a, b); }
  static Vec Sub(Vec a, Vec b) { return _mm256_sub_pd(a, b); }
  static Vec Mul(Vec a, Vec b) { return _mm256_mul_pd(a, b); }
  static Vec Fma(Vec a, Vec b, Vec acc) {
    return _mm256_fmadd_pd(a, b, acc);
  }
  /// std::fma compiles to a vfmadd scalar instruction under -mfma —
  /// correctly rounded, identical to the scalar policy's libm fma.
  static double ScalarFma(double a, double b, double acc) {
    return __builtin_fma(a, b, acc);
  }
  /// (v0 + v2) + (v1 + v3): add the low and high 128-bit halves, then the
  /// resulting pair — the tree the scalar policy mirrors.
  static double ReduceTree(Vec v) {
    const __m128d lo = _mm256_castpd256_pd128(v);       // [v0, v1]
    const __m128d hi = _mm256_extractf128_pd(v, 1);     // [v2, v3]
    const __m128d pair = _mm_add_pd(lo, hi);            // [v0+v2, v1+v3]
    const __m128d swap = _mm_unpackhi_pd(pair, pair);   // [v1+v3, v1+v3]
    return _mm_cvtsd_f64(_mm_add_sd(pair, swap));
  }

 private:
  /// Lane l participates iff l < r (sign bit set); r in [1, 3].
  static __m256i TailMask(size_t r) {
    const __m256i lanes = _mm256_setr_epi64x(0, 1, 2, 3);
    return _mm256_cmpgt_epi64(_mm256_set1_epi64x(static_cast<long long>(r)),
                              lanes);
  }
};

double Avx2Dot(const double* a, const double* b, size_t n) {
  return internal::DotImpl<Avx2Policy>(a, b, n);
}
double Avx2Norm2Sq(const double* a, size_t n) {
  return internal::Norm2SqImpl<Avx2Policy>(a, n);
}
double Avx2Dist2(const double* a, const double* b, size_t n) {
  return internal::DistSqImpl<Avx2Policy>(a, b, n);
}
void Avx2Axpy(double s, const double* b, double* a, size_t n) {
  internal::AxpyImpl<Avx2Policy>(s, b, a, n);
}
void Avx2Scale(double* out, double s, const double* a, size_t n) {
  internal::ScaleImpl<Avx2Policy>(out, s, a, n);
}
void Avx2ScaleAdd(double* out, double s1, const double* a, double s2,
                  const double* b, size_t n) {
  internal::ScaleAddImpl<Avx2Policy>(out, s1, a, s2, b, n);
}
void Avx2CopyRow(double* dst, const double* src, size_t n) {
  // glibc memcpy (ERMS / wide vector moves) beats a hand-rolled
  // load/store loop from ~1 KiB rows up, and a copy is bit-exact however
  // it is performed — so both tables share the same primitive. The
  // n == 0 guard mirrors ScalarCopyRow: empty vectors hand out null
  // data() pointers, and memcpy's arguments are declared nonnull.
  if (n == 0) return;
  std::memcpy(dst, src, n * sizeof(double));
}
void Avx2MatVec(const double* m, size_t rows, size_t cols, const double* x,
                double* out) {
  internal::MatVecImpl<Avx2Policy>(m, rows, cols, x, out);
}
double Avx2Bilinear(const double* x, const double* m, const double* y,
                    size_t rows, size_t cols) {
  return internal::BilinearImpl<Avx2Policy>(x, m, y, rows, cols);
}

constexpr KernelOps kAvx2Ops = {
    SimdPath::kAvx2,
    "avx2",
    &Avx2Dot,
    &Avx2Norm2Sq,
    &Avx2Dist2,
    &Avx2Axpy,
    &Avx2Scale,
    &Avx2ScaleAdd,
    &Avx2CopyRow,
    &Avx2MatVec,
    &Avx2Bilinear,
};

}  // namespace

namespace internal {
const KernelOps* Avx2Ops() { return &kAvx2Ops; }
}  // namespace internal

}  // namespace stedb::la

#else  // !(__AVX2__ && __FMA__)

namespace stedb::la::internal {
const KernelOps* Avx2Ops() { return nullptr; }
}  // namespace stedb::la::internal

#endif
