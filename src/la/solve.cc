#include "src/la/solve.h"

#include <cmath>

namespace stedb::la {

Result<Matrix> CholeskyFactor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  const size_t n = a.rows();
  Matrix l(n, n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        if (sum <= 0.0 || !std::isfinite(sum)) {
          return Status::FailedPrecondition(
              "matrix is not positive definite");
        }
        l(i, i) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }
  return l;
}

Result<Vector> CholeskySolve(const Matrix& a, const Vector& b) {
  if (a.rows() != b.size()) {
    return Status::InvalidArgument("dimension mismatch in CholeskySolve");
  }
  STEDB_ASSIGN_OR_RETURN(Matrix l, CholeskyFactor(a));
  const size_t n = a.rows();
  // Forward substitution L y = b.
  Vector y(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= l(i, k) * y[k];
    y[i] = sum / l(i, i);
  }
  // Back substitution L^T x = y.
  Vector x(n, 0.0);
  for (size_t ii = n; ii > 0; --ii) {
    size_t i = ii - 1;
    double sum = y[i];
    for (size_t k = i + 1; k < n; ++k) sum -= l(k, i) * x[k];
    x[i] = sum / l(i, i);
  }
  return x;
}

Result<Vector> RidgeLeastSquares(const Matrix& c, const Vector& b,
                                 double ridge) {
  if (c.rows() != b.size()) {
    return Status::InvalidArgument("dimension mismatch in RidgeLeastSquares");
  }
  if (ridge < 0.0) {
    return Status::InvalidArgument("ridge must be non-negative");
  }
  const size_t d = c.cols();
  // Normal matrix C^T C + ridge I, accumulated row-by-row for locality.
  Matrix normal(d, d, 0.0);
  for (size_t r = 0; r < c.rows(); ++r) {
    const double* row = c.RowPtr(r);
    for (size_t i = 0; i < d; ++i) {
      const double ri = row[i];
      if (ri == 0.0) continue;
      double* ni = normal.RowPtr(i);
      for (size_t j = 0; j < d; ++j) ni[j] += ri * row[j];
    }
  }
  for (size_t i = 0; i < d; ++i) normal(i, i) += ridge;
  Vector rhs = c.TransposeMultiplyVec(b);
  return CholeskySolve(normal, rhs);
}

Result<Vector> GaussianSolve(const Matrix& a, const Vector& b) {
  if (a.rows() != a.cols() || a.rows() != b.size()) {
    return Status::InvalidArgument("dimension mismatch in GaussianSolve");
  }
  const size_t n = a.rows();
  Matrix m = a;
  Vector rhs = b;
  for (size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    size_t pivot = col;
    double best = std::fabs(m(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      double v = std::fabs(m(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-14) {
      return Status::FailedPrecondition("matrix is numerically singular");
    }
    if (pivot != col) {
      for (size_t j = 0; j < n; ++j) std::swap(m(col, j), m(pivot, j));
      std::swap(rhs[col], rhs[pivot]);
    }
    for (size_t r = col + 1; r < n; ++r) {
      double factor = m(r, col) / m(col, col);
      if (factor == 0.0) continue;
      for (size_t j = col; j < n; ++j) m(r, j) -= factor * m(col, j);
      rhs[r] -= factor * rhs[col];
    }
  }
  Vector x(n, 0.0);
  for (size_t ii = n; ii > 0; --ii) {
    size_t i = ii - 1;
    double sum = rhs[i];
    for (size_t j = i + 1; j < n; ++j) sum -= m(i, j) * x[j];
    x[i] = sum / m(i, i);
  }
  return x;
}

}  // namespace stedb::la
