#ifndef STEDB_LA_KERNELS_H_
#define STEDB_LA_KERNELS_H_

// Runtime-dispatched SIMD kernels for the `la::` hot loops.
//
// Every reduction-shaped primitive in this repo (Dot, Norm2, the φᵀψφ
// bilinear scorer, MatVec) and every element-wise update (Axpy, Scale,
// ScaleAdd, row copies) funnels through the function table returned by
// `Kernels()`. The table is resolved exactly once per process:
//
//   * `STEDB_SIMD=scalar` forces the portable path;
//   * `STEDB_SIMD=avx2` forces AVX2+FMA and aborts with an actionable
//     error when the binary or the CPU cannot provide it;
//   * `STEDB_SIMD=auto` (or unset) probes the CPU (cpuid, including OS
//     XSAVE support) and picks AVX2 when available.
//
// Determinism contract: both paths instantiate the SAME blocked
// reduction order from kernels_impl.h (4 independent 4-lane accumulators
// combined in a fixed tree; fused multiply-adds are correctly rounded in
// both paths), so every kernel returns bit-identical results regardless
// of the dispatch choice, the thread count, or the machine. Tests
// enforce this — see tests/kernels_test.cc — which is what lets trained
// models, journal bytes and served vectors stay byte-stable across
// heterogeneous fleets.
//
// Adding a new ISA path (e.g. AVX-512 or NEON): write a policy with the
// primitives kernels_impl.h needs (4-lane Load/Store/partial variants,
// Add/Sub/Mul, single-rounding Fma, the fixed ReduceTree), instantiate
// it in its own translation unit compiled with the ISA flags for that
// file only, surface it as another `KernelOps` table, and extend the
// dispatch below. The reduction order must not change — lane width is
// part of the contract, so wider ISAs process two 4-lane groups per
// register-pair rather than widening the accumulator.

#include <cstddef>

namespace stedb::la {

/// The implementation a kernel table was built from.
enum class SimdPath { kScalar, kAvx2 };

/// Function table of the raw kernels. All pointers are non-null.
struct KernelOps {
  SimdPath path;
  const char* name;  ///< "scalar" or "avx2"

  double (*dot)(const double* a, const double* b, size_t n);
  double (*norm2sq)(const double* a, size_t n);
  double (*dist2)(const double* a, const double* b, size_t n);
  void (*axpy)(double s, const double* b, double* a, size_t n);
  void (*scale)(double* out, double s, const double* a, size_t n);
  void (*scale_add)(double* out, double s1, const double* a, double s2,
                    const double* b, size_t n);
  void (*copy_row)(double* dst, const double* src, size_t n);
  void (*matvec)(const double* m, size_t rows, size_t cols, const double* x,
                 double* out);
  double (*bilinear)(const double* x, const double* m, const double* y,
                     size_t rows, size_t cols);
};

/// The active table, resolved once at first use (thread-safe).
const KernelOps& Kernels();

/// The dispatch decision behind Kernels().
SimdPath ActiveSimdPath();
const char* SimdPathName(SimdPath path);
const char* ActiveSimdPathName();

// ---- Raw-pointer entry points (the hot-loop API) ----------------------
// Thin dispatching wrappers; prefer these over Kernels().xxx at call
// sites.

inline double Dot(const double* a, const double* b, size_t n) {
  return Kernels().dot(a, b, n);
}
inline double Norm2Sq(const double* a, size_t n) {
  return Kernels().norm2sq(a, n);
}
/// Squared Euclidean distance.
inline double DistSq(const double* a, const double* b, size_t n) {
  return Kernels().dist2(a, b, n);
}
/// a += s * b (fused multiply-add per element).
inline void Axpy(double s, const double* b, double* a, size_t n) {
  Kernels().axpy(s, b, a, n);
}
/// out = s * a; out == a allowed.
inline void Scale(double* out, double s, const double* a, size_t n) {
  Kernels().scale(out, s, a, n);
}
/// out = s1 * a + s2 * b; out may alias a or b.
inline void ScaleAdd(double* out, double s1, const double* a, double s2,
                     const double* b, size_t n) {
  Kernels().scale_add(out, s1, a, s2, b, n);
}
/// dst = src (the batched row-gather primitive).
inline void CopyRow(double* dst, const double* src, size_t n) {
  Kernels().copy_row(dst, src, n);
}
/// out[r] = <row r of m, x> for a rows x cols row-major m.
inline void MatVec(const double* m, size_t rows, size_t cols, const double* x,
                   double* out) {
  Kernels().matvec(m, rows, cols, x, out);
}
/// x^T M y for a rows x cols row-major m.
inline double BilinearForm(const double* x, const double* m, const double* y,
                           size_t rows, size_t cols) {
  return Kernels().bilinear(x, m, y, rows, cols);
}

namespace internal {

/// The portable reference table (always available).
const KernelOps& ScalarOps();
/// The AVX2+FMA table, or nullptr when this binary was built without the
/// AVX2 translation unit (non-x86 target or compiler without -mavx2).
/// Availability of the table says nothing about the CPU — pair with
/// CpuSupportsAvx2Fma() before executing it.
const KernelOps* Avx2Ops();
/// cpuid probe: AVX2 + FMA present and OS-enabled.
bool CpuSupportsAvx2Fma();
/// The table a given path would use; FATALs when the path is kAvx2 and
/// the binary lacks the AVX2 TU. For tests and benchmarks.
const KernelOps& OpsFor(SimdPath path);
/// Parses a STEDB_SIMD value; FATALs on anything outside
/// {"", "auto", "scalar", "avx2"}. Returns true and sets `*path` when the
/// value forces a path.
bool ParseSimdOverride(const char* value, SimdPath* path);
/// Swaps the active table (test-only; NOT thread-safe against concurrent
/// kernel calls — call between training runs). FATALs when forcing kAvx2
/// on a machine that cannot execute it.
void ForceSimdPathForTest(SimdPath path);

}  // namespace internal
}  // namespace stedb::la

#endif  // STEDB_LA_KERNELS_H_
