#ifndef STEDB_LA_KERNELS_IMPL_H_
#define STEDB_LA_KERNELS_IMPL_H_

// The ONE definition of every kernel's operation order, shared by the
// scalar and AVX2 translation units. Each kernel is a template over a
// lane *policy* (4-wide vector type + Load/Store/Fma/... primitives), so
// the two paths cannot drift apart structurally: they are the same code,
// instantiated with different 4-lane arithmetic. Bit-identity across
// paths then reduces to the policies' primitives being bit-identical per
// lane — which they are, because every primitive is a single IEEE-754
// double operation (add/sub/mul) or a correctly-rounded fused
// multiply-add (std::fma in the scalar policy, vfmadd in the AVX2 one;
// both round exactly once by specification).
//
// Reduction contract (Dot / Norm2Sq / DistSq): element i of an n-element
// reduction is accumulated into lane (i % 4) of accumulator ((i / 4) % 4).
// The main loop consumes 16 elements per iteration (4 independent
// fma-chains — also what keeps the AVX2 path out of latency stalls); the
// tail continues the same accumulator pattern in 4-element groups, and the
// final < 4 elements enter as a zero-padded partial group (fma(0, 0, acc)
// == acc exactly, so padding lanes are no-ops down to the bit). The four
// accumulators combine in the fixed tree
//     v = (acc0 + acc1) + (acc2 + acc3)        (element-wise)
//     result = (v[0] + v[2]) + (v[1] + v[3])   (horizontal)
// regardless of n, path, or machine.
//
// Element-wise kernels (Axpy / Scale / ScaleAdd / CopyRow) have no
// cross-element order at all; they only need each element's op sequence
// to match, which the shared template guarantees.
//
// IMPORTANT for maintainers: never instantiate a policy outside its own
// translation unit. kernels.cc instantiates ScalarPolicy only and
// kernels_avx2.cc Avx2Policy only, so no AVX2 instruction can leak into a
// TU (or linker-chosen COMDAT) that must run on non-AVX2 hardware.

#include <cstddef>

namespace stedb::la::internal {

/// Elements consumed per main-loop iteration (4 accumulators x 4 lanes).
inline constexpr size_t kBlockWidth = 16;
/// Lanes per accumulator (one AVX2 __m256d worth of doubles).
inline constexpr size_t kLaneWidth = 4;

// ---- Reductions -------------------------------------------------------

/// sum_i a[i] * b[i] in the blocked order above.
template <typename P>
double DotImpl(const double* a, const double* b, size_t n) {
  typename P::Vec acc0 = P::Zero(), acc1 = P::Zero(), acc2 = P::Zero(),
                  acc3 = P::Zero();
  size_t i = 0;
  for (; i + kBlockWidth <= n; i += kBlockWidth) {
    acc0 = P::Fma(P::Load(a + i), P::Load(b + i), acc0);
    acc1 = P::Fma(P::Load(a + i + 4), P::Load(b + i + 4), acc1);
    acc2 = P::Fma(P::Load(a + i + 8), P::Load(b + i + 8), acc2);
    acc3 = P::Fma(P::Load(a + i + 12), P::Load(b + i + 12), acc3);
  }
  typename P::Vec* accs[kLaneWidth] = {&acc0, &acc1, &acc2, &acc3};
  size_t g = 0;  // i is a multiple of 16 here, so the group pattern continues
  for (; i + kLaneWidth <= n; i += kLaneWidth, ++g) {
    *accs[g] = P::Fma(P::Load(a + i), P::Load(b + i), *accs[g]);
  }
  if (const size_t r = n - i) {
    *accs[g] =
        P::Fma(P::LoadPartial(a + i, r), P::LoadPartial(b + i, r), *accs[g]);
  }
  return P::ReduceTree(P::Add(P::Add(acc0, acc1), P::Add(acc2, acc3)));
}

/// sum_i a[i]^2, same order as DotImpl.
template <typename P>
double Norm2SqImpl(const double* a, size_t n) {
  return DotImpl<P>(a, a, n);
}

/// sum_i (a[i] - b[i])^2, same accumulation order; the difference is one
/// extra IEEE subtraction per element, identical in both policies.
template <typename P>
double DistSqImpl(const double* a, const double* b, size_t n) {
  typename P::Vec acc0 = P::Zero(), acc1 = P::Zero(), acc2 = P::Zero(),
                  acc3 = P::Zero();
  size_t i = 0;
  for (; i + kBlockWidth <= n; i += kBlockWidth) {
    typename P::Vec d0 = P::Sub(P::Load(a + i), P::Load(b + i));
    typename P::Vec d1 = P::Sub(P::Load(a + i + 4), P::Load(b + i + 4));
    typename P::Vec d2 = P::Sub(P::Load(a + i + 8), P::Load(b + i + 8));
    typename P::Vec d3 = P::Sub(P::Load(a + i + 12), P::Load(b + i + 12));
    acc0 = P::Fma(d0, d0, acc0);
    acc1 = P::Fma(d1, d1, acc1);
    acc2 = P::Fma(d2, d2, acc2);
    acc3 = P::Fma(d3, d3, acc3);
  }
  typename P::Vec* accs[kLaneWidth] = {&acc0, &acc1, &acc2, &acc3};
  size_t g = 0;
  for (; i + kLaneWidth <= n; i += kLaneWidth, ++g) {
    typename P::Vec d = P::Sub(P::Load(a + i), P::Load(b + i));
    *accs[g] = P::Fma(d, d, *accs[g]);
  }
  if (const size_t r = n - i) {
    typename P::Vec d =
        P::Sub(P::LoadPartial(a + i, r), P::LoadPartial(b + i, r));
    *accs[g] = P::Fma(d, d, *accs[g]);
  }
  return P::ReduceTree(P::Add(P::Add(acc0, acc1), P::Add(acc2, acc3)));
}

// ---- Element-wise updates --------------------------------------------

/// a[i] = fma(s, b[i], a[i]) — one rounding per element.
template <typename P>
void AxpyImpl(double s, const double* b, double* a, size_t n) {
  const typename P::Vec vs = P::Broadcast(s);
  size_t i = 0;
  for (; i + kBlockWidth <= n; i += kBlockWidth) {
    P::Store(a + i, P::Fma(vs, P::Load(b + i), P::Load(a + i)));
    P::Store(a + i + 4, P::Fma(vs, P::Load(b + i + 4), P::Load(a + i + 4)));
    P::Store(a + i + 8, P::Fma(vs, P::Load(b + i + 8), P::Load(a + i + 8)));
    P::Store(a + i + 12,
             P::Fma(vs, P::Load(b + i + 12), P::Load(a + i + 12)));
  }
  for (; i + kLaneWidth <= n; i += kLaneWidth) {
    P::Store(a + i, P::Fma(vs, P::Load(b + i), P::Load(a + i)));
  }
  if (const size_t r = n - i) {
    P::StorePartial(
        a + i, P::Fma(vs, P::LoadPartial(b + i, r), P::LoadPartial(a + i, r)),
        r);
  }
}

/// out[i] = s * a[i]. Safe for out == a (pure element-wise).
template <typename P>
void ScaleImpl(double* out, double s, const double* a, size_t n) {
  const typename P::Vec vs = P::Broadcast(s);
  size_t i = 0;
  for (; i + kLaneWidth <= n; i += kLaneWidth) {
    P::Store(out + i, P::Mul(vs, P::Load(a + i)));
  }
  if (const size_t r = n - i) {
    P::StorePartial(out + i, P::Mul(vs, P::LoadPartial(a + i, r)), r);
  }
}

/// out[i] = fma(s1, a[i], s2 * b[i]) — the s2 product rounds, then one
/// fused rounding. Safe for out aliasing a or b.
template <typename P>
void ScaleAddImpl(double* out, double s1, const double* a, double s2,
                  const double* b, size_t n) {
  const typename P::Vec v1 = P::Broadcast(s1);
  const typename P::Vec v2 = P::Broadcast(s2);
  size_t i = 0;
  for (; i + kLaneWidth <= n; i += kLaneWidth) {
    P::Store(out + i,
             P::Fma(v1, P::Load(a + i), P::Mul(v2, P::Load(b + i))));
  }
  if (const size_t r = n - i) {
    P::StorePartial(out + i,
                    P::Fma(v1, P::LoadPartial(a + i, r),
                           P::Mul(v2, P::LoadPartial(b + i, r))),
                    r);
  }
}

/// dst[i] = src[i]; the row-gather primitive. Bit-identity is trivial.
template <typename P>
void CopyRowImpl(double* dst, const double* src, size_t n) {
  size_t i = 0;
  for (; i + kBlockWidth <= n; i += kBlockWidth) {
    P::Store(dst + i, P::Load(src + i));
    P::Store(dst + i + 4, P::Load(src + i + 4));
    P::Store(dst + i + 8, P::Load(src + i + 8));
    P::Store(dst + i + 12, P::Load(src + i + 12));
  }
  for (; i + kLaneWidth <= n; i += kLaneWidth) {
    P::Store(dst + i, P::Load(src + i));
  }
  if (const size_t r = n - i) {
    P::StorePartial(dst + i, P::LoadPartial(src + i, r), r);
  }
}

// ---- Composites (built on the reduction contract) ---------------------

/// out[r] = Dot(row r of m, x): one blocked-order dot per row, rows in
/// order.
template <typename P>
void MatVecImpl(const double* m, size_t rows, size_t cols, const double* x,
                double* out) {
  for (size_t r = 0; r < rows; ++r) {
    out[r] = DotImpl<P>(m + r * cols, x, cols);
  }
}

/// x^T M y: acc = fma(x[i], Dot(row i, y), acc) over rows in order, with
/// the historical x[i] == 0 skip (exact: fma(0, q, acc) == acc for finite
/// q, and skipping reproduces the seed's sparsity shortcut identically in
/// both paths).
template <typename P>
double BilinearImpl(const double* x, const double* m, const double* y,
                    size_t rows, size_t cols) {
  double acc = 0.0;
  for (size_t i = 0; i < rows; ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    acc = P::ScalarFma(xi, DotImpl<P>(m + i * cols, y, cols), acc);
  }
  return acc;
}

}  // namespace stedb::la::internal

#endif  // STEDB_LA_KERNELS_IMPL_H_
