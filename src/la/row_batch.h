#ifndef STEDB_LA_ROW_BATCH_H_
#define STEDB_LA_ROW_BATCH_H_

#include <atomic>

#include "src/common/parallel.h"
#include "src/la/kernels.h"
#include "src/la/matrix.h"

namespace stedb::la {

/// Rows below this count are copied serially: even a pooled fan-out costs
/// more than a few kilobytes of memcpy. Above it, the copy fans out via
/// RunParallelFor — the shared per-process pool for the default thread
/// count, a dedicated runner for explicit pins — and rows are disjoint
/// output slots, so the result is byte-identical at any thread count.
constexpr size_t kParallelRowBatchThreshold = 64;

/// Gathers `n` rows of `dim` doubles into `out` (n x dim, validated by the
/// caller). `source(i)` returns the i-th row's storage or nullptr when the
/// row does not exist. Returns `n` on success, else the smallest index
/// whose source was missing (the caller owns the error message — it knows
/// what the index means). `out` contents are unspecified on failure.
template <typename SourceFn>
size_t GatherRows(size_t n, size_t dim, int threads, MatrixView out,
                  const SourceFn& source) {
  // Per-row copies go through the dispatched CopyRow kernel (scalar =
  // memcpy, AVX2 = 256-bit unaligned moves); copies are bit-exact either
  // way, so the gather stays byte-identical across paths and threads.
  if (n < kParallelRowBatchThreshold || ResolveThreadCount(threads) <= 1) {
    for (size_t i = 0; i < n; ++i) {
      const double* row = source(i);
      if (row == nullptr) return i;
      CopyRow(out.RowPtr(i), row, dim);
    }
    return n;
  }
  std::atomic<size_t> first_missing(n);
  RunParallelFor(threads, n, [&](size_t i) {
    const double* row = source(i);
    if (row == nullptr) {
      size_t cur = first_missing.load(std::memory_order_relaxed);
      while (i < cur &&
             !first_missing.compare_exchange_weak(cur, i,
                                                  std::memory_order_relaxed)) {
      }
      return;
    }
    CopyRow(out.RowPtr(i), row, dim);
  });
  return first_missing.load(std::memory_order_relaxed);
}

}  // namespace stedb::la

#endif  // STEDB_LA_ROW_BATCH_H_
