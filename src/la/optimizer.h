#ifndef STEDB_LA_OPTIMIZER_H_
#define STEDB_LA_OPTIMIZER_H_

#include <cstddef>
#include <vector>

namespace stedb::la {

/// First-order optimizers over flat parameter blocks. Both embedding
/// trainers (Node2Vec SGNS and the FoRWaRD bilinear model) register each
/// parameter block (one vector per node/fact, one matrix per (scheme, attr))
/// and apply sparse per-block updates, so the optimizer state is keyed by
/// block id and allocated lazily.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update to `params` (length n) given `grad` (length n).
  /// `block` identifies the parameter block so that stateful optimizers
  /// (Adam) can keep per-block moments.
  ///
  /// Thread-safety contract for the parallel trainers: after
  /// Reserve(num_blocks), concurrent Step calls are safe as long as no two
  /// threads pass the same `block` — all mutable state is block-scoped.
  virtual void Step(size_t block, double* params, const double* grad,
                    size_t n) = 0;

  /// Pre-sizes per-block state for blocks [0, num_blocks) so that Step
  /// never reallocates shared storage. Must be called (from one thread)
  /// before sharded Step calls run concurrently.
  virtual void Reserve(size_t num_blocks) = 0;

  /// Scales the base learning rate (used for epoch-level decay schedules).
  /// Not thread-safe; call between parallel phases only.
  virtual void SetLearningRateScale(double scale) = 0;
};

/// Plain SGD: w <- w - lr * g.
class SgdOptimizer : public Optimizer {
 public:
  explicit SgdOptimizer(double lr) : lr_(lr), scale_(1.0) {}

  void Step(size_t block, double* params, const double* grad,
            size_t n) override;
  void Reserve(size_t /*num_blocks*/) override {}  // stateless
  void SetLearningRateScale(double scale) override { scale_ = scale; }

 private:
  double lr_;
  double scale_;
};

/// Adam (Kingma & Ba) with lazily allocated per-block first/second moments.
/// The bias-correction step count is tracked per block, matching how sparse
/// embedding updates are usually implemented.
class AdamOptimizer : public Optimizer {
 public:
  explicit AdamOptimizer(double lr, double beta1 = 0.9, double beta2 = 0.999,
                         double eps = 1e-8)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps), scale_(1.0) {}

  void Step(size_t block, double* params, const double* grad,
            size_t n) override;
  void Reserve(size_t num_blocks) override;
  void SetLearningRateScale(double scale) override { scale_ = scale; }

 private:
  struct State {
    std::vector<double> m;
    std::vector<double> v;
    long t = 0;
  };

  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  double scale_;
  std::vector<State> states_;
};

}  // namespace stedb::la

#endif  // STEDB_LA_OPTIMIZER_H_
