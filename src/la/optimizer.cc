#include "src/la/optimizer.h"

#include <cmath>

#include "src/la/kernels.h"

namespace stedb::la {

void SgdOptimizer::Step(size_t /*block*/, double* params, const double* grad,
                        size_t n) {
  Axpy(-(lr_ * scale_), grad, params, n);
}

void AdamOptimizer::Reserve(size_t num_blocks) {
  if (num_blocks > states_.size()) states_.resize(num_blocks);
}

void AdamOptimizer::Step(size_t block, double* params, const double* grad,
                         size_t n) {
  if (block >= states_.size()) states_.resize(block + 1);
  State& st = states_[block];
  if (st.m.size() != n) {
    st.m.assign(n, 0.0);
    st.v.assign(n, 0.0);
    st.t = 0;
  }
  ++st.t;
  const double lr = lr_ * scale_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(st.t));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(st.t));
  for (size_t i = 0; i < n; ++i) {
    st.m[i] = beta1_ * st.m[i] + (1.0 - beta1_) * grad[i];
    st.v[i] = beta2_ * st.v[i] + (1.0 - beta2_) * grad[i] * grad[i];
    const double mhat = st.m[i] / bc1;
    const double vhat = st.v[i] / bc2;
    params[i] -= lr * mhat / (std::sqrt(vhat) + eps_);
  }
}

}  // namespace stedb::la
