#include "src/serve/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace stedb::serve {

namespace {

constexpr size_t kMaxHeaderBytes = 16 * 1024;
constexpr size_t kMaxBodyBytes = 8 * 1024 * 1024;
/// recv timeout per wait; workers re-check the stop flag this often.
constexpr int kRecvTimeoutMs = 250;
/// A started request (bytes seen) must complete within this many waits.
constexpr int kMaxPartialWaits = 40;  // 10 s at 250 ms

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 409: return "Conflict";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

bool SendAll(int fd, const char* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::send(fd, data + done, size - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

bool SendResponse(int fd, const HttpResponse& resp) {
  char head[256];
  const int head_len = std::snprintf(
      head, sizeof(head),
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
      "Connection: keep-alive\r\n\r\n",
      resp.status, ReasonPhrase(resp.status), resp.content_type.c_str(),
      resp.body.size());
  return SendAll(fd, head, static_cast<size_t>(head_len)) &&
         SendAll(fd, resp.body.data(), resp.body.size());
}

void SetRecvTimeout(int fd, int ms) {
  struct timeval tv;
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

/// Case-insensitive "does `line` start with `prefix`".
bool StartsWithNoCase(const std::string& line, const char* prefix) {
  const size_t n = std::strlen(prefix);
  if (line.size() < n) return false;
  for (size_t i = 0; i < n; ++i) {
    if (std::tolower(static_cast<unsigned char>(line[i])) !=
        std::tolower(static_cast<unsigned char>(prefix[i]))) {
      return false;
    }
  }
  return true;
}

void ParseQuery(const std::string& query,
                std::map<std::string, std::string>* params) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string pair = query.substr(pos, amp - pos);
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      if (!pair.empty()) (*params)[UrlDecode(pair)] = "";
    } else {
      (*params)[UrlDecode(pair.substr(0, eq))] =
          UrlDecode(pair.substr(eq + 1));
    }
    pos = amp + 1;
  }
}

}  // namespace

std::string UrlDecode(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    if (in[i] == '+') {
      out.push_back(' ');
    } else if (in[i] == '%' && i + 2 < in.size() &&
               std::isxdigit(static_cast<unsigned char>(in[i + 1])) &&
               std::isxdigit(static_cast<unsigned char>(in[i + 2]))) {
      const char hex[3] = {in[i + 1], in[i + 2], '\0'};
      out.push_back(
          static_cast<char>(std::strtol(hex, nullptr, 16)));
      i += 2;
    } else {
      out.push_back(in[i]);
    }
  }
  return out;
}

std::string HttpRequest::Param(const std::string& name,
                               const std::string& fallback) const {
  auto it = params.find(name);
  return it == params.end() ? fallback : it->second;
}

int64_t HttpRequest::ParamInt(const std::string& name,
                              int64_t fallback) const {
  auto it = params.find(name);
  if (it == params.end() || it->second.empty()) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  return (end != nullptr && *end == '\0') ? static_cast<int64_t>(v)
                                          : fallback;
}

// ---- HttpServer --------------------------------------------------------

void HttpServer::Handle(const std::string& path, HttpHandler handler) {
  handlers_[path] = std::move(handler);
}

Status HttpServer::Start(const std::string& host, int port, int threads) {
  if (running_.load()) return Status::FailedPrecondition("already running");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError("http: socket() failed");
  ScopedFd listener(fd);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("http: host must be a numeric IPv4 "
                                   "address, got " + host);
  }
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Status::IOError("http: cannot bind " + host + ":" +
                           std::to_string(port));
  }
  if (::listen(fd, 128) != 0) return Status::IOError("http: listen failed");

  // Resolve the ephemeral port before any client can race us to it.
  struct sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound), &len) !=
      0) {
    return Status::IOError("http: getsockname failed");
  }
  port_ = ntohs(bound.sin_port);

  listen_fd_ = std::move(listener);
  running_.store(true, std::memory_order_release);
  if (threads < 1) threads = 1;
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) return;
  // shutdown() unblocks a blocked accept() without touching the
  // descriptor value the accept thread is still reading; the actual
  // close must wait until that thread has joined. The queue cv unblocks
  // workers; the recv timeout unblocks any worker inside a keep-alive
  // read.
  ::shutdown(listen_fd_.get(), SHUT_RDWR);
  queue_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  listen_fd_.Reset();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  MutexLock lk(queue_mu_);
  for (int fd : pending_conns_) ::close(fd);
  pending_conns_.clear();
}

void HttpServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    const int conn = ::accept(listen_fd_.get(), nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed (Stop) or fatal
    }
    SetRecvTimeout(conn, kRecvTimeoutMs);
    const int one = 1;
    ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    {
      MutexLock lk(queue_mu_);
      pending_conns_.push_back(conn);
    }
    queue_cv_.notify_one();
  }
}

void HttpServer::WorkerLoop() {
  for (;;) {
    int conn = -1;
    {
      UniqueMutexLock lk(queue_mu_);
      while (pending_conns_.empty() &&
             running_.load(std::memory_order_acquire)) {
        queue_cv_.wait(lk.native());
      }
      if (pending_conns_.empty()) return;  // stopping
      conn = pending_conns_.front();
      pending_conns_.pop_front();
    }
    ServeConnection(conn);
    ::close(conn);
  }
}

void HttpServer::ServeConnection(int fd) {
  while (running_.load(std::memory_order_acquire)) {
    HttpRequest req;
    bool bad_request = false;
    if (!ReadRequest(fd, &req, &bad_request)) {
      if (bad_request) {
        SendResponse(fd, {400, "text/plain", "malformed request\n"});
      }
      return;
    }
    requests_.fetch_add(1, std::memory_order_relaxed);
    HttpResponse resp;
    auto it = handlers_.find(req.path);
    if (it == handlers_.end()) {
      resp = {404, "text/plain", "no handler for " + req.path + "\n"};
    } else {
      resp = it->second(req);
    }
    if (!SendResponse(fd, resp)) return;
  }
}

bool HttpServer::ReadRequest(int fd, HttpRequest* req, bool* bad_request) {
  std::string buf;
  size_t header_end = std::string::npos;
  int waits = 0;
  // Head: read until the blank line.
  while (header_end == std::string::npos) {
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Idle keep-alive connections may wait indefinitely (until the
        // server stops); a *started* request must keep moving.
        if (!running_.load(std::memory_order_acquire)) return false;
        if (!buf.empty() && ++waits > kMaxPartialWaits) {
          *bad_request = true;
          return false;
        }
        continue;
      }
      return false;
    }
    if (n == 0) return false;  // clean close between requests
    buf.append(chunk, static_cast<size_t>(n));
    if (buf.size() > kMaxHeaderBytes) {
      *bad_request = true;
      return false;
    }
    header_end = buf.find("\r\n\r\n");
  }

  // Request line: METHOD SP target SP version.
  const size_t line_end = buf.find("\r\n");
  const std::string line = buf.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) {
    *bad_request = true;
    return false;
  }
  req->method = line.substr(0, sp1);
  const std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t qmark = target.find('?');
  req->path = UrlDecode(target.substr(0, qmark));
  if (qmark != std::string::npos) {
    ParseQuery(target.substr(qmark + 1), &req->params);
  }

  // Headers: only Content-Length matters to this server.
  size_t content_length = 0;
  size_t pos = line_end + 2;
  while (pos < header_end) {
    size_t eol = buf.find("\r\n", pos);
    if (eol == std::string::npos || eol > header_end) eol = header_end;
    const std::string header = buf.substr(pos, eol - pos);
    if (StartsWithNoCase(header, "content-length:")) {
      content_length = static_cast<size_t>(
          std::strtoull(header.c_str() + 15, nullptr, 10));
    }
    pos = eol + 2;
  }
  if (content_length > kMaxBodyBytes) {
    *bad_request = true;
    return false;
  }

  // Body: whatever is already buffered past the blank line, then the rest.
  req->body = buf.substr(header_end + 4);
  waits = 0;
  while (req->body.size() < content_length) {
    char chunk[8192];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!running_.load(std::memory_order_acquire) ||
            ++waits > kMaxPartialWaits) {
          *bad_request = true;
          return false;
        }
        continue;
      }
      return false;
    }
    if (n == 0) return false;
    req->body.append(chunk, static_cast<size_t>(n));
  }
  req->body.resize(content_length);
  return true;
}

// ---- HttpClient --------------------------------------------------------

Result<HttpClient> HttpClient::Connect(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError("http client: socket() failed");
  ScopedFd sock(fd);
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("http client: bad host " + host);
  }
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return Status::IOError("http client: cannot connect " + host + ":" +
                           std::to_string(port));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return HttpClient(host, port, std::move(sock));
}

Result<HttpResponse> HttpClient::Get(const std::string& target) {
  return RoundTrip("GET " + target + " HTTP/1.1\r\nHost: " + host_ +
                   "\r\n\r\n");
}

Result<HttpResponse> HttpClient::Post(const std::string& target,
                                      const std::string& body,
                                      const std::string& content_type) {
  return RoundTrip("POST " + target + " HTTP/1.1\r\nHost: " + host_ +
                   "\r\nContent-Type: " + content_type +
                   "\r\nContent-Length: " + std::to_string(body.size()) +
                   "\r\n\r\n" + body);
}

Result<HttpResponse> HttpClient::RoundTrip(const std::string& request) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    // The server may have reaped the idle keep-alive connection between
    // requests; reconnect once before failing.
    if (!fd_.valid() || attempt > 0) {
      auto fresh = Connect(host_, port_);
      if (!fresh.ok()) return fresh.status();
      fd_ = std::move(fresh.value().fd_);
    }
    if (!SendAll(fd_.get(), request.data(), request.size())) {
      fd_.Reset();
      continue;
    }
    std::string buf;
    size_t header_end = std::string::npos;
    bool peer_closed = false;
    while (header_end == std::string::npos) {
      char chunk[8192];
      const ssize_t n = ::recv(fd_.get(), chunk, sizeof(chunk), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        peer_closed = true;
        break;
      }
      if (n == 0) {
        peer_closed = true;
        break;
      }
      buf.append(chunk, static_cast<size_t>(n));
      header_end = buf.find("\r\n\r\n");
    }
    if (peer_closed) {
      fd_.Reset();
      if (buf.empty()) continue;  // stale keep-alive; retry once
      return Status::IOError("http client: connection closed mid-response");
    }

    HttpResponse resp;
    // Status line: HTTP/1.1 SP code SP reason.
    const size_t sp = buf.find(' ');
    if (sp == std::string::npos) {
      return Status::IOError("http client: malformed status line");
    }
    resp.status = std::atoi(buf.c_str() + sp + 1);
    size_t content_length = 0;
    size_t pos = buf.find("\r\n") + 2;
    while (pos < header_end) {
      size_t eol = buf.find("\r\n", pos);
      if (eol == std::string::npos || eol > header_end) eol = header_end;
      const std::string header = buf.substr(pos, eol - pos);
      if (StartsWithNoCase(header, "content-length:")) {
        content_length = static_cast<size_t>(
            std::strtoull(header.c_str() + 15, nullptr, 10));
      } else if (StartsWithNoCase(header, "content-type:")) {
        size_t v = 13;
        while (v < header.size() && header[v] == ' ') ++v;
        resp.content_type = header.substr(v);
      }
      pos = eol + 2;
    }
    resp.body = buf.substr(header_end + 4);
    while (resp.body.size() < content_length) {
      char chunk[8192];
      const ssize_t n = ::recv(fd_.get(), chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        fd_.Reset();
        return Status::IOError("http client: connection closed mid-body");
      }
      resp.body.append(chunk, static_cast<size_t>(n));
    }
    resp.body.resize(content_length);
    return resp;
  }
  return Status::IOError("http client: request failed after reconnect");
}

}  // namespace stedb::serve
