#ifndef STEDB_SERVE_HTTP_H_
#define STEDB_SERVE_HTTP_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/common/scoped_fd.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"

namespace stedb::serve {

/// Minimal embedded HTTP/1.1 layer for stedb_serve: enough of the
/// protocol to put the serving session behind a socket — GET/POST,
/// query-string parameters, Content-Length bodies, keep-alive — with no
/// third-party dependency (the container has none to vendor; this is the
/// "minimal server" fallback the ROADMAP's cpp-httplib pointer allows).
/// Not a general web server: no TLS, no chunked encoding, no multipart;
/// request heads are capped at 16 KiB and bodies at 8 MiB.

struct HttpRequest {
  std::string method;  ///< "GET", "POST", ... (uppercase as sent)
  std::string path;    ///< decoded path, query string stripped
  std::string body;    ///< Content-Length bytes, POST/PUT only
  std::map<std::string, std::string> params;  ///< decoded query parameters

  /// The parameter's value, or `fallback` when absent.
  std::string Param(const std::string& name,
                    const std::string& fallback = std::string()) const;
  /// Integer parameter; `fallback` when absent or unparsable.
  int64_t ParamInt(const std::string& name, int64_t fallback) const;
  bool HasParam(const std::string& name) const {
    return params.count(name) > 0;
  }
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

/// Blocking multi-threaded HTTP server: one accept thread feeds a
/// connection queue drained by a fixed worker pool; each worker runs a
/// keep-alive read-dispatch-write loop per connection. Handlers are
/// matched by exact path and must be thread-safe — every worker calls
/// them concurrently.
class HttpServer {
 public:
  HttpServer() = default;
  ~HttpServer() { Stop(); }
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers `handler` for exact-path requests. Call before Start().
  void Handle(const std::string& path, HttpHandler handler);

  /// Binds `host:port` (numeric IPv4; port 0 picks an ephemeral port —
  /// read it back via port()) and starts the accept + worker threads.
  Status Start(const std::string& host, int port, int threads);

  /// Closes the listener, drains workers, joins threads. Idempotent.
  void Stop();

  /// The bound port (the resolved one when Start was given port 0).
  int port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }
  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void WorkerLoop();
  /// Serves one connection's keep-alive loop.
  void ServeConnection(int fd);
  /// Reads one request off `fd`; false on EOF/error/malformed (the
  /// connection is then closed). `bad_request` distinguishes a protocol
  /// violation (answer 400) from a clean close.
  bool ReadRequest(int fd, HttpRequest* req, bool* bad_request);

  std::map<std::string, HttpHandler> handlers_;
  ScopedFd listen_fd_;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> requests_{0};

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  Mutex queue_mu_;
  std::condition_variable queue_cv_;
  /// Accepted fds awaiting a worker.
  std::deque<int> pending_conns_ STEDB_GUARDED_BY(queue_mu_);
};

/// Blocking keep-alive HTTP client for the load generator, the demo drill
/// and the tests. One connection per instance; not thread-safe (each load
/// generator thread owns its own client).
class HttpClient {
 public:
  static Result<HttpClient> Connect(const std::string& host, int port);

  HttpClient(HttpClient&&) = default;
  HttpClient& operator=(HttpClient&&) = default;

  Result<HttpResponse> Get(const std::string& target);
  Result<HttpResponse> Post(const std::string& target,
                            const std::string& body,
                            const std::string& content_type);

 private:
  HttpClient(std::string host, int port, ScopedFd fd)
      : host_(std::move(host)), port_(port), fd_(std::move(fd)) {}

  Result<HttpResponse> RoundTrip(const std::string& request);

  std::string host_;
  int port_ = 0;
  ScopedFd fd_;
};

/// Percent-decodes `in` ('+' becomes a space). Exposed for tests.
std::string UrlDecode(const std::string& in);

}  // namespace stedb::serve

#endif  // STEDB_SERVE_HTTP_H_
