#ifndef STEDB_SERVE_SERVICE_H_
#define STEDB_SERVE_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/api/serving.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/serve/http.h"

namespace stedb::serve {

/// Knobs for EmbeddingService. Defaults are sized for a loopback service
/// in front of one store directory.
struct ServeOptions {
  /// HTTP worker threads (0 = ResolveThreadCount: STEDB_THREADS, else
  /// hardware concurrency).
  int http_threads = 0;
  /// WAL catch-up cadence: the ticker thread Polls the shared session
  /// every this many milliseconds (0 disables the ticker — Poll only via
  /// PollNow(), for tests and single-shot drills).
  int poll_interval_ms = 20;
  /// Ceiling on /topk's and /similar's k and /facts' limit.
  size_t max_topk = 1024;
  /// HNSW base-layer beam width for /similar (0 = the library default,
  /// api::ServingSession::kDefaultEfSearch). Larger = better recall,
  /// slower queries. `stedb_serve --ef-search=N` sets it.
  size_t ef_search = 0;
  /// Ceiling on facts per /embed_batch request.
  size_t max_batch_facts = 65536;
  /// Runs on every ticker tick, after the Poll, outside the session lock.
  /// The flusher pattern for a co-located writer: a trainer embedding in
  /// the same process installs `[&store] { store mutex; store.SyncIfDue(); }`
  /// so an idle writer's group-commit tail becomes durable within the
  /// window even when no Append arrives to evaluate it (see
  /// store::EmbeddingStore::SyncIfDue).
  std::function<void()> tick_hook;
};

/// The networked embedding service: one shared api::ServingSession behind
/// an HttpServer.
///
/// Endpoints (all JSON unless `raw=1`, which returns the vector payload
/// as little-endian IEEE-754 doubles — the snapshot's own byte order —
/// for bit-exact transport):
///   GET /embed?fact=ID[&raw=1]        one φ vector
///   GET /embed_batch?facts=1,2,3      batch read (or POST ids in body)
///   GET /topk?fact=ID&k=K[&target=T]  φᵀψφ top-k over served facts
///   GET /similar?fact=ID&k=K[&approx=0]  nearest neighbors in embedding
///       space — sublinear via the snapshot's persisted HNSW index when
///       present, exact scan otherwise; approx=0 forces the exact scan
///   GET /facts[?limit=N]              served fact ids (load-gen seed)
///   GET /stats                        counters + store shape
///   GET /healthz                      liveness probe
///
/// Concurrency model: HTTP workers take the session lock shared; the
/// Poll ticker takes it exclusive (Poll may remap the snapshot and grow
/// the overlay, invalidating served views). Concurrent single-fact
/// /embed lookups do NOT each hit the session: they are queued and a
/// dedicated coalescer thread drains the queue into one
/// ServingSession::EmbedBatch call per round — the group-commit pattern
/// applied to reads — so N concurrent lookups cost one batched fan-out
/// on the shared ParallelRunner pool instead of N scalar walks.
class EmbeddingService {
 public:
  /// Counters exposed by /stats (and asserted by tests). Since the obs
  /// migration these are views over the process-global obs::Registry —
  /// the same series GET /metrics renders, so the two endpoints can
  /// never disagree — reported relative to a baseline captured when this
  /// service instance was opened (the registry is cumulative across
  /// instances; /stats stays per-instance, which is what the tests and
  /// the existing JSON consumers assume).
  struct Stats {
    uint64_t http_requests = 0;
    uint64_t embeds = 0;            ///< single-fact lookups served
    uint64_t embed_batches = 0;     ///< /embed_batch requests
    uint64_t coalesce_rounds = 0;   ///< EmbedBatch calls the coalescer made
    uint64_t max_coalesced = 0;     ///< largest single coalesced round
    uint64_t topk_queries = 0;
    uint64_t similar_queries = 0;   ///< /similar requests (approx + exact)
    uint64_t polls = 0;             ///< ticker + PollNow Poll() calls
    uint64_t wal_records_applied = 0;
    uint64_t reopens = 0;           ///< compaction-triggered reopens
  };

  /// Opens `<dir>` as a ServingSession and wires the endpoint handlers.
  /// The service starts serving on Start().
  static Result<std::unique_ptr<EmbeddingService>> Open(
      const std::string& dir, ServeOptions options = ServeOptions());

  ~EmbeddingService() { Stop(); }
  EmbeddingService(const EmbeddingService&) = delete;
  EmbeddingService& operator=(const EmbeddingService&) = delete;

  /// Binds and starts serving; port 0 picks an ephemeral port.
  Status Start(const std::string& host, int port);

  /// Stops the HTTP server and the ticker/coalescer threads. Idempotent.
  void Stop();

  int port() const { return http_.port(); }

  /// One synchronous tick: Poll the session now (exclusive lock), then
  /// run the tick hook. Returns the number of WAL records applied.
  Result<size_t> PollNow() STEDB_EXCLUDES(session_mu_);

  Stats stats() const;
  size_t dim() const { return dim_; }

 private:
  EmbeddingService(api::ServingSession session, ServeOptions options);

  void RegisterHandlers();
  void TickerLoop();
  void CoalescerLoop();

  /// One queued single-fact lookup awaiting the coalescer.
  struct PendingEmbed {
    db::FactId fact = db::kNoFact;
    la::Vector phi;
    Status status;
    /// Written by the coalescer, read by the waiting handler — both under
    /// embed_mu_. (A nested struct cannot spell STEDB_GUARDED_BY on the
    /// enclosing service's member, so the discipline is stated here.)
    bool done = false;
  };

  /// Blocks until the coalescer has served `fact`.
  PendingEmbed CoalescedEmbed(db::FactId fact) STEDB_EXCLUDES(embed_mu_);

  HttpResponse HandleEmbed(const HttpRequest& req);
  HttpResponse HandleEmbedBatch(const HttpRequest& req);
  HttpResponse HandleTopK(const HttpRequest& req);
  HttpResponse HandleSimilar(const HttpRequest& req);
  HttpResponse HandleFacts(const HttpRequest& req);
  HttpResponse HandleStats(const HttpRequest& req);
  HttpResponse HandleMetrics(const HttpRequest& req);

  ServeOptions options_;
  size_t dim_ = 0;

  /// Shared session: HTTP readers shared, Poll exclusive. Lock ordering:
  /// session_mu_, embed_mu_ and ticker_mu_ are never held together —
  /// the coalescer drops embed_mu_ before taking session_mu_ for its
  /// round, and the ticker calls PollNow with ticker_mu_ released.
  mutable SharedMutex session_mu_;
  api::ServingSession session_ STEDB_GUARDED_BY(session_mu_);

  HttpServer http_;

  // Coalescer state.
  Mutex embed_mu_;
  std::condition_variable embed_work_cv_;  ///< wakes the coalescer
  std::condition_variable embed_done_cv_;  ///< wakes waiting handlers
  std::vector<PendingEmbed*> embed_queue_ STEDB_GUARDED_BY(embed_mu_);
  std::atomic<bool> stopping_{false};
  std::thread coalescer_;

  // Ticker state. ticker_mu_ guards no data; it exists for the cv's
  // timed waits, which is why nothing carries STEDB_GUARDED_BY on it.
  Mutex ticker_mu_;
  std::condition_variable ticker_cv_;
  std::thread ticker_;

  /// Registry counter values at instance construction; stats() subtracts
  /// them so /stats counts this service's lifetime while /metrics stays
  /// process-cumulative. (Two *concurrently* live services in one process
  /// would bleed into each other's deltas — the supported topology is one
  /// service per process, or sequential instances as in the tests.)
  struct CounterBaseline {
    uint64_t embeds = 0;
    uint64_t embed_batches = 0;
    uint64_t coalesce_rounds = 0;
    uint64_t topk_queries = 0;
    uint64_t similar_queries = 0;
    uint64_t polls = 0;
    uint64_t wal_records_applied = 0;
    uint64_t reopens = 0;
  };
  CounterBaseline baseline_;

  /// A max is not delta-able against a baseline; it stays per-instance
  /// (and is mirrored into a registry gauge as a process-wide ratchet).
  std::atomic<uint64_t> max_coalesced_{0};
};

/// Extracts every signed integer from `text` — the lenient fact-id list
/// parser behind /embed_batch ("1,2,3", "[1, 2, 3]", {"facts":[1,2]} all
/// parse the same). Exposed for tests.
std::vector<db::FactId> ParseFactList(const std::string& text,
                                      size_t max_facts);

}  // namespace stedb::serve

#endif  // STEDB_SERVE_SERVICE_H_
