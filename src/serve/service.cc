#include "src/serve/service.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "src/common/parallel.h"
#include "src/fwd/trainer.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/store/embedding_store.h"

namespace stedb::serve {

namespace {

/// Registry series of the serve layer. Counters are process-cumulative;
/// /stats subtracts a per-instance baseline (see CounterBaseline). The
/// per-endpoint request series live next to these but are registered in
/// RegisterHandlers, where the endpoint label value is known.
struct ServeMetrics {
  obs::Registry& reg = obs::Registry::Global();
  obs::Counter& embeds = reg.GetCounter(
      "stedb_serve_embeds_total", "Single-fact lookups served");
  obs::Counter& embed_batches = reg.GetCounter(
      "stedb_serve_embed_batches_total", "/embed_batch requests served");
  obs::Counter& coalesce_rounds = reg.GetCounter(
      "stedb_serve_coalesce_rounds_total",
      "EmbedBatch calls made by the coalescer");
  obs::Counter& topk_queries = reg.GetCounter(
      "stedb_serve_topk_queries_total", "/topk queries served");
  obs::Counter& similar_queries = reg.GetCounter(
      "stedb_serve_similar_queries_total",
      "/similar queries served (approximate and exact paths)");
  obs::Counter& polls = reg.GetCounter(
      "stedb_serve_polls_total", "ServingSession Poll() calls");
  obs::Counter& wal_records_applied = reg.GetCounter(
      "stedb_serve_wal_records_applied_total",
      "WAL records applied to the served overlay");
  obs::Counter& reopens = reg.GetCounter(
      "stedb_serve_reopens_total", "Compaction-triggered session reopens");
  obs::Gauge& inflight = reg.GetGauge(
      "stedb_serve_inflight_requests", "HTTP requests currently in flight");
  obs::Gauge& max_coalesced = reg.GetGauge(
      "stedb_serve_max_coalesced_records",
      "Largest single coalesced embed round seen by this process");
  obs::Histogram& coalesced_batch = reg.GetHistogram(
      "stedb_serve_coalesced_batch_records",
      "Lookups per coalesced embed round", obs::Buckets::PowersOfTwo());
};

ServeMetrics& Metrics() {
  static ServeMetrics m;
  return m;
}

[[maybe_unused]] const ServeMetrics& g_eager_metrics = Metrics();

/// Shortest round-tripping decimal for an IEEE double: 17 significant
/// digits reparse to the identical bits, which is what keeps the JSON
/// path bit-exact end to end (the demo drill asserts it).
void AppendJsonDouble(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void AppendJsonVector(std::string& out, Span<const double> v) {
  out.push_back('[');
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out.push_back(',');
    AppendJsonDouble(out, v[i]);
  }
  out.push_back(']');
}

/// The snapshot format is little-endian IEEE-754; on the little-endian
/// hosts this library supports the in-memory bytes ARE the wire bytes.
void AppendRawVector(std::string& out, Span<const double> v) {
  out.append(reinterpret_cast<const char*>(v.data()),
             v.size() * sizeof(double));
}

int HttpStatusFor(const Status& st) {
  switch (st.code()) {
    case StatusCode::kOk: return 200;
    case StatusCode::kNotFound: return 404;
    case StatusCode::kInvalidArgument: return 400;
    case StatusCode::kFailedPrecondition: return 409;
    default: return 500;
  }
}

HttpResponse ErrorResponse(const Status& st) {
  std::string body = "{\"error\":\"";
  // Status messages here are ASCII diagnostics; escape the two JSON
  // breakers rather than pulling in a full escaper.
  for (char c : st.ToString()) {
    if (c == '"' || c == '\\') body.push_back('\\');
    body.push_back(c);
  }
  body += "\"}\n";
  return {HttpStatusFor(st), "application/json", std::move(body)};
}

}  // namespace

std::vector<db::FactId> ParseFactList(const std::string& text,
                                      size_t max_facts) {
  std::vector<db::FactId> facts;
  const char* p = text.c_str();
  const char* end = p + text.size();
  while (p < end && facts.size() <= max_facts) {
    const bool digit_start =
        std::isdigit(static_cast<unsigned char>(*p)) ||
        (*p == '-' && p + 1 < end &&
         std::isdigit(static_cast<unsigned char>(p[1])));
    if (!digit_start) {
      ++p;
      continue;
    }
    char* after = nullptr;
    const long long v = std::strtoll(p, &after, 10);
    facts.push_back(static_cast<db::FactId>(v));
    p = after;
  }
  return facts;
}

Result<std::unique_ptr<EmbeddingService>> EmbeddingService::Open(
    const std::string& dir, ServeOptions options) {
  STEDB_ASSIGN_OR_RETURN(api::ServingSession session,
                         api::ServingSession::Open(dir));
  std::unique_ptr<EmbeddingService> service(
      new EmbeddingService(std::move(session), std::move(options)));
  return service;
}

EmbeddingService::EmbeddingService(api::ServingSession session,
                                   ServeOptions options)
    : options_(std::move(options)),
      dim_(session.dim()),
      session_(std::move(session)) {
  // Read-only serving binaries never reference the store/trainer write
  // paths, so their eager metric registrations would be dropped by the
  // static linker; touching them here keeps the /metrics schema complete
  // (writer families render at zero instead of disappearing).
  store::TouchStoreMetrics();
  fwd::TouchTrainMetrics();
  const ServeMetrics& m = Metrics();
  baseline_.embeds = m.embeds.Value();
  baseline_.embed_batches = m.embed_batches.Value();
  baseline_.coalesce_rounds = m.coalesce_rounds.Value();
  baseline_.topk_queries = m.topk_queries.Value();
  baseline_.similar_queries = m.similar_queries.Value();
  baseline_.polls = m.polls.Value();
  baseline_.wal_records_applied = m.wal_records_applied.Value();
  baseline_.reopens = m.reopens.Value();
  RegisterHandlers();
  coalescer_ = std::thread([this] { CoalescerLoop(); });
  if (options_.poll_interval_ms > 0) {
    ticker_ = std::thread([this] { TickerLoop(); });
  }
}

Status EmbeddingService::Start(const std::string& host, int port) {
  return http_.Start(host, port, ResolveThreadCount(options_.http_threads));
}

void EmbeddingService::Stop() {
  if (stopping_.exchange(true)) return;
  // Order matters: the HTTP server drains first while the coalescer is
  // still alive, so in-flight /embed handlers blocked on a coalesced
  // round get their result instead of deadlocking the worker join.
  http_.Stop();
  {
    MutexLock lk(embed_mu_);
    embed_work_cv_.notify_all();
  }
  if (coalescer_.joinable()) coalescer_.join();
  {
    MutexLock lk(ticker_mu_);
    ticker_cv_.notify_all();
  }
  if (ticker_.joinable()) ticker_.join();
}

Result<size_t> EmbeddingService::PollNow() {
  size_t applied = 0;
  {
    WriterMutexLock lk(session_mu_);
    auto polled = session_.Poll();
    if (!polled.ok()) return polled.status();
    applied = polled.value();
    Metrics().polls.Inc();
    Metrics().wal_records_applied.Inc(applied);
    if (session_.reopened()) Metrics().reopens.Inc();
  }
  if (options_.tick_hook) options_.tick_hook();
  return applied;
}

void EmbeddingService::TickerLoop() {
  const auto interval =
      std::chrono::milliseconds(options_.poll_interval_ms);
  UniqueMutexLock lk(ticker_mu_);
  while (!stopping_.load(std::memory_order_acquire)) {
    // No predicate: a spurious wake just polls one tick early, and the
    // stop flag is re-checked before (and after) every wait.
    ticker_cv_.wait_for(lk.native(), interval);
    if (stopping_.load(std::memory_order_acquire)) return;
    lk.Unlock();
    PollNow();  // a transient Poll error just retries next tick
    lk.Lock();
  }
}

// ---- Request coalescing ------------------------------------------------

EmbeddingService::PendingEmbed EmbeddingService::CoalescedEmbed(
    db::FactId fact) {
  PendingEmbed slot;
  slot.fact = fact;
  UniqueMutexLock lk(embed_mu_);
  if (stopping_.load(std::memory_order_acquire)) {
    slot.status = Status::FailedPrecondition("service stopping");
    slot.done = true;
    return slot;
  }
  embed_queue_.push_back(&slot);
  embed_work_cv_.notify_one();
  while (!slot.done) embed_done_cv_.wait(lk.native());
  return slot;
}

void EmbeddingService::CoalescerLoop() {
  UniqueMutexLock lk(embed_mu_);
  for (;;) {
    while (embed_queue_.empty() &&
           !stopping_.load(std::memory_order_acquire)) {
      embed_work_cv_.wait(lk.native());
    }
    if (embed_queue_.empty() &&
        stopping_.load(std::memory_order_acquire)) {
      return;
    }
    // Take everything queued while the previous round ran — the natural
    // coalescing window, exactly like group commit.
    std::vector<PendingEmbed*> round;
    round.swap(embed_queue_);
    lk.Unlock();

    std::vector<db::FactId> facts;
    facts.reserve(round.size());
    for (PendingEmbed* slot : round) facts.push_back(slot->fact);
    la::Matrix out(round.size(), dim_);
    {
      SharedMutexLock slk(session_mu_);
      const Status st = session_.EmbedBatch(facts, out);
      if (st.ok()) {
        for (size_t i = 0; i < round.size(); ++i) {
          round[i]->phi.assign(out.RowPtr(i), out.RowPtr(i) + dim_);
        }
      } else {
        // One unknown fact fails the whole batch — resolve each request
        // individually so the other callers still get their vector.
        for (PendingEmbed* slot : round) {
          auto v = session_.Embed(slot->fact);
          if (v.ok()) {
            slot->phi.assign(v.value().begin(), v.value().end());
          } else {
            slot->status = v.status();
          }
        }
      }
    }
    ServeMetrics& m = Metrics();
    m.coalesce_rounds.Inc();
    m.embeds.Inc(round.size());
    m.coalesced_batch.Observe(static_cast<double>(round.size()));
    m.max_coalesced.SetMax(static_cast<double>(round.size()));
    uint64_t seen = max_coalesced_.load(std::memory_order_relaxed);
    while (round.size() > seen &&
           !max_coalesced_.compare_exchange_weak(
               seen, round.size(), std::memory_order_relaxed)) {
    }

    lk.Lock();
    for (PendingEmbed* slot : round) slot->done = true;
    embed_done_cv_.notify_all();
  }
}

// ---- Handlers ----------------------------------------------------------

void EmbeddingService::RegisterHandlers() {
  // Every endpoint is wrapped with the same instrumentation: a request
  // counter and a latency histogram keyed by an `endpoint` label (the
  // path without the slash — label values stay identifier-shaped), plus
  // the shared in-flight gauge. Registration happens here, once per
  // endpoint; re-opening a service in the same process gets the same
  // series back, so the handler hot path never touches the registry map.
  const auto timed = [this](const char* path,
                            std::function<HttpResponse(const HttpRequest&)>
                                handler) {
    obs::Registry& reg = obs::Registry::Global();
    const std::string endpoint = path + 1;  // strip the leading '/'
    obs::Counter& requests = reg.GetCounter(
        "stedb_serve_requests_total", "HTTP requests by endpoint",
        {{"endpoint", endpoint}});
    obs::Histogram& latency = reg.GetHistogram(
        "stedb_serve_request_seconds", "HTTP request latency by endpoint",
        obs::Buckets::Latency(), {{"endpoint", endpoint}});
    http_.Handle(path, [&requests, &latency,
                        handler = std::move(handler)](const HttpRequest& r) {
      requests.Inc();
      Metrics().inflight.Add(1.0);
      HttpResponse resp;
      {
        obs::ScopedTimer timer(latency);
        resp = handler(r);
      }
      Metrics().inflight.Add(-1.0);
      return resp;
    });
  };
  timed("/embed", [this](const HttpRequest& r) { return HandleEmbed(r); });
  timed("/embed_batch",
        [this](const HttpRequest& r) { return HandleEmbedBatch(r); });
  timed("/topk", [this](const HttpRequest& r) { return HandleTopK(r); });
  timed("/similar",
        [this](const HttpRequest& r) { return HandleSimilar(r); });
  timed("/facts", [this](const HttpRequest& r) { return HandleFacts(r); });
  timed("/stats", [this](const HttpRequest& r) { return HandleStats(r); });
  timed("/metrics",
        [this](const HttpRequest& r) { return HandleMetrics(r); });
  timed("/healthz", [](const HttpRequest&) {
    return HttpResponse{200, "text/plain", "ok\n"};
  });
}

HttpResponse EmbeddingService::HandleEmbed(const HttpRequest& req) {
  if (!req.HasParam("fact")) {
    return ErrorResponse(
        Status::InvalidArgument("missing ?fact=<id> parameter"));
  }
  const auto fact =
      static_cast<db::FactId>(req.ParamInt("fact", db::kNoFact));
  PendingEmbed served = CoalescedEmbed(fact);
  if (!served.status.ok()) return ErrorResponse(served.status);

  if (req.ParamInt("raw", 0) != 0) {
    HttpResponse resp;
    resp.content_type = "application/octet-stream";
    AppendRawVector(resp.body, served.phi);
    return resp;
  }
  HttpResponse resp;
  resp.body = "{\"fact\":" + std::to_string(fact) +
              ",\"dim\":" + std::to_string(dim_) + ",\"phi\":";
  AppendJsonVector(resp.body, served.phi);
  resp.body += "}\n";
  return resp;
}

HttpResponse EmbeddingService::HandleEmbedBatch(const HttpRequest& req) {
  const std::string& source =
      req.HasParam("facts") ? req.Param("facts") : req.body;
  std::vector<db::FactId> facts =
      ParseFactList(source, options_.max_batch_facts);
  if (facts.empty()) {
    return ErrorResponse(Status::InvalidArgument(
        "no fact ids in ?facts= or request body"));
  }
  if (facts.size() > options_.max_batch_facts) {
    return ErrorResponse(Status::InvalidArgument(
        "batch exceeds max_batch_facts=" +
        std::to_string(options_.max_batch_facts)));
  }
  la::Matrix out(facts.size(), dim_);
  {
    SharedMutexLock lk(session_mu_);
    const Status st = session_.EmbedBatch(facts, out);
    if (!st.ok()) return ErrorResponse(st);
  }
  Metrics().embed_batches.Inc();

  if (req.ParamInt("raw", 0) != 0) {
    HttpResponse resp;
    resp.content_type = "application/octet-stream";
    resp.body.reserve(facts.size() * dim_ * sizeof(double));
    for (size_t i = 0; i < facts.size(); ++i) {
      AppendRawVector(resp.body, Span<const double>(out.RowPtr(i), dim_));
    }
    return resp;
  }
  HttpResponse resp;
  resp.body = "{\"count\":" + std::to_string(facts.size()) +
              ",\"dim\":" + std::to_string(dim_) + ",\"rows\":[";
  for (size_t i = 0; i < facts.size(); ++i) {
    if (i > 0) resp.body.push_back(',');
    resp.body += "{\"fact\":" + std::to_string(facts[i]) + ",\"phi\":";
    AppendJsonVector(resp.body, Span<const double>(out.RowPtr(i), dim_));
    resp.body.push_back('}');
  }
  resp.body += "]}\n";
  return resp;
}

HttpResponse EmbeddingService::HandleTopK(const HttpRequest& req) {
  if (!req.HasParam("fact")) {
    return ErrorResponse(
        Status::InvalidArgument("missing ?fact=<id> parameter"));
  }
  const auto fact =
      static_cast<db::FactId>(req.ParamInt("fact", db::kNoFact));
  const auto k = static_cast<size_t>(std::max<int64_t>(
      1, std::min<int64_t>(req.ParamInt("k", 10),
                           static_cast<int64_t>(options_.max_topk))));
  const auto target =
      static_cast<size_t>(std::max<int64_t>(0, req.ParamInt("target", 0)));

  Result<std::vector<api::ServingSession::Scored>> scored = [&] {
    SharedMutexLock lk(session_mu_);
    return session_.TopK(fact, k, target);
  }();
  if (!scored.ok()) return ErrorResponse(scored.status());
  Metrics().topk_queries.Inc();

  HttpResponse resp;
  resp.body = "{\"query\":" + std::to_string(fact) +
              ",\"target\":" + std::to_string(target) + ",\"results\":[";
  bool first = true;
  for (const api::ServingSession::Scored& s : scored.value()) {
    if (!first) resp.body.push_back(',');
    first = false;
    resp.body += "{\"fact\":" + std::to_string(s.fact) + ",\"score\":";
    AppendJsonDouble(resp.body, s.score);
    resp.body.push_back('}');
  }
  resp.body += "]}\n";
  return resp;
}

HttpResponse EmbeddingService::HandleSimilar(const HttpRequest& req) {
  if (!req.HasParam("fact")) {
    return ErrorResponse(
        Status::InvalidArgument("missing ?fact=<id> parameter"));
  }
  const auto fact =
      static_cast<db::FactId>(req.ParamInt("fact", db::kNoFact));
  const auto k = static_cast<size_t>(std::max<int64_t>(
      1, std::min<int64_t>(req.ParamInt("k", 10),
                           static_cast<int64_t>(options_.max_topk))));
  api::SimilarOptions opts;
  opts.ef_search = options_.ef_search;
  opts.approx = req.ParamInt("approx", 1) != 0;

  bool approx_served = false;
  Result<std::vector<api::ServingSession::Scored>> scored = [&] {
    SharedMutexLock lk(session_mu_);
    approx_served = opts.approx && session_.has_ann_index();
    return session_.SimilarTopK(fact, k, opts);
  }();
  if (!scored.ok()) return ErrorResponse(scored.status());
  Metrics().similar_queries.Inc();

  HttpResponse resp;
  resp.body = "{\"query\":" + std::to_string(fact) + ",\"approx\":" +
              (approx_served ? "true" : "false") + ",\"results\":[";
  bool first = true;
  for (const api::ServingSession::Scored& s : scored.value()) {
    if (!first) resp.body.push_back(',');
    first = false;
    resp.body += "{\"fact\":" + std::to_string(s.fact) + ",\"score\":";
    AppendJsonDouble(resp.body, s.score);
    resp.body.push_back('}');
  }
  resp.body += "]}\n";
  return resp;
}

HttpResponse EmbeddingService::HandleFacts(const HttpRequest& req) {
  const auto limit = static_cast<size_t>(std::max<int64_t>(
      0, req.ParamInt("limit",
                      static_cast<int64_t>(options_.max_batch_facts))));
  std::vector<db::FactId> facts;
  size_t total = 0;
  {
    SharedMutexLock lk(session_mu_);
    facts = session_.ServedFacts();
  }
  total = facts.size();
  if (facts.size() > limit) facts.resize(limit);

  HttpResponse resp;
  resp.body = "{\"count\":" + std::to_string(total) + ",\"facts\":[";
  for (size_t i = 0; i < facts.size(); ++i) {
    if (i > 0) resp.body.push_back(',');
    resp.body += std::to_string(facts[i]);
  }
  resp.body += "]}\n";
  return resp;
}

HttpResponse EmbeddingService::HandleStats(const HttpRequest&) {
  size_t num_embedded = 0, wal_records = 0, num_psi = 0;
  bool ann_index = false;
  {
    SharedMutexLock lk(session_mu_);
    num_embedded = session_.num_embedded();
    wal_records = session_.wal_records();
    num_psi = session_.num_psi();
    ann_index = session_.has_ann_index();
  }
  // The beam width /similar actually runs with (the option, or the
  // library default when unset).
  const size_t ef_search =
      options_.ef_search != 0 ? options_.ef_search
                              : api::ServingSession::kDefaultEfSearch;
  const Stats s = stats();
  HttpResponse resp;
  resp.body =
      "{\"num_embedded\":" + std::to_string(num_embedded) +
      ",\"dim\":" + std::to_string(dim_) +
      ",\"wal_records\":" + std::to_string(wal_records) +
      ",\"num_psi\":" + std::to_string(num_psi) +
      ",\"ann_index\":" + (ann_index ? "true" : "false") +
      ",\"ef_search\":" + std::to_string(ef_search) +
      ",\"http_requests\":" + std::to_string(http_.requests_served()) +
      ",\"embeds\":" + std::to_string(s.embeds) +
      ",\"embed_batches\":" + std::to_string(s.embed_batches) +
      ",\"coalesce_rounds\":" + std::to_string(s.coalesce_rounds) +
      ",\"max_coalesced\":" + std::to_string(s.max_coalesced) +
      ",\"topk_queries\":" + std::to_string(s.topk_queries) +
      ",\"similar_queries\":" + std::to_string(s.similar_queries) +
      ",\"polls\":" + std::to_string(s.polls) +
      ",\"wal_records_applied\":" +
      std::to_string(s.wal_records_applied) +
      ",\"reopens\":" + std::to_string(s.reopens) + "}\n";
  return resp;
}

HttpResponse EmbeddingService::HandleMetrics(const HttpRequest&) {
  HttpResponse resp;
  // The Prometheus text exposition version tag; scrapers key parsing off
  // it, and plain consumers still see text/plain.
  resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
  obs::RenderPrometheus(&resp.body);
  return resp;
}

EmbeddingService::Stats EmbeddingService::stats() const {
  const ServeMetrics& m = Metrics();
  Stats s;
  s.http_requests = http_.requests_served();
  s.embeds = m.embeds.Value() - baseline_.embeds;
  s.embed_batches = m.embed_batches.Value() - baseline_.embed_batches;
  s.coalesce_rounds =
      m.coalesce_rounds.Value() - baseline_.coalesce_rounds;
  s.max_coalesced = max_coalesced_.load(std::memory_order_relaxed);
  s.topk_queries = m.topk_queries.Value() - baseline_.topk_queries;
  s.similar_queries =
      m.similar_queries.Value() - baseline_.similar_queries;
  s.polls = m.polls.Value() - baseline_.polls;
  s.wal_records_applied =
      m.wal_records_applied.Value() - baseline_.wal_records_applied;
  s.reopens = m.reopens.Value() - baseline_.reopens;
  return s;
}

}  // namespace stedb::serve
