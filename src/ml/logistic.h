#ifndef STEDB_ML_LOGISTIC_H_
#define STEDB_ML_LOGISTIC_H_

#include <memory>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/la/matrix.h"
#include "src/ml/dataset.h"
#include "src/ml/scaler.h"

namespace stedb::ml {

/// Abstract downstream classifier over fixed embedding vectors. The
/// classifier sees only the vectors, never the database — the paper's
/// "full separation between the embedding process and the downstream task".
class Classifier {
 public:
  virtual ~Classifier() = default;
  virtual Status Fit(const FeatureDataset& train) = 0;
  virtual int Predict(const la::Vector& x) const = 0;
  virtual std::string Name() const = 0;

  /// Fraction of correct predictions on a labelled set.
  double Accuracy(const FeatureDataset& test) const;
};

struct LogisticConfig {
  double lr = 0.05;
  int epochs = 200;
  double l2 = 1e-4;
  uint64_t seed = 7;
};

/// Multinomial logistic regression (softmax) trained with Adam-style SGD on
/// standardized features. Deterministic given the seed.
class LogisticClassifier : public Classifier {
 public:
  explicit LogisticClassifier(LogisticConfig config = {}) : config_(config) {}

  Status Fit(const FeatureDataset& train) override;
  int Predict(const la::Vector& x) const override;
  std::string Name() const override { return "logistic"; }

  /// Class probabilities for one example.
  la::Vector PredictProba(const la::Vector& x) const;

 private:
  la::Vector Scores(const la::Vector& x) const;

  LogisticConfig config_;
  StandardScaler scaler_;
  la::Matrix w_;   ///< num_classes x dim
  la::Vector b_;   ///< num_classes
  int num_classes_ = 0;
};

}  // namespace stedb::ml

#endif  // STEDB_ML_LOGISTIC_H_
