#include "src/ml/scaler.h"

#include <cmath>

namespace stedb::ml {

void StandardScaler::Fit(const std::vector<la::Vector>& x) {
  if (x.empty()) {
    mean_.clear();
    std_.clear();
    return;
  }
  const size_t d = x.front().size();
  mean_.assign(d, 0.0);
  std_.assign(d, 0.0);
  for (const la::Vector& v : x) {
    for (size_t i = 0; i < d; ++i) mean_[i] += v[i];
  }
  for (size_t i = 0; i < d; ++i) mean_[i] /= static_cast<double>(x.size());
  for (const la::Vector& v : x) {
    for (size_t i = 0; i < d; ++i) {
      const double dd = v[i] - mean_[i];
      std_[i] += dd * dd;
    }
  }
  for (size_t i = 0; i < d; ++i) {
    std_[i] = std::sqrt(std_[i] / static_cast<double>(x.size()));
    if (std_[i] < 1e-12) std_[i] = 1.0;  // constant feature: leave centered
  }
}

la::Vector StandardScaler::Transform(const la::Vector& v) const {
  la::Vector out(v.size());
  for (size_t i = 0; i < v.size(); ++i) out[i] = (v[i] - mean_[i]) / std_[i];
  return out;
}

std::vector<la::Vector> StandardScaler::TransformAll(
    const std::vector<la::Vector>& x) const {
  std::vector<la::Vector> out;
  out.reserve(x.size());
  for (const la::Vector& v : x) out.push_back(Transform(v));
  return out;
}

}  // namespace stedb::ml
