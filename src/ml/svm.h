#ifndef STEDB_ML_SVM_H_
#define STEDB_ML_SVM_H_

#include <memory>
#include <vector>

#include "src/ml/logistic.h"

namespace stedb::ml {

struct LinearSvmConfig {
  double lambda = 1e-3;  ///< regularization (Pegasos λ)
  int epochs = 60;
  uint64_t seed = 11;
};

/// One-vs-rest linear SVM trained with the Pegasos subgradient method.
class LinearSvmClassifier : public Classifier {
 public:
  explicit LinearSvmClassifier(LinearSvmConfig config = {})
      : config_(config) {}

  Status Fit(const FeatureDataset& train) override;
  int Predict(const la::Vector& x) const override;
  std::string Name() const override { return "linear_svm"; }

 private:
  LinearSvmConfig config_;
  StandardScaler scaler_;
  la::Matrix w_;  ///< num_classes x dim (one hyperplane per class)
  la::Vector b_;
  int num_classes_ = 0;
};

struct RbfSvmConfig {
  double c = 1.0;        ///< box constraint
  double gamma = 0.0;    ///< RBF width; 0 = auto (1 / (dim * var)), sklearn's "scale"
  double tol = 1e-3;
  int max_passes = 5;    ///< SMO passes without alpha change before stopping
  int max_iter = 2000;
  uint64_t seed = 13;
};

/// One-vs-rest kernel SVM with an RBF kernel, trained by simplified SMO
/// (Platt's algorithm as in the classic CS229 note). This is the closest
/// in-repo analogue of the scikit-learn SVC the paper uses downstream.
class RbfSvmClassifier : public Classifier {
 public:
  explicit RbfSvmClassifier(RbfSvmConfig config = {}) : config_(config) {}

  Status Fit(const FeatureDataset& train) override;
  int Predict(const la::Vector& x) const override;
  std::string Name() const override { return "rbf_svm"; }

 private:
  /// Decision value of binary machine `m` on (already scaled) x.
  double Decision(size_t m, const la::Vector& x) const;

  RbfSvmConfig config_;
  StandardScaler scaler_;
  double gamma_ = 1.0;
  int num_classes_ = 0;
  std::vector<la::Vector> support_;            ///< shared support points
  std::vector<std::vector<double>> coeffs_;    ///< per machine: alpha_i * y_i
  std::vector<double> bias_;                   ///< per machine
};

/// Selector used by the experiment harness.
enum class ClassifierKind { kLogistic, kLinearSvm, kRbfSvm };

const char* ClassifierKindName(ClassifierKind kind);
std::unique_ptr<Classifier> MakeClassifier(ClassifierKind kind, uint64_t seed);

}  // namespace stedb::ml

#endif  // STEDB_ML_SVM_H_
