#ifndef STEDB_ML_KNN_H_
#define STEDB_ML_KNN_H_

#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/span.h"
#include "src/common/status.h"
#include "src/db/database.h"
#include "src/la/matrix.h"

namespace stedb::ml {

/// Distance/similarity choices for embedding-space search.
enum class SimilarityMetric { kCosine, kEuclidean, kDot };

/// One search hit: the fact and its similarity score (higher = closer for
/// all metrics; Euclidean is reported as the negated distance).
struct Neighbor {
  db::FactId fact = db::kNoFact;
  double score = 0.0;
};

/// Brute-force nearest-neighbor index over tuple embeddings — the
/// record-similarity downstream task the paper's introduction motivates
/// (tuple embeddings enable "record similarity ... record linking ...
/// entity resolution"). Works over any (fact, vector) collection, so both
/// FoRWaRD and Node2Vec embeddings plug in directly.
class EmbeddingIndex {
 public:
  explicit EmbeddingIndex(SimilarityMetric metric = SimilarityMetric::kCosine)
      : metric_(metric) {}

  /// Registers a tuple's embedding (overwrites an existing entry).
  void Add(db::FactId fact, la::Vector vector);

  /// Registers one embedding per fact from a batch-read matrix (row i =
  /// φ(facts[i]), as filled by api::Embedder::EmbedBatch). `vectors` must
  /// have facts.size() rows.
  void AddBatch(Span<const db::FactId> facts, const la::Matrix& vectors);

  size_t size() const { return facts_.size(); }
  SimilarityMetric metric() const { return metric_; }

  /// The k most similar indexed tuples to `query`, best first. `exclude`
  /// (typically the query tuple itself) is skipped.
  std::vector<Neighbor> TopK(const la::Vector& query, size_t k,
                             db::FactId exclude = db::kNoFact) const;

  /// The k most similar tuples to an indexed tuple (itself excluded).
  /// NotFound when the fact was never added.
  Result<std::vector<Neighbor>> TopKOf(db::FactId fact, size_t k) const;

  /// Pairwise similarity between two indexed tuples.
  Result<double> Similarity(db::FactId a, db::FactId b) const;

 private:
  double Score(const la::Vector& a, const la::Vector& b) const;
  int IndexOf(db::FactId fact) const;

  SimilarityMetric metric_;
  std::vector<db::FactId> facts_;
  std::vector<la::Vector> vectors_;
  std::unordered_map<db::FactId, size_t> position_;
};

}  // namespace stedb::ml

#endif  // STEDB_ML_KNN_H_
