#include "src/ml/cross_validation.h"

#include <unordered_map>

#include "src/ml/metrics.h"

namespace stedb::ml {

std::vector<int> StratifiedFolds(const std::vector<int>& labels, int k,
                                 Rng& rng) {
  std::vector<int> fold(labels.size(), 0);
  // Group example indices by class, shuffle within the class, deal them
  // round-robin into folds.
  std::unordered_map<int, std::vector<size_t>> by_class;
  for (size_t i = 0; i < labels.size(); ++i) by_class[labels[i]].push_back(i);
  for (auto& [cls, idx] : by_class) {
    rng.Shuffle(idx);
    for (size_t i = 0; i < idx.size(); ++i) {
      fold[idx[i]] = static_cast<int>(i % k);
    }
  }
  return fold;
}

void StratifiedSplit(const std::vector<int>& labels, double test_fraction,
                     Rng& rng, std::vector<size_t>* train_idx,
                     std::vector<size_t>* test_idx) {
  train_idx->clear();
  test_idx->clear();
  std::unordered_map<int, std::vector<size_t>> by_class;
  for (size_t i = 0; i < labels.size(); ++i) by_class[labels[i]].push_back(i);
  for (auto& [cls, idx] : by_class) {
    rng.Shuffle(idx);
    // Round to nearest so small classes are represented proportionally.
    const size_t n_test = static_cast<size_t>(
        static_cast<double>(idx.size()) * test_fraction + 0.5);
    for (size_t i = 0; i < idx.size(); ++i) {
      (i < n_test ? test_idx : train_idx)->push_back(idx[i]);
    }
  }
}

Result<CvResult> CrossValidate(const FeatureDataset& data,
                               ClassifierKind kind, int k, uint64_t seed) {
  return CrossValidateWithBuilder(
      data.y, k, seed, kind,
      [&data](int) -> Result<FeatureDataset> { return data; });
}

Result<CvResult> CrossValidateWithBuilder(
    const std::vector<int>& labels, int k, uint64_t seed,
    ClassifierKind kind,
    const std::function<Result<FeatureDataset>(int fold)>& build) {
  if (k < 2) return Status::InvalidArgument("k must be at least 2");
  if (labels.size() < static_cast<size_t>(k)) {
    return Status::InvalidArgument("fewer examples than folds");
  }
  Rng rng(seed);
  std::vector<int> fold = StratifiedFolds(labels, k, rng);

  CvResult result;
  for (int f = 0; f < k; ++f) {
    STEDB_ASSIGN_OR_RETURN(FeatureDataset data, build(f));
    if (data.y != labels) {
      return Status::InvalidArgument(
          "fold builder returned mismatched labels");
    }
    std::vector<size_t> train_idx, test_idx;
    for (size_t i = 0; i < labels.size(); ++i) {
      (fold[i] == f ? test_idx : train_idx).push_back(i);
    }
    FeatureDataset train = data.Subset(train_idx);
    FeatureDataset test = data.Subset(test_idx);
    train.num_classes = data.num_classes;
    test.num_classes = data.num_classes;
    std::unique_ptr<Classifier> clf =
        MakeClassifier(kind, seed + 1000 + static_cast<uint64_t>(f));
    STEDB_RETURN_IF_ERROR(clf->Fit(train));
    result.fold_accuracies.push_back(clf->Accuracy(test));
  }
  result.mean = Mean(result.fold_accuracies);
  result.stddev = StdDev(result.fold_accuracies);
  return result;
}

}  // namespace stedb::ml
