#ifndef STEDB_ML_DATASET_H_
#define STEDB_ML_DATASET_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/la/matrix.h"

namespace stedb::ml {

/// A labelled feature dataset for downstream classification: one feature
/// vector and one integer class label per example.
struct FeatureDataset {
  std::vector<la::Vector> x;
  std::vector<int> y;
  int num_classes = 0;

  size_t size() const { return x.size(); }
  size_t dim() const { return x.empty() ? 0 : x.front().size(); }

  void Add(la::Vector features, int label) {
    x.push_back(std::move(features));
    y.push_back(label);
    if (label + 1 > num_classes) num_classes = label + 1;
  }

  /// The subset at the given indices.
  FeatureDataset Subset(const std::vector<size_t>& indices) const;

  /// Per-class counts.
  std::vector<size_t> ClassCounts() const;

  /// Fraction of the most common class — the paper's "baseline" accuracy
  /// (always predicting the majority class).
  double MajorityFraction() const;
};

/// Maps label strings to dense class ids stably (first-seen order).
class LabelEncoder {
 public:
  int Encode(const std::string& label);
  /// -1 when unseen.
  int Lookup(const std::string& label) const;
  const std::string& Decode(int cls) const { return names_[cls]; }
  int num_classes() const { return static_cast<int>(names_.size()); }

 private:
  std::unordered_map<std::string, int> ids_;
  std::vector<std::string> names_;
};

}  // namespace stedb::ml

#endif  // STEDB_ML_DATASET_H_
