#include "src/ml/knn.h"

#include <algorithm>

namespace stedb::ml {

void EmbeddingIndex::Add(db::FactId fact, la::Vector vector) {
  auto it = position_.find(fact);
  if (it != position_.end()) {
    vectors_[it->second] = std::move(vector);
    return;
  }
  position_.emplace(fact, facts_.size());
  facts_.push_back(fact);
  vectors_.push_back(std::move(vector));
}

void EmbeddingIndex::AddBatch(Span<const db::FactId> facts,
                              const la::Matrix& vectors) {
  facts_.reserve(facts_.size() + facts.size());
  vectors_.reserve(vectors_.size() + facts.size());
  for (size_t i = 0; i < facts.size(); ++i) {
    Add(facts[i], vectors.Row(i));
  }
}

double EmbeddingIndex::Score(const la::Vector& a, const la::Vector& b) const {
  switch (metric_) {
    case SimilarityMetric::kCosine:
      return la::CosineSimilarity(a, b);
    case SimilarityMetric::kEuclidean:
      return -la::Distance(a, b);
    case SimilarityMetric::kDot:
      return la::Dot(a, b);
  }
  return 0.0;
}

int EmbeddingIndex::IndexOf(db::FactId fact) const {
  auto it = position_.find(fact);
  return it == position_.end() ? -1 : static_cast<int>(it->second);
}

std::vector<Neighbor> EmbeddingIndex::TopK(const la::Vector& query, size_t k,
                                           db::FactId exclude) const {
  std::vector<Neighbor> all;
  all.reserve(facts_.size());
  for (size_t i = 0; i < facts_.size(); ++i) {
    if (facts_[i] == exclude) continue;
    all.push_back({facts_[i], Score(query, vectors_[i])});
  }
  const size_t take = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + take, all.end(),
                    [](const Neighbor& x, const Neighbor& y) {
                      return x.score > y.score;
                    });
  all.resize(take);
  return all;
}

Result<std::vector<Neighbor>> EmbeddingIndex::TopKOf(db::FactId fact,
                                                     size_t k) const {
  int idx = IndexOf(fact);
  if (idx < 0) return Status::NotFound("fact not in the index");
  return TopK(vectors_[idx], k, fact);
}

Result<double> EmbeddingIndex::Similarity(db::FactId a, db::FactId b) const {
  int ia = IndexOf(a);
  int ib = IndexOf(b);
  if (ia < 0 || ib < 0) return Status::NotFound("fact not in the index");
  return Score(vectors_[ia], vectors_[ib]);
}

}  // namespace stedb::ml
