#include "src/ml/knn.h"

#include <cmath>

#include "src/la/kernels.h"
#include "src/ml/topk.h"

namespace stedb::ml {

void EmbeddingIndex::Add(db::FactId fact, la::Vector vector) {
  auto it = position_.find(fact);
  if (it != position_.end()) {
    vectors_[it->second] = std::move(vector);
    return;
  }
  position_.emplace(fact, facts_.size());
  facts_.push_back(fact);
  vectors_.push_back(std::move(vector));
}

void EmbeddingIndex::AddBatch(Span<const db::FactId> facts,
                              const la::Matrix& vectors) {
  facts_.reserve(facts_.size() + facts.size());
  vectors_.reserve(vectors_.size() + facts.size());
  for (size_t i = 0; i < facts.size(); ++i) {
    Add(facts[i], vectors.Row(i));
  }
}

double EmbeddingIndex::Score(const la::Vector& a, const la::Vector& b) const {
  // Straight through the la::kernels dispatch table (scalar and AVX2
  // paths are bit-identical), with the exact operation order of the
  // la::CosineSimilarity / la::Distance wrappers — ml_test asserts
  // bit-equality against them.
  const size_t n = a.size();
  switch (metric_) {
    case SimilarityMetric::kCosine: {
      const double na = std::sqrt(la::Norm2Sq(a.data(), n));
      const double nb = std::sqrt(la::Norm2Sq(b.data(), n));
      if (na == 0.0 || nb == 0.0) return 0.0;
      return la::Dot(a.data(), b.data(), n) / (na * nb);
    }
    case SimilarityMetric::kEuclidean:
      return -std::sqrt(la::DistSq(a.data(), b.data(), n));
    case SimilarityMetric::kDot:
      return la::Dot(a.data(), b.data(), n);
  }
  return 0.0;
}

int EmbeddingIndex::IndexOf(db::FactId fact) const {
  auto it = position_.find(fact);
  return it == position_.end() ? -1 : static_cast<int>(it->second);
}

std::vector<Neighbor> EmbeddingIndex::TopK(const la::Vector& query, size_t k,
                                           db::FactId exclude) const {
  // Bounded k-element selection instead of materializing and sorting all
  // n candidates; ties break on ascending fact id, so equal-score runs
  // cannot reorder between builds.
  TopKHeap<Neighbor> heap(k);
  for (size_t i = 0; i < facts_.size(); ++i) {
    if (facts_[i] == exclude) continue;
    heap.Push({facts_[i], Score(query, vectors_[i])});
  }
  return std::move(heap).Take();
}

Result<std::vector<Neighbor>> EmbeddingIndex::TopKOf(db::FactId fact,
                                                     size_t k) const {
  int idx = IndexOf(fact);
  if (idx < 0) return Status::NotFound("fact not in the index");
  return TopK(vectors_[idx], k, fact);
}

Result<double> EmbeddingIndex::Similarity(db::FactId a, db::FactId b) const {
  int ia = IndexOf(a);
  int ib = IndexOf(b);
  if (ia < 0 || ib < 0) return Status::NotFound("fact not in the index");
  return Score(vectors_[ia], vectors_[ib]);
}

}  // namespace stedb::ml
