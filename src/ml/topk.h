#ifndef STEDB_ML_TOPK_H_
#define STEDB_ML_TOPK_H_

#include <algorithm>
#include <cstddef>
#include <vector>

namespace stedb::ml {

/// The deterministic hit order every top-k surface in this codebase uses:
/// descending score, ascending fact id on ties. Works for any hit type
/// with `.score` and `.fact` members (ml::Neighbor,
/// api::ServingSession::Scored).
template <typename Hit>
struct HitBetter {
  bool operator()(const Hit& a, const Hit& b) const {
    if (a.score != b.score) return a.score > b.score;
    return a.fact < b.fact;
  }
};

/// Bounded k-element selector: Push() streams candidates, Take() returns
/// the k best in HitBetter order. O(n log k) and k slots of memory versus
/// the full-sort scan's O(n log n) / n slots — the exact-path counterpart
/// of the ANN index, and the small-n fallback that stays the recall
/// oracle. Selection is a pure function of the HitBetter total order, so
/// results are deterministic for any push order of distinct hits.
template <typename Hit>
class TopKHeap {
 public:
  explicit TopKHeap(size_t k) : k_(k) {}

  void Push(const Hit& hit) {
    if (k_ == 0) return;
    if (heap_.size() < k_) {
      heap_.push_back(hit);
      std::push_heap(heap_.begin(), heap_.end(), better_);
      return;
    }
    // The comparator makes the heap top the *worst* kept hit; replace it
    // only when the candidate beats it.
    if (better_(hit, heap_.front())) {
      std::pop_heap(heap_.begin(), heap_.end(), better_);
      heap_.back() = hit;
      std::push_heap(heap_.begin(), heap_.end(), better_);
    }
  }

  size_t size() const { return heap_.size(); }

  /// Consumes the selector and returns the kept hits, best first.
  std::vector<Hit> Take() && {
    std::sort_heap(heap_.begin(), heap_.end(), better_);
    return std::move(heap_);
  }

 private:
  size_t k_;
  HitBetter<Hit> better_;
  std::vector<Hit> heap_;
};

}  // namespace stedb::ml

#endif  // STEDB_ML_TOPK_H_
