#include "src/ml/svm.h"

#include <algorithm>
#include <cmath>

namespace stedb::ml {

Status LinearSvmClassifier::Fit(const FeatureDataset& train) {
  if (train.size() == 0) return Status::InvalidArgument("empty training set");
  num_classes_ = train.num_classes;
  const size_t d = train.dim();
  scaler_.Fit(train.x);
  std::vector<la::Vector> x = scaler_.TransformAll(train.x);

  w_ = la::Matrix(num_classes_, d, 0.0);
  b_.assign(num_classes_, 0.0);
  Rng rng(config_.seed);

  // Pegasos: for each binary machine c (class c vs rest), iterate SGD steps
  // with step size 1/(λ t).
  const size_t n = x.size();
  for (int c = 0; c < num_classes_; ++c) {
    double* w = w_.RowPtr(c);
    long t = 0;
    for (int epoch = 0; epoch < config_.epochs; ++epoch) {
      for (size_t k = 0; k < n; ++k) {
        const size_t i = rng.NextIndex(n);
        const double yi = train.y[i] == c ? 1.0 : -1.0;
        ++t;
        const double eta = 1.0 / (config_.lambda * static_cast<double>(t));
        double margin = b_[c];
        for (size_t j = 0; j < d; ++j) margin += w[j] * x[i][j];
        margin *= yi;
        // w <- (1 - eta λ) w  [+ eta y x  if margin < 1]
        const double shrink = 1.0 - eta * config_.lambda;
        for (size_t j = 0; j < d; ++j) w[j] *= shrink;
        if (margin < 1.0) {
          for (size_t j = 0; j < d; ++j) w[j] += eta * yi * x[i][j];
          b_[c] += eta * yi * 0.1;  // mildly learned bias
        }
      }
    }
  }
  return Status::OK();
}

int LinearSvmClassifier::Predict(const la::Vector& x) const {
  la::Vector xi = scaler_.Transform(x);
  int best = 0;
  double best_score = -1e300;
  for (int c = 0; c < num_classes_; ++c) {
    const double* w = w_.RowPtr(c);
    double s = b_[c];
    for (size_t j = 0; j < xi.size(); ++j) s += w[j] * xi[j];
    if (s > best_score) {
      best_score = s;
      best = c;
    }
  }
  return best;
}

namespace {

double RbfKernel(const la::Vector& a, const la::Vector& b, double gamma) {
  double dist2 = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    dist2 += d * d;
  }
  return std::exp(-gamma * dist2);
}

}  // namespace

Status RbfSvmClassifier::Fit(const FeatureDataset& train) {
  if (train.size() == 0) return Status::InvalidArgument("empty training set");
  num_classes_ = train.num_classes;
  scaler_.Fit(train.x);
  support_ = scaler_.TransformAll(train.x);
  const size_t n = support_.size();
  const size_t d = train.dim();

  // sklearn "scale": gamma = 1 / (d * Var(X)); features are standardized so
  // Var ≈ 1 and gamma ≈ 1/d unless overridden.
  gamma_ = config_.gamma > 0.0 ? config_.gamma
                               : 1.0 / std::max<double>(1.0, static_cast<double>(d));

  // Precompute the kernel matrix once (n is at most a few hundred in the
  // downstream tasks; O(n^2 d) is fine and shared by all machines).
  la::Matrix k(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      const double v = RbfKernel(support_[i], support_[j], gamma_);
      k(i, j) = v;
      k(j, i) = v;
    }
  }

  coeffs_.assign(num_classes_, std::vector<double>(n, 0.0));
  bias_.assign(num_classes_, 0.0);
  Rng rng(config_.seed);

  for (int c = 0; c < num_classes_; ++c) {
    std::vector<double> y(n);
    for (size_t i = 0; i < n; ++i) y[i] = train.y[i] == c ? 1.0 : -1.0;
    std::vector<double> alpha(n, 0.0);
    double b = 0.0;

    auto f = [&](size_t i) {
      double s = b;
      for (size_t j = 0; j < n; ++j) {
        if (alpha[j] != 0.0) s += alpha[j] * y[j] * k(i, j);
      }
      return s;
    };

    int passes = 0;
    int iter = 0;
    while (passes < config_.max_passes && iter < config_.max_iter) {
      ++iter;
      int changed = 0;
      for (size_t i = 0; i < n; ++i) {
        const double ei = f(i) - y[i];
        if ((y[i] * ei < -config_.tol && alpha[i] < config_.c) ||
            (y[i] * ei > config_.tol && alpha[i] > 0.0)) {
          size_t j = rng.NextIndex(n - 1);
          if (j >= i) ++j;
          const double ej = f(j) - y[j];
          const double ai_old = alpha[i];
          const double aj_old = alpha[j];
          double lo, hi;
          if (y[i] != y[j]) {
            lo = std::max(0.0, aj_old - ai_old);
            hi = std::min(config_.c, config_.c + aj_old - ai_old);
          } else {
            lo = std::max(0.0, ai_old + aj_old - config_.c);
            hi = std::min(config_.c, ai_old + aj_old);
          }
          if (lo >= hi) continue;
          const double eta = 2.0 * k(i, j) - k(i, i) - k(j, j);
          if (eta >= 0.0) continue;
          double aj = aj_old - y[j] * (ei - ej) / eta;
          aj = std::clamp(aj, lo, hi);
          if (std::fabs(aj - aj_old) < 1e-5) continue;
          const double ai = ai_old + y[i] * y[j] * (aj_old - aj);
          alpha[i] = ai;
          alpha[j] = aj;
          const double b1 = b - ei - y[i] * (ai - ai_old) * k(i, i) -
                            y[j] * (aj - aj_old) * k(i, j);
          const double b2 = b - ej - y[i] * (ai - ai_old) * k(i, j) -
                            y[j] * (aj - aj_old) * k(j, j);
          if (ai > 0.0 && ai < config_.c) {
            b = b1;
          } else if (aj > 0.0 && aj < config_.c) {
            b = b2;
          } else {
            b = 0.5 * (b1 + b2);
          }
          ++changed;
        }
      }
      passes = changed == 0 ? passes + 1 : 0;
    }
    for (size_t i = 0; i < n; ++i) coeffs_[c][i] = alpha[i] * y[i];
    bias_[c] = b;
  }
  return Status::OK();
}

double RbfSvmClassifier::Decision(size_t m, const la::Vector& x) const {
  double s = bias_[m];
  for (size_t i = 0; i < support_.size(); ++i) {
    if (coeffs_[m][i] != 0.0) {
      s += coeffs_[m][i] * RbfKernel(support_[i], x, gamma_);
    }
  }
  return s;
}

int RbfSvmClassifier::Predict(const la::Vector& x) const {
  la::Vector xi = scaler_.Transform(x);
  int best = 0;
  double best_score = -1e300;
  for (int c = 0; c < num_classes_; ++c) {
    const double s = Decision(c, xi);
    if (s > best_score) {
      best_score = s;
      best = c;
    }
  }
  return best;
}

const char* ClassifierKindName(ClassifierKind kind) {
  switch (kind) {
    case ClassifierKind::kLogistic:
      return "logistic";
    case ClassifierKind::kLinearSvm:
      return "linear_svm";
    case ClassifierKind::kRbfSvm:
      return "rbf_svm";
  }
  return "?";
}

std::unique_ptr<Classifier> MakeClassifier(ClassifierKind kind,
                                           uint64_t seed) {
  switch (kind) {
    case ClassifierKind::kLogistic: {
      LogisticConfig cfg;
      cfg.seed = seed;
      return std::make_unique<LogisticClassifier>(cfg);
    }
    case ClassifierKind::kLinearSvm: {
      LinearSvmConfig cfg;
      cfg.seed = seed;
      return std::make_unique<LinearSvmClassifier>(cfg);
    }
    case ClassifierKind::kRbfSvm: {
      RbfSvmConfig cfg;
      cfg.seed = seed;
      return std::make_unique<RbfSvmClassifier>(cfg);
    }
  }
  return nullptr;
}

}  // namespace stedb::ml
