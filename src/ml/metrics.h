#ifndef STEDB_ML_METRICS_H_
#define STEDB_ML_METRICS_H_

#include <cstddef>
#include <vector>

namespace stedb::ml {

/// Fraction of positions where the vectors agree. Sizes must match.
double Accuracy(const std::vector<int>& truth,
                const std::vector<int>& predicted);

/// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& v);

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 values.
double StdDev(const std::vector<double>& v);

/// Confusion matrix [truth][predicted], num_classes x num_classes.
std::vector<std::vector<size_t>> ConfusionMatrix(
    const std::vector<int>& truth, const std::vector<int>& predicted,
    int num_classes);

/// Macro-averaged F1 over classes (classes absent from truth are skipped).
double MacroF1(const std::vector<int>& truth,
               const std::vector<int>& predicted, int num_classes);

}  // namespace stedb::ml

#endif  // STEDB_ML_METRICS_H_
