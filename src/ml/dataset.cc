#include "src/ml/dataset.h"

#include <algorithm>

namespace stedb::ml {

FeatureDataset FeatureDataset::Subset(
    const std::vector<size_t>& indices) const {
  FeatureDataset out;
  out.num_classes = num_classes;
  out.x.reserve(indices.size());
  out.y.reserve(indices.size());
  for (size_t i : indices) {
    out.x.push_back(x[i]);
    out.y.push_back(y[i]);
  }
  return out;
}

std::vector<size_t> FeatureDataset::ClassCounts() const {
  std::vector<size_t> counts(num_classes, 0);
  for (int label : y) ++counts[label];
  return counts;
}

double FeatureDataset::MajorityFraction() const {
  if (y.empty()) return 0.0;
  std::vector<size_t> counts = ClassCounts();
  size_t best = *std::max_element(counts.begin(), counts.end());
  return static_cast<double>(best) / static_cast<double>(y.size());
}

int LabelEncoder::Encode(const std::string& label) {
  auto it = ids_.find(label);
  if (it != ids_.end()) return it->second;
  int id = static_cast<int>(names_.size());
  ids_.emplace(label, id);
  names_.push_back(label);
  return id;
}

int LabelEncoder::Lookup(const std::string& label) const {
  auto it = ids_.find(label);
  return it == ids_.end() ? -1 : it->second;
}

}  // namespace stedb::ml
