#ifndef STEDB_ML_SCALER_H_
#define STEDB_ML_SCALER_H_

#include <vector>

#include "src/la/matrix.h"

namespace stedb::ml {

/// Per-feature standardization (zero mean, unit variance), fit on training
/// data and applied to both splits — mirrors the scikit-learn pipeline the
/// paper uses in front of SVC.
class StandardScaler {
 public:
  void Fit(const std::vector<la::Vector>& x);
  la::Vector Transform(const la::Vector& v) const;
  std::vector<la::Vector> TransformAll(const std::vector<la::Vector>& x) const;

  bool fitted() const { return !mean_.empty(); }
  const la::Vector& mean() const { return mean_; }
  const la::Vector& stddev() const { return std_; }

 private:
  la::Vector mean_;
  la::Vector std_;
};

}  // namespace stedb::ml

#endif  // STEDB_ML_SCALER_H_
