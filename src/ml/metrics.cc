#include "src/ml/metrics.h"

#include <cmath>

namespace stedb::ml {

double Accuracy(const std::vector<int>& truth,
                const std::vector<int>& predicted) {
  if (truth.empty()) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == predicted[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(truth.size());
}

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double StdDev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = Mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(v.size() - 1));
}

std::vector<std::vector<size_t>> ConfusionMatrix(
    const std::vector<int>& truth, const std::vector<int>& predicted,
    int num_classes) {
  std::vector<std::vector<size_t>> m(num_classes,
                                     std::vector<size_t>(num_classes, 0));
  for (size_t i = 0; i < truth.size(); ++i) ++m[truth[i]][predicted[i]];
  return m;
}

double MacroF1(const std::vector<int>& truth,
               const std::vector<int>& predicted, int num_classes) {
  auto cm = ConfusionMatrix(truth, predicted, num_classes);
  double f1_sum = 0.0;
  int counted = 0;
  for (int c = 0; c < num_classes; ++c) {
    size_t tp = cm[c][c];
    size_t fn = 0, fp = 0;
    for (int o = 0; o < num_classes; ++o) {
      if (o == c) continue;
      fn += cm[c][o];
      fp += cm[o][c];
    }
    if (tp + fn == 0) continue;  // class absent from truth
    const double precision =
        tp + fp > 0 ? static_cast<double>(tp) / static_cast<double>(tp + fp)
                    : 0.0;
    const double recall =
        static_cast<double>(tp) / static_cast<double>(tp + fn);
    const double f1 = precision + recall > 0
                          ? 2.0 * precision * recall / (precision + recall)
                          : 0.0;
    f1_sum += f1;
    ++counted;
  }
  return counted > 0 ? f1_sum / counted : 0.0;
}

}  // namespace stedb::ml
