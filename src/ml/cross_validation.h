#ifndef STEDB_ML_CROSS_VALIDATION_H_
#define STEDB_ML_CROSS_VALIDATION_H_

#include <functional>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/ml/dataset.h"
#include "src/ml/svm.h"

namespace stedb::ml {

/// Assigns each example to one of k folds so that every class is spread
/// (roughly) evenly across folds — scikit-learn's StratifiedKFold.
/// Returns fold index per example in [0, k).
std::vector<int> StratifiedFolds(const std::vector<int>& labels, int k,
                                 Rng& rng);

/// Stratified train/test split; returns indices. `test_fraction` of each
/// class goes to the test side.
void StratifiedSplit(const std::vector<int>& labels, double test_fraction,
                     Rng& rng, std::vector<size_t>* train_idx,
                     std::vector<size_t>* test_idx);

struct CvResult {
  std::vector<double> fold_accuracies;
  double mean = 0.0;
  double stddev = 0.0;
};

/// k-fold stratified cross-validation of a classifier kind on a fixed
/// feature dataset (paper Section VI-B: k = 10).
Result<CvResult> CrossValidate(const FeatureDataset& data,
                               ClassifierKind kind, int k, uint64_t seed);

/// Like CrossValidate but the caller supplies the per-fold feature builder,
/// enabling the paper's "train a new embedding for each fold" protocol:
/// `build(fold)` returns the dataset to use for that fold (same labels,
/// fold-specific features).
Result<CvResult> CrossValidateWithBuilder(
    const std::vector<int>& labels, int k, uint64_t seed,
    ClassifierKind kind,
    const std::function<Result<FeatureDataset>(int fold)>& build);

}  // namespace stedb::ml

#endif  // STEDB_ML_CROSS_VALIDATION_H_
