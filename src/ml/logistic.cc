#include "src/ml/logistic.h"

#include <algorithm>
#include <cmath>

namespace stedb::ml {

double Classifier::Accuracy(const FeatureDataset& test) const {
  if (test.size() == 0) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < test.size(); ++i) {
    if (Predict(test.x[i]) == test.y[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(test.size());
}

Status LogisticClassifier::Fit(const FeatureDataset& train) {
  if (train.size() == 0) return Status::InvalidArgument("empty training set");
  num_classes_ = train.num_classes;
  const size_t d = train.dim();
  scaler_.Fit(train.x);
  std::vector<la::Vector> x = scaler_.TransformAll(train.x);

  Rng rng(config_.seed);
  w_ = la::Matrix::RandomGaussian(num_classes_, d, 0.01, rng);
  b_.assign(num_classes_, 0.0);

  // Adam state.
  la::Matrix mw(num_classes_, d, 0.0), vw(num_classes_, d, 0.0);
  la::Vector mb(num_classes_, 0.0), vb(num_classes_, 0.0);
  const double beta1 = 0.9, beta2 = 0.999, eps = 1e-8;
  long t = 0;

  std::vector<size_t> order(x.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t oi : order) {
      const la::Vector& xi = x[oi];
      const int yi = train.y[oi];
      // Softmax probabilities.
      la::Vector scores(num_classes_);
      double maxs = -1e300;
      for (int c = 0; c < num_classes_; ++c) {
        const double* wr = w_.RowPtr(c);
        double s = b_[c];
        for (size_t j = 0; j < d; ++j) s += wr[j] * xi[j];
        scores[c] = s;
        maxs = std::max(maxs, s);
      }
      double z = 0.0;
      for (int c = 0; c < num_classes_; ++c) {
        scores[c] = std::exp(scores[c] - maxs);
        z += scores[c];
      }
      ++t;
      const double bc1 = 1.0 - std::pow(beta1, static_cast<double>(t));
      const double bc2 = 1.0 - std::pow(beta2, static_cast<double>(t));
      for (int c = 0; c < num_classes_; ++c) {
        const double p = scores[c] / z;
        const double err = p - (c == yi ? 1.0 : 0.0);
        double* wr = w_.RowPtr(c);
        double* mwr = mw.RowPtr(c);
        double* vwr = vw.RowPtr(c);
        for (size_t j = 0; j < d; ++j) {
          const double g = err * xi[j] + config_.l2 * wr[j];
          mwr[j] = beta1 * mwr[j] + (1 - beta1) * g;
          vwr[j] = beta2 * vwr[j] + (1 - beta2) * g * g;
          wr[j] -= config_.lr * (mwr[j] / bc1) /
                   (std::sqrt(vwr[j] / bc2) + eps);
        }
        mb[c] = beta1 * mb[c] + (1 - beta1) * err;
        vb[c] = beta2 * vb[c] + (1 - beta2) * err * err;
        b_[c] -= config_.lr * (mb[c] / bc1) / (std::sqrt(vb[c] / bc2) + eps);
      }
    }
  }
  return Status::OK();
}

la::Vector LogisticClassifier::Scores(const la::Vector& x) const {
  la::Vector xi = scaler_.Transform(x);
  la::Vector scores(num_classes_);
  for (int c = 0; c < num_classes_; ++c) {
    const double* wr = w_.RowPtr(c);
    double s = b_[c];
    for (size_t j = 0; j < xi.size(); ++j) s += wr[j] * xi[j];
    scores[c] = s;
  }
  return scores;
}

int LogisticClassifier::Predict(const la::Vector& x) const {
  la::Vector scores = Scores(x);
  return static_cast<int>(std::max_element(scores.begin(), scores.end()) -
                          scores.begin());
}

la::Vector LogisticClassifier::PredictProba(const la::Vector& x) const {
  la::Vector scores = Scores(x);
  double maxs = *std::max_element(scores.begin(), scores.end());
  double z = 0.0;
  for (double& s : scores) {
    s = std::exp(s - maxs);
    z += s;
  }
  for (double& s : scores) s /= z;
  return scores;
}

}  // namespace stedb::ml
