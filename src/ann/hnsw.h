#ifndef STEDB_ANN_HNSW_H_
#define STEDB_ANN_HNSW_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/span.h"
#include "src/common/status.h"
#include "src/db/database.h"

namespace stedb::ann {

/// Deterministic HNSW (hierarchical navigable small world) index over the
/// snapshot's φ vectors — the sublinear counterpart to the brute-force
/// scans in ml::EmbeddingIndex / api::ServingSession (ROADMAP direction
/// 2). Two halves, one byte format:
///
///  * BuildHnsw() constructs the graph and serializes it to a flat,
///    position-independent payload (the 'ANN ' snapshot section).
///  * HnswView opens that payload zero-copy — over an mmap'd snapshot or
///    an in-memory buffer — and answers top-k queries by greedy descent
///    plus a best-first beam search at the base layer.
///
/// Every sealed search goes through HnswView over the serialized bytes,
/// so "the mmap'd index serves results identical to the in-memory
/// builder's" holds by construction: same bytes, same code.
///
/// Determinism contract (the PR 2 / PR 7 rules, applied to graph
/// construction — asserted in tests/ann_test.cc):
///  * Level draws are counter-based: node levels come from
///    `Rng(seed).Fork(fact_id)`, a pure function of (seed, fact id) —
///    never from a shared sequential generator — so they are independent
///    of insertion order and thread count.
///  * Parallelism only schedules. Nodes are inserted in batches; the
///    parallel phase searches the *frozen* pre-batch graph and writes
///    per-node candidate slots, and all linking happens in a serial
///    phase in ascending node order.
///  * Every ordering decision (beam, neighbor selection, results) uses
///    the lexicographic (score, node id) order — fact id is the
///    tie-break, so equal scores cannot reorder across runs.
///  * Distances route through the la::kernels dispatch table, whose
///    scalar and AVX2 paths are bit-identical; the graph therefore does
///    not depend on STEDB_SIMD either.
/// Together: one (seed, vectors, config) triple yields one byte-exact
/// payload at any thread count on any SIMD path.

/// Distance metrics; values are persisted in the payload header.
enum class Metric : uint32_t { kCosine = 0, kEuclidean = 1, kDot = 2 };

/// Payload format version persisted in the 'ANN ' section header.
constexpr uint32_t kAnnFormatVersion = 1;

/// Hard cap on a node's level: with m >= 2 the expected maximum level of
/// even 2^32 nodes is ~32, so the cap only tames a pathological draw.
constexpr uint32_t kMaxHnswLevel = 32;

struct HnswConfig {
  Metric metric = Metric::kCosine;
  /// Max links per node per level (level 0 keeps up to 2*m). [2, 1024].
  uint32_t m = 16;
  /// Beam width while inserting; larger = better graph, slower build.
  uint32_t ef_construction = 200;
  /// Root seed of the counter-based level draws.
  uint64_t seed = 0x5eedb;
  /// Build parallelism (0 = STEDB_THREADS / hardware concurrency). Never
  /// affects the produced bytes.
  int threads = 0;
};

/// Strided view over the vectors the index was built on. Node i's vector
/// is the dim doubles at `base + i * stride_bytes`; both base and stride
/// must be 8-byte aligned (the PHI section and la::Matrix rows are).
struct VectorSource {
  const char* base = nullptr;
  size_t stride_bytes = 0;

  const double* Row(size_t i) const {
    return reinterpret_cast<const double*>(base + i * stride_bytes);
  }
  /// A contiguous row-major matrix of `dim`-wide rows.
  static VectorSource Dense(const double* data, size_t dim) {
    return VectorSource{reinterpret_cast<const char*>(data),
                        dim * sizeof(double)};
  }
};

/// One search hit: node index (= PHI record index) + similarity score
/// (higher = closer for every metric, matching ml::Neighbor semantics).
struct ScoredNode {
  double score = 0.0;
  uint32_t node = 0;
};

/// The deterministic strict total order every queue and result list uses:
/// descending score, ascending node id on ties.
inline bool BetterHit(const ScoredNode& a, const ScoredNode& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.node < b.node;
}

/// Per-query instrumentation (feeds the stedb_ann_visited_nodes
/// histogram): nodes whose distance to the query was evaluated.
struct SearchStats {
  size_t visited = 0;
};

/// ‖v‖₂ for the cosine metric (0.0 for the others, which need no norm).
/// Routed through la::kernels, so it is bit-identical across SIMD paths.
double NormOf(Metric metric, const double* v, size_t dim);

/// Similarity score of two vectors with precomputed norms (ignored
/// except for cosine). Higher = closer:
///   cosine    dot(a,b) / (‖a‖·‖b‖), 0.0 when either norm is 0 —
///             bit-equal to la::CosineSimilarity;
///   euclidean -sqrt(dist²(a,b)) — bit-equal to -la::Distance;
///   dot       dot(a,b).
double PairScore(Metric metric, const double* a, const double* b, size_t dim,
                 double norm_a, double norm_b);

/// Convenience over PairScore for equal-sized spans (computes the norms).
/// The exact-scan fallback paths score with this, so exact and HNSW
/// results carry bit-identical scores.
double Score(Metric metric, Span<const double> a, Span<const double> b);

/// Builds the index over `facts.size()` vectors (node i = facts[i], which
/// must be strictly ascending — the PHI record order) and returns the
/// serialized payload. InvalidArgument on empty input, a bad config, or
/// unsorted facts.
Result<std::string> BuildHnsw(const HnswConfig& config,
                              Span<const db::FactId> facts,
                              const VectorSource& vectors, size_t dim);

/// Zero-copy reader over a serialized payload. Open() validates the
/// whole structure up front (header ranges, exact payload size, every
/// adjacency offset/count/id) so Search never needs bounds checks; the
/// buffer must stay alive and must be 8-byte aligned (snapshot sections
/// are; copy an in-memory payload into an aligned buffer first).
class HnswView {
 public:
  HnswView() = default;

  /// `expected_nodes` and `dim` come from the enclosing snapshot (PHI
  /// record count and header dim); a payload disagreeing with its
  /// container is rejected.
  static Result<HnswView> Open(const char* data, size_t size,
                               size_t expected_nodes, size_t dim);

  bool valid() const { return levels_ != nullptr; }
  size_t num_nodes() const { return num_nodes_; }
  size_t dim() const { return dim_; }
  Metric metric() const { return metric_; }
  uint32_t m() const { return m_; }
  uint32_t ef_construction() const { return ef_construction_; }
  uint64_t seed() const { return seed_; }
  uint32_t max_level() const { return max_level_; }
  uint32_t entry_node() const { return entry_; }

  /// Node's level and per-level adjacency (level 0 first in the pool, so
  /// the base-layer hot path is one offset lookup).
  uint32_t level(uint32_t node) const { return levels_[node]; }
  Span<const uint32_t> neighbors(uint32_t node, uint32_t lvl) const;

  /// The up-to-k best nodes for `query` (best first, BetterHit order).
  /// `ef` is the base-layer beam width, clamped up to k. `vectors` must
  /// be the same vectors the index was built on, in node order.
  std::vector<ScoredNode> Search(const double* query, size_t k, size_t ef,
                                 const VectorSource& vectors,
                                 SearchStats* stats = nullptr) const;

 private:
  const uint32_t* levels_ = nullptr;
  const uint64_t* offsets_ = nullptr;  ///< node -> u32 index into pool_
  const uint32_t* pool_ = nullptr;     ///< per level: count, then ids
  const double* norms_ = nullptr;      ///< per node ‖v‖₂ (cosine only)
  size_t num_nodes_ = 0;
  size_t dim_ = 0;
  Metric metric_ = Metric::kCosine;
  uint32_t m_ = 0;
  uint32_t ef_construction_ = 0;
  uint64_t seed_ = 0;
  uint32_t max_level_ = 0;
  uint32_t entry_ = 0;
};

}  // namespace stedb::ann

#endif  // STEDB_ANN_HNSW_H_
