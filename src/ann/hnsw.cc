#include "src/ann/hnsw.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <queue>
#include <unordered_set>
#include <utility>

#include "src/common/parallel.h"
#include "src/common/rng.h"
#include "src/la/kernels.h"

namespace stedb::ann {
namespace {

// ---- Payload layout (version 1) ----------------------------------------
//
// All integers little-endian, doubles raw IEEE-754; every array starts on
// an 8-byte offset within the payload (and the snapshot container keeps
// payloads on 8-byte file offsets, so the mmap'd arrays are aligned).
//
//   [0..4)    u32 format version (1)
//   [4..8)    u32 metric
//   [8..12)   u32 m
//   [12..16)  u32 ef_construction
//   [16..24)  u64 seed
//   [24..32)  u64 num_nodes                 n >= 1
//   [32..36)  u32 max_level
//   [36..40)  u32 entry node
//   [40..48)  u64 adj_words                 u32 words in the pool
//   [48..52)  u32 dim                       vector dimension built against
//   [52..56)  u32 reserved (0)
//   levels    u32[n], zero-padded to 8
//   offsets   u64[n]                        node -> first pool word
//   pool      u32[adj_words], padded to 8   per node, levels 0..level:
//                                           count, then `count` node ids
//   norms     f64[n]                        cosine metric only
constexpr size_t kHeaderBytes = 56;

constexpr uint32_t kMinM = 2;
constexpr uint32_t kMaxM = 1024;

void PutU32(std::string& out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, sizeof(v));
  out.append(buf, sizeof(buf));
}

void PutU64(std::string& out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, sizeof(v));
  out.append(buf, sizeof(buf));
}

void PutF64(std::string& out, double v) {
  char buf[8];
  std::memcpy(buf, &v, sizeof(v));
  out.append(buf, sizeof(buf));
}

void PadTo8(std::string& out) {
  while (out.size() % 8 != 0) out.push_back('\0');
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

/// Scores query/node and node/node pairs against one vector set. The
/// norms pointer is null for the norm-free metrics.
struct Scorer {
  Metric metric;
  size_t dim;
  VectorSource vecs;
  const double* norms = nullptr;

  double NodeNorm(uint32_t node) const {
    return norms == nullptr ? 0.0 : norms[node];
  }
  double ToQuery(const double* q, double q_norm, uint32_t node) const {
    return PairScore(metric, q, vecs.Row(node), dim, q_norm, NodeNorm(node));
  }
  double Between(uint32_t a, uint32_t b) const {
    return PairScore(metric, vecs.Row(a), vecs.Row(b), dim, NodeNorm(a),
                     NodeNorm(b));
  }
};

/// priority_queue comparators over the BetterHit total order. Compare(a,b)
/// == "a has lower priority than b", so BestOnTop pops the best hit and
/// WorstOnTop pops the worst (the bounded result set's eviction victim).
struct BestOnTop {
  bool operator()(const ScoredNode& a, const ScoredNode& b) const {
    return BetterHit(b, a);
  }
};
struct WorstOnTop {
  bool operator()(const ScoredNode& a, const ScoredNode& b) const {
    return BetterHit(a, b);
  }
};

/// Greedy descent on one level: repeatedly move to the best neighbor
/// until no neighbor improves on the current node. BetterHit is a strict
/// total order, so the walk cannot cycle and the endpoint is a pure
/// function of the graph — independent of thread count.
template <typename Graph>
ScoredNode GreedyStep(const Graph& g, const Scorer& scorer, const double* q,
                      double q_norm, ScoredNode ep, uint32_t level,
                      SearchStats* stats) {
  bool improved = true;
  while (improved) {
    improved = false;
    for (uint32_t nb : g.neighbors(ep.node, level)) {
      const ScoredNode cand{scorer.ToQuery(q, q_norm, nb), nb};
      if (stats != nullptr) ++stats->visited;
      if (BetterHit(cand, ep)) {
        ep = cand;
        improved = true;
      }
    }
  }
  return ep;
}

/// Best-first beam search on one level, keeping the `ef` best visited
/// nodes. Terminates when the best unexpanded candidate is strictly worse
/// than the worst kept result. Returns the kept nodes best first.
template <typename Graph>
std::vector<ScoredNode> SearchLayer(const Graph& g, const Scorer& scorer,
                                    const double* q, double q_norm,
                                    ScoredNode ep, uint32_t level, size_t ef,
                                    SearchStats* stats) {
  std::priority_queue<ScoredNode, std::vector<ScoredNode>, BestOnTop> cands;
  std::priority_queue<ScoredNode, std::vector<ScoredNode>, WorstOnTop> kept;
  std::unordered_set<uint32_t> visited;
  visited.reserve(ef * 8);
  visited.insert(ep.node);
  cands.push(ep);
  kept.push(ep);
  while (!cands.empty()) {
    const ScoredNode c = cands.top();
    if (kept.size() >= ef && BetterHit(kept.top(), c)) break;
    cands.pop();
    for (uint32_t nb : g.neighbors(c.node, level)) {
      if (!visited.insert(nb).second) continue;
      const ScoredNode cand{scorer.ToQuery(q, q_norm, nb), nb};
      if (stats != nullptr) ++stats->visited;
      if (kept.size() < ef || BetterHit(cand, kept.top())) {
        cands.push(cand);
        kept.push(cand);
        if (kept.size() > ef) kept.pop();
      }
    }
  }
  std::vector<ScoredNode> out;
  out.reserve(kept.size());
  while (!kept.empty()) {
    out.push_back(kept.top());
    kept.pop();
  }
  std::reverse(out.begin(), out.end());
  return out;
}

/// The HNSW diversity heuristic over a best-first candidate list: keep a
/// candidate unless it sits closer to an already-kept neighbor than to
/// the base node, then fill any remaining slots with the skipped
/// candidates in order (keepPruned). Pure function of the (score, id)
/// ordering, so selection is deterministic.
std::vector<ScoredNode> SelectNeighbors(const Scorer& scorer,
                                        const std::vector<ScoredNode>& cands,
                                        size_t limit) {
  if (cands.size() <= limit) return cands;
  std::vector<ScoredNode> selected;
  std::vector<ScoredNode> skipped;
  selected.reserve(limit);
  for (const ScoredNode& c : cands) {
    if (selected.size() >= limit) break;
    bool diverse = true;
    for (const ScoredNode& s : selected) {
      if (scorer.Between(c.node, s.node) > c.score) {
        diverse = false;
        break;
      }
    }
    if (diverse) {
      selected.push_back(c);
    } else {
      skipped.push_back(c);
    }
  }
  for (const ScoredNode& c : skipped) {
    if (selected.size() >= limit) break;
    selected.push_back(c);
  }
  return selected;
}

/// Mutable adjacency during construction.
struct BuildGraph {
  std::vector<uint32_t> levels;
  /// adj[node][level] -> linked node ids. Sized to the node's level on
  /// insertion; nodes not yet inserted have an empty outer vector, so the
  /// frozen-graph searches of a parallel phase never see them.
  std::vector<std::vector<std::vector<uint32_t>>> adj;

  Span<const uint32_t> neighbors(uint32_t node, uint32_t level) const {
    const auto& per_level = adj[node];
    if (level >= per_level.size()) return {};
    return {per_level[level].data(), per_level[level].size()};
  }
};

/// Counter-based level draw: a pure function of (seed, fact id), the
/// Rng::Fork contract that makes levels independent of insertion order,
/// thread count and SIMD path.
uint32_t DrawLevel(const Rng& root, db::FactId fact, double inv_log_m) {
  Rng stream = root.Fork(static_cast<uint64_t>(static_cast<int64_t>(fact)));
  const double u = stream.NextDouble();
  const double draw = -std::log(u) * inv_log_m;  // u == 0 -> +inf -> cap
  if (!(draw < static_cast<double>(kMaxHnswLevel))) return kMaxHnswLevel;
  return static_cast<uint32_t>(draw);
}

std::string Serialize(const HnswConfig& config, const BuildGraph& g,
                      uint32_t max_level, uint32_t entry, size_t dim,
                      const std::vector<double>& norms) {
  const size_t n = g.levels.size();
  uint64_t adj_words = 0;
  for (size_t i = 0; i < n; ++i) {
    for (const auto& links : g.adj[i]) {
      adj_words += 1 + links.size();
    }
  }
  std::string out;
  out.reserve(kHeaderBytes + n * 16 + adj_words * 4 + norms.size() * 8 + 16);
  PutU32(out, kAnnFormatVersion);
  PutU32(out, static_cast<uint32_t>(config.metric));
  PutU32(out, config.m);
  PutU32(out, config.ef_construction);
  PutU64(out, config.seed);
  PutU64(out, n);
  PutU32(out, max_level);
  PutU32(out, entry);
  PutU64(out, adj_words);
  PutU32(out, static_cast<uint32_t>(dim));
  PutU32(out, 0);  // reserved
  for (size_t i = 0; i < n; ++i) PutU32(out, g.levels[i]);
  PadTo8(out);
  uint64_t cursor = 0;
  for (size_t i = 0; i < n; ++i) {
    PutU64(out, cursor);
    for (const auto& links : g.adj[i]) cursor += 1 + links.size();
  }
  for (size_t i = 0; i < n; ++i) {
    for (const auto& links : g.adj[i]) {
      PutU32(out, static_cast<uint32_t>(links.size()));
      for (uint32_t id : links) PutU32(out, id);
    }
  }
  PadTo8(out);
  for (double norm : norms) PutF64(out, norm);
  return out;
}

/// Batch ceiling for the frozen-graph parallel insert. Doubling batches
/// (1, 1, 2, 4, ...) keep the early graph dense; the cap bounds how stale
/// the frozen graph a batch searches can get relative to the nodes being
/// inserted, which is what keeps recall at exact-oracle levels.
constexpr size_t kMaxInsertBatch = 128;

}  // namespace

double NormOf(Metric metric, const double* v, size_t dim) {
  if (metric != Metric::kCosine) return 0.0;
  return std::sqrt(la::Norm2Sq(v, dim));
}

double PairScore(Metric metric, const double* a, const double* b, size_t dim,
                 double norm_a, double norm_b) {
  switch (metric) {
    case Metric::kCosine:
      // Same guard and evaluation order as la::CosineSimilarity, so the
      // scores are bit-equal to the brute-force oracle's.
      if (norm_a == 0.0 || norm_b == 0.0) return 0.0;
      return la::Dot(a, b, dim) / (norm_a * norm_b);
    case Metric::kEuclidean:
      return -std::sqrt(la::DistSq(a, b, dim));
    case Metric::kDot:
      return la::Dot(a, b, dim);
  }
  return 0.0;
}

double Score(Metric metric, Span<const double> a, Span<const double> b) {
  return PairScore(metric, a.data(), b.data(), a.size(),
                   NormOf(metric, a.data(), a.size()),
                   NormOf(metric, b.data(), b.size()));
}

Result<std::string> BuildHnsw(const HnswConfig& config,
                              Span<const db::FactId> facts,
                              const VectorSource& vectors, size_t dim) {
  if (facts.empty()) {
    return Status::InvalidArgument("hnsw: cannot build over zero vectors");
  }
  if (dim == 0 || dim > static_cast<size_t>(UINT32_MAX)) {
    return Status::InvalidArgument("hnsw: dimension must fit in u32");
  }
  if (config.m < kMinM || config.m > kMaxM) {
    return Status::InvalidArgument("hnsw: m must be in [2, 1024]");
  }
  if (config.ef_construction == 0) {
    return Status::InvalidArgument("hnsw: ef_construction must be positive");
  }
  const size_t n = facts.size();
  if (n >= static_cast<size_t>(UINT32_MAX)) {
    return Status::InvalidArgument("hnsw: too many vectors for u32 node ids");
  }
  for (size_t i = 1; i < n; ++i) {
    if (facts[i] <= facts[i - 1]) {
      return Status::InvalidArgument(
          "hnsw: facts must be strictly ascending (PHI record order)");
    }
  }

  // Per-node levels and norms: counter-based streams / pure kernel calls,
  // one disjoint output slot per index — the ParallelRunner contract.
  const Rng root(config.seed);
  const double inv_log_m = 1.0 / std::log(static_cast<double>(config.m));
  BuildGraph g;
  g.levels.resize(n);
  g.adj.resize(n);
  std::vector<double> norms;
  if (config.metric == Metric::kCosine) norms.resize(n);
  RunParallelFor(config.threads, n, [&](size_t i) {
    g.levels[i] = DrawLevel(root, facts[i], inv_log_m);
    if (!norms.empty()) {
      norms[i] = NormOf(config.metric, vectors.Row(i), dim);
    }
  });

  Scorer scorer{config.metric, dim, vectors,
                norms.empty() ? nullptr : norms.data()};
  const uint32_t m0 = config.m * 2;  // base-layer link ceiling

  g.adj[0].resize(g.levels[0] + 1);
  uint32_t entry = 0;
  uint32_t max_level = g.levels[0];

  // Candidate slots of the current batch: cands[bi][level] is written by
  // exactly one parallel index and read only by the serial link phase.
  std::vector<std::vector<std::vector<ScoredNode>>> cands;
  size_t next = 1;
  size_t batch = 1;
  while (next < n) {
    const size_t batch_size = std::min(batch, n - next);
    batch = std::min(batch * 2, kMaxInsertBatch);
    cands.assign(batch_size, {});
    const uint32_t frozen_entry = entry;
    const uint32_t frozen_max = max_level;

    // Parallel phase: each batch node searches the frozen pre-batch graph
    // (read-only) for its per-level candidate lists. No shared mutable
    // state, so the results cannot depend on scheduling.
    RunParallelFor(config.threads, batch_size, [&](size_t bi) {
      const auto node = static_cast<uint32_t>(next + bi);
      const double* q = vectors.Row(node);
      const double q_norm = norms.empty() ? 0.0 : norms[node];
      const uint32_t node_level = g.levels[node];
      ScoredNode ep{scorer.ToQuery(q, q_norm, frozen_entry), frozen_entry};
      for (uint32_t l = frozen_max; l > node_level; --l) {
        ep = GreedyStep(g, scorer, q, q_norm, ep, l, nullptr);
      }
      auto& per_level = cands[bi];
      per_level.resize(node_level + 1);
      const uint32_t top = std::min(node_level, frozen_max);
      for (uint32_t l = top + 1; l-- > 0;) {
        per_level[l] = SearchLayer(g, scorer, q, q_norm, ep, l,
                                   config.ef_construction, nullptr);
        ep = per_level[l].front();
      }
    });

    // Serial phase: link in ascending node id. Selection and pruning are
    // pure functions of (score, id)-ordered lists, so the whole phase is
    // a pure function of the parallel phase's slots.
    for (size_t bi = 0; bi < batch_size; ++bi) {
      const auto node = static_cast<uint32_t>(next + bi);
      const uint32_t node_level = g.levels[node];
      g.adj[node].resize(node_level + 1);
      for (uint32_t l = 0; l <= node_level; ++l) {
        if (l >= cands[bi].size() || cands[bi][l].empty()) continue;
        const uint32_t cap = l == 0 ? m0 : config.m;
        const std::vector<ScoredNode> picked =
            SelectNeighbors(scorer, cands[bi][l], config.m);
        auto& own = g.adj[node][l];
        own.reserve(picked.size());
        for (const ScoredNode& s : picked) {
          own.push_back(s.node);
          auto& back = g.adj[s.node][l];
          if (back.size() < cap) {
            back.push_back(node);
            continue;
          }
          // The reverse list is full: re-select over existing + new,
          // scored relative to the list's owner.
          std::vector<ScoredNode> pool;
          pool.reserve(back.size() + 1);
          for (uint32_t t : back) {
            pool.push_back({scorer.Between(t, s.node), t});
          }
          pool.push_back({s.score, node});  // score(node, s) is symmetric
          std::sort(pool.begin(), pool.end(), BetterHit);
          const std::vector<ScoredNode> kept =
              SelectNeighbors(scorer, pool, cap);
          back.clear();
          for (const ScoredNode& t : kept) back.push_back(t.node);
        }
      }
      if (node_level > max_level) {
        max_level = node_level;
        entry = node;
      }
    }
    next += batch_size;
  }

  return Serialize(config, g, max_level, entry, dim, norms);
}

// ---- HnswView ----------------------------------------------------------

namespace {

/// Flat adjacency over the serialized pool; Open() validated every
/// offset, count and id, so the walks below need no bounds checks.
struct FlatGraph {
  const uint32_t* levels;
  const uint64_t* offsets;
  const uint32_t* pool;

  Span<const uint32_t> neighbors(uint32_t node, uint32_t level) const {
    if (level > levels[node]) return {};
    uint64_t c = offsets[node];
    for (uint32_t l = 0; l < level; ++l) c += 1 + pool[c];
    return {pool + c + 1, pool[c]};
  }
};

}  // namespace

Result<HnswView> HnswView::Open(const char* data, size_t size,
                                size_t expected_nodes, size_t dim) {
  if (reinterpret_cast<uintptr_t>(data) % 8 != 0) {
    return Status::InvalidArgument("hnsw: payload must be 8-byte aligned");
  }
  if (size < kHeaderBytes) {
    return Status::InvalidArgument("hnsw: payload shorter than its header");
  }
  const uint32_t version = GetU32(data);
  if (version != kAnnFormatVersion) {
    return Status::InvalidArgument("hnsw: unsupported format version " +
                                   std::to_string(version));
  }
  const uint32_t metric_raw = GetU32(data + 4);
  if (metric_raw > static_cast<uint32_t>(Metric::kDot)) {
    return Status::InvalidArgument("hnsw: unknown metric " +
                                   std::to_string(metric_raw));
  }
  HnswView view;
  view.metric_ = static_cast<Metric>(metric_raw);
  view.m_ = GetU32(data + 8);
  view.ef_construction_ = GetU32(data + 12);
  view.seed_ = GetU64(data + 16);
  const uint64_t n64 = GetU64(data + 24);
  view.max_level_ = GetU32(data + 32);
  view.entry_ = GetU32(data + 36);
  const uint64_t adj_words = GetU64(data + 40);
  if (view.m_ < kMinM || view.m_ > kMaxM) {
    return Status::InvalidArgument("hnsw: implausible m in header");
  }
  if (n64 == 0 || n64 != expected_nodes) {
    return Status::InvalidArgument(
        "hnsw: node count disagrees with the snapshot's PHI records");
  }
  if (GetU32(data + 48) != dim) {
    return Status::InvalidArgument(
        "hnsw: dimension disagrees with the snapshot header");
  }
  if (view.max_level_ > kMaxHnswLevel || view.entry_ >= n64) {
    return Status::InvalidArgument("hnsw: implausible entry point");
  }
  const size_t n = static_cast<size_t>(n64);
  view.num_nodes_ = n;
  view.dim_ = dim;

  // Exact size check before touching any array. The counts are bounded
  // by the actual payload size first, so the byte arithmetic below cannot
  // overflow on a crafted header.
  if (n64 > size / 4 || adj_words > size / 4) {
    return Status::InvalidArgument("hnsw: payload size mismatch");
  }
  const uint64_t levels_bytes = (n64 * 4 + 7) / 8 * 8;
  const uint64_t offsets_bytes = n64 * 8;
  const uint64_t pool_bytes = (adj_words * 4 + 7) / 8 * 8;
  const uint64_t norms_bytes = view.metric_ == Metric::kCosine ? n64 * 8 : 0;
  if (kHeaderBytes + levels_bytes + offsets_bytes + pool_bytes + norms_bytes !=
      size) {
    return Status::InvalidArgument("hnsw: payload size mismatch");
  }

  view.levels_ = reinterpret_cast<const uint32_t*>(data + kHeaderBytes);
  view.offsets_ =
      reinterpret_cast<const uint64_t*>(data + kHeaderBytes + levels_bytes);
  view.pool_ = reinterpret_cast<const uint32_t*>(data + kHeaderBytes +
                                                 levels_bytes + offsets_bytes);
  if (norms_bytes > 0) {
    view.norms_ = reinterpret_cast<const double*>(
        data + kHeaderBytes + levels_bytes + offsets_bytes + pool_bytes);
  }

  // Walk the whole adjacency once: offsets must tile the pool exactly,
  // counts must respect the per-level ceilings and every id must be a
  // valid node. After this, Search runs with no bounds checks at all.
  uint64_t cursor = 0;
  for (size_t i = 0; i < n; ++i) {
    if (view.levels_[i] > view.max_level_) {
      return Status::InvalidArgument("hnsw: node level above max level");
    }
    if (view.offsets_[i] != cursor) {
      return Status::InvalidArgument("hnsw: adjacency offsets do not tile");
    }
    for (uint32_t l = 0; l <= view.levels_[i]; ++l) {
      if (cursor >= adj_words) {
        return Status::InvalidArgument("hnsw: adjacency overruns the pool");
      }
      const uint32_t count = view.pool_[cursor];
      const uint32_t cap = l == 0 ? view.m_ * 2 : view.m_;
      if (count > cap || cursor + 1 + count > adj_words) {
        return Status::InvalidArgument("hnsw: adjacency list overruns");
      }
      for (uint32_t j = 0; j < count; ++j) {
        if (view.pool_[cursor + 1 + j] >= n64) {
          return Status::InvalidArgument("hnsw: neighbor id out of range");
        }
      }
      cursor += 1 + count;
    }
  }
  if (cursor != adj_words) {
    return Status::InvalidArgument("hnsw: trailing words in adjacency pool");
  }
  if (view.levels_[view.entry_] != view.max_level_) {
    return Status::InvalidArgument("hnsw: entry node level mismatch");
  }
  return view;
}

Span<const uint32_t> HnswView::neighbors(uint32_t node, uint32_t lvl) const {
  return FlatGraph{levels_, offsets_, pool_}.neighbors(node, lvl);
}

std::vector<ScoredNode> HnswView::Search(const double* query, size_t k,
                                         size_t ef,
                                         const VectorSource& vectors,
                                         SearchStats* stats) const {
  if (!valid() || k == 0) return {};
  const FlatGraph g{levels_, offsets_, pool_};
  const Scorer scorer{metric_, dim_, vectors, norms_};
  const double q_norm = NormOf(metric_, query, dim_);
  ScoredNode ep{scorer.ToQuery(query, q_norm, entry_), entry_};
  if (stats != nullptr) ++stats->visited;
  for (uint32_t l = max_level_; l > 0; --l) {
    ep = GreedyStep(g, scorer, query, q_norm, ep, l, stats);
  }
  std::vector<ScoredNode> out = SearchLayer(g, scorer, query, q_norm, ep, 0,
                                            std::max(ef, k), stats);
  if (out.size() > k) out.resize(k);
  return out;
}

}  // namespace stedb::ann
