#include "src/obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/common/logging.h"

// stedb:deterministic-output — Render() feeds golden tests and scrape
// diffs; iteration below must stay over ordered containers only.

namespace stedb::obs {

namespace internal {

// stedb:wait-free-begin — record-path helpers: relaxed atomics and CAS
// loops only, never a lock (stedb_lint enforces this region).

size_t ThreadShard() {
  // Dense sequential thread numbering beats hashing std::thread::id:
  // the first kShards threads get distinct shards by construction.
  static std::atomic<size_t> next{0};
  static thread_local size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

void AtomicAddDouble(std::atomic<uint64_t>* bits, double delta) {
  uint64_t cur = bits->load(std::memory_order_relaxed);
  double next;
  do {
    std::memcpy(&next, &cur, sizeof(next));
    next += delta;
    uint64_t want;
    std::memcpy(&want, &next, sizeof(want));
    if (bits->compare_exchange_weak(cur, want, std::memory_order_relaxed)) {
      return;
    }
  } while (true);
}

double LoadDouble(const std::atomic<uint64_t>& bits) {
  const uint64_t b = bits.load(std::memory_order_relaxed);
  double v;
  std::memcpy(&v, &b, sizeof(v));
  return v;
}
// stedb:wait-free-end

}  // namespace internal

// ---- Counter / Gauge / Histogram ---------------------------------------

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Cell& c : cells_) {
    total += c.v.load(std::memory_order_relaxed);
  }
  return total;
}

// stedb:wait-free-begin — Gauge writes: a relaxed store / CAS ratchet.
void Gauge::Set(double v) {
  uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  bits_.store(b, std::memory_order_relaxed);
}

void Gauge::SetMax(double v) {
  uint64_t cur = bits_.load(std::memory_order_relaxed);
  do {
    double seen;
    std::memcpy(&seen, &cur, sizeof(seen));
    if (v <= seen) return;
    uint64_t want;
    std::memcpy(&want, &v, sizeof(want));
    if (bits_.compare_exchange_weak(cur, want, std::memory_order_relaxed)) {
      return;
    }
  } while (true);
}
// stedb:wait-free-end

Buckets Buckets::Exponential(double first, double factor, size_t count) {
  Buckets b;
  b.bounds.reserve(count);
  double bound = first;
  for (size_t i = 0; i < count; ++i) {
    b.bounds.push_back(bound);
    bound *= factor;
  }
  return b;
}

Buckets Buckets::Latency() { return Exponential(1e-6, 2.0, 25); }

Buckets Buckets::PowersOfTwo() { return Exponential(1.0, 2.0, 17); }

Histogram::Histogram(Buckets buckets) : bounds_(std::move(buckets.bounds)) {
  shards_.reserve(internal::kShards);
  for (size_t i = 0; i < internal::kShards; ++i) {
    shards_.push_back(std::make_unique<Shard>(bounds_.size() + 1));
  }
}

// stedb:wait-free-begin — Observe: two relaxed updates on the caller's
// shard, no lock, no allocation.
void Histogram::Observe(double v) {
  // lower_bound, not upper_bound: `le` buckets are inclusive, so a value
  // landing exactly on a bound belongs to that bound's bucket.
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  Shard& shard = *shards_[internal::ThreadShard()];
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  internal::AtomicAddDouble(&shard.sum_bits, v);
}
// stedb:wait-free-end

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) total += BucketCount(i);
  return total;
}

double Histogram::Sum() const {
  double total = 0.0;
  for (const auto& shard : shards_) {
    total += internal::LoadDouble(shard->sum_bits);
  }
  return total;
}

uint64_t Histogram::BucketCount(size_t i) const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->counts[i].load(std::memory_order_relaxed);
  }
  return total;
}

// ---- Registry ----------------------------------------------------------

namespace {

bool ValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_' || c == ':';
    if (!(alpha || (i > 0 && c >= '0' && c <= '9'))) return false;
  }
  return true;
}

/// Renders `{k1="v1",k2="v2"}`; empty string for no labels. Label values
/// here are code-chosen constants, so only the JSON-style breakers are
/// escaped.
std::string RenderLabels(const Labels& labels) {
  if (labels.empty()) return std::string();
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += labels[i].key;
    out += "=\"";
    for (char c : labels[i].value) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    out.push_back('"');
  }
  out.push_back('}');
  return out;
}

void AppendDouble(std::string* out, double v) {
  char buf[40];
  // %.17g round-trips; integral values render without a trailing ".0",
  // matching Prometheus conventions (and the golden tests).
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      v >= -1e15 && v <= 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  *out += buf;
}

void AppendBound(std::string* out, double bound) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", bound);
  *out += buf;
}

/// Splices extra labels (`le`) into a rendered label string.
std::string WithLe(const std::string& label_str, const std::string& le) {
  if (label_str.empty()) return "{le=\"" + le + "\"}";
  return label_str.substr(0, label_str.size() - 1) + ",le=\"" + le + "\"}";
}

}  // namespace

Registry& Registry::Global() {
  static Registry* registry = new Registry();  // never destroyed: metrics
  return *registry;  // outlive every static-destruction-order consumer
}

Registry::Series& Registry::GetOrCreate(const std::string& name,
                                        const std::string& help,
                                        const Labels& labels, Type type,
                                        const Buckets* buckets) {
  if (!ValidMetricName(name)) {
    STEDB_LOG(kError) << "obs: invalid metric name '" << name << "'";
    std::abort();
  }
  if (labels.size() > kMaxLabels) {
    STEDB_LOG(kError) << "obs: metric '" << name << "' registered with "
                      << labels.size() << " labels (max " << kMaxLabels
                      << "); label sets must stay small and fixed";
    std::abort();
  }
  const std::string label_str = RenderLabels(labels);
  const std::string identity = name + label_str;
  MutexLock lk(mu_);
  auto it = index_.find(identity);
  if (it != index_.end()) {
    if (it->second->type != type) {
      STEDB_LOG(kError) << "obs: metric '" << identity
                        << "' re-registered as a different type";
      std::abort();
    }
    return *it->second;
  }
  auto series = std::make_unique<Series>();
  series->name = name;
  series->label_str = label_str;
  series->type = type;
  // The typed instance is created here, under mu_, together with the
  // series entry. (It used to be reset() by the Get* wrappers after
  // GetOrCreate returned — outside the lock — so two threads racing on
  // first registration could double-create and leak/corrupt the
  // instance. Surfaced by STEDB_GUARDED_BY on series_.)
  switch (type) {
    case Type::kCounter:
      // The metric constructors are private with Registry as the only
      // friend, so the `new` must happen here — std::make_unique is not
      // a friend. NOLINTNEXTLINE(modernize-make-unique)
      series->counter.reset(new Counter());
      break;
    case Type::kGauge:
      // NOLINTNEXTLINE(modernize-make-unique)
      series->gauge.reset(new Gauge());
      break;
    case Type::kHistogram:
      // NOLINTNEXTLINE(modernize-make-unique)
      series->histogram.reset(new Histogram(*buckets));
      break;
  }
  if (family_help_.emplace(name, help).second) {
    family_order_.push_back(name);
  }
  Series* raw = series.get();
  series_.push_back(std::move(series));
  index_.emplace(identity, raw);
  return *raw;
}

Counter& Registry::GetCounter(const std::string& name,
                              const std::string& help, Labels labels) {
  return *GetOrCreate(name, help, labels, Type::kCounter, nullptr).counter;
}

Gauge& Registry::GetGauge(const std::string& name, const std::string& help,
                          Labels labels) {
  return *GetOrCreate(name, help, labels, Type::kGauge, nullptr).gauge;
}

Histogram& Registry::GetHistogram(const std::string& name,
                                  const std::string& help,
                                  const Buckets& buckets, Labels labels) {
  return *GetOrCreate(name, help, labels, Type::kHistogram, &buckets)
              .histogram;
}

const Registry::Series* Registry::Find(const std::string& name,
                                       const Labels& labels,
                                       Type type) const {
  const std::string identity = name + RenderLabels(labels);
  MutexLock lk(mu_);
  auto it = index_.find(identity);
  if (it == index_.end() || it->second->type != type) return nullptr;
  return it->second;
}

const Counter* Registry::FindCounter(const std::string& name,
                                     const Labels& labels) const {
  const Series* s = Find(name, labels, Type::kCounter);
  return s != nullptr ? s->counter.get() : nullptr;
}

const Gauge* Registry::FindGauge(const std::string& name,
                                 const Labels& labels) const {
  const Series* s = Find(name, labels, Type::kGauge);
  return s != nullptr ? s->gauge.get() : nullptr;
}

const Histogram* Registry::FindHistogram(const std::string& name,
                                         const Labels& labels) const {
  const Series* s = Find(name, labels, Type::kHistogram);
  return s != nullptr ? s->histogram.get() : nullptr;
}

void Registry::Render(std::string* out) const {
  MutexLock lk(mu_);
  for (const std::string& family : family_order_) {
    const char* type_name = "untyped";
    // All series of a family share a type (enforced at registration).
    for (const auto& s : series_) {
      if (s->name != family) continue;
      type_name = s->type == Type::kCounter   ? "counter"
                  : s->type == Type::kGauge   ? "gauge"
                                              : "histogram";
      break;
    }
    *out += "# HELP " + family + " " + family_help_.at(family) + "\n";
    *out += "# TYPE " + family + " ";
    *out += type_name;
    out->push_back('\n');
    for (const auto& s : series_) {
      if (s->name != family) continue;
      if (s->type == Type::kCounter) {
        *out += s->name + s->label_str + " " +
                std::to_string(s->counter->Value()) + "\n";
      } else if (s->type == Type::kGauge) {
        *out += s->name + s->label_str + " ";
        AppendDouble(out, s->gauge->Value());
        out->push_back('\n');
      } else {
        const Histogram& h = *s->histogram;
        uint64_t cumulative = 0;
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          cumulative += h.BucketCount(i);
          std::string le;
          AppendBound(&le, h.bounds()[i]);
          *out += s->name + "_bucket" + WithLe(s->label_str, le) + " " +
                  std::to_string(cumulative) + "\n";
        }
        cumulative += h.BucketCount(h.bounds().size());
        *out += s->name + "_bucket" + WithLe(s->label_str, "+Inf") + " " +
                std::to_string(cumulative) + "\n";
        *out += s->name + "_sum" + s->label_str + " ";
        AppendDouble(out, h.Sum());
        out->push_back('\n');
        *out += s->name + "_count" + s->label_str + " " +
                std::to_string(cumulative) + "\n";
      }
    }
  }
}

void RenderPrometheus(std::string* out) { Registry::Global().Render(out); }

}  // namespace stedb::obs
