#ifndef STEDB_OBS_SPAN_H_
#define STEDB_OBS_SPAN_H_

#include <chrono>

#include "src/common/logging.h"
#include "src/obs/metrics.h"

namespace stedb::obs {

/// Lightweight tracing span: measures the enclosing scope on the steady
/// clock, records the duration (seconds) into a latency histogram at
/// destruction (or an explicit End()), and — when constructed with a name
/// and a threshold — emits one slow-op log line for outliers, so the tail
/// of a latency histogram has a grep-able trace without any logging on
/// the fast path.
///
///   obs::Span span("store.compact", Metrics().compact_seconds,
///                  /*slow_log_sec=*/0.5);
///
/// The unnamed form is a plain scoped timer:
///
///   obs::ScopedTimer timer(Metrics().append_seconds);
class Span {
 public:
  explicit Span(Histogram& hist)
      : Span(/*name=*/nullptr, hist, /*slow_log_sec=*/0.0) {}

  Span(const char* name, Histogram& hist, double slow_log_sec = 0.0)
      : hist_(&hist),
        name_(name),
        slow_log_sec_(slow_log_sec),
        start_(Clock::now()) {}

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() { End(); }

  /// Records now instead of at scope exit; idempotent. Returns the
  /// elapsed seconds (0.0 on repeat calls).
  double End() {
    if (hist_ == nullptr) return 0.0;
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start_).count();
    hist_->Observe(elapsed);
    if (name_ != nullptr && slow_log_sec_ > 0.0 && elapsed >= slow_log_sec_) {
      STEDB_LOG(kWarn) << "slow op " << name_ << ": " << elapsed * 1e3
                       << " ms (threshold " << slow_log_sec_ * 1e3 << " ms)";
    }
    hist_ = nullptr;
    return elapsed;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Histogram* hist_;
  const char* name_;
  double slow_log_sec_;
  Clock::time_point start_;
};

/// The anonymous span: time a scope into a histogram, nothing else.
using ScopedTimer = Span;

}  // namespace stedb::obs

#endif  // STEDB_OBS_SPAN_H_
