#ifndef STEDB_OBS_METRICS_H_
#define STEDB_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/thread_annotations.h"

namespace stedb::obs {

/// Process-wide metric layer: counters, gauges and fixed-bucket
/// histograms registered once in a Registry and scraped as Prometheus
/// text exposition (RenderPrometheus / the serve layer's GET /metrics).
///
/// Design contract — the same wait-free discipline as fwd::DistCache:
///  * The recording side (Inc/Set/Add/Observe) is lock-free relaxed
///    atomics on cache-line-padded per-thread shards; no mutex, no
///    fence, no allocation. Hot paths (WAL appends, HTTP handlers,
///    ParallelFor fan-outs) record unconditionally.
///  * All aggregation happens at scrape time: Value()/Render() sum the
///    shards with relaxed loads. Totals can lag in-flight updates by a
///    few counts when sampled mid-operation — fine for monitoring,
///    and exact once the writers quiesce (tests rely on that).
///  * Registration allocates; it happens once per series at startup
///    (instrumented sites hold the returned reference in a static),
///    so the steady state is allocation-free.
///
/// Metric identity is `name{label="value",...}` with a small fixed-arity
/// label set (at most kMaxLabels pairs, checked at registration).
/// Registering the same identity twice returns the same instance;
/// re-registering it as a different type aborts (it is a programming
/// error that would silently corrupt the exposition).

namespace internal {

/// Shard count for the per-thread striping of counters and histograms.
constexpr size_t kShards = 16;

/// A stable per-thread shard index in [0, kShards).
size_t ThreadShard();

/// Relaxed CAS-add of a double stored as its bit pattern. Lock-free (not
/// wait-free); contention is already diluted by the per-thread shards.
void AtomicAddDouble(std::atomic<uint64_t>* bits, double delta);

double LoadDouble(const std::atomic<uint64_t>& bits);

}  // namespace internal

/// Monotone event count. Inc() touches only the calling thread's padded
/// shard, so concurrent writers never share a cache line.
class Counter {
 public:
  // stedb:wait-free-begin — the record path: one relaxed fetch_add,
  // no lock, no allocation (stedb_lint enforces this region).
  void Inc(uint64_t n = 1) {
    cells_[internal::ThreadShard()].v.fetch_add(n, std::memory_order_relaxed);
  }
  // stedb:wait-free-end
  /// Scrape-time sum over the shards.
  uint64_t Value() const;

 private:
  friend class Registry;
  Counter() = default;
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  std::array<Cell, internal::kShards> cells_;
};

/// Last-written value (Set) or running sum (Add), as a double. Set is
/// wait-free; Add and SetMax are lock-free CAS loops.
class Gauge {
 public:
  void Set(double v);
  void Add(double delta) { internal::AtomicAddDouble(&bits_, delta); }
  /// Ratchets the gauge up to `v` if it exceeds the current value.
  void SetMax(double v);
  double Value() const { return internal::LoadDouble(bits_); }

 private:
  friend class Registry;
  Gauge() = default;
  std::atomic<uint64_t> bits_{0};  ///< IEEE-754 bits of the value
};

/// Upper bucket bounds of a histogram, ascending; the +Inf bucket is
/// implicit. Fixed at registration — the hot path never reshapes.
struct Buckets {
  std::vector<double> bounds;

  /// Log-scaled latency buckets in seconds: 1us doubling up to ~16.8s
  /// (25 bounds). One scheme for every duration histogram, so p99s of
  /// different subsystems land on comparable grids.
  static Buckets Latency();
  /// Powers of two from 1 to 65536, for size/count distributions
  /// (coalesced batch sizes, group-commit batches, fan-out widths).
  static Buckets PowersOfTwo();
  /// `count` bounds starting at `first`, each `factor` times the last.
  static Buckets Exponential(double first, double factor, size_t count);
};

/// Fixed-bucket histogram. Observe() is two relaxed atomic updates on the
/// calling thread's shard (bucket count + sum); Count/Sum/bucket sums are
/// computed at scrape time.
class Histogram {
 public:
  void Observe(double v);

  uint64_t Count() const;
  double Sum() const;
  const std::vector<double>& bounds() const { return bounds_; }
  /// Non-cumulative count of bucket `i` (i == bounds().size() is +Inf).
  uint64_t BucketCount(size_t i) const;

 private:
  friend class Registry;
  explicit Histogram(Buckets buckets);
  struct alignas(64) Shard {
    explicit Shard(size_t buckets) : counts(buckets) {}
    std::vector<std::atomic<uint64_t>> counts;  ///< bounds + the +Inf bucket
    std::atomic<uint64_t> sum_bits{0};
  };
  std::vector<double> bounds_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// One label pair of a series identity. Keys and values are expected to
/// come from a small fixed set (endpoint names, result classes) — never
/// from unbounded user input, which would explode series cardinality.
struct Label {
  std::string key;
  std::string value;
};
using Labels = std::vector<Label>;

/// Ceiling on labels per series; exceeding it aborts at registration.
constexpr size_t kMaxLabels = 4;

/// Insertion-ordered collection of named series. One process-global
/// instance (Global()) backs every instrumented subsystem and the
/// /metrics endpoint; tests construct private registries for golden
/// rendering checks.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-global registry every subsystem records into.
  static Registry& Global();

  /// Returns the series for `name{labels}`, registering it on first use.
  /// Aborts on a malformed name, too many labels, or a type conflict
  /// with an existing series of the same identity.
  Counter& GetCounter(const std::string& name, const std::string& help,
                      Labels labels = {});
  Gauge& GetGauge(const std::string& name, const std::string& help,
                  Labels labels = {});
  Histogram& GetHistogram(const std::string& name, const std::string& help,
                          const Buckets& buckets, Labels labels = {});

  /// Appends the Prometheus text exposition (one # HELP/# TYPE block per
  /// family, series grouped under it in registration order).
  void Render(std::string* out) const;

  /// Scrape-time lookups for tests and the /stats bridge; null when the
  /// identity was never registered (or is a different type).
  const Counter* FindCounter(const std::string& name,
                             const Labels& labels = {}) const;
  const Gauge* FindGauge(const std::string& name,
                         const Labels& labels = {}) const;
  const Histogram* FindHistogram(const std::string& name,
                                 const Labels& labels = {}) const;

 private:
  enum class Type { kCounter, kGauge, kHistogram };

  struct Series {
    std::string name;
    std::string label_str;  ///< rendered `{k="v",...}`, empty when unlabeled
    Type type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  /// Registration slow path. Creates the series AND its typed instance
  /// under mu_ in one shot (`buckets` only read for kHistogram), so two
  /// threads racing to register the same identity can never observe a
  /// series whose instance pointer is still being written.
  Series& GetOrCreate(const std::string& name, const std::string& help,
                      const Labels& labels, Type type,
                      const Buckets* buckets);
  const Series* Find(const std::string& name, const Labels& labels,
                     Type type) const;

  mutable Mutex mu_;
  /// Registration order.
  std::vector<std::unique_ptr<Series>> series_ STEDB_GUARDED_BY(mu_);
  /// identity -> series.
  std::unordered_map<std::string, Series*> index_ STEDB_GUARDED_BY(mu_);
  /// First-seen names.
  std::vector<std::string> family_order_ STEDB_GUARDED_BY(mu_);
  std::unordered_map<std::string, std::string> family_help_
      STEDB_GUARDED_BY(mu_);
};

/// Renders the global registry — the function tools and benches call to
/// dump the same bytes GET /metrics serves.
void RenderPrometheus(std::string* out);

}  // namespace stedb::obs

#endif  // STEDB_OBS_METRICS_H_
