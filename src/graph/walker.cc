#include "src/graph/walker.h"

#include <algorithm>

#include "src/common/parallel.h"

namespace stedb::graph {

NodeId Node2VecWalker::NextNode(NodeId prev, NodeId cur, Rng& rng) const {
  const std::vector<NodeId>& nbrs = graph_->Neighbors(cur);
  if (nbrs.empty()) return kNoNode;
  if (prev == kNoNode || (config_.p == 1.0 && config_.q == 1.0)) {
    return nbrs[rng.NextIndex(nbrs.size())];
  }
  // Rejection sampling against the maximum unnormalized bias.
  const double wp = 1.0 / config_.p;  // return to prev
  const double wq = 1.0 / config_.q;  // move further away
  const double wmax = std::max({wp, 1.0, wq});
  for (int tries = 0; tries < 256; ++tries) {
    NodeId cand = nbrs[rng.NextIndex(nbrs.size())];
    double w;
    if (cand == prev) {
      w = wp;
    } else if (graph_->HasEdge(prev, cand)) {
      w = 1.0;
    } else {
      w = wq;
    }
    if (rng.NextDouble() * wmax <= w) return cand;
  }
  // Pathological bias values: fall back to uniform.
  return nbrs[rng.NextIndex(nbrs.size())];
}

std::vector<NodeId> Node2VecWalker::Walk(NodeId start, Rng& rng) const {
  std::vector<NodeId> walk;
  walk.reserve(config_.walk_length + 1);
  walk.push_back(start);
  NodeId prev = kNoNode;
  NodeId cur = start;
  for (int step = 0; step < config_.walk_length; ++step) {
    NodeId next = NextNode(prev, cur, rng);
    if (next == kNoNode) break;
    walk.push_back(next);
    prev = cur;
    cur = next;
  }
  return walk;
}

std::vector<std::vector<NodeId>> Node2VecWalker::WalksFrom(
    const std::vector<NodeId>& starts, Rng& rng) const {
  const size_t reps = static_cast<size_t>(std::max(config_.walks_per_node, 0));
  std::vector<std::vector<NodeId>> walks(starts.size() * reps);
  if (walks.empty()) return walks;
  // One serial draw advances the caller's stream; every walk then forks its
  // own counter-based stream off that root, keyed by corpus position
  // (rep-major, matching the historical corpus layout).
  const Rng root = rng.Fork();
  ParallelRunner runner(config_.threads);
  runner.ParallelFor(walks.size(), [&](size_t i) {
    Rng walk_rng = root.Fork(i);
    walks[i] = Walk(starts[i % starts.size()], walk_rng);
  });
  return walks;
}

std::vector<std::vector<NodeId>> Node2VecWalker::AllWalks(Rng& rng) const {
  std::vector<NodeId> starts(graph_->num_nodes());
  for (size_t i = 0; i < starts.size(); ++i) {
    starts[i] = static_cast<NodeId>(i);
  }
  return WalksFrom(starts, rng);
}

}  // namespace stedb::graph
