#include "src/graph/alias_sampler.h"

namespace stedb::graph {

void AliasSampler::Build(const std::vector<double>& weights) {
  prob_.clear();
  alias_.clear();
  norm_weights_.clear();

  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0 || weights.empty()) return;

  const size_t n = weights.size();
  norm_weights_.resize(n);
  for (size_t i = 0; i < n; ++i) norm_weights_[i] = weights[i] / total;

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  std::vector<size_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = norm_weights_[i] * static_cast<double>(n);
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    size_t s = small.back();
    small.pop_back();
    size_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (size_t i : large) prob_[i] = 1.0;
  for (size_t i : small) prob_[i] = 1.0;
}

size_t AliasSampler::Sample(Rng& rng) const {
  size_t i = rng.NextIndex(prob_.size());
  return rng.NextDouble() < prob_[i] ? i : alias_[i];
}

}  // namespace stedb::graph
