#ifndef STEDB_GRAPH_ALIAS_SAMPLER_H_
#define STEDB_GRAPH_ALIAS_SAMPLER_H_

#include <vector>

#include "src/common/rng.h"

namespace stedb::graph {

/// Walker's alias method: O(n) construction, O(1) sampling from a fixed
/// discrete distribution. Used for the SGNS negative-sampling table
/// (unigram^0.75 over nodes) and anywhere a static categorical distribution
/// is sampled in a hot loop.
class AliasSampler {
 public:
  AliasSampler() = default;

  /// Builds from unnormalized non-negative weights. All-zero weights yield
  /// an empty sampler.
  explicit AliasSampler(const std::vector<double>& weights) { Build(weights); }

  void Build(const std::vector<double>& weights);

  bool empty() const { return prob_.empty(); }
  size_t size() const { return prob_.size(); }

  /// Draws an index distributed according to the build weights.
  size_t Sample(Rng& rng) const;

  /// The normalized probability of index i (for tests).
  double Probability(size_t i) const { return norm_weights_[i]; }

 private:
  std::vector<double> prob_;
  std::vector<size_t> alias_;
  std::vector<double> norm_weights_;
};

}  // namespace stedb::graph

#endif  // STEDB_GRAPH_ALIAS_SAMPLER_H_
