#ifndef STEDB_GRAPH_WALKER_H_
#define STEDB_GRAPH_WALKER_H_

#include <vector>

#include "src/common/rng.h"
#include "src/graph/bipartite_graph.h"

namespace stedb::graph {

/// Node2Vec walk hyperparameters (Grover & Leskovec 2016). p is the return
/// parameter, q the in-out parameter; p = q = 1 degenerates to uniform
/// (DeepWalk) walks, which is the paper's configuration.
struct WalkConfig {
  int walk_length = 30;    ///< #steps per walk (paper Table II).
  int walks_per_node = 40; ///< #walks started from each node (paper Table II).
  double p = 1.0;
  double q = 1.0;
  /// Worker threads for corpus generation (0 = default: STEDB_THREADS env
  /// var, else hardware concurrency). The corpus is bit-identical at any
  /// count.
  int threads = 0;
};

/// Samples second-order biased random walks over a BipartiteGraph.
/// For p = q = 1 steps are uniform; otherwise the next node is drawn by
/// rejection sampling against the max bias weight, which avoids the
/// per-edge alias tables of the original implementation and so works
/// unchanged on dynamically growing graphs.
class Node2VecWalker {
 public:
  Node2VecWalker(const BipartiteGraph* graph, WalkConfig config)
      : graph_(graph), config_(config) {}

  /// One walk from `start`; length <= walk_length + 1 nodes (shorter when a
  /// dead end is hit).
  std::vector<NodeId> Walk(NodeId start, Rng& rng) const;

  /// walks_per_node walks from each of `starts`, generated in parallel on
  /// `config.threads` workers. Each walk draws from its own counter-based
  /// stream (index-keyed fork of one value drawn from `rng`), so the corpus
  /// is reproducible and independent of the thread count.
  std::vector<std::vector<NodeId>> WalksFrom(const std::vector<NodeId>& starts,
                                             Rng& rng) const;

  /// Walks from every node in the graph (the static training corpus).
  std::vector<std::vector<NodeId>> AllWalks(Rng& rng) const;

  const WalkConfig& config() const { return config_; }

 private:
  NodeId NextNode(NodeId prev, NodeId cur, Rng& rng) const;

  const BipartiteGraph* graph_;
  WalkConfig config_;
};

}  // namespace stedb::graph

#endif  // STEDB_GRAPH_WALKER_H_
