#include "src/graph/bipartite_graph.h"

#include <algorithm>

namespace stedb::graph {

BipartiteGraph::BipartiteGraph(const db::Database* database,
                               GraphOptions options)
    : db_(database), options_(std::move(options)) {
  const db::Schema& schema = db_->schema();
  // Global column indexing.
  rel_column_offset_.resize(schema.num_relations() + 1, 0);
  for (size_t r = 0; r < schema.num_relations(); ++r) {
    rel_column_offset_[r + 1] =
        rel_column_offset_[r] + schema.relation(static_cast<int>(r)).arity();
  }
  column_parent_.resize(rel_column_offset_.back());
  for (size_t i = 0; i < column_parent_.size(); ++i) {
    column_parent_[i] = static_cast<int>(i);
  }
  if (options_.identify_fk_columns) {
    // Union the column pairs linked position-wise by each FK; this realizes
    // the paper's per-value node identification u(R,B_i,a) = u(S,C_i,a).
    for (const db::ForeignKey& fk : schema.fks()) {
      for (size_t i = 0; i < fk.from_attrs.size(); ++i) {
        int a = static_cast<int>(rel_column_offset_[fk.from_rel]) +
                fk.from_attrs[i];
        int b = static_cast<int>(rel_column_offset_[fk.to_rel]) +
                fk.to_attrs[i];
        int ra = FindClass(a);
        int rb = FindClass(b);
        if (ra != rb) column_parent_[ra] = rb;
      }
    }
  }
  // Path-compress eagerly; the structure is immutable afterwards.
  for (size_t i = 0; i < column_parent_.size(); ++i) {
    column_parent_[i] = FindClass(static_cast<int>(i));
  }
}

int BipartiteGraph::FindClass(int idx) const {
  while (column_parent_[idx] != idx) idx = column_parent_[idx];
  return idx;
}

int BipartiteGraph::ColumnClass(db::RelationId rel, db::AttrId attr) const {
  return column_parent_[rel_column_offset_[rel] + attr];
}

Status BipartiteGraph::BuildAll() {
  const db::Schema& schema = db_->schema();
  for (size_t r = 0; r < schema.num_relations(); ++r) {
    for (db::FactId f : db_->FactsOf(static_cast<db::RelationId>(r))) {
      auto res = AddFact(f);
      if (!res.ok()) return res.status();
    }
  }
  return Status::OK();
}

NodeId BipartiteGraph::NewNode(db::FactId fact) {
  NodeId id = static_cast<NodeId>(adjacency_.size());
  adjacency_.emplace_back();
  fact_of_.push_back(fact);
  return id;
}

void BipartiteGraph::AddEdge(NodeId a, NodeId b) {
  auto insert_sorted = [](std::vector<NodeId>& lst, NodeId x) {
    auto it = std::lower_bound(lst.begin(), lst.end(), x);
    lst.insert(it, x);
  };
  insert_sorted(adjacency_[a], b);
  insert_sorted(adjacency_[b], a);
  ++num_edges_;
}

bool BipartiteGraph::HasEdge(NodeId a, NodeId b) const {
  const std::vector<NodeId>& lst = adjacency_[a];
  return std::binary_search(lst.begin(), lst.end(), b);
}

NodeId BipartiteGraph::ValueNode(int column_class, const db::Value& v) {
  ClassValueKey key{column_class, v};
  auto it = value_node_.find(key);
  if (it != value_node_.end()) return it->second;
  NodeId id = NewNode(db::kNoFact);
  value_node_.emplace(std::move(key), id);
  return id;
}

Result<std::vector<NodeId>> BipartiteGraph::AddFact(db::FactId fact) {
  if (!db_->IsLive(fact)) {
    return Status::NotFound("fact is not live in the database");
  }
  if (fact_node_.count(fact) > 0) {
    return Status::AlreadyExists("fact already present in the graph");
  }
  std::vector<NodeId> created;
  NodeId fnode = NewNode(fact);
  fact_node_.emplace(fact, fnode);
  created.push_back(fnode);

  const db::Fact& f = db_->fact(fact);
  for (size_t a = 0; a < f.values.size(); ++a) {
    const db::Value& v = f.values[a];
    if (v.is_null()) continue;
    ColumnKey col{f.rel, static_cast<db::AttrId>(a)};
    if (options_.excluded_columns.count(col) > 0) continue;
    size_t before = adjacency_.size();
    NodeId vnode = ValueNode(ColumnClass(f.rel, static_cast<db::AttrId>(a)), v);
    if (adjacency_.size() > before) created.push_back(vnode);
    AddEdge(fnode, vnode);
  }
  return created;
}

NodeId BipartiteGraph::NodeOfFact(db::FactId f) const {
  auto it = fact_node_.find(f);
  return it == fact_node_.end() ? kNoNode : it->second;
}

std::string BipartiteGraph::NodeLabel(NodeId n) const {
  if (IsFactNode(n)) {
    const db::Fact& f = db_->fact(fact_of_[n]);
    return "fact:" + db_->schema().relation(f.rel).name + "#" +
           std::to_string(fact_of_[n]);
  }
  for (const auto& [key, id] : value_node_) {
    if (id == n) {
      return "val:" + std::to_string(key.column_class) + ":" +
             key.value.ToString();
    }
  }
  return "node:" + std::to_string(n);
}

}  // namespace stedb::graph
