#ifndef STEDB_GRAPH_BIPARTITE_GRAPH_H_
#define STEDB_GRAPH_BIPARTITE_GRAPH_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/db/database.h"

namespace stedb::graph {

/// Node index within a BipartiteGraph.
using NodeId = int32_t;
inline constexpr NodeId kNoNode = -1;

/// A (relation, attribute) column key used for exclusions.
using ColumnKey = std::pair<db::RelationId, db::AttrId>;

struct ColumnKeyHash {
  size_t operator()(const ColumnKey& k) const {
    return std::hash<int64_t>()((static_cast<int64_t>(k.first) << 32) ^
                                static_cast<uint32_t>(k.second));
  }
};

/// Options controlling the graph encoding of a database (paper Section IV).
struct GraphOptions {
  /// When true (the paper's construction), value nodes u(R,B,a) and
  /// u(S,C,a) are identified whenever an FK links columns (R,B) and (S,C).
  /// Turning this off is the ablation knob: every column gets its own value
  /// nodes and the graph decomposes per relation.
  bool identify_fk_columns = true;

  /// Columns whose values must NOT enter the graph, e.g. the downstream
  /// prediction attribute (the embedding must never see it).
  std::unordered_set<ColumnKey, ColumnKeyHash> excluded_columns;
};

/// The bipartite fact/value graph G_D of a database D (paper Section IV):
/// one node v(f) per fact, one node u(R,A,a) per value occurrence, an edge
/// between v(f) and u(R,A,f[A]) for every non-null attribute, and value
/// nodes identified across FK-linked columns.
///
/// Supports incremental extension (AddFact) so the dynamic Node2Vec setting
/// can grow the graph without touching existing node ids — a prerequisite
/// for freezing old embeddings.
class BipartiteGraph {
 public:
  /// Prepares column classes from the schema; no nodes yet. The database
  /// must outlive the graph.
  BipartiteGraph(const db::Database* database, GraphOptions options);

  /// Adds nodes/edges for every live fact in the database.
  Status BuildAll();

  /// Adds one fact (and any of its values not seen before) to the graph.
  /// Returns the ids of newly created nodes, the fact node first.
  Result<std::vector<NodeId>> AddFact(db::FactId fact);

  size_t num_nodes() const { return adjacency_.size(); }
  size_t num_edges() const { return num_edges_; }

  /// Neighbor list, sorted ascending (enables O(log d) HasEdge).
  const std::vector<NodeId>& Neighbors(NodeId n) const {
    return adjacency_[n];
  }
  size_t Degree(NodeId n) const { return adjacency_[n].size(); }
  bool HasEdge(NodeId a, NodeId b) const;

  bool IsFactNode(NodeId n) const { return fact_of_[n] != db::kNoFact; }
  /// The fact behind a fact node (kNoFact for value nodes).
  db::FactId FactOf(NodeId n) const { return fact_of_[n]; }
  /// The node of a fact, or kNoNode if the fact was never added.
  NodeId NodeOfFact(db::FactId f) const;

  /// Every fact with a node, unordered — callers that need determinism
  /// sort (see n2v::Node2VecEmbedding::EmbeddedFacts).
  const std::unordered_map<db::FactId, NodeId>& fact_nodes() const {
    return fact_node_;
  }

  /// The canonical column class of (rel, attr) after FK identification.
  int ColumnClass(db::RelationId rel, db::AttrId attr) const;

  /// Debug label ("fact:MOVIES#3" / "val:<class>:<value>").
  std::string NodeLabel(NodeId n) const;

 private:
  NodeId NewNode(db::FactId fact);
  void AddEdge(NodeId a, NodeId b);
  NodeId ValueNode(int column_class, const db::Value& v);

  struct ClassValueKey {
    int column_class;
    db::Value value;
    bool operator==(const ClassValueKey& o) const {
      return column_class == o.column_class && value == o.value;
    }
  };
  struct ClassValueKeyHash {
    size_t operator()(const ClassValueKey& k) const {
      return k.value.Hash() * 1315423911u + static_cast<size_t>(k.column_class);
    }
  };

  const db::Database* db_;
  GraphOptions options_;

  /// Union-find over global column indices (rel-offset + attr).
  std::vector<int> column_parent_;
  std::vector<size_t> rel_column_offset_;
  int FindClass(int idx) const;

  std::vector<std::vector<NodeId>> adjacency_;
  std::vector<db::FactId> fact_of_;
  size_t num_edges_ = 0;

  std::unordered_map<db::FactId, NodeId> fact_node_;
  std::unordered_map<ClassValueKey, NodeId, ClassValueKeyHash> value_node_;
};

}  // namespace stedb::graph

#endif  // STEDB_GRAPH_BIPARTITE_GRAPH_H_
