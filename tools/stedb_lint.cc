// stedb_lint: project-specific static checks for the invariants generic
// tools cannot express — the determinism and wait-free contracts that
// BUILDING.md states in prose and CI enforces through this binary.
//
// Rules (each can be silenced per line with
// `// stedb:lint-exempt(<rule>): <reason>` on the offending line or the
// line directly above; an empty reason or an unknown rule id is itself
// an error):
//
//   determinism-kernel   src/la/**: no rand()/srand()/random_device and
//                        no std::chrono — kernel results must be a pure
//                        function of their inputs.
//   deterministic-output files tagged `// stedb:deterministic-output`
//                        must not iterate a std::unordered_map/set
//                        (iteration order would leak into golden output).
//   wait-free            regions between `// stedb:wait-free-begin` and
//                        `// stedb:wait-free-end` must not take a lock
//                        of any kind.
//   wait-free-coverage   the files whose contracts *are* wait-free
//                        (obs/metrics, fwd/dist_cache) must declare at
//                        least one such region, so the wait-free rule
//                        cannot be silently detached from them.
//   store-io             no fsync/fdatasync/fwrite outside src/store/ —
//                        durability decisions belong to the store layer.
//   metric-name          names registered via GetCounter/GetGauge/
//                        GetHistogram must match stedb_[a-z][a-z0-9_]*;
//                        counters end in _total, other types never do.
//   mutex-annotation     no raw std::mutex / std::shared_mutex in src/
//                        outside common/thread_annotations.h — locks are
//                        declared through the capability wrappers so the
//                        clang thread-safety lane can see them.
//
// Usage: stedb_lint [--root DIR] [file...]
//   With no file arguments, lints every .h/.cc under <root>/src. With
//   file arguments (absolute or root-relative), lints exactly those —
//   the changed-files mode scripts/run_tidy.sh mirrors.
// Output: `path:line: rule: message`, one finding per line, sorted;
// exit status 1 when anything was found, 0 on a clean tree.
//
// Deliberately a line-based scanner, not a parser: every rule is a
// token-level property, and the fixture corpus in tests/lint_fixtures/
// pins the exact findings (including exemption handling), so behavior
// changes cannot land silently.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string path;  // root-relative, forward slashes
  size_t line = 0;   // 1-based
  std::string rule;
  std::string message;
};

struct FileData {
  std::string rel;
  std::vector<std::string> raw;   // as read
  std::vector<std::string> lit;   // comments blanked, literals kept
  std::vector<std::string> code;  // comments and literal bodies blanked
};

const char* const kRules[] = {
    "determinism-kernel", "deterministic-output", "wait-free",
    "wait-free-coverage", "store-io",             "metric-name",
    "mutex-annotation",
};

bool KnownRule(const std::string& rule) {
  for (const char* r : kRules) {
    if (rule == r) return true;
  }
  return false;
}

bool IsWordChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

/// True when `needle` occurs in `line` as a whole token: the characters
/// adjacent to the match are not identifier characters (so `rand` does
/// not fire inside `operand`, nor `MutexLock` inside `UniqueMutexLock`).
bool HasToken(const std::string& line, const std::string& needle) {
  size_t pos = 0;
  while ((pos = line.find(needle, pos)) != std::string::npos) {
    const bool left_ok =
        pos == 0 || !IsWordChar(line[pos - 1]) ||
        !IsWordChar(needle.front());
    const size_t end = pos + needle.size();
    const bool right_ok = end >= line.size() || !IsWordChar(line[end]) ||
                          !IsWordChar(needle.back());
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

/// Blanks //-comments and /*...*/ comments, keeping string/char literals
/// intact (string contents are parsed so `//` inside a literal is not a
/// comment). `in_block` carries the /*-state across lines. When
/// `keep_literals` is false the literal bodies are blanked too, which is
/// what the token rules scan — they must not fire on message text.
std::string StripLine(const std::string& line, bool* in_block,
                      bool keep_literals) {
  std::string out;
  out.reserve(line.size());
  size_t i = 0;
  while (i < line.size()) {
    if (*in_block) {
      if (line.compare(i, 2, "*/") == 0) {
        *in_block = false;
        out += "  ";
        i += 2;
      } else {
        out.push_back(' ');
        ++i;
      }
      continue;
    }
    const char c = line[i];
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
      break;  // rest of the line is a comment
    }
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
      *in_block = true;
      out += "  ";
      i += 2;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      out.push_back(quote);
      ++i;
      while (i < line.size()) {
        if (line[i] == '\\' && i + 1 < line.size()) {
          if (keep_literals) {
            out.push_back(line[i]);
            out.push_back(line[i + 1]);
          } else {
            out += "  ";
          }
          i += 2;
          continue;
        }
        if (line[i] == quote) break;
        out.push_back(keep_literals ? line[i] : ' ');
        ++i;
      }
      if (i < line.size()) {
        out.push_back(quote);
        ++i;
      }
      continue;
    }
    out.push_back(c);
    ++i;
  }
  return out;
}

/// First "..." literal in `line` at or after `from`; empty-and-npos when
/// none. Works on the raw line (code lines have literal bodies blanked).
size_t FirstStringLiteral(const std::string& line, size_t from,
                          std::string* value) {
  const size_t open = line.find('"', from);
  if (open == std::string::npos) return std::string::npos;
  const size_t close = line.find('"', open + 1);
  if (close == std::string::npos) return std::string::npos;
  *value = line.substr(open + 1, close - open - 1);
  return open;
}

bool ValidMetricName(const std::string& name) {
  if (name.rfind("stedb_", 0) != 0) return false;
  if (name.size() <= 6) return false;
  if (!(name[6] >= 'a' && name[6] <= 'z')) return false;
  for (size_t i = 7; i < name.size(); ++i) {
    const char c = name[i];
    if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_')) {
      return false;
    }
  }
  return true;
}

/// True when `line` is a marker comment: optional indentation, `//`,
/// then the marker text immediately. Prose that merely mentions a marker
/// mid-sentence does not count.
bool IsMarkerLine(const std::string& line, const char* marker) {
  size_t i = 0;
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  if (line.compare(i, 2, "//") != 0) return false;
  i += 2;
  while (i < line.size() && line[i] == ' ') ++i;
  return line.compare(i, std::strlen(marker), marker) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

class Linter {
 public:
  explicit Linter(std::string root) : root_(std::move(root)) {}

  bool LoadFile(const std::string& rel_path);
  void Run();
  const std::vector<Finding>& findings() const { return findings_; }

 private:
  void Report(const FileData& f, size_t line_idx, const char* rule,
              std::string message);
  void ParseExemptions(const FileData& f);
  void CollectUnorderedDecls(const FileData& f);
  void CheckTokens(const FileData& f);
  void CheckWaitFreeRegions(const FileData& f);
  void CheckDeterministicOutput(const FileData& f);
  void CheckMetricNames(const FileData& f);
  void CheckCoverage();

  std::string root_;
  std::vector<FileData> files_;
  std::vector<Finding> findings_;
  /// (rel path, 1-based line) -> rules exempted on that line.
  std::map<std::pair<std::string, size_t>, std::set<std::string>> exempt_;
  /// Identifiers declared as std::unordered_{map,set} anywhere scanned.
  std::set<std::string> unordered_names_;
};

bool Linter::LoadFile(const std::string& rel_path) {
  const fs::path full = fs::path(root_) / rel_path;
  std::ifstream in(full);
  if (!in) {
    std::fprintf(stderr, "stedb_lint: cannot read %s\n",
                 full.string().c_str());
    return false;
  }
  FileData f;
  f.rel = rel_path;
  std::replace(f.rel.begin(), f.rel.end(), '\\', '/');
  std::string line;
  bool in_block = false;
  bool in_block_lit = false;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    f.raw.push_back(line);
    f.lit.push_back(StripLine(line, &in_block_lit, /*keep_literals=*/true));
    f.code.push_back(StripLine(line, &in_block, /*keep_literals=*/false));
  }
  files_.push_back(std::move(f));
  return true;
}

void Linter::Report(const FileData& f, size_t line_idx, const char* rule,
                    std::string message) {
  // An exemption on the finding's line or the line directly above
  // silences it (the validity of the exemption itself was checked in
  // ParseExemptions).
  const size_t line_no = line_idx + 1;
  for (size_t l = (line_no > 1 ? line_no - 1 : line_no); l <= line_no; ++l) {
    auto it = exempt_.find({f.rel, l});
    if (it != exempt_.end() && it->second.count(rule) > 0) return;
  }
  findings_.push_back(Finding{f.rel, line_no, rule, std::move(message)});
}

void Linter::ParseExemptions(const FileData& f) {
  static const std::string kTag = "stedb:lint-exempt(";
  for (size_t i = 0; i < f.raw.size(); ++i) {
    const size_t pos = f.raw[i].find(kTag);
    if (pos == std::string::npos) continue;
    const size_t open = pos + kTag.size();
    const size_t close = f.raw[i].find(')', open);
    if (close == std::string::npos) {
      findings_.push_back(Finding{f.rel, i + 1, "bad-exemption",
                                  "malformed lint-exempt marker"});
      continue;
    }
    const std::string rule = f.raw[i].substr(open, close - open);
    if (!KnownRule(rule)) {
      findings_.push_back(
          Finding{f.rel, i + 1, "bad-exemption",
                  "lint-exempt names unknown rule '" + rule + "'"});
      continue;
    }
    // Everything after "): " must be a non-empty justification.
    std::string reason = f.raw[i].substr(close + 1);
    if (!reason.empty() && reason[0] == ':') reason.erase(0, 1);
    while (!reason.empty() && reason.front() == ' ') reason.erase(0, 1);
    if (reason.empty()) {
      findings_.push_back(
          Finding{f.rel, i + 1, "bad-exemption",
                  "lint-exempt(" + rule + ") carries no justification"});
      continue;
    }
    exempt_[{f.rel, i + 1}].insert(rule);
  }
}

void Linter::CollectUnorderedDecls(const FileData& f) {
  for (size_t i = 0; i < f.code.size(); ++i) {
    for (const char* kw : {"unordered_map", "unordered_set"}) {
      size_t pos = f.code[i].find(kw);
      while (pos != std::string::npos) {
        // Walk the template argument list (possibly spanning lines) to
        // its closing '>', then take the next identifier as the declared
        // name.
        size_t line_idx = i;
        size_t j = pos + std::strlen(kw);
        std::string joined = f.code[line_idx];
        while (j < joined.size() && joined[j] != '<') ++j;
        int depth = 0;
        bool in_args = false;
        for (size_t guard = 0; guard < 2000; ++guard) {
          if (j >= joined.size()) {
            if (++line_idx >= f.code.size()) break;
            joined += ' ';
            joined += f.code[line_idx];
            continue;
          }
          const char c = joined[j];
          if (c == '<') {
            ++depth;
            in_args = true;
          } else if (c == '>') {
            --depth;
            if (in_args && depth == 0) {
              ++j;
              break;
            }
          }
          ++j;
        }
        // Skip whitespace and ref/pointer sigils, then read the name.
        while (j < joined.size() &&
               (joined[j] == ' ' || joined[j] == '&' || joined[j] == '*')) {
          ++j;
        }
        std::string name;
        while (j < joined.size() && IsWordChar(joined[j])) {
          name.push_back(joined[j]);
          ++j;
        }
        if (!name.empty()) unordered_names_.insert(name);
        pos = f.code[i].find(kw, pos + 1);
      }
    }
  }
}

void Linter::CheckTokens(const FileData& f) {
  const bool in_src = f.rel.rfind("src/", 0) == 0;
  const bool is_la = f.rel.rfind("src/la/", 0) == 0;
  const bool is_store = f.rel.rfind("src/store/", 0) == 0;
  const bool is_annotations_header =
      f.rel == "src/common/thread_annotations.h";

  for (size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    if (in_src && !is_annotations_header) {
      for (const char* tok : {"std::mutex", "std::shared_mutex"}) {
        if (HasToken(line, tok)) {
          Report(f, i, "mutex-annotation",
                 std::string(tok) +
                     " outside thread_annotations.h; declare locks via "
                     "the stedb::Mutex capability wrappers");
        }
      }
    }
    if (is_la) {
      for (const char* tok :
           {"rand", "srand", "random_device", "std::chrono"}) {
        if (HasToken(line, tok)) {
          Report(f, i, "determinism-kernel",
                 std::string(tok) +
                     " in a la:: kernel file; kernel results must be a "
                     "pure function of their inputs");
        }
      }
    }
    if (in_src && !is_store) {
      for (const char* tok : {"fsync", "fdatasync", "fwrite"}) {
        if (HasToken(line, tok)) {
          Report(f, i, "store-io",
                 std::string(tok) +
                     " outside src/store/; durability calls belong to "
                     "the store layer");
        }
      }
    }
  }
}

void Linter::CheckWaitFreeRegions(const FileData& f) {
  static const char* const kLockTokens[] = {
      "std::mutex",     "std::shared_mutex", "lock_guard",
      "unique_lock",    "shared_lock",       "scoped_lock",
      "MutexLock",      "UniqueMutexLock",   "SharedMutexLock",
      "WriterMutexLock", "lock",             "try_lock",
  };
  bool in_region = false;
  size_t begin_line = 0;
  for (size_t i = 0; i < f.raw.size(); ++i) {
    const bool begins = IsMarkerLine(f.raw[i], "stedb:wait-free-begin");
    const bool ends = IsMarkerLine(f.raw[i], "stedb:wait-free-end");
    if (begins) {
      if (in_region) {
        Report(f, i, "wait-free", "nested wait-free-begin marker");
      }
      in_region = true;
      begin_line = i;
      continue;
    }
    if (ends) {
      if (!in_region) {
        Report(f, i, "wait-free", "wait-free-end without a begin marker");
      }
      in_region = false;
      continue;
    }
    if (!in_region) continue;
    for (const char* tok : kLockTokens) {
      if (HasToken(f.code[i], tok)) {
        Report(f, i, "wait-free",
               std::string(tok) +
                   " inside a wait-free region; record paths must stay "
                   "lock-free");
      }
    }
  }
  if (in_region) {
    Report(f, begin_line, "wait-free",
           "wait-free-begin never closed with wait-free-end");
  }
}

void Linter::CheckDeterministicOutput(const FileData& f) {
  bool tagged = false;
  for (const std::string& line : f.raw) {
    if (IsMarkerLine(line, "stedb:deterministic-output")) {
      tagged = true;
      break;
    }
  }
  if (!tagged) return;
  for (size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    for (const std::string& name : unordered_names_) {
      size_t pos = 0;
      while ((pos = line.find(name, pos)) != std::string::npos) {
        const bool left_ok = pos == 0 || !IsWordChar(line[pos - 1]);
        const size_t end = pos + name.size();
        const bool right_ok = end >= line.size() || !IsWordChar(line[end]);
        if (!left_ok || !right_ok) {
          pos += 1;
          continue;
        }
        // Range-for (`: name`) or explicit iteration (`name.begin()`).
        size_t before = pos;
        while (before > 0 && line[before - 1] == ' ') --before;
        const bool range_for =
            before > 0 && line[before - 1] == ':' &&
            (before < 2 || line[before - 2] != ':');
        const bool begin_call = line.compare(end, 7, ".begin(") == 0 ||
                                line.compare(end, 8, ".cbegin(") == 0 ||
                                line.compare(end, 8, ".rbegin(") == 0;
        if (range_for || begin_call) {
          Report(f, i, "deterministic-output",
                 "iterates unordered container '" + name +
                     "' in a file tagged stedb:deterministic-output");
        }
        pos = end;
      }
    }
  }
}

void Linter::CheckMetricNames(const FileData& f) {
  struct Kind {
    const char* token;
    bool is_counter;
  };
  static const Kind kKinds[] = {
      {"GetCounter", true}, {"GetGauge", false}, {"GetHistogram", false}};
  for (size_t i = 0; i < f.code.size(); ++i) {
    for (const Kind& kind : kKinds) {
      size_t pos = f.code[i].find(std::string(kind.token) + "(");
      if (pos == std::string::npos) continue;
      if (pos > 0 && IsWordChar(f.code[i][pos - 1])) continue;
      // The name is the first string literal within the next few lines
      // (call sites wrap); declarations have none and are skipped. The
      // search runs over comment-stripped lines so a quoted word in a
      // nearby comment cannot pose as the name.
      std::string name;
      size_t name_line = i;
      size_t from = pos;
      bool found = false;
      for (size_t l = i; l < f.lit.size() && l < i + 4; ++l) {
        if (FirstStringLiteral(f.lit[l], from, &name) !=
            std::string::npos) {
          name_line = l;
          found = true;
          break;
        }
        from = 0;
      }
      if (!found) continue;
      if (!ValidMetricName(name)) {
        Report(f, name_line, "metric-name",
               "metric '" + name +
                   "' does not match stedb_[a-z][a-z0-9_]*");
      } else if (kind.is_counter && !EndsWith(name, "_total")) {
        Report(f, name_line, "metric-name",
               "counter '" + name + "' must end in _total");
      } else if (!kind.is_counter && EndsWith(name, "_total")) {
        Report(f, name_line, "metric-name",
               "non-counter '" + name + "' must not end in _total");
      }
    }
  }
}

void Linter::CheckCoverage() {
  // The wait-free contracts these files document must stay visible to
  // the wait-free rule: each needs at least one marked region.
  static const char* const kRequired[] = {
      "src/obs/metrics.h",
      "src/obs/metrics.cc",
      "src/fwd/dist_cache.cc",
  };
  for (const FileData& f : files_) {
    for (const char* req : kRequired) {
      if (f.rel != req) continue;
      bool has_region = false;
      for (const std::string& line : f.raw) {
        if (IsMarkerLine(line, "stedb:wait-free-begin")) {
          has_region = true;
          break;
        }
      }
      if (!has_region) {
        Report(f, 0, "wait-free-coverage",
               "wait-free contract file declares no "
               "stedb:wait-free-begin region");
      }
    }
  }
}

void Linter::Run() {
  for (const FileData& f : files_) ParseExemptions(f);
  for (const FileData& f : files_) CollectUnorderedDecls(f);
  for (const FileData& f : files_) {
    CheckTokens(f);
    CheckWaitFreeRegions(f);
    CheckDeterministicOutput(f);
    CheckMetricNames(f);
  }
  CheckCoverage();
  std::sort(findings_.begin(), findings_.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::string> explicit_files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: stedb_lint [--root DIR] [file...]\n");
      return 0;
    } else {
      explicit_files.push_back(arg);
    }
  }

  std::vector<std::string> rel_files;
  if (!explicit_files.empty()) {
    for (std::string p : explicit_files) {
      // Accept both root-relative and root-prefixed spellings.
      const std::string prefix = root == "." ? "./" : root + "/";
      if (p.rfind(prefix, 0) == 0) p = p.substr(prefix.size());
      rel_files.push_back(std::move(p));
    }
  } else {
    const fs::path src = fs::path(root) / "src";
    if (!fs::exists(src)) {
      std::fprintf(stderr, "stedb_lint: no src/ under root %s\n",
                   root.c_str());
      return 2;
    }
    for (const auto& entry : fs::recursive_directory_iterator(src)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".cc") continue;
      rel_files.push_back(
          fs::relative(entry.path(), fs::path(root)).generic_string());
    }
  }
  std::sort(rel_files.begin(), rel_files.end());

  Linter linter(root);
  for (const std::string& rel : rel_files) {
    if (!linter.LoadFile(rel)) return 2;
  }
  linter.Run();
  for (const Finding& f : linter.findings()) {
    std::printf("%s:%zu: %s: %s\n", f.path.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  }
  if (!linter.findings().empty()) {
    std::fprintf(stderr, "stedb_lint: %zu finding(s)\n",
                 linter.findings().size());
    return 1;
  }
  return 0;
}
