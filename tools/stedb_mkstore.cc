// stedb_mkstore: train a FoRWaRD model on one of the synthetic paper
// datasets and write it out as a store directory (snapshot + empty WAL)
// ready for stedb_serve. This is the CI recipe for standing up a serving
// target without checking binary fixtures into the repo:
//
//   STEDB_SCALE=smoke stedb_mkstore /tmp/store --dataset=hepatitis
//   stedb_serve /tmp/store --port=0
//
// Honors STEDB_SCALE=smoke|default|paper for dataset size and
// hyperparameters, like the bench binaries.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/data/registry.h"
#include "src/exp/embedding_method.h"
#include "src/exp/static_experiment.h"
#include "src/fwd/codec.h"
#include "src/fwd/forward.h"

using namespace stedb;

namespace {

const char* FlagValue(const char* arg, const char* name) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') return arg + n + 1;
  return nullptr;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <store_dir> [--dataset=NAME] [--seed=N] [--ann]\n"
               "  NAME: one of the Table I synthetic datasets "
               "(hepatitis, genes, mutagenesis, world, mondial)\n"
               "  --ann builds a persisted HNSW similarity index into the "
               "snapshot\n"
               "  STEDB_SCALE=smoke|default|paper sizes the dataset and "
               "the training config\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  std::string dataset = "hepatitis";
  uint64_t seed = 7;
  bool build_ann = false;
  for (int i = 1; i < argc; ++i) {
    if (const char* v = FlagValue(argv[i], "--dataset")) {
      dataset = v;
    } else if (const char* v2 = FlagValue(argv[i], "--seed")) {
      seed = static_cast<uint64_t>(std::strtoull(v2, nullptr, 10));
    } else if (std::strcmp(argv[i], "--ann") == 0) {
      build_ann = true;
    } else if (argv[i][0] == '-') {
      return Usage(argv[0]);
    } else if (dir.empty()) {
      dir = argv[i];
    } else {
      return Usage(argv[0]);
    }
  }
  if (dir.empty()) return Usage(argv[0]);

  const exp::MethodConfig mcfg =
      exp::MethodConfig::ForScale(exp::ScaleFromEnv());
  data::GenConfig gen;
  gen.scale = mcfg.data_scale;
  gen.seed = seed;
  auto ds = data::MakeDataset(dataset, gen);
  if (!ds.ok()) {
    std::fprintf(stderr, "dataset %s: %s\n", dataset.c_str(),
                 ds.status().ToString().c_str());
    return 1;
  }

  fwd::ForwardConfig fcfg = mcfg.forward;
  fcfg.seed = seed;
  auto emb = fwd::ForwardEmbedder::TrainStatic(
      &ds.value().database, ds.value().pred_rel,
      exp::LabelExclusion(ds.value()), fcfg);
  if (!emb.ok()) {
    std::fprintf(stderr, "train: %s\n", emb.status().ToString().c_str());
    return 1;
  }

  store::StoreOptions options;
  options.build_ann_index = build_ann;
  auto created = fwd::CreateForwardStore(dir, emb.value().model(), options);
  if (!created.ok()) {
    std::fprintf(stderr, "store: %s\n", created.status().ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %zu vectors, dim %zu, %zu psi (dataset %s%s)\n",
              dir.c_str(), emb.value().model().num_embedded(),
              emb.value().model().dim(),
              emb.value().model().targets().size(), dataset.c_str(),
              build_ann ? ", +ann" : "");
  return 0;
}
