// stedb_serve: the networked embedding service — one store directory
// behind an HTTP endpoint (serve::EmbeddingService over a shared
// api::ServingSession). A trainer process keeps extending the same
// directory; the server's Poll ticker tails the WAL so clients see new
// facts within one poll interval, bit-identical to the trainer's model.
//
//   stedb_serve /path/to/store --port=8080
//   curl 'localhost:8080/embed?fact=17'
//   curl 'localhost:8080/topk?fact=17&k=5'
//   curl 'localhost:8080/stats'
//   curl 'localhost:8080/metrics'
//
// --port=0 binds an ephemeral port; the chosen port is printed as
// "serving on HOST:PORT" (line-buffered) so scripts can scrape it.
//
// Metrics without a scraper: --metrics-dump-sec=N writes the Prometheus
// exposition to stderr every N seconds, and SIGUSR1 triggers one dump on
// demand (`kill -USR1 $(pidof stedb_serve)`).
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>

#include "src/obs/metrics.h"
#include "src/serve/service.h"

using namespace stedb;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

volatile std::sig_atomic_t g_dump = 0;
void OnDumpSignal(int) { g_dump = 1; }

/// Renders the global registry to stderr as one atomic-ish write. Called
/// from the main loop only (the signal handler just sets a flag — no
/// allocation or I/O in signal context).
void DumpMetrics() {
  std::string text;
  obs::RenderPrometheus(&text);
  std::fwrite(text.data(), 1, text.size(), stderr);
  std::fflush(stderr);
}

const char* FlagValue(const char* arg, const char* name) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') return arg + n + 1;
  return nullptr;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <store_dir> [--host=127.0.0.1] [--port=8080]\n"
               "       [--threads=0] [--poll_ms=20] [--max_topk=1024]\n"
               "       [--ef-search=0] [--metrics-dump-sec=0]\n"
               "  --port=0 picks an ephemeral port (printed on stdout)\n"
               "  --threads=0 resolves via STEDB_THREADS, else hardware "
               "concurrency\n"
               "  --poll_ms=0 disables the WAL catch-up ticker\n"
               "  --ef-search=N sets /similar's HNSW beam width "
               "(0 = library default)\n"
               "  --metrics-dump-sec=N dumps /metrics text to stderr "
               "every N seconds\n"
               "  SIGUSR1 dumps metrics to stderr on demand\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  std::string host = "127.0.0.1";
  int port = 8080;
  int metrics_dump_sec = 0;
  serve::ServeOptions options;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if ((v = FlagValue(argv[i], "--host")) != nullptr) {
      host = v;
    } else if ((v = FlagValue(argv[i], "--port")) != nullptr) {
      port = std::atoi(v);
    } else if ((v = FlagValue(argv[i], "--threads")) != nullptr) {
      options.http_threads = std::atoi(v);
    } else if ((v = FlagValue(argv[i], "--poll_ms")) != nullptr) {
      options.poll_interval_ms = std::atoi(v);
    } else if ((v = FlagValue(argv[i], "--max_topk")) != nullptr) {
      options.max_topk = static_cast<size_t>(std::atoll(v));
    } else if ((v = FlagValue(argv[i], "--ef-search")) != nullptr) {
      options.ef_search = static_cast<size_t>(std::atoll(v));
    } else if ((v = FlagValue(argv[i], "--metrics-dump-sec")) != nullptr) {
      metrics_dump_sec = std::atoi(v);
    } else if (argv[i][0] == '-') {
      return Usage(argv[0]);
    } else if (dir.empty()) {
      dir = argv[i];
    } else {
      return Usage(argv[0]);
    }
  }
  if (dir.empty()) return Usage(argv[0]);

  auto service = serve::EmbeddingService::Open(dir, options);
  if (!service.ok()) {
    std::fprintf(stderr, "open %s: %s\n", dir.c_str(),
                 service.status().ToString().c_str());
    return 1;
  }
  Status started = service.value()->Start(host, port);
  if (!started.ok()) {
    std::fprintf(stderr, "start: %s\n", started.ToString().c_str());
    return 1;
  }
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  std::printf("serving on %s:%d (store %s, dim %zu)\n", host.c_str(),
              service.value()->port(), dir.c_str(),
              service.value()->dim());

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  std::signal(SIGUSR1, OnDumpSignal);
  // The 100ms wait quantum doubles as the periodic-dump clock: 10 ticks
  // per second, dump when the tick count crosses the configured period.
  uint64_t ticks = 0;
  const uint64_t dump_every_ticks =
      metrics_dump_sec > 0 ? static_cast<uint64_t>(metrics_dump_sec) * 10
                           : 0;
  while (g_stop == 0) {
    struct timespec ts = {0, 100 * 1000 * 1000};  // 100ms
    ::nanosleep(&ts, nullptr);
    ++ticks;
    if (g_dump != 0 ||
        (dump_every_ticks != 0 && ticks % dump_every_ticks == 0)) {
      g_dump = 0;
      DumpMetrics();
    }
  }

  service.value()->Stop();
  const serve::EmbeddingService::Stats stats = service.value()->stats();
  std::printf("stopped: %llu requests, %llu embeds (%llu coalesce rounds), "
              "%llu topk, %llu polls\n",
              static_cast<unsigned long long>(stats.http_requests),
              static_cast<unsigned long long>(stats.embeds),
              static_cast<unsigned long long>(stats.coalesce_rounds),
              static_cast<unsigned long long>(stats.topk_queries),
              static_cast<unsigned long long>(stats.polls));
  return 0;
}
