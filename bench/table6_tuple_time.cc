// Regenerates the paper's Table VI: average wall-clock seconds to embed one
// newly arrived tuple (training + inference), in the all-at-once and
// one-by-one setups.
//
// Shape expectation (paper): in the one-by-one setting FoRWaRD is
// significantly faster than Node2Vec on every dataset — Node2Vec must
// re-run gradient descent per arrival while FoRWaRD solves a linear
// system. "This insight was essential in the design of FoRWaRD."
#include "bench/bench_common.h"
#include "src/exp/dynamic_experiment.h"
#include "src/exp/report.h"

using namespace stedb;

int main(int argc, char** argv) {
  exp::RunScale scale = exp::ScaleFromEnv();
  exp::MethodConfig mcfg = exp::MethodConfig::ForScale(scale);
  bench::PrintHeader("Table VI", "average time to embed a new tuple", scale);

  exp::DynamicConfig dcfg;
  dcfg.new_ratio = 0.1;
  dcfg.runs = scale == exp::RunScale::kPaper ? 5 : 1;
  dcfg.check_stability = false;  // timing run

  exp::TableWriter table({"Task", "N2V (all at once)", "FWD (all at once)",
                          "N2V (one by one)", "FWD (one by one)"});
  for (const std::string& name : bench::SelectDatasets(argc, argv)) {
    data::GeneratedDataset ds = bench::MakeDatasetOrDie(
        name, scale == exp::RunScale::kPaper ? mcfg.data_scale
                                             : mcfg.data_scale * 0.6);
    std::vector<std::string> row = {name};
    for (bool one_by_one : {false, true}) {
      dcfg.one_by_one = one_by_one;
      for (const char* kind :
           {"node2vec", "forward"}) {
        auto res = exp::RunDynamicExperiment(ds, kind, mcfg, dcfg);
        row.push_back(res.ok()
                          ? exp::SecondsCell(
                                res.value().seconds_per_new_tuple)
                          : "-");
      }
    }
    table.AddRow(std::move(row));
    std::printf("%s done\n", name.c_str());
  }
  std::printf("\n%s\n", table.Render().c_str());
  std::printf("paper Table VI (s/tuple, all-at-once N2V/FWD then one-by-one "
              "N2V/FWD): hepatitis 0.265/0.620/0.679/0.111, genes "
              "0.062/0.176/0.173/0.079, mutagenesis 0.650/0.280/0.764/0.134, "
              "world 0.640/0.733/0.283/0.149, mondial "
              "1.550/1.090/1.710/0.385\n");
  return 0;
}
