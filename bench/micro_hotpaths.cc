// google-benchmark micro-benchmarks of the hot paths underlying the paper
// tables: walk sampling, exact destination distributions, kernel
// evaluation, the two least-squares solvers of the dynamic extension, SGNS
// updates, and database mutation primitives.
//
// On startup (before the registered benchmarks run) the binary also emits
// BENCH_parallel.json — serial vs. threaded wall-time for the three
// parallelized hot paths, plus scalar-vs-active timings of the dispatched
// SIMD kernels (la/kernels.h) — so the perf trajectory of the parallel
// runtime and the kernel layer is machine-readable from every CI run. Set STEDB_BENCH_JSON to choose
// the output path, or STEDB_BENCH_JSON=off to skip the emission. Use
// --benchmark_filter=NoSuchBenchmark to emit the report without running
// the micro-benchmarks.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "src/common/parallel.h"
#include "src/common/timer.h"
#include "src/data/registry.h"
#include "src/db/cascade.h"
#include "src/fwd/forward.h"
#include "src/fwd/walk_distribution.h"
#include "src/fwd/walk_sampler.h"
#include "src/graph/alias_sampler.h"
#include "src/graph/bipartite_graph.h"
#include "src/graph/walker.h"
#include "src/la/kernels.h"
#include "src/la/row_batch.h"
#include "src/la/solve.h"
#include "src/la/svd.h"
#include "src/n2v/skipgram.h"

namespace stedb {
namespace {

const data::GeneratedDataset& Genes() {
  static const data::GeneratedDataset* ds = [] {
    data::GenConfig cfg;
    cfg.scale = 0.15;
    cfg.seed = 3;
    return new data::GeneratedDataset(
        std::move(data::MakeGenes(cfg)).value());
  }();
  return *ds;
}

void BM_WalkSample(benchmark::State& state) {
  const data::GeneratedDataset& ds = Genes();
  fwd::WalkSampler sampler(&ds.database);
  auto schemes = fwd::EnumerateWalkSchemes(ds.database.schema(),
                                           ds.pred_rel,
                                           static_cast<int>(state.range(0)));
  const auto& facts = ds.Samples();
  Rng rng(1);
  size_t i = 0;
  for (auto _ : state) {
    const fwd::WalkScheme& s = schemes[i % schemes.size()];
    benchmark::DoNotOptimize(
        sampler.SampleDestination(s, facts[i % facts.size()], rng));
    ++i;
  }
}
BENCHMARK(BM_WalkSample)->Arg(1)->Arg(2)->Arg(3);

void BM_ExactDistribution(benchmark::State& state) {
  const data::GeneratedDataset& ds = Genes();
  fwd::WalkDistribution dist(&ds.database);
  auto schemes =
      fwd::EnumerateWalkSchemes(ds.database.schema(), ds.pred_rel, 2);
  auto targets = fwd::BuildTargets(ds.database.schema(), schemes, {});
  const auto& facts = ds.Samples();
  size_t i = 0;
  for (auto _ : state) {
    const auto& t = targets[i % targets.size()];
    benchmark::DoNotOptimize(dist.Exact(schemes[t.scheme_index], t.attr,
                                        facts[i % facts.size()]));
    ++i;
  }
}
BENCHMARK(BM_ExactDistribution);

void BM_KernelGaussian(benchmark::State& state) {
  fwd::GaussianKernel kernel(2.0);
  Rng rng(2);
  db::Value a = db::Value::Real(rng.NextGaussian());
  db::Value b = db::Value::Real(rng.NextGaussian());
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel.Evaluate(a, b));
  }
}
BENCHMARK(BM_KernelGaussian);

void BM_RidgeSolve(benchmark::State& state) {
  const size_t d = state.range(0);
  Rng rng(3);
  la::Matrix c = la::Matrix::RandomGaussian(d * 8, d, 1.0, rng);
  la::Vector b = la::RandomVector(d * 8, 1.0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::RidgeLeastSquares(c, b, 1e-8));
  }
}
BENCHMARK(BM_RidgeSolve)->Arg(16)->Arg(32)->Arg(64);

void BM_PinvSolve(benchmark::State& state) {
  const size_t d = state.range(0);
  Rng rng(4);
  la::Matrix n = la::Matrix::RandomGaussian(d, d, 1.0, rng);
  la::Matrix spd = n.Transposed().Multiply(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::PseudoInverse(spd));
  }
}
BENCHMARK(BM_PinvSolve)->Arg(16)->Arg(32);

void BM_SgnsEpoch(benchmark::State& state) {
  Rng rng(5);
  n2v::SkipGramConfig cfg;
  cfg.dim = state.range(0);
  cfg.negatives = 8;
  n2v::SkipGramModel model(64, cfg, rng);
  std::vector<std::vector<graph::NodeId>> walks;
  for (int w = 0; w < 32; ++w) {
    std::vector<graph::NodeId> walk;
    for (int i = 0; i < 12; ++i) {
      walk.push_back(static_cast<graph::NodeId>(rng.NextIndex(64)));
    }
    walks.push_back(std::move(walk));
  }
  n2v::NodeVocab vocab(64);
  vocab.CountWalks(walks);
  vocab.BuildNoiseTable();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Train(walks, vocab, 1, rng));
  }
}
BENCHMARK(BM_SgnsEpoch)->Arg(16)->Arg(64);

void BM_AliasSample(benchmark::State& state) {
  Rng rng(6);
  std::vector<double> weights(1024);
  for (double& w : weights) w = rng.NextDouble() + 0.01;
  graph::AliasSampler sampler(weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(rng));
  }
}
BENCHMARK(BM_AliasSample);

void BM_BilinearForm(benchmark::State& state) {
  const size_t d = state.range(0);
  Rng rng(7);
  la::Matrix m = la::Matrix::RandomSymmetric(d, 1.0, rng);
  la::Vector x = la::RandomVector(d, 1.0, rng);
  la::Vector y = la::RandomVector(d, 1.0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::BilinearForm(x, m, y));
  }
}
BENCHMARK(BM_BilinearForm)->Arg(32)->Arg(100);

// ---- SIMD kernel layer (la/kernels.h) ---------------------------------
// Registered benchmarks run whatever path the dispatcher picked (or
// STEDB_SIMD forces); the JSON report below times scalar vs. active
// explicitly.

void BM_KernelDot(benchmark::State& state) {
  const size_t d = state.range(0);
  Rng rng(13);
  la::Vector a = la::RandomVector(d, 1.0, rng);
  la::Vector b = la::RandomVector(d, 1.0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::Dot(a.data(), b.data(), d));
  }
  state.SetLabel(la::ActiveSimdPathName());
}
BENCHMARK(BM_KernelDot)->Arg(16)->Arg(64)->Arg(128)->Arg(512);

void BM_KernelAxpy(benchmark::State& state) {
  const size_t d = state.range(0);
  Rng rng(14);
  la::Vector a = la::RandomVector(d, 1.0, rng);
  la::Vector b = la::RandomVector(d, 1.0, rng);
  for (auto _ : state) {
    la::Axpy(1e-9, b.data(), a.data(), d);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetLabel(la::ActiveSimdPathName());
}
BENCHMARK(BM_KernelAxpy)->Arg(16)->Arg(64)->Arg(128)->Arg(512);

void BM_KernelBilinear(benchmark::State& state) {
  const size_t d = state.range(0);
  Rng rng(15);
  la::Matrix m = la::Matrix::RandomGaussian(d, d, 1.0, rng);
  la::Vector x = la::RandomVector(d, 1.0, rng);
  la::Vector y = la::RandomVector(d, 1.0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        la::BilinearForm(x.data(), m.data().data(), y.data(), d, d));
  }
  state.SetLabel(la::ActiveSimdPathName());
}
BENCHMARK(BM_KernelBilinear)->Arg(16)->Arg(64)->Arg(128)->Arg(512);

void BM_KernelGather(benchmark::State& state) {
  const size_t d = state.range(0);
  constexpr size_t kRows = 256;
  Rng rng(16);
  la::Matrix src = la::Matrix::RandomGaussian(kRows, d, 1.0, rng);
  la::Matrix out(kRows, d);
  std::vector<size_t> perm(kRows);
  for (size_t i = 0; i < kRows; ++i) perm[i] = rng.NextIndex(kRows);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::GatherRows(
        kRows, d, 1, out,
        [&](size_t i) { return src.RowPtr(perm[i]); }));
  }
  state.SetLabel(la::ActiveSimdPathName());
}
BENCHMARK(BM_KernelGather)->Arg(16)->Arg(64)->Arg(128)->Arg(512);

void BM_InsertDelete(benchmark::State& state) {
  data::GenConfig cfg;
  cfg.scale = 0.1;
  data::GeneratedDataset ds = std::move(data::MakeGenes(cfg)).value();
  int64_t n = 0;
  for (auto _ : state) {
    auto id = ds.database.Insert(
        "CLASSIFICATION",
        {db::Value::Text("bench" + std::to_string(n++)),
         db::Value::Text("loc00000")});
    benchmark::DoNotOptimize(id);
    (void)ds.database.Delete(id.value());
  }
}
BENCHMARK(BM_InsertDelete);

void BM_CascadeRoundTrip(benchmark::State& state) {
  data::GenConfig cfg;
  cfg.scale = 0.08;
  data::GeneratedDataset ds = std::move(data::MakeMutagenesis(cfg)).value();
  Rng rng(8);
  for (auto _ : state) {
    const auto& facts = ds.database.FactsOf(ds.pred_rel);
    db::FactId victim = facts[rng.NextIndex(facts.size())];
    auto batch = db::CascadeDelete(ds.database, victim);
    benchmark::DoNotOptimize(batch);
    (void)db::ReinsertBatch(ds.database, batch.value());
  }
}
BENCHMARK(BM_CascadeRoundTrip);

void BM_ForwardExtendOneTuple(benchmark::State& state) {
  data::GenConfig cfg;
  cfg.scale = 0.08;
  data::GeneratedDataset ds = std::move(data::MakeGenes(cfg)).value();
  fwd::ForwardConfig fcfg;
  fcfg.dim = 24;
  fcfg.nsamples = 16;
  fcfg.epochs = 4;
  fcfg.max_walk_len = 2;
  fcfg.new_samples = 60;
  fwd::AttrKeySet excluded;
  excluded.insert({ds.pred_rel, ds.pred_attr});
  auto emb = fwd::ForwardEmbedder::TrainStatic(&ds.database, ds.pred_rel,
                                               excluded, fcfg);
  fwd::ForwardEmbedder embedder = std::move(emb).value();
  Rng rng(9);
  for (auto _ : state) {
    state.PauseTiming();
    const auto& facts = ds.database.FactsOf(ds.pred_rel);
    db::FactId victim = facts[rng.NextIndex(facts.size())];
    auto batch = db::CascadeDelete(ds.database, victim).value();
    auto ids = db::ReinsertBatch(ds.database, batch).value();
    state.ResumeTiming();
    benchmark::DoNotOptimize(embedder.ExtendToFacts(ids));
  }
}
BENCHMARK(BM_ForwardExtendOneTuple);

// ---- Parallel hot paths: the three pipelines the runtime accelerates. ----
// Timed once per thread count for the JSON report, and registered as
// regular benchmarks (Arg = thread count) for interactive runs. Results
// are bit-identical across thread counts; only the wall time may differ.

double TimeForwardTrain(int threads) {
  const data::GeneratedDataset& ds = Genes();
  fwd::ForwardConfig cfg;
  cfg.dim = 16;
  cfg.nsamples = 12;
  cfg.epochs = 2;
  cfg.max_walk_len = 2;
  cfg.threads = threads;
  fwd::AttrKeySet excluded;
  excluded.insert({ds.pred_rel, ds.pred_attr});
  Timer t;
  auto emb = fwd::ForwardEmbedder::TrainStatic(&ds.database, ds.pred_rel,
                                               excluded, cfg);
  if (!emb.ok()) return -1.0;
  return t.ElapsedSeconds();
}

double TimeWalkCorpus(int threads) {
  const data::GeneratedDataset& ds = Genes();
  graph::GraphOptions gopt;
  gopt.excluded_columns.insert({ds.pred_rel, ds.pred_attr});
  graph::BipartiteGraph graph(&ds.database, gopt);
  if (!graph.BuildAll().ok()) return -1.0;
  graph::WalkConfig wc;
  wc.walk_length = 15;
  wc.walks_per_node = 10;
  wc.threads = threads;
  graph::Node2VecWalker walker(&graph, wc);
  Rng rng(11);
  Timer t;
  benchmark::DoNotOptimize(walker.AllWalks(rng));
  return t.ElapsedSeconds();
}

double TimeSgnsEpochs(int threads) {
  Rng rng(12);
  n2v::SkipGramConfig cfg;
  cfg.dim = 64;
  cfg.negatives = 8;
  cfg.threads = threads;
  constexpr size_t kNodes = 512;
  n2v::SkipGramModel model(kNodes, cfg, rng);
  std::vector<std::vector<graph::NodeId>> walks;
  for (int w = 0; w < 256; ++w) {
    std::vector<graph::NodeId> walk;
    for (int i = 0; i < 16; ++i) {
      walk.push_back(static_cast<graph::NodeId>(rng.NextIndex(kNodes)));
    }
    walks.push_back(std::move(walk));
  }
  n2v::NodeVocab vocab(kNodes);
  vocab.CountWalks(walks);
  vocab.BuildNoiseTable();
  Timer t;
  benchmark::DoNotOptimize(model.Train(walks, vocab, 2, rng));
  return t.ElapsedSeconds();
}

void BM_ForwardTrainStatic(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        TimeForwardTrain(static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_ForwardTrainStatic)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_WalkCorpus(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        TimeWalkCorpus(static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_WalkCorpus)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_SgnsEpochsThreaded(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        TimeSgnsEpochs(static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_SgnsEpochsThreaded)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

/// Calibrated wall-clock nanoseconds per invocation of `op`: the repeat
/// count quadruples until a run lasts at least 10 ms, so short kernels are
/// not timed at clock resolution.
template <typename Fn>
double NsPerOp(const Fn& op) {
  op();  // warm caches and the dispatch pointer
  for (int iters = 64;; iters *= 4) {
    Timer t;
    for (int i = 0; i < iters; ++i) op();
    const double s = t.ElapsedSeconds();
    if (s > 0.01 || iters >= (1 << 26)) {
      return s * 1e9 / static_cast<double>(iters);
    }
  }
}

struct KernelTiming {
  std::string name;
  size_t dim;
  double scalar_ns;
  double active_ns;
};

/// Times the four kernel shapes of the report (dot, axpy, bilinear, row
/// gather) at the canonical dims, once with the dispatch forced to scalar
/// and once on the path the dispatcher actually picked. The active path is
/// restored afterwards.
std::vector<KernelTiming> TimeKernels() {
  const la::SimdPath active = la::ActiveSimdPath();
  std::vector<KernelTiming> out;
  Rng rng(17);
  constexpr size_t kGatherRows = 256;
  for (size_t d : {16u, 64u, 128u, 512u}) {
    la::Vector a = la::RandomVector(d, 1.0, rng);
    la::Vector b = la::RandomVector(d, 1.0, rng);
    la::Matrix m = la::Matrix::RandomGaussian(d, d, 1.0, rng);
    la::Matrix src = la::Matrix::RandomGaussian(kGatherRows, d, 1.0, rng);
    la::Matrix gout(kGatherRows, d);
    std::vector<size_t> perm(kGatherRows);
    for (size_t i = 0; i < kGatherRows; ++i) {
      perm[i] = rng.NextIndex(kGatherRows);
    }

    struct Op {
      const char* name;
      std::function<void()> run;
    };
    const Op ops[] = {
        {"dot",
         [&] { benchmark::DoNotOptimize(la::Dot(a.data(), b.data(), d)); }},
        {"axpy",
         [&] {
           la::Axpy(1e-9, b.data(), a.data(), d);
           benchmark::DoNotOptimize(a.data());
         }},
        {"bilinear",
         [&] {
           benchmark::DoNotOptimize(
               la::BilinearForm(a.data(), m.data().data(), b.data(), d, d));
         }},
        {"gather",
         [&] {
           benchmark::DoNotOptimize(la::GatherRows(
               kGatherRows, d, 1, gout,
               [&](size_t i) { return src.RowPtr(perm[i]); }));
         }},
    };
    for (const Op& op : ops) {
      KernelTiming kt;
      kt.name = std::string(op.name) + "_d" + std::to_string(d);
      kt.dim = d;
      la::internal::ForceSimdPathForTest(la::SimdPath::kScalar);
      kt.scalar_ns = NsPerOp(op.run);
      la::internal::ForceSimdPathForTest(active);
      kt.active_ns = NsPerOp(op.run);
      out.push_back(std::move(kt));
    }
  }
  la::internal::ForceSimdPathForTest(active);
  return out;
}

/// Writes BENCH_parallel.json: serial vs. threaded wall time per hot path.
/// The explicit per-run thread counts are never overridden by
/// STEDB_THREADS (explicit pins win, see ResolveThreadCount). When a hot
/// path fails to run, nothing is written (CI catches the missing artifact)
/// and a warning goes to stderr — the registered benchmarks still run.
void EmitParallelJson() {
  const char* out_env = std::getenv("STEDB_BENCH_JSON");
  std::string path = out_env != nullptr && *out_env != '\0'
                         ? out_env
                         : "BENCH_parallel.json";
  if (path == "off" || path == "0") return;

  const int threaded = 4;
  struct HotPath {
    const char* name;
    double (*run)(int threads);
    double serial = 0.0;
    double parallel = 0.0;
  };
  HotPath paths[] = {
      {"forward_train_static", &TimeForwardTrain},
      {"n2v_walk_corpus", &TimeWalkCorpus},
      {"sgns_epochs", &TimeSgnsEpochs},
  };
  for (HotPath& hp : paths) {
    hp.serial = hp.run(1);
    hp.parallel = hp.run(threaded);
    if (hp.serial < 0.0 || hp.parallel < 0.0) {
      std::fprintf(stderr, "BENCH_parallel.json: hot path %s failed\n",
                   hp.name);
      return;
    }
  }

  const std::vector<KernelTiming> kernels = TimeKernels();

  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "BENCH_parallel.json: cannot open %s\n",
                 path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"parallel_hotpaths\",\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"threads\": %d,\n  \"hot_paths\": [\n",
               std::thread::hardware_concurrency(), threaded);
  bool first = true;
  for (const HotPath& hp : paths) {
    std::fprintf(
        f,
        "%s    {\"name\": \"%s\", \"serial_seconds\": %.6f, "
        "\"parallel_seconds\": %.6f, \"speedup\": %.3f}",
        first ? "" : ",\n", hp.name, hp.serial, hp.parallel,
        hp.parallel > 0.0 ? hp.serial / hp.parallel : 0.0);
    first = false;
  }
  // The SIMD kernel section: per-kernel scalar vs. active-path time. The
  // "speedup" field (scalar / active) is what bench_compare.py tracks —
  // bigger is better, and it is 1.0 by construction on machines where the
  // dispatcher picked scalar.
  std::fprintf(f,
               "\n  ],\n  \"simd\": {\n    \"active_path\": \"%s\",\n"
               "    \"kernels\": [\n",
               la::ActiveSimdPathName());
  first = true;
  for (const KernelTiming& kt : kernels) {
    std::fprintf(
        f,
        "%s      {\"name\": \"%s\", \"dim\": %zu, \"scalar_ns\": %.2f, "
        "\"active_ns\": %.2f, \"speedup\": %.3f}",
        first ? "" : ",\n", kt.name.c_str(), kt.dim, kt.scalar_ns,
        kt.active_ns, kt.active_ns > 0.0 ? kt.scalar_ns / kt.active_ns : 0.0);
    first = false;
  }
  std::fprintf(f, "\n    ]\n  }\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace stedb

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  stedb::EmitParallelJson();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
