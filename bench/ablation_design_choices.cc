// Ablation bench for the design choices called out in DESIGN.md §3/§5 (E8):
//
//  A. Node2Vec graph: FK column identification on/off (paper Section IV
//     argues identification is the semantically correct encoding).
//  B. FoRWaRD: maximum walk-scheme length lmax in {1, 2, 3}.
//  C. FoRWaRD: KD estimator — the paper's single-sample Eq. 5 vs
//     multi-sample averaging vs exact cached distributions (this repo's
//     default; see DESIGN.md §3).
//  D. Dynamic extension solver: pseudoinverse (paper Eq. 10) vs ridge
//     normal equations.
//  E. Planted signal strength sweep — a generator sanity check: accuracy
//     must collapse to the majority baseline as signal -> 0.
#include "bench/bench_common.h"
#include "src/exp/dynamic_experiment.h"
#include "src/exp/report.h"
#include "src/exp/static_experiment.h"

using namespace stedb;

int main(int argc, char** argv) {
  exp::RunScale scale = exp::ScaleFromEnv();
  exp::MethodConfig mcfg = exp::MethodConfig::ForScale(scale);
  bench::PrintHeader("Ablations", "design-choice ablations on Genes", scale);
  const std::string dataset = argc > 1 ? argv[1] : "genes";

  data::GeneratedDataset ds =
      bench::MakeDatasetOrDie(dataset, mcfg.data_scale);
  exp::StaticConfig scfg;
  scfg.folds = 3;
  scfg.embedding_per_fold = false;

  auto run_static = [&](const std::string& kind, const exp::MethodConfig& cfg,
                        const data::GeneratedDataset& data) {
    auto res = exp::RunStaticExperiment(data, kind, cfg, scfg);
    return res.ok() ? exp::AccuracyCell(res.value().mean_accuracy,
                                        res.value().std_accuracy)
                    : std::string("-");
  };

  // A. FK identification in the Node2Vec graph.
  {
    exp::TableWriter table({"N2V graph", "accuracy"});
    exp::MethodConfig on = mcfg;
    on.node2vec.graph.identify_fk_columns = true;
    exp::MethodConfig off = mcfg;
    off.node2vec.graph.identify_fk_columns = false;
    table.AddRow({"FK identification ON (paper)",
                  run_static("node2vec", on, ds)});
    table.AddRow({"FK identification OFF",
                  run_static("node2vec", off, ds)});
    std::printf("A. Node2Vec FK column identification\n%s\n",
                table.Render().c_str());
  }

  // B. FoRWaRD lmax.
  {
    exp::TableWriter table({"lmax", "accuracy"});
    for (int lmax = 1; lmax <= 3; ++lmax) {
      exp::MethodConfig cfg = mcfg;
      cfg.forward.max_walk_len = lmax;
      table.AddRow({std::to_string(lmax),
                    run_static("forward", cfg, ds)});
    }
    std::printf("B. FoRWaRD maximum walk length\n%s\n",
                table.Render().c_str());
  }

  // C. KD estimator.
  {
    exp::TableWriter table({"KD estimator", "accuracy"});
    struct Case {
      const char* name;
      fwd::KdEstimator est;
    };
    for (const Case& c : {Case{"single-sample (paper Eq. 5)",
                               fwd::KdEstimator::kSingleSample},
                          Case{"multi-sample (8 draws)",
                               fwd::KdEstimator::kMultiSample},
                          Case{"exact cached (repo default)",
                               fwd::KdEstimator::kExactCached}}) {
      exp::MethodConfig cfg = mcfg;
      cfg.forward.kd_estimator = c.est;
      table.AddRow({c.name, run_static("forward", cfg, ds)});
    }
    std::printf("C. FoRWaRD KD estimator\n%s\n", table.Render().c_str());
  }

  // D. Dynamic solver.
  {
    exp::DynamicConfig dcfg;
    dcfg.new_ratio = 0.2;
    dcfg.runs = 2;
    exp::TableWriter table({"solver", "dynamic accuracy", "s/tuple"});
    for (bool pinv : {true, false}) {
      exp::MethodConfig cfg = mcfg;
      cfg.forward.use_pinv = pinv;
      auto res =
          exp::RunDynamicExperiment(ds, "forward", cfg,
                                    dcfg);
      table.AddRow(
          {pinv ? "pseudoinverse (paper Eq. 10)" : "ridge normal equations",
           res.ok() ? exp::AccuracyCell(res.value().mean_accuracy,
                                        res.value().std_accuracy)
                    : "-",
           res.ok() ? exp::SecondsCell(res.value().seconds_per_new_tuple)
                    : "-"});
    }
    std::printf("D. dynamic extension solver\n%s\n", table.Render().c_str());
  }

  // E. Signal sweep (generator sanity).
  {
    exp::TableWriter table({"planted signal", "FoRWaRD accuracy",
                            "majority"});
    for (double signal : {0.0, 0.4, 0.85}) {
      data::GenConfig gen;
      gen.scale = mcfg.data_scale;
      gen.seed = 97;
      gen.signal = signal;
      auto sds = data::MakeDataset(dataset, gen);
      if (!sds.ok()) continue;
      auto res = exp::RunStaticExperiment(
          sds.value(), "forward", mcfg, scfg);
      table.AddRow({exp::SecondsCell(signal).substr(0, 4),
                    res.ok() ? exp::AccuracyCell(res.value().mean_accuracy,
                                                 res.value().std_accuracy)
                             : "-",
                    res.ok() ? exp::AccuracyCell(
                                   res.value().majority_baseline, 0.0)
                             : "-"});
    }
    std::printf("E. planted signal strength\n%s\n", table.Render().c_str());
  }
  return 0;
}
