// Regenerates the paper's Table V: wall-clock seconds to compute the
// static embeddings with Node2Vec and FoRWaRD per dataset.
//
// Shape expectation (paper): Node2Vec is faster than FoRWaRD on every
// dataset in the static phase (the ordering, not the absolute seconds, is
// the reproduction target — the paper used a GPU).
#include "bench/bench_common.h"
#include "src/exp/report.h"
#include "src/exp/timing.h"

using namespace stedb;

int main(int argc, char** argv) {
  exp::RunScale scale = exp::ScaleFromEnv();
  exp::MethodConfig mcfg = exp::MethodConfig::ForScale(scale);
  bench::PrintHeader("Table V", "static embedding computation time", scale);

  exp::TableWriter table({"Task", "NODE2VEC", "FORWARD"});
  for (const std::string& name : bench::SelectDatasets(argc, argv)) {
    data::GeneratedDataset ds =
        bench::MakeDatasetOrDie(name, mcfg.data_scale);
    auto timing = exp::MeasureStaticTime(ds, mcfg, 5);
    if (!timing.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   timing.status().ToString().c_str());
      continue;
    }
    table.AddRow({name, exp::SecondsCell(timing.value().node2vec_seconds),
                  exp::SecondsCell(timing.value().forward_seconds)});
    std::printf("%s done\n", name.c_str());
  }
  std::printf("\n%s\n", table.Render().c_str());
  std::printf("paper Table V (seconds, N2V/FWD): hepatitis 189/540, genes "
              "78/204, mutagenesis 166/230, world 219/440, mondial "
              "462/810\n");
  return 0;
}
