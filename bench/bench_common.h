#ifndef STEDB_BENCH_BENCH_COMMON_H_
#define STEDB_BENCH_BENCH_COMMON_H_

// Shared setup for the paper-table bench binaries. Every binary honors
//   STEDB_SCALE=smoke|default|paper
// (dataset size + embedding hyperparameters; see MethodConfig::ForScale)
// and an optional dataset-name filter as argv[1].

#include <cstdio>
#include <string>
#include <vector>

#include "src/common/parallel.h"
#include "src/data/registry.h"
#include "src/exp/embedding_method.h"

namespace stedb::bench {

inline const char* ScaleName(exp::RunScale scale) {
  switch (scale) {
    case exp::RunScale::kSmoke:
      return "smoke";
    case exp::RunScale::kDefault:
      return "default";
    case exp::RunScale::kPaper:
      return "paper";
  }
  return "?";
}

/// Datasets to run: all five (Table I order) or the one named in argv[1].
inline std::vector<std::string> SelectDatasets(int argc, char** argv) {
  if (argc > 1) return {argv[1]};
  return data::DatasetNames();
}

/// Generates one dataset at the configured scale; exits on failure.
inline data::GeneratedDataset MakeDatasetOrDie(const std::string& name,
                                               double data_scale,
                                               uint64_t seed = 97) {
  data::GenConfig gen;
  gen.scale = data_scale;
  gen.seed = seed;
  auto ds = data::MakeDataset(name, gen);
  if (!ds.ok()) {
    std::fprintf(stderr, "dataset %s: %s\n", name.c_str(),
                 ds.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(ds).value();
}

inline void PrintHeader(const char* table, const char* description,
                        exp::RunScale scale) {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);  // live progress under tee
  std::printf("=== %s — %s ===\n", table, description);
  std::printf("(scale: %s; set STEDB_SCALE=smoke|default|paper; shapes, not "
              "absolute numbers, are the reproduction target)\n",
              ScaleName(scale));
  std::printf("(threads: %d; set STEDB_THREADS=N — results are "
              "bit-identical at any thread count)\n\n",
              ResolveThreadCount(0));
}

}  // namespace stedb::bench

#endif  // STEDB_BENCH_BENCH_COMMON_H_
