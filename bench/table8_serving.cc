// Serving-path throughput and load time (no paper analogue — this is the
// ROADMAP's "serve heavy traffic" direction): how fast embeddings come out
// of a trained FoRWaRD model via
//   * scalar Embed on the in-memory embedder (per-fact copy+return),
//   * EmbedBatch on the in-memory embedder (the batch read path),
//   * api::ServingSession over an mmap'd store directory (zero-copy
//     scalar reads + copying batch reads),
// and how long it takes to get a cold process serving: text LoadModel vs
// the copying binary snapshot vs the mmap open.
//
// Shape expectations: batch beats scalar (no per-fact Vector allocation),
// mmap open beats the copying snapshot load (no parse, no per-fact
// allocation — the acceptance bar for the serving PR), and both beat the
// text parser by a wide margin.
//
// Emits BENCH_serving.json to the cwd (STEDB_BENCH_SERVING_JSON overrides
// the path; "off" disables), uploaded as a CI artifact next to
// BENCH_parallel.json.
#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/api/serving.h"
#include "src/common/timer.h"
#include "src/exp/report.h"
#include "src/exp/static_experiment.h"
#include "src/fwd/codec.h"
#include "src/fwd/forward.h"
#include "src/fwd/serialize.h"
#include "src/store/embedding_store.h"
#include "src/store/snapshot.h"

using namespace stedb;

namespace {

/// Median-of-`reps` wall-clock seconds for `fn`.
template <typename Fn>
double TimeMedian(int reps, Fn&& fn) {
  std::vector<double> seconds;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    fn();
    seconds.push_back(t.ElapsedSeconds());
  }
  std::sort(seconds.begin(), seconds.end());
  return seconds[seconds.size() / 2];
}

struct ServingNumbers {
  std::string dataset;
  size_t vectors = 0;
  size_t dim = 0;
  double text_load_s = 0.0;
  double snap_load_s = 0.0;
  double mmap_open_s = 0.0;
  double scalar_ns = 0.0;      ///< per lookup, in-memory Embed
  double batch_ns = 0.0;       ///< per lookup, in-memory EmbedBatch
  double serving_ns = 0.0;     ///< per lookup, ServingSession zero-copy
  double serving_batch_ns = 0.0;
};

void EmitServingJson(const std::vector<ServingNumbers>& rows) {
  const char* out_env = std::getenv("STEDB_BENCH_SERVING_JSON");
  std::string path = out_env != nullptr && *out_env != '\0'
                         ? out_env
                         : "BENCH_serving.json";
  if (path == "off" || path == "0") return;
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "BENCH_serving.json: cannot open %s\n",
                 path.c_str());
    return;
  }
  // The core count is a machine descriptor, not a result: the compare
  // gate uses it to skip timing comparisons across unlike machines.
  std::fprintf(f,
               "{\n  \"bench\": \"serving\",\n"
               "  \"hardware_concurrency\": %u,\n  \"datasets\": [\n",
               std::thread::hardware_concurrency());
  bool first = true;
  for (const ServingNumbers& r : rows) {
    std::fprintf(
        f,
        "%s    {\"name\": \"%s\", \"vectors\": %zu, \"dim\": %zu,\n"
        "     \"text_load_seconds\": %.6f, \"snapshot_load_seconds\": %.6f,"
        " \"mmap_open_seconds\": %.6f,\n"
        "     \"scalar_ns_per_lookup\": %.1f, \"batch_ns_per_lookup\": %.1f,"
        " \"serving_ns_per_lookup\": %.1f,"
        " \"serving_batch_ns_per_lookup\": %.1f,\n"
        "     \"mmap_vs_snapshot_speedup\": %.2f}",
        first ? "" : ",\n", r.dataset.c_str(), r.vectors, r.dim,
        r.text_load_s, r.snap_load_s, r.mmap_open_s, r.scalar_ns,
        r.batch_ns, r.serving_ns, r.serving_batch_ns,
        r.mmap_open_s > 0.0 ? r.snap_load_s / r.mmap_open_s : 0.0);
    first = false;
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  exp::RunScale scale = exp::ScaleFromEnv();
  exp::MethodConfig mcfg = exp::MethodConfig::ForScale(scale);
  bench::PrintHeader("Table VIII",
                     "serving: load time + lookup throughput "
                     "(scalar vs batch vs mmap session)",
                     scale);

  const std::string dir =
      (std::filesystem::temp_directory_path() / "stedb_serving_bench")
          .string();
  std::filesystem::create_directories(dir);
  const int reps = scale == exp::RunScale::kPaper ? 3 : 5;
  // Enough lookups to dominate timer noise even at smoke scale.
  const size_t kLookups = 200000;

  exp::TableWriter table({"Task", "text load", "snap load", "mmap open",
                          "scalar", "batch", "mmap scalar", "mmap batch"});
  std::vector<ServingNumbers> json_rows;
  bool mmap_beats_copy = true;
  for (const std::string& name : bench::SelectDatasets(argc, argv)) {
    data::GeneratedDataset ds =
        bench::MakeDatasetOrDie(name, mcfg.data_scale);
    fwd::ForwardConfig fcfg = mcfg.forward;
    fcfg.seed = 7;
    auto emb = fwd::ForwardEmbedder::TrainStatic(
        &ds.database, ds.pred_rel, exp::LabelExclusion(ds), fcfg);
    if (!emb.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   emb.status().ToString().c_str());
      continue;
    }
    const fwd::ForwardModel& model = emb.value().model();

    // A store directory (snapshot + empty WAL) plus the text dump.
    const std::string store_dir = dir + "/" + name;
    if (!fwd::CreateForwardStore(store_dir, model).ok()) std::exit(1);
    const std::string text_path = dir + "/" + name + ".txt";
    if (!fwd::SaveModel(model, text_path).ok()) std::exit(1);

    ServingNumbers row;
    row.dataset = name;
    row.vectors = model.num_embedded();
    row.dim = model.dim();
    row.text_load_s = TimeMedian(reps, [&] {
      if (!fwd::LoadModel(text_path).ok()) std::exit(1);
    });
    row.snap_load_s = TimeMedian(reps, [&] {
      if (!store::ReadSnapshot(
               store::EmbeddingStore::SnapshotPath(store_dir))
               .ok()) {
        std::exit(1);
      }
    });
    row.mmap_open_s = TimeMedian(reps, [&] {
      if (!api::ServingSession::Open(store_dir).ok()) std::exit(1);
    });

    // Lookup throughput over a shuffled, repeating fact sequence.
    std::vector<db::FactId> facts;
    facts.reserve(model.num_embedded());
    for (const auto& [f, v] : model.all_phi()) facts.push_back(f);
    std::sort(facts.begin(), facts.end());
    Rng rng(13);
    std::vector<db::FactId> sequence(kLookups);
    for (size_t i = 0; i < kLookups; ++i) {
      sequence[i] = facts[rng.NextIndex(facts.size())];
    }

    auto session = std::move(api::ServingSession::Open(store_dir)).value();
    volatile double sink = 0.0;  // defeats dead-code elimination
    row.scalar_ns = TimeMedian(reps, [&] {
                      for (db::FactId f : sequence) {
                        sink = sink + emb.value().Embed(f).value()[0];
                      }
                    }) /
                    static_cast<double>(kLookups) * 1e9;
    la::Matrix out(sequence.size(), model.dim());
    row.batch_ns = TimeMedian(reps, [&] {
                     if (!emb.value().EmbedBatch(sequence, out).ok()) {
                       std::exit(1);
                     }
                     sink = sink + out(0, 0);
                   }) /
                   static_cast<double>(kLookups) * 1e9;
    row.serving_ns = TimeMedian(reps, [&] {
                       for (db::FactId f : sequence) {
                         sink = sink + session.Embed(f).value()[0];
                       }
                     }) /
                     static_cast<double>(kLookups) * 1e9;
    row.serving_batch_ns = TimeMedian(reps, [&] {
                             if (!session.EmbedBatch(sequence, out).ok()) {
                               std::exit(1);
                             }
                             sink = sink + out(0, 0);
                           }) /
                           static_cast<double>(kLookups) * 1e9;

    char scalar_c[32], batch_c[32], serve_c[32], serve_b[32];
    std::snprintf(scalar_c, sizeof(scalar_c), "%.0fns", row.scalar_ns);
    std::snprintf(batch_c, sizeof(batch_c), "%.0fns", row.batch_ns);
    std::snprintf(serve_c, sizeof(serve_c), "%.0fns", row.serving_ns);
    std::snprintf(serve_b, sizeof(serve_b), "%.0fns",
                  row.serving_batch_ns);
    table.AddRow({name, exp::SecondsCell(row.text_load_s),
                  exp::SecondsCell(row.snap_load_s),
                  exp::SecondsCell(row.mmap_open_s), scalar_c, batch_c,
                  serve_c, serve_b});
    if (row.mmap_open_s >= row.snap_load_s) mmap_beats_copy = false;
    json_rows.push_back(row);
    std::printf("%s done (%zu vectors, dim %zu)\n", name.c_str(),
                row.vectors, row.dim);
  }

  std::printf("\n%s\n", table.Render().c_str());
  std::printf("(per-lookup times over %zu random lookups; mmap open %s the "
              "copying snapshot load)\n",
              kLookups,
              mmap_beats_copy ? "beats" : "DID NOT BEAT — investigate");
  EmitServingJson(json_rows);
  std::filesystem::remove_all(dir);
  return 0;
}
