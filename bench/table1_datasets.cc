// Regenerates the paper's Table I: structure of the five benchmark
// databases (prediction relation/attribute, #samples, #relations, #tuples,
// #attributes).
#include "bench/bench_common.h"
#include "src/exp/report.h"

using namespace stedb;

int main(int argc, char** argv) {
  exp::RunScale scale = exp::ScaleFromEnv();
  exp::MethodConfig mcfg = exp::MethodConfig::ForScale(scale);
  bench::PrintHeader("Table I", "structure of the datasets", scale);

  exp::TableWriter table({"Dataset", "Prediction Rel.", "Prediction Attr.",
                          "#Samples", "#Relations", "#Tuples",
                          "#Attributes"});
  for (const std::string& name : bench::SelectDatasets(argc, argv)) {
    data::GeneratedDataset ds =
        bench::MakeDatasetOrDie(name, mcfg.data_scale);
    const db::Schema& schema = ds.database.schema();
    table.AddRow({ds.name, schema.relation(ds.pred_rel).name,
                  schema.relation(ds.pred_rel).attrs[ds.pred_attr].name,
                  std::to_string(ds.Samples().size()),
                  std::to_string(schema.num_relations()),
                  std::to_string(ds.database.NumFacts()),
                  std::to_string(schema.TotalAttributes())});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("paper (full scale): hepatitis 500/7/12927/26, genes "
              "862/3/6063/15, mutagenesis 188/3/10324/14, world "
              "239/3/5411/24, mondial 206/40/21497/167\n");
  return 0;
}
