// Regenerates the paper's Table III: accuracy for static classification —
// FoRWaRD vs Node2Vec vs a no-FK flat baseline (S.o.A. stand-in; the
// paper's S.o.A. numbers are quotes from other publications), with k-fold
// stratified cross-validation.
//
// Shape expectations (paper): both embedding methods land well above the
// majority baseline and are competitive with each other; Node2Vec has the
// edge on categorical-heavy datasets (Hepatitis, World).
#include "bench/bench_common.h"
#include "src/exp/report.h"
#include "src/exp/static_experiment.h"

using namespace stedb;

int main(int argc, char** argv) {
  exp::RunScale scale = exp::ScaleFromEnv();
  exp::MethodConfig mcfg = exp::MethodConfig::ForScale(scale);
  bench::PrintHeader("Table III", "accuracy for static classification",
                     scale);

  exp::StaticConfig scfg;
  // The paper trains a fresh embedding per fold with k = 10; that protocol
  // is kept at paper scale, the smaller presets share one embedding across
  // folds to stay single-core friendly.
  scfg.folds = scale == exp::RunScale::kSmoke ? 3 : 10;
  scfg.embedding_per_fold = scale == exp::RunScale::kPaper;

  exp::TableWriter table(
      {"Task", "FoRWaRD", "N2V", "FlatBaseline(S.o.A. stand-in)",
       "Majority"});
  for (const std::string& name : bench::SelectDatasets(argc, argv)) {
    data::GeneratedDataset ds =
        bench::MakeDatasetOrDie(name, mcfg.data_scale);
    std::string fwd_cell = "-", n2v_cell = "-", flat_cell = "-";
    double majority = 0.0;
    auto fwd = exp::RunStaticExperiment(ds, "forward", mcfg,
                                        scfg);
    if (fwd.ok()) {
      fwd_cell = exp::AccuracyCell(fwd.value().mean_accuracy,
                                   fwd.value().std_accuracy);
      majority = fwd.value().majority_baseline;
    } else {
      std::fprintf(stderr, "%s FoRWaRD: %s\n", name.c_str(),
                   fwd.status().ToString().c_str());
    }
    auto n2v = exp::RunStaticExperiment(ds, "node2vec", mcfg,
                                        scfg);
    if (n2v.ok()) {
      n2v_cell = exp::AccuracyCell(n2v.value().mean_accuracy,
                                   n2v.value().std_accuracy);
    } else {
      std::fprintf(stderr, "%s Node2Vec: %s\n", name.c_str(),
                   n2v.status().ToString().c_str());
    }
    auto flat = exp::RunFlatBaseline(ds, scfg);
    if (flat.ok()) {
      flat_cell = exp::AccuracyCell(flat.value().mean_accuracy,
                                    flat.value().std_accuracy);
    }
    table.AddRow({name, fwd_cell, n2v_cell, flat_cell,
                  exp::AccuracyCell(majority, 0.0)});
    std::printf("%s done\n", name.c_str());
  }
  std::printf("\n%s\n", table.Render().c_str());
  std::printf("paper Table III: hepatitis 84.20/93.60/84.00, genes "
              "97.91/97.19/85.00, mutagenesis 90.00/88.23/91.00, world "
              "85.83/94.00/77.00, mondial 80.95/77.62/85.00\n");
  return 0;
}
