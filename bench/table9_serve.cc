// Networked serving under load (no paper analogue — the ROADMAP's "serve
// heavy traffic from a stored model" direction): a multi-threaded load
// generator drives stedb_serve's HTTP endpoints and reports per-request
// latency percentiles and aggregate QPS for
//   * /embed        — coalesced single-fact lookups (raw payload),
//   * /embed_batch  — 32-fact batch reads,
//   * /topk         — the serving-side φᵀψφ brute-force scorer.
//
// Default mode spins up an in-process serve::EmbeddingService on an
// ephemeral loopback port (store trained fresh at STEDB_SCALE). Pass
// --connect=HOST:PORT to aim at an externally started stedb_serve
// instead; fact ids are seeded from its /facts endpoint either way.
//
// Results merge into BENCH_serving.json as a "serve" section next to
// table8's per-lookup numbers (STEDB_BENCH_SERVING_JSON overrides the
// path; "off" disables), so one artifact carries the whole serving story.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/timer.h"
#include "src/exp/report.h"
#include "src/exp/static_experiment.h"
#include "src/fwd/codec.h"
#include "src/fwd/forward.h"
#include "src/serve/http.h"
#include "src/serve/service.h"

using namespace stedb;

namespace {

struct EndpointNumbers {
  std::string endpoint;
  size_t requests = 0;
  size_t failures = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double qps = 0.0;
};

double Percentile(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const size_t idx = std::min(
      sorted_us.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_us.size())));
  return sorted_us[idx];
}

/// Fires `requests` of `make_target()` across `threads` keep-alive
/// connections and collects per-request latencies.
template <typename MakeTarget>
EndpointNumbers RunLoad(const std::string& endpoint, const std::string& host,
                        int port, int threads, size_t requests,
                        MakeTarget&& make_target) {
  EndpointNumbers out;
  out.endpoint = endpoint;
  out.requests = requests;
  std::vector<std::vector<double>> lat(static_cast<size_t>(threads));
  std::atomic<size_t> next{0};
  std::atomic<size_t> failures{0};
  Timer wall;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      auto conn = serve::HttpClient::Connect(host, port);
      if (!conn.ok()) {
        failures.fetch_add(requests);  // count the whole share as failed
        return;
      }
      for (size_t i = next.fetch_add(1); i < requests;
           i = next.fetch_add(1)) {
        Timer rt;
        auto resp = conn.value().Get(make_target(i));
        if (!resp.ok() || resp.value().status != 200) {
          failures.fetch_add(1);
          continue;
        }
        lat[static_cast<size_t>(t)].push_back(rt.ElapsedSeconds() * 1e6);
      }
    });
  }
  for (std::thread& th : workers) th.join();
  const double wall_s = wall.ElapsedSeconds();
  std::vector<double> all;
  for (const auto& per_thread : lat) {
    all.insert(all.end(), per_thread.begin(), per_thread.end());
  }
  std::sort(all.begin(), all.end());
  out.failures = failures.load();
  out.p50_us = Percentile(all, 0.50);
  out.p99_us = Percentile(all, 0.99);
  out.qps = wall_s > 0.0 ? static_cast<double>(all.size()) / wall_s : 0.0;
  return out;
}

/// Merges the "serve" section into an existing BENCH_serving.json (written
/// by table8) or starts a fresh file. String-level merge: the existing
/// object's trailing "}" is replaced by ",\n  \"serve\": {...}\n}".
void EmitServeJson(const std::vector<EndpointNumbers>& rows, int threads,
                   size_t facts) {
  const char* out_env = std::getenv("STEDB_BENCH_SERVING_JSON");
  std::string path = out_env != nullptr && *out_env != '\0'
                         ? out_env
                         : "BENCH_serving.json";
  if (path == "off" || path == "0") return;

  std::string serve_section =
      "  \"serve\": {\n"
      "    \"hardware_concurrency\": " +
      std::to_string(std::thread::hardware_concurrency()) +
      ",\n    \"load_threads\": " + std::to_string(threads) +
      ",\n    \"served_facts\": " + std::to_string(facts) +
      ",\n    \"endpoints\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "      {\"name\": \"%s\", \"requests\": %zu,"
                  " \"failures\": %zu,\n"
                  "       \"p50_us\": %.1f, \"p99_us\": %.1f,"
                  " \"qps\": %.1f}%s\n",
                  rows[i].endpoint.c_str(), rows[i].requests,
                  rows[i].failures, rows[i].p50_us, rows[i].p99_us,
                  rows[i].qps, i + 1 < rows.size() ? "," : "");
    serve_section += buf;
  }
  serve_section += "    ]\n  }\n";

  std::string existing;
  FILE* in = std::fopen(path.c_str(), "r");
  if (in != nullptr) {
    char chunk[4096];
    size_t n;
    while ((n = std::fread(chunk, 1, sizeof(chunk), in)) > 0) {
      existing.append(chunk, n);
    }
    std::fclose(in);
  }
  std::string merged;
  const size_t close = existing.rfind('}');
  if (close != std::string::npos) {
    // Drop a previous "serve" section so reruns replace, not accumulate.
    const size_t old_serve = existing.find("  \"serve\": {");
    std::string head = existing.substr(
        0, old_serve != std::string::npos ? old_serve : close);
    while (!head.empty() &&
           (head.back() == '\n' || head.back() == ' ' ||
            head.back() == ',')) {
      head.pop_back();
    }
    merged = head + ",\n" + serve_section + "}\n";
  } else {
    merged = "{\n  \"bench\": \"serving\",\n" + serve_section + "}\n";
  }
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "BENCH_serving.json: cannot open %s\n",
                 path.c_str());
    return;
  }
  std::fwrite(merged.data(), 1, merged.size(), f);
  std::fclose(f);
  std::printf("merged serve section into %s\n", path.c_str());
}

/// Scrapes GET /metrics after the load run, sanity-checks the Prometheus
/// exposition (the serve-layer request histograms must have counted the
/// load we just generated), and writes the text next to the JSON artifact
/// (STEDB_BENCH_METRICS_PROM overrides the path; "off" disables).
/// Returns false on scrape or validation failure — the bench fails hard,
/// so a broken /metrics endpoint can't slip through CI.
bool ScrapeAndCheckMetrics(const std::string& host, int port) {
  auto conn = serve::HttpClient::Connect(host, port);
  if (!conn.ok()) {
    std::fprintf(stderr, "/metrics connect: %s\n",
                 conn.status().ToString().c_str());
    return false;
  }
  auto resp = conn.value().Get("/metrics");
  if (!resp.ok() || resp.value().status != 200) {
    std::fprintf(stderr, "/metrics scrape failed (status %d)\n",
                 resp.ok() ? resp.value().status : -1);
    return false;
  }
  const std::string& text = resp.value().body;
  // Spot-check the exposition: well-formed head, and the families the
  // acceptance bar names — per-endpoint request latency, store appends,
  // serving Poll lag, DistCache hits/misses.
  const char* required[] = {
      "# HELP ",
      "# TYPE ",
      "stedb_serve_request_seconds_bucket{endpoint=\"embed\",le=",
      "stedb_serve_request_seconds_count{endpoint=\"topk\"}",
      "stedb_serve_requests_total{endpoint=\"embed_batch\"}",
      "stedb_store_appends_total",
      "stedb_serving_wal_lag_records",
      "stedb_train_dist_cache_lookups_total{result=\"hit\"}",
  };
  for (const char* needle : required) {
    if (text.find(needle) == std::string::npos) {
      std::fprintf(stderr, "/metrics missing expected series: %s\n",
                   needle);
      return false;
    }
  }

  const char* out_env = std::getenv("STEDB_BENCH_METRICS_PROM");
  std::string path = out_env != nullptr && *out_env != '\0'
                         ? out_env
                         : "BENCH_metrics.prom";
  if (path == "off" || path == "0") return true;
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "metrics artifact: cannot open %s\n",
                 path.c_str());
    return false;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  std::printf("wrote /metrics exposition (%zu bytes, %zu series lines) "
              "to %s\n",
              text.size(),
              static_cast<size_t>(
                  std::count(text.begin(), text.end(), '\n')),
              path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  exp::RunScale scale = exp::ScaleFromEnv();
  bench::PrintHeader("Table IX",
                     "stedb_serve load test: latency percentiles + QPS "
                     "per endpoint",
                     scale);

  std::string connect_host;
  int connect_port = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--connect=", 10) == 0) {
      const std::string hp = argv[i] + 10;
      const size_t colon = hp.rfind(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "--connect wants HOST:PORT\n");
        return 2;
      }
      connect_host = hp.substr(0, colon);
      connect_port = std::atoi(hp.c_str() + colon + 1);
    }
  }

  const size_t requests = scale == exp::RunScale::kSmoke ? 2000
                          : scale == exp::RunScale::kPaper ? 50000
                                                           : 10000;
  const int threads = 4;

  // Target: external server, or an in-process service over a freshly
  // trained smoke store.
  std::unique_ptr<serve::EmbeddingService> service;
  std::string host = connect_host;
  int port = connect_port;
  std::string store_dir;
  if (connect_host.empty()) {
    exp::MethodConfig mcfg = exp::MethodConfig::ForScale(scale);
    data::GeneratedDataset ds =
        bench::MakeDatasetOrDie("hepatitis", mcfg.data_scale);
    fwd::ForwardConfig fcfg = mcfg.forward;
    fcfg.seed = 7;
    auto emb = fwd::ForwardEmbedder::TrainStatic(
        &ds.database, ds.pred_rel, exp::LabelExclusion(ds), fcfg);
    if (!emb.ok()) {
      std::fprintf(stderr, "train: %s\n", emb.status().ToString().c_str());
      return 1;
    }
    store_dir = (std::filesystem::temp_directory_path() /
                 "stedb_serve_bench_store")
                    .string();
    std::filesystem::remove_all(store_dir);
    if (!fwd::CreateForwardStore(store_dir, emb.value().model()).ok()) {
      return 1;
    }
    auto opened = serve::EmbeddingService::Open(store_dir);
    if (!opened.ok()) {
      std::fprintf(stderr, "open: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    service = std::move(opened).value();
    if (!service->Start("127.0.0.1", 0).ok()) return 1;
    host = "127.0.0.1";
    port = service->port();
    std::printf("in-process stedb_serve on %s:%d (%zu requests, %d "
                "client threads)\n\n",
                host.c_str(), port, requests, threads);
  } else {
    std::printf("external stedb_serve at %s:%d (%zu requests, %d client "
                "threads)\n\n",
                host.c_str(), port, requests, threads);
  }

  // Seed fact ids from the server itself — works identically for the
  // in-process and --connect modes.
  std::vector<db::FactId> facts;
  {
    auto conn = serve::HttpClient::Connect(host, port);
    if (!conn.ok()) {
      std::fprintf(stderr, "connect: %s\n",
                   conn.status().ToString().c_str());
      return 1;
    }
    auto resp = conn.value().Get("/facts");
    if (!resp.ok() || resp.value().status != 200) {
      std::fprintf(stderr, "/facts failed\n");
      return 1;
    }
    facts = serve::ParseFactList(resp.value().body, 1u << 20);
    // First integer is the "count" field; drop it, keep the id array.
    if (!facts.empty()) facts.erase(facts.begin());
  }
  if (facts.empty()) {
    std::fprintf(stderr, "server serves no facts\n");
    return 1;
  }

  std::vector<EndpointNumbers> rows;
  rows.push_back(RunLoad("/embed", host, port, threads, requests,
                         [&](size_t i) {
                           return "/embed?fact=" +
                                  std::to_string(facts[i % facts.size()]) +
                                  "&raw=1";
                         }));
  rows.push_back(RunLoad(
      "/embed_batch", host, port, threads, requests / 8, [&](size_t i) {
        std::string target = "/embed_batch?raw=1&facts=";
        for (size_t j = 0; j < 32; ++j) {
          if (j > 0) target += "%2C";
          target += std::to_string(facts[(i * 32 + j) % facts.size()]);
        }
        return target;
      }));
  rows.push_back(RunLoad("/topk", host, port, threads, requests / 8,
                         [&](size_t i) {
                           return "/topk?fact=" +
                                  std::to_string(facts[i % facts.size()]) +
                                  "&k=10";
                         }));

  exp::TableWriter table({"Endpoint", "requests", "fail", "p50", "p99",
                          "QPS"});
  bool ok = true;
  for (const EndpointNumbers& r : rows) {
    char p50[32], p99[32], qps[32];
    std::snprintf(p50, sizeof(p50), "%.0fus", r.p50_us);
    std::snprintf(p99, sizeof(p99), "%.0fus", r.p99_us);
    std::snprintf(qps, sizeof(qps), "%.0f", r.qps);
    table.AddRow({r.endpoint, std::to_string(r.requests),
                  std::to_string(r.failures), p50, p99, qps});
    if (r.failures > 0 || r.qps <= 0.0) ok = false;
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("(loopback HTTP including coalescing; topk is the "
              "brute-force φᵀψφ scan over %zu facts)\n",
              facts.size());

  EmitServeJson(rows, threads, facts.size());
  if (!ScrapeAndCheckMetrics(host, port)) ok = false;
  if (service != nullptr) service->Stop();
  service.reset();
  if (!store_dir.empty()) std::filesystem::remove_all(store_dir);
  if (!ok) {
    std::fprintf(stderr, "FAILED: request failures or zero QPS\n");
    return 1;
  }
  return 0;
}
