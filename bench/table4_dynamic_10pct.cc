// Regenerates the paper's Table IV: dynamic-experiment accuracy at 10% new
// tuples, comparing the all-at-once and one-by-one embedding extensions.
//
// Shape expectation (paper): the two setups land surprisingly close to
// each other for both methods.
#include "bench/bench_common.h"
#include "src/exp/dynamic_experiment.h"
#include "src/exp/report.h"

using namespace stedb;

int main(int argc, char** argv) {
  exp::RunScale scale = exp::ScaleFromEnv();
  exp::MethodConfig mcfg = exp::MethodConfig::ForScale(scale);
  bench::PrintHeader("Table IV",
                     "dynamic accuracy at 10% new tuples, all-at-once vs "
                     "one-by-one",
                     scale);

  exp::DynamicConfig dcfg;
  dcfg.new_ratio = 0.1;
  dcfg.runs = scale == exp::RunScale::kPaper ? 10 : 2;

  exp::TableWriter table({"Task", "N2V (all at once)", "FWD (all at once)",
                          "N2V (one by one)", "FWD (one by one)"});
  for (const std::string& name : bench::SelectDatasets(argc, argv)) {
    data::GeneratedDataset ds = bench::MakeDatasetOrDie(
        name, scale == exp::RunScale::kPaper ? mcfg.data_scale
                                             : mcfg.data_scale * 0.6);
    std::vector<std::string> row = {name};
    for (bool one_by_one : {false, true}) {
      dcfg.one_by_one = one_by_one;
      for (const char* kind :
           {"node2vec", "forward"}) {
        auto res = exp::RunDynamicExperiment(ds, kind, mcfg, dcfg);
        if (res.ok()) {
          row.push_back(exp::AccuracyCell(res.value().mean_accuracy,
                                          res.value().std_accuracy));
        } else {
          row.push_back("-");
          std::fprintf(stderr, "%s: %s\n", name.c_str(),
                       res.status().ToString().c_str());
        }
      }
    }
    table.AddRow(std::move(row));
    std::printf("%s done\n", name.c_str());
  }
  std::printf("\n%s\n", table.Render().c_str());
  std::printf("paper Table IV (all-at-once N2V/FWD, one-by-one N2V/FWD): "
              "hepatitis 93.34/82.20/92.60/84.20, genes "
              "94.50/97.91/96.20/98.49, mutagenesis 87.58/90.00/87.89/89.47, "
              "world 91.25/87.50/94.58/77.08, mondial "
              "77.62/80.00/76.67/80.47\n");
  return 0;
}
