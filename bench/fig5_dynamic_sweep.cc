// Regenerates the paper's Figure 5: dynamic-experiment accuracy on newly
// arrived tuples as a function of the new-data ratio (one-by-one
// extension), per dataset, with the most-common-class baseline.
//
// Shape expectations (paper): both methods stay close to their static
// accuracy up to ~50% new data and degrade slowly beyond; the baseline is
// flat; FoRWaRD has the overall edge.
#include "bench/bench_common.h"
#include "src/exp/dynamic_experiment.h"
#include "src/exp/report.h"

using namespace stedb;

int main(int argc, char** argv) {
  exp::RunScale scale = exp::ScaleFromEnv();
  exp::MethodConfig mcfg = exp::MethodConfig::ForScale(scale);
  bench::PrintHeader("Figure 5",
                     "dynamic accuracy vs ratio of new data (one-by-one)",
                     scale);

  const std::vector<double> ratios =
      scale == exp::RunScale::kSmoke
          ? std::vector<double>{0.1, 0.5, 0.9}
          : std::vector<double>{0.1, 0.3, 0.5, 0.7, 0.9};
  const int runs = scale == exp::RunScale::kPaper ? 10 : 1;
  // One-by-one N2V retraining per arrival is the expensive part; trim the
  // dataset a little relative to the static benches.
  double data_scale = mcfg.data_scale * 0.5;
  if (scale != exp::RunScale::kPaper) {
    // The sweep runs 2 methods x 5 ratios x 5 datasets of static trainings;
    // lighten Node2Vec so the whole figure regenerates in minutes.
    mcfg.node2vec.walk.walks_per_node = 8;
    mcfg.node2vec.sg.epochs = 3;
    mcfg.node2vec.dynamic_epochs = 4;
  }

  exp::DynamicConfig dcfg;
  dcfg.one_by_one = true;
  dcfg.runs = runs;

  for (const std::string& name : bench::SelectDatasets(argc, argv)) {
    data::GeneratedDataset ds = bench::MakeDatasetOrDie(name, data_scale);
    std::vector<double> xs;
    std::vector<double> fwd_acc, n2v_acc, base_acc;
    for (double ratio : ratios) {
      dcfg.new_ratio = ratio;
      xs.push_back(ratio * 100.0);
      auto fwd = exp::RunDynamicExperiment(ds, "forward",
                                           mcfg, dcfg);
      auto n2v = exp::RunDynamicExperiment(ds, "node2vec",
                                           mcfg, dcfg);
      fwd_acc.push_back(fwd.ok() ? fwd.value().mean_accuracy * 100.0 : 0.0);
      n2v_acc.push_back(n2v.ok() ? n2v.value().mean_accuracy * 100.0 : 0.0);
      base_acc.push_back(fwd.ok() ? fwd.value().majority_baseline * 100.0
                                  : 0.0);
      if (fwd.ok() && fwd.value().stability_drift != 0.0) {
        std::fprintf(stderr, "WARNING: FoRWaRD drift on %s!\n", name.c_str());
      }
      if (n2v.ok() && n2v.value().stability_drift != 0.0) {
        std::fprintf(stderr, "WARNING: Node2Vec drift on %s!\n",
                     name.c_str());
      }
      std::printf("%s ratio %.0f%%: FoRWaRD %.1f%%  Node2Vec %.1f%%  "
                  "baseline %.1f%%\n",
                  name.c_str(), ratio * 100.0, fwd_acc.back(),
                  n2v_acc.back(), base_acc.back());
    }
    std::printf("\n(%s)\n%s\n", name.c_str(),
                exp::AsciiChart(xs, {{"FoRWaRD", fwd_acc},
                                     {"Node2Vec", n2v_acc},
                                     {"Baseline", base_acc}})
                    .c_str());
  }
  return 0;
}
