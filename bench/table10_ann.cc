// Approximate similarity search (no paper analogue — the ROADMAP's
// "sublinear similarity queries over a stored model" direction): builds a
// store with the persisted HNSW index enabled, serves it through
// api::ServingSession, and races SimilarTopK's exact scan against the
// mmap'd graph on the same queries:
//   * index build time (the Compact/Create-side cost of --ann),
//   * per-query p50/p99 latency, exact vs HNSW,
//   * recall@10 of HNSW against the exact oracle (blocking: >= 0.95),
//   * mean visited nodes per search (the sublinearity witness).
//
// Results go to BENCH_ann.json (STEDB_BENCH_ANN_JSON overrides the path;
// "off" disables). Recall below the gate fails the binary; the latency
// speedup is advisory — smoke-scale stores are small enough that the
// brute-force scan stays competitive, the 10x shows up at default scale.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/api/serving.h"
#include "src/exp/report.h"
#include "src/common/rng.h"
#include "src/common/timer.h"
#include "src/obs/metrics.h"
#include "src/store/embedding_store.h"
#include "src/store/stored_model.h"

using namespace stedb;

namespace {

constexpr double kRecallGate = 0.95;

double Percentile(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const size_t idx = std::min(
      sorted_us.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_us.size())));
  return sorted_us[idx];
}

/// Clustered unit-ball vectors: the same shape ann_test uses, so recall
/// here measures graph quality, not float-tie resolution on degenerate
/// near-duplicates.
la::Vector RandomPoint(Rng& rng, const la::Vector& center, double noise) {
  la::Vector v(center.size());
  for (size_t d = 0; d < v.size(); ++d) {
    v[d] = center[d] + rng.NextGaussian(0.0, noise);
  }
  return v;
}

struct Numbers {
  size_t vectors = 0;
  size_t dim = 0;
  size_t queries = 0;
  double build_seconds = 0.0;
  double exact_p50_us = 0.0;
  double exact_p99_us = 0.0;
  double hnsw_p50_us = 0.0;
  double hnsw_p99_us = 0.0;
  double p50_speedup = 0.0;
  double recall_at_10 = 0.0;
  double mean_visited_nodes = 0.0;
};

void EmitAnnJson(const Numbers& n) {
  const char* out_env = std::getenv("STEDB_BENCH_ANN_JSON");
  std::string path =
      out_env != nullptr && *out_env != '\0' ? out_env : "BENCH_ann.json";
  if (path == "off" || path == "0") return;
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "BENCH_ann.json: cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"ann\",\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"vectors\": %zu,\n"
               "  \"dim\": %zu,\n"
               "  \"queries\": %zu,\n"
               "  \"ann_build_seconds\": %.6f,\n"
               "  \"exact_p50_us\": %.1f,\n"
               "  \"exact_p99_us\": %.1f,\n"
               "  \"hnsw_p50_us\": %.1f,\n"
               "  \"hnsw_p99_us\": %.1f,\n"
               "  \"p50_speedup\": %.2f,\n"
               "  \"recall_at_10\": %.4f,\n"
               "  \"mean_visited_nodes\": %.1f\n"
               "}\n",
               std::thread::hardware_concurrency(), n.vectors, n.dim,
               n.queries, n.build_seconds, n.exact_p50_us, n.exact_p99_us,
               n.hnsw_p50_us, n.hnsw_p99_us, n.p50_speedup, n.recall_at_10,
               n.mean_visited_nodes);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int, char**) {
  exp::RunScale scale = exp::ScaleFromEnv();
  bench::PrintHeader("Table X",
                     "persisted HNSW index: exact scan vs mmap-served "
                     "graph (latency, recall@10, visited nodes)",
                     scale);

  Numbers n;
  n.vectors = scale == exp::RunScale::kSmoke ? 10000 : 100000;
  n.dim = 32;
  n.queries = scale == exp::RunScale::kSmoke ? 200 : 1000;
  const size_t k = 10;

  // Data: 64 Gaussian clusters, enough spread that exact top-10 is
  // well-conditioned (see ann_test for the degenerate-tie pitfall).
  std::printf("generating %zu vectors (dim %zu, 64 clusters)...\n",
              n.vectors, n.dim);
  Rng rng(0xA22);
  std::vector<la::Vector> centers;
  for (int c = 0; c < 64; ++c) {
    centers.push_back(RandomPoint(rng, la::Vector(n.dim, 0.0), 1.0));
  }
  auto model = std::make_unique<store::VectorSetModel>(n.dim, -1);
  for (size_t i = 0; i < n.vectors; ++i) {
    model->set_phi(
        static_cast<db::FactId>(i),
        RandomPoint(rng, centers[i % centers.size()], 0.6));
  }
  std::vector<la::Vector> queries;
  for (size_t q = 0; q < n.queries; ++q) {
    queries.push_back(
        RandomPoint(rng, centers[q % centers.size()], 0.6));
  }

  const std::string dir =
      (std::filesystem::temp_directory_path() / "stedb_ann_bench_store")
          .string();
  std::filesystem::remove_all(dir);
  store::StoreOptions options;
  options.build_ann_index = true;

  // Build: Create writes the snapshot and, with build_ann_index, runs the
  // full deterministic HNSW construction inside it. The obs histogram
  // isolates the index-build share from the snapshot I/O around it.
  obs::Histogram& build_hist = obs::Registry::Global().GetHistogram(
      "stedb_store_ann_build_seconds",
      "HNSW index construction latency inside snapshot writes "
      "(StoreOptions::build_ann_index)",
      obs::Buckets::Latency());
  const double build_sum_before = build_hist.Sum();
  Timer build_timer;
  auto created =
      store::EmbeddingStore::Create(dir, "node2vec", std::move(model),
                                    options);
  if (!created.ok()) {
    std::fprintf(stderr, "create: %s\n",
                 created.status().ToString().c_str());
    return 1;
  }
  const double create_seconds = build_timer.ElapsedSeconds();
  n.build_seconds = build_hist.Sum() - build_sum_before;
  std::printf("store created in %.2fs (HNSW build %.2fs)\n\n",
              create_seconds, n.build_seconds);

  auto session = api::ServingSession::Open(dir);
  if (!session.ok()) {
    std::fprintf(stderr, "open: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }
  if (!session.value().has_ann_index()) {
    std::fprintf(stderr, "FAILED: store carries no ANN index\n");
    return 1;
  }

  // Exact oracle + latency in one pass (both sides see identical queries;
  // one warmup query per side keeps first-touch page faults out of p99).
  api::SimilarOptions exact_opts;
  exact_opts.approx = false;
  api::SimilarOptions hnsw_opts;  // library-default ef_search
  (void)session.value().SimilarTopK(Span<const double>(queries[0]), k,
                                    exact_opts);
  (void)session.value().SimilarTopK(Span<const double>(queries[0]), k,
                                    hnsw_opts);

  obs::Histogram& visited_hist = obs::Registry::Global().GetHistogram(
      "stedb_ann_visited_nodes",
      "Nodes whose distance was evaluated per HNSW search "
      "(SimilarTopK approximate path)",
      obs::Buckets::PowersOfTwo());
  const double visited_sum_before = visited_hist.Sum();
  const uint64_t visited_count_before = visited_hist.Count();

  std::vector<std::vector<api::ServingSession::Scored>> exact_hits;
  std::vector<double> exact_us, hnsw_us;
  size_t overlap = 0;
  for (const la::Vector& q : queries) {
    Timer t1;
    auto exact =
        session.value().SimilarTopK(Span<const double>(q), k, exact_opts);
    exact_us.push_back(t1.ElapsedSeconds() * 1e6);
    Timer t2;
    auto approx =
        session.value().SimilarTopK(Span<const double>(q), k, hnsw_opts);
    hnsw_us.push_back(t2.ElapsedSeconds() * 1e6);
    if (!exact.ok() || !approx.ok()) {
      std::fprintf(stderr, "query failed\n");
      return 1;
    }
    for (const auto& hit : approx.value()) {
      for (const auto& truth : exact.value()) {
        if (hit.fact == truth.fact) {
          ++overlap;
          break;
        }
      }
    }
  }
  n.recall_at_10 = static_cast<double>(overlap) /
                   static_cast<double>(n.queries * k);
  const uint64_t searches = visited_hist.Count() - visited_count_before;
  n.mean_visited_nodes =
      searches > 0 ? (visited_hist.Sum() - visited_sum_before) /
                         static_cast<double>(searches)
                   : 0.0;

  std::sort(exact_us.begin(), exact_us.end());
  std::sort(hnsw_us.begin(), hnsw_us.end());
  n.exact_p50_us = Percentile(exact_us, 0.50);
  n.exact_p99_us = Percentile(exact_us, 0.99);
  n.hnsw_p50_us = Percentile(hnsw_us, 0.50);
  n.hnsw_p99_us = Percentile(hnsw_us, 0.99);
  n.p50_speedup =
      n.hnsw_p50_us > 0.0 ? n.exact_p50_us / n.hnsw_p50_us : 0.0;

  exp::TableWriter table({"Path", "p50", "p99", "recall@10", "visited"});
  char p50[32], p99[32];
  std::snprintf(p50, sizeof(p50), "%.0fus", n.exact_p50_us);
  std::snprintf(p99, sizeof(p99), "%.0fus", n.exact_p99_us);
  table.AddRow({"exact scan", p50, p99, "1.0000",
                std::to_string(n.vectors)});
  char r[32], v[32];
  std::snprintf(p50, sizeof(p50), "%.0fus", n.hnsw_p50_us);
  std::snprintf(p99, sizeof(p99), "%.0fus", n.hnsw_p99_us);
  std::snprintf(r, sizeof(r), "%.4f", n.recall_at_10);
  std::snprintf(v, sizeof(v), "%.0f", n.mean_visited_nodes);
  table.AddRow({"hnsw", p50, p99, r, v});
  std::printf("%s\n", table.Render().c_str());
  std::printf("(p50 speedup %.1fx; %zu vectors, %zu queries, k=%zu, "
              "visited = distance evaluations per search)\n",
              n.p50_speedup, n.vectors, n.queries, k);

  EmitAnnJson(n);
  std::filesystem::remove_all(dir);

  if (n.recall_at_10 < kRecallGate) {
    std::fprintf(stderr, "FAILED: recall@10 %.4f below the %.2f gate\n",
                 n.recall_at_10, kRecallGate);
    return 1;
  }
  if (n.p50_speedup < 10.0 && scale != exp::RunScale::kSmoke) {
    // Advisory only: machines differ; the committed baseline + compare
    // script track the trend.
    std::printf("note: p50 speedup %.1fx below the 10x target\n",
                n.p50_speedup);
  }
  return 0;
}
