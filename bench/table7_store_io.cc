// Persistence I/O for the embedding store (src/store/): binary snapshot
// save/load vs. the text SaveModel/LoadModel path, the per-extension WAL
// append cost, and the group-commit fsync batching, on a FoRWaRD model
// trained at the configured scale.
//
// Shape expectations: the binary snapshot loads an order of magnitude
// faster than parsing the text dump (no locale-independent double
// parsing, one CRC pass); a buffered WAL append costs microseconds; and
// group commit (StoreOptions::group_commit_bytes) cuts the fsync count of
// a sync_every_append workload by the window factor while recovering the
// identical model — the durability layer stays off the dynamic-extension
// critical path even at power-loss-grade durability.
//
// Emits BENCH_store.json to the cwd (STEDB_BENCH_STORE_JSON overrides the
// path; "off" disables), uploaded as a CI artifact and diffed against the
// committed baseline by scripts/bench_compare.py.
#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/timer.h"
#include "src/exp/report.h"
#include "src/fwd/codec.h"
#include "src/fwd/serialize.h"
#include "src/store/embedding_store.h"
#include "src/store/snapshot.h"

using namespace stedb;

namespace {

/// Median-of-`reps` wall-clock seconds for `fn`.
template <typename Fn>
double TimeMedian(int reps, Fn&& fn) {
  std::vector<double> seconds;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    fn();
    seconds.push_back(t.ElapsedSeconds());
  }
  std::sort(seconds.begin(), seconds.end());
  return seconds[seconds.size() / 2];
}

struct StoreNumbers {
  std::string dataset;
  size_t vectors = 0;
  size_t dim = 0;
  double text_save_s = 0.0;
  double text_load_s = 0.0;
  double snap_save_s = 0.0;
  double snap_load_s = 0.0;
  double append_us = 0.0;          ///< buffered append, one fsync at the end
  double synced_append_us = 0.0;   ///< sync_every_append (fsync per record)
  double grouped_append_us = 0.0;  ///< group commit, 16-record byte window
  uint64_t synced_fsyncs = 0;
  uint64_t grouped_fsyncs = 0;
};

void EmitStoreJson(const std::vector<StoreNumbers>& rows) {
  const char* out_env = std::getenv("STEDB_BENCH_STORE_JSON");
  std::string path = out_env != nullptr && *out_env != '\0'
                         ? out_env
                         : "BENCH_store.json";
  if (path == "off" || path == "0") return;
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "BENCH_store.json: cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"store\",\n"
               "  \"hardware_concurrency\": %u,\n  \"datasets\": [\n",
               std::thread::hardware_concurrency());
  bool first = true;
  for (const StoreNumbers& r : rows) {
    std::fprintf(
        f,
        "%s    {\"name\": \"%s\", \"vectors\": %zu, \"dim\": %zu,\n"
        "     \"text_save_seconds\": %.6f, \"text_load_seconds\": %.6f,\n"
        "     \"snapshot_save_seconds\": %.6f, \"snapshot_load_seconds\": "
        "%.6f,\n"
        "     \"snapshot_vs_text_speedup\": %.2f,\n"
        "     \"append_us\": %.2f, \"synced_append_us\": %.2f,"
        " \"grouped_append_us\": %.2f,\n"
        "     \"synced_fsyncs\": %llu, \"grouped_fsyncs\": %llu,"
        " \"group_commit_fsync_reduction\": %.2f}",
        first ? "" : ",\n", r.dataset.c_str(), r.vectors, r.dim,
        r.text_save_s, r.text_load_s, r.snap_save_s, r.snap_load_s,
        r.snap_load_s > 0 ? r.text_load_s / r.snap_load_s : 0.0,
        r.append_us, r.synced_append_us, r.grouped_append_us,
        static_cast<unsigned long long>(r.synced_fsyncs),
        static_cast<unsigned long long>(r.grouped_fsyncs),
        r.grouped_fsyncs > 0
            ? static_cast<double>(r.synced_fsyncs) /
                  static_cast<double>(r.grouped_fsyncs)
            : 0.0);
    first = false;
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

/// Appends `n` synthetic records into a fresh store under `options` and
/// returns (us per append, fsyncs issued). The recovered model is checked
/// against `expect_records` so the durability modes cannot silently drop
/// data while looking fast.
std::pair<double, uint64_t> AppendWorkload(const std::string& dir,
                                           const fwd::ForwardModel& model,
                                           store::StoreOptions options,
                                           size_t n) {
  auto created = fwd::CreateForwardStore(dir, model, options);
  if (!created.ok()) std::exit(1);
  store::EmbeddingStore st = std::move(created).value();
  la::Vector phi(model.dim(), 0.25);
  Timer append_timer;
  for (size_t i = 0; i < n; ++i) {
    if (!st.Append(static_cast<db::FactId>(1000000 + i), phi).ok()) {
      std::exit(1);
    }
  }
  if (!st.Sync().ok()) std::exit(1);
  const double us =
      append_timer.ElapsedSeconds() / static_cast<double>(n) * 1e6;
  auto recovered = store::EmbeddingStore::Open(dir);
  if (!recovered.ok() || recovered.value().wal_records() != n) {
    std::fprintf(stderr, "append workload: bad recovery from %s\n",
                 dir.c_str());
    std::exit(1);
  }
  return {us, st.fsync_count()};
}

}  // namespace

int main(int argc, char** argv) {
  exp::RunScale scale = exp::ScaleFromEnv();
  exp::MethodConfig mcfg = exp::MethodConfig::ForScale(scale);
  bench::PrintHeader("Table VII", "embedding store I/O (snapshot vs text, "
                     "WAL append, group commit)", scale);

  const std::string dir =
      (std::filesystem::temp_directory_path() / "stedb_store_bench")
          .string();
  std::filesystem::create_directories(dir);
  const int reps = scale == exp::RunScale::kPaper ? 3 : 5;

  exp::TableWriter table({"Task", "text load", "snap load", "speedup",
                          "append/vec", "synced", "grouped",
                          "fsyncs s/g"});
  std::vector<StoreNumbers> json_rows;
  bool group_commit_wins = true;
  for (const std::string& name : bench::SelectDatasets(argc, argv)) {
    data::GeneratedDataset ds =
        bench::MakeDatasetOrDie(name, mcfg.data_scale);
    fwd::ForwardConfig fcfg = mcfg.forward;
    fcfg.seed = 7;
    fwd::AttrKeySet excluded;
    excluded.insert({ds.pred_rel, ds.pred_attr});
    auto emb = fwd::ForwardEmbedder::TrainStatic(&ds.database, ds.pred_rel,
                                                 excluded, fcfg);
    if (!emb.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   emb.status().ToString().c_str());
      continue;
    }
    const fwd::ForwardModel& model = emb.value().model();

    StoreNumbers row;
    row.dataset = name;
    row.vectors = model.num_embedded();
    row.dim = model.dim();

    const std::string text_path = dir + "/" + name + ".txt";
    const std::string snap_path = dir + "/" + name + ".snap";
    row.text_save_s = TimeMedian(reps, [&] {
      if (!fwd::SaveModel(model, text_path).ok()) std::exit(1);
    });
    row.text_load_s = TimeMedian(reps, [&] {
      if (!fwd::LoadModel(text_path).ok()) std::exit(1);
    });
    row.snap_save_s = TimeMedian(reps, [&] {
      if (!store::WriteSnapshot(model, snap_path).ok()) std::exit(1);
    });
    row.snap_load_s = TimeMedian(reps, [&] {
      if (!store::ReadSnapshot(snap_path).ok()) std::exit(1);
    });

    // Per-extension append cost under the three durability modes: journal
    // synthetic φ vectors (the I/O path neither knows nor cares that they
    // came from the solver). Group commit batches 16 records per fsync.
    const size_t kAppends = 512;
    store::StoreOptions buffered;
    store::StoreOptions synced;
    synced.sync_every_append = true;
    store::StoreOptions grouped = synced;
    grouped.group_commit_bytes =
        16 * store::WalWriter::RecordBytes(model.dim());

    uint64_t buffered_fsyncs = 0;
    std::tie(row.append_us, buffered_fsyncs) =
        AppendWorkload(dir + "/" + name + "_buf", model, buffered, kAppends);
    (void)buffered_fsyncs;
    std::tie(row.synced_append_us, row.synced_fsyncs) =
        AppendWorkload(dir + "/" + name + "_sync", model, synced, kAppends);
    std::tie(row.grouped_append_us, row.grouped_fsyncs) = AppendWorkload(
        dir + "/" + name + "_group", model, grouped, kAppends);
    if (row.grouped_fsyncs * 2 > row.synced_fsyncs) {
      group_commit_wins = false;
    }

    char speedup[32], append_cell[32], synced_cell[32], grouped_cell[32],
        fsync_cell[48];
    std::snprintf(speedup, sizeof(speedup), "%.1fx",
                  row.snap_load_s > 0 ? row.text_load_s / row.snap_load_s
                                      : 0.0);
    std::snprintf(append_cell, sizeof(append_cell), "%.1fus", row.append_us);
    std::snprintf(synced_cell, sizeof(synced_cell), "%.1fus",
                  row.synced_append_us);
    std::snprintf(grouped_cell, sizeof(grouped_cell), "%.1fus",
                  row.grouped_append_us);
    std::snprintf(fsync_cell, sizeof(fsync_cell), "%llu/%llu",
                  static_cast<unsigned long long>(row.synced_fsyncs),
                  static_cast<unsigned long long>(row.grouped_fsyncs));
    table.AddRow({name, exp::SecondsCell(row.text_load_s),
                  exp::SecondsCell(row.snap_load_s), speedup, append_cell,
                  synced_cell, grouped_cell, fsync_cell});
    json_rows.push_back(row);
    std::printf("%s done (%zu embeddings, dim %zu)\n", name.c_str(),
                model.num_embedded(), model.dim());
  }
  std::printf("\n%s\n", table.Render().c_str());
  std::printf("(snapshot load must beat text load; group commit %s the "
              "per-record fsync count at equal end-of-batch durability)\n",
              group_commit_wins ? "beats" : "DID NOT BEAT — investigate");
  EmitStoreJson(json_rows);
  std::filesystem::remove_all(dir);
  return 0;
}
