// Persistence I/O for the embedding store (src/store/): binary snapshot
// save/load vs. the text SaveModel/LoadModel path, and the per-extension
// WAL append cost, on a FoRWaRD model trained at the configured scale.
//
// Shape expectation: the binary snapshot loads an order of magnitude
// faster than parsing the text dump (no locale-independent double
// parsing, one CRC pass), and a buffered WAL append costs microseconds —
// the durability layer is off the dynamic-extension critical path.
#include <algorithm>
#include <cstdlib>
#include <filesystem>

#include "bench/bench_common.h"
#include "src/common/timer.h"
#include "src/exp/report.h"
#include "src/fwd/serialize.h"
#include "src/store/embedding_store.h"
#include "src/store/snapshot.h"

using namespace stedb;

namespace {

/// Median-of-`reps` wall-clock seconds for `fn`.
template <typename Fn>
double TimeMedian(int reps, Fn&& fn) {
  std::vector<double> seconds;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    fn();
    seconds.push_back(t.ElapsedSeconds());
  }
  std::sort(seconds.begin(), seconds.end());
  return seconds[seconds.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  exp::RunScale scale = exp::ScaleFromEnv();
  exp::MethodConfig mcfg = exp::MethodConfig::ForScale(scale);
  bench::PrintHeader("Table VII", "embedding store I/O (snapshot vs text, "
                     "WAL append)", scale);

  const std::string dir =
      (std::filesystem::temp_directory_path() / "stedb_store_bench")
          .string();
  std::filesystem::create_directories(dir);
  const int reps = scale == exp::RunScale::kPaper ? 3 : 5;

  exp::TableWriter table({"Task", "text save", "text load", "snap save",
                          "snap load", "speedup", "append/vec"});
  for (const std::string& name : bench::SelectDatasets(argc, argv)) {
    data::GeneratedDataset ds =
        bench::MakeDatasetOrDie(name, mcfg.data_scale);
    fwd::ForwardConfig fcfg = mcfg.forward;
    fcfg.seed = 7;
    fwd::AttrKeySet excluded;
    excluded.insert({ds.pred_rel, ds.pred_attr});
    auto emb = fwd::ForwardEmbedder::TrainStatic(&ds.database, ds.pred_rel,
                                                 excluded, fcfg);
    if (!emb.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   emb.status().ToString().c_str());
      continue;
    }
    const fwd::ForwardModel& model = emb.value().model();

    const std::string text_path = dir + "/" + name + ".txt";
    const std::string snap_path = dir + "/" + name + ".snap";
    const double text_save = TimeMedian(reps, [&] {
      if (!fwd::SaveModel(model, text_path).ok()) std::exit(1);
    });
    const double text_load = TimeMedian(reps, [&] {
      if (!fwd::LoadModel(text_path).ok()) std::exit(1);
    });
    const double snap_save = TimeMedian(reps, [&] {
      if (!store::WriteSnapshot(model, snap_path).ok()) std::exit(1);
    });
    const double snap_load = TimeMedian(reps, [&] {
      if (!store::ReadSnapshot(snap_path).ok()) std::exit(1);
    });

    // Per-extension append cost: journal synthetic φ vectors (the I/O
    // path neither knows nor cares that they came from the solver).
    const size_t kAppends = 512;
    auto created = store::EmbeddingStore::Create(dir + "/" + name, model);
    if (!created.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   created.status().ToString().c_str());
      continue;
    }
    store::EmbeddingStore st = std::move(created).value();
    la::Vector phi(model.dim(), 0.25);
    Timer append_timer;
    for (size_t i = 0; i < kAppends; ++i) {
      if (!st.Append(static_cast<db::FactId>(1000000 + i), phi).ok()) {
        std::exit(1);
      }
    }
    if (!st.Sync().ok()) std::exit(1);
    const double append_us =
        append_timer.ElapsedSeconds() / static_cast<double>(kAppends) * 1e6;

    char speedup[32], append_cell[32];
    std::snprintf(speedup, sizeof(speedup), "%.1fx",
                  snap_load > 0 ? text_load / snap_load : 0.0);
    std::snprintf(append_cell, sizeof(append_cell), "%.1fus", append_us);
    table.AddRow({name, exp::SecondsCell(text_save),
                  exp::SecondsCell(text_load), exp::SecondsCell(snap_save),
                  exp::SecondsCell(snap_load), speedup, append_cell});
    std::printf("%s done (%zu embeddings, dim %zu)\n", name.c_str(),
                model.num_embedded(), model.dim());
  }
  std::printf("\n%s\n", table.Render().c_str());
  std::printf("(snapshot load must beat text load; appends are buffered "
              "with one fsync at the end)\n");
  std::filesystem::remove_all(dir);
  return 0;
}
