// The networked serving drill, end to end over real HTTP: a trainer owns
// the model and journals extensions into a store directory; stedb_serve's
// service layer (serve::EmbeddingService) serves that directory over a
// loopback socket; an HTTP client sees a fact that did not exist at
// server start — after one Poll — with the exact bytes the trainer
// computed. Self-checking: exits nonzero if any step (or the bit-equality)
// fails, so CI runs it as the serve smoke drill.
//
//   $ ./serve_demo
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "src/api/engine.h"
#include "src/data/registry.h"
#include "src/db/cascade.h"
#include "src/exp/embedding_method.h"
#include "src/serve/http.h"
#include "src/serve/service.h"

using namespace stedb;

namespace {

/// Bit-exact comparison between a raw=1 HTTP body and the trainer vector.
bool SameBits(const std::string& body, const la::Vector& expected) {
  return body.size() == expected.size() * sizeof(double) &&
         std::memcmp(body.data(), expected.data(), body.size()) == 0;
}

}  // namespace

int main() {
  // ---- Trainer: train, persist, keep journaling -------------------------
  data::GenConfig gen;
  gen.scale = 0.15;
  gen.seed = 7;
  data::GeneratedDataset ds = std::move(data::MakeGenes(gen)).value();
  api::MethodOptions options =
      exp::MethodConfig::ForScale(exp::RunScale::kSmoke);
  api::AttrKeySet excluded;
  excluded.insert({ds.pred_rel, ds.pred_attr});
  auto trained = api::Engine::Train(&ds.database, "forward", ds.pred_rel,
                                    excluded, options, /*seed=*/1);
  if (!trained.ok()) {
    std::fprintf(stderr, "train: %s\n",
                 trained.status().ToString().c_str());
    return 1;
  }
  api::Engine engine = std::move(trained).value();
  const std::string dir =
      (std::filesystem::temp_directory_path() / "stedb_serve_demo")
          .string();
  std::filesystem::remove_all(dir);
  if (!engine.AttachJournal(dir).ok()) {
    std::fprintf(stderr, "journal attach failed\n");
    return 1;
  }
  std::printf("trainer: %s model journaled into %s\n",
              engine.method().c_str(), dir.c_str());

  // ---- Server: the service stedb_serve wraps, on an ephemeral port ------
  serve::ServeOptions serve_options;
  serve_options.poll_interval_ms = 0;  // we Poll deterministically below
  auto opened = serve::EmbeddingService::Open(dir, serve_options);
  if (!opened.ok()) {
    std::fprintf(stderr, "open: %s\n", opened.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<serve::EmbeddingService> service = std::move(opened).value();
  if (!service->Start("127.0.0.1", 0).ok()) {
    std::fprintf(stderr, "server start failed\n");
    return 1;
  }
  std::printf("server: listening on 127.0.0.1:%d (dim %zu)\n",
              service->port(), service->dim());

  auto conn = serve::HttpClient::Connect("127.0.0.1", service->port());
  if (!conn.ok()) {
    std::fprintf(stderr, "connect: %s\n",
                 conn.status().ToString().c_str());
    return 1;
  }
  serve::HttpClient client = std::move(conn).value();

  // ---- Client: every trained sample served bit-identically --------------
  size_t checked = 0, mismatched = 0;
  for (db::FactId f : ds.Samples()) {
    auto live = engine.Embed(f);
    if (!live.ok()) continue;
    auto resp =
        client.Get("/embed?fact=" + std::to_string(f) + "&raw=1");
    ++checked;
    if (!resp.ok() || resp.value().status != 200 ||
        !SameBits(resp.value().body, live.value())) {
      ++mismatched;
    }
  }
  std::printf("client: %zu/%zu embeddings bit-identical over HTTP\n",
              checked - mismatched, checked);

  // A /topk sanity probe against the serving-side scorer.
  const db::FactId probe = ds.Samples().front();
  auto top =
      client.Get("/topk?fact=" + std::to_string(probe) + "&k=3");
  const bool topk_ok = top.ok() && top.value().status == 200 &&
                       top.value().body.find("\"results\":[{\"fact\":") !=
                           std::string::npos;
  std::printf("client: /topk(%d) -> %s\n", probe,
              topk_ok ? "ranked results" : "FAILED");

  // ---- Trainer: a dynamic arrival while the server runs -----------------
  db::FactId victim = ds.Samples().back();
  auto cascade = db::CascadeDelete(ds.database, victim);
  if (!cascade.ok()) return 1;
  auto new_ids = db::ReinsertBatch(ds.database, cascade.value());
  if (!new_ids.ok()) return 1;
  if (!engine.ExtendToFacts(new_ids.value()).ok()) return 1;
  db::FactId new_pred = db::kNoFact;
  for (db::FactId f : new_ids.value()) {
    if (ds.database.fact(f).rel == ds.pred_rel) new_pred = f;
  }
  std::printf("trainer: extended to %zu new facts while the server was "
              "up\n",
              new_ids.value().size());

  // ---- Server catches up; client sees the new fact ----------------------
  auto before =
      client.Get("/embed?fact=" + std::to_string(new_pred) + "&raw=1");
  const bool invisible_before =
      before.ok() && before.value().status == 404;
  auto polled = service->PollNow();
  if (!polled.ok()) {
    std::fprintf(stderr, "poll: %s\n",
                 polled.status().ToString().c_str());
    return 1;
  }
  auto after =
      client.Get("/embed?fact=" + std::to_string(new_pred) + "&raw=1");
  const bool identical = after.ok() && after.value().status == 200 &&
                         SameBits(after.value().body,
                                  engine.Embed(new_pred).value());
  std::printf("client: new fact 404 before poll: %s; Poll applied %zu "
              "records; served bit-identical after: %s\n",
              invisible_before ? "yes" : "NO",
              polled.value(), identical ? "yes" : "NO");

  service->Stop();
  const bool ok = mismatched == 0 && topk_ok && invisible_before &&
                  polled.value() > 0 && identical;
  std::printf(ok ? "serve demo: OK\n" : "serve demo: FAILED\n");
  return ok ? 0 : 1;
}
