// Explores a generated database: schema dump, per-relation stats, walk
// schemes from the prediction relation, active domains, and a CSV
// save/load round trip.
//
//   $ ./schema_explorer [dataset] [output_dir]
#include <cstdio>
#include <string>

#include "src/data/registry.h"
#include "src/db/csv.h"
#include "src/fwd/walk_scheme.h"

using namespace stedb;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "mutagenesis";
  const std::string out_dir =
      argc > 2 ? argv[2] : "/tmp/stedb_" + name;

  data::GenConfig gen;
  gen.scale = 0.1;
  auto ds_result = data::MakeDataset(name, gen);
  if (!ds_result.ok()) {
    std::fprintf(stderr, "%s\n", ds_result.status().ToString().c_str());
    return 1;
  }
  data::GeneratedDataset ds = std::move(ds_result).value();
  const db::Schema& schema = ds.database.schema();

  std::printf("=== schema ===\n%s\n", schema.ToString().c_str());
  std::printf("=== stats ===\n%s\n", ds.database.StatsString().c_str());

  std::printf("=== walk schemes (length <= 2) from %s ===\n",
              schema.relation(ds.pred_rel).name.c_str());
  auto schemes = fwd::EnumerateWalkSchemes(schema, ds.pred_rel, 2);
  for (size_t i = 0; i < schemes.size() && i < 15; ++i) {
    std::printf("  %s\n", schemes[i].ToString(schema).c_str());
  }
  if (schemes.size() > 15) {
    std::printf("  ... (%zu total)\n", schemes.size());
  }

  db::AttrId label = ds.pred_attr;
  auto dom = ds.database.ActiveDomain(ds.pred_rel, label);
  std::printf("\n=== label domain (%s) ===\n",
              schema.relation(ds.pred_rel).attrs[label].name.c_str());
  for (const db::Value& v : dom) std::printf("  %s\n", v.ToString().c_str());

  Status st = db::SaveDatabase(ds.database, out_dir);
  if (!st.ok()) {
    std::fprintf(stderr, "save: %s\n", st.ToString().c_str());
    return 1;
  }
  auto loaded = db::LoadDatabase(out_dir);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("\nCSV round trip via %s: %zu -> %zu facts, validation: %s\n",
              out_dir.c_str(), ds.database.NumFacts(),
              loaded.value().NumFacts(),
              loaded.value().ValidateAll().ToString().c_str());
  return 0;
}
