// Quickstart: the full stable-embedding workflow on a small generated
// database — static training, a dynamic insertion, and the stability
// guarantee, in ~80 lines.
//
//   $ ./quickstart
#include <cstdio>

#include "src/data/registry.h"
#include "src/exp/embedding_method.h"
#include "src/exp/partition.h"
#include "src/exp/static_experiment.h"
#include "src/n2v/dynamic_node2vec.h"

using namespace stedb;

int main() {
  // 1. A relational database. Generators mirror the paper's benchmarks;
  //    here: Genes (3 relations, FK-linked, 15-class localization task).
  data::GenConfig gen;
  gen.scale = 0.15;
  gen.seed = 7;
  auto ds_result = data::MakeGenes(gen);
  if (!ds_result.ok()) {
    std::fprintf(stderr, "dataset: %s\n",
                 ds_result.status().ToString().c_str());
    return 1;
  }
  data::GeneratedDataset ds = std::move(ds_result).value();
  std::printf("database: %zu facts across %zu relations\n",
              ds.database.NumFacts(), ds.database.schema().num_relations());

  // 2. Static phase: train a FoRWaRD embedding of the prediction relation.
  //    The label column is excluded — embeddings never see it.
  exp::MethodConfig mcfg = exp::MethodConfig::ForScale(exp::RunScale::kSmoke);
  auto embedder = exp::MakeMethod(exp::MethodKind::kForward, mcfg, /*seed=*/1);
  Status st = embedder->TrainStatic(&ds.database, ds.pred_rel,
                                    exp::LabelExclusion(ds));
  if (!st.ok()) {
    std::fprintf(stderr, "train: %s\n", st.ToString().c_str());
    return 1;
  }
  db::FactId some_fact = ds.Samples().front();
  la::Vector v = embedder->Embed(some_fact).value();
  std::printf("static phase done; dim=%zu, |phi(f0)|=%.3f\n", v.size(),
              la::Norm2(v));

  // 3. Dynamic phase: simulate an arrival by deleting one prediction tuple
  //    (with cascade) and re-inserting it as "new".
  Rng rng(99);
  db::Database& database = ds.database;
  db::FactId victim = ds.Samples().back();
  auto cascade = db::CascadeDelete(database, victim);
  if (!cascade.ok()) {
    std::fprintf(stderr, "cascade: %s\n",
                 cascade.status().ToString().c_str());
    return 1;
  }
  std::printf("cascade removed %zu facts\n", cascade.value().facts.size());

  // Snapshot old embeddings to demonstrate stability.
  n2v::EmbeddingSnapshot snapshot;
  for (db::FactId f : ds.Samples()) {
    auto e = embedder->Embed(f);
    if (e.ok()) snapshot.Record(f, std::move(e).value());
  }

  auto new_ids = db::ReinsertBatch(database, cascade.value());
  if (!new_ids.ok()) {
    std::fprintf(stderr, "reinsert: %s\n",
                 new_ids.status().ToString().c_str());
    return 1;
  }
  st = embedder->ExtendToFacts(new_ids.value());
  if (!st.ok()) {
    std::fprintf(stderr, "extend: %s\n", st.ToString().c_str());
    return 1;
  }

  // 4. The stability contract: every old vector is bit-identical.
  double drift = snapshot.MaxDrift([&](db::FactId f) {
    return embedder->Embed(f).value();
  });
  db::FactId new_pred = db::kNoFact;
  for (db::FactId f : new_ids.value()) {
    if (database.fact(f).rel == ds.pred_rel) new_pred = f;
  }
  la::Vector nv = embedder->Embed(new_pred).value();
  std::printf("dynamic phase done; |phi(new)|=%.3f, old-embedding drift=%g\n",
              la::Norm2(nv), drift);
  std::printf(drift == 0.0 ? "stability: OK (old embeddings frozen)\n"
                           : "stability: VIOLATED\n");
  return drift == 0.0 ? 0 : 1;
}
