// Quickstart: the full stable-embedding workflow through the public
// api::Engine — static training via the method registry, a batch read, a
// dynamic insertion, and the stability guarantee, in ~80 lines.
//
//   $ ./quickstart
#include <cstdio>

#include "src/api/engine.h"
#include "src/data/registry.h"
#include "src/db/cascade.h"
#include "src/exp/embedding_method.h"
#include "src/n2v/dynamic_node2vec.h"

using namespace stedb;

int main() {
  // 1. A relational database. Generators mirror the paper's benchmarks;
  //    here: Genes (3 relations, FK-linked, 15-class localization task).
  data::GenConfig gen;
  gen.scale = 0.15;
  gen.seed = 7;
  auto ds_result = data::MakeGenes(gen);
  if (!ds_result.ok()) {
    std::fprintf(stderr, "dataset: %s\n",
                 ds_result.status().ToString().c_str());
    return 1;
  }
  data::GeneratedDataset ds = std::move(ds_result).value();
  std::printf("database: %zu facts across %zu relations\n",
              ds.database.NumFacts(), ds.database.schema().num_relations());

  // 2. Static phase: the engine resolves "forward" through the method
  //    registry (any api::RegisterMethod name works) and trains it. The
  //    label column is excluded — embeddings never see it.
  api::MethodOptions options = exp::MethodConfig::ForScale(
      exp::RunScale::kSmoke);  // preset hyperparameters
  api::AttrKeySet excluded;
  excluded.insert({ds.pred_rel, ds.pred_attr});
  auto trained = api::Engine::Train(&ds.database, "forward", ds.pred_rel,
                                    excluded, options, /*seed=*/1);
  if (!trained.ok()) {
    std::fprintf(stderr, "train: %s\n",
                 trained.status().ToString().c_str());
    return 1;
  }
  api::Engine engine = std::move(trained).value();
  la::Vector v = engine.Embed(ds.Samples().front()).value();
  std::printf("static phase done (%s); dim=%zu, |phi(f0)|=%.3f\n",
              engine.method().c_str(), engine.dim(), la::Norm2(v));

  // 3. The batch read path: every sample in one call (one row per fact).
  la::Matrix all = engine.EmbedBatch(ds.Samples()).value();
  std::printf("batch read: %zu x %zu embedding matrix\n", all.rows(),
              all.cols());

  // 4. Dynamic phase: simulate an arrival by deleting one prediction tuple
  //    (with cascade) and re-inserting it as "new".
  db::Database& database = ds.database;
  db::FactId victim = ds.Samples().back();
  auto cascade = db::CascadeDelete(database, victim);
  if (!cascade.ok()) {
    std::fprintf(stderr, "cascade: %s\n",
                 cascade.status().ToString().c_str());
    return 1;
  }
  std::printf("cascade removed %zu facts\n", cascade.value().facts.size());

  // Snapshot old embeddings to demonstrate stability.
  n2v::EmbeddingSnapshot snapshot;
  for (db::FactId f : ds.Samples()) {
    auto e = engine.Embed(f);
    if (e.ok()) snapshot.Record(f, std::move(e).value());
  }

  auto new_ids = db::ReinsertBatch(database, cascade.value());
  if (!new_ids.ok()) {
    std::fprintf(stderr, "reinsert: %s\n",
                 new_ids.status().ToString().c_str());
    return 1;
  }
  Status st = engine.ExtendToFacts(new_ids.value());
  if (!st.ok()) {
    std::fprintf(stderr, "extend: %s\n", st.ToString().c_str());
    return 1;
  }

  // 5. The stability contract: every old vector is bit-identical.
  double drift = snapshot.MaxDrift(
      [&](db::FactId f) { return engine.Embed(f).value(); });
  db::FactId new_pred = db::kNoFact;
  for (db::FactId f : new_ids.value()) {
    if (database.fact(f).rel == ds.pred_rel) new_pred = f;
  }
  la::Vector nv = engine.Embed(new_pred).value();
  std::printf("dynamic phase done; |phi(new)|=%.3f, old-embedding drift=%g\n",
              la::Norm2(nv), drift);
  std::printf(drift == 0.0 ? "stability: OK (old embeddings frozen)\n"
                           : "stability: VIOLATED\n");
  return drift == 0.0 ? 0 : 1;
}
