// Trainer + serving replica over one store directory — the process
// separation the serving path exists for. One side owns the model and
// journals into a store::EmbeddingStore (via api::Engine::AttachJournal);
// the other side never touches the trainer: it opens the directory cold
// with api::ServingSession (mmap'd snapshot, zero-copy reads) and tails
// the WAL with Poll() to pick up extensions as they are journaled.
//
// Everything runs in one process here so the example is self-checking,
// but nothing below shares state across the trainer/reader line except
// the directory — run the reader half in a second process and it behaves
// identically.
//
//   $ ./serving_replica
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "src/api/engine.h"
#include "src/api/serving.h"
#include "src/data/registry.h"
#include "src/db/cascade.h"
#include "src/exp/embedding_method.h"

using namespace stedb;

namespace {

/// Bit-exact comparison between a served view and the trainer's vector.
bool SameBits(Span<const double> served, const la::Vector& expected) {
  return served.size() == expected.size() &&
         std::memcmp(served.data(), expected.data(),
                     expected.size() * sizeof(double)) == 0;
}

}  // namespace

int main() {
  // ---- Trainer process -------------------------------------------------
  data::GenConfig gen;
  gen.scale = 0.15;
  gen.seed = 7;
  data::GeneratedDataset ds = std::move(data::MakeGenes(gen)).value();
  api::MethodOptions options =
      exp::MethodConfig::ForScale(exp::RunScale::kSmoke);
  api::AttrKeySet excluded;
  excluded.insert({ds.pred_rel, ds.pred_attr});
  auto trained = api::Engine::Train(&ds.database, "forward", ds.pred_rel,
                                    excluded, options, /*seed=*/1);
  if (!trained.ok()) {
    std::fprintf(stderr, "train: %s\n", trained.status().ToString().c_str());
    return 1;
  }
  api::Engine engine = std::move(trained).value();

  const std::string dir =
      (std::filesystem::temp_directory_path() / "stedb_serving_replica")
          .string();
  std::filesystem::remove_all(dir);
  Status st = engine.AttachJournal(dir);
  if (!st.ok()) {
    std::fprintf(stderr, "journal: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("trainer: %s model journaled into %s\n",
              engine.method().c_str(), dir.c_str());

  // ---- Reader process: cold open --------------------------------------
  auto opened = api::ServingSession::Open(dir);
  if (!opened.ok()) {
    std::fprintf(stderr, "open: %s\n", opened.status().ToString().c_str());
    return 1;
  }
  api::ServingSession session = std::move(opened).value();
  size_t checked = 0, mismatched = 0;
  for (db::FactId f : ds.Samples()) {
    auto live = engine.Embed(f);
    if (!live.ok()) continue;
    auto served = session.Embed(f);
    ++checked;
    if (!served.ok() || !SameBits(served.value(), live.value())) {
      ++mismatched;
    }
  }
  std::printf("reader: cold open serves %zu vectors (dim %zu), %zu/%zu "
              "bit-identical to the trainer\n",
              session.num_embedded(), session.dim(), checked - mismatched,
              checked);

  // ---- Trainer: a dynamic arrival (cascade delete + reinsert) ----------
  db::FactId victim = ds.Samples().back();
  auto cascade = db::CascadeDelete(ds.database, victim);
  if (!cascade.ok()) {
    std::fprintf(stderr, "cascade: %s\n",
                 cascade.status().ToString().c_str());
    return 1;
  }
  auto new_ids = db::ReinsertBatch(ds.database, cascade.value());
  if (!new_ids.ok()) {
    std::fprintf(stderr, "reinsert: %s\n",
                 new_ids.status().ToString().c_str());
    return 1;
  }
  st = engine.ExtendToFacts(new_ids.value());
  if (!st.ok()) {
    std::fprintf(stderr, "extend: %s\n", st.ToString().c_str());
    return 1;
  }
  db::FactId new_pred = db::kNoFact;
  for (db::FactId f : new_ids.value()) {
    if (ds.database.fact(f).rel == ds.pred_rel) new_pred = f;
  }
  std::printf("trainer: extended to %zu new facts (journaled as WAL "
              "records)\n",
              new_ids.value().size());

  // ---- Reader: catch up without reopening ------------------------------
  const bool visible_before = session.Embed(new_pred).ok();
  auto polled = session.Poll();
  if (!polled.ok()) {
    std::fprintf(stderr, "poll: %s\n", polled.status().ToString().c_str());
    return 1;
  }
  const bool identical =
      SameBits(session.Embed(new_pred).value(),
               engine.Embed(new_pred).value());
  std::printf("reader: new fact visible before poll: %s; Poll() applied "
              "%zu records; new embedding bit-identical: %s\n",
              visible_before ? "yes (unexpected!)" : "no",
              polled.value(), identical ? "yes" : "NO");

  const bool ok = mismatched == 0 && !visible_before &&
                  polled.value() > 0 && identical;
  std::printf(ok ? "serving replica: OK\n" : "serving replica: FAILED\n");
  return ok ? 0 : 1;
}
