// Static column prediction (the paper's Table III protocol) on a chosen
// dataset: FoRWaRD vs Node2Vec vs the flat no-FK baseline, k-fold
// cross-validated.
//
//   $ ./column_prediction [hepatitis|genes|mutagenesis|world|mondial]
#include <cstdio>
#include <string>

#include "src/data/registry.h"
#include "src/exp/report.h"
#include "src/exp/static_experiment.h"

using namespace stedb;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "genes";
  data::GenConfig gen;
  gen.scale = 0.12;
  gen.seed = 17;
  auto ds_result = data::MakeDataset(name, gen);
  if (!ds_result.ok()) {
    std::fprintf(stderr, "%s\n", ds_result.status().ToString().c_str());
    return 1;
  }
  data::GeneratedDataset ds = std::move(ds_result).value();
  std::printf("dataset %s: %zu facts, %zu samples, task: predict %s.%s\n\n",
              ds.name.c_str(), ds.database.NumFacts(), ds.Samples().size(),
              ds.database.schema().relation(ds.pred_rel).name.c_str(),
              ds.database.schema()
                  .relation(ds.pred_rel)
                  .attrs[ds.pred_attr]
                  .name.c_str());

  exp::MethodConfig mcfg = exp::MethodConfig::ForScale(exp::RunScale::kSmoke);
  exp::StaticConfig scfg;
  scfg.folds = 3;
  scfg.embedding_per_fold = false;  // fast demo; benches use the paper protocol

  exp::TableWriter table({"method", "accuracy", "baseline"});
  for (const char* kind : {"forward", "node2vec"}) {
    auto res = exp::RunStaticExperiment(ds, kind, mcfg, scfg);
    if (!res.ok()) {
      std::fprintf(stderr, "%s\n", res.status().ToString().c_str());
      return 1;
    }
    table.AddRow({res.value().method,
                  exp::AccuracyCell(res.value().mean_accuracy,
                                    res.value().std_accuracy),
                  exp::AccuracyCell(res.value().majority_baseline, 0.0)});
  }
  auto flat = exp::RunFlatBaseline(ds, scfg);
  if (flat.ok()) {
    table.AddRow({"FlatBaseline",
                  exp::AccuracyCell(flat.value().mean_accuracy,
                                    flat.value().std_accuracy),
                  exp::AccuracyCell(flat.value().majority_baseline, 0.0)});
  }
  std::printf("%s\n", table.Render().c_str());
  return 0;
}
