// Record-similarity search over tuple embeddings — the downstream task
// family motivating the paper's introduction (record similarity / linking
// / entity resolution). Trains a FoRWaRD embedding on the Genes database,
// builds a nearest-neighbor index, and shows that a tuple's closest
// neighbors in embedding space overwhelmingly share its (hidden) class,
// then persists the model and reloads it.
//
//   $ ./similarity_search [k]
#include <cstdio>
#include <cstdlib>

#include "src/data/registry.h"
#include "src/fwd/forward.h"
#include "src/fwd/serialize.h"
#include "src/ml/knn.h"

using namespace stedb;

int main(int argc, char** argv) {
  const size_t k = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 5;

  data::GenConfig gen;
  gen.scale = 0.2;
  gen.seed = 31;
  data::GeneratedDataset ds = std::move(data::MakeGenes(gen)).value();

  fwd::ForwardConfig cfg;
  cfg.dim = 24;
  cfg.max_walk_len = 2;
  cfg.nsamples = 24;
  cfg.epochs = 12;
  cfg.lr = 0.01;
  fwd::AttrKeySet excluded;
  excluded.insert({ds.pred_rel, ds.pred_attr});
  auto emb = fwd::ForwardEmbedder::TrainStatic(&ds.database, ds.pred_rel,
                                               excluded, cfg);
  if (!emb.ok()) {
    std::fprintf(stderr, "train: %s\n", emb.status().ToString().c_str());
    return 1;
  }

  // One batch read for the whole index instead of a per-fact copy loop.
  la::Matrix vectors(ds.Samples().size(), emb.value().dim());
  Status batch = emb.value().EmbedBatch(ds.Samples(), vectors);
  if (!batch.ok()) {
    std::fprintf(stderr, "embed batch: %s\n", batch.ToString().c_str());
    return 1;
  }
  ml::EmbeddingIndex index(ml::SimilarityMetric::kCosine);
  index.AddBatch(ds.Samples(), vectors);
  std::printf("indexed %zu gene embeddings (dim %zu)\n\n", index.size(),
              emb.value().dim());

  // How often do a tuple's top-k neighbors share its class? (The index
  // never saw the labels.)
  size_t same = 0, total = 0;
  for (db::FactId f : ds.Samples()) {
    auto neighbors = index.TopKOf(f, k).value();
    for (const ml::Neighbor& n : neighbors) {
      ++total;
      if (ds.LabelOf(n.fact) == ds.LabelOf(f)) ++same;
    }
  }
  const double purity = 100.0 * static_cast<double>(same) /
                        static_cast<double>(total > 0 ? total : 1);
  // Chance level = average class prior mass.
  std::printf("top-%zu neighbor label purity: %.1f%% (chance would be "
              "~%.1f%% under the class priors)\n\n",
              k, purity, 100.0 / 6.0);

  // Show one query.
  db::FactId query = ds.Samples().front();
  std::printf("query %s (localization %s):\n",
              ds.database.value(query, 0).ToString().c_str(),
              ds.LabelOf(query).c_str());
  const std::vector<ml::Neighbor> query_hits =
      index.TopKOf(query, k).value();
  for (const ml::Neighbor& n : query_hits) {
    std::printf("  %-8s sim=%.3f  localization=%s\n",
                ds.database.value(n.fact, 0).ToString().c_str(), n.score,
                ds.LabelOf(n.fact).c_str());
  }

  // Persist and reload the trained model (vectors must round-trip).
  const std::string path = "/tmp/stedb_genes.fwdmodel";
  Status st = fwd::SaveModel(emb.value().model(), path);
  if (!st.ok()) {
    std::fprintf(stderr, "save: %s\n", st.ToString().c_str());
    return 1;
  }
  auto loaded = fwd::LoadModel(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const la::Vector a = emb.value().Embed(query).value();
  const la::Vector b = loaded.value().Embed(query).value();
  std::printf("\nmodel round trip via %s: %zu vectors, max coord diff %g\n",
              path.c_str(), loaded.value().num_embedded(),
              la::Distance(a, b));
  return purity > 25.0 ? 0 : 1;
}
