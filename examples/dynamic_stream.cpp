// Simulates a live database receiving a stream of inserts: 30% of the
// Hepatitis patients are held out, then arrive one batch at a time. After
// each arrival the embedding is extended (old vectors frozen) and the
// downstream classifier — trained once, before the stream started — scores
// the new patient. This is the paper's one-by-one regime as an application.
//
// The stream is journaled into a store::EmbeddingStore (binary snapshot of
// the trained model + an append-only WAL of the extensions), and the run
// ends with a kill-and-recover drill: a torn write is injected into the
// journal, then the store is opened cold — exactly what a restarted
// process would do — and the recovered embeddings are checked against the
// live model bit for bit.
//
// Journaling is method-agnostic since the store::ModelCodec registry:
// `dynamic_stream node2vec` runs the exact same drill against a Node2Vec
// journal ('N2V ' snapshot + the same WAL format), and the cold recovery
// resolves the right codec from the snapshot header alone.
//
//   $ ./dynamic_stream [forward|node2vec]
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>

#include "src/data/registry.h"
#include "src/exp/embedding_method.h"
#include "src/exp/partition.h"
#include "src/exp/static_experiment.h"
#include "src/ml/svm.h"
#include "src/store/embedding_store.h"

using namespace stedb;

int main(int argc, char** argv) {
  // Any name in the method registry works here — that is the point of the
  // string-keyed API.
  const std::string kind = argc > 1 ? argv[1] : "forward";

  data::GenConfig gen;
  gen.scale = 0.12;
  gen.seed = 11;
  data::GeneratedDataset ds = data::MakeHepatitis(gen).value();
  db::Database& database = ds.database;

  Rng rng(5);
  auto part =
      exp::PartitionDynamic(database, ds.pred_rel, ds.pred_attr, 0.3, rng);
  if (!part.ok()) {
    std::fprintf(stderr, "partition: %s\n",
                 part.status().ToString().c_str());
    return 1;
  }
  std::printf("held out %zu batches (%zu facts) as the arrival stream\n",
              part.value().batches.size(), part.value().total_removed);

  exp::MethodConfig mcfg = exp::MethodConfig::ForScale(exp::RunScale::kSmoke);
  auto made = exp::MakeMethod(kind, mcfg, 3);
  if (!made.ok()) {
    std::fprintf(stderr, "method: %s\n", made.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<exp::EmbeddingMethod> embedder = std::move(made).value();
  Status st = embedder->TrainStatic(&database, ds.pred_rel,
                                    exp::LabelExclusion(ds));
  if (!st.ok()) {
    std::fprintf(stderr, "train: %s\n", st.ToString().c_str());
    return 1;
  }

  // Journal the model: snapshot now, one WAL record per extension below.
  const std::string store_dir =
      (std::filesystem::temp_directory_path() / "stedb_dynamic_stream")
          .string();
  std::filesystem::remove_all(store_dir);
  const bool journaled = [&] {
    Status attached = embedder->AttachJournal(store_dir);
    if (attached.ok()) {
      std::printf("journaling extensions into %s\n", store_dir.c_str());
      return true;
    }
    std::printf("journaling off (%s)\n", attached.ToString().c_str());
    return false;
  }();

  // Downstream model trained on the pre-stream snapshot only.
  ml::LabelEncoder encoder;
  for (const std::string& c : ds.class_names) encoder.Encode(c);
  auto features = exp::EmbeddingFeatures(ds, *embedder,
                                         part.value().old_pred_facts,
                                         encoder);
  ml::LogisticClassifier clf;
  st = clf.Fit(features.value());
  if (!st.ok()) {
    std::fprintf(stderr, "classifier: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("%s trained on %zu patients; streaming arrivals...\n\n",
              embedder->Name().c_str(), features.value().size());

  size_t correct = 0, seen = 0;
  const auto& batches = part.value().batches;
  for (size_t b = batches.size(); b > 0; --b) {
    auto new_ids = exp::ReplayBatch(database, batches[b - 1]);
    if (!new_ids.ok()) {
      std::fprintf(stderr, "replay: %s\n",
                   new_ids.status().ToString().c_str());
      return 1;
    }
    st = embedder->ExtendToFacts(new_ids.value());
    if (!st.ok()) {
      std::fprintf(stderr, "extend: %s\n", st.ToString().c_str());
      return 1;
    }
    for (db::FactId f : new_ids.value()) {
      if (database.fact(f).rel != ds.pred_rel) continue;
      la::Vector v = embedder->Embed(f).value();
      const int pred = clf.Predict(v);
      const int truth = encoder.Lookup(ds.LabelOf(f));
      ++seen;
      if (pred == truth) ++correct;
      if (seen % 5 == 0 || seen == 1) {
        std::printf("  after %3zu arrivals: rolling accuracy %.1f%%\n", seen,
                    100.0 * static_cast<double>(correct) /
                        static_cast<double>(seen));
      }
    }
  }
  std::printf("\nfinal: %zu/%zu new patients classified correctly (%.1f%%)\n",
              correct, seen,
              100.0 * static_cast<double>(correct) /
                  static_cast<double>(seen > 0 ? seen : 1));

  if (!journaled) return 0;

  // ---- Kill-and-recover drill ------------------------------------------
  // Simulate a process killed mid-append: leave half a record (a length
  // header and some payload bytes, no valid checksum) at the journal tail.
  {
    std::ofstream wal(store::EmbeddingStore::WalPath(store_dir),
                      std::ios::binary | std::ios::app);
    const char torn[] = "\x48\x00\x00\x00\xde\xad\xbe\xef torn!";
    wal.write(torn, sizeof(torn) - 1);
  }
  std::printf("\ninjected a torn write into the journal; recovering...\n");

  auto recovered = store::EmbeddingStore::Open(store_dir);
  if (!recovered.ok()) {
    std::fprintf(stderr, "recover: %s\n",
                 recovered.status().ToString().c_str());
    return 1;
  }
  std::printf("  recovered a '%s' store: %zu embeddings (%zu from the "
              "WAL), torn tail %s\n",
              recovered.value().method().c_str(),
              recovered.value().model().num_embedded(),
              recovered.value().wal_records(),
              recovered.value().recovered_torn_tail() ? "dropped" : "absent");

  auto drift = embedder->VerifyJournal();
  if (!drift.ok()) {
    std::fprintf(stderr, "verify: %s\n", drift.status().ToString().c_str());
    return 1;
  }
  std::printf("  max |recovered - live| = %g %s\n", drift.value(),
              drift.value() == 0.0 ? "(bit-exact)" : "(MISMATCH)");
  return drift.value() == 0.0 ? 0 : 1;
}
