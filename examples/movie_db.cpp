// The paper's running example (Figure 2): the movie database, its walk
// schemes (Figure 4), exact walk-destination distributions (Example 5.3),
// and the dynamic insertion of collaboration c4 (Example 3.1).
//
//   $ ./movie_db
#include <cstdio>
#include <memory>

#include "src/db/cascade.h"
#include "src/db/database.h"
#include "src/fwd/forward.h"
#include "src/fwd/walk_distribution.h"
#include "src/fwd/walk_scheme.h"

using namespace stedb;
using db::AttrType;
using db::Value;

namespace {

std::shared_ptr<const db::Schema> MovieSchema() {
  auto schema = std::make_shared<db::Schema>();
  (void)schema->AddRelation("MOVIES",
                            {{"mid", AttrType::kText},
                             {"studio", AttrType::kText},
                             {"title", AttrType::kText},
                             {"genre", AttrType::kText},
                             {"budget", AttrType::kText}},
                            {"mid"});
  (void)schema->AddRelation("ACTORS",
                            {{"aid", AttrType::kText},
                             {"name", AttrType::kText},
                             {"worth", AttrType::kText}},
                            {"aid"});
  (void)schema->AddRelation("STUDIOS",
                            {{"sid", AttrType::kText},
                             {"name", AttrType::kText},
                             {"loc", AttrType::kText}},
                            {"sid"});
  (void)schema->AddRelation("COLLABORATIONS",
                            {{"actor1", AttrType::kText},
                             {"actor2", AttrType::kText},
                             {"movie", AttrType::kText}},
                            {"actor1", "actor2", "movie"});
  (void)schema->AddForeignKey("MOVIES", {"studio"}, "STUDIOS");
  (void)schema->AddForeignKey("COLLABORATIONS", {"actor1"}, "ACTORS");
  (void)schema->AddForeignKey("COLLABORATIONS", {"actor2"}, "ACTORS");
  (void)schema->AddForeignKey("COLLABORATIONS", {"movie"}, "MOVIES");
  return schema;
}

db::FactId Must(Result<db::FactId> r) {
  if (!r.ok()) {
    std::fprintf(stderr, "insert failed: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  return r.value();
}

}  // namespace

int main() {
  auto schema = MovieSchema();
  db::Database database(schema);

  // Figure 2's facts (studios first: FK targets must exist).
  Must(database.Insert("STUDIOS", {Value::Text("s01"),
                                   Value::Text("Warner Bros."),
                                   Value::Text("LA")}));
  Must(database.Insert("STUDIOS", {Value::Text("s02"),
                                   Value::Text("Universal"),
                                   Value::Text("LA")}));
  Must(database.Insert("STUDIOS", {Value::Text("s03"),
                                   Value::Text("Paramount"),
                                   Value::Text("LA")}));
  Must(database.Insert("MOVIES",
                       {Value::Text("m01"), Value::Text("s03"),
                        Value::Text("Titanic"), Value::Text("Drama"),
                        Value::Text("200M")}));
  Must(database.Insert("MOVIES",
                       {Value::Text("m02"), Value::Text("s01"),
                        Value::Text("Inception"), Value::Text("SciFi"),
                        Value::Text("160M")}));
  db::FactId m3 = Must(database.Insert(
      "MOVIES", {Value::Text("m03"), Value::Text("s01"),
                 Value::Text("Godzilla"), Value::Null(),  // genre = ⊥
                 Value::Text("150M")}));
  Must(database.Insert("MOVIES",
                       {Value::Text("m04"), Value::Text("s03"),
                        Value::Text("Interstellar"), Value::Text("SciFi"),
                        Value::Text("160M")}));
  Must(database.Insert("MOVIES",
                       {Value::Text("m05"), Value::Text("s02"),
                        Value::Text("Tropic Thunder"), Value::Text("Action"),
                        Value::Text("90M")}));
  Must(database.Insert("MOVIES",
                       {Value::Text("m06"), Value::Text("s01"),
                        Value::Text("Wolf of Wall St."), Value::Text("Bio"),
                        Value::Text("100M")}));
  db::FactId a1 = Must(database.Insert(
      "ACTORS",
      {Value::Text("a01"), Value::Text("DiCaprio"), Value::Text("230M")}));
  Must(database.Insert("ACTORS", {Value::Text("a02"), Value::Text("Watanabe"),
                                  Value::Text("40M")}));
  Must(database.Insert("ACTORS", {Value::Text("a03"), Value::Text("Cruise"),
                                  Value::Text("600M")}));
  Must(database.Insert("ACTORS", {Value::Text("a04"),
                                  Value::Text("McConaughey"),
                                  Value::Text("140M")}));
  Must(database.Insert("ACTORS", {Value::Text("a05"), Value::Text("Damon"),
                                  Value::Text("170M")}));
  Must(database.Insert("COLLABORATIONS", {Value::Text("a01"),
                                          Value::Text("a02"),
                                          Value::Text("m03")}));
  Must(database.Insert("COLLABORATIONS", {Value::Text("a04"),
                                          Value::Text("a05"),
                                          Value::Text("m04")}));
  Must(database.Insert("COLLABORATIONS", {Value::Text("a04"),
                                          Value::Text("a03"),
                                          Value::Text("m05")}));

  std::printf("=== schema (Figure 2) ===\n%s\n",
              schema->ToString().c_str());

  // Figure 4: all walk schemes of length <= 3 from ACTORS.
  db::RelationId actors = schema->RelationIndex("ACTORS");
  auto schemes = fwd::EnumerateWalkSchemes(*schema, actors, 3);
  std::printf("=== %zu walk schemes of length <= 3 from ACTORS (Fig. 4 has "
              "9 of length <= 3, excluding the empty scheme) ===\n",
              schemes.size());
  for (size_t i = 0; i < schemes.size() && i < 12; ++i) {
    std::printf("  s%-2zu %s\n", i, schemes[i].ToString(*schema).c_str());
  }

  // Example 5.3: the scheme s5 = ACTORS[aid]—COLLAB[actor1],
  // COLLAB[movie]—MOVIES[mid]; from a1 the walks end at m3 and m6 with
  // probability 0.5 each — but m3's genre is ⊥, so the genre distribution
  // collapses onto "Bio" (the posterior convention).
  fwd::WalkScheme s5;
  s5.start = actors;
  s5.steps = {{/*fk=*/1, /*forward=*/false}, {/*fk=*/3, /*forward=*/true}};
  // Insert c4 first so the example matches the paper (a1 has two walks).
  auto c4 = database.Insert("COLLABORATIONS", {Value::Text("a01"),
                                               Value::Text("a04"),
                                               Value::Text("m06")});
  db::AttrId genre = schema->relation(schema->RelationIndex("MOVIES"))
                         .AttrIndex("genre");
  db::AttrId budget = schema->relation(schema->RelationIndex("MOVIES"))
                          .AttrIndex("budget");
  fwd::WalkDistribution dist(&database);
  auto genre_dist = dist.Exact(s5, genre, a1);
  auto budget_dist = dist.Exact(s5, budget, a1);
  std::printf("\n=== Example 5.3: d(a1, s5) ===\n");
  for (const auto& [v, p] : budget_dist.probs) {
    std::printf("  P[budget = %s] = %.2f\n", v.ToString().c_str(), p);
  }
  for (const auto& [v, p] : genre_dist.probs) {
    std::printf("  P[genre  = %s] = %.2f   (m3's ⊥ excluded)\n",
                v.ToString().c_str(), p);
  }

  // Example 6.1: cascading deletion of c1 removes m4?? No — removing c2
  // (a04, a05, m04) orphans m4 (Interstellar) and a5 (Damon), while a4
  // survives through c3. Demonstrate on a copy.
  {
    db::Database copy = database;
    db::FactId c2 = copy.FindByKey(
        schema->RelationIndex("COLLABORATIONS"),
        {Value::Text("a04"), Value::Text("a05"), Value::Text("m04")});
    auto cascade = db::CascadePreview(copy, c2);
    std::printf("\n=== cascade preview of deleting c2 ===\n");
    for (db::FactId f : cascade.value()) {
      const db::Fact& fact = copy.fact(f);
      std::printf("  would delete %s%s\n",
                  schema->relation(fact.rel).name.c_str(),
                  db::ToString(fact.values).c_str());
    }
  }

  // Example 3.1 as an embedding workflow: train on D = D' \ {c4}... here we
  // already inserted c4, so just embed COLLABORATIONS facts statically.
  fwd::ForwardConfig fcfg;
  fcfg.dim = 8;
  fcfg.nsamples = 16;
  fcfg.epochs = 4;
  auto emb = fwd::ForwardEmbedder::TrainStatic(
      &database, schema->RelationIndex("COLLABORATIONS"), {}, fcfg);
  if (!emb.ok()) {
    std::fprintf(stderr, "train: %s\n", emb.status().ToString().c_str());
    return 1;
  }
  std::printf("\nFoRWaRD embedded %zu collaboration tuples (dim %zu)\n",
              emb.value().model().num_embedded(), emb.value().dim());
  (void)c4;
  (void)m3;
  return 0;
}
