#include "src/exp/partition.h"

#include <gtest/gtest.h>

#include <unordered_map>

#include "src/data/registry.h"

namespace stedb::exp {
namespace {

data::GeneratedDataset SmallHepatitis() {
  data::GenConfig cfg;
  cfg.scale = 0.15;
  cfg.seed = 3;
  return std::move(data::MakeHepatitis(cfg)).value();
}

TEST(PartitionTest, RemovesRequestedRatio) {
  data::GeneratedDataset ds = SmallHepatitis();
  const size_t total = ds.Samples().size();
  Rng rng(1);
  auto part = PartitionDynamic(ds.database, ds.pred_rel, ds.pred_attr, 0.3,
                               rng);
  ASSERT_TRUE(part.ok()) << part.status();
  const size_t removed_pred = total - part.value().old_pred_facts.size();
  EXPECT_NEAR(static_cast<double>(removed_pred) / total, 0.3, 0.05);
  EXPECT_EQ(part.value().batches.size(), removed_pred);
  EXPECT_TRUE(ds.database.ValidateAll().ok());
}

TEST(PartitionTest, StratifiedByLabel) {
  data::GeneratedDataset ds = SmallHepatitis();
  std::unordered_map<std::string, size_t> before;
  for (db::FactId f : ds.Samples()) ++before[ds.LabelOf(f)];
  Rng rng(2);
  auto part = PartitionDynamic(ds.database, ds.pred_rel, ds.pred_attr, 0.4,
                               rng);
  ASSERT_TRUE(part.ok());
  std::unordered_map<std::string, size_t> after;
  for (db::FactId f : part.value().old_pred_facts) {
    ++after[ds.database.value(f, ds.pred_attr).ToString()];
  }
  for (const auto& [label, n] : before) {
    const double kept = static_cast<double>(after[label]) / n;
    EXPECT_NEAR(kept, 0.6, 0.1) << label;
  }
}

TEST(PartitionTest, CascadeCompanionsIncluded) {
  // Hepatitis deletion batches carry exam + link facts, not only the
  // patient row.
  data::GeneratedDataset ds = SmallHepatitis();
  Rng rng(3);
  auto part = PartitionDynamic(ds.database, ds.pred_rel, ds.pred_attr, 0.2,
                               rng);
  ASSERT_TRUE(part.ok());
  EXPECT_GT(part.value().total_removed,
            part.value().batches.size());  // > one fact per batch
}

TEST(PartitionTest, RejectsBadRatio) {
  data::GeneratedDataset ds = SmallHepatitis();
  Rng rng(4);
  EXPECT_FALSE(
      PartitionDynamic(ds.database, ds.pred_rel, ds.pred_attr, 1.0, rng)
          .ok());
  EXPECT_FALSE(
      PartitionDynamic(ds.database, ds.pred_rel, ds.pred_attr, -0.1, rng)
          .ok());
}

TEST(PartitionTest, ReplayRestoresDatabase) {
  data::GeneratedDataset ds = SmallHepatitis();
  const size_t before = ds.database.NumFacts();
  Rng rng(5);
  auto part = PartitionDynamic(ds.database, ds.pred_rel, ds.pred_attr, 0.5,
                               rng);
  ASSERT_TRUE(part.ok());
  EXPECT_EQ(ds.database.NumFacts(),
            before - part.value().total_removed);
  // Replay in inverse deletion order.
  for (size_t b = part.value().batches.size(); b > 0; --b) {
    auto ids = ReplayBatch(ds.database, part.value().batches[b - 1]);
    ASSERT_TRUE(ids.ok()) << ids.status();
  }
  EXPECT_EQ(ds.database.NumFacts(), before);
  EXPECT_TRUE(ds.database.ValidateAll().ok());
}

TEST(PartitionTest, WorksOnEveryDataset) {
  data::GenConfig cfg;
  cfg.scale = 0.05;
  for (const std::string& name : data::DatasetNames()) {
    auto ds = data::MakeDataset(name, cfg);
    ASSERT_TRUE(ds.ok()) << name;
    Rng rng(6);
    auto part = PartitionDynamic(ds.value().database, ds.value().pred_rel,
                                 ds.value().pred_attr, 0.2, rng);
    ASSERT_TRUE(part.ok()) << name << ": " << part.status();
    EXPECT_TRUE(ds.value().database.ValidateAll().ok()) << name;
    EXPECT_GT(part.value().batches.size(), 0u) << name;
  }
}

}  // namespace
}  // namespace stedb::exp
