#include <gtest/gtest.h>

#include <cstring>

#include "src/la/matrix.h"
#include "src/ml/dataset.h"
#include "src/ml/knn.h"
#include "src/ml/logistic.h"
#include "src/ml/metrics.h"
#include "src/ml/scaler.h"
#include "src/ml/svm.h"
#include "src/ml/topk.h"

namespace stedb::ml {
namespace {

/// Three well-separated Gaussian blobs in 2D.
FeatureDataset Blobs(int per_class, double spread, Rng& rng) {
  FeatureDataset data;
  const double centers[3][2] = {{0.0, 0.0}, {6.0, 0.0}, {0.0, 6.0}};
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < per_class; ++i) {
      data.Add({rng.NextGaussian(centers[c][0], spread),
                rng.NextGaussian(centers[c][1], spread)},
               c);
    }
  }
  return data;
}

TEST(FeatureDatasetTest, AddTracksClasses) {
  FeatureDataset d;
  d.Add({1.0}, 0);
  d.Add({2.0}, 2);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.dim(), 1u);
  EXPECT_EQ(d.num_classes, 3);
}

TEST(FeatureDatasetTest, SubsetAndCounts) {
  FeatureDataset d;
  for (int i = 0; i < 6; ++i) d.Add({static_cast<double>(i)}, i % 2);
  FeatureDataset s = d.Subset({0, 2, 4});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.y, (std::vector<int>{0, 0, 0}));
  EXPECT_EQ(d.ClassCounts(), (std::vector<size_t>{3, 3}));
  EXPECT_DOUBLE_EQ(d.MajorityFraction(), 0.5);
}

TEST(LabelEncoderTest, StableIds) {
  LabelEncoder enc;
  EXPECT_EQ(enc.Encode("b"), 0);
  EXPECT_EQ(enc.Encode("a"), 1);
  EXPECT_EQ(enc.Encode("b"), 0);
  EXPECT_EQ(enc.Lookup("a"), 1);
  EXPECT_EQ(enc.Lookup("zzz"), -1);
  EXPECT_EQ(enc.Decode(0), "b");
  EXPECT_EQ(enc.num_classes(), 2);
}

TEST(ScalerTest, StandardizesFeatures) {
  StandardScaler scaler;
  std::vector<la::Vector> x = {{0.0, 100.0}, {10.0, 100.0}, {20.0, 100.0}};
  scaler.Fit(x);
  auto t = scaler.TransformAll(x);
  // Column 0: mean 10, population std ~8.165.
  EXPECT_NEAR(t[0][0] + t[2][0], 0.0, 1e-9);
  EXPECT_NEAR(t[1][0], 0.0, 1e-9);
  // Constant column: centered, not divided by ~0.
  EXPECT_NEAR(t[0][1], 0.0, 1e-9);
}

TEST(ScalerTest, EmptyFit) {
  StandardScaler scaler;
  scaler.Fit({});
  EXPECT_FALSE(scaler.fitted());
}

TEST(MetricsTest, Accuracy) {
  EXPECT_DOUBLE_EQ(Accuracy({1, 2, 3}, {1, 2, 0}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(Accuracy({}, {}), 0.0);
}

TEST(MetricsTest, MeanStd) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 3.0}), 2.0);
  EXPECT_NEAR(StdDev({1.0, 3.0}), std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(StdDev({5.0}), 0.0);
}

TEST(MetricsTest, ConfusionMatrix) {
  auto cm = ConfusionMatrix({0, 0, 1, 1}, {0, 1, 1, 1}, 2);
  EXPECT_EQ(cm[0][0], 1u);
  EXPECT_EQ(cm[0][1], 1u);
  EXPECT_EQ(cm[1][1], 2u);
  EXPECT_EQ(cm[1][0], 0u);
}

TEST(MetricsTest, MacroF1PerfectAndWorst) {
  EXPECT_DOUBLE_EQ(MacroF1({0, 1, 2}, {0, 1, 2}, 3), 1.0);
  EXPECT_DOUBLE_EQ(MacroF1({0, 0}, {1, 1}, 2), 0.0);
}

TEST(LogisticTest, LearnsBlobs) {
  Rng rng(1);
  FeatureDataset train = Blobs(40, 1.0, rng);
  FeatureDataset test = Blobs(20, 1.0, rng);
  LogisticClassifier clf;
  ASSERT_TRUE(clf.Fit(train).ok());
  EXPECT_GT(clf.Accuracy(test), 0.95);
}

TEST(LogisticTest, ProbabilitiesSumToOne) {
  Rng rng(2);
  FeatureDataset train = Blobs(30, 1.0, rng);
  LogisticClassifier clf;
  ASSERT_TRUE(clf.Fit(train).ok());
  la::Vector p = clf.PredictProba({1.0, 1.0});
  double sum = 0.0;
  for (double x : p) {
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(LogisticTest, EmptyTrainingRejected) {
  LogisticClassifier clf;
  EXPECT_FALSE(clf.Fit(FeatureDataset{}).ok());
}

TEST(LinearSvmTest, LearnsBlobs) {
  Rng rng(3);
  FeatureDataset train = Blobs(40, 1.0, rng);
  FeatureDataset test = Blobs(20, 1.0, rng);
  LinearSvmClassifier clf;
  ASSERT_TRUE(clf.Fit(train).ok());
  EXPECT_GT(clf.Accuracy(test), 0.9);
}

TEST(RbfSvmTest, LearnsBlobs) {
  Rng rng(4);
  FeatureDataset train = Blobs(30, 1.0, rng);
  FeatureDataset test = Blobs(15, 1.0, rng);
  RbfSvmClassifier clf;
  ASSERT_TRUE(clf.Fit(train).ok());
  EXPECT_GT(clf.Accuracy(test), 0.9);
}

TEST(RbfSvmTest, LearnsNonLinearBoundary) {
  // Ring vs center: linearly inseparable, RBF handles it.
  Rng rng(5);
  FeatureDataset train, test;
  for (int i = 0; i < 240; ++i) {
    const double angle = rng.NextDouble(0.0, 6.283);
    const bool ring = i % 2 == 0;
    const double r = ring ? rng.NextGaussian(4.0, 0.3)
                          : rng.NextGaussian(0.0, 0.7);
    la::Vector x = {r * std::cos(angle), r * std::sin(angle)};
    (i < 160 ? train : test).Add(std::move(x), ring ? 1 : 0);
  }
  RbfSvmClassifier rbf;
  ASSERT_TRUE(rbf.Fit(train).ok());
  EXPECT_GT(rbf.Accuracy(test), 0.85);
  LinearSvmClassifier linear;
  ASSERT_TRUE(linear.Fit(train).ok());
  EXPECT_GT(rbf.Accuracy(test), linear.Accuracy(test));
}

TEST(MakeClassifierTest, AllKindsConstructible) {
  for (ClassifierKind kind :
       {ClassifierKind::kLogistic, ClassifierKind::kLinearSvm,
        ClassifierKind::kRbfSvm}) {
    auto clf = MakeClassifier(kind, 1);
    ASSERT_NE(clf, nullptr);
    EXPECT_EQ(clf->Name(), ClassifierKindName(kind));
  }
}

uint64_t Bits(double x) {
  uint64_t u = 0;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

// The kernel-routed EmbeddingIndex::Score must stay bit-equal to the
// la::matrix wrappers it replaced — the refactor to la::kernels (scalar
// and AVX2 paths are bit-identical) may not change a single result bit.
TEST(EmbeddingIndexScoreTest, KernelRoutedScoresBitEqualTheLaWrappers) {
  Rng rng(0x5c03e);
  for (int trial = 0; trial < 40; ++trial) {
    const size_t dim = 1 + static_cast<size_t>(trial) % 19;
    la::Vector a(dim), b(dim);
    for (size_t d = 0; d < dim; ++d) {
      a[d] = rng.NextDouble(-3.0, 3.0);
      b[d] = rng.NextDouble(-3.0, 3.0);
    }
    EmbeddingIndex cosine(SimilarityMetric::kCosine);
    EmbeddingIndex euclidean(SimilarityMetric::kEuclidean);
    EmbeddingIndex dot(SimilarityMetric::kDot);
    for (EmbeddingIndex* index : {&cosine, &euclidean, &dot}) {
      index->Add(1, a);
      index->Add(2, b);
    }
    EXPECT_EQ(Bits(cosine.Similarity(1, 2).value()),
              Bits(la::CosineSimilarity(a, b)))
        << "trial " << trial;
    EXPECT_EQ(Bits(euclidean.Similarity(1, 2).value()),
              Bits(-la::Distance(a, b)))
        << "trial " << trial;
    EXPECT_EQ(Bits(dot.Similarity(1, 2).value()), Bits(la::Dot(a, b)))
        << "trial " << trial;
  }
  // The zero-norm guard is part of the contract too.
  EmbeddingIndex cosine(SimilarityMetric::kCosine);
  cosine.Add(1, la::Vector(4, 0.0));
  cosine.Add(2, {1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(cosine.Similarity(1, 2).value(), 0.0);
}

TEST(EmbeddingIndexTopKTest, HeapSelectionKeepsOrderAndFactTieBreak) {
  // Equal-score hits must come back in ascending fact id, and the
  // bounded-heap selection must agree with a full sort.
  EmbeddingIndex index(SimilarityMetric::kDot);
  index.Add(30, {1.0});
  index.Add(10, {1.0});
  index.Add(20, {1.0});
  index.Add(40, {2.0});
  const std::vector<Neighbor> top = index.TopK({1.0}, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].fact, 40);
  EXPECT_EQ(top[1].fact, 10);
  EXPECT_EQ(top[2].fact, 20);
}

TEST(TopKHeapTest, MatchesFullSortForAnyPushOrder) {
  Rng rng(77);
  std::vector<Neighbor> hits;
  for (int i = 0; i < 200; ++i) {
    // Coarse scores force plenty of ties to exercise the fact tie-break.
    hits.push_back({i, std::floor(rng.NextDouble(0.0, 8.0))});
  }
  std::vector<Neighbor> sorted = hits;
  std::sort(sorted.begin(), sorted.end(), HitBetter<Neighbor>());
  for (size_t k : {size_t{0}, size_t{1}, size_t{7}, size_t{200}, size_t{500}}) {
    TopKHeap<Neighbor> heap(k);
    for (const Neighbor& h : hits) heap.Push(h);
    const std::vector<Neighbor> got = std::move(heap).Take();
    ASSERT_EQ(got.size(), std::min(k, hits.size()));
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].fact, sorted[i].fact) << "k=" << k << " i=" << i;
      EXPECT_EQ(Bits(got[i].score), Bits(sorted[i].score));
    }
  }
}

}  // namespace
}  // namespace stedb::ml
