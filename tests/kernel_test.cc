#include "src/fwd/kernel.h"

#include <gtest/gtest.h>

#include "src/la/solve.h"
#include "tests/test_util.h"

namespace stedb::fwd {
namespace {

TEST(EqualityKernelTest, Basics) {
  EqualityKernel k;
  EXPECT_DOUBLE_EQ(k.Evaluate(db::Value::Text("a"), db::Value::Text("a")),
                   1.0);
  EXPECT_DOUBLE_EQ(k.Evaluate(db::Value::Text("a"), db::Value::Text("b")),
                   0.0);
  EXPECT_DOUBLE_EQ(k.Evaluate(db::Value::Int(1), db::Value::Int(1)), 1.0);
  EXPECT_DOUBLE_EQ(k.Evaluate(db::Value::Int(1), db::Value::Real(1.0)), 0.0);
}

TEST(GaussianKernelTest, PeakAndDecay) {
  GaussianKernel k(2.0);
  EXPECT_DOUBLE_EQ(k.Evaluate(db::Value::Real(3.0), db::Value::Real(3.0)),
                   1.0);
  const double near = k.Evaluate(db::Value::Real(0.0), db::Value::Real(1.0));
  const double far = k.Evaluate(db::Value::Real(0.0), db::Value::Real(3.0));
  EXPECT_GT(near, far);
  EXPECT_NEAR(near, std::exp(-1.0 / 4.0), 1e-12);
}

TEST(GaussianKernelTest, SymmetricAndMixesIntReal) {
  GaussianKernel k(1.0);
  const db::Value a = db::Value::Int(2);
  const db::Value b = db::Value::Real(3.5);
  EXPECT_DOUBLE_EQ(k.Evaluate(a, b), k.Evaluate(b, a));
  EXPECT_NEAR(k.Evaluate(a, b), std::exp(-(1.5 * 1.5) / 2.0), 1e-12);
}

TEST(KernelRegistryTest, DefaultsByType) {
  db::Database database = stedb::testing::MovieDatabase();
  KernelRegistry reg = KernelRegistry::Defaults(database);
  const db::RelationId movies = database.schema().RelationIndex("MOVIES");
  // Text attribute (title) -> equality.
  EXPECT_EQ(reg.Get(movies, 2).Name(), "equality");
  // Key/FK identifiers -> equality even if numeric.
  EXPECT_EQ(reg.Get(movies, 0).Name(), "equality");
}

TEST(KernelRegistryTest, NumericGetsGaussianScaledToVariance) {
  db::Schema schema;
  ASSERT_TRUE(schema
                  .AddRelation("T",
                               {{"id", db::AttrType::kText},
                                {"x", db::AttrType::kReal}},
                               {"id"})
                  .ok());
  db::Database database(std::make_shared<db::Schema>(schema));
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(database
                    .Insert("T", {db::Value::Text("k" + std::to_string(i)),
                                  db::Value::Real(i * 10.0)})
                    .ok());
  }
  KernelRegistry reg = KernelRegistry::Defaults(database);
  EXPECT_NE(reg.Get(0, 1).Name().find("gaussian"), std::string::npos);
  // Variance of {0,10,...,90} (sample) is ~916.7 — similarity of adjacent
  // values must be substantial under the scaled kernel.
  EXPECT_GT(reg.Get(0, 1).Evaluate(db::Value::Real(10.0),
                                   db::Value::Real(20.0)),
            0.9);
}

TEST(KernelRegistryTest, AllEqualityOverridesNumeric) {
  db::Database database = stedb::testing::MovieDatabase();
  KernelRegistry reg = KernelRegistry::AllEquality(database.schema());
  const db::RelationId movies = database.schema().RelationIndex("MOVIES");
  for (int a = 0; a < 5; ++a) {
    EXPECT_EQ(reg.Get(movies, a).Name(), "equality");
  }
}

TEST(KernelRegistryTest, SetOverride) {
  db::Database database = stedb::testing::MovieDatabase();
  KernelRegistry reg = KernelRegistry::Defaults(database);
  const db::RelationId movies = database.schema().RelationIndex("MOVIES");
  reg.Set(movies, 2, std::make_shared<GaussianKernel>(5.0));
  EXPECT_NE(reg.Get(movies, 2).Name().find("gaussian"), std::string::npos);
}

/// PSD property: Gram matrices of both kernels on random value sets are
/// positive semi-definite (Cholesky of G + eps I succeeds).
class KernelPsdTest : public ::testing::TestWithParam<int> {};

TEST_P(KernelPsdTest, GramMatrixIsPsd) {
  Rng rng(GetParam());
  GaussianKernel gk(1.0 + rng.NextDouble() * 4.0);
  EqualityKernel ek;
  std::vector<db::Value> values;
  for (int i = 0; i < 8; ++i) {
    values.push_back(db::Value::Real(rng.NextGaussian(0.0, 2.0)));
  }
  for (const Kernel* k :
       std::initializer_list<const Kernel*>{&gk, &ek}) {
    la::Matrix gram(values.size(), values.size());
    for (size_t i = 0; i < values.size(); ++i) {
      for (size_t j = 0; j < values.size(); ++j) {
        gram(i, j) = k->Evaluate(values[i], values[j]);
      }
    }
    for (size_t i = 0; i < values.size(); ++i) gram(i, i) += 1e-9;
    EXPECT_TRUE(la::CholeskyFactor(gram).ok())
        << "kernel " << k->Name() << " not PSD";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelPsdTest, ::testing::Range(1, 9));

}  // namespace
}  // namespace stedb::fwd
