#include "src/common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "src/common/rng.h"

namespace stedb {
namespace {

TEST(ResolveThreadCountTest, PositiveRequestWins) {
  unsetenv("STEDB_THREADS");
  EXPECT_EQ(ResolveThreadCount(3), 3);
  EXPECT_EQ(ResolveThreadCount(1), 1);
}

TEST(ResolveThreadCountTest, ZeroMeansHardwareConcurrency) {
  unsetenv("STEDB_THREADS");
  EXPECT_GE(ResolveThreadCount(0), 1);
}

TEST(ResolveThreadCountTest, EnvFillsDefaultButExplicitPinWins) {
  setenv("STEDB_THREADS", "5", 1);
  EXPECT_EQ(ResolveThreadCount(0), 5);  // env steers the default
  // Explicit pins are deliberate (nested fan-outs pin 1, equivalence
  // tests pin 1 vs 4) and must not be defeated by the env knob.
  EXPECT_EQ(ResolveThreadCount(2), 2);
  setenv("STEDB_THREADS", "garbage", 1);
  EXPECT_GE(ResolveThreadCount(0), 1);  // unparseable -> ignored
  unsetenv("STEDB_THREADS");
}

class ParallelForTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { unsetenv("STEDB_THREADS"); }
};

TEST_P(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ParallelRunner runner(GetParam());
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h = 0;
  runner.ParallelFor(kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST_P(ParallelForTest, EmptyAndSingleRanges) {
  ParallelRunner runner(GetParam());
  int calls = 0;
  runner.ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> one{0};
  runner.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    one.fetch_add(1);
  });
  EXPECT_EQ(one.load(), 1);
}

TEST_P(ParallelForTest, ExceptionsPropagate) {
  ParallelRunner runner(GetParam());
  EXPECT_THROW(
      runner.ParallelFor(64,
                         [&](size_t i) {
                           if (i == 13) throw std::runtime_error("boom");
                         }),
      std::runtime_error);
  // The runner survives a throwing job.
  std::atomic<int> count{0};
  runner.ParallelFor(8, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

TEST_P(ParallelForTest, ReusableAcrossManyJobs) {
  ParallelRunner runner(GetParam());
  std::atomic<long> total{0};
  for (int job = 0; job < 50; ++job) {
    runner.ParallelFor(20, [&](size_t i) {
      total.fetch_add(static_cast<long>(i));
    });
  }
  EXPECT_EQ(total.load(), 50L * (19 * 20 / 2));
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelForTest,
                         ::testing::Values(1, 2, 4, 7));

TEST(ShardedReduceTest, MatchesSerialSum) {
  unsetenv("STEDB_THREADS");
  std::vector<double> values(257);
  Rng rng(3);
  for (double& v : values) v = rng.NextDouble();
  const double serial = std::accumulate(values.begin(), values.end(), 0.0);
  ParallelRunner runner(4);
  const double parallel = runner.ShardedReduce(
      values.size(), 16, 0.0,
      [&](size_t begin, size_t end) {
        double acc = 0.0;
        for (size_t i = begin; i < end; ++i) acc += values[i];
        return acc;
      },
      [](double a, double b) { return a + b; });
  EXPECT_NEAR(parallel, serial, 1e-9);
}

TEST(ShardedReduceTest, BitIdenticalAcrossThreadCounts) {
  unsetenv("STEDB_THREADS");
  std::vector<double> values(1001);
  Rng rng(4);
  for (double& v : values) v = rng.NextGaussian();
  auto reduce = [&](int threads) {
    ParallelRunner runner(threads);
    // Shard count fixed by the caller: the floating-point combination
    // order — and therefore the bits — must not change with the pool size.
    return runner.ShardedReduce(
        values.size(), 32, 0.0,
        [&](size_t begin, size_t end) {
          double acc = 0.0;
          for (size_t i = begin; i < end; ++i) acc += values[i];
          return acc;
        },
        [](double a, double b) { return a + b; });
  };
  const double at1 = reduce(1);
  const double at4 = reduce(4);
  EXPECT_EQ(at1, at4);  // exact, not NEAR
}

TEST(PooledRunnerTest, PinnedRunsEveryIndex) {
  PooledRunner runner(3);
  EXPECT_EQ(runner.threads(), 3);
  std::vector<std::atomic<int>> hits(100);
  runner.ParallelFor(hits.size(),
                     [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(PooledRunnerTest, DefaultRunsEveryIndexAcrossManyCalls) {
  // threads == 0 routes through the shared pool (or its busy fallback);
  // repeated calls on one handle must each cover the full index space.
  PooledRunner runner(0);
  EXPECT_GE(runner.threads(), 1);
  for (int round = 0; round < 5; ++round) {
    std::vector<std::atomic<int>> hits(64);
    runner.ParallelFor(hits.size(),
                       [&](size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(PooledRunnerTest, WorksNestedInsideSharedFanout) {
  // A PooledRunner used from inside a shared-pool fan-out must not
  // re-enter the shared runner; TrySharedParallelFor refuses and the
  // handle falls back to its own pool.
  std::atomic<int> total{0};
  RunParallelFor(0, 4, [&](size_t) {
    PooledRunner inner(0);
    inner.ParallelFor(8, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(TrySharedParallelForTest, RefusesWhenNested) {
  bool outer_ran = TrySharedParallelFor(2, [&](size_t) {
    EXPECT_FALSE(TrySharedParallelFor(2, [](size_t) {}));
  });
  EXPECT_TRUE(outer_ran);
}

TEST(RngForkStreamTest, StreamsAreDisjoint) {
  Rng root(42);
  Rng a = root.Fork(0);
  Rng b = root.Fork(1);
  Rng c = root.Fork(2);
  bool all_equal_ab = true, all_equal_ac = true;
  for (int i = 0; i < 16; ++i) {
    const uint64_t va = a.NextUint(1u << 30);
    const uint64_t vb = b.NextUint(1u << 30);
    const uint64_t vc = c.NextUint(1u << 30);
    all_equal_ab &= va == vb;
    all_equal_ac &= va == vc;
  }
  EXPECT_FALSE(all_equal_ab);
  EXPECT_FALSE(all_equal_ac);
}

TEST(RngForkStreamTest, SameStreamReproduces) {
  Rng root(42);
  Rng a = root.Fork(7);
  Rng b = root.Fork(7);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a.NextUint(1u << 30), b.NextUint(1u << 30));
  }
}

TEST(RngForkStreamTest, IndependentOfParentDrawPosition) {
  // The counter-based fork keys off the construction seed, so workers can
  // fork their streams before or after the parent advanced.
  Rng before(99);
  Rng fresh = before.Fork(5);
  Rng advanced(99);
  for (int i = 0; i < 100; ++i) advanced.NextDouble();
  Rng late = advanced.Fork(5);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(fresh.NextUint(1u << 30), late.NextUint(1u << 30));
  }
}

TEST(RngForkStreamTest, DiffersFromStatefulFork) {
  Rng a(13);
  Rng stateful = a.Fork();
  Rng counter = Rng(13).Fork(0);
  bool all_equal = true;
  for (int i = 0; i < 16; ++i) {
    all_equal &= stateful.NextUint(1u << 30) == counter.NextUint(1u << 30);
  }
  EXPECT_FALSE(all_equal);
}

}  // namespace
}  // namespace stedb
